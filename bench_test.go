package spocus

// One benchmark per experiment of DESIGN.md's per-experiment index
// (E1–E17) plus the substrate benchmarks (S1–S2). The qualitative outcomes
// are asserted inside the benchmarks so a regression in correctness fails
// the run rather than silently timing the wrong thing; the companion
// report generator is cmd/spocus-experiments.

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/automata"
	"repro/internal/compose"
	"repro/internal/core"
	"repro/internal/deps"
	"repro/internal/models"
	"repro/internal/relation"
	"repro/internal/sat"
	"repro/internal/tsdi"
	"repro/internal/turing"
	"repro/internal/verify"
)

// BenchmarkE1ShortRun regenerates the Figure 1 run of SHORT.
func BenchmarkE1ShortRun(b *testing.B) {
	m := models.Short()
	db := models.MagazineDB()
	inputs := models.Fig1Inputs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run, err := m.Execute(db, inputs)
		if err != nil || !run.Outputs[1].Has("deliver", relation.Tuple{"time"}) {
			b.Fatal("wrong run")
		}
	}
}

// BenchmarkE2FriendlyRun regenerates the Figure 2 run of FRIENDLY.
func BenchmarkE2FriendlyRun(b *testing.B) {
	m := models.Friendly()
	db := models.MagazineDB()
	inputs := models.Fig2Inputs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run, err := m.Execute(db, inputs)
		if err != nil || !run.Outputs[3].Has("rebill", relation.Tuple{"newsweek", "845"}) {
			b.Fatal("wrong run")
		}
	}
}

// BenchmarkE3LogValidity times Theorem 3.1 on genuine logs of SHORT, one
// sub-benchmark per run length (the fixed-schema polynomial shape).
func BenchmarkE3LogValidity(b *testing.B) {
	m := models.Short()
	db := models.MagazineDB()
	for _, n := range []int{1, 2, 4} {
		var inputs relation.Sequence
		mags := []string{"time", "newsweek", "le-monde"}
		prices := map[string]string{"time": "855", "newsweek": "845", "le-monde": "8350"}
		for i := 0; i < n; i++ {
			mag := mags[i%3]
			step := relation.NewInstance()
			if i%2 == 0 {
				step.Add("order", relation.Tuple{relation.Const(mag)})
			} else {
				prev := mags[(i-1)%3]
				step.Add("pay", relation.Tuple{relation.Const(prev), relation.Const(prices[prev])})
			}
			inputs = append(inputs, step)
		}
		run, err := m.Execute(db, inputs)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("steps=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := verify.LogValidity(m, db, run.Logs, &verify.Options{SkipReplay: true})
				if err != nil || !res.Valid {
					b.Fatal("genuine log rejected")
				}
			}
		})
	}
}

// BenchmarkE4ArityShape times a one-step log validity question as the
// schema arity grows (the NEXPTIME shape).
func BenchmarkE4ArityShape(b *testing.B) {
	for _, k := range []int{1, 2, 3, 4} {
		vars := ""
		for i := 1; i <= k; i++ {
			if i > 1 {
				vars += ","
			}
			vars += fmt.Sprintf("X%d", i)
		}
		src := fmt.Sprintf(`
transducer echo%d
schema
  input: in/%d;
  output: out/%d;
  log: out;
state rules
  past-in(%s) +:- in(%s);
output rules
  out(%s) :- in(%s);
`, k, k, k, vars, vars, vars, vars)
		m := core.MustParseProgram(src)
		tup := make(relation.Tuple, k)
		for i := range tup {
			tup[i] = relation.Const(fmt.Sprintf("c%d", i))
		}
		logStep := relation.NewInstance()
		logStep.Add("out", tup)
		logSeq := relation.Sequence{logStep}
		b.Run(fmt.Sprintf("arity=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := verify.LogValidity(m, nil, logSeq, &verify.Options{SkipReplay: true})
				if err != nil || !res.Valid {
					b.Fatal("echo log rejected")
				}
			}
		})
	}
}

// BenchmarkE3LogValidityParallel times the Theorem 3.1 batch API (one log
// per customer session) under the sequential and the parallel engine. The
// verdicts are identical by construction; the par=4 sub-benchmark should
// show a measurable speedup over par=1 on a multi-core machine.
func BenchmarkE3LogValidityParallel(b *testing.B) {
	m := models.Short()
	db := models.MagazineDB()
	mags := []string{"time", "newsweek", "le-monde"}
	prices := map[string]string{"time": "855", "newsweek": "845", "le-monde": "8350"}
	var logs []relation.Sequence
	for s := 0; s < 12; s++ {
		var inputs relation.Sequence
		n := 2 + s%3
		for i := 0; i < n; i++ {
			mag := mags[(s+i)%3]
			step := relation.NewInstance()
			if i%2 == 0 {
				step.Add("order", relation.Tuple{relation.Const(mag)})
			} else {
				prev := mags[(s+i-1)%3]
				step.Add("pay", relation.Tuple{relation.Const(prev), relation.Const(prices[prev])})
			}
			inputs = append(inputs, step)
		}
		run, err := m.Execute(db, inputs)
		if err != nil {
			b.Fatal(err)
		}
		logs = append(logs, run.Logs)
	}
	for _, par := range []int{1, 4} {
		b.Run(fmt.Sprintf("par=%d", par), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := verify.LogValidityBatch(m, db, logs, &verify.Options{SkipReplay: true, Parallelism: par})
				if err != nil {
					b.Fatal(err)
				}
				for _, r := range res {
					if !r.Valid {
						b.Fatal("genuine log rejected")
					}
				}
			}
		})
	}
}

// BenchmarkE4ArityShapeParallel times a batch of one-step arity-3 validity
// questions (the NEXPTIME grounding shape) under par=1 vs par=4.
func BenchmarkE4ArityShapeParallel(b *testing.B) {
	const k = 3
	src := fmt.Sprintf(`
transducer echo%d
schema
  input: in/%d;
  output: out/%d;
  log: out;
state rules
  past-in(X1,X2,X3) +:- in(X1,X2,X3);
output rules
  out(X1,X2,X3) :- in(X1,X2,X3);
`, k, k, k)
	m := core.MustParseProgram(src)
	var logs []relation.Sequence
	for s := 0; s < 12; s++ {
		tup := relation.Tuple{
			relation.Const(fmt.Sprintf("a%d", s)),
			relation.Const(fmt.Sprintf("b%d", s%4)),
			relation.Const(fmt.Sprintf("c%d", s%2)),
		}
		step := relation.NewInstance()
		step.Add("out", tup)
		logs = append(logs, relation.Sequence{step})
	}
	for _, par := range []int{1, 4} {
		b.Run(fmt.Sprintf("par=%d", par), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := verify.LogValidityBatch(m, nil, logs, &verify.Options{SkipReplay: true, Parallelism: par})
				if err != nil {
					b.Fatal(err)
				}
				for _, r := range res {
					if !r.Valid {
						b.Fatal("echo log rejected")
					}
				}
			}
		})
	}
}

// BenchmarkE5ProjectionReduction runs the Proposition 3.1 transducer on the
// paper's F ⊭ G witness.
func BenchmarkE5ProjectionReduction(b *testing.B) {
	f := deps.Set{Arity: 2, FDs: []deps.FD{{Lhs: []int{1}, Rhs: 2}}}
	g := deps.Set{Arity: 2, IncDs: []deps.IncD{{Lhs: []int{1}, Rhs: []int{2}}}}
	m, err := deps.Prop31Transducer(f, g)
	if err != nil {
		b.Fatal(err)
	}
	_, witness := deps.Implies(f, g, 1000)
	step1 := relation.NewInstance()
	step1.Ensure("r", 2).UnionWith(witness)
	seq := relation.Sequence{step1, relation.NewInstance()}
	empty := relation.NewInstance()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run, err := m.Execute(empty, seq)
		if err != nil || run.Outputs[1].Rel(deps.ViolG).Len() == 0 {
			b.Fatal("violg not derived")
		}
	}
}

// BenchmarkE6GoalReach times Theorem 3.2 on reachable and unreachable
// goals.
func BenchmarkE6GoalReach(b *testing.B) {
	m := models.Short()
	db := models.MagazineDB()
	for _, tc := range []struct {
		name string
		goal string
		want bool
	}{
		{"reachable", "deliver(le-monde)", true},
		{"unreachable", "deliver(atlantis)", false},
	} {
		g, err := verify.ParseGoal(tc.goal)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := verify.ReachGoal(m, db, g, &verify.Options{SkipReplay: true})
				if err != nil || res.Reachable != tc.want {
					b.Fatal("wrong verdict")
				}
			}
		})
	}
}

// BenchmarkE7Temporal times Theorem 3.3 on the payment property.
func BenchmarkE7Temporal(b *testing.B) {
	m := models.Short()
	db := models.MagazineDB()
	c, err := verify.ParseCondition("deliver(X), price(X,Y) => past-pay(X,Y)")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := verify.CheckTemporal(m, db, []*verify.Condition{c}, &verify.Options{SkipReplay: true})
		if err != nil || !res.Holds {
			b.Fatal("property should hold")
		}
	}
}

// BenchmarkE8Containment times Theorem 3.5 on the short/friendly pair.
func BenchmarkE8Containment(b *testing.B) {
	logSet := []string{"order", "pay", "sendbill", "deliver"}
	short := models.WithLog(models.Short(), logSet...)
	friendly := models.WithLog(models.Friendly(), logSet...)
	db := models.MagazineDB()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := verify.Contains(short, friendly, db, &verify.Options{SkipReplay: true})
		if err != nil || !res.Contained {
			b.Fatal("containment should hold")
		}
	}
}

// BenchmarkE9Propositional times the Gen(T) automaton construction and the
// flatness characterization for the ab*c transducer.
func BenchmarkE9Propositional(b *testing.B) {
	m := models.ABC()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nfa, err := automata.ToAutomaton(m)
		if err != nil {
			b.Fatal(err)
		}
		d := nfa.Determinize().Minimize()
		if !d.Flat() || !d.PrefixClosed() {
			b.Fatal("characterization violated")
		}
	}
}

// BenchmarkE10Tsdi times Theorem 4.1 compilation plus enforcement of a
// 4-step session.
func BenchmarkE10Tsdi(b *testing.B) {
	m := models.Short()
	db := models.MagazineDB()
	s := tsdi.MustParse("pay(X,Y) => price(X,Y)", "pay(X,Y) => past-order(X)")
	session := relation.Sequence{
		models.Step(models.F("order", "time")),
		models.Step(models.F("pay", "time", "855")),
		models.Step(models.F("order", "newsweek")),
		models.Step(models.F("pay", "newsweek", "845")),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enf, err := tsdi.Enforce(m, s)
		if err != nil {
			b.Fatal(err)
		}
		run, err := enf.Execute(db, session)
		if err != nil || !run.Valid(core.ErrorFree) {
			b.Fatal("legal session rejected")
		}
	}
}

// BenchmarkE11TuringSim times a full three-stage Theorem 4.2 simulation.
func BenchmarkE11TuringSim(b *testing.B) {
	m := &turing.Machine{
		Symbols: []string{"blank", "a", "b"}, Blank: "blank", Start: "q0", Halt: "h",
		Rules: []turing.Rule{
			{State: "q0", Read: "blank", Write: "a", Move: turing.Right, Next: "q1"},
			{State: "q1", Read: "blank", Write: "b", Move: turing.Right, Next: "q2"},
			{State: "q2", Read: "blank", Write: "blank", Move: turing.Left, Next: "q3"},
			{State: "q3", Read: "b", Write: "b", Move: turing.Left, Next: "h"},
		},
	}
	tm, err := turing.Compile(m)
	if err != nil {
		b.Fatal(err)
	}
	var comp turing.Computation
	if err := m.Enumerate(4, 10, func(c turing.Computation) bool {
		comp = c
		return false
	}); err != nil {
		b.Fatal(err)
	}
	inputs, err := turing.DriveInputs(m, comp, -1)
	if err != nil {
		b.Fatal(err)
	}
	empty := relation.NewInstance()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run, err := tm.Execute(empty, inputs)
		if err != nil || !run.Valid(core.ErrorFree) {
			b.Fatal("simulation errored")
		}
	}
}

// BenchmarkE12ErrorFreeVerify times Theorem 4.4 on STRICT.
func BenchmarkE12ErrorFreeVerify(b *testing.B) {
	m := models.Strict()
	db := models.MagazineDB()
	s := tsdi.MustParse("pay(X,Y) => price(X,Y)")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := verify.CheckErrorFree(m, db, s, &verify.Options{SkipReplay: true})
		if err != nil || !res.Holds {
			b.Fatal("enforced sentence rejected")
		}
	}
}

// BenchmarkE12ErrorFreeVerifyParallel times Theorem 4.4 on STRICT with a
// multi-clause sentence, so the per-(clause, run length) subproblems give
// the engine a genuine intra-procedure fan-out (seven units here).
func BenchmarkE12ErrorFreeVerifyParallel(b *testing.B) {
	m := models.Strict()
	db := models.MagazineDB()
	s := tsdi.MustParse(
		"pay(X,Y) => price(X,Y)",
		"pay(X,Y), past-order(X) => price(X,Y)",
		"order(X), past-order(X) => pay(X,X)",
		"pay(X,Y), past-pay(X,Y) => price(X,Y)",
	)
	for _, par := range []int{1, 4} {
		b.Run(fmt.Sprintf("par=%d", par), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := verify.CheckErrorFree(m, db, s, &verify.Options{SkipReplay: true, Parallelism: par})
				if err != nil || !res.Holds {
					b.Fatal("enforced sentence rejected")
				}
			}
		})
	}
}

// BenchmarkE13ErrorFreeContain times Theorem 4.6 on strict vs stricter.
func BenchmarkE13ErrorFreeContain(b *testing.B) {
	t1, t2 := models.Stricter(), models.Strict()
	db := models.MagazineDB()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := verify.ErrorFreeContained(t1, t2, db, &verify.Options{SkipReplay: true})
		if err != nil || !res.Contained {
			b.Fatal("containment should hold")
		}
	}
}

// BenchmarkE14Acceptors times validity checking under the three acceptance
// modes on a guarded session.
func BenchmarkE14Acceptors(b *testing.B) {
	m := models.Guarded()
	db := models.MagazineDB()
	session := relation.Sequence{
		models.Step(models.F("order", "time")),
		models.Step(models.F("pay", "time", "855")),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run, err := m.Execute(db, session)
		if err != nil || !run.Valid(core.ErrorFree) || run.Valid(core.OKEveryStep) {
			b.Fatal("acceptance verdicts wrong")
		}
	}
}

// BenchmarkE15LogMinimize times the bounded determinacy check behind log
// minimization.
func BenchmarkE15LogMinimize(b *testing.B) {
	m := models.Short()
	db := models.MagazineDB()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := verify.RemovableFromLog(m, db, "deliver", 2, &verify.Options{SkipReplay: true})
		if err != nil || !res.Removable {
			b.Fatal("deliver should be removable")
		}
	}
}

// BenchmarkE16ContainmentReduction times the Theorem 3.4 reduction end to
// end on the paper's example.
func BenchmarkE16ContainmentReduction(b *testing.B) {
	f := deps.Set{Arity: 2, FDs: []deps.FD{{Lhs: []int{1}, Rhs: 2}}}
	g := deps.Set{Arity: 2, IncDs: []deps.IncD{{Lhs: []int{1}, Rhs: []int{2}}}}
	_, witness := deps.Implies(f, g, 1000)
	empty := relation.NewInstance()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		red, err := deps.NewThm34Reduction(f, g)
		if err != nil {
			b.Fatal(err)
		}
		inputs := append(red.WellFormedInputs(witness), relation.NewInstance())
		run, err := red.TFG.Execute(empty, inputs)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := red.SimInputsForLog(run.Logs); err == nil {
			b.Fatal("Sim imitated a non-implication witness")
		}
	}
}

// BenchmarkE17Compose times the bounded compatibility search on the
// customer/supplier market.
func BenchmarkE17Compose(b *testing.B) {
	goal, err := verify.ParseGoal("deliver(widget)")
	if err != nil {
		b.Fatal(err)
	}
	supplier := core.MustParseProgram(benchSupplierSrc)
	customer := core.MustParseProgram(benchCustomerSrc)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := compose.New()
		db := relation.NewInstance()
		db.Add("price", relation.Tuple{"widget", "5"})
		if err := n.AddNode("supplier", supplier, db); err != nil {
			b.Fatal(err)
		}
		if err := n.AddNode("customer", customer, nil); err != nil {
			b.Fatal(err)
		}
		for _, w := range [][4]string{
			{"customer", "order", "supplier", "order"},
			{"customer", "pay", "supplier", "pay"},
			{"supplier", "invoice", "customer", "invoice"},
			{"supplier", "deliver", "customer", "arrived"},
		} {
			if err := n.Connect(w[0], w[1], w[2], w[3]); err != nil {
				b.Fatal(err)
			}
		}
		res, err := n.Compatible([]compose.Goal{{Node: "supplier", G: goal}}, []relation.Const{"widget"}, 5)
		if err != nil || !res.Compatible {
			b.Fatal("market should be compatible")
		}
	}
}

const benchSupplierSrc = `
transducer supplier
schema
  database: price/2;
  input: order/1, pay/2;
  state: past-order/1, past-pay/2;
  output: invoice/2, deliver/1, error/0;
  log: invoice, deliver;
state rules
  past-order(X) +:- order(X);
  past-pay(X,Y) +:- pay(X,Y);
output rules
  invoice(X,Y) :- order(X), price(X,Y), NOT past-pay(X,Y);
  deliver(X) :- past-order(X), price(X,Y), pay(X,Y), NOT past-pay(X,Y);
  error :- pay(X,Y), NOT past-order(X);
`

const benchCustomerSrc = `
transducer prompt
schema
  input: want/1, invoice/2, arrived/1;
  state: past-want/1, past-invoice/2, past-arrived/1;
  output: order/1, pay/2, error/0;
  log: order, pay;
state rules
  past-want(X) +:- want(X);
  past-invoice(X,Y) +:- invoice(X,Y);
  past-arrived(X) +:- arrived(X);
output rules
  order(X) :- want(X), NOT past-want(X);
  pay(X,Y) :- invoice(X,Y), NOT past-invoice(X,Y);
`

// BenchmarkS1SAT times the CDCL solver on pigeonhole instances.
func BenchmarkS1SAT(b *testing.B) {
	for _, n := range []int{5, 6, 7} {
		b.Run(fmt.Sprintf("php%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := buildPigeonhole(n)
				if s.Solve() != sat.Unsat {
					b.Fatal("PHP should be unsat")
				}
			}
		})
	}
}

func buildPigeonhole(n int) *sat.Solver {
	s := sat.New()
	p := make([][]int, n+1)
	for i := 0; i <= n; i++ {
		p[i] = make([]int, n)
		for j := 0; j < n; j++ {
			p[i][j] = s.NewVar()
		}
	}
	for i := 0; i <= n; i++ {
		s.AddClause(p[i]...)
	}
	for j := 0; j < n; j++ {
		for i := 0; i <= n; i++ {
			for k := i + 1; k <= n; k++ {
				s.AddClause(-p[i][j], -p[k][j])
			}
		}
	}
	return s
}

// BenchmarkS2Datalog times FRIENDLY steps over growing catalogs.
func BenchmarkS2Datalog(b *testing.B) {
	for _, n := range []int{10, 50} {
		m := models.Friendly()
		db := relation.NewInstance()
		var seq relation.Sequence
		rnd := rand.New(rand.NewSource(3))
		for i := 0; i < n; i++ {
			p := relation.Const(fmt.Sprintf("p%d", i))
			price := relation.Const(fmt.Sprintf("%d", 100+rnd.Intn(900)))
			db.Add("price", relation.Tuple{p, price})
			db.Add("available", relation.Tuple{p})
			s1 := relation.NewInstance()
			s1.Add("order", relation.Tuple{p})
			s2 := relation.NewInstance()
			s2.Add("pay", relation.Tuple{p, price})
			seq = append(seq, s1, s2)
		}
		b.Run(fmt.Sprintf("products=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := m.Execute(db, seq); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
