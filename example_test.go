package spocus_test

import (
	"fmt"

	spocus "repro"
)

// ExampleParseProgram runs the paper's SHORT transducer on a two-step
// shopping session.
func ExampleParseProgram() {
	m, err := spocus.ParseProgram(spocus.ShortSrc)
	if err != nil {
		panic(err)
	}
	run, err := m.Execute(spocus.MagazineDB(), spocus.Sequence{
		spocus.Step(spocus.F("order", "time")),
		spocus.Step(spocus.F("pay", "time", "855")),
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(run.Outputs[0])
	fmt.Println(run.Outputs[1])
	// Output:
	// {sendbill(time, 855)}
	// {deliver(time)}
}

// ExampleLogValidity audits a partial log: the unlogged order input is
// reconstructed for a genuine log, while a forged delivery is rejected.
func ExampleLogValidity() {
	m := spocus.Short()
	db := spocus.MagazineDB()
	genuine := spocus.Sequence{
		spocus.Step(spocus.F("sendbill", "newsweek", "845")),
		spocus.Step(spocus.F("pay", "newsweek", "845"), spocus.F("deliver", "newsweek")),
	}
	res, err := spocus.LogValidity(m, db, genuine, nil)
	if err != nil {
		panic(err)
	}
	fmt.Println("genuine valid:", res.Valid)
	fmt.Println("reconstructed step 1:", res.Witness[0])

	forged := spocus.Sequence{spocus.Step(spocus.F("deliver", "newsweek"))}
	res2, err := spocus.LogValidity(m, db, forged, nil)
	if err != nil {
		panic(err)
	}
	fmt.Println("forged valid:", res2.Valid)
	// Output:
	// genuine valid: true
	// reconstructed step 1: {order(newsweek)}
	// forged valid: false
}

// ExampleCheckTemporal verifies the paper's flagship property statically.
func ExampleCheckTemporal() {
	c, err := spocus.ParseCondition("deliver(X), price(X,Y) => past-pay(X,Y)")
	if err != nil {
		panic(err)
	}
	res, err := spocus.CheckTemporal(spocus.Short(), spocus.MagazineDB(), []*spocus.Condition{c}, nil)
	if err != nil {
		panic(err)
	}
	fmt.Println("no delivery before payment:", res.Holds)
	// Output:
	// no delivery before payment: true
}

// ExampleEnforce compiles a T_sdi sentence into error rules (Theorem 4.1).
func ExampleEnforce() {
	s, err := spocus.ParseSentence("pay(X,Y) => price(X,Y)")
	if err != nil {
		panic(err)
	}
	disciplined, err := spocus.Enforce(spocus.Short(), s)
	if err != nil {
		panic(err)
	}
	run, err := disciplined.Execute(spocus.MagazineDB(), spocus.Sequence{
		spocus.Step(spocus.F("pay", "time", "999")), // wrong price
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("wrong-price session error-free:", run.Valid(spocus.ErrorFree))
	// Output:
	// wrong-price session error-free: false
}
