package main

// The acceptance test of the serving layer: a real spocus-server process is
// killed with SIGKILL mid-session and restarted over the same durability
// directory; the recovered log must be byte-identical to an uncrashed run.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/models"
	"repro/internal/relation"
	"repro/internal/session"
)

// shopStep is the Figure 1 shopping loop against the magazine database:
// order an item on even steps, pay for it on odd ones. Deterministic in
// (session index, step index), so an in-process oracle can replay any
// recovered prefix.
func shopStep(i, j int) relation.Instance {
	products := []string{"time", "newsweek", "le-monde"}
	prices := []string{"855", "845", "8350"}
	p := (i + j/2) % len(products)
	in := relation.NewInstance()
	if j%2 == 0 {
		in.Add("order", relation.Tuple{relation.Const(products[p])})
	} else {
		in.Add("pay", relation.Tuple{relation.Const(products[p]), relation.Const(prices[p])})
	}
	return in
}

// buildServer compiles the server binary once per test run.
func buildServer(t *testing.T) string {
	t.Helper()
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not available")
	}
	bin := filepath.Join(t.TempDir(), "spocus-server")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// testFsync is the WAL policy the crash tests run under. CI's durability
// matrix overrides it to prove recovery holds under every policy; the
// byte-identical-prefix assertions are policy-independent — only the
// "every acked step survives" guarantee needs -fsync always.
func testFsync() string {
	if p := os.Getenv("SPOCUS_TEST_FSYNC"); p != "" {
		return p
	}
	return "always"
}

// startServer launches the binary and returns its base URL and process.
func startServer(t *testing.T, bin, dir string, extra ...string) (*exec.Cmd, string) {
	t.Helper()
	args := append([]string{"serve", "-addr", "127.0.0.1:0", "-dir", dir, "-fsync", testFsync()}, extra...)
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.Process != nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	// The serve subcommand prints "spocus-server listening on http://ADDR".
	sc := bufio.NewScanner(stdout)
	deadline := time.After(30 * time.Second)
	lines := make(chan string, 16)
	go func() {
		for sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
	}()
	for {
		select {
		case line, ok := <-lines:
			if !ok {
				t.Fatal("server exited before listening")
			}
			if i := strings.Index(line, "listening on "); i >= 0 {
				url := strings.TrimSpace(line[i+len("listening on "):])
				go func() { // keep draining so the child never blocks on stdout
					for range lines {
					}
				}()
				return cmd, url
			}
		case <-deadline:
			t.Fatal("timed out waiting for server to listen")
		}
	}
}

func post(t *testing.T, url string, body any, out any) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		t.Fatalf("POST %s: status %d", url, resp.StatusCode)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
}

func getLog(t *testing.T, base, id string) *session.LogResult {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("%s/sessions/%s/log", base, id))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET log: status %d", resp.StatusCode)
	}
	var lr session.LogResult
	if err := json.NewDecoder(resp.Body).Decode(&lr); err != nil {
		t.Fatal(err)
	}
	return &lr
}

// TestCrashRecovery drives the Figure 1 session of SHORT over HTTP, kills
// the server with SIGKILL after step 2, restarts it on the same directory,
// and checks the log is identical to the uncrashed reference run — then
// finishes the session and checks the complete log too.
func TestCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns server processes")
	}
	bin := buildServer(t)
	dir := t.TempDir()

	ref, err := models.Short().Execute(models.MagazineDB(), models.Fig1Inputs())
	if err != nil {
		t.Fatal(err)
	}
	inputs := models.Fig1Inputs()

	cmd, base := startServer(t, bin, dir)
	var info session.Info
	post(t, base+"/sessions", map[string]string{"model": "short", "id": "fig1"}, &info)
	for _, in := range inputs[:2] {
		var res session.StepResult
		post(t, fmt.Sprintf("%s/sessions/%s/input", base, info.ID), map[string]any{"input": in}, &res)
	}

	// kill -9 mid-run: no shutdown hook runs, no snapshot is taken.
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()

	_, base2 := startServer(t, bin, dir)
	lr := getLog(t, base2, "fig1")
	// Under -fsync always both acked steps must survive; under interval or
	// never (CI's durability matrix) a kill -9 may lose a suffix, but the
	// recovered log must still be an exact prefix of the uncrashed run.
	if testFsync() == "always" && lr.Steps != 2 {
		t.Fatalf("recovered %d steps under -fsync always, want 2 (both were acked)", lr.Steps)
	}
	if lr.Steps > 2 || !lr.Log.Equal(ref.Logs[:lr.Steps]) {
		t.Fatalf("recovered log diverges from uncrashed run:\n got %s\nwant %s", lr.Log, relation.Sequence(ref.Logs[:2]))
	}

	// The revived session keeps serving: finish the Figure 1 run and
	// compare the complete log.
	for i, in := range inputs[lr.Steps:] {
		var res session.StepResult
		post(t, fmt.Sprintf("%s/sessions/fig1/input", base2), map[string]any{"input": in}, &res)
		if want := lr.Steps + i + 1; res.Seq != want {
			t.Errorf("step after recovery got seq %d, want %d", res.Seq, want)
		}
	}
	lr = getLog(t, base2, "fig1")
	if !lr.Log.Equal(ref.Logs) {
		t.Errorf("final log differs from uncrashed run:\n got %s\nwant %s", lr.Log, ref.Logs)
	}
}

// TestCrashGroupCommit is the acceptance test of group commit: many
// sessions step concurrently against a server batching their fsyncs
// (-group-commit-window forces real batches, small segments force rotation
// under load), the process is SIGKILLed mid-batch, and after restart every
// step that was acknowledged before the kill must be present — and every
// recovered log must be an exact prefix of the deterministic oracle run.
// This is exactly the guarantee group commit must not weaken: acks are
// released only after the shared fsync.
func TestCrashGroupCommit(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns server processes")
	}
	bin := buildServer(t)
	dir := t.TempDir()

	const nSessions = 8
	cmd, base := startServer(t, bin, dir,
		"-group-commit-window", "2ms", "-wal-segment-bytes", "4096", "-snapshot-every", "64")
	for i := 0; i < nSessions; i++ {
		var info session.Info
		post(t, base+"/sessions", map[string]string{"model": "short", "id": fmt.Sprintf("gc-%d", i)}, &info)
	}

	// Drive all sessions concurrently so shards see adjacent appends to
	// batch. acked[i] counts steps whose 2xx response arrived — the durable
	// promise under -fsync always.
	var acked [nSessions]atomic.Int64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < nSessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			url := fmt.Sprintf("%s/sessions/gc-%d/input", base, i)
			for j := 0; ; j++ {
				select {
				case <-stop:
					return
				default:
				}
				data, _ := json.Marshal(map[string]any{"input": shopStep(i, j)})
				resp, err := http.Post(url, "application/json", bytes.NewReader(data))
				if err != nil {
					return // the kill severed the connection
				}
				code := resp.StatusCode
				resp.Body.Close()
				if code == http.StatusTooManyRequests {
					j--
					continue
				}
				if code/100 != 2 {
					return
				}
				acked[i].Add(1)
			}
		}(i)
	}

	// Let real load build up, then kill -9 mid-batch: some steps are acked,
	// some are in mailboxes or waiting on the shared fsync.
	deadline := time.Now().Add(10 * time.Second)
	for {
		var total int64
		for i := range acked {
			total += acked[i].Load()
		}
		if total >= 10*nSessions || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()
	close(stop)
	wg.Wait()

	_, base2 := startServer(t, bin, dir)
	for i := 0; i < nSessions; i++ {
		id := fmt.Sprintf("gc-%d", i)
		lr := getLog(t, base2, id)
		n := acked[i].Load()
		if testFsync() == "always" && int64(lr.Steps) < n {
			t.Errorf("%s: recovered %d steps but %d were acked before the kill", id, lr.Steps, n)
		}
		// Determinism check against the oracle: replaying the same inputs
		// in-process must yield the identical log prefix, whatever survived.
		inputs := make(relation.Sequence, lr.Steps)
		for j := range inputs {
			inputs[j] = shopStep(i, j)
		}
		ref, err := models.Short().Execute(models.MagazineDB(), inputs)
		if err != nil {
			t.Fatalf("%s: oracle replay: %v", id, err)
		}
		if !lr.Log.Equal(ref.Logs) {
			t.Errorf("%s: recovered log diverges from oracle at %d steps", id, lr.Steps)
		}
	}
}

// TestServeGracefulShutdown checks SIGTERM snapshots state and a restart
// serves it back with an empty WAL replay.
func TestServeGracefulShutdown(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns server processes")
	}
	bin := buildServer(t)
	dir := t.TempDir()

	cmd, base := startServer(t, bin, dir)
	var info session.Info
	post(t, base+"/sessions", map[string]string{"model": "auction", "id": "a1"}, &info)
	var res session.StepResult
	in := relation.NewInstance()
	in.Add("list", relation.Tuple{"clock"})
	post(t, base+"/sessions/a1/input", map[string]any{"input": in}, &res)
	if !res.Output.Has("ack", relation.Tuple{"clock"}) {
		t.Fatalf("auction ack missing: %s", res.Output)
	}

	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("graceful shutdown exit: %v", err)
	}

	_, base2 := startServer(t, bin, dir)
	lr := getLog(t, base2, "a1")
	if lr.Steps != 1 || !lr.Log[0].Has("list", relation.Tuple{"clock"}) {
		t.Fatalf("restored auction log: %+v", lr)
	}
}
