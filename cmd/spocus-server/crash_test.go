package main

// The acceptance test of the serving layer: a real spocus-server process is
// killed with SIGKILL mid-session and restarted over the same durability
// directory; the recovered log must be byte-identical to an uncrashed run.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/models"
	"repro/internal/relation"
	"repro/internal/session"
)

// buildServer compiles the server binary once per test run.
func buildServer(t *testing.T) string {
	t.Helper()
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not available")
	}
	bin := filepath.Join(t.TempDir(), "spocus-server")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// startServer launches the binary and returns its base URL and process.
func startServer(t *testing.T, bin, dir string) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(bin, "serve", "-addr", "127.0.0.1:0", "-dir", dir, "-fsync", "always")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.Process != nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	// The serve subcommand prints "spocus-server listening on http://ADDR".
	sc := bufio.NewScanner(stdout)
	deadline := time.After(30 * time.Second)
	lines := make(chan string, 16)
	go func() {
		for sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
	}()
	for {
		select {
		case line, ok := <-lines:
			if !ok {
				t.Fatal("server exited before listening")
			}
			if i := strings.Index(line, "listening on "); i >= 0 {
				url := strings.TrimSpace(line[i+len("listening on "):])
				go func() { // keep draining so the child never blocks on stdout
					for range lines {
					}
				}()
				return cmd, url
			}
		case <-deadline:
			t.Fatal("timed out waiting for server to listen")
		}
	}
}

func post(t *testing.T, url string, body any, out any) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		t.Fatalf("POST %s: status %d", url, resp.StatusCode)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
}

func getLog(t *testing.T, base, id string) *session.LogResult {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("%s/sessions/%s/log", base, id))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET log: status %d", resp.StatusCode)
	}
	var lr session.LogResult
	if err := json.NewDecoder(resp.Body).Decode(&lr); err != nil {
		t.Fatal(err)
	}
	return &lr
}

// TestCrashRecovery drives the Figure 1 session of SHORT over HTTP, kills
// the server with SIGKILL after step 2, restarts it on the same directory,
// and checks the log is identical to the uncrashed reference run — then
// finishes the session and checks the complete log too.
func TestCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns server processes")
	}
	bin := buildServer(t)
	dir := t.TempDir()

	ref, err := models.Short().Execute(models.MagazineDB(), models.Fig1Inputs())
	if err != nil {
		t.Fatal(err)
	}
	inputs := models.Fig1Inputs()

	cmd, base := startServer(t, bin, dir)
	var info session.Info
	post(t, base+"/sessions", map[string]string{"model": "short", "id": "fig1"}, &info)
	for _, in := range inputs[:2] {
		var res session.StepResult
		post(t, fmt.Sprintf("%s/sessions/%s/input", base, info.ID), map[string]any{"input": in}, &res)
	}

	// kill -9 mid-run: no shutdown hook runs, no snapshot is taken.
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()

	_, base2 := startServer(t, bin, dir)
	lr := getLog(t, base2, "fig1")
	if lr.Steps != 2 || !lr.Log.Equal(ref.Logs[:2]) {
		t.Fatalf("recovered log differs from uncrashed run:\n got %s\nwant %s", lr.Log, relation.Sequence(ref.Logs[:2]))
	}

	// The revived session keeps serving: finish the Figure 1 run and
	// compare the complete log.
	var res session.StepResult
	post(t, fmt.Sprintf("%s/sessions/fig1/input", base2), map[string]any{"input": inputs[2]}, &res)
	if res.Seq != 3 || !res.Output.Equal(ref.Outputs[2]) {
		t.Errorf("step 3 after recovery diverged: %+v", res)
	}
	lr = getLog(t, base2, "fig1")
	if !lr.Log.Equal(ref.Logs) {
		t.Errorf("final log differs from uncrashed run:\n got %s\nwant %s", lr.Log, ref.Logs)
	}
}

// TestServeGracefulShutdown checks SIGTERM snapshots state and a restart
// serves it back with an empty WAL replay.
func TestServeGracefulShutdown(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns server processes")
	}
	bin := buildServer(t)
	dir := t.TempDir()

	cmd, base := startServer(t, bin, dir)
	var info session.Info
	post(t, base+"/sessions", map[string]string{"model": "auction", "id": "a1"}, &info)
	var res session.StepResult
	in := relation.NewInstance()
	in.Add("list", relation.Tuple{"clock"})
	post(t, base+"/sessions/a1/input", map[string]any{"input": in}, &res)
	if !res.Output.Has("ack", relation.Tuple{"clock"}) {
		t.Fatalf("auction ack missing: %s", res.Output)
	}

	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("graceful shutdown exit: %v", err)
	}

	_, base2 := startServer(t, bin, dir)
	lr := getLog(t, base2, "a1")
	if lr.Steps != 1 || !lr.Log[0].Has("list", relation.Tuple{"clock"}) {
		t.Fatalf("restored auction log: %+v", lr)
	}
}
