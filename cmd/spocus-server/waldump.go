package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/session"
)

// waldump pretty-prints the durable files of shard directories: one line
// per record (type, LSN, payload size, encoding, intern-table growth), in
// either codec, plus torn-tail reports. Point it at a single shard dir
// (data/shard-000) or at an engine dir, in which case every shard-* child
// is dumped.
//
//	spocus-server waldump data/shard-000
//	spocus-server waldump data
func waldump(args []string) {
	fs := flag.NewFlagSet("waldump", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: spocus-server waldump <shard-dir | engine-dir>")
		os.Exit(2)
	}
	dir := fs.Arg(0)
	shards, err := filepath.Glob(filepath.Join(dir, "shard-*"))
	if err != nil {
		fatal(err)
	}
	sort.Strings(shards)
	if len(shards) == 0 {
		shards = []string{dir}
	}
	for i, shard := range shards {
		if len(shards) > 1 {
			if i > 0 {
				fmt.Println()
			}
			fmt.Printf("== %s ==\n", shard)
		}
		if err := session.DumpWAL(os.Stdout, shard); err != nil {
			fatal(err)
		}
	}
}
