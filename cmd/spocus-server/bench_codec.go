package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"repro/internal/relation"
	"repro/internal/session"
)

// codecMatrixRow is one codec's cell of `bench -codec-matrix`: the four
// durability surfaces measured under one encoding. Binary rows carry the
// json/binary ratios.
type codecMatrixRow struct {
	Codec           string  `json:"codec"`
	Steps           int     `json:"steps"`
	WALBytesPerStep float64 `json:"wal_bytes_per_step"`
	RecoveryMs      float64 `json:"recovery_ms"`
	ShipMs          float64 `json:"ship_ms"`
	ShipBytes       int     `json:"ship_bytes"`
	StreamBytes     int     `json:"stream_bytes"` // full replication fetch, JSON envelope included
	WALRatioVsJSON  float64 `json:"wal_ratio_vs_json,omitempty"`
	StreamRatio     float64 `json:"stream_ratio_vs_json,omitempty"`
}

// benchCodecMatrix measures the WAL codec on every surface it touches: WAL
// density (bytes per step), crash recovery (replaying the whole run),
// session ship (export-state → install, encode and decode included), and
// the replication stream (one full fetch of the shard's WAL as the wire
// would carry it). One long session, each codec on a fresh temp dir;
// snapshots are disabled so recovery replays every record.
func benchCodecMatrix(model string, db relation.Instance, script func(int, int) relation.Instance, steps int) {
	var rows []codecMatrixRow
	base := codecMatrixRow{}
	for _, cdc := range []session.Codec{session.CodecJSON, session.CodecBinary} {
		dir, err := os.MkdirTemp("", "spocus-codec-*")
		if err != nil {
			fatal(err)
		}
		defer os.RemoveAll(dir)
		eng, err := session.NewEngine(session.Config{
			Dir: dir, Shards: 1, Fsync: session.FsyncNever, SnapshotEvery: -1, Codec: cdc,
		})
		if err != nil {
			fatal(err)
		}
		const id = "codec-bench"
		if _, err := eng.Open(&session.OpenRequest{ID: id, Model: model, DB: db}); err != nil {
			fatal(err)
		}
		for j := 0; j < steps; j++ {
			if _, err := eng.Input(id, script(0, j)); err != nil {
				fatal(err)
			}
		}
		row := codecMatrixRow{
			Codec:           cdc.String(),
			Steps:           steps,
			WALBytesPerStep: float64(eng.Stats().WALBytesTotal) / float64(steps),
		}

		// Ship: export on the source, install on a fresh in-memory target,
		// encode/decode and digest verification included. Best of 3.
		row.ShipMs, row.ShipBytes = shipOnce(eng, id, cdc)
		for i := 0; i < 2; i++ {
			if ms, _ := shipOnce(eng, id, cdc); ms < row.ShipMs {
				row.ShipMs = ms
			}
		}

		// Replication stream: fetch the whole WAL and apply it to a
		// follower-like in-memory engine, counting the JSON envelope bytes
		// the wire actually carries. The binary wire polls with the
		// follower decoder's table length, exactly like internal/replica.
		follower, err := session.NewEngine(session.Config{Shards: 1})
		if err != nil {
			fatal(err)
		}
		dec := session.NewReplDecoder()
		binaryWire := cdc == session.CodecBinary
		var from int64
		for {
			itab := -1
			if binaryWire {
				itab = dec.TableLen()
			}
			b, err := eng.StreamWAL(context.Background(), 0, from, 0, itab)
			if err != nil {
				fatal(err)
			}
			data, err := json.Marshal(b)
			if err != nil {
				fatal(err)
			}
			row.StreamBytes += len(data)
			if len(b.Records) == 0 {
				break
			}
			for _, rec := range b.Records {
				payload := rec.Payload
				if len(rec.Bin) > 0 {
					payload = rec.Bin
				}
				if err := follower.ApplyReplicatedRecord(dec, payload); err != nil {
					fatal(err)
				}
			}
			from = b.Records[len(b.Records)-1].LSN + 1
		}
		if open := follower.Stats().SessionsOpen; open != 1 {
			fatal(fmt.Errorf("codec matrix: stream applied %d sessions, want 1", open))
		}
		follower.Shutdown()

		// Recovery: abandon without Shutdown (crash-style) and time a fresh
		// engine replaying the full WAL.
		start := time.Now()
		e2, err := session.NewEngine(session.Config{Dir: dir, Shards: 1, SnapshotEvery: -1})
		if err != nil {
			fatal(err)
		}
		row.RecoveryMs = float64(time.Since(start).Microseconds()) / 1000
		if e2.Stats().SessionsOpen != 1 {
			fatal(fmt.Errorf("codec matrix: recovered %d sessions, want 1", e2.Stats().SessionsOpen))
		}
		e2.Shutdown()

		if cdc == session.CodecJSON {
			base = row
		} else if base.WALBytesPerStep > 0 {
			row.WALRatioVsJSON = base.WALBytesPerStep / row.WALBytesPerStep
			row.StreamRatio = float64(base.StreamBytes) / float64(row.StreamBytes)
		}
		rows = append(rows, row)
	}
	emit(rows)
}

// shipOnce times one export-state → install round trip onto a fresh
// in-memory engine, returning (milliseconds, shipped bytes). The source
// session is unfrozen again afterwards.
func shipOnce(eng *session.Engine, id string, cdc session.Codec) (float64, int) {
	target, err := session.NewEngine(session.Config{Shards: 1})
	if err != nil {
		fatal(err)
	}
	defer target.Shutdown()
	defer eng.Unfreeze(id)
	start := time.Now()
	var shipped int
	if cdc == session.CodecBinary {
		data, err := eng.ExportStateBinary(id)
		if err != nil {
			fatal(err)
		}
		shipped = len(data)
		if _, err := target.InstallBinary(data); err != nil {
			fatal(err)
		}
	} else {
		se, err := eng.ExportState(id)
		if err != nil {
			fatal(err)
		}
		data, err := json.Marshal(se)
		if err != nil {
			fatal(err)
		}
		shipped = len(data)
		var se2 session.StateExport
		if err := json.Unmarshal(data, &se2); err != nil {
			fatal(err)
		}
		if _, err := target.Install(&se2); err != nil {
			fatal(err)
		}
	}
	return float64(time.Since(start).Microseconds()) / 1000, shipped
}
