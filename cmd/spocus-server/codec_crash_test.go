package main

// The acceptance test of the WAL codec upgrade: a server writing JSON
// records is SIGKILLed mid-traffic, restarted under the binary default
// (the upgrade), SIGKILLed mid-traffic again, and recovered. The final
// engine replays a WAL that genuinely mixes both formats, and every step
// acked in either phase must survive with logs identical to the
// deterministic oracle.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/models"
	"repro/internal/relation"
	"repro/internal/session"
)

// driveUntilKill steps every session concurrently (continuing each one's
// deterministic script at start[i]) until each has at least perSession
// newly acked steps, then SIGKILLs the server mid-traffic and returns the
// per-session acked totals (start + new).
func driveUntilKill(t *testing.T, cmd interface{ Kill() error }, base string, start []int64, perSession int64) []int64 {
	t.Helper()
	n := len(start)
	acked := make([]atomic.Int64, n)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			url := fmt.Sprintf("%s/sessions/up-%d/input", base, i)
			for j := start[i]; ; j++ {
				select {
				case <-stop:
					return
				default:
				}
				data, _ := json.Marshal(map[string]any{"input": shopStep(i, int(j))})
				resp, err := http.Post(url, "application/json", bytes.NewReader(data))
				if err != nil {
					return // the kill severed the connection
				}
				code := resp.StatusCode
				resp.Body.Close()
				if code == http.StatusTooManyRequests {
					j--
					continue
				}
				if code/100 != 2 {
					return
				}
				acked[i].Add(1)
			}
		}(i)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		done := true
		for i := range acked {
			if acked[i].Load() < perSession {
				done = false
			}
		}
		if done || time.Now().After(deadline) {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := cmd.Kill(); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	totals := make([]int64, n)
	for i := range acked {
		totals[i] = start[i] + acked[i].Load()
	}
	return totals
}

func TestCrashMixedCodecUpgrade(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns server processes")
	}
	bin := buildServer(t)
	dir := t.TempDir()
	const nSessions = 4

	// Phase 1: the pre-upgrade server writes JSON records. Snapshots are
	// disabled in every phase so the final recovery replays the raw mixed
	// WAL instead of a compacted image.
	cmd, base := startServer(t, bin, dir, "-wal-codec", "json", "-snapshot-every", "-1")
	for i := 0; i < nSessions; i++ {
		var info session.Info
		post(t, base+"/sessions", map[string]string{"model": "short", "id": fmt.Sprintf("up-%d", i)}, &info)
	}
	acked := driveUntilKill(t, cmd.Process, base, make([]int64, nSessions), 6)
	cmd.Wait()

	// Phase 2: restart under the binary default — the upgrade — and kill
	// again mid-traffic, so binary segments pile up behind the JSON ones.
	cmd2, base2 := startServer(t, bin, dir, "-snapshot-every", "-1")
	start := make([]int64, nSessions)
	for i := range start {
		// Resume each script where the recovered session actually is (an
		// acked-but-unreported step may have survived the first kill).
		start[i] = int64(getLog(t, base2, fmt.Sprintf("up-%d", i)).Steps)
		if testFsync() == "always" && start[i] < acked[i] {
			t.Errorf("up-%d: recovered %d steps but %d were acked pre-upgrade", i, start[i], acked[i])
		}
	}
	acked = driveUntilKill(t, cmd2.Process, base2, start, 6)
	cmd2.Wait()

	// Phase 3: recover through the mixed-format WAL and verify against the
	// deterministic oracle.
	_, base3 := startServer(t, bin, dir, "-snapshot-every", "-1")
	for i := 0; i < nSessions; i++ {
		id := fmt.Sprintf("up-%d", i)
		lr := getLog(t, base3, id)
		if testFsync() == "always" && int64(lr.Steps) < acked[i] {
			t.Errorf("%s: recovered %d steps but %d were acked across both phases", id, lr.Steps, acked[i])
		}
		inputs := make(relation.Sequence, lr.Steps)
		for j := range inputs {
			inputs[j] = shopStep(i, j)
		}
		ref, err := models.Short().Execute(models.MagazineDB(), inputs)
		if err != nil {
			t.Fatalf("%s: oracle replay: %v", id, err)
		}
		if !lr.Log.Equal(ref.Logs) {
			t.Errorf("%s: recovered log diverges from oracle at %d steps", id, lr.Steps)
		}
		// The upgraded server keeps serving: one more step lands cleanly.
		var res session.StepResult
		post(t, fmt.Sprintf("%s/sessions/%s/input", base3, id), map[string]any{"input": shopStep(i, lr.Steps)}, &res)
		if res.Seq != lr.Steps+1 {
			t.Errorf("%s: step after mixed recovery got seq %d, want %d", id, res.Seq, lr.Steps+1)
		}
	}
}
