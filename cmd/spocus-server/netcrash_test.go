package main

// The network counterpart of crash_test.go: concurrent NETWORK sessions —
// each a whole customer/supplier/shipper marketplace — are stepped through
// a real server process that is SIGKILLed mid-batch. Every acked joint
// step must survive recovery under -fsync always, and every recovered
// joint log must be byte-identical to the compose oracle run over the same
// external stimulus: the one-WAL-record-per-joint-step design either
// persists a whole network step or none of it.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/compose"
	"repro/internal/models"
	"repro/internal/session"
)

// netStep is the deterministic external stimulus of joint step j for
// network session i: the canonical marketplace conversation, cycled with a
// rotating product.
func netStep(i, j int) compose.StepInputs {
	products := models.NetProducts()
	period := len(models.NetworkScript("marketplace", products[0]))
	product := products[(i+j/period)%len(products)]
	return models.NetworkScript("marketplace", product)[j%period]
}

// netOracle replays steps joint steps of network session i in-process with
// compose.Network — the ground truth the recovered joint log must equal.
func netOracle(t *testing.T, i, steps int) []session.JointLogEntry {
	t.Helper()
	nw, err := models.Network("marketplace").Build(models.Resolve)
	if err != nil {
		t.Fatal(err)
	}
	nw.Start()
	joint := make([]session.JointLogEntry, 0, steps)
	for j := 0; j < steps; j++ {
		js, err := nw.StepOnce(netStep(i, j))
		if err != nil {
			t.Fatalf("oracle step %d: %v", j+1, err)
		}
		joint = append(joint, session.JointLogEntry{Logs: js.Logs, Wire: js.Wire})
	}
	return joint
}

// TestCrashNetworkSessions: SIGKILL a server running concurrent network
// sessions under group commit; after restart every acked joint step is
// present and the joint logs match the oracle bit-for-bit.
func TestCrashNetworkSessions(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns server processes")
	}
	bin := buildServer(t)
	dir := t.TempDir()

	const nSessions = 6
	cmd, base := startServer(t, bin, dir,
		"-group-commit-window", "2ms", "-wal-segment-bytes", "4096", "-snapshot-every", "32")
	for i := 0; i < nSessions; i++ {
		var info session.Info
		post(t, base+"/sessions", map[string]any{
			"id":      fmt.Sprintf("net-%d", i),
			"network": models.Network("marketplace"),
		}, &info)
		if !info.Network || len(info.Nodes) != 3 {
			t.Fatalf("open network: info %+v", info)
		}
	}

	// acked[i] counts joint steps whose 2xx response arrived — under
	// -fsync always, each was durable (one WAL record per joint step)
	// before its ack.
	var acked [nSessions]atomic.Int64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < nSessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			url := fmt.Sprintf("%s/sessions/net-%d/input", base, i)
			for j := 0; ; j++ {
				select {
				case <-stop:
					return
				default:
				}
				data, _ := json.Marshal(map[string]any{"inputs": netStep(i, j)})
				resp, err := http.Post(url, "application/json", bytes.NewReader(data))
				if err != nil {
					return // the kill severed the connection
				}
				code := resp.StatusCode
				resp.Body.Close()
				if code == http.StatusTooManyRequests {
					j--
					continue
				}
				if code/100 != 2 {
					return
				}
				acked[i].Add(1)
			}
		}(i)
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		var total int64
		for i := range acked {
			total += acked[i].Load()
		}
		if total >= 10*nSessions || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()
	close(stop)
	wg.Wait()

	_, base2 := startServer(t, bin, dir)
	for i := 0; i < nSessions; i++ {
		id := fmt.Sprintf("net-%d", i)
		lr := getLog(t, base2, id)
		n := acked[i].Load()
		if testFsync() == "always" && int64(lr.Steps) < n {
			t.Errorf("%s: recovered %d joint steps but %d were acked before the kill", id, lr.Steps, n)
		}
		if len(lr.Joint) != lr.Steps {
			t.Errorf("%s: joint log has %d entries for %d steps", id, len(lr.Joint), lr.Steps)
			continue
		}
		want := netOracle(t, i, lr.Steps)
		got, err := json.Marshal(lr.Joint)
		if err != nil {
			t.Fatal(err)
		}
		wantJSON, err := json.Marshal(want)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(wantJSON) {
			t.Errorf("%s: recovered joint log diverges from the compose oracle at %d steps", id, lr.Steps)
		}
	}

	// The revived networks keep stepping: one more joint step each, with
	// the delay buffer intact (seq continues, no error).
	for i := 0; i < nSessions; i++ {
		id := fmt.Sprintf("net-%d", i)
		lr := getLog(t, base2, id)
		var res session.StepResult
		post(t, fmt.Sprintf("%s/sessions/%s/input", base2, id), map[string]any{"inputs": netStep(i, lr.Steps)}, &res)
		if res.Seq != lr.Steps+1 {
			t.Errorf("%s: post-recovery joint step got seq %d, want %d", id, res.Seq, lr.Steps+1)
		}
	}
}
