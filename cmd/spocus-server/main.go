// Command spocus-server hosts live Spocus transducer sessions behind an
// HTTP/JSON API — the paper's picture of a business model as a machine
// exchanging input and output relations with a customer, run as a durable
// network service.
//
// Usage:
//
//	spocus-server serve [-addr :8080] [-dir data] [-shards N]
//	                    [-fsync always|interval|never] [-fsync-interval 100ms]
//	                    [-wal-segment-bytes 67108864] [-group-commit-batch 256]
//	                    [-group-commit-window 0]
//	                    [-snapshot-every 4096] [-mailbox 1024]
//	                    [-session-rate 0] [-session-burst 0]
//	                    [-verify-workers N] [-verify-queue N]
//	                    [-verify-timeout 2s] [-verify-conflicts 0]
//	                    [-follow http://primary:8080 -follow-dir standby]
//	                    [-repl-sync-wait 250ms] [-step-engine ra|tree]
//	                    [-wal-codec binary|json]
//	spocus-server waldump <shard-dir | engine-dir>
//	spocus-server bench [-sessions 1000] [-steps 30] [-model short]
//	                    [-shards N] [-dir DIR] [-fsync never]
//	                    [-url http://router:8090] [-verify-mix 0.1]
//	                    [-fsync-matrix] [-engine-matrix]
//	                    [-handoff-steps 1000 -handoff-rounds 5]
//
// serve exposes:
//
//	POST   /sessions                open a session against a named model
//	POST   /sessions/{id}/input     feed one input-relation set, get outputs + log delta
//	GET    /sessions/{id}/log       the session's durable log
//	GET    /sessions/{id}/verify    live verification (?goal= | ?temporal=)
//	GET    /sessions/{id}/progress  ranked next-input suggestions (?goal=)
//	DELETE /sessions/{id}           close the session
//	GET    /models, /sessions, /healthz, /debug/vars, /debug/pprof/...
//	GET    /admin/wal/stream        long-poll committed WAL records (replication)
//
// With -follow, the server additionally runs a warm standby of another
// backend (see internal/replica): GET /replica/* serves read-only views
// from the standby and POST /admin/replica/promote fails its sessions over
// into this server's own engine.
//
// Sessions are sharded across goroutine-owned shards; every applied step is
// written ahead to a per-shard log and compacted into snapshots, so logs
// survive kill -9: on restart the server replays snapshot + WAL before
// accepting traffic.
//
// bench is a load generator driving M concurrent sessions through scripted
// runs in-process, reporting throughput and latency percentiles as JSON.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/live"
	"repro/internal/models"
	"repro/internal/replica"
	"repro/internal/session"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "serve":
		serve(os.Args[2:])
	case "bench":
		bench(os.Args[2:])
	case "print-network":
		printNetwork(os.Args[2:])
	case "waldump":
		waldump(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: spocus-server serve|bench|print-network|waldump [flags]")
	os.Exit(2)
}

// printNetwork emits a generated network spec as JSON — the exact value
// OpenRequest.Network accepts — so shell scripts can open network sessions
// without hand-writing wiring:
//
//	curl -X POST $URL/sessions \
//	  -d "{\"id\":\"n1\",\"network\":$(spocus-server print-network marketplace)}"
func printNetwork(args []string) {
	if len(args) != 1 {
		fmt.Fprintln(os.Stderr, "usage: spocus-server print-network marketplace|fraud|customization")
		os.Exit(2)
	}
	spec := models.Network(args[0])
	if spec == nil {
		fatal(fmt.Errorf("unknown network %q (have %v)", args[0], models.NetworkNames()))
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(spec); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "spocus-server:", err)
	os.Exit(1)
}

// engineFlags registers the flags shared by serve and bench and returns a
// config builder (bench's fsync matrix overrides fields per case before
// constructing the engine).
func engineFlags(fs *flag.FlagSet, defaultFsync string) func() (session.Config, error) {
	var (
		dir           = fs.String("dir", "", "durability directory for WAL + snapshots (empty: in-memory only)")
		shards        = fs.Int("shards", 0, "session shards (0: GOMAXPROCS)")
		fsync         = fs.String("fsync", defaultFsync, "WAL fsync policy: always | interval | never")
		fsyncInterval = fs.Duration("fsync-interval", 100*time.Millisecond, "flush period under -fsync interval")
		segmentBytes  = fs.Int64("wal-segment-bytes", 64<<20, "rotate a shard's WAL segment past this size")
		gcBatch       = fs.Int("group-commit-batch", 256, "max steps sharing one fsync under -fsync always (1: one fsync per step)")
		gcWindow      = fs.Duration("group-commit-window", 0, "extra time a dirty shard waits for steps to join a group commit (0: drain-only)")
		snapEvery     = fs.Int("snapshot-every", 4096, "steps per shard between snapshots (-1: disable)")
		mailbox       = fs.Int("mailbox", 1024, "per-shard mailbox depth; overflow is rejected with 429")
		sessionRate   = fs.Float64("session-rate", 0, "per-session step rate limit in steps/sec (0: unlimited); excess steps get 429 + Retry-After")
		sessionBurst  = fs.Int("session-burst", 0, "per-session burst allowance under -session-rate (0: max(1, ceil(rate)))")
		replSyncWait  = fs.Duration("repl-sync-wait", 0, "semi-sync replication: hold each group commit's acks until the follower acked it, up to this long (0: async)")
		stepEngine    = fs.String("step-engine", "ra", "rule evaluation engine: ra (compiled plans) | tree (walker)")
		walCodec      = fs.String("wal-codec", "binary", "encoding for new WAL + snapshot records: binary | json (reads auto-detect either)")
	)
	return func() (session.Config, error) {
		engine, err := core.ParseStepEngine(*stepEngine)
		if err != nil {
			return session.Config{}, err
		}
		core.SetStepEngine(engine)
		policy, err := session.ParseFsyncPolicy(*fsync)
		if err != nil {
			return session.Config{}, err
		}
		cdc, err := session.ParseCodec(*walCodec)
		if err != nil {
			return session.Config{}, err
		}
		return session.Config{
			Dir:               *dir,
			Shards:            *shards,
			Fsync:             policy,
			FsyncInterval:     *fsyncInterval,
			SegmentBytes:      *segmentBytes,
			GroupCommitBatch:  *gcBatch,
			GroupCommitWindow: *gcWindow,
			SnapshotEvery:     *snapEvery,
			MailboxDepth:      *mailbox,
			SessionRate:       *sessionRate,
			SessionBurst:      *sessionBurst,
			ReplSyncWait:      *replSyncWait,
			Codec:             cdc,
		}, nil
	}
}

func serve(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", ":8080", "listen address")
	var (
		verifyWorkers   = fs.Int("verify-workers", 0, "concurrent live-verification queries (0: GOMAXPROCS)")
		verifyQueue     = fs.Int("verify-queue", 0, "additional queries allowed to wait (0: 2x workers, -1: none); overflow gets 429")
		verifyTimeout   = fs.Duration("verify-timeout", 2*time.Second, "per-query wall-clock budget; overrun gets 504")
		verifyConflicts = fs.Int64("verify-conflicts", 0, "SAT conflict budget per query (0: unlimited, bounded by -verify-timeout)")
		follow          = fs.String("follow", "", "base URL of a primary to follow as a warm standby (enables /replica/* and /admin/replica/promote)")
		followDir       = fs.String("follow-dir", "", "durability directory for the standby engine (required with -follow)")
		followShards    = fs.Int("follow-shards", 0, "standby engine shards (0: GOMAXPROCS)")
	)
	build := engineFlags(fs, "always")
	fs.Parse(args)

	cfg, err := build()
	if err != nil {
		fatal(err)
	}
	eng, err := session.NewEngine(cfg)
	if err != nil {
		fatal(err)
	}
	lv := live.New(live.Config{
		Workers:      *verifyWorkers,
		Queue:        *verifyQueue,
		Timeout:      *verifyTimeout,
		MaxConflicts: *verifyConflicts,
	})
	st := eng.Stats()
	if st.ReplayRecords > 0 || st.SessionsOpen > 0 {
		fmt.Printf("recovered %d sessions (%d WAL records) in %.1fms\n",
			st.SessionsOpen, st.ReplayRecords, st.ReplayMillis)
	}
	handler := session.HandlerWith(eng, lv)
	var follower *replica.Follower
	if *follow != "" {
		if *followDir == "" {
			fatal(fmt.Errorf("-follow requires -follow-dir"))
		}
		follower, err = replica.New(replica.Config{
			Primary: strings.TrimRight(*follow, "/"),
			Dir:     *followDir,
			Shards:  *followShards,
			Fsync:   cfg.Fsync,
			Logf: func(format string, args ...any) {
				fmt.Printf(format+"\n", args...)
			},
		})
		if err != nil {
			fatal(err)
		}
		handler = replica.Handler(follower, eng, lv, handler)
		follower.Start()
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	// The address line is machine-parseable; the crash-recovery test and
	// scripts rely on its exact shape.
	fmt.Printf("spocus-server listening on http://%s\n", ln.Addr())

	srv := &http.Server{Handler: handler}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		// Graceful: stop accepting, drain in-flight requests (bounded),
		// then shut the engine down — which snapshots every shard, so the
		// next start replays nothing.
		fmt.Printf("received %v, draining\n", s)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			srv.Close() // drain timed out: cut the stragglers loose
		}
		if follower != nil {
			if err := follower.Stop(); err != nil {
				fatal(err)
			}
		}
		if err := eng.Shutdown(); err != nil {
			fatal(err)
		}
	case err := <-done:
		if err != http.ErrServerClosed {
			fatal(err)
		}
	}
}
