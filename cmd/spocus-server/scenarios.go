package main

import (
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/scenario"
	"repro/internal/session"
	"repro/internal/wire"
)

// bench -scenarios: run a scenario fleet (the builtin one or a JSON file)
// twice per scenario — against an in-process engine, and over HTTP through
// a real consistent-hash router fronting in-process backends on loopback
// TCP — and report throughput plus step-latency percentiles for both
// paths. The committed BENCH_scenarios.json is this subcommand's output
// for the builtin fleet.

// latQuantiles is the shared latency report shape.
type latQuantiles struct {
	P50Micros float64 `json:"p50_us"`
	P90Micros float64 `json:"p90_us"`
	P99Micros float64 `json:"p99_us"`
	MaxMicros float64 `json:"max_us"`
}

// pathReport is one serving path's numbers for one scenario.
type pathReport struct {
	Path        string       `json:"path"` // "inproc" | "router"
	Backends    int          `json:"backends,omitempty"`
	Batch       int          `json:"batch,omitempty"` // sessions per pipelined batch (0: single-step)
	StepsTotal  int          `json:"steps_total"`
	ElapsedSec  float64      `json:"elapsed_s"`
	StepsPerSec float64      `json:"steps_per_sec"`
	OpenSec     float64      `json:"open_s"`
	Retried429  int64        `json:"retried_429,omitempty"`
	Latency     latQuantiles `json:"step_latency"`
	// ReplLag summarizes follower lag sampled while the path ran; present
	// only under -scenario-replication, and only on the router path.
	ReplLag *replLagQuantiles `json:"repl_lag_records,omitempty"`
}

// replLagQuantiles summarizes sampled replication lag, in WAL records:
// every ~5ms during the run, each backend contributes one sample — its
// committed LSN minus its follower's last acked LSN, summed over shards.
type replLagQuantiles struct {
	Samples int   `json:"samples"`
	P50     int64 `json:"p50"`
	P90     int64 `json:"p90"`
	P99     int64 `json:"p99"`
	Max     int64 `json:"max"`
}

// scenarioReport is one scenario's entry in the fleet report.
type scenarioReport struct {
	Scenario        string       `json:"scenario"`
	Info            string       `json:"info,omitempty"`
	Arrival         string       `json:"arrival"`
	RatePerSec      float64      `json:"rate,omitempty"`
	Sessions        int          `json:"sessions"`
	NetworkSessions int          `json:"network_sessions"`
	StepsPerSess    int          `json:"steps_per_session"`
	Paths           []pathReport `json:"paths"`
}

// scenarioTarget abstracts the serving path for one planned session.
type scenarioTarget interface {
	open(p *scenario.SessionPlan) error
	step(p *scenario.SessionPlan, j int) error
	// stepBatch advances many (non-network) sessions in one shot.
	stepBatch(items []session.BatchItem) error
	retried() int64
}

// scenarioEngineTarget drives the in-process engine, retrying mailbox and
// rate-limit shedding with backoff (the scenario bench measures goodput).
type scenarioEngineTarget struct {
	eng *session.Engine
	mu  sync.Mutex
	n   int64
}

func (t *scenarioEngineTarget) withRetry(f func() error) error {
	var err error
	for attempt := 0; attempt < 8; attempt++ {
		if err = f(); err == nil {
			return nil
		}
		var over *session.OverloadedError
		var limited *session.RateLimitedError
		if !errors.As(err, &over) && !errors.As(err, &limited) {
			return err
		}
		t.mu.Lock()
		t.n++
		t.mu.Unlock()
		time.Sleep(time.Duration(2<<attempt) * time.Millisecond)
	}
	return err
}

func (t *scenarioEngineTarget) open(p *scenario.SessionPlan) error {
	return t.withRetry(func() error {
		req := &session.OpenRequest{ID: p.ID, Model: p.Model, DB: p.DB, Network: p.Network}
		_, err := t.eng.Open(req)
		return err
	})
}

func (t *scenarioEngineTarget) step(p *scenario.SessionPlan, j int) error {
	return t.withRetry(func() error {
		var err error
		if p.IsNetwork() {
			_, err = t.eng.NetInput(p.ID, p.NetInput(j))
		} else {
			_, err = t.eng.Input(p.ID, p.Input(j))
		}
		return err
	})
}

// stepBatch injects the whole group in one engine send (one group-commit
// acks it); shed items — mailbox overflow or rate limiting — are retried
// item-wise with backoff, mirroring withRetry.
func (t *scenarioEngineTarget) stepBatch(items []session.BatchItem) error {
	pending := items
	for attempt := 0; attempt < 8; attempt++ {
		if attempt > 0 {
			t.mu.Lock()
			t.n++
			t.mu.Unlock()
			time.Sleep(time.Duration(2<<attempt) * time.Millisecond)
		}
		var again []session.BatchItem
		for i, r := range t.eng.InputBatch(pending) {
			if r.Err == nil {
				continue
			}
			var over *session.OverloadedError
			var limited *session.RateLimitedError
			if !errors.As(r.Err, &over) && !errors.As(r.Err, &limited) {
				return r.Err
			}
			again = append(again, pending[i])
		}
		if len(again) == 0 {
			return nil
		}
		pending = again
	}
	return fmt.Errorf("batch: %d items still shedding after retries", len(pending))
}

func (t *scenarioEngineTarget) retried() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}

// scenarioHTTPTarget drives a base URL (a backend, or a router fronting
// several) through the wire API, reusing httpTarget's 429/503 retry.
type scenarioHTTPTarget struct {
	*httpTarget
}

func (t *scenarioHTTPTarget) open(p *scenario.SessionPlan) error {
	body := map[string]any{"id": p.ID}
	if p.IsNetwork() {
		body["network"] = p.Network
	} else {
		body["model"] = p.Model
		body["db"] = p.DB
	}
	return t.withRetry(func() error {
		return t.post(t.base+"/sessions", body, nil)
	})
}

func (t *scenarioHTTPTarget) step(p *scenario.SessionPlan, j int) error {
	var body map[string]any
	if p.IsNetwork() {
		body = map[string]any{"inputs": p.NetInput(j)}
	} else {
		body = map[string]any{"input": p.Input(j)}
	}
	return t.withRetry(func() error {
		return t.post(t.base+"/sessions/"+p.ID+"/input", body, nil)
	})
}

func (t *scenarioHTTPTarget) retried() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.retries
}

// latPercentiles folds sorted-or-not samples into the shared report shape.
func latPercentiles(all []time.Duration) latQuantiles {
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(q float64) float64 {
		if len(all) == 0 {
			return 0
		}
		return float64(all[int(q*float64(len(all)-1))]) / 1e3
	}
	return latQuantiles{
		P50Micros: pct(0.50),
		P90Micros: pct(0.90),
		P99Micros: pct(0.99),
		MaxMicros: pct(1.0),
	}
}

// runScenarioPathBatched drives the scenario with multi-session batching
// where the arrival model allows it: under closed arrival, groups of
// batch non-network sessions advance in lockstep, one stepBatch call per
// round (network sessions keep their per-session loop — joint inputs
// have no batch form). Open arrival schedules each session individually,
// so it and batch <= 1 fall back to the per-session driver.
func runScenarioPathBatched(sp *scenario.Spec, plans []*scenario.SessionPlan, target scenarioTarget, path string, batch int) pathReport {
	if batch <= 1 || (sp.Arrival != "" && sp.Arrival != scenario.Closed) {
		return runScenarioPath(sp, plans, target, path)
	}
	openStart := time.Now()
	for _, p := range plans {
		if err := target.open(p); err != nil {
			fatal(fmt.Errorf("scenario %s: open %s: %w", sp.Name, p.ID, err))
		}
	}
	openElapsed := time.Since(openStart)

	var solo, flat []*scenario.SessionPlan
	for _, p := range plans {
		if p.IsNetwork() {
			solo = append(solo, p)
		} else {
			flat = append(flat, p)
		}
	}
	var groups [][]*scenario.SessionPlan
	for lo := 0; lo < len(flat); lo += batch {
		groups = append(groups, flat[lo:min(lo+batch, len(flat))])
	}

	var mu sync.Mutex
	var all []time.Duration
	collect := func(lat []time.Duration) {
		mu.Lock()
		all = append(all, lat...)
		mu.Unlock()
	}
	errs := make(chan error, len(groups)+len(solo))
	var wg sync.WaitGroup
	start := time.Now()
	for _, grp := range groups {
		wg.Add(1)
		go func(grp []*scenario.SessionPlan) {
			defer wg.Done()
			var lat []time.Duration
			items := make([]session.BatchItem, 0, len(grp))
			for j := 0; ; j++ {
				items = items[:0]
				for _, p := range grp {
					if j < p.Steps {
						items = append(items, session.BatchItem{Session: p.ID, Input: p.Input(j)})
					}
				}
				if len(items) == 0 {
					break
				}
				t0 := time.Now()
				if err := target.stepBatch(items); err != nil {
					errs <- fmt.Errorf("scenario %s: batch step %d: %w", sp.Name, j+1, err)
					return
				}
				d := time.Since(t0)
				for range items {
					lat = append(lat, d)
				}
			}
			collect(lat)
		}(grp)
	}
	for _, p := range solo {
		wg.Add(1)
		go func(p *scenario.SessionPlan) {
			defer wg.Done()
			lat := make([]time.Duration, 0, p.Steps)
			for j := 0; j < p.Steps; j++ {
				t0 := time.Now()
				if err := target.step(p, j); err != nil {
					errs <- fmt.Errorf("scenario %s: %s step %d: %w", sp.Name, p.ID, j+1, err)
					return
				}
				lat = append(lat, time.Since(t0))
			}
			collect(lat)
		}(p)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errs)
	for err := range errs {
		fatal(err)
	}

	return pathReport{
		Path:        path,
		Batch:       batch,
		StepsTotal:  len(all),
		ElapsedSec:  elapsed.Seconds(),
		StepsPerSec: float64(len(all)) / elapsed.Seconds(),
		OpenSec:     openElapsed.Seconds(),
		Retried429:  target.retried(),
		Latency:     latPercentiles(all),
	}
}

// runScenarioPath opens every planned session on target, then drives them
// concurrently: closed loop starts everyone at once, open arrival delays
// session i's stepping by spec.StartOffset(i).
func runScenarioPath(sp *scenario.Spec, plans []*scenario.SessionPlan, target scenarioTarget, path string) pathReport {
	openStart := time.Now()
	for _, p := range plans {
		if err := target.open(p); err != nil {
			fatal(fmt.Errorf("scenario %s: open %s: %w", sp.Name, p.ID, err))
		}
	}
	openElapsed := time.Since(openStart)

	lats := make([][]time.Duration, len(plans))
	errs := make(chan error, len(plans))
	var wg sync.WaitGroup
	start := time.Now()
	for i, p := range plans {
		wg.Add(1)
		go func(i int, p *scenario.SessionPlan) {
			defer wg.Done()
			if off := sp.StartOffset(i); off > 0 {
				time.Sleep(time.Until(start.Add(off)))
			}
			lat := make([]time.Duration, 0, p.Steps)
			for j := 0; j < p.Steps; j++ {
				t0 := time.Now()
				if err := target.step(p, j); err != nil {
					errs <- fmt.Errorf("scenario %s: %s step %d: %w", sp.Name, p.ID, j+1, err)
					return
				}
				lat = append(lat, time.Since(t0))
			}
			lats[i] = lat
		}(i, p)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errs)
	for err := range errs {
		fatal(err)
	}

	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	return pathReport{
		Path:        path,
		StepsTotal:  len(all),
		ElapsedSec:  elapsed.Seconds(),
		StepsPerSec: float64(len(all)) / elapsed.Seconds(),
		OpenSec:     openElapsed.Seconds(),
		Retried429:  target.retried(),
		Latency:     latPercentiles(all),
	}
}

// backendServer is one in-process spocus-server on a loopback listener.
type backendServer struct {
	eng *session.Engine
	srv *http.Server
	url string
}

func startBackend(cfg session.Config) (*backendServer, error) {
	eng, err := session.NewEngine(cfg)
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		eng.Shutdown()
		return nil, err
	}
	b := &backendServer{
		eng: eng,
		srv: &http.Server{Handler: session.Handler(eng)},
		url: "http://" + ln.Addr().String(),
	}
	go b.srv.Serve(ln)
	return b, nil
}

func (b *backendServer) stop() {
	b.srv.Close()
	b.eng.Shutdown()
}

// sampleReplLag polls each backend's replication-lag gauge (committed LSN
// minus the follower's last ack, summed over shards) every 5ms until the
// returned stop function is called, which reports the percentiles of what
// it saw. Backends whose follower has not acked yet read as zero lag, so
// the first few samples understate — a wash over a multi-second run.
func sampleReplLag(backends []*backendServer) func() *replLagQuantiles {
	done := make(chan struct{})
	var wg sync.WaitGroup
	var samples []int64
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(5 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				for _, bs := range backends {
					samples = append(samples, bs.eng.Stats().ReplLag)
				}
			}
		}
	}()
	return func() *replLagQuantiles {
		close(done)
		wg.Wait()
		sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
		q := &replLagQuantiles{Samples: len(samples)}
		if len(samples) == 0 {
			return q
		}
		at := func(f float64) int64 { return samples[int(f*float64(len(samples)-1))] }
		q.P50, q.P90, q.P99, q.Max = at(0.50), at(0.90), at(0.99), at(1.0)
		return q
	}
}

// benchScenarios runs the fleet: for each scenario, once in-process and
// once through a router over real loopback TCP, on fresh engines each
// time so no scenario warms another's caches or WAL. With replicate set,
// every router-path backend also feeds a warm follower, and the report
// carries percentiles of the lag sampled while the scenario ran.
func benchScenarios(cfg session.Config, src string, nBackends int, replicate bool, batch int) {
	var fleet []*scenario.Spec
	if src == "builtin" {
		fleet = scenario.Fleet()
	} else {
		data, err := os.ReadFile(src)
		if err != nil {
			fatal(err)
		}
		if fleet, err = scenario.ParseFleet(data); err != nil {
			fatal(err)
		}
	}
	if nBackends < 1 {
		fatal(fmt.Errorf("bench: -scenario-backends must be >= 1"))
	}
	if replicate && cfg.Dir == "" {
		// Streaming needs a WAL: memory-only engines have nothing to ship.
		tmp, err := os.MkdirTemp("", "spocus-scenarios-*")
		if err != nil {
			fatal(err)
		}
		defer os.RemoveAll(tmp)
		cfg.Dir = tmp
	}

	dirFor := func(parts ...string) string {
		if cfg.Dir == "" {
			return ""
		}
		return filepath.Join(append([]string{cfg.Dir}, parts...)...)
	}

	var results []scenarioReport
	for _, sp := range fleet {
		plans, err := sp.Plan("sc")
		if err != nil {
			fatal(err)
		}
		rep := scenarioReport{
			Scenario:     sp.Name,
			Info:         sp.Info,
			Arrival:      sp.Arrival,
			RatePerSec:   sp.Rate,
			Sessions:     len(plans),
			StepsPerSess: sp.Steps,
		}
		if rep.Arrival == "" {
			rep.Arrival = scenario.Closed
		}
		for _, p := range plans {
			if p.IsNetwork() {
				rep.NetworkSessions++
			}
		}

		// In-process path.
		ecfg := cfg
		ecfg.Dir = dirFor(sp.Name, "inproc")
		eng, err := session.NewEngine(ecfg)
		if err != nil {
			fatal(err)
		}
		rep.Paths = append(rep.Paths, runScenarioPathBatched(sp, plans, &scenarioEngineTarget{eng: eng}, "inproc", batch))
		eng.Shutdown()

		// Router path: fresh backends, fresh router, fresh plans (the
		// session IDs are the same; the engines are not).
		var backends []*backendServer
		var urls []string
		for b := 0; b < nBackends; b++ {
			bcfg := cfg
			bcfg.Dir = dirFor(sp.Name, fmt.Sprintf("backend-%d", b))
			bs, err := startBackend(bcfg)
			if err != nil {
				fatal(err)
			}
			backends = append(backends, bs)
			urls = append(urls, bs.url)
		}
		rt, err := cluster.NewRouter(cluster.RouterConfig{Backends: urls})
		if err != nil {
			fatal(err)
		}
		rln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fatal(err)
		}
		rsrv := &http.Server{Handler: rt.Handler()}
		go rsrv.Serve(rln)

		// With replication on, every backend feeds a warm follower and a
		// sampler polls each backend's lag gauge while the scenario runs.
		var stopFollowers []func()
		var stopSampler func() *replLagQuantiles
		if replicate {
			for _, bs := range backends {
				_, stopFol, err := attachStandby(bs.url, bs.eng.Shards())
				if err != nil {
					fatal(err)
				}
				stopFollowers = append(stopFollowers, stopFol)
			}
			stopSampler = sampleReplLag(backends)
		}

		ht := &scenarioHTTPTarget{httpTarget: &httpTarget{
			base: "http://" + rln.Addr().String(),
			client: wire.New(wire.Config{
				Name:                "scenario-client",
				Timeout:             60 * time.Second,
				MaxIdleConns:        len(plans) + 16,
				MaxIdleConnsPerHost: len(plans) + 16,
			}),
		}}
		pr := runScenarioPathBatched(sp, plans, ht, "router", batch)
		ht.client.Close()
		pr.Backends = nBackends
		if stopSampler != nil {
			pr.ReplLag = stopSampler()
		}
		rep.Paths = append(rep.Paths, pr)

		rsrv.Close()
		rt.Close()
		for _, stopFol := range stopFollowers {
			stopFol()
		}
		for _, bs := range backends {
			bs.stop()
		}
		results = append(results, rep)
	}
	emit(results)
}
