package main

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/models"
	"repro/internal/relation"
	"repro/internal/session"
	"repro/internal/tsdi"
	"repro/internal/verify"
)

// engineMatrixRow is one (workload, engine) cell of `bench -engine-matrix`.
type engineMatrixRow struct {
	Workload      string  `json:"workload"`
	Engine        string  `json:"engine"`
	Iterations    int     `json:"iterations"`
	NsPerOp       float64 `json:"ns_per_op"`
	SpeedupVsTree float64 `json:"speedup_vs_tree,omitempty"`
}

// benchEngineMatrix compares the tree-walking evaluator against the
// compiled RA engine on the serving session step path (whose hot loop is
// rule evaluation) and on the E3/E4/E12 verification procedures. The
// verification rows are the control group: with -SkipReplay they are
// SAT-solver-bound and should sit near 1.0×, so any spread there flags a
// harness artifact rather than an engine effect. Every workload runs under
// both engines; ra rows carry the tree/ra speedup.
func benchEngineMatrix(model string) {
	workloads := []struct {
		name  string
		setup func() (func() error, func(), error)
	}{
		{"E3-log-validity/steps=4", setupE3},
		{"E4-arity-echo/arity=3", setupE4},
		{"E12-error-free", setupE12},
		{"session-step/" + model, func() (func() error, func(), error) { return setupSessionStep(model) }},
	}
	var rows []engineMatrixRow
	treeNs := map[string]float64{}
	for _, engine := range []core.StepEngine{core.EngineTree, core.EngineRA} {
		prev := core.SetStepEngine(engine)
		for _, w := range workloads {
			f, cleanup, err := w.setup()
			if err != nil {
				core.SetStepEngine(prev)
				fatal(err)
			}
			iters, ns, err := timeWorkload(f)
			if cleanup != nil {
				cleanup()
			}
			// Drop the workload's retained state before the next cell:
			// leftover live heap would tax every later cell's GC cycles
			// and skew cross-engine comparisons.
			runtime.GC()
			if err != nil {
				core.SetStepEngine(prev)
				fatal(fmt.Errorf("%s under %s: %w", w.name, engine, err))
			}
			row := engineMatrixRow{Workload: w.name, Engine: engine.String(), Iterations: iters, NsPerOp: ns}
			if engine == core.EngineTree {
				treeNs[w.name] = ns
			} else if t := treeNs[w.name]; t > 0 {
				row.SpeedupVsTree = t / ns
			}
			rows = append(rows, row)
		}
		core.SetStepEngine(prev)
	}
	emit(rows)
}

// timeWorkload calibrates an iteration count off one warm-up run (which
// also populates plan caches), then reports the mean ns per operation.
func timeWorkload(f func() error) (int, float64, error) {
	start := time.Now()
	if err := f(); err != nil {
		return 0, 0, err
	}
	est := time.Since(start)
	iters := int(300*time.Millisecond/(est+1)) + 1
	if iters < 5 {
		iters = 5
	}
	if iters > 50000 {
		iters = 50000
	}
	start = time.Now()
	for i := 0; i < iters; i++ {
		if err := f(); err != nil {
			return 0, 0, err
		}
	}
	return iters, float64(time.Since(start).Nanoseconds()) / float64(iters), nil
}

// setupE3 mirrors BenchmarkE3LogValidity at run length 4: Theorem 3.1 log
// validity of a genuine SHORT log.
func setupE3() (func() error, func(), error) {
	m := models.Short()
	db := models.MagazineDB()
	mags := []string{"time", "newsweek", "le-monde"}
	prices := map[string]string{"time": "855", "newsweek": "845", "le-monde": "8350"}
	var inputs relation.Sequence
	for i := 0; i < 4; i++ {
		step := relation.NewInstance()
		if i%2 == 0 {
			step.Add("order", relation.Tuple{relation.Const(mags[i%3])})
		} else {
			prev := mags[(i-1)%3]
			step.Add("pay", relation.Tuple{relation.Const(prev), relation.Const(prices[prev])})
		}
		inputs = append(inputs, step)
	}
	run, err := m.Execute(db, inputs)
	if err != nil {
		return nil, nil, err
	}
	return func() error {
		res, err := verify.LogValidity(m, db, run.Logs, &verify.Options{SkipReplay: true})
		if err != nil {
			return err
		}
		if !res.Valid {
			return fmt.Errorf("genuine log rejected")
		}
		return nil
	}, nil, nil
}

// setupE4 mirrors BenchmarkE4ArityShape at arity 3: one-step log validity
// of an echo transducer.
func setupE4() (func() error, func(), error) {
	const k = 3
	vars := "X1,X2,X3"
	src := fmt.Sprintf(`
transducer echo%d
schema
  input: in/%d;
  output: out/%d;
  log: out;
state rules
  past-in(%s) +:- in(%s);
output rules
  out(%s) :- in(%s);
`, k, k, k, vars, vars, vars, vars)
	m := core.MustParseProgram(src)
	tup := relation.Tuple{"c0", "c1", "c2"}
	logStep := relation.NewInstance()
	logStep.Add("out", tup)
	logSeq := relation.Sequence{logStep}
	return func() error {
		res, err := verify.LogValidity(m, nil, logSeq, &verify.Options{SkipReplay: true})
		if err != nil {
			return err
		}
		if !res.Valid {
			return fmt.Errorf("echo log rejected")
		}
		return nil
	}, nil, nil
}

// setupE12 mirrors BenchmarkE12ErrorFreeVerify: Theorem 4.4 on STRICT.
func setupE12() (func() error, func(), error) {
	m := models.Strict()
	db := models.MagazineDB()
	s := tsdi.MustParse("pay(X,Y) => price(X,Y)")
	return func() error {
		res, err := verify.CheckErrorFree(m, db, s, &verify.Options{SkipReplay: true})
		if err != nil {
			return err
		}
		if !res.Holds {
			return fmt.Errorf("enforced sentence rejected")
		}
		return nil
	}, nil, nil
}

// setupSessionStep drives one in-memory session through the scripted
// shopping loop; each op is one engine step (the serving hot path).
func setupSessionStep(model string) (func() error, func(), error) {
	script, db, err := scriptFor(model)
	if err != nil {
		return nil, nil, err
	}
	eng, err := session.NewEngine(session.Config{Shards: 1})
	if err != nil {
		return nil, nil, err
	}
	if _, err := eng.Open(&session.OpenRequest{ID: "engine-matrix", Model: model, DB: db}); err != nil {
		eng.Shutdown()
		return nil, nil, err
	}
	j := 0
	return func() error {
		_, err := eng.Input("engine-matrix", script(0, j))
		j++
		return err
	}, func() { eng.Shutdown() }, nil
}
