package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/relation"
	"repro/internal/session"
)

// benchResult is the bench subcommand's JSON report.
type benchResult struct {
	Model        string  `json:"model"`
	Sessions     int     `json:"sessions"`
	StepsPerSess int     `json:"steps_per_session"`
	StepsTotal   int     `json:"steps_total"`
	Shards       int     `json:"shards"`
	Fsync        string  `json:"fsync"`
	Durable      bool    `json:"durable"`
	ElapsedSec   float64 `json:"elapsed_s"`
	StepsPerSec  float64 `json:"steps_per_sec"`
	OpenSec      float64 `json:"open_s"`
	Latency      struct {
		P50Micros float64 `json:"p50_us"`
		P90Micros float64 `json:"p90_us"`
		P99Micros float64 `json:"p99_us"`
		MaxMicros float64 `json:"max_us"`
	} `json:"step_latency"`
	Engine session.Stats `json:"engine"`
}

func bench(args []string) {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	var (
		nSessions = fs.Int("sessions", 1000, "concurrent sessions to drive")
		nSteps    = fs.Int("steps", 30, "steps per session")
		model     = fs.String("model", "short", "scripted run: short | friendly")
	)
	build := engineFlags(fs, "never")
	fs.Parse(args)

	script, db, err := scriptFor(*model)
	if err != nil {
		fatal(err)
	}
	eng, err := build()
	if err != nil {
		fatal(err)
	}
	defer eng.Shutdown()

	// Open all sessions first so the timed region measures pure stepping.
	openStart := time.Now()
	ids := make([]string, *nSessions)
	for i := range ids {
		ids[i] = fmt.Sprintf("bench-%06d", i)
		if _, err := eng.Open(&session.OpenRequest{ID: ids[i], Model: *model, DB: db}); err != nil {
			fatal(err)
		}
	}
	openElapsed := time.Since(openStart)

	// One goroutine per session: M concurrent customers, each stepping its
	// own session sequentially — the paper's exchange loop at scale.
	lats := make([][]time.Duration, *nSessions)
	var wg sync.WaitGroup
	errs := make(chan error, *nSessions)
	start := time.Now()
	for i := range ids {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			lat := make([]time.Duration, 0, *nSteps)
			for j := 0; j < *nSteps; j++ {
				in := script(i, j)
				t0 := time.Now()
				if _, err := eng.Input(ids[i], in); err != nil {
					errs <- fmt.Errorf("session %s step %d: %w", ids[i], j+1, err)
					return
				}
				lat = append(lat, time.Since(t0))
			}
			lats[i] = lat
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errs)
	for err := range errs {
		fatal(err)
	}

	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(q float64) float64 {
		if len(all) == 0 {
			return 0
		}
		i := int(q * float64(len(all)-1))
		return float64(all[i]) / 1e3
	}

	res := benchResult{
		Model:        *model,
		Sessions:     *nSessions,
		StepsPerSess: *nSteps,
		StepsTotal:   len(all),
		Shards:       eng.Shards(),
		ElapsedSec:   elapsed.Seconds(),
		StepsPerSec:  float64(len(all)) / elapsed.Seconds(),
		OpenSec:      openElapsed.Seconds(),
		Engine:       eng.Stats(),
	}
	res.Fsync = fs.Lookup("fsync").Value.String()
	res.Durable = fs.Lookup("dir").Value.String() != ""
	res.Latency.P50Micros = pct(0.50)
	res.Latency.P90Micros = pct(0.90)
	res.Latency.P99Micros = pct(0.99)
	res.Latency.MaxMicros = float64(all[len(all)-1]) / 1e3

	out := json.NewEncoder(os.Stdout)
	out.SetIndent("", "  ")
	if err := out.Encode(res); err != nil {
		fatal(err)
	}
}

// scriptFor returns the per-session input script and a database sized for
// it. Scripts are deterministic in (session index, step index) so repeated
// bench runs are comparable.
func scriptFor(model string) (func(i, j int) relation.Instance, relation.Instance, error) {
	const nProducts = 16
	db := relation.NewInstance()
	products := make([]string, nProducts)
	prices := make([]string, nProducts)
	for p := 0; p < nProducts; p++ {
		products[p] = fmt.Sprintf("item-%02d", p)
		prices[p] = fmt.Sprintf("%d", 100+p)
		db.Add("price", relation.Tuple{relation.Const(products[p]), relation.Const(prices[p])})
		db.Add("available", relation.Tuple{relation.Const(products[p])})
	}
	// The shopping loop of Figure 1: order an item, pay for it on the next
	// step (triggering sendbill then deliver), moving through the catalogue.
	shop := func(i, j int) relation.Instance {
		p := (i + j/2) % nProducts
		in := relation.NewInstance()
		if j%2 == 0 {
			in.Add("order", relation.Tuple{relation.Const(products[p])})
		} else {
			in.Add("pay", relation.Tuple{relation.Const(products[p]), relation.Const(prices[p])})
		}
		return in
	}
	switch model {
	case "short":
		return shop, db, nil
	case "friendly":
		// Same loop, with a pending-bills reminder sweep every fifth step —
		// FRIENDLY's extra outputs (rebill, warnings) exercised under load.
		return func(i, j int) relation.Instance {
			if j%5 == 4 {
				in := relation.NewInstance()
				in.Ensure("pending-bills", 0).Add(relation.Tuple{})
				return in
			}
			return shop(i, j)
		}, db, nil
	}
	return nil, nil, fmt.Errorf("bench: unknown model %q (want short or friendly)", model)
}
