package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"net/http"
	neturl "net/url"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/live"
	"repro/internal/relation"
	"repro/internal/session"
	"repro/internal/wire"
)

// benchResult is the bench subcommand's JSON report.
type benchResult struct {
	Model        string  `json:"model"`
	Mode         string  `json:"mode"` // "inproc" or "http"
	URL          string  `json:"url,omitempty"`
	Sessions     int     `json:"sessions"`
	StepsPerSess int     `json:"steps_per_session"`
	Batch        int     `json:"batch,omitempty"` // sessions per pipelined batch (0/1: single-step)
	StepsTotal   int     `json:"steps_total"`
	Shards       int     `json:"shards,omitempty"`
	Fsync        string  `json:"fsync,omitempty"`
	Durable      bool    `json:"durable"`
	Retried429   int64   `json:"retried_429,omitempty"`
	ElapsedSec   float64 `json:"elapsed_s"`
	StepsPerSec  float64 `json:"steps_per_sec"`
	OpenSec      float64 `json:"open_s"`
	// Latency is per step: in a batched run a step's cost is its share of
	// its envelope's ack (ack / items carried), because the envelope acked
	// all of them with one round trip. BatchAck keeps the unamortized
	// whole-envelope distribution alongside.
	Latency struct {
		P50Micros float64 `json:"p50_us"`
		P90Micros float64 `json:"p90_us"`
		P99Micros float64 `json:"p99_us"`
		MaxMicros float64 `json:"max_us"`
	} `json:"step_latency"`
	BatchAck *batchAckLatency `json:"batch_ack_latency,omitempty"`
	// Verify* report the live-verification side load when -verify-mix > 0.
	VerifyMix     float64        `json:"verify_mix,omitempty"`
	VerifyTotal   int            `json:"verify_total,omitempty"`
	VerifyCached  int            `json:"verify_cached_total,omitempty"`
	VerifyHitRate float64        `json:"verify_cache_hit_rate,omitempty"`
	VerifyLatency *verifySplits  `json:"verify_latency,omitempty"`
	Engine        *session.Stats `json:"engine,omitempty"`
}

// batchAckLatency is the whole-envelope ack distribution of a batched
// run: how long one pipelined round trip took, before amortizing it over
// the steps it carried.
type batchAckLatency struct {
	P50Micros float64 `json:"p50_us"`
	P90Micros float64 `json:"p90_us"`
	P99Micros float64 `json:"p99_us"`
	MaxMicros float64 `json:"max_us"`
}

// verifySplits separates cold (solver-computed) from cache-hit verify
// latencies: the baseline's evidence that the hit path is cheaper.
type verifySplits struct {
	P50Micros     float64 `json:"p50_us"`
	P99Micros     float64 `json:"p99_us"`
	ColdP50Micros float64 `json:"cold_p50_us"`
	ColdP99Micros float64 `json:"cold_p99_us"`
	HitP50Micros  float64 `json:"hit_p50_us"`
	HitP99Micros  float64 `json:"hit_p99_us"`
	MaxMicros     float64 `json:"max_us"`
}

// benchTarget abstracts where the load goes: the in-process engine, or an
// HTTP base URL (a spocus-server — or a spocus-router fronting many).
type benchTarget interface {
	open(id, model string, db relation.Instance) error
	step(id string, in relation.Instance) error
	// stepBatch advances many sessions in one shot — one group-commit on the
	// engine, one pipelined /batch request over HTTP.
	stepBatch(items []session.BatchItem) error
	// verify asks "is the goal still reachable?" of the session's current
	// state and reports whether the answer came from the shared cache.
	verify(id, goal string) (cached bool, err error)
	finish(res *benchResult)
}

// batchPreparer is a benchTarget's optional fast path: the driver
// pre-encodes each round's envelope outside the timed region, so the
// measured loop sends prebuilt bytes and the bench gauges the server's
// wire rather than the driver's JSON encoder (load generators pre-build
// request bodies for the same reason).
type batchPreparer interface {
	prepareBatch(items []session.BatchItem) ([]byte, error)
	stepPrepared(body []byte, items []session.BatchItem) error
}

type engineTarget struct {
	eng     *session.Engine
	lv      *live.Service
	mu      sync.Mutex
	retries int64
}

func (t *engineTarget) open(id, model string, db relation.Instance) error {
	_, err := t.eng.Open(&session.OpenRequest{ID: id, Model: model, DB: db})
	return err
}

func (t *engineTarget) step(id string, in relation.Instance) error {
	_, err := t.eng.Input(id, in)
	return err
}

func (t *engineTarget) stepBatch(items []session.BatchItem) error {
	for _, r := range t.eng.InputBatch(items) {
		if r.Err != nil {
			return r.Err
		}
	}
	return nil
}

func (t *engineTarget) verify(id, goal string) (bool, error) {
	view, err := t.eng.Peek(id)
	if err != nil {
		return false, err
	}
	src := live.Source{Model: view.Model, Src: view.Src, DB: view.DB, Past: view.Past}
	// Saturation backoff mirrors httpTarget.withRetry: the verification
	// plane sheds load by design, and the bench measures goodput.
	for attempt := 0; ; attempt++ {
		a, err := t.lv.Goal(context.Background(), src, goal)
		if err == nil {
			return a.Cached, nil
		}
		if _, ok := err.(*live.OverloadedError); !ok || attempt == 7 {
			return false, err
		}
		t.mu.Lock()
		t.retries++
		t.mu.Unlock()
		time.Sleep(time.Duration(2<<attempt) * time.Millisecond)
	}
}

func (t *engineTarget) finish(res *benchResult) {
	res.Mode = "inproc"
	res.Shards = t.eng.Shards()
	res.Retried429 += t.retries
	st := t.eng.Stats()
	res.Engine = &st
	t.eng.Shutdown()
}

// httpTarget drives the wire API through a shared wire client. 429
// backpressure responses are retried with backoff (and counted): under
// overload the bench measures goodput, not error throughput.
type httpTarget struct {
	base    string
	client  *wire.Client
	mu      sync.Mutex
	retries int64
}

func (t *httpTarget) post(url string, body, out any) error {
	return t.client.PostJSON(context.Background(), url, body, out, nil)
}

func (t *httpTarget) noteRetry() {
	t.mu.Lock()
	t.retries++
	t.mu.Unlock()
}

// withRetry retries 429 (mailbox full) and 503 (handoff freeze) with
// backoff; other failures are final.
func (t *httpTarget) withRetry(f func() error) error {
	var err error
	for attempt := 0; attempt < 8; attempt++ {
		if err = f(); err == nil {
			return nil
		}
		if !wire.Retryable(err) {
			return err
		}
		t.noteRetry()
		time.Sleep(time.Duration(2<<attempt) * time.Millisecond)
	}
	return err
}

func (t *httpTarget) open(id, model string, db relation.Instance) error {
	return t.withRetry(func() error {
		return t.post(t.base+"/sessions", &session.OpenRequest{ID: id, Model: model, DB: db}, nil)
	})
}

func (t *httpTarget) step(id string, in relation.Instance) error {
	return t.withRetry(func() error {
		return t.post(t.base+"/sessions/"+id+"/input", map[string]any{"input": in}, nil)
	})
}

// stepBatch drives one multi-session batch through POST /batch. The
// envelope travels under withRetry like any other post; shedding inside it
// stays per item — only the 429/503 items are resent.
func (t *httpTarget) stepBatch(items []session.BatchItem) error {
	pending := items
	for attempt := 0; attempt < 8; attempt++ {
		if attempt > 0 {
			t.noteRetry()
			time.Sleep(time.Duration(2<<attempt) * time.Millisecond)
		}
		var resp session.BatchResponse
		if err := t.withRetry(func() error {
			resp = session.BatchResponse{}
			// results=errors: the driver needs acks, not outputs — an all-OK
			// envelope answers with a constant-size body, so the wire measures
			// batching, not response encoding.
			return t.post(t.base+"/batch", session.BatchRequest{Steps: pending, Results: "errors"}, &resp)
		}); err != nil {
			return err
		}
		t.client.ObserveBatch(len(pending))
		again, err := shedItems(&resp, pending)
		if err != nil {
			return err
		}
		if len(again) == 0 {
			return nil
		}
		pending = again
	}
	return fmt.Errorf("batch: %d items still shedding after retries", len(pending))
}

// shedItems folds a sparse (results=errors) batch response into the items
// to resend: 429/503 failures are shed load, anything else is final.
func shedItems(resp *session.BatchResponse, items []session.BatchItem) ([]session.BatchItem, error) {
	if resp.N != len(items) {
		return nil, fmt.Errorf("batch: %d items acked for %d steps", resp.N, len(items))
	}
	var again []session.BatchItem
	for _, f := range resp.Failed {
		if f.Pos < 0 || f.Pos >= len(items) {
			return nil, fmt.Errorf("batch: failed position %d outside %d steps", f.Pos, len(items))
		}
		switch f.Status {
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			again = append(again, items[f.Pos])
		default:
			return nil, fmt.Errorf("batch item %s: status %d: %s", items[f.Pos].Session, f.Status, f.Error)
		}
	}
	return again, nil
}

// prepareBatch pre-encodes one round's /batch envelope in the same sparse
// results=errors shape stepBatch asks for.
func (t *httpTarget) prepareBatch(items []session.BatchItem) ([]byte, error) {
	return json.Marshal(session.BatchRequest{Steps: items, Results: "errors"})
}

// stepPrepared sends a pre-encoded envelope. Shed items (429/503) go back
// through the typed stepBatch path — re-encoding the rare remainder beats
// pre-building every retry permutation.
func (t *httpTarget) stepPrepared(body []byte, items []session.BatchItem) error {
	var resp session.BatchResponse
	if err := t.withRetry(func() error {
		resp = session.BatchResponse{}
		return t.client.PostBytes(context.Background(), t.base+"/batch", "application/json", body, &resp, nil)
	}); err != nil {
		return err
	}
	t.client.ObserveBatch(len(items))
	again, err := shedItems(&resp, items)
	if err != nil {
		return err
	}
	if len(again) == 0 {
		return nil
	}
	return t.stepBatch(again)
}

func (t *httpTarget) verify(id, goal string) (bool, error) {
	var out struct {
		Cached bool `json:"cached"`
	}
	err := t.withRetry(func() error {
		return t.client.GetJSON(context.Background(),
			t.base+"/sessions/"+id+"/verify?goal="+neturl.QueryEscape(goal), &out)
	})
	return out.Cached, err
}

func (t *httpTarget) finish(res *benchResult) {
	res.Mode = "http"
	res.URL = t.base
	res.Retried429 = t.retries
	t.client.Close()
}

func bench(args []string) {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	var (
		nSessions = fs.Int("sessions", 1000, "concurrent sessions to drive")
		nSteps    = fs.Int("steps", 30, "steps per session")
		model     = fs.String("model", "short", "scripted run: short | friendly")
		url       = fs.String("url", "", "drive load over HTTP against this base URL (a spocus-server or spocus-router) instead of in-process")
		batch     = fs.Int("batch", 1, "sessions per pipelined batch request: groups of this many sessions advance in lockstep through POST /batch (1: the single-step path)")
		verifyMix = fs.Float64("verify-mix", 0, "fraction of steps followed by a live verify query (e.g. 0.1: one query per 10 steps)")

		scenarios        = fs.String("scenarios", "", "run a scenario fleet instead of the single-model bench: 'builtin' or a JSON fleet file; each scenario runs in-process AND through an in-process router over loopback TCP (see internal/scenario)")
		scenarioBackends = fs.Int("scenario-backends", 2, "backends behind the router in the -scenarios router path")
		scenarioRepl     = fs.Bool("scenario-replication", false, "with -scenarios: attach a warm follower to every router-path backend and report replication-lag percentiles; implies durable engines (a temp dir is used when -dir is unset)")

		fsyncMatrix   = fs.Bool("fsync-matrix", false, "run the in-process bench across the durability matrix (wal-never, wal-interval, wal-always-batch1, wal-always-group), each on a fresh temp dir; emits a JSON array")
		codecMatrix   = fs.Bool("codec-matrix", false, "measure the binary WAL codec against JSON on every surface (WAL density, crash recovery, ship, replication stream) over one -steps-long session; emits a JSON array")
		engineMatrix  = fs.Bool("engine-matrix", false, "compare the tree-walking evaluator against the compiled RA engine on E3/E4/E12 verification workloads and the in-memory session step path; emits a JSON array")
		replication   = fs.Bool("replication", false, "measure the replication plane: the -fsync always workload with and without a live follower streaming every shard, plus promotion-vs-replay timings at -promote-steps")
		promoteSteps  = fs.Int("promote-steps", 1000, "session size for the -replication promotion-vs-replay comparison")
		promoteRounds = fs.Int("promote-rounds", 3, "rounds per mode in the -replication promotion comparison")
		handoffSteps  = fs.Int("handoff-steps", 0, "with -url pointing at a spocus-router: open one session, drive this many steps, then time replay- vs ship-mode handoffs")
		handoffRounds = fs.Int("handoff-rounds", 5, "handoffs timed per mode under -handoff-steps")
	)
	build := engineFlags(fs, "never")
	fs.Parse(args)

	if *scenarios != "" {
		cfg, err := build()
		if err != nil {
			fatal(err)
		}
		benchScenarios(cfg, *scenarios, *scenarioBackends, *scenarioRepl, *batch)
		return
	}

	script, db, err := scriptFor(*model)
	if err != nil {
		fatal(err)
	}

	if *handoffSteps > 0 {
		if *url == "" {
			fatal(fmt.Errorf("-handoff-steps needs -url pointing at a spocus-router"))
		}
		benchHandoff(strings.TrimRight(*url, "/"), *model, db, script, *handoffSteps, *handoffRounds)
		return
	}
	if *engineMatrix {
		benchEngineMatrix(*model)
		return
	}
	if *codecMatrix {
		benchCodecMatrix(*model, db, script, *nSteps)
		return
	}
	if *fsyncMatrix {
		cfg, err := build()
		if err != nil {
			fatal(err)
		}
		benchFsyncMatrix(cfg, *model, db, script, *nSessions, *nSteps, *verifyMix)
		return
	}
	if *replication {
		cfg, err := build()
		if err != nil {
			fatal(err)
		}
		benchReplication(cfg, *model, db, script, *nSessions, *nSteps, *promoteSteps, *promoteRounds)
		return
	}

	var target benchTarget
	if *url != "" {
		target = &httpTarget{
			base: strings.TrimRight(*url, "/"),
			// One keep-alive connection per concurrent driver: the default
			// transport's 2-per-host idle cap would serialize the load
			// through constant reconnects.
			client: wire.New(wire.Config{
				Name:                "bench",
				MaxIdleConns:        *nSessions + 16,
				MaxIdleConnsPerHost: *nSessions + 16,
			}),
		}
	} else {
		cfg, err := build()
		if err != nil {
			fatal(err)
		}
		eng, err := session.NewEngine(cfg)
		if err != nil {
			fatal(err)
		}
		// Queue sized to the offered load: the bench measures goodput, so
		// in-process it queues rather than sheds (the 429 shed path is
		// exercised by the live-plane tests and the HTTP mode).
		target = &engineTarget{eng: eng, lv: live.New(live.Config{Queue: *nSessions})}
	}

	res := runLoadBatched(target, script, db, *model, *nSessions, *nSteps, *verifyMix, *batch)
	if *url == "" {
		res.Fsync = fs.Lookup("fsync").Value.String()
		res.Durable = fs.Lookup("dir").Value.String() != ""
	}
	emit(res)
}

// openAll opens the bench's session fleet so the timed region measures
// pure stepping, returning the IDs and the open-phase duration.
func openAll(target benchTarget, model string, db relation.Instance, nSessions int) ([]string, time.Duration) {
	openStart := time.Now()
	ids := make([]string, nSessions)
	for i := range ids {
		ids[i] = fmt.Sprintf("bench-%06d", i)
		if err := target.open(ids[i], model, db); err != nil {
			fatal(err)
		}
	}
	return ids, time.Since(openStart)
}

// finishLoad folds the collected latencies into the report shape shared by
// the single-step and batched drivers (target.finish also shuts the target
// down, so call it exactly once).
func finishLoad(target benchTarget, model string, nSessions, nSteps int, all []time.Duration, elapsed, openElapsed time.Duration) benchResult {
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(q float64) float64 {
		if len(all) == 0 {
			return 0
		}
		return float64(all[int(q*float64(len(all)-1))]) / 1e3
	}
	res := benchResult{
		Model:        model,
		Sessions:     nSessions,
		StepsPerSess: nSteps,
		StepsTotal:   len(all),
		ElapsedSec:   elapsed.Seconds(),
		StepsPerSec:  float64(len(all)) / elapsed.Seconds(),
		OpenSec:      openElapsed.Seconds(),
	}
	target.finish(&res)
	res.Latency.P50Micros = pct(0.50)
	res.Latency.P90Micros = pct(0.90)
	res.Latency.P99Micros = pct(0.99)
	res.Latency.MaxMicros = pct(1.0)
	return res
}

// runLoadBatched is runLoad with pipelined batching: groups of batch
// sessions advance in lockstep, one stepBatch call carrying one step of
// each per round, so a single group-commit fsync (in-process) or one
// routed /batch round trip (HTTP) acks batch steps at once. batch <= 1
// falls through to the single-step driver.
func runLoadBatched(target benchTarget, script func(int, int) relation.Instance, db relation.Instance, model string, nSessions, nSteps int, verifyMix float64, batch int) benchResult {
	if batch <= 1 {
		return runLoad(target, script, db, model, nSessions, nSteps, verifyMix)
	}
	if verifyMix > 0 {
		fatal(fmt.Errorf("bench: -batch and -verify-mix are mutually exclusive"))
	}
	ids, openElapsed := openAll(target, model, db, nSessions)

	nGroups := (nSessions + batch - 1) / batch

	// Over HTTP, pre-build every round's items and encoded envelope before
	// the clock starts: the timed region then measures the wire and the
	// engine, not the driver's input generation. In-process there is no
	// envelope, so rounds are built inline as before.
	prep, _ := target.(batchPreparer)
	var rounds [][][]session.BatchItem // [group][round] pre-built items
	var bodies [][][]byte              // [group][round] pre-encoded envelopes
	if prep != nil {
		rounds = make([][][]session.BatchItem, nGroups)
		bodies = make([][][]byte, nGroups)
		for g := 0; g < nGroups; g++ {
			lo, hi := g*batch, min((g+1)*batch, nSessions)
			rounds[g] = make([][]session.BatchItem, nSteps)
			bodies[g] = make([][]byte, nSteps)
			for j := 0; j < nSteps; j++ {
				items := make([]session.BatchItem, hi-lo)
				for i := lo; i < hi; i++ {
					items[i-lo] = session.BatchItem{Session: ids[i], Input: script(i, j)}
				}
				body, err := prep.prepareBatch(items)
				if err != nil {
					fatal(err)
				}
				rounds[g][j], bodies[g][j] = items, body
			}
		}
	}

	lats := make([][]time.Duration, nGroups)
	ackLats := make([][]time.Duration, nGroups)
	errs := make(chan error, nGroups)
	var wg sync.WaitGroup
	start := time.Now()
	for g := 0; g < nGroups; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			lo, hi := g*batch, min((g+1)*batch, nSessions)
			lat := make([]time.Duration, 0, nSteps*(hi-lo))
			acks := make([]time.Duration, 0, nSteps)
			items := make([]session.BatchItem, hi-lo)
			for j := 0; j < nSteps; j++ {
				var err error
				t0 := time.Now()
				if prep != nil {
					err = prep.stepPrepared(bodies[g][j], rounds[g][j])
				} else {
					for i := lo; i < hi; i++ {
						items[i-lo] = session.BatchItem{Session: ids[i], Input: script(i, j)}
					}
					err = target.stepBatch(items)
				}
				if err != nil {
					errs <- fmt.Errorf("batch group %d step %d: %w", g, j+1, err)
					return
				}
				d := time.Since(t0)
				acks = append(acks, d)
				// One ack covered hi-lo steps: each step's share of the round
				// trip is the amortized cost the pipelined wire charges it.
				per := d / time.Duration(hi-lo)
				for i := lo; i < hi; i++ {
					lat = append(lat, per)
				}
			}
			lats[g] = lat
			ackLats[g] = acks
		}(g)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errs)
	for err := range errs {
		fatal(err)
	}

	var all, allAcks []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	for _, l := range ackLats {
		allAcks = append(allAcks, l...)
	}
	res := finishLoad(target, model, nSessions, nSteps, all, elapsed, openElapsed)
	res.Batch = batch
	sort.Slice(allAcks, func(i, j int) bool { return allAcks[i] < allAcks[j] })
	ackPct := func(q float64) float64 {
		if len(allAcks) == 0 {
			return 0
		}
		return float64(allAcks[int(q*float64(len(allAcks)-1))]) / 1e3
	}
	res.BatchAck = &batchAckLatency{
		P50Micros: ackPct(0.50),
		P90Micros: ackPct(0.90),
		P99Micros: ackPct(0.99),
		MaxMicros: ackPct(1.0),
	}
	return res
}

// runLoad opens nSessions sessions on target and drives each through
// nSteps scripted steps concurrently, returning the throughput/latency
// report (target.finish folds in target-side stats and shuts it down).
func runLoad(target benchTarget, script func(int, int) relation.Instance, db relation.Instance, model string, nSessions, nSteps int, verifyMix float64) benchResult {
	// Open all sessions first so the timed region measures pure stepping.
	ids, openElapsed := openAll(target, model, db, nSessions)

	// One goroutine per session: M concurrent customers, each stepping its
	// own session sequentially — the paper's exchange loop at scale. With
	// -verify-mix > 0, every session asks "can I still reach delivery?"
	// after a deterministic subset of its steps, the way a storefront would
	// poll the progress service mid-checkout.
	verifyEvery := 0
	if verifyMix > 0 {
		verifyEvery = int(math.Max(1, math.Round(1/verifyMix)))
	}
	type verifySample struct {
		d      time.Duration
		cached bool
	}
	lats := make([][]time.Duration, nSessions)
	vlats := make([][]verifySample, nSessions)
	var wg sync.WaitGroup
	errs := make(chan error, nSessions)
	start := time.Now()
	for i := range ids {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			lat := make([]time.Duration, 0, nSteps)
			var vlat []verifySample
			for j := 0; j < nSteps; j++ {
				in := script(i, j)
				t0 := time.Now()
				if err := target.step(ids[i], in); err != nil {
					errs <- fmt.Errorf("session %s step %d: %w", ids[i], j+1, err)
					return
				}
				lat = append(lat, time.Since(t0))
				if verifyEvery > 0 && j%verifyEvery == verifyEvery-1 {
					t0 = time.Now()
					cached, err := target.verify(ids[i], "deliver(X)")
					if err != nil {
						errs <- fmt.Errorf("session %s verify after step %d: %w", ids[i], j+1, err)
						return
					}
					vlat = append(vlat, verifySample{time.Since(t0), cached})
				}
			}
			lats[i] = lat
			vlats[i] = vlat
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errs)
	for err := range errs {
		fatal(err)
	}

	// Warm pass, outside the timed region: every session re-issues its last
	// verify. With -steps a multiple of the sampling interval the answer is
	// already memoized, so these samples measure the true cache-hit path —
	// the in-loop samples are dominated by cold solves and coalesced waiters,
	// which pay the full solve latency.
	if verifyEvery > 0 {
		warm := make([][]verifySample, nSessions)
		var wwg sync.WaitGroup
		for i := range ids {
			wwg.Add(1)
			go func(i int) {
				defer wwg.Done()
				t0 := time.Now()
				cached, err := target.verify(ids[i], "deliver(X)")
				if err != nil {
					return // shed or expired: no sample
				}
				warm[i] = []verifySample{{time.Since(t0), cached}}
			}(i)
		}
		wwg.Wait()
		vlats = append(vlats, warm...)
	}

	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	res := finishLoad(target, model, nSessions, nSteps, all, elapsed, openElapsed)

	if verifyEvery > 0 {
		var vall, cold, hit []time.Duration
		for _, vl := range vlats {
			for _, v := range vl {
				vall = append(vall, v.d)
				if v.cached {
					hit = append(hit, v.d)
				} else {
					cold = append(cold, v.d)
				}
			}
		}
		vpct := func(ds []time.Duration, q float64) float64 {
			if len(ds) == 0 {
				return 0
			}
			return float64(ds[int(q*float64(len(ds)-1))]) / 1e3
		}
		for _, ds := range [][]time.Duration{vall, cold, hit} {
			sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
		}
		res.VerifyMix = verifyMix
		res.VerifyTotal = len(vall)
		res.VerifyCached = len(hit)
		if len(vall) > 0 {
			res.VerifyHitRate = float64(len(hit)) / float64(len(vall))
			res.VerifyLatency = &verifySplits{
				P50Micros:     vpct(vall, 0.50),
				P99Micros:     vpct(vall, 0.99),
				ColdP50Micros: vpct(cold, 0.50),
				ColdP99Micros: vpct(cold, 0.99),
				HitP50Micros:  vpct(hit, 0.50),
				HitP99Micros:  vpct(hit, 0.99),
				MaxMicros:     float64(vall[len(vall)-1]) / 1e3,
			}
		}
	}

	return res
}

func emit(v any) {
	out := json.NewEncoder(os.Stdout)
	out.SetIndent("", "  ")
	if err := out.Encode(v); err != nil {
		fatal(err)
	}
}

// benchFsyncMatrix runs the in-process bench once per durability policy on
// a fresh temp dir each, holding the workload fixed: the spread between
// wal-never (the no-durability bound) and the wal-always rows is the price
// of the corresponding ack guarantee, and the distance group commit closes
// between wal-always-batch1 (one fsync per step) and the bound is its
// whole point.
func benchFsyncMatrix(cfg session.Config, model string, db relation.Instance, script func(int, int) relation.Instance, nSessions, nSteps int, verifyMix float64) {
	cases := []struct {
		name   string
		fsync  session.FsyncPolicy
		batch  int // 0: engine default (group commit on)
		window time.Duration
	}{
		{"wal-never", session.FsyncNever, 0, 0},
		{"wal-interval", session.FsyncInterval, 0, 0},
		{"wal-always-batch1", session.FsyncAlways, 1, 0},
		{"wal-always-group", session.FsyncAlways, 0, 200 * time.Microsecond},
	}
	results := make([]benchResult, 0, len(cases))
	for _, c := range cases {
		dir, err := os.MkdirTemp("", "spocus-bench-*")
		if err != nil {
			fatal(err)
		}
		cc := cfg
		cc.Dir, cc.Fsync, cc.GroupCommitBatch, cc.GroupCommitWindow = dir, c.fsync, c.batch, c.window
		eng, err := session.NewEngine(cc)
		if err != nil {
			os.RemoveAll(dir)
			fatal(err)
		}
		target := &engineTarget{eng: eng, lv: live.New(live.Config{Queue: nSessions})}
		res := runLoad(target, script, db, model, nSessions, nSteps, verifyMix)
		res.Fsync, res.Durable = c.name, true
		results = append(results, res)
		os.RemoveAll(dir)
	}
	emit(results)
}

// handoffTiming is one transport's timings in the handoff bench report.
type handoffTiming struct {
	Mode      string    `json:"mode"`
	Rounds    int       `json:"rounds"`
	MeanMs    float64   `json:"mean_ms"`
	MinMs     float64   `json:"min_ms"`
	MaxMs     float64   `json:"max_ms"`
	SamplesMs []float64 `json:"samples_ms"`
}

// benchHandoff times session handoff through a router under both
// transports at a fixed session size: replay re-steps the whole input
// history (cost grows with steps), shipping moves the state image and
// verifies a log digest (cost tracks state size, not step count).
func benchHandoff(router, model string, db relation.Instance, script func(int, int) relation.Instance, steps, rounds int) {
	target := &httpTarget{base: router, client: wire.New(wire.Config{Name: "bench-handoff", Timeout: 5 * time.Minute})}
	defer target.client.Close()
	const id = "handoff-bench"
	if err := target.open(id, model, db); err != nil {
		fatal(err)
	}
	for j := 0; j < steps; j++ {
		if err := target.step(id, script(0, j)); err != nil {
			fatal(fmt.Errorf("step %d: %w", j+1, err))
		}
	}

	// The live backends, from the router's own ring.
	var shards struct {
		Members []struct {
			Addr string `json:"addr"`
			Up   bool   `json:"up"`
		} `json:"members"`
	}
	if err := target.client.GetJSON(context.Background(), router+"/debug/shards", &shards); err != nil {
		fatal(err)
	}
	var backends []string
	for _, m := range shards.Members {
		if m.Up {
			backends = append(backends, m.Addr)
		}
	}
	if len(backends) < 2 {
		fatal(fmt.Errorf("handoff bench needs >= 2 live backends, ring has %d", len(backends)))
	}
	owner := -1
	for b, u := range backends {
		if err := target.client.GetJSON(context.Background(), u+"/sessions/"+id, nil); err == nil {
			owner = b
		}
	}
	if owner < 0 {
		fatal(fmt.Errorf("no backend owns %s", id))
	}

	report := struct {
		URL      string          `json:"url"`
		Session  string          `json:"session"`
		Steps    int             `json:"steps"`
		Backends int             `json:"backends"`
		Handoffs []handoffTiming `json:"handoffs"`
	}{URL: router, Session: id, Steps: steps, Backends: len(backends)}

	for _, mode := range []string{"replay", "ship"} {
		ht := handoffTiming{Mode: mode, Rounds: rounds, MinMs: math.Inf(1)}
		for r := 0; r < rounds; r++ {
			to := backends[(owner+1)%len(backends)]
			var hres struct {
				Steps    int    `json:"steps"`
				Mode     string `json:"mode"`
				Fallback bool   `json:"fallback"`
			}
			t0 := time.Now()
			hurl := fmt.Sprintf("%s/admin/handoff?session=%s&to=%s&mode=%s", router, id, neturl.QueryEscape(to), mode)
			if err := target.post(hurl, nil, &hres); err != nil {
				fatal(err)
			}
			ms := float64(time.Since(t0)) / 1e6
			if hres.Steps != steps || hres.Mode != mode || hres.Fallback {
				fatal(fmt.Errorf("handoff came back steps=%d mode=%s fallback=%v, want steps=%d mode=%s",
					hres.Steps, hres.Mode, hres.Fallback, steps, mode))
			}
			ht.SamplesMs = append(ht.SamplesMs, ms)
			ht.MeanMs += ms / float64(rounds)
			ht.MinMs = math.Min(ht.MinMs, ms)
			ht.MaxMs = math.Max(ht.MaxMs, ms)
			owner = (owner + 1) % len(backends)
		}
		report.Handoffs = append(report.Handoffs, ht)
	}
	emit(report)
}

// scriptFor returns the per-session input script and a database sized for
// it. Scripts are deterministic in (session index, step index) so repeated
// bench runs are comparable.
func scriptFor(model string) (func(i, j int) relation.Instance, relation.Instance, error) {
	const nProducts = 16
	db := relation.NewInstance()
	products := make([]string, nProducts)
	prices := make([]string, nProducts)
	for p := 0; p < nProducts; p++ {
		products[p] = fmt.Sprintf("item-%02d", p)
		prices[p] = fmt.Sprintf("%d", 100+p)
		db.Add("price", relation.Tuple{relation.Const(products[p]), relation.Const(prices[p])})
		db.Add("available", relation.Tuple{relation.Const(products[p])})
	}
	// The shopping loop of Figure 1: order an item, pay for it on the next
	// step (triggering sendbill then deliver), moving through the catalogue.
	shop := func(i, j int) relation.Instance {
		p := (i + j/2) % nProducts
		in := relation.NewInstance()
		if j%2 == 0 {
			in.Add("order", relation.Tuple{relation.Const(products[p])})
		} else {
			in.Add("pay", relation.Tuple{relation.Const(products[p]), relation.Const(prices[p])})
		}
		return in
	}
	switch model {
	case "short":
		return shop, db, nil
	case "friendly":
		// Same loop, with a pending-bills reminder sweep every fifth step —
		// FRIENDLY's extra outputs (rebill, warnings) exercised under load.
		return func(i, j int) relation.Instance {
			if j%5 == 4 {
				in := relation.NewInstance()
				in.Ensure("pending-bills", 0).Add(relation.Tuple{})
				return in
			}
			return shop(i, j)
		}, db, nil
	}
	return nil, nil, fmt.Errorf("bench: unknown model %q (want short or friendly)", model)
}
