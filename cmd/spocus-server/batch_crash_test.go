package main

// The acceptance test of batch atomicity: sessions are driven with
// fixed-size batched inputs (the array form of POST /sessions/{id}/input),
// the server is SIGKILLed mid-load, and after restart every session's
// recovered step count must be a whole number of batches — a batch is one
// CRC-framed WAL record, so a crash can drop an unacked batch entirely but
// can never leave a partial suffix of one. Acked batches (-fsync always)
// must survive whole.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/models"
	"repro/internal/relation"
	"repro/internal/session"
)

func TestCrashBatchAtomic(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns server processes")
	}
	bin := buildServer(t)
	dir := t.TempDir()

	const (
		nSessions = 6
		batch     = 3
	)
	cmd, base := startServer(t, bin, dir,
		"-group-commit-window", "2ms", "-wal-segment-bytes", "4096", "-snapshot-every", "1024")
	for i := 0; i < nSessions; i++ {
		post(t, base+"/sessions", map[string]string{"model": "short", "id": fmt.Sprintf("ba-%d", i)}, nil)
	}

	// Each goroutine advances one session in whole batches of `batch` steps.
	// acked[i] counts steps of batches whose every item answered 2xx — the
	// durable promise. A shard-level 429 (mailbox full) fails the whole
	// group, so retrying the whole batch preserves step order.
	var acked [nSessions]atomic.Int64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < nSessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			url := fmt.Sprintf("%s/sessions/ba-%d/input", base, i)
			for j := 0; ; {
				select {
				case <-stop:
					return
				default:
				}
				items := make([]map[string]any, batch)
				for k := range items {
					items[k] = map[string]any{"input": shopStep(i, j+k)}
				}
				data, _ := json.Marshal(items)
				resp, err := http.Post(url, "application/json", bytes.NewReader(data))
				if err != nil {
					return // the kill severed the connection
				}
				if resp.StatusCode != http.StatusOK {
					resp.Body.Close()
					return
				}
				var br session.BatchResponse
				derr := json.NewDecoder(resp.Body).Decode(&br)
				resp.Body.Close()
				if derr != nil || len(br.Results) != batch {
					return // response torn by the kill
				}
				shed := false
				for _, r := range br.Results {
					if r.Status == http.StatusTooManyRequests {
						shed = true
						break
					}
					if r.Status/100 != 2 {
						return
					}
				}
				if shed {
					continue // whole group rejected; retry at the same j
				}
				acked[i].Add(batch)
				j += batch
			}
		}(i)
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		var total int64
		for i := range acked {
			total += acked[i].Load()
		}
		if total >= 12*batch*nSessions || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()
	close(stop)
	wg.Wait()

	_, base2 := startServer(t, bin, dir)
	for i := 0; i < nSessions; i++ {
		id := fmt.Sprintf("ba-%d", i)
		lr := getLog(t, base2, id)
		n := acked[i].Load()
		if testFsync() == "always" && int64(lr.Steps) < n {
			t.Errorf("%s: recovered %d steps but %d were acked before the kill", id, lr.Steps, n)
		}
		// Atomicity under ANY fsync policy: a batch is one WAL record, so
		// recovery sees whole batches or nothing — never a partial suffix.
		if lr.Steps%batch != 0 {
			t.Errorf("%s: recovered %d steps — not a whole number of %d-step batches", id, lr.Steps, batch)
		}
		// And the surviving prefix replays identically in-process.
		inputs := make(relation.Sequence, lr.Steps)
		for j := range inputs {
			inputs[j] = shopStep(i, j)
		}
		ref, err := models.Short().Execute(models.MagazineDB(), inputs)
		if err != nil {
			t.Fatalf("%s: oracle replay: %v", id, err)
		}
		if !lr.Log.Equal(ref.Logs) {
			t.Errorf("%s: recovered log diverges from oracle at %d steps", id, lr.Steps)
		}
	}
}
