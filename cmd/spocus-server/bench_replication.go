package main

import (
	"context"
	"fmt"
	"math"
	"net"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/live"
	"repro/internal/relation"
	"repro/internal/replica"
	"repro/internal/session"
	"repro/internal/wire"
)

// bench -replication measures the replication plane's two prices, both of
// which the acceptance criteria bound:
//
//   - Steady-state streaming cost: the same -fsync always workload run
//     with and without a consumer tailing every shard's WAL stream. The
//     "on" consumer drains the real feed — long-polls gated on group
//     commit, segment reads, batch encoding, ack bookkeeping — so the
//     primary pays everything it would pay to feed a follower; the
//     follower's own apply work, which in a deployment runs on another
//     backend's CPU, is excluded. A third run with a full colocated
//     standby (fetch AND apply in-process) is reported separately: on a
//     small host it mostly measures running two engines on one CPU, which
//     is why it is not the acceptance number.
//
//   - Promotion vs replay at a fixed session size: a session is driven to
//     -promote-steps, the standby catches up, and promotion into a fresh
//     serving engine is timed against rebuilding the same session by
//     re-stepping its whole input history (the replay-handoff transport's
//     work). Promotion is O(state) — export one image, install it — while
//     replay is O(steps), which is the whole argument for warm followers.
//
// The committed BENCH_replication.json is this subcommand's output.

// replStreamingReport is the streaming-cost half of the report.
type replStreamingReport struct {
	Off benchResult `json:"off"` // -fsync always, nobody streaming (median round)
	On  benchResult `json:"on"`  // same, with every shard's WAL stream drained (median round)
	// Per-round steps/s for both modes: the runs alternate off/on so disk
	// and scheduler drift hits both alike, and the cost is computed on
	// medians — single fsync-bound runs vary by >10% on their own.
	OffSamples []float64 `json:"off_steps_per_sec_samples"`
	OnSamples  []float64 `json:"on_steps_per_sec_samples"`
	// CostFrac is the relative steps/s lost to feeding the stream:
	// (median off - median on) / median off. The acceptance bound is 0.10.
	CostFrac float64 `json:"steps_per_sec_cost_frac"`
	// StreamedRecords counts WAL records the drain consumer received.
	StreamedRecords int64 `json:"streamed_records"`
	// Colocated is the workload with a full warm standby — fetch and
	// idempotent apply — sharing the process. Its cost is dominated by the
	// standby's own transducer work, so it bounds what colocating primary
	// and follower on one host costs, not what streaming costs.
	Colocated         benchResult `json:"colocated_standby"`
	ColocatedCostFrac float64     `json:"colocated_cost_frac"`
	ColocatedLag      int64       `json:"colocated_final_lag_records"`
}

// replPromotionReport is the promotion-vs-replay half.
type replPromotionReport struct {
	Steps   int             `json:"steps"`
	Timings []handoffTiming `json:"timings"` // modes: promote, replay-rebuild
	// PromoteVsReplayFrac is promote mean over replay-rebuild mean; the
	// acceptance bound (against BENCH_router.json's handoff_1k replay mean)
	// is 0.25.
	PromoteVsReplayFrac float64 `json:"promote_vs_replay_frac"`
}

// serveEngine exposes eng over loopback HTTP, returning its base URL and a
// closer — the stand-in for the primary's listener.
func serveEngine(eng *session.Engine) (string, func(), error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: session.Handler(eng)}
	go srv.Serve(ln)
	return "http://" + ln.Addr().String(), func() { srv.Close() }, nil
}

// drainStream tails every shard's WAL stream the way a follower does —
// long-poll, advance from=, ack the last received LSN — and discards the
// records. The returned stop function waits the tailers out and reports
// how many records were received.
func drainStream(base string, shards int) (stop func() int64) {
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	var n atomic.Int64
	client := wire.New(wire.Config{Name: "bench-repl-drain", Timeout: 15 * time.Second})
	for s := 0; s < shards; s++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			from, acked := int64(1), int64(0)
			for ctx.Err() == nil {
				u := fmt.Sprintf("%s/admin/wal/stream?shard=%d&from=%d&acked=%d&wait=1s",
					base, shard, from, acked)
				var b session.WALBatch
				if err := client.GetJSON(ctx, u, &b); err != nil {
					sleepCtx(ctx, 50*time.Millisecond)
					continue
				}
				if b.Reset {
					from, acked = b.Base+1, b.Base
					n.Add(int64(len(b.Snapshot)))
					continue
				}
				if len(b.Records) > 0 {
					last := b.Records[len(b.Records)-1].LSN
					n.Add(int64(len(b.Records)))
					from, acked = last+1, last
				}
			}
		}(s)
	}
	return func() int64 {
		cancel()
		wg.Wait()
		client.Close()
		return n.Load()
	}
}

func sleepCtx(ctx context.Context, d time.Duration) {
	select {
	case <-ctx.Done():
	case <-time.After(d):
	}
}

// attachStandby starts a warm standby tailing base, applying into its own
// engine. The standby runs FsyncNever: its durability source is the
// primary's WAL, which it can re-stream from any LSN after a crash, so
// fsyncing its own copy buys nothing (and on a shared disk would contend
// with the primary's group commits).
func attachStandby(base string, shards int) (*replica.Follower, func(), error) {
	fdir, err := os.MkdirTemp("", "spocus-repl-standby-*")
	if err != nil {
		return nil, nil, err
	}
	fol, err := replica.New(replica.Config{
		Primary: base,
		Dir:     fdir,
		Shards:  shards,
		Fsync:   session.FsyncNever,
	})
	if err != nil {
		os.RemoveAll(fdir)
		return nil, nil, err
	}
	fol.Start()
	return fol, func() {
		fol.Stop()
		os.RemoveAll(fdir)
	}, nil
}

func benchReplication(cfg session.Config, model string, db relation.Instance, script func(int, int) relation.Instance, nSessions, nSteps, promoteSteps, rounds int) {
	const (
		streamOff = iota
		streamDrain
		streamStandby
	)
	// runOnce drives the workload against a fresh durable engine with the
	// chosen stream consumer attached; extra is streamed records (drain)
	// or final follower lag (standby).
	runOnce := func(mode int) (res benchResult, extra int64) {
		dir, err := os.MkdirTemp("", "spocus-repl-*")
		if err != nil {
			fatal(err)
		}
		defer os.RemoveAll(dir)
		cc := cfg
		cc.Dir, cc.Fsync = dir, session.FsyncAlways
		eng, err := session.NewEngine(cc)
		if err != nil {
			fatal(err)
		}
		var teardown []func()
		var stop func() int64
		var fol *replica.Follower
		if mode != streamOff {
			base, closeSrv, err := serveEngine(eng)
			if err != nil {
				fatal(err)
			}
			teardown = append(teardown, closeSrv)
			switch mode {
			case streamDrain:
				stop = drainStream(base, eng.Shards())
			case streamStandby:
				var stopFol func()
				if fol, stopFol, err = attachStandby(base, eng.Shards()); err != nil {
					fatal(err)
				}
				teardown = append(teardown, stopFol)
			}
		}
		res = runLoad(&engineTarget{eng: eng, lv: live.New(live.Config{Queue: nSessions})}, script, db, model, nSessions, nSteps, 0)
		res.Fsync, res.Durable = "always", true
		if stop != nil {
			extra = stop()
		}
		if fol != nil {
			extra, _ = fol.Lag()
		}
		for i := len(teardown) - 1; i >= 0; i-- {
			teardown[i]()
		}
		return res, extra
	}

	const streamRounds = 3
	var offRuns, onRuns []benchResult
	var streamed int64
	for r := 0; r < streamRounds; r++ {
		o, _ := runOnce(streamOff)
		offRuns = append(offRuns, o)
		n, s := runOnce(streamDrain)
		onRuns = append(onRuns, n)
		streamed += s
	}
	medianRun := func(runs []benchResult) (benchResult, []float64) {
		sorted := append([]benchResult(nil), runs...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i].StepsPerSec < sorted[j].StepsPerSec })
		samples := make([]float64, len(runs))
		for i, r := range runs {
			samples[i] = r.StepsPerSec
		}
		return sorted[len(sorted)/2], samples
	}
	off, offSamples := medianRun(offRuns)
	on, onSamples := medianRun(onRuns)
	colo, lag := runOnce(streamStandby)
	streaming := replStreamingReport{
		Off:               off,
		On:                on,
		OffSamples:        offSamples,
		OnSamples:         onSamples,
		CostFrac:          (off.StepsPerSec - on.StepsPerSec) / off.StepsPerSec,
		StreamedRecords:   streamed,
		Colocated:         colo,
		ColocatedCostFrac: (off.StepsPerSec - colo.StepsPerSec) / off.StepsPerSec,
		ColocatedLag:      lag,
	}

	promote := replPromotionReport{Steps: promoteSteps}
	pt := handoffTiming{Mode: "promote", Rounds: rounds, MinMs: math.Inf(1)}
	rt := handoffTiming{Mode: "replay-rebuild", Rounds: rounds, MinMs: math.Inf(1)}
	const id = "promote-bench"
	for r := 0; r < rounds; r++ {
		var dirs []string
		tmp := func() string {
			d, err := os.MkdirTemp("", "spocus-promote-*")
			if err != nil {
				fatal(err)
			}
			dirs = append(dirs, d)
			return d
		}
		cc := cfg
		cc.Dir, cc.Fsync = tmp(), session.FsyncAlways
		prim, err := session.NewEngine(cc)
		if err != nil {
			fatal(err)
		}
		base, closeSrv, err := serveEngine(prim)
		if err != nil {
			fatal(err)
		}
		fol, stopFol, err := attachStandby(base, prim.Shards())
		if err != nil {
			fatal(err)
		}
		if _, err := prim.Open(&session.OpenRequest{ID: id, Model: model, DB: db}); err != nil {
			fatal(err)
		}
		for j := 0; j < promoteSteps; j++ {
			if _, err := prim.Input(id, script(0, j)); err != nil {
				fatal(fmt.Errorf("step %d: %w", j+1, err))
			}
		}
		deadline := time.Now().Add(60 * time.Second)
		for {
			if info, err := fol.Engine().Info(id); err == nil && info.Steps == promoteSteps {
				break
			}
			if time.Now().After(deadline) {
				fatal(fmt.Errorf("standby never caught up to %d steps", promoteSteps))
			}
			time.Sleep(2 * time.Millisecond)
		}

		dc := cfg
		dc.Dir, dc.Fsync = tmp(), session.FsyncAlways
		dst, err := session.NewEngine(dc)
		if err != nil {
			fatal(err)
		}
		t0 := time.Now()
		pr, err := fol.Promote(dst)
		promoteMs := float64(time.Since(t0)) / 1e6
		if err != nil || len(pr.Sessions) != 1 {
			fatal(fmt.Errorf("promotion came back %+v: %v", pr, err))
		}
		if lr, err := dst.Log(id); err != nil || lr.Steps != promoteSteps {
			fatal(fmt.Errorf("promoted session has %v steps (err %v), want %d", lr, err, promoteSteps))
		}

		rc := cfg
		rc.Dir, rc.Fsync = tmp(), session.FsyncAlways
		reng, err := session.NewEngine(rc)
		if err != nil {
			fatal(err)
		}
		t1 := time.Now()
		if _, err := reng.Open(&session.OpenRequest{ID: id, Model: model, DB: db}); err != nil {
			fatal(err)
		}
		for j := 0; j < promoteSteps; j++ {
			if _, err := reng.Input(id, script(0, j)); err != nil {
				fatal(fmt.Errorf("replay step %d: %w", j+1, err))
			}
		}
		replayMs := float64(time.Since(t1)) / 1e6

		pt.SamplesMs = append(pt.SamplesMs, promoteMs)
		pt.MeanMs += promoteMs / float64(rounds)
		pt.MinMs, pt.MaxMs = math.Min(pt.MinMs, promoteMs), math.Max(pt.MaxMs, promoteMs)
		rt.SamplesMs = append(rt.SamplesMs, replayMs)
		rt.MeanMs += replayMs / float64(rounds)
		rt.MinMs, rt.MaxMs = math.Min(rt.MinMs, replayMs), math.Max(rt.MaxMs, replayMs)

		stopFol()
		closeSrv()
		prim.Shutdown()
		dst.Shutdown()
		reng.Shutdown()
		for _, d := range dirs {
			os.RemoveAll(d)
		}
	}
	promote.Timings = []handoffTiming{pt, rt}
	promote.PromoteVsReplayFrac = pt.MeanMs / rt.MeanMs

	emit(struct {
		Streaming replStreamingReport `json:"streaming"`
		Promotion replPromotionReport `json:"promotion"`
	}{streaming, promote})
}
