// Command spocus runs a relational transducer program on a database and an
// input session, printing the run trace in the style of the paper's
// Figures 1 and 2.
//
// Usage:
//
//	spocus -program short.spocus -session session.json [-state] [-json]
//
// The session file is JSON:
//
//	{
//	  "db": {"price": [["time","855"],["newsweek","845"]]},
//	  "inputs": [
//	    {"order": [["time"]]},
//	    {"pay": [["time","855"]]}
//	  ]
//	}
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/relation"
)

type session struct {
	DB     relation.Instance   `json:"db"`
	Inputs []relation.Instance `json:"inputs"`
}

func main() {
	var (
		programPath = flag.String("program", "", "transducer program file")
		sessionPath = flag.String("session", "", "session JSON file (db + inputs)")
		showState   = flag.Bool("state", false, "print state relations at each step")
		showLog     = flag.Bool("log", true, "print the log at each step")
		asJSON      = flag.Bool("json", false, "emit the run as JSON instead of a trace")
		acceptance  = flag.String("accept", "", "check acceptance: error-free | ok | accept")
		stepEngine  = flag.String("step-engine", "ra", "rule evaluation engine: ra (compiled plans) | tree (walker)")
	)
	flag.Parse()
	if *programPath == "" || *sessionPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	engine, err := core.ParseStepEngine(*stepEngine)
	fatal(err)
	core.SetStepEngine(engine)

	src, err := os.ReadFile(*programPath)
	fatal(err)
	m, err := core.ParseProgram(string(src))
	fatal(err)

	raw, err := os.ReadFile(*sessionPath)
	fatal(err)
	var s session
	fatal(json.Unmarshal(raw, &s))
	if s.DB == nil {
		s.DB = relation.NewInstance()
	}
	inputs := make(relation.Sequence, len(s.Inputs))
	for i, in := range s.Inputs {
		if in == nil {
			in = relation.NewInstance()
		}
		inputs[i] = in
	}

	run, err := m.Execute(s.DB, inputs)
	fatal(err)

	if *asJSON {
		out := struct {
			Machine string              `json:"machine"`
			Kind    string              `json:"kind"`
			Outputs []relation.Instance `json:"outputs"`
			States  []relation.Instance `json:"states"`
			Logs    []relation.Instance `json:"logs"`
		}{m.Name(), m.Kind().String(), run.Outputs, run.States, run.Logs}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		fatal(enc.Encode(out))
	} else {
		fmt.Printf("transducer %s (%s machine, %d steps)\n", m.Name(), m.Kind(), run.Len())
		fmt.Print(run.FormatTrace(*showState, *showLog))
	}

	if *acceptance != "" {
		mode, err := core.ParseAcceptMode(*acceptance)
		if err != nil {
			fatal(err)
		}
		ok := run.Valid(mode)
		fmt.Printf("run valid under %s: %v\n", mode, ok)
		if !ok {
			os.Exit(1)
		}
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "spocus:", err)
		os.Exit(1)
	}
}
