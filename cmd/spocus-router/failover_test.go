package main

// The acceptance test of the cluster layer: three real spocus-server
// processes behind a real spocus-router process, concurrent scripted load,
// SIGKILL of one backend mid-load, recovery, and handoffs over both
// transports (WAL shipping and deterministic replay) — after all of which
// every session's log served through the router must be byte-identical to
// a single-node oracle run of the same input sequence.
//
// Sessions owned by the victim are quiescent at the instant of the kill
// (their acked prefix is exact); sessions on the survivors keep stepping
// throughout. An input in flight to a dying server can be applied-and-
// fsynced but unacknowledged, in which case no client can know whether to
// resend — byte-exactness is only falsifiable for acked prefixes, which is
// precisely the consistency unit DESIGN §6 promises.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/models"
	"repro/internal/relation"
	"repro/internal/session"
)

// build compiles a package in this module once per test into dir.
func build(t *testing.T, dir, name, pkg string) string {
	t.Helper()
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not available")
	}
	bin := filepath.Join(dir, name)
	cmd := exec.Command("go", "build", "-o", bin, pkg)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build %s: %v\n%s", pkg, err, out)
	}
	return bin
}

// startProc launches bin with args and waits for its "listening on
// http://ADDR" line, returning the process and base URL.
func startProc(t *testing.T, bin string, args ...string) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.Process != nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	sc := bufio.NewScanner(stdout)
	deadline := time.After(30 * time.Second)
	lines := make(chan string, 16)
	go func() {
		for sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
	}()
	for {
		select {
		case line, ok := <-lines:
			if !ok {
				t.Fatalf("%s exited before listening", filepath.Base(bin))
			}
			if i := strings.Index(line, "listening on "); i >= 0 {
				url := strings.TrimSpace(line[i+len("listening on "):])
				if j := strings.Index(url, " "); j >= 0 {
					url = url[:j]
				}
				go func() { // keep draining so the child never blocks on stdout
					for range lines {
					}
				}()
				return cmd, url
			}
		case <-deadline:
			t.Fatalf("timed out waiting for %s to listen", filepath.Base(bin))
		}
	}
}

func postJSON(t *testing.T, url string, body any, out any) int {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		return 0 // transport error: caller decides
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode/100 == 2 {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

func getStatus(url string, out any) int {
	resp, err := http.Get(url)
	if err != nil {
		return 0
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode/100 == 2 {
		json.NewDecoder(resp.Body).Decode(out)
	}
	return resp.StatusCode
}

// The deterministic per-session script: order a magazine, pay it on the
// next step, moving through the Figure 1 catalogue.
var mags = []struct{ name, price string }{
	{"time", "855"}, {"newsweek", "845"}, {"le-monde", "8350"},
}

func scriptInput(i, j int) relation.Instance {
	m := mags[(i+j/2)%len(mags)]
	in := relation.NewInstance()
	if j%2 == 0 {
		in.Add("order", relation.Tuple{relation.Const(m.name)})
	} else {
		in.Add("pay", relation.Tuple{relation.Const(m.name), relation.Const(m.price)})
	}
	return in
}

// oracleLogs computes the single-node reference log for session i over
// steps [0, n).
func oracleLogs(t *testing.T, i, n int) relation.Sequence {
	t.Helper()
	seq := make(relation.Sequence, n)
	for j := 0; j < n; j++ {
		seq[j] = scriptInput(i, j)
	}
	run, err := models.Short().Execute(models.MagazineDB(), seq)
	if err != nil {
		t.Fatalf("oracle run for session %d: %v", i, err)
	}
	return run.Logs
}

// driveSteps feeds session id steps [from, to) through base, retrying
// transient refusals (429 backpressure, 503 handoff freeze).
func driveSteps(t *testing.T, base, id string, i, from, to int) error {
	for j := from; j < to; j++ {
		in := scriptInput(i, j)
		var st int
		for attempt := 0; attempt < 8; attempt++ {
			var res session.StepResult
			st = postJSON(t, fmt.Sprintf("%s/sessions/%s/input", base, id), map[string]any{"input": in}, &res)
			if st/100 == 2 {
				if res.Seq != j+1 {
					return fmt.Errorf("session %s step %d: seq %d", id, j+1, res.Seq)
				}
				break
			}
			if st != http.StatusTooManyRequests && st != http.StatusServiceUnavailable {
				return fmt.Errorf("session %s step %d: status %d", id, j+1, st)
			}
			time.Sleep(time.Duration(10<<attempt) * time.Millisecond)
		}
		if st/100 != 2 {
			return fmt.Errorf("session %s step %d: gave up at status %d", id, j+1, st)
		}
	}
	return nil
}

// TestClusterFailover is the acceptance scenario of ISSUE 3: 3 backends
// behind a router under concurrent scripted load; SIGKILL one backend;
// after recovery and a handoff every session's log through the router is
// byte-identical to the single-node oracle, and /debug/shards reflects
// the new ring.
func TestClusterFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns server processes")
	}
	bins := t.TempDir()
	serverBin := build(t, bins, "spocus-server", "repro/cmd/spocus-server")
	routerBin := build(t, bins, "spocus-router", "repro/cmd/spocus-router")

	// Boot 3 durable backends and the router with fast health probing.
	const nBackends = 3
	procs := make([]*exec.Cmd, nBackends)
	urls := make([]string, nBackends)
	dirs := make([]string, nBackends)
	for b := 0; b < nBackends; b++ {
		dirs[b] = t.TempDir()
		procs[b], urls[b] = startProc(t, serverBin, "serve", "-addr", "127.0.0.1:0", "-dir", dirs[b], "-fsync", "always")
	}
	_, router := startProc(t, routerBin,
		"-addr", "127.0.0.1:0",
		"-backends", strings.Join(urls, ","),
		"-health-interval", "100ms", "-health-timeout", "500ms",
		"-health-fail-after", "2", "-health-max-backoff", "500ms")

	// Open sessions through the router with the oracle's database.
	const nSessions, nSteps = 18, 30
	db := models.MagazineDB()
	ids := make([]string, nSessions)
	for i := range ids {
		ids[i] = fmt.Sprintf("clu-%02d", i)
		st := postJSON(t, router+"/sessions", map[string]any{"id": ids[i], "model": "short", "db": db}, nil)
		if st != http.StatusCreated {
			t.Fatalf("open %s: status %d", ids[i], st)
		}
	}

	// Find each session's home by asking the backends directly.
	owner := make(map[string]int)
	for i, id := range ids {
		homes := 0
		for b, u := range urls {
			if getStatus(u+"/sessions/"+id, nil) == http.StatusOK {
				owner[id] = b
				homes++
			}
		}
		if homes != 1 {
			t.Fatalf("session %s has %d homes", ids[i], homes)
		}
	}
	victim := owner[ids[0]]
	var victimSessions, survivorSessions []int
	for i, id := range ids {
		if owner[id] == victim {
			victimSessions = append(victimSessions, i)
		} else {
			survivorSessions = append(survivorSessions, i)
		}
	}
	if len(survivorSessions) == 0 {
		t.Fatal("all sessions on one backend; test is vacuous")
	}
	t.Logf("victim backend %d owns %d/%d sessions", victim, len(victimSessions), nSessions)

	drivePhase := func(sessions []int, from, to int) {
		t.Helper()
		var wg sync.WaitGroup
		errs := make(chan error, len(sessions))
		for _, i := range sessions {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				if err := driveSteps(t, router, ids[i], i, from, to); err != nil {
					errs <- err
				}
			}(i)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
	}

	// Phase 1: everyone steps to 10, concurrently, all acked.
	drivePhase(allOf(nSessions), 0, 10)

	// Phase 2: survivors keep stepping while the victim is SIGKILLed.
	var wg sync.WaitGroup
	phase2Errs := make(chan error, len(survivorSessions))
	for _, i := range survivorSessions {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := driveSteps(t, router, ids[i], i, 10, 20); err != nil {
				phase2Errs <- err
			}
		}(i)
	}
	if err := procs[victim].Process.Kill(); err != nil {
		t.Fatal(err)
	}
	procs[victim].Wait()

	// The router ejects the dead backend from the ring.
	waitRing(t, router, urls[victim], false)

	// A victim session is refused (503 — its owner is down, the key is
	// unroutable, never re-homed), never served.
	if st := getStatus(router+"/sessions/"+ids[victimSessions[0]]+"/log", nil); st/100 == 2 {
		t.Fatalf("victim session served while its backend is dead (status %d)", st)
	}
	wg.Wait()
	close(phase2Errs)
	for err := range phase2Errs {
		t.Fatal(err)
	}

	// Recovery: restart the victim on its WAL directory and address.
	addr := strings.TrimPrefix(urls[victim], "http://")
	procs[victim], _ = startProc(t, serverBin, "serve", "-addr", addr, "-dir", dirs[victim], "-fsync", "always")
	waitRing(t, router, urls[victim], true)

	// Phase 3: everyone finishes to 30 steps, concurrently.
	var wg3 sync.WaitGroup
	phase3Errs := make(chan error, nSessions)
	for _, i := range victimSessions {
		wg3.Add(1)
		go func(i int) {
			defer wg3.Done()
			phase3Errs <- driveSteps(t, router, ids[i], i, 10, 30)
		}(i)
	}
	for _, i := range survivorSessions {
		wg3.Add(1)
		go func(i int) {
			defer wg3.Done()
			phase3Errs <- driveSteps(t, router, ids[i], i, 20, 30)
		}(i)
	}
	wg3.Wait()
	close(phase3Errs)
	for err := range phase3Errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	// Every session's log through the router is byte-identical to the
	// single-node oracle.
	for i, id := range ids {
		assertOracleLog(t, router, id, i, nSteps)
	}

	// Handoffs, one per transport: WAL shipping (move the state image,
	// digest-verified on the target) and deterministic replay (re-step the
	// exported input history). Both must leave the log through the router
	// byte-identical to the oracle — the transports are interchangeable by
	// construction, and this is where that's proved across real processes.
	handoff := func(idx int, target, mode string) {
		t.Helper()
		id := ids[idx]
		src := urls[owner[id]]
		var hres struct {
			From     string `json:"from"`
			To       string `json:"to"`
			Steps    int    `json:"steps"`
			Mode     string `json:"mode"`
			Fallback bool   `json:"fallback"`
		}
		st := postJSON(t, fmt.Sprintf("%s/admin/handoff?session=%s&to=%s&mode=%s", router, id, target, mode), nil, &hres)
		if st != http.StatusOK || hres.To != target || hres.Steps != nSteps {
			t.Fatalf("handoff %s (%s): status %d, %+v", id, mode, st, hres)
		}
		if hres.Mode != mode || hres.Fallback {
			t.Fatalf("handoff %s: asked for mode %s, got %q (fallback=%v)", id, mode, hres.Mode, hres.Fallback)
		}
		var shards struct {
			Pins map[string]string `json:"pins"`
		}
		if st := getStatus(router+"/debug/shards", &shards); st != http.StatusOK || shards.Pins[id] != target {
			t.Fatalf("/debug/shards does not show the pin: status %d, %v", st, shards.Pins)
		}
		if st := getStatus(src+"/sessions/"+id, nil); st != http.StatusNotFound {
			t.Fatalf("source still owns the handed-off session: status %d", st)
		}
		assertOracleLog(t, router, id, idx, nSteps)
	}

	// Ship a recovered session off the victim; it must keep serving after
	// its old home dies for good below.
	moved := ids[victimSessions[0]]
	movedIdx := victimSessions[0]
	handoff(movedIdx, urls[(victim+1)%nBackends], "ship")

	// Replay-move a survivor session to the backend that is neither its
	// owner nor the victim, so the upcoming kill cannot touch it.
	replayIdx := survivorSessions[0]
	replayTarget := urls[3-owner[ids[replayIdx]]-victim]
	handoff(replayIdx, replayTarget, "replay")

	if err := procs[victim].Process.Kill(); err != nil {
		t.Fatal(err)
	}
	procs[victim].Wait()
	waitRing(t, router, urls[victim], false)

	// The handed-off session survives its old home's death: one more step
	// through the router, and the log still matches the oracle.
	if err := driveSteps(t, router, moved, movedIdx, nSteps, nSteps+1); err != nil {
		t.Fatal(err)
	}
	assertOracleLog(t, router, moved, movedIdx, nSteps+1)
}

func allOf(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// waitRing polls /debug/shards until backend `addr` has health `up`.
func waitRing(t *testing.T, router, addr string, up bool) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		var shards struct {
			Members []struct {
				Addr string `json:"addr"`
				Up   bool   `json:"up"`
			} `json:"members"`
		}
		if getStatus(router+"/debug/shards", &shards) == http.StatusOK {
			for _, m := range shards.Members {
				if m.Addr == addr && m.Up == up {
					return
				}
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("ring never showed %s up=%v", addr, up)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// assertOracleLog fetches session id's log through the router and compares
// it — semantically and byte-for-byte — with the oracle run.
func assertOracleLog(t *testing.T, router, id string, i, steps int) {
	t.Helper()
	var lr session.LogResult
	if st := getStatus(fmt.Sprintf("%s/sessions/%s/log", router, id), &lr); st != http.StatusOK {
		t.Fatalf("log %s: status %d", id, st)
	}
	want := oracleLogs(t, i, steps)
	if lr.Steps != steps || !lr.Log.Equal(want) {
		t.Fatalf("session %s log differs from oracle:\n got %s\nwant %s", id, lr.Log, want)
	}
	got, err := json.Marshal(lr.Log)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, ref) {
		t.Fatalf("session %s log not byte-identical to oracle:\n got %s\nwant %s", id, got, ref)
	}
}
