// Command spocus-router fronts N spocus-server backends with a
// consistent-hash ring: every session lives on exactly one backend, the
// router proxies the session API there, health-checks eject dead backends
// from the ring, and POST /admin/handoff rebalances individual sessions —
// by WAL shipping (move the state image, verify a log digest on the
// target) or by deterministic replay (export the input history, re-step it
// on the target), then flip the ring entry.
//
// Usage:
//
//	spocus-router [-addr :8090] -backends http://h1:8080,http://h2:8080,...
//	              [-vnodes 128] [-health-interval 1s] [-health-timeout 500ms]
//	              [-health-fail-after 2] [-health-max-backoff 5s]
//	              [-handoff-mode ship|replay]
//	              [-follower-reads] [-follower-max-lag 0] [-auto-promote]
//
// Exposes the spocus-server session API (routed per session) plus:
//
//	GET  /debug/shards                 the live ring: members, health, keyspace shares, pins
//	POST /admin/handoff?session=&to=   move one session to another backend
//	POST /admin/promote?backend=       fail a dead backend's sessions over to its follower
//	GET  /healthz, /debug/vars
//
// With -follower-reads, GET /sessions/{id}/log, /verify, and /progress are
// served by the owner's warm follower (spocus-server -follow) whenever its
// replication lag is within -follower-max-lag, falling back to the primary
// otherwise; responses served this way carry X-Spocus-Served-By. With
// -auto-promote, marking a backend down triggers promotion of its follower
// automatically.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
)

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "spocus-router:", err)
	os.Exit(1)
}

func main() {
	var (
		addr          = flag.String("addr", ":8090", "listen address")
		backends      = flag.String("backends", "", "comma-separated spocus-server base URLs (required)")
		vnodes        = flag.Int("vnodes", 128, "virtual nodes per backend on the hash ring")
		healthEvery   = flag.Duration("health-interval", time.Second, "probe period per backend")
		healthTimeout = flag.Duration("health-timeout", 500*time.Millisecond, "single probe timeout")
		healthFails   = flag.Int("health-fail-after", 2, "consecutive probe failures before marking a backend down")
		healthBackoff = flag.Duration("health-max-backoff", 5*time.Second, "probe backoff cap while a backend is down")
		handoffMode   = flag.String("handoff-mode", "ship", "default session handoff transport: ship (state image + log digest) | replay (re-step input history)")
		followerReads = flag.Bool("follower-reads", false, "serve GET log/verify/progress from the owner's follower when within -follower-max-lag")
		followerLag   = flag.Int64("follower-max-lag", 0, "max WAL records a follower may trail the primary and still serve reads")
		autoPromote   = flag.Bool("auto-promote", false, "promote a backend's follower automatically when health marks it down")
	)
	flag.Parse()

	var urls []string
	for _, b := range strings.Split(*backends, ",") {
		if b = strings.TrimSpace(b); b != "" {
			urls = append(urls, strings.TrimRight(b, "/"))
		}
	}
	if len(urls) == 0 {
		fmt.Fprintln(os.Stderr, "usage: spocus-router -backends http://host:port,... [flags]")
		os.Exit(2)
	}

	rt, err := cluster.NewRouter(cluster.RouterConfig{
		Backends:       urls,
		Vnodes:         *vnodes,
		HandoffMode:    *handoffMode,
		FollowerReads:  *followerReads,
		FollowerMaxLag: *followerLag,
		AutoPromote:    *autoPromote,
		Health: cluster.HealthConfig{
			Interval:   *healthEvery,
			Timeout:    *healthTimeout,
			FailAfter:  *healthFails,
			MaxBackoff: *healthBackoff,
		},
	})
	if err != nil {
		fatal(err)
	}
	defer rt.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	// Machine-parseable, same shape as spocus-server's line; the failover
	// test and scripts rely on it.
	fmt.Printf("spocus-router listening on http://%s (%d backends)\n", ln.Addr(), len(urls))

	srv := &http.Server{Handler: rt.Handler()}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		// Graceful: stop accepting, drain in-flight proxied requests.
		fmt.Printf("received %v, draining\n", s)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fatal(err)
		}
	case err := <-done:
		if err != http.ErrServerClosed {
			fatal(err)
		}
	}
}
