package main

// The acceptance test of the replication plane: three real spocus-server
// processes in a follow ring (backend b runs a warm standby of backend
// b-1) behind a real spocus-router, semi-sync replication on, concurrent
// scripted load over plain sessions AND a network session, SIGKILL of one
// backend mid-group-commit — and then promotion instead of restart: the
// dead backend's follower installs its standby copies into its own serving
// engine and the router pins the sessions there.
//
// The contract under test is stronger than failover_test's: the victim is
// never restarted, its WAL directory is never read again, and yet every
// step any client was told succeeded must be present and byte-identical to
// the single-node oracle. Semi-sync (-repl-sync-wait) is what makes that
// falsifiable — an acked step is durable on the follower before the client
// sees its 2xx, so not even the kill window can lose one.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os/exec"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/compose"
	"repro/internal/models"
	"repro/internal/session"
)

// reservePorts picks n free listening addresses and releases them so child
// processes can bind them. The tiny race against other port users is the
// standard price for needing the follow-ring URLs before any server exists.
func reservePorts(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		ln.Close()
	}
	return addrs
}

// netOracleJoint replays steps empty joint steps of the named network on a
// fresh in-process engine and returns the joint log, JSON-encoded.
func netOracleJoint(t *testing.T, network string, steps int) []byte {
	t.Helper()
	eng, err := session.NewEngine(session.Config{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Shutdown()
	if _, err := eng.Open(&session.OpenRequest{ID: "oracle", Network: models.Network(network)}); err != nil {
		t.Fatal(err)
	}
	for j := 0; j < steps; j++ {
		if _, err := eng.NetInput("oracle", compose.StepInputs{}); err != nil {
			t.Fatalf("oracle joint step %d: %v", j+1, err)
		}
	}
	lr, err := eng.Log("oracle")
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(lr.Joint)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestPromotionFailover is the promotion crash suite of ISSUE 7: SIGKILL a
// primary under concurrent load, promote its follower, and assert no acked
// step was lost and every served log is byte-identical to the oracle — for
// plain and network sessions — then keep stepping the promoted sessions.
func TestPromotionFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns server processes")
	}
	bins := t.TempDir()
	serverBin := build(t, bins, "spocus-server", "repro/cmd/spocus-server")
	routerBin := build(t, bins, "spocus-router", "repro/cmd/spocus-router")

	// A follow ring over reserved ports: backend b is the warm standby of
	// backend b-1, so primary b's follower is backend b+1.
	const nBackends = 3
	addrs := reservePorts(t, nBackends)
	urls := make([]string, nBackends)
	for b := range urls {
		urls[b] = "http://" + addrs[b]
	}
	procs := make([]*exec.Cmd, nBackends)
	for b := 0; b < nBackends; b++ {
		procs[b], _ = startProc(t, serverBin, "serve",
			"-addr", addrs[b], "-dir", t.TempDir(), "-fsync", "always",
			"-repl-sync-wait", "2s",
			"-follow", urls[(b+nBackends-1)%nBackends], "-follow-dir", t.TempDir())
	}
	_, router := startProc(t, routerBin,
		"-addr", "127.0.0.1:0",
		"-backends", strings.Join(urls, ","),
		"-health-interval", "100ms", "-health-timeout", "500ms",
		"-health-fail-after", "2", "-health-max-backoff", "500ms")

	// One network session decides the victim; plain sessions fill the ring
	// (more opened until the victim owns at least one and a survivor does
	// too, so neither half of the assertion is vacuous).
	const netName, netID = "marketplace", "prm-net"
	if st := postJSON(t, router+"/sessions", map[string]any{"id": netID, "network": models.Network(netName)}, nil); st != http.StatusCreated {
		t.Fatalf("open %s: status %d", netID, st)
	}
	ownerOf := func(id string) int {
		home := -1
		for b, u := range urls {
			if getStatus(u+"/sessions/"+id, nil) == http.StatusOK {
				if home >= 0 {
					t.Fatalf("session %s has two homes", id)
				}
				home = b
			}
		}
		if home < 0 {
			t.Fatalf("session %s has no home", id)
		}
		return home
	}
	victim := ownerOf(netID)
	follower := (victim + 1) % nBackends

	db := models.MagazineDB()
	var plainIDs []string
	owner := make(map[string]int)
	onVictim, elsewhere := 0, 0
	for i := 0; len(plainIDs) < 40 && (len(plainIDs) < 6 || onVictim == 0 || elsewhere == 0); i++ {
		id := fmt.Sprintf("prm-%02d", i)
		if st := postJSON(t, router+"/sessions", map[string]any{"id": id, "model": "short", "db": db}, nil); st != http.StatusCreated {
			t.Fatalf("open %s: status %d", id, st)
		}
		plainIDs = append(plainIDs, id)
		owner[id] = ownerOf(id)
		if owner[id] == victim {
			onVictim++
		} else {
			elsewhere++
		}
	}
	if onVictim == 0 || elsewhere == 0 {
		t.Fatalf("degenerate placement: %d on victim, %d elsewhere", onVictim, elsewhere)
	}
	t.Logf("victim backend %d (follower %d) owns the network session and %d/%d plain sessions",
		victim, follower, onVictim, len(plainIDs))

	// driveAcked feeds steps [from,to) and returns how many are acked: a 2xx
	// is an ack, transient refusals (429 backpressure, 503 freeze) retry,
	// anything else — including the transport errors and 502s of the kill —
	// ends the run. The returned count is the exact consistency obligation
	// the promoted follower must meet.
	driveAcked := func(id string, i, from, to int) int {
		acked := from
		for j := from; j < to; j++ {
			var st int
			for attempt := 0; attempt < 8; attempt++ {
				var res session.StepResult
				st = postJSON(t, fmt.Sprintf("%s/sessions/%s/input", router, id), map[string]any{"input": scriptInput(i, j)}, &res)
				if st/100 == 2 {
					if res.Seq != j+1 {
						t.Errorf("session %s step %d: seq %d", id, j+1, res.Seq)
					}
					break
				}
				if st != http.StatusTooManyRequests && st != http.StatusServiceUnavailable {
					return acked
				}
				time.Sleep(time.Duration(10<<attempt) * time.Millisecond)
			}
			if st/100 != 2 {
				return acked
			}
			acked = j + 1
		}
		return acked
	}
	driveNetAcked := func(from, to int) int {
		acked := from
		for j := from; j < to; j++ {
			var st int
			for attempt := 0; attempt < 8; attempt++ {
				var res session.StepResult
				st = postJSON(t, fmt.Sprintf("%s/sessions/%s/input", router, netID), map[string]any{"inputs": map[string]any{}}, &res)
				if st/100 == 2 {
					if res.Seq != j+1 {
						t.Errorf("network session step %d: seq %d", j+1, res.Seq)
					}
					break
				}
				if st != http.StatusTooManyRequests && st != http.StatusServiceUnavailable {
					return acked
				}
				time.Sleep(time.Duration(10<<attempt) * time.Millisecond)
			}
			if st/100 != 2 {
				return acked
			}
			acked = j + 1
		}
		return acked
	}

	// Phase 1: a fully-acked prefix everywhere, so by the kill every shard
	// holding a victim session has an acking follower and semi-sync is
	// engaged for all of them.
	const warm, goal = 6, 30
	var wg sync.WaitGroup
	for i, id := range plainIDs {
		wg.Add(1)
		go func(id string, i int) {
			defer wg.Done()
			if got := driveAcked(id, i, 0, warm); got != warm {
				t.Errorf("warmup %s stopped at %d/%d", id, got, warm)
			}
		}(id, i)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		if got := driveNetAcked(0, warm); got != warm {
			t.Errorf("warmup %s stopped at %d/%d", netID, got, warm)
		}
	}()
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// Phase 2: everyone races toward goal while the victim is SIGKILLed
	// mid-load. Per-session acked counts are the assertion input.
	acked := make([]int, len(plainIDs))
	var netAcked int
	var wg2 sync.WaitGroup
	for i, id := range plainIDs {
		wg2.Add(1)
		go func(id string, i int) {
			defer wg2.Done()
			acked[i] = driveAcked(id, i, warm, goal)
		}(id, i)
	}
	wg2.Add(1)
	go func() {
		defer wg2.Done()
		netAcked = driveNetAcked(warm, goal)
	}()
	time.Sleep(250 * time.Millisecond)
	if err := procs[victim].Process.Kill(); err != nil {
		t.Fatal(err)
	}
	procs[victim].Wait()
	wg2.Wait()
	if t.Failed() {
		t.FailNow()
	}
	for i, id := range plainIDs {
		if owner[id] != victim && acked[i] != goal {
			t.Fatalf("survivor session %s stopped at %d/%d", id, acked[i], goal)
		}
	}

	// Promote the dead backend's follower through the router.
	waitRing(t, router, urls[victim], false)
	var pres struct {
		Backend  string   `json:"backend"`
		Follower string   `json:"follower"`
		Sessions []string `json:"sessions"`
		TookMs   float64  `json:"took_ms"`
	}
	if st := postJSON(t, router+"/admin/promote?backend="+urls[victim], nil, &pres); st != http.StatusOK {
		t.Fatalf("promote: status %d", st)
	}
	if pres.Follower != urls[follower] {
		t.Fatalf("promoted to %s, expected the ring follower %s", pres.Follower, urls[follower])
	}
	promoted := make(map[string]bool, len(pres.Sessions))
	for _, id := range pres.Sessions {
		promoted[id] = true
	}
	t.Logf("promotion moved %d sessions in %.1fms", len(pres.Sessions), pres.TookMs)

	// Every victim plain session: present on the follower, no acked step
	// lost, served log byte-identical to the oracle — and still live, two
	// more steps deep, after the promotion.
	for i, id := range plainIDs {
		if owner[id] != victim {
			assertOracleLog(t, router, id, i, goal)
			continue
		}
		if !promoted[id] {
			t.Fatalf("victim session %s missing from promotion result %v", id, pres.Sessions)
		}
		var lr session.LogResult
		if st := getStatus(fmt.Sprintf("%s/sessions/%s/log", router, id), &lr); st != http.StatusOK {
			t.Fatalf("log %s after promotion: status %d", id, st)
		}
		if lr.Steps < acked[i] {
			t.Fatalf("session %s lost acked steps: served %d < acked %d", id, lr.Steps, acked[i])
		}
		assertOracleLog(t, router, id, i, lr.Steps)
		if err := driveSteps(t, router, id, i, lr.Steps, lr.Steps+2); err != nil {
			t.Fatalf("post-promotion steps on %s: %v", id, err)
		}
		assertOracleLog(t, router, id, i, lr.Steps+2)
	}

	// The network session: same contract against the joint-log oracle. Its
	// WAL records (one per joint step) replicated like any other.
	if !promoted[netID] {
		t.Fatalf("network session missing from promotion result %v", pres.Sessions)
	}
	var nlr session.LogResult
	if st := getStatus(fmt.Sprintf("%s/sessions/%s/log", router, netID), &nlr); st != http.StatusOK {
		t.Fatalf("network log after promotion: status %d", st)
	}
	if nlr.Steps < netAcked {
		t.Fatalf("network session lost acked steps: served %d < acked %d", nlr.Steps, netAcked)
	}
	got, err := json.Marshal(nlr.Joint)
	if err != nil {
		t.Fatal(err)
	}
	if want := netOracleJoint(t, netName, nlr.Steps); !bytes.Equal(got, want) {
		t.Fatalf("network joint log differs from oracle after promotion:\n got %s\nwant %s", got, want)
	}
	if n := driveNetAcked(nlr.Steps, nlr.Steps+1); n != nlr.Steps+1 {
		t.Fatalf("post-promotion joint step refused at %d", n)
	}
	var nlr2 session.LogResult
	if st := getStatus(fmt.Sprintf("%s/sessions/%s/log", router, netID), &nlr2); st != http.StatusOK || nlr2.Steps != nlr.Steps+1 {
		t.Fatalf("network log after post-promotion step: status %d steps %d", st, nlr2.Steps)
	}
	got2, err := json.Marshal(nlr2.Joint)
	if err != nil {
		t.Fatal(err)
	}
	if want2 := netOracleJoint(t, netName, nlr2.Steps); !bytes.Equal(got2, want2) {
		t.Fatalf("network joint log diverged after post-promotion step:\n got %s\nwant %s", got2, want2)
	}
}
