// Command spocus-verify runs the paper's decision procedures from the
// command line.
//
// Subcommands:
//
//	spocus-verify log        -program P -db DB.json -log LOG.json [-unknown-db]
//	spocus-verify goal       -program P -db DB.json -goal "deliver(X)"
//	spocus-verify temporal   -program P -db DB.json -cond "deliver(X), price(X,Y) => past-pay(X,Y)"
//	spocus-verify contain    -reference P1 -candidate P2 -db DB.json
//	spocus-verify errorfree  -program P -db DB.json -clause "pay(X,Y) => price(X,Y)"
//	spocus-verify errorfree-contain -t1 P1 -t2 P2 -db DB.json
//	spocus-verify minimize   -program P -db DB.json [-maxlen 2]
//
// Every subcommand accepts -parallelism N (number of SAT subproblems
// solved concurrently; 0 or 1 sequential, -1 all CPUs) and -timeout D (a
// wall-clock bound such as 30s; exceeding it is an input error). The
// decision is identical under any parallelism; the reported witness or
// counterexample may differ (see DESIGN.md §3.4).
//
// Database and log files are JSON maps from relation name to tuple lists.
// Exit status 0 means the property holds / the artifact is valid; 1 means
// it does not (a witness or counterexample is printed); 2 is a usage or
// input error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/relation"
	"repro/internal/tsdi"
	"repro/internal/verify"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "log":
		cmdLog(os.Args[2:])
	case "goal":
		cmdGoal(os.Args[2:])
	case "temporal":
		cmdTemporal(os.Args[2:])
	case "contain":
		cmdContain(os.Args[2:])
	case "errorfree":
		cmdErrorFree(os.Args[2:])
	case "errorfree-contain":
		cmdErrorFreeContain(os.Args[2:])
	case "minimize":
		cmdMinimize(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: spocus-verify <log|goal|temporal|contain|errorfree|errorfree-contain|minimize> [flags]")
	os.Exit(2)
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "spocus-verify:", err)
		os.Exit(2)
	}
}

func loadMachine(path string) *core.Machine {
	src, err := os.ReadFile(path)
	fatal(err)
	m, err := core.ParseProgram(string(src))
	fatal(err)
	return m
}

func loadInstance(path string) relation.Instance {
	if path == "" {
		return relation.NewInstance()
	}
	raw, err := os.ReadFile(path)
	fatal(err)
	var in relation.Instance
	fatal(json.Unmarshal(raw, &in))
	return in
}

func loadSequence(path string) relation.Sequence {
	raw, err := os.ReadFile(path)
	fatal(err)
	var steps []relation.Instance
	fatal(json.Unmarshal(raw, &steps))
	seq := make(relation.Sequence, len(steps))
	for i, s := range steps {
		if s == nil {
			s = relation.NewInstance()
		}
		seq[i] = s
	}
	return seq
}

func printSeq(label string, seq relation.Sequence) {
	fmt.Printf("%s:\n", label)
	for i, step := range seq {
		fmt.Printf("  step %d: %s\n", i+1, step)
	}
}

func verdict(ok bool, yes, no string) {
	if ok {
		fmt.Println(yes)
		return
	}
	fmt.Println(no)
	os.Exit(1)
}

// engineFlags registers the parallel-engine knobs shared by every
// subcommand and returns a builder for the resulting Options.
func engineFlags(fs *flag.FlagSet) func() *verify.Options {
	parallelism := fs.Int("parallelism", 0, "SAT subproblems solved concurrently (0 or 1: sequential, -1: all CPUs)")
	timeout := fs.Duration("timeout", 0, "wall-clock bound per procedure call, e.g. 30s (0: none)")
	return func() *verify.Options {
		return &verify.Options{Parallelism: *parallelism, Timeout: *timeout}
	}
}

func cmdLog(args []string) {
	fs := flag.NewFlagSet("log", flag.ExitOnError)
	program := fs.String("program", "", "transducer program")
	dbPath := fs.String("db", "", "database JSON")
	logPath := fs.String("log", "", "log sequence JSON")
	unknownDB := fs.Bool("unknown-db", false, "search for a database too")
	opts := engineFlags(fs)
	fatal(fs.Parse(args))
	m := loadMachine(*program)
	o := opts()
	o.UnknownDB = *unknownDB
	res, err := verify.LogValidity(m, loadInstance(*dbPath), loadSequence(*logPath), o)
	fatal(err)
	if res.Valid {
		printSeq("witness inputs", res.Witness)
		if res.WitnessDB != nil {
			fmt.Printf("witness database: %s\n", res.WitnessDB)
		}
	}
	verdict(res.Valid, "log VALID (Theorem 3.1)", "log INVALID: no input sequence generates it")
}

func cmdGoal(args []string) {
	fs := flag.NewFlagSet("goal", flag.ExitOnError)
	program := fs.String("program", "", "transducer program")
	dbPath := fs.String("db", "", "database JSON")
	goalSrc := fs.String("goal", "", "goal, e.g. \"deliver(X)\"")
	prefixPath := fs.String("prefix", "", "optional partial-run inputs JSON")
	unknownDB := fs.Bool("unknown-db", false, "search for a database too")
	opts := engineFlags(fs)
	fatal(fs.Parse(args))
	m := loadMachine(*program)
	g, err := verify.ParseGoal(*goalSrc)
	fatal(err)
	var prefix relation.Sequence
	if *prefixPath != "" {
		prefix = loadSequence(*prefixPath)
	}
	o := opts()
	o.UnknownDB = *unknownDB
	res, err := verify.ReachGoalFrom(m, loadInstance(*dbPath), prefix, g, o)
	fatal(err)
	if res.Reachable {
		printSeq("witness inputs", res.Witness)
		if res.WitnessDB != nil {
			fmt.Printf("witness database: %s\n", res.WitnessDB)
		}
	}
	verdict(res.Reachable, "goal REACHABLE (Theorem 3.2)", "goal UNREACHABLE")
}

func cmdTemporal(args []string) {
	fs := flag.NewFlagSet("temporal", flag.ExitOnError)
	program := fs.String("program", "", "transducer program")
	dbPath := fs.String("db", "", "database JSON")
	var conds multiFlag
	fs.Var(&conds, "cond", "condition \"lits => lits\" (repeatable)")
	unknownDB := fs.Bool("unknown-db", false, "quantify over all databases")
	opts := engineFlags(fs)
	fatal(fs.Parse(args))
	m := loadMachine(*program)
	var cs []*verify.Condition
	for _, src := range conds {
		c, err := verify.ParseCondition(src)
		fatal(err)
		cs = append(cs, c)
	}
	o := opts()
	o.UnknownDB = *unknownDB
	res, err := verify.CheckTemporal(m, loadInstance(*dbPath), cs, o)
	fatal(err)
	if !res.Holds {
		fmt.Printf("violated condition: %s\n", res.Violated)
		printSeq("counterexample inputs", res.Counterexample)
		if res.CounterexampleDB != nil {
			fmt.Printf("counterexample database: %s\n", res.CounterexampleDB)
		}
	}
	verdict(res.Holds, "property HOLDS on every run (Theorem 3.3)", "property VIOLATED")
}

func cmdContain(args []string) {
	fs := flag.NewFlagSet("contain", flag.ExitOnError)
	ref := fs.String("reference", "", "reference transducer program")
	cand := fs.String("candidate", "", "candidate (customized) transducer program")
	dbPath := fs.String("db", "", "database JSON")
	opts := engineFlags(fs)
	fatal(fs.Parse(args))
	res, err := verify.Contains(loadMachine(*ref), loadMachine(*cand), loadInstance(*dbPath), opts())
	fatal(err)
	if !res.Contained {
		fmt.Printf("logs diverge on relation %q\n", res.DiffersAt)
		printSeq("counterexample inputs", res.Counterexample)
	}
	verdict(res.Contained, "CONTAINED: every candidate log is a reference log (Theorem 3.5)", "NOT CONTAINED")
}

func cmdErrorFree(args []string) {
	fs := flag.NewFlagSet("errorfree", flag.ExitOnError)
	program := fs.String("program", "", "transducer program")
	dbPath := fs.String("db", "", "database JSON")
	var clauses multiFlag
	fs.Var(&clauses, "clause", "T_sdi clause \"lits => atoms\" (repeatable)")
	opts := engineFlags(fs)
	fatal(fs.Parse(args))
	m := loadMachine(*program)
	s, err := tsdi.Parse(clauses...)
	fatal(err)
	res, err := verify.CheckErrorFree(m, loadInstance(*dbPath), s, opts())
	fatal(err)
	if !res.Holds {
		fmt.Printf("violated clause: %s\n", res.Violated)
		printSeq("counterexample (error-free) inputs", res.Counterexample)
	}
	verdict(res.Holds, "sentence HOLDS on every error-free run (Theorem 4.4)", "sentence VIOLATED")
}

func cmdErrorFreeContain(args []string) {
	fs := flag.NewFlagSet("errorfree-contain", flag.ExitOnError)
	t1 := fs.String("t1", "", "first transducer program")
	t2 := fs.String("t2", "", "second transducer program")
	dbPath := fs.String("db", "", "database JSON")
	opts := engineFlags(fs)
	fatal(fs.Parse(args))
	res, err := verify.ErrorFreeContained(loadMachine(*t1), loadMachine(*t2), loadInstance(*dbPath), opts())
	fatal(err)
	if !res.Contained {
		printSeq("run error-free for t1 but not t2", res.Counterexample)
	}
	verdict(res.Contained, "CONTAINED: every error-free run of t1 is error-free for t2 (Theorem 4.6)", "NOT CONTAINED")
}

func cmdMinimize(args []string) {
	fs := flag.NewFlagSet("minimize", flag.ExitOnError)
	program := fs.String("program", "", "transducer program")
	dbPath := fs.String("db", "", "database JSON")
	maxLen := fs.Int("maxlen", 2, "run-length bound")
	opts := engineFlags(fs)
	fatal(fs.Parse(args))
	m := loadMachine(*program)
	keep, err := verify.MinimalLog(m, loadInstance(*dbPath), *maxLen, opts())
	fatal(err)
	fmt.Printf("declared log: %v\n", m.Schema().Log)
	fmt.Printf("minimal sufficient log (runs ≤ %d): %v\n", *maxLen, keep)
}

type multiFlag []string

func (m *multiFlag) String() string { return fmt.Sprint([]string(*m)) }
func (m *multiFlag) Set(s string) error {
	*m = append(*m, s)
	return nil
}
