package spocus_test

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	spocus "repro"
)

// TestFacadeEngine drives the serving layer through the public facade: a
// session opened against a named model reproduces a Figure 1 step.
func TestFacadeEngine(t *testing.T) {
	e, err := spocus.NewEngine(spocus.EngineConfig{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Shutdown()
	info, err := e.Open(&spocus.OpenRequest{Model: "short"})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Input(info.ID, spocus.Step(spocus.F("order", "time")))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Output.Has("sendbill", spocus.Tuple{"time", "855"}) {
		t.Errorf("output: %s", res.Output)
	}
	if !res.Log.Has("sendbill", spocus.Tuple{"time", "855"}) {
		t.Errorf("log delta: %s", res.Log)
	}
	if h := spocus.ServerHandler(e); h == nil {
		t.Error("nil handler")
	}
	names := spocus.ModelNames()
	if len(names) == 0 {
		t.Error("no model names")
	}
}

// TestFacadeCluster drives the cluster layer through the public facade: a
// ring routes, and a router fronting two facade engines proxies a session
// to exactly one of them.
func TestFacadeCluster(t *testing.T) {
	ring := spocus.NewRing(128)
	ring.Add("http://a:1")
	ring.Add("http://b:1")
	if addr, err := ring.Lookup("some-session"); err != nil || addr == "" {
		t.Fatalf("ring lookup: %s, %v", addr, err)
	}

	var engines []*spocus.Engine
	var backends []*httptest.Server
	for i := 0; i < 2; i++ {
		e, err := spocus.NewEngine(spocus.EngineConfig{Shards: 1})
		if err != nil {
			t.Fatal(err)
		}
		engines = append(engines, e)
		backends = append(backends, httptest.NewServer(spocus.ServerHandler(e)))
	}
	defer func() {
		for i := range backends {
			backends[i].Close()
			engines[i].Shutdown()
		}
	}()
	rt, err := spocus.NewRouter(spocus.RouterConfig{Backends: []string{backends[0].URL, backends[1].URL}})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	body := strings.NewReader(`{"id":"facade-1","model":"short"}`)
	resp, err := http.Post(front.URL+"/sessions", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("open via router: status %d", resp.StatusCode)
	}
	homes := 0
	for _, e := range engines {
		if _, err := e.Info("facade-1"); err == nil {
			homes++
		}
	}
	if homes != 1 {
		t.Fatalf("session has %d homes, want 1", homes)
	}
	if info := rt.Ring().Snapshot(); len(info.Members) != 2 {
		t.Fatalf("ring members: %+v", info.Members)
	}
}

// TestFacadeLive drives the live verification plane through the public
// facade: a configured LiveService answers a reachability query about a
// running session both in-process (Peek → Goal) and over the wire
// (ServerHandlerWith).
func TestFacadeLive(t *testing.T) {
	e, err := spocus.NewEngine(spocus.EngineConfig{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Shutdown()
	lv := spocus.NewLiveService(spocus.LiveConfig{Workers: 1})
	if _, err := e.Open(&spocus.OpenRequest{ID: "live-f", Model: "short"}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Input("live-f", spocus.Step(spocus.F("order", "time"))); err != nil {
		t.Fatal(err)
	}

	view, err := e.Peek("live-f")
	if err != nil {
		t.Fatal(err)
	}
	src := spocus.LiveSource{Model: view.Model, Src: view.Src, DB: view.DB, Past: view.Past}
	a, err := lv.Goal(context.Background(), src, "deliver(X)")
	if err != nil {
		t.Fatal(err)
	}
	if !a.Reachable {
		t.Fatalf("deliver(X) unreachable after order(time): %+v", a)
	}

	srv := httptest.NewServer(spocus.ServerHandlerWith(e, lv))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/sessions/live-f/verify?goal=" + url.QueryEscape("deliver(X)"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("verify via facade handler: status %d", resp.StatusCode)
	}
	var wire spocus.GoalAnswer
	if err := json.NewDecoder(resp.Body).Decode(&wire); err != nil {
		t.Fatal(err)
	}
	// The wire answer is served from the answer the in-process query warmed.
	if !wire.Reachable || !wire.Cached {
		t.Fatalf("wire answer: %+v, want reachable and cached", wire)
	}
	if st := lv.Stats(); st.Queries != 2 || st.CacheHits != 1 {
		t.Fatalf("facade service stats: %+v", st)
	}
}
