package spocus_test

import (
	"testing"

	spocus "repro"
)

// TestFacadeEngine drives the serving layer through the public facade: a
// session opened against a named model reproduces a Figure 1 step.
func TestFacadeEngine(t *testing.T) {
	e, err := spocus.NewEngine(spocus.EngineConfig{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Shutdown()
	info, err := e.Open(&spocus.OpenRequest{Model: "short"})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Input(info.ID, spocus.Step(spocus.F("order", "time")))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Output.Has("sendbill", spocus.Tuple{"time", "855"}) {
		t.Errorf("output: %s", res.Output)
	}
	if !res.Log.Has("sendbill", spocus.Tuple{"time", "855"}) {
		t.Errorf("log delta: %s", res.Log)
	}
	if h := spocus.ServerHandler(e); h == nil {
		t.Error("nil handler")
	}
	names := spocus.ModelNames()
	if len(names) == 0 {
		t.Error("no model names")
	}
}
