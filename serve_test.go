package spocus_test

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	spocus "repro"
)

// TestFacadeEngine drives the serving layer through the public facade: a
// session opened against a named model reproduces a Figure 1 step.
func TestFacadeEngine(t *testing.T) {
	e, err := spocus.NewEngine(spocus.EngineConfig{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Shutdown()
	info, err := e.Open(&spocus.OpenRequest{Model: "short"})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Input(info.ID, spocus.Step(spocus.F("order", "time")))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Output.Has("sendbill", spocus.Tuple{"time", "855"}) {
		t.Errorf("output: %s", res.Output)
	}
	if !res.Log.Has("sendbill", spocus.Tuple{"time", "855"}) {
		t.Errorf("log delta: %s", res.Log)
	}
	if h := spocus.ServerHandler(e); h == nil {
		t.Error("nil handler")
	}
	names := spocus.ModelNames()
	if len(names) == 0 {
		t.Error("no model names")
	}
}

// TestFacadeCluster drives the cluster layer through the public facade: a
// ring routes, and a router fronting two facade engines proxies a session
// to exactly one of them.
func TestFacadeCluster(t *testing.T) {
	ring := spocus.NewRing(128)
	ring.Add("http://a:1")
	ring.Add("http://b:1")
	if addr, err := ring.Lookup("some-session"); err != nil || addr == "" {
		t.Fatalf("ring lookup: %s, %v", addr, err)
	}

	var engines []*spocus.Engine
	var backends []*httptest.Server
	for i := 0; i < 2; i++ {
		e, err := spocus.NewEngine(spocus.EngineConfig{Shards: 1})
		if err != nil {
			t.Fatal(err)
		}
		engines = append(engines, e)
		backends = append(backends, httptest.NewServer(spocus.ServerHandler(e)))
	}
	defer func() {
		for i := range backends {
			backends[i].Close()
			engines[i].Shutdown()
		}
	}()
	rt, err := spocus.NewRouter(spocus.RouterConfig{Backends: []string{backends[0].URL, backends[1].URL}})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	body := strings.NewReader(`{"id":"facade-1","model":"short"}`)
	resp, err := http.Post(front.URL+"/sessions", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("open via router: status %d", resp.StatusCode)
	}
	homes := 0
	for _, e := range engines {
		if _, err := e.Info("facade-1"); err == nil {
			homes++
		}
	}
	if homes != 1 {
		t.Fatalf("session has %d homes, want 1", homes)
	}
	if info := rt.Ring().Snapshot(); len(info.Members) != 2 {
		t.Fatalf("ring members: %+v", info.Members)
	}
}
