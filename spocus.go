// Package spocus is the public API of this reproduction of "Relational
// Transducers for Electronic Commerce" (Abiteboul, Vianu, Fordham, Yesha;
// PODS 1998 / JCSS 61, 2000).
//
// A relational transducer maps a sequence of input relations to a sequence
// of output relations over a fixed database, remembering state between
// steps; the designated log relations record the semantically significant
// part of the exchange. The package builds and runs transducers written in
// the paper's concrete rule syntax, with the Spocus restriction (cumulative
// state, semipositive nonrecursive datalog¬,≠ outputs) validated at
// construction:
//
//	m, err := spocus.ParseProgram(spocus.ShortSrc)
//	run, err := m.Execute(db, inputs)
//	fmt.Print(run.FormatTrace(false, true))
//
// The decision procedures of the paper are exposed directly: LogValidity
// (Theorem 3.1), ReachGoal (Theorem 3.2), CheckTemporal (Theorem 3.3),
// Contains/Equivalent (Theorem 3.5 / Corollary 3.6), CheckErrorFree
// (Theorem 4.4), and ErrorFreeContained (Theorem 4.6), plus the bounded
// log-minimization check of Section 2.1. Every positive answer returns a
// witness input sequence that has been replayed against the transducer.
//
// Deeper substrates live in the internal packages: internal/dlog (the rule
// language), internal/fol + internal/sat (the ∃*∀*FO decision procedure
// over a CDCL SAT solver), internal/automata (the Section 3.1 propositional
// characterization), internal/turing (the Theorem 4.2 Turing-machine
// construction), internal/deps (the undecidability reductions), and
// internal/compose (networks of interacting transducers).
package spocus

import (
	"repro/internal/core"
	"repro/internal/models"
	"repro/internal/relation"
	"repro/internal/tsdi"
	"repro/internal/verify"
)

// Re-exported data types.
type (
	// Const is a constant symbol of the data domain.
	Const = relation.Const
	// Tuple is an ordered list of constants.
	Tuple = relation.Tuple
	// Fact is a relation name applied to a tuple.
	Fact = relation.Fact
	// Instance maps relation names to finite relations.
	Instance = relation.Instance
	// Sequence is a finite sequence of instances.
	Sequence = relation.Sequence
	// Rel is a finite set of tuples of fixed arity.
	Rel = relation.Rel
)

// Re-exported transducer types.
type (
	// Machine is a rule-specified relational transducer.
	Machine = core.Machine
	// Schema is a transducer schema (in, state, out, db, log).
	Schema = core.Schema
	// Run is a transducer execution trace.
	Run = core.Run
	// AcceptMode selects an input-control discipline (Section 4).
	AcceptMode = core.AcceptMode
	// Kind classifies a machine's restriction class.
	Kind = core.Kind
)

// Acceptance modes.
const (
	// AcceptAll places no restriction on runs.
	AcceptAll = core.AcceptAll
	// ErrorFree accepts runs that never output error.
	ErrorFree = core.ErrorFree
	// OKEveryStep accepts runs whose every output contains ok.
	OKEveryStep = core.OKEveryStep
	// AcceptAtEnd accepts runs whose last output contains accept.
	AcceptAtEnd = core.AcceptAtEnd
)

// Machine kinds.
const (
	// KindSpocus is the paper's decidable class.
	KindSpocus = core.KindSpocus
	// KindExtended allows projection state rules (Proposition 3.1).
	KindExtended = core.KindExtended
	// KindGeneral is unrestricted.
	KindGeneral = core.KindGeneral
)

// Verification types.
type (
	// Goal is an existential conjunction of output literals (Section 3.2).
	Goal = verify.Goal
	// Condition is a T_past-input implication (Theorem 3.3).
	Condition = verify.Condition
	// Options tune the decision procedures.
	Options = verify.Options
	// Cache memoizes decisive SAT subproblem results across calls.
	Cache = verify.Cache
	// Sentence is a T_sdi sentence (Section 4.1).
	Sentence = tsdi.Sentence
)

// NewCache returns an empty verification cache, safe for concurrent use.
func NewCache() *Cache { return verify.NewCache() }

// ParseProgram parses a transducer program in the paper's concrete syntax.
func ParseProgram(src string) (*Machine, error) { return core.ParseProgram(src) }

// MustParseProgram parses a transducer program, panicking on error.
func MustParseProgram(src string) *Machine { return core.MustParseProgram(src) }

// NewInstance returns an empty instance.
func NewInstance() Instance { return relation.NewInstance() }

// F builds a fact from a relation name and constants.
func F(rel string, args ...string) Fact { return models.F(rel, args...) }

// Step builds a single input instance from facts.
func Step(facts ...Fact) Instance { return models.Step(facts...) }

// ParseGoal parses a goal such as "deliver(X), NOT rejectpay(X)".
func ParseGoal(src string) (*Goal, error) { return verify.ParseGoal(src) }

// ParseCondition parses a T_past-input condition such as
// "deliver(X), price(X,Y) => past-pay(X,Y)".
func ParseCondition(src string) (*Condition, error) { return verify.ParseCondition(src) }

// ParseSentence parses a T_sdi sentence from clause strings such as
// "pay(X,Y) => past-order(X)".
func ParseSentence(clauses ...string) (*Sentence, error) { return tsdi.Parse(clauses...) }

// Enforce grafts a T_sdi sentence onto a machine as error rules
// (Theorem 4.1): the result's error-free runs accept exactly the input
// sequences satisfying the sentence (plus the machine's own error rules).
func Enforce(m *Machine, s *Sentence) (*Machine, error) { return tsdi.Enforce(m, s) }

// LogValidity decides whether a log is generated by some input sequence
// (Theorem 3.1).
func LogValidity(m *Machine, db Instance, log Sequence, opts *Options) (*verify.LogValidityResult, error) {
	return verify.LogValidity(m, db, log, opts)
}

// ReachGoal decides whether some run's last output satisfies the goal
// (Theorem 3.2).
func ReachGoal(m *Machine, db Instance, g *Goal, opts *Options) (*verify.ReachResult, error) {
	return verify.ReachGoal(m, db, g, opts)
}

// ReachGoalFrom decides goal reachability after a partial run.
func ReachGoalFrom(m *Machine, db Instance, prefix Sequence, g *Goal, opts *Options) (*verify.ReachResult, error) {
	return verify.ReachGoalFrom(m, db, prefix, g, opts)
}

// Progress suggests next single-fact inputs that immediately achieve the
// goal (the progress service of Section 2.1).
func Progress(m *Machine, db Instance, prefix Sequence, g *Goal, pool []Const) ([]Fact, error) {
	return verify.Progress(m, db, prefix, g, pool)
}

// CheckTemporal decides whether every run satisfies the T_past-input
// conditions (Theorem 3.3).
func CheckTemporal(m *Machine, db Instance, conds []*Condition, opts *Options) (*verify.TemporalResult, error) {
	return verify.CheckTemporal(m, db, conds, opts)
}

// Contains decides log containment of a customized transducer in a
// reference transducer (Theorem 3.5).
func Contains(reference, candidate *Machine, db Instance, opts *Options) (*verify.ContainResult, error) {
	return verify.Contains(reference, candidate, db, opts)
}

// Equivalent decides log equivalence via two containments (Corollary 3.6).
func Equivalent(a, b *Machine, db Instance, opts *Options) (bool, *verify.ContainResult, *verify.ContainResult, error) {
	return verify.Equivalent(a, b, db, opts)
}

// CheckErrorFree decides whether every error-free run satisfies the T_sdi
// sentence (Theorem 4.4; error rules must have no negative state literal).
func CheckErrorFree(m *Machine, db Instance, s *Sentence, opts *Options) (*verify.ErrorFreeResult, error) {
	return verify.CheckErrorFree(m, db, s, opts)
}

// ErrorFreeContained decides containment of error-free runs (Theorem 4.6).
func ErrorFreeContained(t1, t2 *Machine, db Instance, opts *Options) (*verify.ErrorFreeContainResult, error) {
	return verify.ErrorFreeContained(t1, t2, db, opts)
}

// RemovableFromLog decides (up to a run-length bound) whether a logged
// relation is determined by the rest of the log (Section 2.1).
func RemovableFromLog(m *Machine, db Instance, name string, maxLen int, opts *Options) (*verify.MinimizeResult, error) {
	return verify.RemovableFromLog(m, db, name, maxLen, opts)
}

// MinimalLog greedily minimizes a machine's log (Section 2.1), up to the
// run-length bound.
func MinimalLog(m *Machine, db Instance, maxLen int, opts *Options) ([]string, error) {
	return verify.MinimalLog(m, db, maxLen, opts)
}

// The paper's example transducers, re-exported from internal/models.
var (
	// ShortSrc is transducer SHORT of Section 2.1.
	ShortSrc = models.ShortSrc
	// FriendlySrc is transducer FRIENDLY of Section 2.1.
	FriendlySrc = models.FriendlySrc
	// ABCSrc is the ab*c propositional transducer of Section 3.1.
	ABCSrc = models.ABCSrc
)

// Short returns the SHORT transducer of Section 2.1.
func Short() *Machine { return models.Short() }

// Friendly returns the FRIENDLY transducer of Section 2.1.
func Friendly() *Machine { return models.Friendly() }

// MagazineDB returns the Figure 1 database (Time, Newsweek, Le Monde).
func MagazineDB() Instance { return models.MagazineDB() }

// WithLog rebuilds a Spocus machine with a different log declaration (e.g.
// the full-log variants Theorem 3.5's preconditions require).
func WithLog(m *Machine, logNames ...string) *Machine { return models.WithLog(m, logNames...) }
