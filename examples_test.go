package spocus_test

// The examples/ directory holds runnable main packages; this test builds
// and runs each one, asserting success, and golden-checks the quickstart's
// replay of the Figure 1 run of SHORT.

import (
	"os/exec"
	"strings"
	"testing"
)

var examplePrograms = []string{
	"quickstart",
	"store",
	"fraud",
	"customization",
	"marketplace",
	"turing",
}

// fig1Trace is the Figure 1 run of SHORT exactly as the quickstart prints
// it: two orders billed, payment and a third order, then the remaining
// payments and deliveries — with the log recording bills, payments, and
// deliveries.
const fig1Trace = `step 1
  input:  {order(newsweek), order(time)}
  output: {sendbill(newsweek, 845), sendbill(time, 855)}
  log:    {sendbill(newsweek, 845), sendbill(time, 855)}
step 2
  input:  {order(le-monde), pay(time, 855)}
  output: {deliver(time), sendbill(le-monde, 8350)}
  log:    {deliver(time), pay(time, 855), sendbill(le-monde, 8350)}
step 3
  input:  {pay(le-monde, 8350), pay(newsweek, 845)}
  output: {deliver(le-monde), deliver(newsweek)}
  log:    {deliver(le-monde), deliver(newsweek), pay(le-monde, 8350), pay(newsweek, 845)}
`

func TestExamples(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles and runs example binaries")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not available")
	}
	for _, name := range examplePrograms {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			out, err := exec.Command("go", "run", "./examples/"+name).CombinedOutput()
			if err != nil {
				t.Fatalf("go run ./examples/%s: %v\n%s", name, err, out)
			}
			if len(out) == 0 {
				t.Errorf("examples/%s produced no output", name)
			}
			if name == "quickstart" && !strings.Contains(string(out), fig1Trace) {
				t.Errorf("quickstart trace does not match Figure 1:\n%s", out)
			}
		})
	}
}
