// A customer-facing storefront session on the FRIENDLY transducer of
// Section 2.1, showing the warning outputs (unavailable product, rejected
// payment, double payment, pending-bill reminders), the error-free input
// discipline obtained by compiling T_sdi sentences (Theorem 4.1), and the
// acceptor taxonomy of Section 4.
package main

import (
	"fmt"
	"log"

	spocus "repro"
)

func main() {
	store := spocus.MustParseProgram(spocus.FriendlySrc)
	db := spocus.MagazineDB()

	fmt.Println("== a messy but legal session with FRIENDLY ==")
	inputs := spocus.Sequence{
		spocus.Step(spocus.F("order", "time"), spocus.F("order", "la-stampa")),
		spocus.Step(spocus.F("pay", "time", "855"), spocus.F("pay", "le-monde", "8350")),
		spocus.Step(spocus.F("order", "newsweek"), spocus.F("pay", "time", "855")),
		spocus.Step(spocus.F("pending-bills")),
		spocus.Step(spocus.F("pay", "newsweek", "845")),
	}
	run, err := store.Execute(db, inputs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(run.FormatTrace(false, false))

	// The warnings are cosmetic: the semantically significant log matches
	// what SHORT would record (the paper's customization claim).
	short := spocus.Short()
	shortRun, err := short.Execute(db, inputs.Restrict(short.Schema().In.Names()))
	if err != nil {
		log.Fatal(err)
	}
	same := run.Logs.Equal(shortRun.Logs)
	fmt.Printf("\nlogs identical to SHORT on this session: %v\n", same)

	fmt.Println("\n== imposing an input discipline (Theorem 4.1) ==")
	// Compile the paper's Section 4.1 sentences into error rules: payments
	// must name a listed price and a previously ordered product.
	sentence, err := spocus.ParseSentence(
		"pay(X,Y) => price(X,Y)",
		"pay(X,Y) => past-order(X)",
	)
	if err != nil {
		log.Fatal(err)
	}
	disciplined, err := spocus.Enforce(store, sentence)
	if err != nil {
		log.Fatal(err)
	}
	// The messy session pays for le-monde without ordering it: rejected.
	run2, err := disciplined.Execute(db, inputs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("messy session error-free: %v (first error at step %d)\n",
		run2.Valid(spocus.ErrorFree), run2.ErrorFreePrefix()+1)

	polite := spocus.Sequence{
		spocus.Step(spocus.F("order", "time")),
		spocus.Step(spocus.F("pay", "time", "855")),
	}
	run3, err := disciplined.Execute(db, polite)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("polite session error-free: %v\n", run3.Valid(spocus.ErrorFree))

	// Statically verify that a discipline guarantees a property the raw
	// store does not enforce (Theorem 4.4). The theorem's decidable case
	// requires error rules without negative state literals, so the check
	// runs against a store disciplined by the price sentence alone —
	// "pay(X,Y) => past-order(X)" compiles to a rule with NOT past-order
	// and is rejected by the procedure (Theorem 4.3 makes the general
	// problem undecidable).
	priceOnly, err := spocus.ParseSentence("pay(X,Y) => price(X,Y)")
	if err != nil {
		log.Fatal(err)
	}
	checkable, err := spocus.Enforce(store, priceOnly)
	if err != nil {
		log.Fatal(err)
	}
	res, err := spocus.CheckErrorFree(checkable, db, priceOnly, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nTheorem 4.4: every error-free run pays listed prices: %v\n", res.Holds)
	raw, err := spocus.CheckErrorFree(store, db, priceOnly, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("…and on the undisciplined store: %v (counterexample %v)\n", raw.Holds, raw.Counterexample)
	if _, err := spocus.CheckErrorFree(disciplined, db, priceOnly, nil); err != nil {
		fmt.Printf("fully disciplined store is outside the decidable case:\n  %v\n", err)
	}
}
