// Interacting transducers (the paper's Section 5 future work): a supplier
// and a customer, each with their own business model, wired output-to-input
// with unit delay. The compatibility search looks for a joint error-free
// run that delivers the goods — and proves a deadlock when the two policies
// contradict (customer pays only after delivery, supplier delivers only
// after payment).
package main

import (
	"fmt"
	"log"

	"repro/internal/compose"
	"repro/internal/core"
	"repro/internal/relation"
	"repro/internal/verify"
)

const supplierSrc = `
transducer supplier
schema
  database: price/2;
  input: order/1, pay/2;
  state: past-order/1, past-pay/2;
  output: invoice/2, deliver/1, error/0;
  log: invoice, deliver;
state rules
  past-order(X) +:- order(X);
  past-pay(X,Y) +:- pay(X,Y);
output rules
  invoice(X,Y) :- order(X), price(X,Y), NOT past-pay(X,Y);
  deliver(X) :- past-order(X), price(X,Y), pay(X,Y), NOT past-pay(X,Y);
  error :- pay(X,Y), NOT past-order(X);
  error :- pay(X,Y), NOT price(X,Y);
`

const promptCustomerSrc = `
transducer prompt
schema
  input: want/1, invoice/2, arrived/1;
  state: past-want/1, past-invoice/2, past-arrived/1;
  output: order/1, pay/2, error/0;
  log: order, pay;
state rules
  past-want(X) +:- want(X);
  past-invoice(X,Y) +:- invoice(X,Y);
  past-arrived(X) +:- arrived(X);
output rules
  order(X) :- want(X), NOT past-want(X);
  pay(X,Y) :- invoice(X,Y), NOT past-invoice(X,Y);
`

const stubbornCustomerSrc = `
transducer stubborn
schema
  input: want/1, invoice/2, arrived/1;
  state: past-want/1, past-invoice/2, past-arrived/1;
  output: order/1, pay/2, error/0;
  log: order, pay;
state rules
  past-want(X) +:- want(X);
  past-invoice(X,Y) +:- invoice(X,Y);
  past-arrived(X) +:- arrived(X);
output rules
  order(X) :- want(X), NOT past-want(X);
  pay(X,Y) :- past-invoice(X,Y), arrived(X);
`

func market(customerSrc string) *compose.Network {
	n := compose.New()
	db := relation.NewInstance()
	db.Add("price", relation.Tuple{"widget", "5"})
	must(n.AddNode("supplier", core.MustParseProgram(supplierSrc), db))
	must(n.AddNode("customer", core.MustParseProgram(customerSrc), nil))
	must(n.Connect("customer", "order", "supplier", "order"))
	must(n.Connect("customer", "pay", "supplier", "pay"))
	must(n.Connect("supplier", "invoice", "customer", "invoice"))
	must(n.Connect("supplier", "deliver", "customer", "arrived"))
	return n
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func main() {
	goal, err := verify.ParseGoal("deliver(widget)")
	must(err)
	pool := []relation.Const{"widget"}

	fmt.Println("== prompt customer (pays on invoice) ==")
	n := market(promptCustomerSrc)
	res, err := n.Compatible([]compose.Goal{{Node: "supplier", G: goal}}, pool, 5)
	must(err)
	fmt.Printf("compatible: %v (explored %d candidate runs)\n", res.Compatible, res.Explored)
	if res.Compatible {
		run, err := n.Execute(res.Witness)
		must(err)
		for i := 0; i < run.Len(); i++ {
			fmt.Printf("  step %d: customer out %s | supplier out %s\n",
				i+1, run.Outputs[i]["customer"], run.Outputs[i]["supplier"])
		}
	}

	fmt.Println("\n== stubborn customer (pays only after delivery) ==")
	n2 := market(stubbornCustomerSrc)
	res2, err := n2.Compatible([]compose.Goal{{Node: "supplier", G: goal}}, pool, 5)
	must(err)
	fmt.Printf("compatible: %v (explored %d candidate runs) — the models deadlock\n",
		res2.Compatible, res2.Explored)
}
