// Customization soundness (Theorem 3.5 / Corollary 3.6): a customer tailors
// the supplier's business model — adding warnings, or imposing a purchasing
// policy — and the supplier verifies statically whether the customization
// still produces only logs the original model could produce.
package main

import (
	"fmt"
	"log"

	spocus "repro"
	"repro/internal/models"
)

func main() {
	db := spocus.MagazineDB()
	// Theorem 3.5 requires the reference's inputs to be logged, so compare
	// full-log variants.
	logSet := []string{"order", "pay", "sendbill", "deliver"}
	short := models.WithLog(models.Short(), logSet...)

	// --- Customization 1: FRIENDLY (extra warnings, unlogged) -------------
	friendly := models.WithLog(models.Friendly(), logSet...)
	res, err := spocus.Contains(short, friendly, db, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("short ⊒ friendly (warnings are harmless): %v\n", res.Contained)

	// --- Customization 2: a verbose variant, checked equivalent -----------
	verbose := spocus.MustParseProgram(`
transducer verbose
schema
  database: price/2, available/1;
  input: order/1, pay/2;
  state: past-order/1, past-pay/2;
  output: sendbill/2, deliver/1, unavailable/1;
  log: order, pay, sendbill, deliver;
state rules
  past-order(X) +:- order(X);
  past-pay(X,Y) +:- pay(X,Y);
output rules
  sendbill(X,Y) :- order(X), price(X,Y), NOT past-pay(X,Y);
  deliver(X) :- past-order(X), price(X,Y), pay(X,Y), NOT past-pay(X,Y);
  unavailable(X) :- order(X), NOT available(X);
`)
	eq, _, _, err := spocus.Equivalent(short, verbose, db, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("short ≡ verbose (Corollary 3.6): %v\n", eq)

	// --- Customization 3: a purchasing policy that CHANGES logged behaviour
	// (blocked products are never billed). With a full log the divergence is
	// caught and a counterexample produced.
	restricted := models.WithLog(models.Restricted(), logSet...)
	dbBlocked := spocus.MagazineDB()
	dbBlocked.Add("blocked", spocus.Tuple{"le-monde"})
	res3, err := spocus.Contains(short, restricted, dbBlocked, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("short ⊒ restricted (with blocked products): %v\n", res3.Contained)
	if !res3.Contained {
		fmt.Printf("  logs diverge on relation %q for inputs:\n", res3.DiffersAt)
		for i, step := range res3.Counterexample {
			fmt.Printf("    step %d: %s\n", i+1, step)
		}
	}

	// The same policy over a database with nothing blocked is equivalent.
	res4, err := spocus.Contains(short, restricted, db, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("short ⊒ restricted (nothing blocked): %v\n", res4.Contained)

	// --- With SHORT's original PARTIAL log, Theorem 3.5 does not apply ----
	// (order is unlogged); the paper's soundness criterion is then checked
	// operationally: every restricted session's log validates against short.
	fmt.Println("\npartial-log soundness, checked via Theorem 3.1:")
	sessions := []spocus.Sequence{
		{spocus.Step(spocus.F("order", "le-monde")), spocus.Step(spocus.F("pay", "le-monde", "8350"))},
		{spocus.Step(spocus.F("order", "time")), spocus.Step(spocus.F("pay", "time", "855"))},
	}
	plainShort := models.Short()
	plainRestricted := models.Restricted()
	for _, s := range sessions {
		run, err := plainRestricted.Execute(dbBlocked, s)
		if err != nil {
			log.Fatal(err)
		}
		v, err := spocus.LogValidity(plainShort, dbBlocked, run.Logs, nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  restricted log of %v: valid for short = %v\n", s[0], v.Valid)
	}
}
