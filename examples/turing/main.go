// Theorem 4.2 end-to-end: compile a nondeterministic Turing machine into a
// Spocus transducer whose error-free runs simulate it, drive a full
// three-stage simulation (build tape → compute → emit), and show that
// tampering with the encoded computation is caught by the error rules.
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/core"
	"repro/internal/relation"
	"repro/internal/turing"
)

func main() {
	// A nondeterministic machine generating the words "a" and "b": from the
	// start state it writes either letter and halts with its head back on
	// the leftmost cell.
	m := &turing.Machine{
		Symbols: []string{"blank", "a", "b"},
		Blank:   "blank",
		Start:   "q0",
		Halt:    "h",
		Rules: []turing.Rule{
			{State: "q0", Read: "blank", Write: "a", Move: turing.Right, Next: "q1"},
			{State: "q0", Read: "blank", Write: "b", Move: turing.Right, Next: "q1"},
			{State: "q1", Read: "blank", Write: "blank", Move: turing.Left, Next: "h"},
		},
	}
	words, err := m.Language(3, 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print("direct simulation language: ")
	for _, w := range words {
		fmt.Printf("%q ", strings.Join(w, ""))
	}
	fmt.Println()

	tm, err := turing.Compile(m)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled transducer: %d inputs, %d error rules\n",
		len(tm.Schema().In), len(tm.ErrorRules()))

	// Drive each computation through the transducer and read the emitted
	// word off the error-free run.
	if err := m.Enumerate(3, 10, func(comp turing.Computation) bool {
		inputs, err := turing.DriveInputs(m, comp, -1)
		if err != nil {
			log.Fatal(err)
		}
		run, err := tm.Execute(relation.NewInstance(), inputs)
		if err != nil {
			log.Fatal(err)
		}
		word := strings.Join(turing.EmittedWord(m, run.Outputs), "")
		fmt.Printf("computation of %d moves: error-free=%v emitted=%q (%d simulation steps)\n",
			len(comp.Moves), run.Valid(core.ErrorFree), word, run.Len())
		return true
	}); err != nil {
		log.Fatal(err)
	}

	// Tamper with a computation: claim the machine wrote "a" while taking
	// the b-branch move. The error rules notice the forged cell.
	var comp turing.Computation
	if err := m.Enumerate(3, 10, func(c turing.Computation) bool {
		comp = c
		return false
	}); err != nil {
		log.Fatal(err)
	}
	inputs, err := turing.DriveInputs(m, comp, -1)
	if err != nil {
		log.Fatal(err)
	}
	forged := inputs.Clone()
	for _, step := range forged {
		rel := step.Rel(turing.RelTape)
		if rel == nil || !step.Has(turing.RelStage, relation.Tuple{"2"}) {
			continue
		}
		fixed := relation.NewRel(5)
		for _, t := range rel.Tuples() {
			if t[3] == "a" {
				fixed.Add(relation.Tuple{t[0], t[1], t[2], "b", t[4]})
			} else {
				fixed.Add(t)
			}
		}
		step[turing.RelTape] = fixed
	}
	run, err := tm.Execute(relation.NewInstance(), forged)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("forged computation: error-free=%v (error raised at step %d)\n",
		run.Valid(core.ErrorFree), run.ErrorFreePrefix()+1)
}
