// Quickstart: parse the paper's SHORT transducer, replay the Figure 1
// shopping session, and verify the flagship temporal property "no product
// is delivered before it is paid".
package main

import (
	"fmt"
	"log"

	spocus "repro"
)

func main() {
	// SHORT is the paper's first business model: order, get billed, pay,
	// take delivery. ParseProgram validates the Spocus restrictions.
	m, err := spocus.ParseProgram(spocus.ShortSrc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parsed %q (%v machine)\n\n", m.Name(), m.Kind())

	// The Figure 1 database: prices for Time, Newsweek, and Le Monde.
	db := spocus.MagazineDB()

	// A shopping session: order two magazines, pay for one, order a third,
	// then settle the remaining bills.
	inputs := spocus.Sequence{
		spocus.Step(spocus.F("order", "time"), spocus.F("order", "newsweek")),
		spocus.Step(spocus.F("pay", "time", "855"), spocus.F("order", "le-monde")),
		spocus.Step(spocus.F("pay", "newsweek", "845"), spocus.F("pay", "le-monde", "8350")),
	}
	run, err := m.Execute(db, inputs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("run of short (Figure 1):")
	fmt.Print(run.FormatTrace(false, true))

	// Verify, over ALL runs on this database, that delivery implies prior
	// payment (Theorem 3.3). The check is static: no runs are enumerated.
	cond, err := spocus.ParseCondition("deliver(X), price(X,Y) => past-pay(X,Y)")
	if err != nil {
		log.Fatal(err)
	}
	res, err := spocus.CheckTemporal(m, db, []*spocus.Condition{cond}, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntemporal property %q holds on every run: %v\n", cond, res.Holds)

	// And ask whether the business model can deliver at all (Theorem 3.2).
	goal, err := spocus.ParseGoal("deliver(X)")
	if err != nil {
		log.Fatal(err)
	}
	reach, err := spocus.ReachGoal(m, db, goal, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("goal %q reachable: %v (witness inputs: %v)\n", goal, reach.Reachable, reach.Witness)
}
