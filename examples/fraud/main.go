// Fraud detection by log validation (Theorem 3.1): a supplier lets trusted
// customers run its business model locally and audits the partial log they
// send back. A valid log is certified by reconstructing an input sequence
// that generates it; a forged log (delivery without payment, or a bill at
// the wrong price) is rejected — no input sequence can produce it.
package main

import (
	"fmt"
	"log"

	spocus "repro"
)

func main() {
	supplier := spocus.MustParseProgram(spocus.ShortSrc)
	db := spocus.MagazineDB()

	// --- An honest customer session, run at the customer's site. ---------
	session := spocus.Sequence{
		spocus.Step(spocus.F("order", "newsweek")),
		spocus.Step(spocus.F("pay", "newsweek", "845")),
	}
	run, err := supplier.Execute(db, session)
	if err != nil {
		log.Fatal(err)
	}
	honest := run.Logs
	fmt.Println("customer submits log:")
	for i, step := range honest {
		fmt.Printf("  step %d: %s\n", i+1, step)
	}

	// The supplier audits it: note the log is PARTIAL (order is unlogged),
	// so the auditor must reconstruct the hidden order input.
	res, err := spocus.LogValidity(supplier, db, honest, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("audit verdict: valid=%v\n", res.Valid)
	if res.Valid {
		fmt.Println("reconstructed inputs:")
		for i, step := range res.Witness {
			fmt.Printf("  step %d: %s\n", i+1, step)
		}
	}

	// --- A forged log: delivery claimed without any payment. --------------
	forged := spocus.Sequence{
		spocus.Step(spocus.F("sendbill", "time", "855")),
		spocus.Step(spocus.F("deliver", "time")),
	}
	fmt.Println("\nforged log (delivery, no payment):")
	for i, step := range forged {
		fmt.Printf("  step %d: %s\n", i+1, step)
	}
	res2, err := spocus.LogValidity(supplier, db, forged, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("audit verdict: valid=%v  — fraud detected\n", res2.Valid)

	// --- Another forgery: billing Time at Newsweek's price. ---------------
	wrongPrice := spocus.Sequence{
		spocus.Step(spocus.F("sendbill", "time", "845")),
	}
	res3, err := spocus.LogValidity(supplier, db, wrongPrice, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwrong-price bill: valid=%v  — fraud detected\n", res3.Valid)

	// --- Log minimization (Section 2.1): which logged relations are -------
	// redundant? The paper observes deliver is reconstructible.
	minimal, err := spocus.MinimalLog(supplier, db, 2, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nminimal sufficient log (runs up to length 2): %v\n", minimal)
}
