package spocus

// Serving-layer benchmarks, companions to the E1–E17 experiment benches:
// single-session step latency under each durability policy, and aggregate
// throughput across many concurrent sessions. Baselines are committed in
// BENCH_server.json.

import (
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"

	"repro/internal/relation"
	"repro/internal/session"
)

// shopStep is the Figure 1 loop: order an item on even steps, pay for it on
// odd ones, cycling through the magazine catalogue.
func shopStep(i, j int) relation.Instance {
	products := []string{"time", "newsweek", "le-monde"}
	prices := []string{"855", "845", "8350"}
	p := (i + j/2) % len(products)
	in := relation.NewInstance()
	if j%2 == 0 {
		in.Add("order", relation.Tuple{relation.Const(products[p])})
	} else {
		in.Add("pay", relation.Tuple{relation.Const(products[p]), relation.Const(prices[p])})
	}
	return in
}

// BenchmarkSessionStep measures one session's step latency through the
// engine under each durability policy.
func BenchmarkSessionStep(b *testing.B) {
	cases := []struct {
		name    string
		durable bool
		policy  session.FsyncPolicy
	}{
		{"mem", false, session.FsyncNever},
		{"wal-never", true, session.FsyncNever},
		{"wal-always", true, session.FsyncAlways},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			cfg := session.Config{Shards: 1, Fsync: c.policy}
			if c.durable {
				cfg.Dir = b.TempDir()
			}
			e, err := session.NewEngine(cfg)
			if err != nil {
				b.Fatal(err)
			}
			defer e.Shutdown()
			if _, err := e.Open(&session.OpenRequest{ID: "bench", Model: "short"}); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.Input("bench", shopStep(0, i)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSessionThroughput measures aggregate steps/sec across many
// concurrent sessions (in-memory engine, default shards).
func BenchmarkSessionThroughput(b *testing.B) {
	const nSessions = 256
	e, err := session.NewEngine(session.Config{})
	if err != nil {
		b.Fatal(err)
	}
	defer e.Shutdown()
	ids := make([]string, nSessions)
	for i := range ids {
		ids[i] = fmt.Sprintf("s-%03d", i)
		if _, err := e.Open(&session.OpenRequest{ID: ids[i], Model: "short"}); err != nil {
			b.Fatal(err)
		}
	}
	var next atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			n := next.Add(1)
			i := int(n) % nSessions
			if _, err := e.Input(ids[i], shopStep(i, int(n)/nSessions)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.StopTimer()
	if e.Stats().StepsTotal < int64(b.N) {
		b.Fatalf("stats lost steps: %d < %d", e.Stats().StepsTotal, b.N)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "steps/s")
}

// BenchmarkSessionRecovery measures startup replay: time to rebuild an
// engine from a WAL holding many sessions' worth of steps (the crash-
// recovery path, with no snapshot to shortcut it).
func BenchmarkSessionRecovery(b *testing.B) {
	dir := b.TempDir()
	e, err := session.NewEngine(session.Config{Dir: dir, Shards: 1, Fsync: session.FsyncNever, SnapshotEvery: -1})
	if err != nil {
		b.Fatal(err)
	}
	const nSessions, nSteps = 32, 16
	for i := 0; i < nSessions; i++ {
		id := fmt.Sprintf("r-%03d", i)
		if _, err := e.Open(&session.OpenRequest{ID: id, Model: "short"}); err != nil {
			b.Fatal(err)
		}
		for j := 0; j < nSteps; j++ {
			if _, err := e.Input(id, shopStep(i, j)); err != nil {
				b.Fatal(err)
			}
		}
	}
	// Capture the pure-WAL fixture before Shutdown compacts it into a
	// snapshot, then restore it for every iteration: each NewEngine below
	// replays the full (nSessions × nSteps)-record WAL, as after kill -9.
	walPath := filepath.Join(dir, "shard-000.wal")
	walBytes, err := os.ReadFile(walPath)
	if err != nil {
		b.Fatal(err)
	}
	if err := e.Shutdown(); err != nil {
		b.Fatal(err)
	}
	restore := func() {
		os.Remove(filepath.Join(dir, "shard-000.snap"))
		if err := os.WriteFile(walPath, walBytes, 0o644); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		restore()
		b.StartTimer()
		e2, err := session.NewEngine(session.Config{Dir: dir, Shards: 1, SnapshotEvery: -1})
		if err != nil {
			b.Fatal(err)
		}
		if open := e2.Stats().SessionsOpen; open != nSessions {
			b.Fatalf("recovered %d sessions, want %d", open, nSessions)
		}
		b.StopTimer()
		e2.Shutdown()
		b.StartTimer()
	}
}
