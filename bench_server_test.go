package spocus

// Serving-layer benchmarks, companions to the E1–E17 experiment benches:
// single-session step latency under each durability policy, and aggregate
// throughput across many concurrent sessions. Baselines are committed in
// BENCH_server.json.

import (
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/relation"
	"repro/internal/session"
)

// shopStep is the Figure 1 loop: order an item on even steps, pay for it on
// odd ones, cycling through the magazine catalogue.
func shopStep(i, j int) relation.Instance {
	products := []string{"time", "newsweek", "le-monde"}
	prices := []string{"855", "845", "8350"}
	p := (i + j/2) % len(products)
	in := relation.NewInstance()
	if j%2 == 0 {
		in.Add("order", relation.Tuple{relation.Const(products[p])})
	} else {
		in.Add("pay", relation.Tuple{relation.Const(products[p]), relation.Const(prices[p])})
	}
	return in
}

// BenchmarkSessionStep measures one session's step latency through the
// engine under each durability policy. The mem-tree case runs the same
// in-memory workload on the tree-walking evaluator instead of the compiled
// RA engine, so mem vs mem-tree is the step-engine speedup.
func BenchmarkSessionStep(b *testing.B) {
	cases := []struct {
		name    string
		durable bool
		policy  session.FsyncPolicy
		engine  core.StepEngine
	}{
		{"mem", false, session.FsyncNever, core.EngineRA},
		{"mem-tree", false, session.FsyncNever, core.EngineTree},
		{"wal-never", true, session.FsyncNever, core.EngineRA},
		{"wal-always", true, session.FsyncAlways, core.EngineRA},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			prev := core.SetStepEngine(c.engine)
			defer core.SetStepEngine(prev)
			cfg := session.Config{Shards: 1, Fsync: c.policy}
			if c.durable {
				cfg.Dir = b.TempDir()
			}
			e, err := session.NewEngine(cfg)
			if err != nil {
				b.Fatal(err)
			}
			defer e.Shutdown()
			if _, err := e.Open(&session.OpenRequest{ID: "bench", Model: "short"}); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.Input("bench", shopStep(0, i)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSessionThroughput measures aggregate steps/sec across many
// concurrent sessions (in-memory engine, default shards).
func BenchmarkSessionThroughput(b *testing.B) {
	const nSessions = 256
	e, err := session.NewEngine(session.Config{})
	if err != nil {
		b.Fatal(err)
	}
	defer e.Shutdown()
	ids := make([]string, nSessions)
	for i := range ids {
		ids[i] = fmt.Sprintf("s-%03d", i)
		if _, err := e.Open(&session.OpenRequest{ID: ids[i], Model: "short"}); err != nil {
			b.Fatal(err)
		}
	}
	var next atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			n := next.Add(1)
			i := int(n) % nSessions
			if _, err := e.Input(ids[i], shopStep(i, int(n)/nSessions)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.StopTimer()
	if e.Stats().StepsTotal < int64(b.N) {
		b.Fatalf("stats lost steps: %d < %d", e.Stats().StepsTotal, b.N)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "steps/s")
}

// BenchmarkSessionRecovery measures startup replay: time to rebuild an
// engine from a WAL holding many sessions' worth of steps (the crash-
// recovery path, with no snapshot to shortcut it).
func BenchmarkSessionRecovery(b *testing.B) {
	dir := b.TempDir()
	e, err := session.NewEngine(session.Config{Dir: dir, Shards: 1, Fsync: session.FsyncNever, SnapshotEvery: -1})
	if err != nil {
		b.Fatal(err)
	}
	const nSessions, nSteps = 32, 16
	for i := 0; i < nSessions; i++ {
		id := fmt.Sprintf("r-%03d", i)
		if _, err := e.Open(&session.OpenRequest{ID: id, Model: "short"}); err != nil {
			b.Fatal(err)
		}
		for j := 0; j < nSteps; j++ {
			if _, err := e.Input(id, shopStep(i, j)); err != nil {
				b.Fatal(err)
			}
		}
	}
	// Capture the pure-WAL fixture (the whole shard directory: manifest +
	// segments) before Shutdown compacts it into a snapshot, then restore
	// it for every iteration: each NewEngine below replays the full
	// (nSessions × nSteps)-record WAL, as after kill -9.
	shardDir := filepath.Join(dir, "shard-000")
	fixture := map[string][]byte{}
	entries, err := os.ReadDir(shardDir)
	if err != nil {
		b.Fatal(err)
	}
	for _, ent := range entries {
		data, err := os.ReadFile(filepath.Join(shardDir, ent.Name()))
		if err != nil {
			b.Fatal(err)
		}
		fixture[ent.Name()] = data
	}
	if err := e.Shutdown(); err != nil {
		b.Fatal(err)
	}
	restore := func() {
		if err := os.RemoveAll(shardDir); err != nil {
			b.Fatal(err)
		}
		if err := os.MkdirAll(shardDir, 0o755); err != nil {
			b.Fatal(err)
		}
		for name, data := range fixture {
			if err := os.WriteFile(filepath.Join(shardDir, name), data, 0o644); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		restore()
		b.StartTimer()
		e2, err := session.NewEngine(session.Config{Dir: dir, Shards: 1, SnapshotEvery: -1})
		if err != nil {
			b.Fatal(err)
		}
		if open := e2.Stats().SessionsOpen; open != nSessions {
			b.Fatalf("recovered %d sessions, want %d", open, nSessions)
		}
		b.StopTimer()
		e2.Shutdown()
		b.StartTimer()
	}
}

// BenchmarkSessionGroupCommit measures concurrent stepping under
// `-fsync always` with and without group commit on one shard: batch=1
// gives every step its own fsync (the pre-group-commit engine), while the
// default batch lets queued steps share one. The syncs/op metric shows
// the mechanism directly.
func BenchmarkSessionGroupCommit(b *testing.B) {
	cases := []struct {
		name   string
		batch  int
		window int // microseconds
	}{
		{"batch1", 1, 0},
		{"group", 0, 0}, // default batch (256), opportunistic drain only
		{"group-window", 0, 200},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			const nSessions = 64
			e, err := session.NewEngine(session.Config{
				Dir:               b.TempDir(),
				Shards:            1,
				Fsync:             session.FsyncAlways,
				GroupCommitBatch:  c.batch,
				GroupCommitWindow: time.Duration(c.window) * time.Microsecond,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer e.Shutdown()
			ids := make([]string, nSessions)
			for i := range ids {
				ids[i] = fmt.Sprintf("g-%03d", i)
				if _, err := e.Open(&session.OpenRequest{ID: ids[i], Model: "short"}); err != nil {
					b.Fatal(err)
				}
			}
			var next atomic.Int64
			b.SetParallelism(32) // force steps to queue on the one shard
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					n := next.Add(1)
					i := int(n) % nSessions
					if _, err := e.Input(ids[i], shopStep(i, int(n)/nSessions)); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.StopTimer()
			st := e.Stats()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "steps/s")
			if b.N > 0 {
				b.ReportMetric(float64(st.WALSyncs)/float64(b.N), "syncs/op")
				b.ReportMetric(float64(st.WALBytesTotal)/float64(b.N), "walB/op")
			}
		})
	}
}

// TestGroupCommitCodecDensity drives the group-commit workload under both
// WAL codecs and asserts the binary encoding's headline win: at least 2x
// fewer WAL bytes per step than JSON. The shard encoder's intern table is
// segment-scoped, so batched steps share constants — exactly the group
// commit path this guards.
func TestGroupCommitCodecDensity(t *testing.T) {
	const nSessions, nSteps = 16, 20
	bytesPerStep := func(codec session.Codec) float64 {
		e, err := session.NewEngine(session.Config{
			Dir:    t.TempDir(),
			Shards: 1,
			Fsync:  session.FsyncNever, // density, not sync cost
			Codec:  codec,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer e.Shutdown()
		for i := 0; i < nSessions; i++ {
			id := fmt.Sprintf("d-%03d", i)
			if _, err := e.Open(&session.OpenRequest{ID: id, Model: "short"}); err != nil {
				t.Fatal(err)
			}
			for j := 0; j < nSteps; j++ {
				if _, err := e.Input(id, shopStep(i, j)); err != nil {
					t.Fatal(err)
				}
			}
		}
		return float64(e.Stats().WALBytesTotal) / float64(nSessions*nSteps)
	}
	jsonB := bytesPerStep(session.CodecJSON)
	binB := bytesPerStep(session.CodecBinary)
	t.Logf("wal bytes/step: json=%.1f binary=%.1f (%.2fx)", jsonB, binB, jsonB/binB)
	if binB*2 > jsonB {
		t.Errorf("binary codec too fat: %.1f B/step vs %.1f B/step JSON (want >= 2x denser)", binB, jsonB)
	}
}
