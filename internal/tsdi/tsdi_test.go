package tsdi

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/models"
	"repro/internal/relation"
)

// The paper's three example sentences from Section 4.1 (over a schema with
// order, pay, cancel inputs).
const (
	exPayOrCancel = "past-order(X), price(X,Y), NOT past-pay(X,Y) => pay(X,Y), cancel(X)"
	exPayNeedsOrd = "pay(X,Y) => price(X,Y)"
	exPayNeedsOr2 = "pay(X,Y) => past-order(X)"
	exCancelOrd   = "cancel(X) => past-order(X)"
)

// cancelShort is SHORT extended with a cancel input so all three example
// sentences type-check.
const cancelShortSrc = `
transducer cancelshort
schema
  database: price/2, available/1;
  input: order/1, pay/2, cancel/1;
  state: past-order/1, past-pay/2, past-cancel/1;
  output: sendbill/2, deliver/1;
  log: sendbill, pay, deliver;
state rules
  past-order(X) +:- order(X);
  past-pay(X,Y) +:- pay(X,Y);
  past-cancel(X) +:- cancel(X);
output rules
  sendbill(X,Y) :- order(X), price(X,Y), NOT past-pay(X,Y);
  deliver(X) :- past-order(X), price(X,Y), pay(X,Y), NOT past-pay(X,Y), NOT past-cancel(X);
`

func cancelShort() *core.Machine { return core.MustParseProgram(cancelShortSrc) }

func TestParseClause(t *testing.T) {
	c, err := ParseClause(exPayOrCancel)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.If) != 3 || len(c.Then) != 2 {
		t.Fatalf("clause shape wrong: %v", c)
	}
	if c.Then[0].Pred != "pay" || c.Then[1].Pred != "cancel" {
		t.Errorf("Then atoms wrong: %v", c.Then)
	}
}

func TestParseClauseErrors(t *testing.T) {
	if _, err := ParseClause("no arrow here"); err == nil {
		t.Error("missing => accepted")
	}
	if _, err := ParseClause("a(X) => NOT b(X)"); err == nil {
		t.Error("negative Then literal accepted")
	}
}

func TestValidate(t *testing.T) {
	m := cancelShort()
	s := MustParse(exPayOrCancel, exPayNeedsOrd, exCancelOrd)
	if err := s.Validate(m.Schema()); err != nil {
		t.Errorf("paper sentences rejected: %v", err)
	}
	// Output relations are not allowed in T_sdi.
	bad := MustParse("deliver(X) => past-pay(X,X)")
	if err := bad.Validate(m.Schema()); err == nil {
		t.Error("output relation accepted in T_sdi")
	}
	// Unbound variable on the Then side.
	bad2 := MustParse("order(X) => pay(X,Y)")
	if err := bad2.Validate(m.Schema()); err == nil {
		t.Error("variable not bound by positive If literal accepted")
	}
}

func TestCompileShape(t *testing.T) {
	s := MustParse(exPayOrCancel)
	p := s.Compile()
	if len(p) != 1 {
		t.Fatalf("rule count %d", len(p))
	}
	r := p[0]
	if r.Head.Pred != core.ErrorRel || len(r.Body) != 5 {
		t.Errorf("compiled rule wrong: %v", r)
	}
}

// TestTheorem41Enforcement is the core claim: the error-free runs of the
// enforcing machine are exactly the input sequences satisfying the
// sentence. Random input sequences cross-check both directions.
func TestTheorem41Enforcement(t *testing.T) {
	m := cancelShort()
	s := MustParse(exPayNeedsOrd, exPayNeedsOr2, exCancelOrd)
	enforcer, err := Enforce(m, s)
	if err != nil {
		t.Fatal(err)
	}
	if enforcer.Kind() != core.KindSpocus {
		t.Fatalf("enforcer kind %v", enforcer.Kind())
	}
	db := models.MagazineDB()
	mags := []string{"time", "newsweek", "le-monde"}
	prices := []string{"855", "845", "8350"}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var seq relation.Sequence
		for i := 0; i < 1+r.Intn(4); i++ {
			in := relation.NewInstance()
			for k := 0; k < r.Intn(3); k++ {
				switch r.Intn(3) {
				case 0:
					in.Add("order", relation.Tuple{relation.Const(mags[r.Intn(3)])})
				case 1:
					in.Add("pay", relation.Tuple{relation.Const(mags[r.Intn(3)]), relation.Const(prices[r.Intn(3)])})
				default:
					in.Add("cancel", relation.Tuple{relation.Const(mags[r.Intn(3)])})
				}
			}
			seq = append(seq, in)
		}
		run, err := enforcer.Execute(db, seq)
		if err != nil {
			return false
		}
		satisfies, err := s.SatisfiedBy(m, &core.Run{DB: db, Inputs: seq})
		if err != nil {
			return false
		}
		return run.Valid(core.ErrorFree) == satisfies
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestEnforceConcreteSessions(t *testing.T) {
	m := cancelShort()
	s := MustParse(exPayNeedsOr2, exCancelOrd)
	enforcer, err := Enforce(m, s)
	if err != nil {
		t.Fatal(err)
	}
	db := models.MagazineDB()
	good := relation.Sequence{
		models.Step(models.F("order", "time")),
		models.Step(models.F("pay", "time", "855")),
	}
	run, err := enforcer.Execute(db, good)
	if err != nil {
		t.Fatal(err)
	}
	if !run.Valid(core.ErrorFree) {
		t.Error("legal session raised error")
	}
	bad := relation.Sequence{
		models.Step(models.F("pay", "time", "855")),
	}
	run2, err := enforcer.Execute(db, bad)
	if err != nil {
		t.Fatal(err)
	}
	if run2.Valid(core.ErrorFree) {
		t.Error("pay before order accepted")
	}
	bad2 := relation.Sequence{
		models.Step(models.F("cancel", "time")),
	}
	run3, err := enforcer.Execute(db, bad2)
	if err != nil {
		t.Fatal(err)
	}
	if run3.Valid(core.ErrorFree) {
		t.Error("cancel before order accepted")
	}
}

func TestHoldsAtPreStateSemantics(t *testing.T) {
	// T_sdi is evaluated against the PRE-state: ordering and paying in the
	// same step violates "pay(X,Y) => past-order(X)".
	s := MustParse(exPayNeedsOr2)
	input := models.Step(models.F("order", "time"), models.F("pay", "time", "855"))
	state := relation.NewInstance()
	state.Ensure("past-order", 1)
	state.Ensure("past-pay", 2)
	ok, err := s.HoldsAt(input, state, models.MagazineDB())
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("same-step order+pay should violate the pre-state sentence")
	}
}

func TestSentenceStringRoundTrip(t *testing.T) {
	s := MustParse(exPayOrCancel, exCancelOrd)
	if len(s.Clauses) != 2 {
		t.Fatal("clause count")
	}
	s2 := MustParse(s.Clauses[0].String(), s.Clauses[1].String())
	if s.String() != s2.String() {
		t.Errorf("round trip changed sentence: %q vs %q", s, s2)
	}
}
