// Package tsdi implements the temporal sentence class T_sdi of Section 4.1
// and its compilation into Spocus error rules (Theorem 4.1).
//
// A T_sdi sentence is a conjunction of clauses
//
//	∀x̄ [ φ(state, db, in)(x̄) → ψ(state, db, in)(x̄) ]
//
// where φ is a conjunction of literals with every variable occurring in a
// positive literal and ψ is a positive quantifier-free formula. As in the
// proof of Theorem 4.1, ψ is kept in conjunctive normal form, so a sentence
// is a list of clauses "If → Then" with Then a disjunction of positive
// atoms. A run satisfies the sentence iff every transition's current state,
// database, and input satisfy it.
//
// Theorem 4.1 states that for every T_sdi sentence there is a Spocus
// transducer whose error-free runs have exactly the input sequences
// satisfying the sentence; Compile produces those error rules and Enforce
// grafts them onto an existing machine.
package tsdi

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/dlog"
	"repro/internal/relation"
)

// Clause is one conjunct ∀x̄ (⋀If → ⋁Then) of a T_sdi sentence.
type Clause struct {
	// If is a conjunction of literals over state, database, and input
	// relations; every variable of the clause must occur in a positive If
	// literal.
	If []dlog.Literal
	// Then is a disjunction of positive atoms over state, database, and
	// input relations. An empty Then denotes falsity (the clause forbids
	// every If match).
	Then []dlog.Atom
}

// Sentence is a conjunction of clauses.
type Sentence struct {
	Clauses []Clause
}

// ParseClause parses "lit, lit => atom, atom" where the right side is a
// disjunction of positive atoms (possibly empty).
func ParseClause(src string) (Clause, error) {
	parts := strings.SplitN(src, "=>", 2)
	if len(parts) != 2 {
		return Clause{}, fmt.Errorf("tsdi: clause %q must contain '=>'", src)
	}
	var c Clause
	if strings.TrimSpace(parts[0]) != "" {
		r, err := dlog.ParseRule("x :- " + parts[0])
		if err != nil {
			return Clause{}, err
		}
		c.If = r.Body
	}
	if strings.TrimSpace(parts[1]) != "" {
		r, err := dlog.ParseRule("x :- " + parts[1])
		if err != nil {
			return Clause{}, err
		}
		for _, l := range r.Body {
			if l.Kind != dlog.LitPos {
				return Clause{}, fmt.Errorf("tsdi: Then side of %q must contain only positive atoms", src)
			}
			c.Then = append(c.Then, l.Atom)
		}
	}
	return c, nil
}

// Parse parses a sentence given as clause strings.
func Parse(clauses ...string) (*Sentence, error) {
	s := &Sentence{}
	for _, src := range clauses {
		c, err := ParseClause(src)
		if err != nil {
			return nil, err
		}
		s.Clauses = append(s.Clauses, c)
	}
	return s, nil
}

// MustParse parses a sentence and panics on error; for static sentences in
// examples and tests.
func MustParse(clauses ...string) *Sentence {
	s, err := Parse(clauses...)
	if err != nil {
		panic(fmt.Sprintf("tsdi: %v", err))
	}
	return s
}

func (c Clause) String() string {
	lhs := make([]string, len(c.If))
	for i, l := range c.If {
		lhs[i] = l.String()
	}
	rhs := make([]string, len(c.Then))
	for i, a := range c.Then {
		rhs[i] = a.String()
	}
	return strings.Join(lhs, ", ") + " => " + strings.Join(rhs, ", ")
}

func (s *Sentence) String() string {
	parts := make([]string, len(s.Clauses))
	for i, c := range s.Clauses {
		parts[i] = c.String()
	}
	return strings.Join(parts, " ; ")
}

// Vars returns the variables of the clause in order of first occurrence.
func (c Clause) Vars() []string {
	seen := map[string]bool{}
	var out []string
	add := func(vs []string) {
		for _, v := range vs {
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	for _, l := range c.If {
		add(l.Vars())
	}
	for _, a := range c.Then {
		add(a.Vars())
	}
	return out
}

// Validate checks the clause against a transducer schema: literals range
// over state, database, and input relations with correct arities, and every
// variable occurs in a positive If literal.
func (c Clause) Validate(s *core.Schema) error {
	check := func(a dlog.Atom) error {
		if !s.In.Has(a.Pred) && !s.State.Has(a.Pred) && !s.DB.Has(a.Pred) {
			return fmt.Errorf("tsdi: %s is not a state, database, or input relation", a.Pred)
		}
		if ar, _ := s.Arity(a.Pred); ar != len(a.Args) {
			return fmt.Errorf("tsdi: %s used with arity %d, schema says %d", a.Pred, len(a.Args), ar)
		}
		return nil
	}
	pos := map[string]bool{}
	for _, l := range c.If {
		switch l.Kind {
		case dlog.LitPos:
			if err := check(l.Atom); err != nil {
				return err
			}
			for _, v := range l.Atom.Vars() {
				pos[v] = true
			}
		case dlog.LitNeg:
			if err := check(l.Atom); err != nil {
				return err
			}
		}
	}
	for _, a := range c.Then {
		if err := check(a); err != nil {
			return err
		}
	}
	for _, v := range c.Vars() {
		if !pos[v] {
			return fmt.Errorf("tsdi: clause %q: variable %s does not occur in a positive If literal", c, v)
		}
	}
	return nil
}

// Validate validates every clause.
func (s *Sentence) Validate(schema *core.Schema) error {
	for _, c := range s.Clauses {
		if err := c.Validate(schema); err != nil {
			return err
		}
	}
	return nil
}

// Compile produces the Spocus error rules of Theorem 4.1: for each clause
// ∀x̄ (φ → L₁ ∨ … ∨ Lₘ) the rule
//
//	error :- φ, NOT L₁, …, NOT Lₘ.
//
// fires exactly at transitions violating the clause.
func (s *Sentence) Compile() dlog.Program {
	var p dlog.Program
	for _, c := range s.Clauses {
		body := append([]dlog.Literal{}, c.If...)
		for _, a := range c.Then {
			body = append(body, dlog.Neg(a))
		}
		p = append(p, dlog.Rule{Head: dlog.NewAtom(core.ErrorRel), Body: body})
	}
	return p
}

// Enforce returns a new Spocus machine equal to m plus the sentence's error
// rules (declaring the error output relation if absent), so that m's
// error-free runs accept exactly the input sequences satisfying the
// sentence in conjunction with m's own error rules.
func Enforce(m *core.Machine, s *Sentence) (*core.Machine, error) {
	if err := s.Validate(m.Schema()); err != nil {
		return nil, err
	}
	schema := m.Schema().Clone()
	if !schema.Out.Has(core.ErrorRel) {
		schema.Out = append(schema.Out, relation.Decl{Name: core.ErrorRel, Arity: 0})
	}
	schema.State = nil // regenerated by NewSpocus
	rules := append(append(dlog.Program{}, m.OutputRules()...), s.Compile()...)
	nm, err := core.NewSpocus(schema, rules)
	if err != nil {
		return nil, err
	}
	name := m.Name()
	if name == "" {
		name = "anonymous"
	}
	return nm.SetName(name + "+tsdi"), nil
}

// HoldsAt evaluates the sentence at one transition: state is the cumulated
// past input (the Sᵢ₋₁ of the run semantics), input the current input.
func (s *Sentence) HoldsAt(input, state, db relation.Instance) (bool, error) {
	view := dlog.MultiDB{input, state, db}
	for _, c := range s.Clauses {
		body := append([]dlog.Literal{}, c.If...)
		for _, a := range c.Then {
			body = append(body, dlog.Neg(a))
		}
		violated := false
		if err := dlog.EvalRuleBindings(body, view, func(dlog.Binding) bool {
			violated = true
			return false
		}); err != nil {
			return false, err
		}
		if violated {
			return false, nil
		}
	}
	return true, nil
}

// SatisfiedBy reports whether every transition of the run satisfies the
// sentence, using the run's recorded inputs and the Spocus state semantics.
func (s *Sentence) SatisfiedBy(m *core.Machine, run *core.Run) (bool, error) {
	state := relation.NewInstance()
	for _, d := range m.Schema().In {
		state.Ensure(core.Past(d.Name), d.Arity)
	}
	for i := range run.Inputs {
		ok, err := s.HoldsAt(run.Inputs[i], state, run.DB)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
		for _, d := range m.Schema().In {
			if r := run.Inputs[i].Rel(d.Name); r != nil {
				state.Ensure(core.Past(d.Name), d.Arity).UnionWith(r)
			}
		}
	}
	return true, nil
}
