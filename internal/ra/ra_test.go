package ra

import (
	"strings"
	"testing"

	"repro/internal/dlog"
	"repro/internal/relation"
)

func inst(add func(relation.Instance)) dlog.MultiDB {
	in := relation.NewInstance()
	add(in)
	return dlog.MultiDB{in}
}

func TestEvalTransitiveClosure(t *testing.T) {
	prog := dlog.MustParseProgram(`
		reach(X, Y) :- edge(X, Y);
		reach(X, Z) :- reach(X, Y), edge(Y, Z);
	`)
	plan, err := Compile(prog, nil)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	edb := inst(func(in relation.Instance) {
		in.Add("edge", relation.Tuple{"a", "b"})
		in.Add("edge", relation.Tuple{"b", "c"})
		in.Add("edge", relation.Tuple{"c", "d"})
	})
	out, err := plan.Eval(edb)
	if err != nil {
		t.Fatalf("eval: %v", err)
	}
	reach := out.Rel("reach")
	if reach.Len() != 6 {
		t.Fatalf("want 6 reach facts, got %d: %v", reach.Len(), out)
	}
	if !reach.Has(relation.Tuple{"a", "d"}) {
		t.Fatalf("missing reach(a, d): %v", out)
	}
}

func TestEvalArityMismatchYieldsNothing(t *testing.T) {
	// The tree engine skips tuples whose arity disagrees with the atom;
	// scans over a mismatched relation produce no bindings and negated
	// probes of one pass vacuously.
	prog := dlog.MustParseProgram(`
		p(X) :- q(X), NOT r(X);
	`)
	plan, err := Compile(prog, nil)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	edb := inst(func(in relation.Instance) {
		in.Add("q", relation.Tuple{"a"})
		in.Add("r", relation.Tuple{"a", "b"}) // arity 2: the NOT r(X) probe misses
	})
	out, err := plan.Eval(edb)
	if err != nil {
		t.Fatalf("eval: %v", err)
	}
	if !out.Rel("p").Has(relation.Tuple{"a"}) {
		t.Fatalf("want p(a) (negation over mismatched arity passes), got %v", out)
	}
}

func TestCompileRejectsUnsafeRule(t *testing.T) {
	for _, src := range []string{
		`p(X) :- NOT q(X);`,       // negation variable never bound
		`p(X) :- q(Y);`,           // head variable never bound
		`p :- q(X), X <> Z;`,      // inequality variable never bound
		`p(X) :- q(X), NOT p(X);`, // negation cycle: not stratifiable
	} {
		if _, err := Compile(dlog.MustParseProgram(src), nil); err == nil {
			t.Errorf("Compile(%q) succeeded, want error", src)
		}
	}
}

func TestCompileRejectsHeadArityConflict(t *testing.T) {
	prog := dlog.Program{
		{Head: dlog.Atom{Pred: "p", Args: []dlog.Term{{Name: "a"}}}},
		{Head: dlog.Atom{Pred: "p", Args: []dlog.Term{{Name: "a"}, {Name: "b"}}}},
	}
	if _, err := Compile(prog, nil); err == nil {
		t.Fatal("want head-arity conflict error")
	}
}

func TestGroundNegationBeforePositive(t *testing.T) {
	// Author order leads with an ungrounded negation; the planner must
	// defer it behind the positive literal that binds X.
	prog := dlog.MustParseProgram(`p(X) :- NOT r(X), q(X);`)
	plan, err := Compile(prog, nil)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	edb := inst(func(in relation.Instance) {
		in.Add("q", relation.Tuple{"a"})
		in.Add("q", relation.Tuple{"b"})
		in.Add("r", relation.Tuple{"b"})
	})
	out, err := plan.Eval(edb)
	if err != nil {
		t.Fatalf("eval: %v", err)
	}
	p := out.Rel("p")
	if p.Len() != 1 || !p.Has(relation.Tuple{"a"}) {
		t.Fatalf("want p(a) only, got %v", out)
	}
}

func TestPlanUsesIndexForBoundFirstArg(t *testing.T) {
	prog := dlog.MustParseProgram(`j(X, Z) :- a(X, Y), b(Y, Z);`)
	plan, err := Compile(prog, nil)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	// After scanning a, Y is bound: the b scan must be index-backed.
	if got := plan.Explain(); !strings.Contains(got, "scan b(") || !strings.Contains(got, "[index:first]") {
		t.Fatalf("want index-backed scan of b in plan:\n%s", got)
	}
}

func TestInternerSharedAcrossPlans(t *testing.T) {
	in := NewInterner()
	p1, err := Compile(dlog.MustParseProgram(`p(X) :- q(X, time);`), in)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Compile(dlog.MustParseProgram(`r(X) :- s(X, time);`), in)
	if err != nil {
		t.Fatal(err)
	}
	if p1.Interner() != p2.Interner() {
		t.Fatal("plans do not share the interner")
	}
	id1 := in.ID("time")
	if in.Sym(id1) != "time" {
		t.Fatalf("round trip: Sym(ID(time)) = %q", in.Sym(id1))
	}
	if n := in.Len(); n != 1 {
		t.Fatalf("want 1 interned constant (time shared by both plans), got %d", n)
	}
}

func TestEqualityChainBinding(t *testing.T) {
	prog := dlog.MustParseProgram(`p(X, Y) :- X = a, Y = X, NOT q(X, Y);`)
	plan, err := Compile(prog, nil)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	out, err := plan.Eval(inst(func(in relation.Instance) {}))
	if err != nil {
		t.Fatalf("eval: %v", err)
	}
	if !out.Rel("p").Has(relation.Tuple{"a", "a"}) {
		t.Fatalf("want p(a, a) via equality chain, got %v", out)
	}
}
