package ra_test

// The differential correctness suite: the compiled plan engine must be
// observationally equivalent to the tree-walking dlog evaluator — tuple for
// tuple — on every registry model, on randomly generated stratified
// programs, and on fuzzed program sources. The tree engine is the oracle;
// any disagreement is a bug in the planner or executor.

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/dlog"
	"repro/internal/models"
	"repro/internal/ra"
	"repro/internal/relation"
)

// runUnder executes the machine's full run under the given engine,
// restoring the process-wide setting afterwards.
func runUnder(t *testing.T, engine core.StepEngine, name string, db relation.Instance, inputs relation.Sequence) (*core.Run, error) {
	t.Helper()
	prev := core.SetStepEngine(engine)
	defer core.SetStepEngine(prev)
	m := models.Get(name)
	if m == nil {
		t.Fatalf("unknown model %q", name)
	}
	return m.Execute(db, inputs)
}

// constPool gathers the constants a model's runs can mention: rule
// constants, database constants, and a few fresh ones (so joins also see
// values outside every relation).
func constPool(m *core.Machine, db relation.Instance) []relation.Const {
	seen := map[relation.Const]bool{}
	var pool []relation.Const
	add := func(c relation.Const) {
		if !seen[c] {
			seen[c] = true
			pool = append(pool, c)
		}
	}
	for _, c := range m.Constants() {
		add(c)
	}
	for _, rel := range db {
		rel.Range(func(t relation.Tuple) bool {
			for _, c := range t {
				add(c)
			}
			return true
		})
	}
	add("diff-x")
	add("diff-y")
	return pool
}

// randInputs builds a pseudo-random input sequence over the machine's input
// schema from the constant pool.
func randInputs(rng *rand.Rand, m *core.Machine, pool []relation.Const, steps int) relation.Sequence {
	var seq relation.Sequence
	for s := 0; s < steps; s++ {
		in := relation.NewInstance()
		for _, d := range m.Schema().In {
			n := rng.Intn(3) // 0..2 tuples per input relation per step
			for i := 0; i < n; i++ {
				t := make(relation.Tuple, d.Arity)
				for j := range t {
					t[j] = pool[rng.Intn(len(pool))]
				}
				in.Add(d.Name, t)
			}
		}
		seq = append(seq, in)
	}
	return seq
}

// TestDifferentialRegistryModels runs every registry model under both
// engines on randomized sessions and requires identical outputs, states,
// and logs at every step.
func TestDifferentialRegistryModels(t *testing.T) {
	for _, name := range models.Names() {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(len(name)) * 7919))
			db := models.DefaultDB(name)
			if db == nil {
				db = relation.NewInstance()
			}
			m := models.Get(name)
			pool := constPool(m, db)
			for trial := 0; trial < 5; trial++ {
				inputs := randInputs(rng, m, pool, 6)
				treeRun, treeErr := runUnder(t, core.EngineTree, name, db, inputs)
				raRun, raErr := runUnder(t, core.EngineRA, name, db, inputs)
				if (treeErr == nil) != (raErr == nil) {
					t.Fatalf("trial %d: engines disagree on error: tree=%v ra=%v", trial, treeErr, raErr)
				}
				if treeErr != nil {
					continue
				}
				if !treeRun.Outputs.Equal(raRun.Outputs) {
					t.Fatalf("trial %d: outputs differ\ninputs: %v\ntree: %v\nra:   %v", trial, inputs, treeRun.Outputs, raRun.Outputs)
				}
				if !treeRun.States.Equal(raRun.States) {
					t.Fatalf("trial %d: states differ\ninputs: %v\ntree: %v\nra:   %v", trial, inputs, treeRun.States, raRun.States)
				}
				if !treeRun.Logs.Equal(raRun.Logs) {
					t.Fatalf("trial %d: logs differ\ninputs: %v", trial, inputs)
				}
			}
		})
	}
}

// TestDifferentialShortPaperSession pins the paper's Figure 1/2 session on
// the SHORT model: order Time, pay the right price, expect delivery — the
// same trace under both engines.
func TestDifferentialShortPaperSession(t *testing.T) {
	db := models.DefaultDB("short")
	if db == nil {
		t.Fatal("no default db for short")
	}
	step1 := relation.NewInstance()
	step1.Add("order", relation.Tuple{"time"})
	step2 := relation.NewInstance()
	step2.Add("pay", relation.Tuple{"time", "855"})
	inputs := relation.Sequence{step1, step2}

	treeRun, err := runUnder(t, core.EngineTree, "short", db, inputs)
	if err != nil {
		t.Fatalf("tree: %v", err)
	}
	raRun, err := runUnder(t, core.EngineRA, "short", db, inputs)
	if err != nil {
		t.Fatalf("ra: %v", err)
	}
	if !treeRun.Outputs.Equal(raRun.Outputs) || !treeRun.States.Equal(raRun.States) {
		t.Fatalf("paper session differs\ntree: %v\nra:   %v", treeRun.Outputs, raRun.Outputs)
	}
}

// genProgram builds a random safe stratified program: derived predicates
// p0..p2 with fixed arities, EDB predicates e0..e2, negative references
// only to strictly lower derived predicates or the EDB, head and negation
// variables bound by positive literals by construction. Positive
// self-references are allowed, so recursive strata are generated too.
func genProgram(rng *rand.Rand) dlog.Program {
	derived := []string{"p0", "p1", "p2"}
	dArity := []int{1, 2, 1}
	edb := []string{"e0", "e1", "e2"}
	eArity := []int{1, 2, 3}
	consts := []string{"a", "b", "c", "d"}
	vars := []string{"X", "Y", "Z", "W"}

	var prog dlog.Program
	nRules := 1 + rng.Intn(5)
	for r := 0; r < nRules; r++ {
		hi := rng.Intn(len(derived))
		var body []dlog.Literal
		bound := map[string]bool{}

		term := func(mayBindNew bool) dlog.Term {
			if rng.Intn(3) == 0 {
				return dlog.Term{Name: consts[rng.Intn(len(consts))]}
			}
			if mayBindNew {
				v := vars[rng.Intn(len(vars))]
				return dlog.Term{Name: v, Var: true}
			}
			// Only already-bound variables (or a constant as fallback).
			var bs []string
			for v := range bound {
				bs = append(bs, v)
			}
			if len(bs) == 0 {
				return dlog.Term{Name: consts[rng.Intn(len(consts))]}
			}
			return dlog.Term{Name: bs[rng.Intn(len(bs))], Var: true}
		}

		nPos := 1 + rng.Intn(2)
		for i := 0; i < nPos; i++ {
			var pred string
			var arity int
			// EDB predicate, or a derived predicate <= the head (positive
			// references upward would merge strata; same-pred makes the
			// stratum recursive).
			if rng.Intn(2) == 0 {
				k := rng.Intn(len(edb))
				pred, arity = edb[k], eArity[k]
			} else {
				k := rng.Intn(hi + 1)
				pred, arity = derived[k], dArity[k]
			}
			args := make([]dlog.Term, arity)
			for j := range args {
				args[j] = term(true)
				if args[j].Var {
					bound[args[j].Name] = true
				}
			}
			body = append(body, dlog.Literal{Kind: dlog.LitPos, Atom: dlog.Atom{Pred: pred, Args: args}})
		}
		// Optional negation against the EDB or a strictly lower derived
		// predicate, over bound terms only.
		if rng.Intn(2) == 0 {
			var pred string
			var arity int
			if hi > 0 && rng.Intn(2) == 0 {
				k := rng.Intn(hi)
				pred, arity = derived[k], dArity[k]
			} else {
				k := rng.Intn(len(edb))
				pred, arity = edb[k], eArity[k]
			}
			args := make([]dlog.Term, arity)
			for j := range args {
				args[j] = term(false)
			}
			body = append(body, dlog.Literal{Kind: dlog.LitNeg, Atom: dlog.Atom{Pred: pred, Args: args}})
		}
		// Optional comparison over bound terms.
		if rng.Intn(3) == 0 {
			kind := dlog.LitNeq
			if rng.Intn(2) == 0 {
				kind = dlog.LitEq
			}
			body = append(body, dlog.Literal{Kind: kind, Left: term(false), Right: term(false)})
		}

		head := dlog.Atom{Pred: derived[hi], Args: make([]dlog.Term, dArity[hi])}
		for j := range head.Args {
			head.Args[j] = term(false)
		}
		prog = append(prog, dlog.Rule{Head: head, Body: body})
	}
	return prog
}

// selfRefHeads returns the head predicates that occur in the body of one
// of their own rules. When such a predicate also holds EDB facts, the
// derived-shadows-EDB view can flip mid-rule, and the result depends on
// tuple enumeration order — the tree oracle itself is map-iteration
// nondeterministic there, so tuple-for-tuple equivalence is not
// well-defined. The machine layer never constructs this situation (input,
// state, output, and database schemas are pairwise disjoint), so the
// differential generators exclude it.
func selfRefHeads(prog dlog.Program) map[string]bool {
	out := map[string]bool{}
	for _, r := range prog {
		for _, l := range r.Body {
			if (l.Kind == dlog.LitPos || l.Kind == dlog.LitNeg) && l.Atom.Pred == r.Head.Pred {
				out[r.Head.Pred] = true
			}
		}
	}
	return out
}

// genEDB builds a random EDB over the generator's predicate universe,
// including tuples for derived predicates so shadowing (derived hides EDB
// once a predicate has derived tuples) is exercised — except for
// self-referential heads, where the oracle is order-nondeterministic (see
// selfRefHeads).
func genEDB(rng *rand.Rand, prog dlog.Program) relation.Instance {
	consts := []relation.Const{"a", "b", "c", "d", "e"}
	selfRef := selfRefHeads(prog)
	in := relation.NewInstance()
	preds := []struct {
		name  string
		arity int
	}{{"e0", 1}, {"e1", 2}, {"e2", 3}, {"p0", 1}, {"p1", 2}, {"p2", 1}}
	for _, p := range preds {
		if selfRef[p.name] {
			continue
		}
		n := rng.Intn(4)
		for i := 0; i < n; i++ {
			t := make(relation.Tuple, p.arity)
			for j := range t {
				t[j] = consts[rng.Intn(len(consts))]
			}
			in.Add(p.name, t)
		}
	}
	return in
}

// TestDifferentialQuick is the property: on generated safe stratified
// programs, Plan.Eval equals EvalStratified exactly.
func TestDifferentialQuick(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		prog := genProgram(rng)
		edb := dlog.MultiDB{genEDB(rng, prog)}

		plan, cerr := ra.Compile(prog, nil)
		treeOut, terr := dlog.EvalStratified(prog, edb)
		if cerr != nil || terr != nil {
			// Generated programs are safe and stratified by construction;
			// any rejection is a planner or oracle bug.
			t.Logf("program:\n%s", prog)
			t.Errorf("unexpected rejection: compile=%v tree=%v", cerr, terr)
			return false
		}
		raOut, err := plan.Eval(edb)
		if err != nil {
			t.Errorf("ra eval: %v", err)
			return false
		}
		if !treeOut.Equal(raOut) {
			t.Logf("program:\n%s\nedb: %v\ntree: %v\nra:   %v", prog, edb, treeOut, raOut)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// loadDlogFuzzCorpus reads the seed inputs of dlog's FuzzParseProgram
// corpus (go test fuzz v1 format), reusing its accumulated parser coverage
// as differential inputs.
func loadDlogFuzzCorpus(tb testing.TB) []string {
	dir := filepath.Join("..", "dlog", "testdata", "fuzz", "FuzzParseProgram")
	entries, err := os.ReadDir(dir)
	if err != nil {
		tb.Logf("no dlog fuzz corpus at %s: %v", dir, err)
		return nil
	}
	var out []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		raw, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			continue
		}
		for _, line := range strings.Split(string(raw), "\n") {
			line = strings.TrimSpace(line)
			if !strings.HasPrefix(line, "string(") {
				continue
			}
			if s, err := strconv.Unquote(strings.TrimSuffix(strings.TrimPrefix(line, "string("), ")")); err == nil {
				out = append(out, s)
			}
		}
	}
	return out
}

// fuzzEDB builds a deterministic EDB for a parsed program: every predicate
// mentioned anywhere (heads included, to exercise shadowing) gets a few
// tuples over the program's constants plus a/b — except self-referential
// heads, where the oracle itself is order-nondeterministic (see
// selfRefHeads).
func fuzzEDB(prog dlog.Program) relation.Instance {
	arity := map[string]int{}
	order := []string{}
	note := func(a dlog.Atom) {
		if _, ok := arity[a.Pred]; !ok {
			arity[a.Pred] = len(a.Args)
			order = append(order, a.Pred)
		}
	}
	for _, r := range prog {
		note(r.Head)
		for _, l := range r.Body {
			if l.Kind == dlog.LitPos || l.Kind == dlog.LitNeg {
				note(l.Atom)
			}
		}
	}
	consts := append([]relation.Const{"a", "b"}, prog.Constants()...)
	selfRef := selfRefHeads(prog)
	in := relation.NewInstance()
	for _, pred := range order {
		if selfRef[pred] {
			continue
		}
		n := arity[pred]
		for i := 0; i < 2; i++ {
			t := make(relation.Tuple, n)
			for j := range t {
				t[j] = consts[(i+j)%len(consts)]
			}
			in.Add(pred, t)
		}
	}
	return in
}

// differentialCheck is the shared fuzz/seed body: any program the planner
// accepts must evaluate identically to the tree engine.
func differentialCheck(t *testing.T, src string) {
	prog, err := dlog.ParseProgram(src)
	if err != nil {
		return
	}
	plan, cerr := ra.Compile(prog, nil)
	if cerr != nil {
		// The planner rejects unsafe/unstratifiable/arity-conflicting
		// programs; the machine layer falls back to the tree engine for
		// these, so there is nothing to compare.
		return
	}
	edb := dlog.MultiDB{fuzzEDB(prog)}
	treeOut, terr := dlog.EvalStratified(prog, edb)
	if terr != nil {
		t.Fatalf("planner accepted %q but tree engine rejects it: %v", src, terr)
	}
	raOut, err := plan.Eval(edb)
	if err != nil {
		t.Fatalf("ra eval of %q: %v", src, err)
	}
	if !treeOut.Equal(raOut) {
		t.Fatalf("engines disagree on %q\nedb: %v\ntree: %v\nra:   %v", src, edb, treeOut, raOut)
	}
}

// paperSeedPrograms mirror dlog's fuzz seeds: paper-style rule programs and
// surface-form edge cases.
var paperSeedPrograms = []string{
	`past-order(X) +:- order(X);
past-pay(X, Y) +:- pay(X, Y);`,
	`deliver(X) :- past-order(X), price(X, Y), pay(X, Y), NOT past-pay(X, Y), NOT past-cancel(X);`,
	`error :- pay(X, Y), pay(X, Z), Y <> Z;
error :- deliver(X), cancel(X);`,
	`ship(X) :- order(X), catalog(X, 'Time'), NOT held(X).`,
	`greet('hello world') :- member(X), X = gold;`,
	"answer(42).",
	`reach(X, Y) :- edge(X, Y);
reach(X, Z) :- reach(X, Y), edge(Y, Z);`,
	`odd(X) :- succ(Y, X), even(Y);
even(X) :- succ(Y, X), odd(Y);
even(zero);`,
	`p(X) :- e0(X), NOT q(X);
q(X) :- e1(X, Y), X = a;`,
}

// TestDifferentialSeeds runs the seed programs directly (the fuzz target
// covers them too, but this keeps them in the default `go test` run).
func TestDifferentialSeeds(t *testing.T) {
	seeds := append([]string{}, paperSeedPrograms...)
	seeds = append(seeds, loadDlogFuzzCorpus(t)...)
	for i, src := range seeds {
		t.Run(fmt.Sprintf("seed%02d", i), func(t *testing.T) {
			differentialCheck(t, src)
		})
	}
}

// FuzzDifferential fuzzes program sources through both engines, seeded
// with the paper programs and dlog's parser fuzz corpus.
func FuzzDifferential(f *testing.F) {
	for _, s := range paperSeedPrograms {
		f.Add(s)
	}
	for _, s := range loadDlogFuzzCorpus(f) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		differentialCheck(t, src)
	})
}
