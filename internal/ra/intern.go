// Package ra is the compiled streaming relational-algebra step engine: it
// lowers a dlog.Program once into a Plan — selections, index-backed joins,
// projections, and (anti-)semijoins for negated literals — that is then
// executed per step as composed pull loops over interned relations, with no
// materialized intermediates except the per-stratum fixpoint deltas.
//
// The tree-walking evaluator in package dlog re-derives everything about a
// program on every call: dependency layers, literal scheduling, and
// variable bindings held in string-keyed maps. A Plan does all of that
// once at compile time — variables become integer registers, constants
// become interned integer symbols, literal order is fixed by a join-order
// planner — so the per-step hot loop is array indexing and integer
// equality. Plan.Eval is observationally equivalent to dlog.EvalStratified
// (the differential suite in this package pins that, tuple for tuple).
package ra

import (
	"sync"

	"repro/internal/relation"
)

// Interner assigns dense integer symbols to constants so tuple comparison
// in the executor's hot loop is integer equality instead of string
// equality. One Interner is shared by a machine's output and state plans
// (the "store"), persists across Eval calls, and is safe for concurrent
// use — many sessions of one model share the cached plans.
type Interner struct {
	mu   sync.RWMutex
	ids  map[relation.Const]uint32
	syms []relation.Const
}

// NewInterner returns an empty intern table.
func NewInterner() *Interner {
	return &Interner{ids: make(map[relation.Const]uint32)}
}

// ID interns c, returning its stable symbol.
func (in *Interner) ID(c relation.Const) uint32 {
	in.mu.RLock()
	id, ok := in.ids[c]
	in.mu.RUnlock()
	if ok {
		return id
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if id, ok := in.ids[c]; ok {
		return id
	}
	id = uint32(len(in.syms))
	in.ids[c] = id
	in.syms = append(in.syms, c)
	return id
}

// Sym returns the constant a symbol denotes. Symbols only come from ID, so
// the index is always in range.
func (in *Interner) Sym(id uint32) relation.Const {
	in.mu.RLock()
	defer in.mu.RUnlock()
	return in.syms[id]
}

// Len returns the number of interned constants.
func (in *Interner) Len() int {
	in.mu.RLock()
	defer in.mu.RUnlock()
	return len(in.syms)
}

// snapshot returns the current symbol table; the returned slice is
// append-only shared state and must be treated as read-only. An Eval call
// resolves symbols through it without per-symbol locking.
func (in *Interner) snapshot() []relation.Const {
	in.mu.RLock()
	defer in.mu.RUnlock()
	return in.syms
}
