package ra

import (
	"expvar"
	"sync/atomic"
)

// Package-wide counters for the compiled engine, exported under the expvar
// key "spocus_ra". Rows pulled is accumulated per Eval in the context and
// flushed once, so the hot loop never touches an atomic.
var (
	plansCompiled atomic.Int64 // Compile calls that produced a plan
	planCacheHits atomic.Int64 // plan-cache hits (incremented by core's cache)
	evals         atomic.Int64 // Plan.Eval calls
	rowsPulled    atomic.Int64 // iterator rows pulled across all Evals
	treeFallbacks atomic.Int64 // steps served by the tree engine because Compile failed
)

// NoteCacheHit records a plan-cache hit; the cache itself lives with the
// machines (package core), the counter with the engine it describes.
func NoteCacheHit() { planCacheHits.Add(1) }

// NoteTreeFallback records a step that fell back to the tree evaluator.
func NoteTreeFallback() { treeFallbacks.Add(1) }

// Stats is a point-in-time snapshot of the engine counters.
type Stats struct {
	PlansCompiled int64 `json:"plans_compiled"`
	PlanCacheHits int64 `json:"plan_cache_hits"`
	Evals         int64 `json:"evals_total"`
	RowsPulled    int64 `json:"rows_pulled_total"`
	TreeFallbacks int64 `json:"tree_fallbacks_total"`
}

// Snapshot returns the current counter values.
func Snapshot() Stats {
	return Stats{
		PlansCompiled: plansCompiled.Load(),
		PlanCacheHits: planCacheHits.Load(),
		Evals:         evals.Load(),
		RowsPulled:    rowsPulled.Load(),
		TreeFallbacks: treeFallbacks.Load(),
	}
}

func init() {
	expvar.Publish("spocus_ra", expvar.Func(func() any { return Snapshot() }))
}
