package ra

import (
	"sync"

	"repro/internal/dlog"
	"repro/internal/relation"
)

// iRel is a relation in interned form: rows of integer symbols with a
// membership set and a first-column hash index. EDB relations are interned
// once per Eval on first reference; derived relations are built directly
// in interned form, so the whole fixpoint runs on integer equality.
//
// Both maps are lazy: the membership set materializes on the first probe
// (or the first derived-store insert, which needs it for dedup) and the
// index on the first indexed scan. A scan-only relation carries just its
// rows; once built, each structure is maintained incrementally by add.
type iRel struct {
	arity   int
	rows    [][]uint32
	set     map[string]struct{}
	byFirst map[uint32][]int32 // first symbol -> row indices
}

func newIRel(arity int) *iRel {
	return &iRel{arity: arity}
}

// buildSet materializes the membership set from the current rows.
func (r *iRel) buildSet() {
	r.set = make(map[string]struct{}, len(r.rows))
	var buf []byte
	for _, row := range r.rows {
		var k string
		buf, k = rowKey(row, buf)
		r.set[k] = struct{}{}
	}
}

// build materializes the access structures named by the need flags. The
// interned-relation cache calls this before sharing an iRel, so shared
// copies are immutable thereafter.
func (r *iRel) build(need uint8) {
	if need&needSet != 0 && r.set == nil {
		r.buildSet()
	}
	if need&needIdx != 0 {
		r.idx()
	}
}

// idx returns the first-column index, building it on first use. Subsequent
// adds keep it current, so the append-only length-snapshot contract of the
// scan loop still holds.
func (r *iRel) idx() map[uint32][]int32 {
	if r.byFirst == nil && r.arity > 0 {
		r.byFirst = make(map[uint32][]int32, len(r.rows))
		for i, row := range r.rows {
			r.byFirst[row[0]] = append(r.byFirst[row[0]], int32(i))
		}
	}
	return r.byFirst
}

// key packs a row into a byte-string map key (4 bytes per symbol). buf is
// reused across calls to keep the hot loop allocation-free.
func rowKey(row []uint32, buf []byte) ([]byte, string) {
	buf = buf[:0]
	for _, s := range row {
		buf = append(buf, byte(s), byte(s>>8), byte(s>>16), byte(s>>24))
	}
	return buf, string(buf)
}

// add inserts a row, returning true if new. The row slice is retained.
func (r *iRel) add(row []uint32, buf []byte) ([]byte, bool) {
	if r.set == nil {
		r.buildSet()
	}
	buf, k := rowKey(row, buf)
	if _, ok := r.set[k]; ok {
		return buf, false
	}
	r.set[k] = struct{}{}
	if r.byFirst != nil {
		r.byFirst[row[0]] = append(r.byFirst[row[0]], int32(len(r.rows)))
	}
	r.rows = append(r.rows, row)
	return buf, true
}

func (r *iRel) has(row []uint32, buf []byte) ([]byte, bool) {
	if r.set == nil {
		r.buildSet()
	}
	buf, k := rowKey(row, buf)
	_, ok := r.set[k]
	return buf, ok
}

// internRel converts an EDB relation to interned form. Misses are interned
// through the shared table; within one relation, repeated constants hit the
// table's read path. The source relation is a set already, so rows append
// without a dedup pass; set and index materialize only if a plan probes or
// index-scans the predicate.
func internRel(rel *relation.Rel, in *Interner) *iRel {
	ir := newIRel(rel.Arity())
	if n := rel.Len(); n > 0 {
		ir.rows = make([][]uint32, 0, n)
	}
	rel.Range(func(t relation.Tuple) bool {
		row := make([]uint32, len(t))
		for i, c := range t {
			row[i] = in.ID(c)
		}
		ir.rows = append(ir.rows, row)
		return true
	})
	return ir
}

// evalCtx is the per-Eval execution state: the register frame, the derived
// store, and the EDB intern cache. Plans are shared across sessions; the
// ctx is what makes a concurrent Eval reentrant.
type evalCtx struct {
	plan    *Plan
	edb     dlog.DB
	cache   *Cache
	regs    []uint32
	derived map[string]*iRel
	edbRels map[string]*iRel // nil entry = relation absent in the EDB
	keyBuf  []byte
	probe   []uint32 // scratch row for (anti-)semijoin probes
	changed bool
	rows    int64 // iterator rows pulled, flushed to stats at Eval end
}

// ctxPool recycles evalCtx frames (and their maps/slices) across Evals;
// the step path runs two Evals per transducer step, so this keeps the
// fixed per-Eval allocation cost near zero.
var ctxPool = sync.Pool{New: func() any {
	return &evalCtx{
		derived: make(map[string]*iRel),
		edbRels: make(map[string]*iRel),
	}
}}

// rel resolves a predicate the way the tree evaluator's lookupChain does:
// the derived store shadows the EDB as soon as the predicate has at least
// one derived tuple; otherwise the EDB relation (interned and cached).
// Under a no-shadow plan (state programs) reads always go to the EDB.
func (c *evalCtx) rel(pred string) *iRel {
	if !c.plan.noShadow {
		if ir, ok := c.derived[pred]; ok {
			return ir
		}
	}
	if ir, ok := c.edbRels[pred]; ok {
		return ir
	}
	var ir *iRel
	if c.edb != nil {
		if rel := c.edb.Rel(pred); rel != nil {
			if c.cache != nil {
				ir = c.cache.intern(rel, c.plan.interner, c.plan.needs[pred])
			} else {
				ir = internRel(rel, c.plan.interner)
			}
		}
	}
	c.edbRels[pred] = ir
	return ir
}

// Eval executes the plan over the EDB and returns the derived instance,
// exactly as dlog.EvalStratified would: strata in order, each iterated to
// a fixpoint (single pass when the stratum has no intra-stratum positive
// reference).
func (p *Plan) Eval(edb dlog.DB) (relation.Instance, error) {
	return p.EvalCached(edb, nil)
}

// EvalCached is Eval with an interned-relation cache: EDB relations whose
// contents the cache has already interned are reused instead of being
// re-interned. Pass the same cache across a session's steps (the machine
// layer does) so the fixed database interns once, not once per step.
func (p *Plan) EvalCached(edb dlog.DB, cache *Cache) (relation.Instance, error) {
	ctx := ctxPool.Get().(*evalCtx)
	ctx.plan, ctx.edb, ctx.cache = p, edb, cache
	if cap(ctx.regs) < p.maxRegs {
		ctx.regs = make([]uint32, p.maxRegs)
	}
	ctx.regs = ctx.regs[:cap(ctx.regs)]
	for si := range p.strata {
		st := &p.strata[si]
		for {
			ctx.changed = false
			for _, cr := range st.rules {
				ctx.runRule(cr)
			}
			if !ctx.changed || !st.recursive {
				break
			}
		}
	}
	// Convert the derived store back to constants.
	syms := p.interner.snapshot()
	out := relation.NewInstance()
	for pred, ir := range ctx.derived {
		rel := out.Ensure(pred, ir.arity)
		for _, row := range ir.rows {
			t := make(relation.Tuple, len(row))
			for i, s := range row {
				t[i] = syms[s]
			}
			rel.Add(t)
		}
	}
	rowsPulled.Add(ctx.rows)
	evals.Add(1)
	ctx.plan, ctx.edb, ctx.cache = nil, nil, nil
	clear(ctx.derived)
	clear(ctx.edbRels)
	ctx.rows = 0
	ctxPool.Put(ctx)
	return out, nil
}

// runRule streams the rule's pipeline from operator 0.
func (c *evalCtx) runRule(cr *compiledRule) {
	c.step(cr, 0)
}

// resolve returns the value an argSpec denotes under the current frame.
// Compile-time ordering guarantees bound registers were written upstream.
func (c *evalCtx) resolve(a argSpec) uint32 {
	if a.constArg {
		return a.sym
	}
	return c.regs[a.reg]
}

// step executes cr.ops[i:] under the current register frame; reaching the
// end emits the head projection into the derived store.
func (c *evalCtx) step(cr *compiledRule, i int) {
	if i == len(cr.ops) {
		c.emit(cr)
		return
	}
	o := &cr.ops[i]
	switch o.kind {
	case opFilterNeq:
		if c.resolve(o.left) != c.resolve(o.right) {
			c.step(cr, i+1)
		}
	case opFilterEq:
		if c.resolve(o.left) == c.resolve(o.right) {
			c.step(cr, i+1)
		}
	case opBindEq:
		c.regs[o.left.reg] = c.resolve(o.right)
		c.step(cr, i+1)
	case opProbe, opAnti:
		rel := c.rel(o.pred)
		hit := false
		if rel != nil && rel.arity == len(o.args) {
			// The scratch row is dead once the membership test returns, so
			// one buffer serves every probe depth.
			if cap(c.probe) < len(o.args) {
				c.probe = make([]uint32, len(o.args))
			}
			row := c.probe[:len(o.args)]
			for j, a := range o.args {
				row[j] = c.resolve(a)
			}
			c.keyBuf, hit = rel.has(row, c.keyBuf)
		}
		if (o.kind == opProbe) == hit {
			c.step(cr, i+1)
		}
	case opScan:
		rel := c.rel(o.pred)
		if rel == nil || rel.arity != len(o.args) {
			return
		}
		if o.useIndex {
			// Index-backed join: only rows whose first column matches the
			// resolved first argument. The index slice is append-only, so
			// snapshot its length — rows added by this very rule (recursive
			// strata) are picked up on the next fixpoint pass, matching the
			// tree evaluator's pass-at-a-time semantics.
			idxRows := rel.idx()[c.resolve(o.args[0])]
			n := len(idxRows)
			for k := 0; k < n; k++ {
				c.rows++
				if c.matchRow(o, rel.rows[idxRows[k]], 1) {
					c.step(cr, i+1)
				}
			}
			return
		}
		n := len(rel.rows)
		for k := 0; k < n; k++ {
			c.rows++
			if c.matchRow(o, rel.rows[k], 0) {
				c.step(cr, i+1)
			}
		}
	}
}

// matchRow checks the row against the scan's bound positions and binds its
// free ones, starting at position from (1 when the first-column index
// already matched position 0... except the index only guarantees equality
// of the first symbol, which is exactly position 0's check, so binding
// specs at position 0 still need the write).
func (c *evalCtx) matchRow(o *op, row []uint32, from int) bool {
	// Position 0 under an index scan: equality is guaranteed, but a free
	// register spec must still bind (a repeated variable may check it).
	if from == 1 {
		a := o.args[0]
		if !a.constArg && !a.bound {
			c.regs[a.reg] = row[0]
		}
	}
	for j := from; j < len(o.args); j++ {
		a := o.args[j]
		if a.constArg {
			if row[j] != a.sym {
				return false
			}
		} else if a.bound {
			if row[j] != c.regs[a.reg] {
				return false
			}
		} else {
			c.regs[a.reg] = row[j]
		}
	}
	return true
}

// emit projects the register frame through the head spec into the derived
// store.
func (c *evalCtx) emit(cr *compiledRule) {
	ir, ok := c.derived[cr.head.pred]
	if !ok {
		ir = newIRel(cr.head.arity)
		c.derived[cr.head.pred] = ir
	}
	row := make([]uint32, len(cr.head.args))
	for i, a := range cr.head.args {
		row[i] = c.resolve(a)
	}
	var added bool
	c.keyBuf, added = ir.add(row, c.keyBuf)
	if added {
		c.changed = true
	}
}
