package ra

import (
	"fmt"
	"strings"

	"repro/internal/dlog"
	"repro/internal/relation"
)

// CompileError reports a program the planner cannot lower: unsafe rules
// (a head or negation variable never bound by a positive literal), head
// arity conflicts (which the tree evaluator would panic on), or programs
// with no stratification. Callers fall back to the tree engine on it.
type CompileError struct{ Msg string }

func (e *CompileError) Error() string { return "ra: " + e.Msg }

// opKind enumerates the executor's operators. A rule body compiles to a
// pipeline of these; the executor nests them as pull loops, so a scan
// streams bindings downward and everything after it is a per-row filter or
// a further nested scan — no intermediate relation is ever materialized.
type opKind int

const (
	// opScan iterates a relation, checking bound argument positions and
	// binding the free ones (selection + projection fused into the join).
	opScan opKind = iota
	// opProbe is a semijoin: every argument is bound, so the positive
	// literal reduces to a membership test.
	opProbe
	// opAnti is an anti-semijoin for a negated literal: every argument is
	// bound and the probe must miss.
	opAnti
	// opFilterNeq checks an inequality between two resolved terms.
	opFilterNeq
	// opFilterEq checks an equality between two resolved terms.
	opFilterEq
	// opBindEq binds a free variable to the other (resolved) side of an
	// equality literal.
	opBindEq
)

func (k opKind) String() string {
	switch k {
	case opScan:
		return "scan"
	case opProbe:
		return "probe"
	case opAnti:
		return "anti"
	case opFilterNeq:
		return "filter≠"
	case opFilterEq:
		return "filter="
	case opBindEq:
		return "bind="
	}
	return "?"
}

// argSpec describes one argument position of a compiled atom. Exactly one
// of the three roles applies: a pre-interned constant, a register that is
// already bound at this point in the pipeline (an equality check), or a
// register this operator binds (a projection into the register frame).
type argSpec struct {
	constArg bool
	sym      uint32 // interned constant, when constArg
	reg      int    // register index, when !constArg
	bound    bool   // register already holds a value here (check, don't bind)
}

// op is one operator of a rule pipeline.
type op struct {
	kind opKind
	pred string    // opScan/opProbe/opAnti
	args []argSpec // opScan/opProbe/opAnti
	// useIndex marks a scan whose first argument is resolved at this point,
	// so the executor probes the first-column hash index instead of
	// iterating the whole relation.
	useIndex bool
	// left/right are the operands of comparison/binding ops. For opBindEq,
	// left is the side being bound (a free register) and right is resolved.
	left, right argSpec
}

// emitSpec is the head projection: how to assemble the derived tuple from
// the register frame once every body operator accepted.
type emitSpec struct {
	pred  string
	arity int
	args  []argSpec // constArg or bound register, never free
}

// compiledRule is one rule lowered to a pipeline.
type compiledRule struct {
	src   dlog.Rule
	nRegs int
	ops   []op
	head  emitSpec
}

// stratum groups the rules evaluated together in one fixpoint round.
type stratum struct {
	preds []string
	rules []*compiledRule
	// recursive marks a stratum with an intra-stratum positive reference;
	// non-recursive strata converge in a single pass.
	recursive bool
}

// Plan is a compiled program: strata of rule pipelines sharing an intern
// table. Plans are immutable after Compile and safe for concurrent Eval.
type Plan struct {
	strata   []stratum
	interner *Interner
	maxRegs  int
	// headArity fixes each derived predicate's arity (compile-rejected if
	// two heads disagree, which the tree evaluator would panic on).
	headArity map[string]int
	// noShadow disables the derived-shadows-EDB read rule: body references
	// always read the EDB. State programs compile this way — a state rule
	// body reads the previous state by construction (the tree engine gets
	// the same effect by tagging heads with a reserved prefix), so the
	// rename round-trip is unnecessary here.
	noShadow bool
	// needs records, per predicate, which iRel access structures this
	// plan's operators use (membership set for probes, first-column index
	// for indexed scans). The interned-relation cache pre-builds exactly
	// these at intern time, keeping cached iRels immutable afterwards and
	// so safe for concurrent Evals.
	needs map[string]uint8
}

// Access-structure need flags, stored per predicate in Plan.needs.
const (
	needSet uint8 = 1 << iota
	needIdx
)

// Needs returns the plan's access-structure flags for pred.
func (p *Plan) Needs(pred string) uint8 { return p.needs[pred] }

// Interner exposes the plan's constant table (shared per machine/store).
func (p *Plan) Interner() *Interner { return p.interner }

// Compile lowers a program into a Plan. The intern table may be shared
// across plans (pass nil for a private one). Compilation stratifies the
// program, orders each rule body with the join-order planner, allocates
// registers for variables, and pre-interns every rule constant.
func Compile(prog dlog.Program, in *Interner) (*Plan, error) {
	return compile(prog, in, false)
}

// CompileNoShadow compiles a program whose body references must always read
// the EDB, never this evaluation's derived tuples — the semantics of a
// machine's state program, whose rules read the previous state while
// deriving the next. Every stratum is single-pass: with reads pinned to the
// EDB, a second fixpoint pass can derive nothing new.
func CompileNoShadow(prog dlog.Program, in *Interner) (*Plan, error) {
	return compile(prog, in, true)
}

func compile(prog dlog.Program, in *Interner, noShadow bool) (*Plan, error) {
	if in == nil {
		in = NewInterner()
	}
	strataPreds, err := dlog.Stratify(prog)
	if err != nil {
		return nil, &CompileError{Msg: err.Error()}
	}
	headArity := make(map[string]int)
	for _, r := range prog {
		if a, ok := headArity[r.Head.Pred]; ok && a != len(r.Head.Args) {
			return nil, &CompileError{Msg: fmt.Sprintf("head %s derived with arities %d and %d", r.Head.Pred, a, len(r.Head.Args))}
		}
		headArity[r.Head.Pred] = len(r.Head.Args)
	}
	p := &Plan{interner: in, headArity: headArity, noShadow: noShadow}
	for _, preds := range strataPreds {
		st := stratum{preds: preds}
		inStratum := make(map[string]bool, len(preds))
		for _, pr := range preds {
			inStratum[pr] = true
		}
		// Rule order matters observationally: once a predicate has derived
		// tuples it shadows its EDB relation, so which rules fired earlier
		// in the pass determines what later rules in the same pass read.
		// Mirror EvalStratified exactly: stratum predicates in Stratify's
		// order, each predicate's rules in program order.
		for _, pr := range preds {
			for _, r := range prog {
				if r.Head.Pred != pr {
					continue
				}
				cr, err := compileRule(r, in)
				if err != nil {
					return nil, err
				}
				st.rules = append(st.rules, cr)
				if cr.nRegs > p.maxRegs {
					p.maxRegs = cr.nRegs
				}
				// An intra-stratum positive reference forces fixpoint
				// iteration — unless reads are pinned to the EDB, in which
				// case a second pass can never see the new tuples anyway.
				if !noShadow {
					for _, l := range r.Body {
						if l.Kind == dlog.LitPos && inStratum[l.Atom.Pred] {
							st.recursive = true
						}
					}
				}
			}
		}
		p.strata = append(p.strata, st)
	}
	p.needs = make(map[string]uint8)
	for _, st := range p.strata {
		for _, cr := range st.rules {
			for _, o := range cr.ops {
				switch o.kind {
				case opProbe, opAnti:
					p.needs[o.pred] |= needSet
				case opScan:
					if o.useIndex {
						p.needs[o.pred] |= needIdx
					}
				}
			}
		}
	}
	plansCompiled.Add(1)
	return p, nil
}

// ruleCtx tracks register allocation and boundness while planning one rule.
type ruleCtx struct {
	regs  map[string]int
	bound map[string]bool
	in    *Interner
}

func (rc *ruleCtx) reg(name string) int {
	if r, ok := rc.regs[name]; ok {
		return r
	}
	r := len(rc.regs)
	rc.regs[name] = r
	return r
}

// termSpec resolves a term to an argSpec under the current boundness.
func (rc *ruleCtx) termSpec(t dlog.Term) argSpec {
	if !t.Var {
		return argSpec{constArg: true, sym: rc.in.ID(relation.Const(t.Name))}
	}
	return argSpec{reg: rc.reg(t.Name), bound: rc.bound[t.Name]}
}

// resolved reports whether the term denotes a value here (const or bound).
func (rc *ruleCtx) resolved(t dlog.Term) bool {
	return !t.Var || rc.bound[t.Name]
}

// compileRule plans one rule: orders the body with the join-order planner
// and lowers each literal to an operator against the running register
// frame.
func compileRule(r dlog.Rule, in *Interner) (*compiledRule, error) {
	rc := &ruleCtx{regs: map[string]int{}, bound: map[string]bool{}, in: in}
	pending := make([]dlog.Literal, len(r.Body))
	copy(pending, r.Body)
	var ops []op

	place := func(l dlog.Literal) {
		switch l.Kind {
		case dlog.LitPos:
			allBound := true
			for _, a := range l.Atom.Args {
				if !rc.resolved(a) {
					allBound = false
				}
			}
			args := make([]argSpec, len(l.Atom.Args))
			for i, a := range l.Atom.Args {
				args[i] = rc.termSpec(a)
				if a.Var {
					rc.bound[a.Name] = true
				}
			}
			if allBound {
				ops = append(ops, op{kind: opProbe, pred: l.Atom.Pred, args: args})
				return
			}
			useIndex := len(args) > 0 && (args[0].constArg || args[0].bound)
			ops = append(ops, op{kind: opScan, pred: l.Atom.Pred, args: args, useIndex: useIndex})
		case dlog.LitNeg:
			args := make([]argSpec, len(l.Atom.Args))
			for i, a := range l.Atom.Args {
				args[i] = rc.termSpec(a)
			}
			ops = append(ops, op{kind: opAnti, pred: l.Atom.Pred, args: args})
		case dlog.LitNeq:
			ops = append(ops, op{kind: opFilterNeq, left: rc.termSpec(l.Left), right: rc.termSpec(l.Right)})
		case dlog.LitEq:
			lres, rres := rc.resolved(l.Left), rc.resolved(l.Right)
			switch {
			case lres && rres:
				ops = append(ops, op{kind: opFilterEq, left: rc.termSpec(l.Left), right: rc.termSpec(l.Right)})
			case rres: // bind left from right
				right := rc.termSpec(l.Right)
				rc.bound[l.Left.Name] = true
				ops = append(ops, op{kind: opBindEq, left: rc.termSpec(l.Left), right: right})
			default: // bind right from left
				left := rc.termSpec(l.Left)
				rc.bound[l.Right.Name] = true
				ops = append(ops, op{kind: opBindEq, left: rc.termSpec(l.Right), right: left})
			}
		}
	}

	// evaluable reports whether a non-positive literal can run now: negated
	// atoms and inequalities need every variable resolved; an equality needs
	// one side.
	evaluable := func(l dlog.Literal) bool {
		switch l.Kind {
		case dlog.LitNeg, dlog.LitNeq:
			for _, v := range l.Vars() {
				if !rc.bound[v] {
					return false
				}
			}
			return true
		case dlog.LitEq:
			return rc.resolved(l.Left) || rc.resolved(l.Right)
		}
		return false
	}

	for len(pending) > 0 {
		// 1. Discharge every filter/bind that is evaluable, cheapest first:
		// they prune the stream before the next (more expensive) join.
		progressed := true
		for progressed {
			progressed = false
			for i := 0; i < len(pending); i++ {
				l := pending[i]
				if l.Kind != dlog.LitPos && evaluable(l) {
					place(l)
					pending = append(pending[:i], pending[i+1:]...)
					progressed = true
					i--
				}
			}
		}
		if len(pending) == 0 {
			break
		}
		// 2. Pick the next join by the bound-variable/cardinality heuristic:
		// most resolved argument positions first (selections cut hardest),
		// then availability of the first-column index, then fewer free
		// variables (a proxy for output cardinality), then author order.
		best, bestKey := -1, [3]int{-1, -1, -1}
		for i, l := range pending {
			if l.Kind != dlog.LitPos {
				continue
			}
			boundArgs, free := 0, 0
			seen := map[string]bool{}
			for _, a := range l.Atom.Args {
				if rc.resolved(a) {
					boundArgs++
				} else if !seen[a.Name] {
					seen[a.Name] = true
					free++
				}
			}
			idx := 0
			if len(l.Atom.Args) > 0 && rc.resolved(l.Atom.Args[0]) {
				idx = 1
			}
			key := [3]int{boundArgs, idx, -free}
			if best == -1 || key[0] > bestKey[0] ||
				(key[0] == bestKey[0] && (key[1] > bestKey[1] ||
					(key[1] == bestKey[1] && key[2] > bestKey[2]))) {
				best, bestKey = i, key
			}
		}
		if best == -1 {
			// Only unevaluable negations/comparisons remain: unsafe rule.
			return nil, &CompileError{Msg: fmt.Sprintf("unsafe rule %q: literal %q has variables no positive literal binds", r, pending[0])}
		}
		place(pending[best])
		pending = append(pending[:best], pending[best+1:]...)
	}

	head := emitSpec{pred: r.Head.Pred, arity: len(r.Head.Args)}
	for _, a := range r.Head.Args {
		if a.Var && !rc.bound[a.Name] {
			return nil, &CompileError{Msg: fmt.Sprintf("unsafe rule %q: head variable %s unbound", r, a.Name)}
		}
		head.args = append(head.args, rc.termSpec(a))
	}
	return &compiledRule{src: r, nRegs: len(rc.regs), ops: ops, head: head}, nil
}

// Explain renders the plan tree for inspection (the /debug/plan endpoint).
// Registers print as $n, interned constants by their symbol text.
func (p *Plan) Explain() string {
	var b strings.Builder
	for si, st := range p.strata {
		fix := "single-pass"
		if st.recursive {
			fix = "fixpoint"
		}
		fmt.Fprintf(&b, "stratum %d (%s): %s\n", si, fix, strings.Join(st.preds, ", "))
		for _, cr := range st.rules {
			fmt.Fprintf(&b, "  rule %s\n", cr.src)
			fmt.Fprintf(&b, "    emit %s\n", p.fmtEmit(cr.head))
			for _, o := range cr.ops {
				fmt.Fprintf(&b, "    %s\n", p.fmtOp(o))
			}
		}
	}
	return b.String()
}

func (p *Plan) fmtArg(a argSpec) string {
	if a.constArg {
		return fmt.Sprintf("%q", string(p.interner.Sym(a.sym)))
	}
	if a.bound {
		return fmt.Sprintf("$%d", a.reg)
	}
	return fmt.Sprintf("→$%d", a.reg)
}

func (p *Plan) fmtOp(o op) string {
	switch o.kind {
	case opScan, opProbe, opAnti:
		parts := make([]string, len(o.args))
		for i, a := range o.args {
			parts[i] = p.fmtArg(a)
		}
		idx := ""
		if o.useIndex {
			idx = " [index:first]"
		}
		return fmt.Sprintf("%s %s(%s)%s", o.kind, o.pred, strings.Join(parts, ", "), idx)
	case opFilterNeq:
		return fmt.Sprintf("filter %s ≠ %s", p.fmtArg(o.left), p.fmtArg(o.right))
	case opFilterEq:
		return fmt.Sprintf("filter %s = %s", p.fmtArg(o.left), p.fmtArg(o.right))
	case opBindEq:
		return fmt.Sprintf("bind %s = %s", p.fmtArg(o.left), p.fmtArg(o.right))
	}
	return "?"
}

func (p *Plan) fmtEmit(e emitSpec) string {
	parts := make([]string, len(e.args))
	for i, a := range e.args {
		parts[i] = p.fmtArg(a)
	}
	return fmt.Sprintf("%s(%s)", e.pred, strings.Join(parts, ", "))
}
