package ra

import (
	"sync"

	"repro/internal/relation"
)

// Cache memoizes interned EDB relations across Evals. relation.Rel is
// add-only (Add and UnionWith are the only mutators), so a cached interned
// copy is valid exactly while the relation's length is unchanged — the
// (pointer, length) pair identifies the contents. The cache makes the
// per-step cost of interning incremental: a session's database relations
// intern once, and with copy-on-write state merging the unchanged state
// relations keep their pointers across steps and hit here too.
//
// Two generations bound the size: lookups hit the current generation first,
// then promote from the previous one; when the current generation fills,
// it becomes the previous and entries untouched for a full generation are
// dropped (per-step input relations age out this way).
type Cache struct {
	mu   sync.Mutex
	cur  map[*relation.Rel]*cachedRel
	prev map[*relation.Rel]*cachedRel
}

type cachedRel struct {
	n  int // rel.Len() at intern time
	ir *iRel
}

// cacheGenSize is the per-generation entry budget; at most 2x this many
// entries are retained.
const cacheGenSize = 256

// NewCache returns an empty interned-relation cache.
func NewCache() *Cache {
	return &Cache{cur: make(map[*relation.Rel]*cachedRel)}
}

// intern returns the interned form of rel, reusing a cached copy when the
// relation has not grown since it was built. need carries the calling
// plan's access-structure flags; any structure the plan will use is built
// here, under the lock, before the iRel is handed out — cached iRels are
// never mutated by readers, so concurrent Evals can share them.
func (c *Cache) intern(rel *relation.Rel, in *Interner, need uint8) *iRel {
	n := rel.Len()
	c.mu.Lock()
	if e, ok := c.cur[rel]; ok && e.n == n {
		e.ir.build(need)
		c.mu.Unlock()
		return e.ir
	}
	if e, ok := c.prev[rel]; ok && e.n == n {
		e.ir.build(need)
		c.promote(rel, e)
		c.mu.Unlock()
		return e.ir
	}
	c.mu.Unlock()
	// Intern outside the lock: concurrent misses on the same relation
	// waste a little work instead of serializing every Eval.
	ir := internRel(rel, in)
	ir.build(need)
	c.mu.Lock()
	c.promote(rel, &cachedRel{n: n, ir: ir})
	c.mu.Unlock()
	return ir
}

// promote stores the entry in the current generation, rotating when full.
// Callers hold c.mu.
func (c *Cache) promote(rel *relation.Rel, e *cachedRel) {
	if len(c.cur) >= cacheGenSize {
		c.prev = c.cur
		c.cur = make(map[*relation.Rel]*cachedRel, cacheGenSize)
	}
	c.cur[rel] = e
}
