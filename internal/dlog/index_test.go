package dlog

import (
	"testing"

	"repro/internal/relation"
)

// TestIndexedJoinConstantFirstArg exercises the RangeFirst fast path with a
// constant first argument.
func TestIndexedJoinConstantFirstArg(t *testing.T) {
	p := MustParseProgram(`pick(Y) :- r(a, Y);`)
	edb := relation.NewInstance()
	edb.Add("r", relation.Tuple{"a", "1"})
	edb.Add("r", relation.Tuple{"a", "2"})
	edb.Add("r", relation.Tuple{"b", "3"})
	out, err := Eval(p, MultiDB{edb})
	if err != nil {
		t.Fatal(err)
	}
	if out.Rel("pick").Len() != 2 || !out.Has("pick", relation.Tuple{"1"}) || !out.Has("pick", relation.Tuple{"2"}) {
		t.Errorf("pick = %s", out.Rel("pick"))
	}
}

// TestIndexedJoinBoundByEarlierAtom exercises the fast path where the first
// argument is bound by a previous join step.
func TestIndexedJoinBoundByEarlierAtom(t *testing.T) {
	p := MustParseProgram(`j(X,Z) :- s(X), r(X, Z);`)
	edb := relation.NewInstance()
	edb.Add("s", relation.Tuple{"a"})
	edb.Add("r", relation.Tuple{"a", "1"})
	edb.Add("r", relation.Tuple{"b", "2"})
	out, err := Eval(p, MultiDB{edb})
	if err != nil {
		t.Fatal(err)
	}
	if out.Rel("j").Len() != 1 || !out.Has("j", relation.Tuple{"a", "1"}) {
		t.Errorf("j = %s", out.Rel("j"))
	}
}

// TestUnboundFirstArgStillScans: when the first argument is a fresh
// variable the evaluator must fall back to the full scan.
func TestUnboundFirstArgStillScans(t *testing.T) {
	p := MustParseProgram(`all(X,Y) :- r(X,Y);`)
	edb := relation.NewInstance()
	edb.Add("r", relation.Tuple{"a", "1"})
	edb.Add("r", relation.Tuple{"b", "2"})
	out, err := Eval(p, MultiDB{edb})
	if err != nil {
		t.Fatal(err)
	}
	if out.Rel("all").Len() != 2 {
		t.Errorf("all = %s", out.Rel("all"))
	}
}

// TestRepeatedVariableInIndexedAtom: r(X, X) with the first position bound
// must still filter the second position correctly through the index path.
func TestRepeatedVariableInIndexedAtom(t *testing.T) {
	p := MustParseProgram(`diag(X) :- s(X), r(X, X);`)
	edb := relation.NewInstance()
	edb.Add("s", relation.Tuple{"a"})
	edb.Add("s", relation.Tuple{"b"})
	edb.Add("r", relation.Tuple{"a", "a"})
	edb.Add("r", relation.Tuple{"b", "c"})
	out, err := Eval(p, MultiDB{edb})
	if err != nil {
		t.Fatal(err)
	}
	if out.Rel("diag").Len() != 1 || !out.Has("diag", relation.Tuple{"a"}) {
		t.Errorf("diag = %s", out.Rel("diag"))
	}
}
