package dlog

import "fmt"

// ParseProgram parses a sequence of rules. Rules are terminated by ";" or
// "."; the final terminator may be omitted. The concrete syntax follows the
// paper:
//
//	past-order(X) +:- order(X);
//	deliver(X) :- past-order(X), price(X,Y), pay(X,Y), NOT past-pay(X,Y);
//	error :- pay(X,Y), X <> Y;
//
// Facts (rules with empty bodies) are written "head;" or "head :- ;".
func ParseProgram(src string) (Program, error) {
	l := NewLexer(src)
	var p Program
	for l.Tok().Kind != TokEOF {
		r, err := parseRule(l)
		if err != nil {
			return nil, err
		}
		p = append(p, r)
	}
	if err := l.Err(); err != nil {
		return nil, err
	}
	return p, nil
}

// ParseRuleFrom parses a single rule from an existing lexer, leaving the
// lexer positioned after the rule's terminator. It is used by the transducer
// program parser in package core, which shares this lexer.
func ParseRuleFrom(l *Lexer) (Rule, error) {
	return parseRule(l)
}

// ParseRule parses a single rule.
func ParseRule(src string) (Rule, error) {
	l := NewLexer(src)
	r, err := parseRule(l)
	if err != nil {
		return Rule{}, err
	}
	if l.Tok().Kind != TokEOF {
		return Rule{}, l.Errorf("trailing input after rule")
	}
	return r, nil
}

func parseRule(l *Lexer) (Rule, error) {
	head, err := parseAtom(l)
	if err != nil {
		return Rule{}, err
	}
	var r Rule
	r.Head = head
	switch l.Tok().Kind {
	case TokDefine:
		l.Next()
	case TokCumDefine:
		l.Next()
		r.Cumulative = true
	case TokSemi, TokPeriod:
		l.Next()
		return r, nil // fact
	case TokEOF:
		return r, nil
	default:
		return Rule{}, l.Errorf("expected ':-', '+:-' or rule terminator, found %q", l.Tok().Text)
	}
	// Body: possibly empty (immediately terminated).
	if l.Tok().Kind == TokSemi || l.Tok().Kind == TokPeriod {
		l.Next()
		return r, nil
	}
	for {
		lit, err := parseLiteral(l)
		if err != nil {
			return Rule{}, err
		}
		r.Body = append(r.Body, lit)
		if l.Accept(TokComma) {
			continue
		}
		break
	}
	if l.Tok().Kind == TokSemi || l.Tok().Kind == TokPeriod {
		l.Next()
	} else if l.Tok().Kind != TokEOF {
		return Rule{}, l.Errorf("expected rule terminator, found %q", l.Tok().Text)
	}
	return r, nil
}

func parseLiteral(l *Lexer) (Literal, error) {
	if l.Accept(TokNot) {
		a, err := parseAtom(l)
		if err != nil {
			return Literal{}, err
		}
		return Neg(a), nil
	}
	// Could be an atom or a comparison. Parse a term first; if followed by
	// "<>"/"!="/"=", it is a comparison, otherwise it must be an atom whose
	// predicate is that identifier.
	t := l.Tok()
	switch t.Kind {
	case TokIdent, TokString, TokVar:
		l.Next()
		switch l.Tok().Kind {
		case TokNeq:
			l.Next()
			rhs, err := parseTerm(l)
			if err != nil {
				return Literal{}, err
			}
			return Neq(tokenTerm(t), rhs), nil
		case TokEq:
			l.Next()
			rhs, err := parseTerm(l)
			if err != nil {
				return Literal{}, err
			}
			return Eq(tokenTerm(t), rhs), nil
		case TokLParen:
			if t.Kind == TokVar {
				return Literal{}, l.Errorf("predicate name %q must not begin with an upper-case letter", t.Text)
			}
			if t.Kind == TokString {
				return Literal{}, l.Errorf("quoted constant %q cannot be used as a predicate name", t.Text)
			}
			args, err := parseArgs(l)
			if err != nil {
				return Literal{}, err
			}
			return Pos(Atom{Pred: t.Text, Args: args}), nil
		default:
			if t.Kind == TokVar {
				return Literal{}, l.Errorf("bare variable %q is not a literal", t.Text)
			}
			if t.Kind == TokString {
				return Literal{}, l.Errorf("quoted constant %q is not a literal", t.Text)
			}
			return Pos(Atom{Pred: t.Text}), nil
		}
	default:
		return Literal{}, l.Errorf("expected literal, found %s %q", t.Kind, t.Text)
	}
}

func parseAtom(l *Lexer) (Atom, error) {
	name, err := l.Expect(TokIdent)
	if err != nil {
		return Atom{}, err
	}
	if l.Tok().Kind != TokLParen {
		return Atom{Pred: name.Text}, nil
	}
	args, err := parseArgs(l)
	if err != nil {
		return Atom{}, err
	}
	return Atom{Pred: name.Text, Args: args}, nil
}

func parseArgs(l *Lexer) ([]Term, error) {
	if _, err := l.Expect(TokLParen); err != nil {
		return nil, err
	}
	var args []Term
	if l.Accept(TokRParen) {
		return args, nil
	}
	for {
		t, err := parseTerm(l)
		if err != nil {
			return nil, err
		}
		args = append(args, t)
		if l.Accept(TokComma) {
			continue
		}
		if _, err := l.Expect(TokRParen); err != nil {
			return nil, err
		}
		return args, nil
	}
}

func parseTerm(l *Lexer) (Term, error) {
	t := l.Tok()
	switch t.Kind {
	case TokVar:
		l.Next()
		return V(t.Text), nil
	case TokIdent, TokString:
		l.Next()
		return C(t.Text), nil
	default:
		return Term{}, l.Errorf("expected term, found %s %q", t.Kind, t.Text)
	}
}

func tokenTerm(t Token) Term {
	if t.Kind == TokVar {
		return V(t.Text)
	}
	return C(t.Text)
}

// MustParseProgram parses a program and panics on error; intended for
// statically-known programs in examples, models, and tests.
func MustParseProgram(src string) Program {
	p, err := ParseProgram(src)
	if err != nil {
		panic(fmt.Sprintf("dlog: parse: %v", err))
	}
	return p
}
