// Package dlog implements the rule language of the paper: nonrecursive
// semipositive datalog with inequality (datalog¬,≠), used for transducer
// output rules and error rules, plus the cumulative ("+:-") state rules of
// the Spocus model. The package provides an AST, a parser for the paper's
// concrete syntax, structural validity checks, and a bottom-up evaluator.
//
// By convention (as in Prolog), identifiers beginning with an upper-case
// letter are variables and all other identifiers are constants. The paper's
// examples write variables as X, Y and constants such as past-order or 855;
// hyphens are legal inside identifiers.
package dlog

import (
	"fmt"
	"sort"
	"strings"
	"unicode"

	"repro/internal/relation"
)

// Term is a variable or a constant appearing in an atom.
type Term struct {
	// Var is true when the term is a variable.
	Var bool
	// Name is the variable name or the constant symbol.
	Name string
}

// V constructs a variable term.
func V(name string) Term { return Term{Var: true, Name: name} }

// C constructs a constant term.
func C(name string) Term { return Term{Var: false, Name: name} }

func (t Term) String() string {
	if !t.Var && !bareConstant(t.Name) && !strings.ContainsAny(t.Name, "'\n") {
		return "'" + t.Name + "'"
	}
	return t.Name
}

// bareConstant reports whether a constant symbol re-lexes as itself when
// printed without quotes: a nonempty lower-case-or-digit-led identifier that
// is not the NOT keyword. Anything else (quoted constants like 'Time' or
// 'a b', the empty constant '') must print quoted or it would lex as a
// variable, a keyword, or not at all.
func bareConstant(name string) bool {
	if name == "" || strings.EqualFold(name, "not") {
		return false
	}
	for i, r := range name {
		if i == 0 {
			if !(unicode.IsLetter(r) || unicode.IsDigit(r)) || unicode.IsUpper(r) {
				return false
			}
			continue
		}
		if !(unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '-' || r == '*' || r == '\'') {
			return false
		}
	}
	return true
}

// Atom is a predicate applied to a list of terms.
type Atom struct {
	Pred string
	Args []Term
}

// NewAtom builds an atom from a predicate name and terms.
func NewAtom(pred string, args ...Term) Atom { return Atom{Pred: pred, Args: args} }

func (a Atom) String() string {
	if len(a.Args) == 0 {
		return a.Pred
	}
	parts := make([]string, len(a.Args))
	for i, t := range a.Args {
		parts[i] = t.String()
	}
	return a.Pred + "(" + strings.Join(parts, ", ") + ")"
}

// Vars returns the variable names of the atom in order of first occurrence.
func (a Atom) Vars() []string {
	var out []string
	seen := make(map[string]bool)
	for _, t := range a.Args {
		if t.Var && !seen[t.Name] {
			seen[t.Name] = true
			out = append(out, t.Name)
		}
	}
	return out
}

// LitKind distinguishes the forms a body literal may take.
type LitKind int

const (
	// LitPos is a positive relational atom R(t̄).
	LitPos LitKind = iota
	// LitNeg is a negated relational atom NOT R(t̄).
	LitNeg
	// LitNeq is an inequality t ≠ u.
	LitNeq
	// LitEq is an equality t = u (a convenience beyond the paper's ≠;
	// it is eliminable by substitution and accepted by the checker).
	LitEq
)

// Literal is one conjunct of a rule body.
type Literal struct {
	Kind LitKind
	// Atom is set for LitPos and LitNeg.
	Atom Atom
	// Left and Right are set for LitNeq and LitEq.
	Left, Right Term
}

// Pos builds a positive literal.
func Pos(a Atom) Literal { return Literal{Kind: LitPos, Atom: a} }

// Neg builds a negated literal.
func Neg(a Atom) Literal { return Literal{Kind: LitNeg, Atom: a} }

// Neq builds an inequality literal.
func Neq(l, r Term) Literal { return Literal{Kind: LitNeq, Left: l, Right: r} }

// Eq builds an equality literal.
func Eq(l, r Term) Literal { return Literal{Kind: LitEq, Left: l, Right: r} }

func (l Literal) String() string {
	switch l.Kind {
	case LitPos:
		return l.Atom.String()
	case LitNeg:
		return "NOT " + l.Atom.String()
	case LitNeq:
		return l.Left.String() + " <> " + l.Right.String()
	case LitEq:
		return l.Left.String() + " = " + l.Right.String()
	}
	return "?"
}

// Vars returns the variable names occurring in the literal.
func (l Literal) Vars() []string {
	switch l.Kind {
	case LitPos, LitNeg:
		return l.Atom.Vars()
	default:
		var out []string
		if l.Left.Var {
			out = append(out, l.Left.Name)
		}
		if l.Right.Var && l.Right.Name != l.Left.Name {
			out = append(out, l.Right.Name)
		}
		return out
	}
}

// Rule is a single datalog rule. Cumulative marks the "+:-" state rules of
// the Spocus model, whose head relation accumulates derived facts across
// transducer steps instead of being recomputed.
type Rule struct {
	Head       Atom
	Body       []Literal
	Cumulative bool
}

func (r Rule) String() string {
	op := ":-"
	if r.Cumulative {
		op = "+:-"
	}
	if len(r.Body) == 0 {
		return r.Head.String() + "."
	}
	parts := make([]string, len(r.Body))
	for i, l := range r.Body {
		parts[i] = l.String()
	}
	return r.Head.String() + " " + op + " " + strings.Join(parts, ", ") + "."
}

// Vars returns all variable names of the rule in order of first occurrence.
func (r Rule) Vars() []string {
	var out []string
	seen := make(map[string]bool)
	add := func(names []string) {
		for _, n := range names {
			if !seen[n] {
				seen[n] = true
				out = append(out, n)
			}
		}
	}
	add(r.Head.Vars())
	for _, l := range r.Body {
		add(l.Vars())
	}
	return out
}

// PositiveVars returns the variables occurring in positive body atoms.
func (r Rule) PositiveVars() map[string]bool {
	out := make(map[string]bool)
	for _, l := range r.Body {
		if l.Kind == LitPos {
			for _, v := range l.Atom.Vars() {
				out[v] = true
			}
		}
	}
	return out
}

// Program is a list of rules evaluated together.
type Program []Rule

func (p Program) String() string {
	parts := make([]string, len(p))
	for i, r := range p {
		parts[i] = r.String()
	}
	return strings.Join(parts, "\n")
}

// HeadPreds returns the set of predicates defined by the program's rule
// heads, sorted.
func (p Program) HeadPreds() []string {
	seen := make(map[string]bool)
	for _, r := range p {
		seen[r.Head.Pred] = true
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// BodyPreds returns the set of predicates used in rule bodies, sorted.
func (p Program) BodyPreds() []string {
	seen := make(map[string]bool)
	for _, r := range p {
		for _, l := range r.Body {
			if l.Kind == LitPos || l.Kind == LitNeg {
				seen[l.Atom.Pred] = true
			}
		}
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// RulesFor returns the rules whose head predicate is pred, in program order.
func (p Program) RulesFor(pred string) Program {
	var out Program
	for _, r := range p {
		if r.Head.Pred == pred {
			out = append(out, r)
		}
	}
	return out
}

// Constants returns the sorted constant symbols occurring in the program.
func (p Program) Constants() []relation.Const {
	seen := make(map[relation.Const]bool)
	addT := func(t Term) {
		if !t.Var {
			seen[relation.Const(t.Name)] = true
		}
	}
	for _, r := range p {
		for _, t := range r.Head.Args {
			addT(t)
		}
		for _, l := range r.Body {
			switch l.Kind {
			case LitPos, LitNeg:
				for _, t := range l.Atom.Args {
					addT(t)
				}
			default:
				addT(l.Left)
				addT(l.Right)
			}
		}
	}
	out := make([]relation.Const, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Rename returns a copy of the program with every predicate name mapped
// through f (applied to heads and body atoms alike).
func (p Program) Rename(f func(string) string) Program {
	out := make(Program, len(p))
	for i, r := range p {
		nr := Rule{Head: Atom{Pred: f(r.Head.Pred), Args: append([]Term(nil), r.Head.Args...)}, Cumulative: r.Cumulative}
		for _, l := range r.Body {
			nl := l
			if l.Kind == LitPos || l.Kind == LitNeg {
				nl.Atom = Atom{Pred: f(l.Atom.Pred), Args: append([]Term(nil), l.Atom.Args...)}
			}
			nr.Body = append(nr.Body, nl)
		}
		out[i] = nr
	}
	return out
}

// SafetyError describes a violation of the range-restriction requirement:
// every variable of a rule must occur in a positive body atom.
type SafetyError struct {
	Rule Rule
	Var  string
}

func (e *SafetyError) Error() string {
	return fmt.Sprintf("unsafe rule %q: variable %s does not occur in a positive body literal", e.Rule, e.Var)
}

// CheckSafe verifies range restriction for every rule of the program.
func (p Program) CheckSafe() error {
	for _, r := range p {
		pos := r.PositiveVars()
		for _, v := range r.Vars() {
			if !pos[v] {
				return &SafetyError{Rule: r, Var: v}
			}
		}
	}
	return nil
}
