package dlog

import (
	"testing"
)

// fuzzSeedPrograms are paper-style rule programs: the short transducer's
// output and error rules (Example 2.3), friendly's service rules
// (Example 2.5), and small programs exercising every surface form the
// parser accepts (facts, cumulative rules, comparisons, quoted constants,
// comments, both terminators).
var fuzzSeedPrograms = []string{
	`past-order(X) +:- order(X);
past-pay(X, Y) +:- pay(X, Y);
past-cancel(X) +:- cancel(X);`,
	`deliver(X) :- past-order(X), price(X, Y), pay(X, Y), NOT past-pay(X, Y), NOT past-cancel(X);`,
	`error :- pay(X, Y), pay(X, Z), Y <> Z;
error :- deliver(X), cancel(X);`,
	`ship(X) :- order(X), catalog(X, 'Time'), NOT held(X).`,
	`greet('hello world') :- member(X), X = gold;`,
	"answer(42).",
	`a :- ;
b :- a;
c(X) :- d(X), X <> e`,
	"% comment line\nf(X) :- g(X). // trailing comment\n# another",
	`p(X, Y) +:- q(X), r(Y), X != Y.`,
	"empty('')",
}

// FuzzParseProgram checks that the parser never panics and that accepted
// programs survive a print/re-parse round trip: the printed form must parse,
// and printing must be a fixed point (so String() is a faithful concrete
// syntax, quoting included).
func FuzzParseProgram(f *testing.F) {
	for _, s := range fuzzSeedPrograms {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := ParseProgram(src)
		if err != nil {
			return
		}
		printed := p.String()
		p2, err := ParseProgram(printed)
		if err != nil {
			t.Fatalf("accepted program does not re-parse:\n input:   %q\n printed: %q\n error:   %v", src, printed, err)
		}
		if again := p2.String(); again != printed {
			t.Fatalf("String() is not a fixed point:\n input:  %q\n first:  %q\n second: %q", src, printed, again)
		}
		if len(p2) != len(p) {
			t.Fatalf("re-parse changed rule count from %d to %d:\n input: %q", len(p), len(p2), src)
		}
	})
}
