package dlog

import (
	"fmt"
	"sort"

	"repro/internal/relation"
)

// DB is the evaluator's view of the extensional database: a lookup from
// relation name to a (possibly nil) finite relation.
type DB interface {
	Rel(name string) *relation.Rel
}

// MultiDB looks relations up across several instances in order; the first
// instance that holds the name wins. The transducer engine uses this to
// present input ∪ state ∪ database as one EDB (the schemas are disjoint).
type MultiDB []relation.Instance

// Rel implements DB.
func (m MultiDB) Rel(name string) *relation.Rel {
	for _, in := range m {
		if r, ok := in[name]; ok {
			return r
		}
	}
	return nil
}

// Binding maps variable names to constants during rule evaluation.
type Binding map[string]relation.Const

func (b Binding) clone() Binding {
	c := make(Binding, len(b))
	for k, v := range b {
		c[k] = v
	}
	return c
}

// resolve returns the constant a term denotes under the binding, and whether
// it is determined.
func (b Binding) resolve(t Term) (relation.Const, bool) {
	if !t.Var {
		return relation.Const(t.Name), true
	}
	c, ok := b[t.Name]
	return c, ok
}

// EvalError reports an evaluation failure (an unsafe or recursive program
// reaching the evaluator, typically a missing CheckSafe call).
type EvalError struct{ Msg string }

func (e *EvalError) Error() string { return "dlog: " + e.Msg }

// Eval evaluates a nonrecursive program bottom-up over the given EDB and
// returns the derived instance (IDB relations only). Rules may reference
// other head predicates as long as the dependency graph is acyclic; negation
// may be applied to any predicate that is either extensional or fully
// evaluated in an earlier layer. Cumulative markers are ignored here — the
// transducer engine applies cumulative semantics across steps.
func Eval(p Program, edb DB) (relation.Instance, error) {
	layers, err := Layers(p)
	if err != nil {
		return nil, err
	}
	derived := relation.NewInstance()
	look := lookupChain{derived, edb}
	for _, layer := range layers {
		// Within a layer predicates are independent (no cycles), so a single
		// pass suffices.
		for _, pred := range layer {
			for _, r := range p.RulesFor(pred) {
				if err := evalRule(r, look, derived); err != nil {
					return nil, err
				}
			}
		}
	}
	return derived, nil
}

// lookupChain consults the derived instance first, then the EDB.
type lookupChain struct {
	derived relation.Instance
	edb     DB
}

func (lc lookupChain) Rel(name string) *relation.Rel {
	if r, ok := lc.derived[name]; ok {
		return r
	}
	if lc.edb == nil {
		return nil
	}
	return lc.edb.Rel(name)
}

// Layers computes an evaluation order for the program's head predicates:
// a list of layers such that every body reference from a rule in layer i
// goes to an extensional predicate or a head predicate in a layer < i
// (positive references within the same layer are also forbidden — the
// program must be nonrecursive). It returns an error on cyclic dependencies.
func Layers(p Program) ([][]string, error) {
	heads := make(map[string]bool)
	for _, r := range p {
		heads[r.Head.Pred] = true
	}
	// deps[h] = set of head predicates h's rules reference.
	deps := make(map[string]map[string]bool)
	for h := range heads {
		deps[h] = make(map[string]bool)
	}
	for _, r := range p {
		for _, l := range r.Body {
			if l.Kind != LitPos && l.Kind != LitNeg {
				continue
			}
			if heads[l.Atom.Pred] {
				deps[r.Head.Pred][l.Atom.Pred] = true
			}
		}
	}
	// Kahn's algorithm over the predicate dependency graph.
	placed := make(map[string]bool)
	var layers [][]string
	for len(placed) < len(heads) {
		var layer []string
		for h := range heads {
			if placed[h] {
				continue
			}
			ready := true
			for d := range deps[h] {
				if !placed[d] && d != "" {
					ready = false
					break
				}
			}
			if ready {
				layer = append(layer, h)
			}
		}
		if len(layer) == 0 {
			remaining := make([]string, 0)
			for h := range heads {
				if !placed[h] {
					remaining = append(remaining, h)
				}
			}
			sort.Strings(remaining)
			return nil, &EvalError{Msg: fmt.Sprintf("recursive program: cycle among predicates %v", remaining)}
		}
		sort.Strings(layer)
		for _, h := range layer {
			placed[h] = true
		}
		layers = append(layers, layer)
	}
	return layers, nil
}

// evalRule derives all heads of r over the lookup and adds them to out.
func evalRule(r Rule, db DB, out relation.Instance) error {
	lits := orderBody(r.Body)
	head := r.Head
	emit := func(b Binding) error {
		t := make(relation.Tuple, len(head.Args))
		for i, a := range head.Args {
			c, ok := b.resolve(a)
			if !ok {
				return &EvalError{Msg: fmt.Sprintf("unsafe rule %q: head variable %s unbound", r, a.Name)}
			}
			t[i] = c
		}
		out.Ensure(head.Pred, len(head.Args)).Add(t)
		return nil
	}
	return search(lits, 0, make(Binding), db, emit)
}

// EvalRuleBindings enumerates the satisfying bindings of a rule body over
// the EDB, calling f for each; evaluation stops early if f returns false.
// It is used by the verifier to enumerate witnesses.
func EvalRuleBindings(body []Literal, db DB, f func(Binding) bool) error {
	lits := orderBody(body)
	stop := &EvalError{Msg: "stopped"}
	err := search(lits, 0, make(Binding), db, func(b Binding) error {
		if !f(b.clone()) {
			return stop
		}
		return nil
	})
	if err == stop {
		return nil
	}
	return err
}

// orderBody reorders literals into a statically safe evaluation order:
// positive atoms keep the author's relative order (a reasonable join order
// for hand-written rules), while negated atoms and comparisons are placed
// at the earliest point where every one of their variables is bound — and
// never before. Equality literals participate in binding: X = c (or X = Y
// with Y bound) resolves X, which can in turn make a negation evaluable, so
// the discharge loop iterates until no more filters can be placed before
// the next join. Literals that never become evaluable (an unsafe body) are
// appended at the end, where the search loop reports the unsafe-body error.
//
// The search loop re-checks boundness dynamically as a backstop, but the
// static order guarantees on its own that a negated literal is never
// scheduled ahead of the positive literals that ground it, whatever order
// the author wrote the body in.
func orderBody(body []Literal) []Literal {
	bound := make(map[string]bool)
	resolved := func(t Term) bool { return !t.Var || bound[t.Name] }
	evaluable := func(l Literal) bool {
		switch l.Kind {
		case LitNeg, LitNeq:
			for _, v := range l.Vars() {
				if !bound[v] {
					return false
				}
			}
			return true
		case LitEq:
			return resolved(l.Left) || resolved(l.Right)
		}
		return false
	}

	out := make([]Literal, 0, len(body))
	pending := make([]Literal, len(body))
	copy(pending, body)
	for len(pending) > 0 {
		// Discharge every evaluable filter before the next join; an equality
		// may bind a variable that unlocks a negation, so loop to fixpoint.
		progressed := true
		for progressed {
			progressed = false
			for i := 0; i < len(pending); i++ {
				l := pending[i]
				if l.Kind == LitPos || !evaluable(l) {
					continue
				}
				if l.Kind == LitEq {
					if l.Left.Var {
						bound[l.Left.Name] = true
					}
					if l.Right.Var {
						bound[l.Right.Name] = true
					}
				}
				out = append(out, l)
				pending = append(pending[:i], pending[i+1:]...)
				progressed = true
				i--
			}
		}
		// Next positive atom in author order binds its variables.
		next := -1
		for i, l := range pending {
			if l.Kind == LitPos {
				next = i
				break
			}
		}
		if next == -1 {
			// Only unevaluable filters remain: unsafe body. Append them so
			// the search loop surfaces the error.
			out = append(out, pending...)
			break
		}
		l := pending[next]
		for _, v := range l.Vars() {
			bound[v] = true
		}
		out = append(out, l)
		pending = append(pending[:next], pending[next+1:]...)
	}
	return out
}

// search enumerates bindings satisfying lits[done:] by picking, at each
// step, an evaluable literal: any positive atom, or a negative/comparison
// literal whose variables are all bound (negatives are checked eagerly once
// bound to prune the search).
func search(lits []Literal, _ int, b Binding, db DB, emit func(Binding) error) error {
	// Partition remaining literals into checked and pending.
	return searchRec(lits, make([]bool, len(lits)), 0, b, db, emit)
}

func searchRec(lits []Literal, used []bool, nUsed int, b Binding, db DB, emit func(Binding) error) error {
	if nUsed == len(lits) {
		return emit(b)
	}
	// First, greedily discharge every fully-bound non-positive literal.
	for i, l := range lits {
		if used[i] || l.Kind == LitPos {
			continue
		}
		switch l.Kind {
		case LitNeg:
			if groundAtom(l.Atom, b) {
				ok, t := atomTuple(l.Atom, b)
				if !ok {
					continue
				}
				if db.Rel(l.Atom.Pred).Has(t) {
					return nil // negation fails: prune
				}
				used[i] = true
				err := searchRec(lits, used, nUsed+1, b, db, emit)
				used[i] = false
				return err
			}
		case LitNeq:
			lc, lok := b.resolve(l.Left)
			rc, rok := b.resolve(l.Right)
			if lok && rok {
				if lc == rc {
					return nil
				}
				used[i] = true
				err := searchRec(lits, used, nUsed+1, b, db, emit)
				used[i] = false
				return err
			}
		case LitEq:
			lc, lok := b.resolve(l.Left)
			rc, rok := b.resolve(l.Right)
			switch {
			case lok && rok:
				if lc != rc {
					return nil
				}
				used[i] = true
				err := searchRec(lits, used, nUsed+1, b, db, emit)
				used[i] = false
				return err
			case lok && !rok:
				b[l.Right.Name] = lc
				used[i] = true
				err := searchRec(lits, used, nUsed+1, b, db, emit)
				used[i] = false
				delete(b, l.Right.Name)
				return err
			case !lok && rok:
				b[l.Left.Name] = rc
				used[i] = true
				err := searchRec(lits, used, nUsed+1, b, db, emit)
				used[i] = false
				delete(b, l.Left.Name)
				return err
			}
		}
	}
	// Next positive atom in author order; choose the one with the most
	// bound arguments to keep fanout low.
	best := -1
	bestBound := -1
	for i, l := range lits {
		if used[i] || l.Kind != LitPos {
			continue
		}
		bound := 0
		for _, a := range l.Atom.Args {
			if _, ok := b.resolve(a); ok {
				bound++
			}
		}
		if bound > bestBound {
			best, bestBound = i, bound
		}
	}
	if best == -1 {
		// Only unbound negatives/comparisons remain: unsafe body.
		for i, l := range lits {
			if !used[i] {
				return &EvalError{Msg: fmt.Sprintf("unsafe body: literal %q has unbound variables", l)}
			}
		}
		return emit(b)
	}
	l := lits[best]
	used[best] = true
	rel := db.Rel(l.Atom.Pred)
	var outerErr error
	visit := func(t relation.Tuple) bool {
		if len(t) != len(l.Atom.Args) {
			return true
		}
		newVars := match(l.Atom.Args, t, b)
		if newVars == nil {
			return true
		}
		err := searchRec(lits, used, nUsed+1, b, db, emit)
		for _, v := range newVars {
			delete(b, v)
		}
		if err != nil {
			outerErr = err
			return false
		}
		return true
	}
	if rel != nil {
		// Use the first-column index when the first argument is already
		// bound — the common join pattern in the paper's rules.
		if len(l.Atom.Args) > 0 {
			if c, ok := b.resolve(l.Atom.Args[0]); ok {
				rel.RangeFirst(c, visit)
				used[best] = false
				return outerErr
			}
		}
		rel.Range(visit)
	}
	used[best] = false
	return outerErr
}

// match extends b to unify args with tuple t. On success it returns the list
// of newly-bound variable names (possibly empty but non-nil); on mismatch it
// undoes its bindings and returns nil.
func match(args []Term, t relation.Tuple, b Binding) []string {
	newVars := []string{}
	for i, a := range args {
		c, ok := b.resolve(a)
		if ok {
			if c != t[i] {
				for _, v := range newVars {
					delete(b, v)
				}
				return nil
			}
			continue
		}
		b[a.Name] = t[i]
		newVars = append(newVars, a.Name)
	}
	return newVars
}

func groundAtom(a Atom, b Binding) bool {
	for _, t := range a.Args {
		if _, ok := b.resolve(t); !ok {
			return false
		}
	}
	return true
}

func atomTuple(a Atom, b Binding) (bool, relation.Tuple) {
	t := make(relation.Tuple, len(a.Args))
	for i, arg := range a.Args {
		c, ok := b.resolve(arg)
		if !ok {
			return false, nil
		}
		t[i] = c
	}
	return true, t
}

// EvalStratified evaluates a possibly recursive program under stratified
// semantics: strata are computed so that negative references cross strictly
// downward; within a stratum, rules are iterated to a fixpoint (naive
// evaluation). This extension is beyond the Spocus fragment and is used to
// contrast expressiveness in tests and examples.
func EvalStratified(p Program, edb DB) (relation.Instance, error) {
	strata, err := Stratify(p)
	if err != nil {
		return nil, err
	}
	derived := relation.NewInstance()
	look := lookupChain{derived, edb}
	for _, stratum := range strata {
		inStratum := make(map[string]bool)
		for _, pred := range stratum {
			inStratum[pred] = true
		}
		for {
			before := derived.Len()
			for _, pred := range stratum {
				for _, r := range p.RulesFor(pred) {
					if err := evalRule(r, look, derived); err != nil {
						return nil, err
					}
				}
			}
			if derived.Len() == before {
				break
			}
		}
	}
	return derived, nil
}

// Stratify partitions the program's head predicates into strata such that
// positive references stay within or below a stratum and negative references
// go strictly below. It returns an error if no stratification exists (a
// cycle through negation).
func Stratify(p Program) ([][]string, error) {
	heads := make(map[string]bool)
	for _, r := range p {
		heads[r.Head.Pred] = true
	}
	// stratum numbers via iterated relaxation.
	level := make(map[string]int)
	for h := range heads {
		level[h] = 0
	}
	n := len(heads)
	for iter := 0; iter <= n*n+1; iter++ {
		changed := false
		for _, r := range p {
			h := r.Head.Pred
			for _, l := range r.Body {
				if l.Kind != LitPos && l.Kind != LitNeg {
					continue
				}
				q := l.Atom.Pred
				if !heads[q] {
					continue
				}
				want := level[q]
				if l.Kind == LitNeg {
					want = level[q] + 1
				}
				if level[h] < want {
					level[h] = want
					changed = true
					if level[h] > n {
						return nil, &EvalError{Msg: fmt.Sprintf("program is not stratifiable: negation cycle through %s", h)}
					}
				}
			}
		}
		if !changed {
			break
		}
	}
	maxLevel := 0
	for _, lv := range level {
		if lv > maxLevel {
			maxLevel = lv
		}
	}
	strata := make([][]string, maxLevel+1)
	for h, lv := range level {
		strata[lv] = append(strata[lv], h)
	}
	for _, s := range strata {
		sort.Strings(s)
	}
	return strata, nil
}

// CheckSemipositive verifies that the program is in the Spocus output
// fragment: every body atom (positive or negative) refers only to predicates
// in allowed (the input, state, and database relations) — in particular no
// output predicate appears in any body — and the program passes CheckSafe.
func CheckSemipositive(p Program, allowed func(string) bool) error {
	if err := p.CheckSafe(); err != nil {
		return err
	}
	for _, r := range p {
		for _, l := range r.Body {
			if l.Kind != LitPos && l.Kind != LitNeg {
				continue
			}
			if !allowed(l.Atom.Pred) {
				return fmt.Errorf("rule %q: body predicate %s is not an input, state, or database relation", r, l.Atom.Pred)
			}
		}
	}
	return nil
}
