package dlog

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/relation"
)

func inst(facts ...string) relation.Instance {
	in := relation.NewInstance()
	for _, f := range facts {
		name := f
		var args relation.Tuple
		if i := strings.IndexByte(f, '('); i >= 0 {
			name = f[:i]
			inner := strings.TrimSuffix(f[i+1:], ")")
			if inner != "" {
				for _, part := range strings.Split(inner, ",") {
					args = append(args, relation.Const(strings.TrimSpace(part)))
				}
			}
		}
		in.Add(name, args)
	}
	return in
}

func TestParseShortOutputRules(t *testing.T) {
	src := `
		sendbill(X,Y) :- order(X), price(X,Y), NOT past-pay(X,Y);
		deliver(X) :- past-order(X), price(X,Y), pay(X,Y), NOT past-pay(X,Y).
	`
	p, err := ParseProgram(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(p) != 2 {
		t.Fatalf("got %d rules, want 2", len(p))
	}
	if p[0].Head.Pred != "sendbill" || len(p[0].Body) != 3 {
		t.Errorf("rule 0 wrong: %v", p[0])
	}
	if p[0].Body[2].Kind != LitNeg || p[0].Body[2].Atom.Pred != "past-pay" {
		t.Errorf("NOT literal not parsed: %v", p[0].Body[2])
	}
	if p[0].Cumulative {
		t.Error("output rule marked cumulative")
	}
}

func TestParseCumulativeRule(t *testing.T) {
	r, err := ParseRule("past-order(X) +:- order(X);")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if !r.Cumulative {
		t.Error("+:- not detected")
	}
	if r.Head.Pred != "past-order" || !r.Head.Args[0].Var {
		t.Errorf("head wrong: %v", r.Head)
	}
}

func TestParseInequality(t *testing.T) {
	r, err := ParseRule("violF :- past-R(X,Y), past-R(X,Y2), Y <> Y2.")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(r.Body) != 3 || r.Body[2].Kind != LitNeq {
		t.Fatalf("inequality not parsed: %v", r)
	}
	r2, err := ParseRule("p :- q(X), X != a;")
	if err != nil {
		t.Fatalf("parse !=: %v", err)
	}
	if r2.Body[1].Kind != LitNeq || r2.Body[1].Right.Name != "a" {
		t.Errorf("!= literal wrong: %v", r2.Body[1])
	}
}

func TestParseEqualityAndQuoted(t *testing.T) {
	r, err := ParseRule("p(X) :- q(X), X = 'Time';")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if r.Body[1].Kind != LitEq || r.Body[1].Right.Name != "Time" || r.Body[1].Right.Var {
		t.Errorf("quoted constant wrong: %v", r.Body[1])
	}
}

func TestParsePropositionalFact(t *testing.T) {
	p, err := ParseProgram("ok; error :- bad.")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(p) != 2 || len(p[0].Body) != 0 || p[0].Head.Pred != "ok" {
		t.Errorf("facts wrong: %v", p)
	}
}

func TestParseComments(t *testing.T) {
	p, err := ParseProgram("% comment\n// another\n# third\np :- q; % trailing\n")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(p) != 1 {
		t.Errorf("got %d rules, want 1", len(p))
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"p :- q(",            // unbalanced
		"p :- NOT;",          // NOT without atom
		"p :- X;",            // bare variable
		"p :- q(X) r(X);",    // missing comma
		"P(x) :- q(x);",      // uppercase predicate
		"p :- 'unterminated", // bad string
		"p :- q(X), <> Y;",   // comparison without lhs
	}
	for _, src := range cases {
		if _, err := ParseProgram(src); err == nil {
			t.Errorf("ParseProgram(%q) succeeded, want error", src)
		}
	}
}

func TestCheckSafe(t *testing.T) {
	ok := MustParseProgram("p(X) :- q(X), NOT r(X);")
	if err := ok.CheckSafe(); err != nil {
		t.Errorf("safe program rejected: %v", err)
	}
	bad := MustParseProgram("p(X) :- NOT r(X);")
	if err := bad.CheckSafe(); err == nil {
		t.Error("unsafe head variable accepted")
	}
	bad2 := MustParseProgram("p :- q(X), X <> Y;")
	if err := bad2.CheckSafe(); err == nil {
		t.Error("unsafe inequality variable accepted")
	}
}

func TestEvalShortRules(t *testing.T) {
	// Step 2 of the paper's Fig. 1: past-order={time,newsweek}, pay(time,855),
	// price as given; deliver(time) should be derived.
	p := MustParseProgram(`
		sendbill(X,Y) :- order(X), price(X,Y), NOT past-pay(X,Y);
		deliver(X) :- past-order(X), price(X,Y), pay(X,Y), NOT past-pay(X,Y);
	`)
	db := inst("price(time,855)", "price(newsweek,845)", "price(le-monde,8350)")
	state := inst("past-order(time)", "past-order(newsweek)")
	input := inst("pay(time,855)")
	out, err := Eval(p, MultiDB{input, state, db})
	if err != nil {
		t.Fatalf("eval: %v", err)
	}
	if !out.Has("deliver", relation.Tuple{"time"}) {
		t.Errorf("deliver(time) not derived; out=%s", out)
	}
	if out.Rel("sendbill").Len() != 0 {
		t.Errorf("sendbill should be empty (no order this step); out=%s", out)
	}
}

func TestEvalNegationAndInequality(t *testing.T) {
	p := MustParseProgram(`
		viol(X) :- r(X,Y), r(X,Y2), Y <> Y2;
		only(X) :- r(X,Y), NOT bad(X);
	`)
	edb := inst("r(a,1)", "r(a,2)", "r(b,1)", "bad(b)")
	out, err := Eval(p, MultiDB{edb})
	if err != nil {
		t.Fatalf("eval: %v", err)
	}
	if !out.Has("viol", relation.Tuple{"a"}) || out.Has("viol", relation.Tuple{"b"}) {
		t.Errorf("viol wrong: %s", out)
	}
	if !out.Has("only", relation.Tuple{"a"}) || out.Has("only", relation.Tuple{"b"}) {
		t.Errorf("only wrong: %s", out)
	}
}

func TestEvalEqualityBinds(t *testing.T) {
	p := MustParseProgram(`pick(Y) :- r(X,Y), X = a;`)
	edb := inst("r(a,1)", "r(b,2)")
	out, err := Eval(p, MultiDB{edb})
	if err != nil {
		t.Fatalf("eval: %v", err)
	}
	if !out.Has("pick", relation.Tuple{"1"}) || out.Has("pick", relation.Tuple{"2"}) {
		t.Errorf("pick wrong: %s", out)
	}
}

func TestEvalLayeredIDB(t *testing.T) {
	// b depends on a; nonrecursive layering must evaluate a first.
	p := MustParseProgram(`
		a(X) :- e(X);
		b(X) :- a(X), NOT f(X);
	`)
	edb := inst("e(1)", "e(2)", "f(2)")
	out, err := Eval(p, MultiDB{edb})
	if err != nil {
		t.Fatalf("eval: %v", err)
	}
	if !out.Has("b", relation.Tuple{"1"}) || out.Has("b", relation.Tuple{"2"}) {
		t.Errorf("b wrong: %s", out)
	}
}

func TestEvalRejectsRecursion(t *testing.T) {
	p := MustParseProgram(`
		t(X,Y) :- e(X,Y);
		t(X,Y) :- t(X,Z), e(Z,Y);
	`)
	if _, err := Eval(p, MultiDB{inst("e(1,2)")}); err == nil {
		t.Error("recursive program accepted by nonrecursive Eval")
	}
}

func TestEvalStratifiedTransitiveClosure(t *testing.T) {
	p := MustParseProgram(`
		t(X,Y) :- e(X,Y);
		t(X,Y) :- t(X,Z), e(Z,Y);
		unreach(X,Y) :- node(X), node(Y), NOT t(X,Y);
	`)
	edb := inst("e(1,2)", "e(2,3)", "node(1)", "node(2)", "node(3)")
	out, err := EvalStratified(p, MultiDB{edb})
	if err != nil {
		t.Fatalf("eval: %v", err)
	}
	if !out.Has("t", relation.Tuple{"1", "3"}) {
		t.Errorf("closure missing 1->3: %s", out)
	}
	if !out.Has("unreach", relation.Tuple{"3", "1"}) || out.Has("unreach", relation.Tuple{"1", "3"}) {
		t.Errorf("unreach wrong: %s", out)
	}
}

func TestStratifyRejectsNegationCycle(t *testing.T) {
	p := MustParseProgram(`
		win(X) :- move(X,Y), NOT win(Y);
	`)
	if _, err := Stratify(p); err == nil {
		t.Error("negation cycle accepted")
	}
}

func TestCheckSemipositive(t *testing.T) {
	p := MustParseProgram(`deliver(X) :- past-order(X), pay(X,Y), NOT past-pay(X,Y);`)
	allowed := func(n string) bool { return n != "deliver" }
	if err := CheckSemipositive(p, allowed); err != nil {
		t.Errorf("valid Spocus output program rejected: %v", err)
	}
	p2 := MustParseProgram(`a(X) :- e(X); b(X) :- a(X);`)
	allowedEDB := func(n string) bool { return n == "e" }
	if err := CheckSemipositive(p2, allowedEDB); err == nil {
		t.Error("output predicate in body accepted by semipositive check")
	}
}

func TestEvalZeroAryHeads(t *testing.T) {
	p := MustParseProgram(`ok :- a(X1), b(X2); error :- a(X), b(X);`)
	out, err := Eval(p, MultiDB{inst("a(1)", "b(2)")})
	if err != nil {
		t.Fatalf("eval: %v", err)
	}
	if !out.Has("ok", relation.Tuple{}) {
		t.Error("ok not derived")
	}
	if out.Has("error", relation.Tuple{}) {
		t.Error("error wrongly derived")
	}
}

func TestEvalRuleBindingsEnumerates(t *testing.T) {
	body := MustParseProgram(`x :- r(X,Y), NOT s(X);`)[0].Body
	edb := inst("r(a,1)", "r(b,2)", "r(c,3)", "s(b)")
	var got []string
	err := EvalRuleBindings(body, MultiDB{edb}, func(b Binding) bool {
		got = append(got, string(b["X"])+string(b["Y"]))
		return true
	})
	if err != nil {
		t.Fatalf("bindings: %v", err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d bindings, want 2: %v", len(got), got)
	}
}

func TestEvalRuleBindingsEarlyStop(t *testing.T) {
	body := MustParseProgram(`x :- r(X);`)[0].Body
	edb := inst("r(a)", "r(b)", "r(c)")
	count := 0
	if err := EvalRuleBindings(body, MultiDB{edb}, func(Binding) bool {
		count++
		return false
	}); err != nil {
		t.Fatalf("bindings: %v", err)
	}
	if count != 1 {
		t.Errorf("early stop ignored: %d calls", count)
	}
}

func TestProgramRename(t *testing.T) {
	p := MustParseProgram(`a(X) :- b(X), NOT c(X);`)
	q := p.Rename(func(n string) string { return n + "_1" })
	if q[0].Head.Pred != "a_1" || q[0].Body[0].Atom.Pred != "b_1" || q[0].Body[1].Atom.Pred != "c_1" {
		t.Errorf("rename wrong: %v", q)
	}
	// Original untouched.
	if p[0].Head.Pred != "a" {
		t.Error("rename mutated original")
	}
}

func TestProgramConstants(t *testing.T) {
	p := MustParseProgram(`a(X) :- b(X, c1), X <> c2; d(k);`)
	got := p.Constants()
	want := []relation.Const{"c1", "c2", "k"}
	if len(got) != len(want) {
		t.Fatalf("Constants = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Constants = %v, want %v", got, want)
		}
	}
}

func TestRoundTripStringParse(t *testing.T) {
	src := `deliver(X) :- past-order(X), price(X,Y), pay(X,Y), NOT past-pay(X,Y);`
	p := MustParseProgram(src)
	p2 := MustParseProgram(p.String())
	if p.String() != p2.String() {
		t.Errorf("round trip changed program:\n%s\nvs\n%s", p, p2)
	}
}

// bruteEval evaluates a single-rule program by enumerating all bindings over
// the active domain — an oracle for the property test below.
func bruteEval(r Rule, edb relation.Instance) relation.Instance {
	dom := edb.ActiveDomain()
	vars := r.Vars()
	out := relation.NewInstance()
	out.Ensure(r.Head.Pred, len(r.Head.Args))
	var rec func(i int, b Binding)
	rec = func(i int, b Binding) {
		if i == len(vars) {
			for _, l := range r.Body {
				switch l.Kind {
				case LitPos, LitNeg:
					okt, t := atomTuple(l.Atom, b)
					if !okt {
						return
					}
					has := edb.Has(l.Atom.Pred, t)
					if l.Kind == LitPos && !has || l.Kind == LitNeg && has {
						return
					}
				case LitNeq:
					lc, _ := b.resolve(l.Left)
					rc, _ := b.resolve(l.Right)
					if lc == rc {
						return
					}
				case LitEq:
					lc, _ := b.resolve(l.Left)
					rc, _ := b.resolve(l.Right)
					if lc != rc {
						return
					}
				}
			}
			_, ht := atomTuple(r.Head, b)
			out.Add(r.Head.Pred, ht)
			return
		}
		for _, c := range dom {
			b[vars[i]] = c
			rec(i+1, b)
		}
		delete(b, vars[i])
	}
	rec(0, make(Binding))
	return out
}

// randomRuleAndEDB builds a random safe single-rule program plus EDB.
func randomRuleAndEDB(r *rand.Rand) (Rule, relation.Instance) {
	preds := []string{"p", "q"}
	vars := []string{"X", "Y", "Z"}
	nPos := 1 + r.Intn(2)
	var body []Literal
	usedVars := map[string]bool{}
	for i := 0; i < nPos; i++ {
		args := []Term{V(vars[r.Intn(len(vars))]), V(vars[r.Intn(len(vars))])}
		for _, a := range args {
			usedVars[a.Name] = true
		}
		body = append(body, Pos(NewAtom(preds[r.Intn(len(preds))], args...)))
	}
	var posVars []string
	for v := range usedVars {
		posVars = append(posVars, v)
	}
	// Possibly one negative literal and one inequality over bound vars.
	if r.Intn(2) == 0 {
		body = append(body, Neg(NewAtom(preds[r.Intn(len(preds))],
			V(posVars[r.Intn(len(posVars))]), V(posVars[r.Intn(len(posVars))]))))
	}
	if r.Intn(2) == 0 && len(posVars) >= 2 {
		body = append(body, Neq(V(posVars[0]), V(posVars[len(posVars)-1])))
	}
	head := NewAtom("h", V(posVars[r.Intn(len(posVars))]))
	rule := Rule{Head: head, Body: body}

	edb := relation.NewInstance()
	consts := []relation.Const{"a", "b", "c"}
	for _, p := range preds {
		edb.Ensure(p, 2)
		n := r.Intn(5)
		for i := 0; i < n; i++ {
			edb.Add(p, relation.Tuple{consts[r.Intn(3)], consts[r.Intn(3)]})
		}
	}
	if edb.Len() == 0 {
		edb.Add("p", relation.Tuple{"a", "b"})
	}
	return rule, edb
}

func TestPropEvalMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rule, edb := randomRuleAndEDB(r)
		got, err := Eval(Program{rule}, MultiDB{edb})
		if err != nil {
			return false
		}
		want := bruteEval(rule, edb)
		return got.Equal(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropPositiveProgramMonotone(t *testing.T) {
	// For negation-free rules, adding EDB facts never removes derived facts.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rule, edb := randomRuleAndEDB(r)
		// Strip negative literals to get a positive rule.
		var body []Literal
		for _, l := range rule.Body {
			if l.Kind != LitNeg {
				body = append(body, l)
			}
		}
		rule.Body = body
		small, err := Eval(Program{rule}, MultiDB{edb})
		if err != nil {
			return false
		}
		bigger := edb.Clone()
		bigger.Add("p", relation.Tuple{"c", "c"})
		large, err := Eval(Program{rule}, MultiDB{bigger})
		if err != nil {
			return false
		}
		return small.SubsetOf(large)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
