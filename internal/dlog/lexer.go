package dlog

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

// TokKind enumerates token kinds of the rule language (shared with the
// transducer program syntax in package core, which embeds this lexer).
type TokKind int

const (
	// TokEOF marks end of input.
	TokEOF TokKind = iota
	// TokIdent is an identifier or numeric constant (e.g. order, past-pay, 855).
	TokIdent
	// TokVar is a variable (identifier beginning with an upper-case letter
	// or underscore).
	TokVar
	// TokString is a quoted constant, e.g. 'Time'.
	TokString
	// TokLParen is "(".
	TokLParen
	// TokRParen is ")".
	TokRParen
	// TokComma is ",".
	TokComma
	// TokSemi is ";".
	TokSemi
	// TokPeriod is "." used as an alternative rule terminator.
	TokPeriod
	// TokColon is ":" (used by schema declarations).
	TokColon
	// TokDefine is ":-".
	TokDefine
	// TokCumDefine is "+:-".
	TokCumDefine
	// TokNeq is "<>" or "!=".
	TokNeq
	// TokEq is "=".
	TokEq
	// TokNot is the keyword NOT (case-insensitive).
	TokNot
	// TokSlash is "/" (used by arity annotations such as price/2).
	TokSlash
)

func (k TokKind) String() string {
	switch k {
	case TokEOF:
		return "end of input"
	case TokIdent:
		return "identifier"
	case TokVar:
		return "variable"
	case TokString:
		return "string"
	case TokLParen:
		return "'('"
	case TokRParen:
		return "')'"
	case TokComma:
		return "','"
	case TokSemi:
		return "';'"
	case TokPeriod:
		return "'.'"
	case TokColon:
		return "':'"
	case TokDefine:
		return "':-'"
	case TokCumDefine:
		return "'+:-'"
	case TokNeq:
		return "'<>'"
	case TokEq:
		return "'='"
	case TokNot:
		return "NOT"
	case TokSlash:
		return "'/'"
	}
	return "?"
}

// Token is a lexed token with its source line for error reporting.
type Token struct {
	Kind TokKind
	Text string
	Line int
}

// Lexer tokenizes the rule and transducer-program languages. Comments run
// from "//", "%", or "#" to end of line.
type Lexer struct {
	src  string
	pos  int
	line int
	tok  Token
	err  error
}

// NewLexer creates a lexer over src and advances to the first token.
func NewLexer(src string) *Lexer {
	l := &Lexer{src: src, line: 1}
	l.Next()
	return l
}

// Tok returns the current token.
func (l *Lexer) Tok() Token { return l.tok }

// Err returns the first lexing error encountered, if any.
func (l *Lexer) Err() error { return l.err }

// Errorf records and returns a parse error annotated with the current line.
func (l *Lexer) Errorf(format string, args ...any) error {
	err := fmt.Errorf("line %d: %s", l.tok.Line, fmt.Sprintf(format, args...))
	if l.err == nil {
		l.err = err
	}
	return err
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_'
}

func isIdentRune(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '-' || r == '*' || r == '\''
}

// Next advances to the next token and returns it.
func (l *Lexer) Next() Token {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '%' || c == '#':
			l.skipLine()
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			l.skipLine()
		default:
			goto scan
		}
	}
scan:
	if l.pos >= len(l.src) {
		l.tok = Token{Kind: TokEOF, Line: l.line}
		return l.tok
	}
	start := l.pos
	c, csize := utf8.DecodeRuneInString(l.src[l.pos:])
	switch {
	case c == '(':
		l.pos++
		l.tok = Token{Kind: TokLParen, Text: "(", Line: l.line}
	case c == ')':
		l.pos++
		l.tok = Token{Kind: TokRParen, Text: ")", Line: l.line}
	case c == ',':
		l.pos++
		l.tok = Token{Kind: TokComma, Text: ",", Line: l.line}
	case c == ';':
		l.pos++
		l.tok = Token{Kind: TokSemi, Text: ";", Line: l.line}
	case c == '.':
		l.pos++
		l.tok = Token{Kind: TokPeriod, Text: ".", Line: l.line}
	case c == '=':
		l.pos++
		l.tok = Token{Kind: TokEq, Text: "=", Line: l.line}
	case c == '<' && strings.HasPrefix(l.src[l.pos:], "<>"):
		l.pos += 2
		l.tok = Token{Kind: TokNeq, Text: "<>", Line: l.line}
	case c == '!' && strings.HasPrefix(l.src[l.pos:], "!="):
		l.pos += 2
		l.tok = Token{Kind: TokNeq, Text: "!=", Line: l.line}
	case c == '/':
		l.pos++
		l.tok = Token{Kind: TokSlash, Text: "/", Line: l.line}
	case c == '+' && strings.HasPrefix(l.src[l.pos:], "+:-"):
		l.pos += 3
		l.tok = Token{Kind: TokCumDefine, Text: "+:-", Line: l.line}
	case c == ':' && strings.HasPrefix(l.src[l.pos:], ":-"):
		l.pos += 2
		l.tok = Token{Kind: TokDefine, Text: ":-", Line: l.line}
	case c == ':':
		l.pos++
		l.tok = Token{Kind: TokColon, Text: ":", Line: l.line}
	case c == '\'':
		l.pos++
		for l.pos < len(l.src) && l.src[l.pos] != '\'' && l.src[l.pos] != '\n' {
			l.pos++
		}
		if l.pos >= len(l.src) || l.src[l.pos] != '\'' {
			l.Errorf("unterminated quoted constant")
			l.tok = Token{Kind: TokEOF, Line: l.line}
			return l.tok
		}
		text := l.src[start+1 : l.pos]
		l.pos++
		l.tok = Token{Kind: TokString, Text: text, Line: l.line}
	case isIdentStart(c):
		for l.pos < len(l.src) {
			r, size := utf8.DecodeRuneInString(l.src[l.pos:])
			if !isIdentRune(r) {
				break
			}
			l.pos += size
		}
		text := l.src[start:l.pos]
		first, _ := utf8.DecodeRuneInString(text)
		switch {
		case strings.EqualFold(text, "not"):
			l.tok = Token{Kind: TokNot, Text: text, Line: l.line}
		case first == '_' || unicode.IsUpper(first):
			l.tok = Token{Kind: TokVar, Text: text, Line: l.line}
		default:
			l.tok = Token{Kind: TokIdent, Text: text, Line: l.line}
		}
	default:
		l.Errorf("unexpected character %q", c)
		l.pos += csize
		l.tok = Token{Kind: TokEOF, Line: l.line}
	}
	return l.tok
}

func (l *Lexer) skipLine() {
	for l.pos < len(l.src) && l.src[l.pos] != '\n' {
		l.pos++
	}
}

// Expect consumes a token of the given kind or records an error.
func (l *Lexer) Expect(k TokKind) (Token, error) {
	t := l.tok
	if t.Kind != k {
		return t, l.Errorf("expected %s, found %s %q", k, t.Kind, t.Text)
	}
	l.Next()
	return t, nil
}

// Accept consumes the current token if it has the given kind.
func (l *Lexer) Accept(k TokKind) bool {
	if l.tok.Kind == k {
		l.Next()
		return true
	}
	return false
}

// AcceptKeyword consumes the current token if it is an identifier equal
// (case-insensitively) to word.
func (l *Lexer) AcceptKeyword(word string) bool {
	if l.tok.Kind == TokIdent && strings.EqualFold(l.tok.Text, word) {
		l.Next()
		return true
	}
	return false
}
