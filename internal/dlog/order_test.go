package dlog

import (
	"testing"

	"repro/internal/relation"
)

// checkSafeOrder asserts the orderBody invariant: every negated atom and
// inequality appears only after all of its variables are bound by earlier
// positive atoms or discharged equalities.
func checkSafeOrder(t *testing.T, body []Literal) {
	t.Helper()
	ordered := orderBody(body)
	if len(ordered) != len(body) {
		t.Fatalf("orderBody changed length: %d -> %d", len(body), len(ordered))
	}
	bound := map[string]bool{}
	for i, l := range ordered {
		switch l.Kind {
		case LitNeg, LitNeq:
			for _, v := range l.Vars() {
				if !bound[v] {
					t.Fatalf("position %d: literal %q scheduled with unbound variable %s (order %v)", i, l, v, ordered)
				}
			}
		case LitPos:
			for _, v := range l.Vars() {
				bound[v] = true
			}
		case LitEq:
			if l.Left.Var {
				bound[l.Left.Name] = true
			}
			if l.Right.Var {
				bound[l.Right.Name] = true
			}
		}
	}
}

func TestOrderBodyDefersNegation(t *testing.T) {
	// Author order puts the negation first; the static order must not.
	p := MustParseProgram(`out(X) :- NOT blocked(X), item(X);`)
	checkSafeOrder(t, p[0].Body)
	ordered := orderBody(p[0].Body)
	if ordered[0].Kind != LitPos || ordered[0].Atom.Pred != "item" {
		t.Fatalf("want item(X) scheduled first, got %v", ordered)
	}
	if ordered[1].Kind != LitNeg {
		t.Fatalf("want NOT blocked(X) second, got %v", ordered)
	}
}

func TestOrderBodyEqualityBindsForNegation(t *testing.T) {
	// X = apple resolves X immediately, which grounds the negation before
	// any positive atom runs.
	p := MustParseProgram(`out(Y) :- NOT blocked(X), X = apple, item(Y);`)
	checkSafeOrder(t, p[0].Body)
	ordered := orderBody(p[0].Body)
	if ordered[0].Kind != LitEq {
		t.Fatalf("want X = apple first, got %v", ordered)
	}
	if ordered[1].Kind != LitNeg {
		t.Fatalf("want NOT blocked(X) second (grounded by the equality), got %v", ordered)
	}
}

func TestOrderBodyInequalityAfterBothBound(t *testing.T) {
	p := MustParseProgram(`out(X,Y) :- X <> Y, a(X), b(Y);`)
	checkSafeOrder(t, p[0].Body)
	ordered := orderBody(p[0].Body)
	if ordered[2].Kind != LitNeq {
		t.Fatalf("want X <> Y last, got %v", ordered)
	}
}

func TestOrderBodyUnsafeLeftoverAppended(t *testing.T) {
	// Z is never bound: the unsafe literal must survive reordering (at the
	// end) so evaluation reports the unsafe-body error.
	p := MustParseProgram(`out(X) :- a(X), NOT b(Z);`)
	ordered := orderBody(p[0].Body)
	if len(ordered) != 2 || ordered[1].Kind != LitNeg {
		t.Fatalf("want unsafe negation appended last, got %v", ordered)
	}
	db := MultiDB{inst("a(x)")}
	if _, err := Eval(p, db); err == nil {
		t.Fatal("want unsafe-body error, got nil")
	}
}

// TestEvalNegationFirstInBody is the end-to-end regression: a rule whose
// author order leads with a negation evaluates correctly (it used to rely
// solely on the search loop's dynamic deferral).
func TestEvalNegationFirstInBody(t *testing.T) {
	p := MustParseProgram(`
		ship(X) :- NOT held(X), order(X);
	`)
	db := MultiDB{inst("order(a)", "order(b)", "held(b)")}
	out, err := Eval(p, db)
	if err != nil {
		t.Fatalf("eval: %v", err)
	}
	ship := out.Rel("ship")
	if ship == nil || ship.Len() != 1 || !ship.Has(relation.Tuple{"a"}) {
		t.Fatalf("want ship(a) only, got %v", out)
	}
}
