package turing

import (
	"fmt"

	"repro/internal/relation"
)

// IndexNames returns the ordered index constants for a pool of n indexes:
// "0", "1", "i2", "i3", … — the 0, 1, a₂, a₃, … of the proof.
func IndexNames(n int) []string {
	out := make([]string, n)
	for i := range out {
		switch i {
		case 0:
			out[i] = "0"
		case 1:
			out[i] = "1"
		default:
			out[i] = fmt.Sprintf("i%d", i)
		}
	}
	return out
}

// DriveInputs produces the well-formed input sequence that makes the
// compiled transducer simulate the given computation and emit the first
// emitLen cells of the halting tape (emitLen < 0 emits the whole tape
// segment). The sequence has one stage-1 step per tape cell, one stage-2
// step per computation move, and one stage-3 step per emitted cell.
func DriveInputs(m *Machine, comp Computation, emitLen int) (relation.Sequence, error) {
	if len(comp.Configs) == 0 {
		return nil, fmt.Errorf("turing: empty computation")
	}
	cellsN := len(comp.Configs[0].Tape)
	if cellsN == 0 {
		return nil, fmt.Errorf("turing: empty tape segment")
	}
	steps := len(comp.Moves)
	// The index chain provides both the cell ordering (cellsN+1 indexes for
	// cellsN rows) and the configuration stamps (steps+1 stamps).
	pool := cellsN + 1
	if steps+1 > pool {
		pool = steps + 1
	}
	idx := IndexNames(pool)
	rows := pool - 1 // tape rows after stage 1
	pad := func(cfg Config) Config {
		p := cfg.Clone()
		for len(p.Tape) < rows {
			p.Tape = append(p.Tape, m.Blank)
		}
		return p
	}

	var seq relation.Sequence
	cst := func(s string) relation.Const { return relation.Const(s) }

	// Stage 1: build the blank tape and the index pool.
	firstStep := relation.NewInstance()
	firstStep.Add(RelStage, relation.Tuple{"1"})
	firstStep.Add(RelTape, relation.Tuple{"0", "0", "1", cst(m.Blank), cst(m.Start)})
	firstStep.Add(RelIndex, relation.Tuple{"0"})
	firstStep.Add(RelIndex, relation.Tuple{"1"})
	firstStep.Add(RelOldindex, relation.Tuple{"0"})
	seq = append(seq, firstStep)
	for k := 2; k < pool; k++ {
		st := relation.NewInstance()
		st.Add(RelStage, relation.Tuple{"1"})
		st.Add(RelTape, relation.Tuple{"0", cst(idx[k-1]), cst(idx[k]), cst(m.Blank), cst(HeadFree)})
		st.Add(RelIndex, relation.Tuple{cst(idx[k])})
		st.Add(RelOldindex, relation.Tuple{cst(idx[k-1])})
		seq = append(seq, st)
	}

	// Stage 2: one full configuration per step, stamped along the chain.
	for t := 1; t <= steps; t++ {
		st := relation.NewInstance()
		st.Add(RelStage, relation.Tuple{"2"})
		st.Add(RelMove, relation.Tuple{cst(moveConst(comp.Moves[t-1]))})
		cfg := pad(comp.Configs[t])
		stamp := cst(idx[t])
		for r := 0; r < rows; r++ {
			state := HeadFree
			if r == cfg.Head {
				state = cfg.State
			}
			st.Add(RelTape, relation.Tuple{stamp, cst(idx[r]), cst(idx[r+1]), cst(cfg.Tape[r]), cst(state)})
		}
		seq = append(seq, st)
	}

	// Stage 3: read the word off the tape cell by cell.
	if emitLen < 0 || emitLen > rows {
		emitLen = rows
	}
	for k := 0; k < emitLen; k++ {
		st := relation.NewInstance()
		st.Add(RelStage, relation.Tuple{"3"})
		st.Add(RelCell, relation.Tuple{cst(idx[k])})
		seq = append(seq, st)
	}
	return seq, nil
}

// EmittedWord reads the emitted symbols off a run of the compiled
// transducer, in step order.
func EmittedWord(m *Machine, outputs relation.Sequence) []string {
	var word []string
	for _, out := range outputs {
		for _, z := range m.Symbols {
			if z == m.Blank {
				continue
			}
			if out.Rel(EmitRel(z)).Len() > 0 {
				word = append(word, z)
			}
		}
	}
	return word
}
