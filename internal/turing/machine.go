// Package turing implements the nondeterministic Turing machine substrate
// of Theorem 4.2 and the construction from its proof: a compiler from a
// Turing machine M to a Spocus transducer whose error-free runs simulate
// M's computations from the empty tape and output, one letter at a time,
// the word left on the tape when M halts. Together with a driver that
// produces the well-formed input sequences encoding a given computation,
// this realizes the theorem's claim that error-free propositional-output
// Spocus transducers generate exactly the prefix-closed r.e. languages.
package turing

import (
	"fmt"
	"sort"
	"strings"
)

// Move is a head direction.
type Move int

const (
	// Left moves the head one cell left.
	Left Move = iota
	// Right moves the head one cell right.
	Right
)

func (m Move) String() string {
	if m == Left {
		return "L"
	}
	return "R"
}

// Rule is one nondeterministic transition: in state State reading Read,
// write Write, move the head, and enter Next.
type Rule struct {
	State string
	Read  string
	Write string
	Move  Move
	Next  string
}

func (r Rule) String() string {
	return fmt.Sprintf("(%s,%s)->(%s,%s,%s)", r.State, r.Read, r.Write, r.Move, r.Next)
}

// Machine is a nondeterministic one-tape Turing machine with a right-
// infinite tape. State and symbol names must be lower-case identifiers
// (they become constants of the compiled transducer); the blank symbol is
// part of Symbols.
type Machine struct {
	Symbols []string // tape alphabet, including Blank
	Blank   string
	Start   string
	Halt    string
	Rules   []Rule
}

// States returns the sorted set of states mentioned by the machine.
func (m *Machine) States() []string {
	set := map[string]bool{m.Start: true, m.Halt: true}
	for _, r := range m.Rules {
		set[r.State] = true
		set[r.Next] = true
	}
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Validate checks structural sanity: the blank is a symbol, rules use
// declared symbols, no rule leaves the halt state, and names are usable as
// transducer constants.
func (m *Machine) Validate() error {
	symOK := map[string]bool{}
	for _, s := range m.Symbols {
		symOK[s] = true
	}
	if !symOK[m.Blank] {
		return fmt.Errorf("turing: blank %q is not in the alphabet", m.Blank)
	}
	names := append(append([]string{}, m.Symbols...), m.States()...)
	for _, n := range names {
		if n == "" || !isLowerIdent(n) {
			return fmt.Errorf("turing: name %q must be a non-empty lower-case identifier", n)
		}
	}
	for _, r := range m.Rules {
		if !symOK[r.Read] || !symOK[r.Write] {
			return fmt.Errorf("turing: rule %s uses undeclared symbol", r)
		}
		if r.State == m.Halt {
			return fmt.Errorf("turing: rule %s leaves the halting state", r)
		}
	}
	return nil
}

func isLowerIdent(s string) bool {
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		case c == '-' && i > 0:
		default:
			return false
		}
	}
	return true
}

// Config is a machine configuration over a fixed-length tape segment.
type Config struct {
	Tape  []string
	Head  int
	State string
}

// Clone copies the configuration.
func (c Config) Clone() Config {
	t := make([]string, len(c.Tape))
	copy(t, c.Tape)
	return Config{Tape: t, Head: c.Head, State: c.State}
}

func (c Config) String() string {
	parts := make([]string, len(c.Tape))
	for i, s := range c.Tape {
		if i == c.Head {
			parts[i] = "[" + s + ":" + c.State + "]"
		} else {
			parts[i] = s
		}
	}
	return strings.Join(parts, " ")
}

// Halted reports whether the configuration is in the halt state of m.
func (m *Machine) Halted(c Config) bool { return c.State == m.Halt }

// Initial returns the initial configuration on a blank tape of n cells.
func (m *Machine) Initial(n int) Config {
	t := make([]string, n)
	for i := range t {
		t[i] = m.Blank
	}
	return Config{Tape: t, Head: 0, State: m.Start}
}

// Apply applies rule index ri to the configuration, returning the successor
// or an error if the rule does not apply or the head leaves the tape
// segment (a right-infinite tape truncated to the segment; running off the
// right end means the segment was too short).
func (m *Machine) Apply(c Config, ri int) (Config, error) {
	if ri < 0 || ri >= len(m.Rules) {
		return Config{}, fmt.Errorf("turing: no rule %d", ri)
	}
	r := m.Rules[ri]
	if c.State != r.State || c.Tape[c.Head] != r.Read {
		return Config{}, fmt.Errorf("turing: rule %s does not apply in %s", r, c)
	}
	n := c.Clone()
	n.Tape[n.Head] = r.Write
	if r.Move == Left {
		n.Head--
	} else {
		n.Head++
	}
	if n.Head < 0 {
		return Config{}, fmt.Errorf("turing: head fell off the left end")
	}
	if n.Head >= len(n.Tape) {
		return Config{}, fmt.Errorf("turing: head ran past the tape segment (need a longer tape)")
	}
	n.State = r.Next
	return n, nil
}

// Applicable returns the rule indices applicable in c.
func (m *Machine) Applicable(c Config) []int {
	var out []int
	for i, r := range m.Rules {
		if c.State == r.State && c.Tape[c.Head] == r.Read {
			out = append(out, i)
		}
	}
	return out
}

// Computation is a halting run: the configurations c₀..c_T and the rule
// chosen at each step (len(Moves) = len(Configs)-1).
type Computation struct {
	Configs []Config
	Moves   []int
}

// Word extracts the output word of a halting configuration: the maximal
// blank-free prefix of the tape (the paper's convention, with the word
// starting at the leftmost cell).
func (m *Machine) Word(c Config) []string {
	var out []string
	for _, s := range c.Tape {
		if s == m.Blank {
			break
		}
		out = append(out, s)
	}
	return out
}

// Enumerate explores all computations from the empty tape with at most
// maxSteps steps over a tape segment of tapeLen cells, calling visit for
// each halting computation whose final head position is the leftmost cell
// (the normal form Theorem 4.2 assumes). Exploration is depth-first over
// the nondeterministic choices; visit returning false stops early.
func (m *Machine) Enumerate(tapeLen, maxSteps int, visit func(Computation) bool) error {
	if err := m.Validate(); err != nil {
		return err
	}
	stop := false
	var rec func(comp Computation)
	rec = func(comp Computation) {
		if stop {
			return
		}
		cur := comp.Configs[len(comp.Configs)-1]
		if m.Halted(cur) {
			if cur.Head == 0 {
				if !visit(comp) {
					stop = true
				}
			}
			return
		}
		if len(comp.Moves) >= maxSteps {
			return
		}
		for _, ri := range m.Applicable(cur) {
			next, err := m.Apply(cur, ri)
			if err != nil {
				continue // off-segment branches are simply not explored
			}
			rec(Computation{
				Configs: append(append([]Config{}, comp.Configs...), next),
				Moves:   append(append([]int{}, comp.Moves...), ri),
			})
		}
	}
	rec(Computation{Configs: []Config{m.Initial(tapeLen)}})
	return nil
}

// Language collects the distinct words produced by halting computations
// within the bounds, sorted lexicographically.
func (m *Machine) Language(tapeLen, maxSteps int) ([][]string, error) {
	seen := map[string][]string{}
	err := m.Enumerate(tapeLen, maxSteps, func(c Computation) bool {
		w := m.Word(c.Configs[len(c.Configs)-1])
		seen[strings.Join(w, "\x00")] = w
		return true
	})
	if err != nil {
		return nil, err
	}
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([][]string, len(keys))
	for i, k := range keys {
		out[i] = seen[k]
	}
	return out, nil
}
