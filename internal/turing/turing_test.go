package turing

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/relation"
)

// writeAB deterministically writes "ab" and halts with the head on cell 0;
// it exercises both right and left moves.
func writeAB() *Machine {
	return &Machine{
		Symbols: []string{"blank", "a", "b"},
		Blank:   "blank",
		Start:   "q0",
		Halt:    "h",
		Rules: []Rule{
			{State: "q0", Read: "blank", Write: "a", Move: Right, Next: "q1"},
			{State: "q1", Read: "blank", Write: "b", Move: Right, Next: "q2"},
			{State: "q2", Read: "blank", Write: "blank", Move: Left, Next: "q3"},
			{State: "q3", Read: "b", Write: "b", Move: Left, Next: "h"},
		},
	}
}

// aOrB nondeterministically writes "a" or "b" and halts on cell 0.
func aOrB() *Machine {
	return &Machine{
		Symbols: []string{"blank", "a", "b"},
		Blank:   "blank",
		Start:   "q0",
		Halt:    "h",
		Rules: []Rule{
			{State: "q0", Read: "blank", Write: "a", Move: Right, Next: "q1"},
			{State: "q0", Read: "blank", Write: "b", Move: Right, Next: "q1"},
			{State: "q1", Read: "blank", Write: "blank", Move: Left, Next: "h"},
		},
	}
}

func TestValidate(t *testing.T) {
	m := writeAB()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := writeAB()
	bad.Blank = "nope"
	if err := bad.Validate(); err == nil {
		t.Error("bad blank accepted")
	}
	bad2 := writeAB()
	bad2.Rules = append(bad2.Rules, Rule{State: "h", Read: "a", Write: "a", Move: Right, Next: "q0"})
	if err := bad2.Validate(); err == nil {
		t.Error("rule leaving halt accepted")
	}
	bad3 := writeAB()
	bad3.Symbols = append(bad3.Symbols, "BAD")
	if err := bad3.Validate(); err == nil {
		t.Error("upper-case symbol accepted")
	}
}

func TestDirectSimulation(t *testing.T) {
	m := writeAB()
	words, err := m.Language(4, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(words) != 1 || strings.Join(words[0], "") != "ab" {
		t.Fatalf("Language = %v, want [ab]", words)
	}
	m2 := aOrB()
	words2, err := m2.Language(3, 10)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]string, len(words2))
	for i, w := range words2 {
		got[i] = strings.Join(w, "")
	}
	if !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Fatalf("Language = %v, want [a b]", got)
	}
}

func TestApplyErrors(t *testing.T) {
	m := writeAB()
	c := m.Initial(3)
	if _, err := m.Apply(c, 3); err == nil {
		t.Error("inapplicable rule accepted")
	}
	if _, err := m.Apply(c, 99); err == nil {
		t.Error("unknown rule accepted")
	}
	// Head falling off the left.
	c2 := Config{Tape: []string{"b", "blank"}, Head: 0, State: "q3"}
	if _, err := m.Apply(c2, 3); err == nil {
		t.Error("left fall-off accepted")
	}
}

// firstComputation returns the unique computation of a deterministic
// machine within the bounds.
func firstComputation(t *testing.T, m *Machine, tapeLen, maxSteps int) Computation {
	t.Helper()
	var comp *Computation
	if err := m.Enumerate(tapeLen, maxSteps, func(c Computation) bool {
		comp = &c
		return false
	}); err != nil {
		t.Fatal(err)
	}
	if comp == nil {
		t.Fatal("no halting computation found")
	}
	return *comp
}

// TestTheorem42HappyPath compiles writeAB, drives a well-formed simulation,
// and checks the run is error-free and emits exactly "ab" (experiment E11).
func TestTheorem42HappyPath(t *testing.T) {
	m := writeAB()
	tm, err := Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	if tm.Kind() != core.KindSpocus {
		t.Fatalf("compiled machine kind %v", tm.Kind())
	}
	comp := firstComputation(t, m, 4, 10)
	inputs, err := DriveInputs(m, comp, -1)
	if err != nil {
		t.Fatal(err)
	}
	run, err := tm.Execute(relation.NewInstance(), inputs)
	if err != nil {
		t.Fatal(err)
	}
	if !run.Valid(core.ErrorFree) {
		i := run.ErrorFreePrefix()
		t.Fatalf("driven run raises error at step %d\ninput: %s", i+1, run.Inputs[i])
	}
	word := EmittedWord(m, run.Outputs)
	if strings.Join(word, "") != "ab" {
		t.Fatalf("emitted %v, want ab", word)
	}
}

// TestTheorem42PrefixEmission: stopping the stage-3 drive early emits a
// prefix, matching the theorem's prefix-closure.
func TestTheorem42PrefixEmission(t *testing.T) {
	m := writeAB()
	tm, err := Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	comp := firstComputation(t, m, 4, 10)
	inputs, err := DriveInputs(m, comp, 1)
	if err != nil {
		t.Fatal(err)
	}
	run, err := tm.Execute(relation.NewInstance(), inputs)
	if err != nil {
		t.Fatal(err)
	}
	if !run.Valid(core.ErrorFree) {
		t.Fatalf("prefix drive raises error at step %d", run.ErrorFreePrefix()+1)
	}
	if got := strings.Join(EmittedWord(m, run.Outputs), ""); got != "a" {
		t.Fatalf("emitted %q, want a", got)
	}
}

// TestTheorem42Nondeterministic drives every computation of the
// nondeterministic machine and compares the emitted words with the direct
// simulator's language.
func TestTheorem42Nondeterministic(t *testing.T) {
	m := aOrB()
	tm, err := Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"a": true, "b": true}
	got := map[string]bool{}
	if err := m.Enumerate(3, 10, func(comp Computation) bool {
		inputs, err := DriveInputs(m, comp, -1)
		if err != nil {
			t.Fatal(err)
		}
		run, err := tm.Execute(relation.NewInstance(), inputs)
		if err != nil {
			t.Fatal(err)
		}
		if !run.Valid(core.ErrorFree) {
			t.Fatalf("driven run raises error at step %d", run.ErrorFreePrefix()+1)
		}
		got[strings.Join(EmittedWord(m, run.Outputs), "")] = true
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("emitted words %v, want %v", got, want)
	}
}

// mutate returns a copy of the sequence with fn applied to step i.
func mutate(seq relation.Sequence, i int, fn func(relation.Instance)) relation.Sequence {
	out := seq.Clone()
	fn(out[i])
	return out
}

// TestTheorem42AdversarialInputs: malformed input sequences must raise
// error — the construction's whole point is that cheating is detected.
func TestTheorem42AdversarialInputs(t *testing.T) {
	m := writeAB()
	tm, err := Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	comp := firstComputation(t, m, 4, 10)
	good, err := DriveInputs(m, comp, -1)
	if err != nil {
		t.Fatal(err)
	}
	stage2 := 0
	for i, st := range good {
		if st.Has(RelStage, relation.Tuple{"2"}) {
			stage2 = i
			break
		}
	}
	cases := []struct {
		name string
		seq  relation.Sequence
	}{
		{"missing initial tape tuple", mutate(good, 0, func(in relation.Instance) {
			delete(in, RelTape)
		})},
		{"wrong initial state", mutate(good, 0, func(in relation.Instance) {
			delete(in, RelTape)
			in.Add(RelTape, relation.Tuple{"0", "0", "1", "blank", "q1"})
		})},
		{"stage skip", mutate(good, 0, func(in relation.Instance) {
			delete(in, RelStage)
			in.Add(RelStage, relation.Tuple{"2"})
		})},
		{"stale index reuse", mutate(good, 1, func(in relation.Instance) {
			delete(in, RelIndex)
			in.Add(RelIndex, relation.Tuple{"0"})
		})},
		{"wrong move", mutate(good, stage2, func(in relation.Instance) {
			delete(in, RelMove)
			in.Add(RelMove, relation.Tuple{"2"})
		})},
		{"forged cell write", mutate(good, stage2, func(in relation.Instance) {
			// Overwrite the configuration's (1,i2) row with a wrong symbol.
			rel := in.Rel(RelTape)
			fixed := relation.NewRel(5)
			for _, tup := range rel.Tuples() {
				if tup[1] == "1" && tup[2] == "i2" {
					fixed.Add(relation.Tuple{tup[0], tup[1], tup[2], "b", tup[4]})
				} else {
					fixed.Add(tup)
				}
			}
			in[RelTape] = fixed
		})},
		{"premature emission", mutate(good, stage2, func(in relation.Instance) {
			delete(in, RelTape)
			delete(in, RelMove)
			delete(in, RelStage)
			in.Add(RelStage, relation.Tuple{"3"})
			in.Add(RelCell, relation.Tuple{"0"})
		})},
	}
	for _, c := range cases {
		run, err := tm.Execute(relation.NewInstance(), c.seq)
		if err != nil {
			t.Fatalf("%s: execute: %v", c.name, err)
		}
		if run.Valid(core.ErrorFree) {
			t.Errorf("%s: adversarial run accepted", c.name)
		}
	}
}

// TestPrematureStage3EmitsNothing: switching to stage 3 before the machine
// halts is error-free only if nothing is emitted (ε is a valid prefix).
func TestPrematureStage3EmitsNothing(t *testing.T) {
	m := writeAB()
	tm, err := Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	comp := firstComputation(t, m, 4, 10)
	full, err := DriveInputs(m, comp, -1)
	if err != nil {
		t.Fatal(err)
	}
	// Keep stage 1 and only the first stage-2 step (machine not yet
	// halted), then jump to stage 3.
	var seq relation.Sequence
	stage2Seen := 0
	for _, st := range full {
		if st.Has(RelStage, relation.Tuple{"2"}) {
			stage2Seen++
			if stage2Seen > 1 {
				break
			}
		}
		if st.Has(RelStage, relation.Tuple{"3"}) {
			break
		}
		seq = append(seq, st.Clone())
	}
	st3 := relation.NewInstance()
	st3.Add(RelStage, relation.Tuple{"3"})
	st3.Add(RelCell, relation.Tuple{"0"})
	seq = append(seq, st3)
	run, err := tm.Execute(relation.NewInstance(), seq)
	if err != nil {
		t.Fatal(err)
	}
	if !run.Valid(core.ErrorFree) {
		t.Fatalf("early stage-3 run raises error at step %d", run.ErrorFreePrefix()+1)
	}
	if w := EmittedWord(m, run.Outputs); len(w) != 0 {
		t.Errorf("premature emission %v before the machine halted", w)
	}
}

// writeABA writes "aba" and walks back over the written symbols, exercising
// consecutive left moves reading non-blank cells.
func writeABA() *Machine {
	return &Machine{
		Symbols: []string{"blank", "a", "b"},
		Blank:   "blank",
		Start:   "q0",
		Halt:    "h",
		Rules: []Rule{
			{State: "q0", Read: "blank", Write: "a", Move: Right, Next: "q1"},
			{State: "q1", Read: "blank", Write: "b", Move: Right, Next: "q2"},
			{State: "q2", Read: "blank", Write: "a", Move: Right, Next: "q3"},
			{State: "q3", Read: "blank", Write: "blank", Move: Left, Next: "q4"},
			{State: "q4", Read: "a", Write: "a", Move: Left, Next: "q5"},
			{State: "q5", Read: "b", Write: "b", Move: Left, Next: "h"},
		},
	}
}

func TestTheorem42LongerWalkBack(t *testing.T) {
	m := writeABA()
	words, err := m.Language(5, 12)
	if err != nil {
		t.Fatal(err)
	}
	if len(words) != 1 || strings.Join(words[0], "") != "aba" {
		t.Fatalf("Language = %v, want [aba]", words)
	}
	tm, err := Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	comp := firstComputation(t, m, 5, 12)
	inputs, err := DriveInputs(m, comp, -1)
	if err != nil {
		t.Fatal(err)
	}
	run, err := tm.Execute(relation.NewInstance(), inputs)
	if err != nil {
		t.Fatal(err)
	}
	if !run.Valid(core.ErrorFree) {
		i := run.ErrorFreePrefix()
		t.Fatalf("driven run raises error at step %d\ninput: %s", i+1, run.Inputs[i])
	}
	if got := strings.Join(EmittedWord(m, run.Outputs), ""); got != "aba" {
		t.Fatalf("emitted %q, want aba", got)
	}
	// Every strict prefix is emittable as well (Theorem 4.2's prefix
	// closure).
	for emitLen := 0; emitLen <= 2; emitLen++ {
		in2, err := DriveInputs(m, comp, emitLen)
		if err != nil {
			t.Fatal(err)
		}
		run2, err := tm.Execute(relation.NewInstance(), in2)
		if err != nil {
			t.Fatal(err)
		}
		if !run2.Valid(core.ErrorFree) {
			t.Fatalf("prefix drive %d errors at step %d", emitLen, run2.ErrorFreePrefix()+1)
		}
		want := "aba"[:emitLen]
		if got := strings.Join(EmittedWord(m, run2.Outputs), ""); got != want {
			t.Errorf("emitLen=%d: emitted %q, want %q", emitLen, got, want)
		}
	}
}

func TestIndexNames(t *testing.T) {
	got := IndexNames(4)
	want := []string{"0", "1", "i2", "i3"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("IndexNames = %v, want %v", got, want)
	}
}
