package turing

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dlog"
	"repro/internal/relation"
)

// EmitRel names the output proposition emitting symbol z in stage 3.
func EmitRel(z string) string { return "emit-" + z }

// HeadFree is the state-column marker for cells not under the head, the
// paper's 0.
const HeadFree = "0"

// Schema relation names of the compiled transducer, as in the proof of
// Theorem 4.2.
const (
	RelStage    = "stage"
	RelTape     = "tape"
	RelIndex    = "index"
	RelOldindex = "oldindex"
	RelMove     = "move"
	RelCell     = "cell"
)

// Compile builds the Spocus transducer of Theorem 4.2 for the machine: its
// error-free runs encode (i) the construction of an initial blank tape of
// arbitrary finite length, (ii) a legal computation of M input one
// configuration per step, and (iii) the emission, one letter per step, of
// the word on the tape once M halts with its head on the leftmost cell.
// The generated error rules follow the proof's three stages verbatim, plus
// the control rules the paper leaves implicit (stage discipline, value
// sanity, single head, move/head agreement).
func Compile(m *Machine) (*core.Machine, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	states := append(m.States(), HeadFree)
	cells := m.Symbols

	b := newRuleBuilder()
	v := dlog.V
	c := dlog.C
	tape := func(args ...dlog.Term) dlog.Atom { return dlog.NewAtom(RelTape, args...) }
	pastTape := func(args ...dlog.Term) dlog.Atom { return dlog.NewAtom(core.Past(RelTape), args...) }
	stage := func(s string) dlog.Literal { return dlog.Pos(dlog.NewAtom(RelStage, c(s))) }
	notPastStage := func(s string) dlog.Literal { return dlog.Neg(dlog.NewAtom(core.Past(RelStage), c(s))) }
	pastStage := func(s string) dlog.Literal { return dlog.Pos(dlog.NewAtom(core.Past(RelStage), c(s))) }

	// notPastTapeAll expands ⋀_{(z,s)∈Δ} ¬past-tape(stamp, i1, i2, z, s).
	notPastTapeAll := func(stamp, i1, i2 dlog.Term) []dlog.Literal {
		var lits []dlog.Literal
		for _, z := range cells {
			for _, s := range states {
				lits = append(lits, dlog.Neg(pastTape(stamp, i1, i2, c(z), c(s))))
			}
		}
		return lits
	}
	notTapeAll := func(stamp, i1, i2 dlog.Term) []dlog.Literal {
		var lits []dlog.Literal
		for _, z := range cells {
			for _, s := range states {
				lits = append(lits, dlog.Neg(tape(stamp, i1, i2, c(z), c(s))))
			}
		}
		return lits
	}
	// phiNext(A, B) identifies A as the maximal used configuration stamp
	// and B as its (unused) successor index.
	phiNext := func(A, B dlog.Term) []dlog.Literal {
		lits := []dlog.Literal{
			dlog.Pos(pastTape(v("S·"), A, B, v("Zn·"), v("Vn·"))),           // (A,B) is an index pair
			dlog.Pos(pastTape(A, v("Xn·"), v("Yn·"), v("Zn2·"), v("Vn2·"))), // A is a used stamp
		}
		lits = append(lits, notPastTapeAll(B, c("0"), c("1"))...) // B unused as stamp
		return lits
	}

	// --- Stage discipline -------------------------------------------------
	b.err(dlog.Pos(dlog.NewAtom(RelStage, v("X"))), dlog.Pos(dlog.NewAtom(RelStage, v("Y"))), dlog.Neq(v("X"), v("Y")))
	b.err(dlog.Neg(dlog.NewAtom(RelStage, c("1"))), dlog.Neg(dlog.NewAtom(RelStage, c("2"))), dlog.Neg(dlog.NewAtom(RelStage, c("3"))))
	b.err(stage("1"), pastStage("2"))
	b.err(stage("1"), pastStage("3"))
	b.err(stage("2"), pastStage("3"))
	b.err(stage("2"), notPastStage("1"))
	b.err(stage("3"), notPastStage("2"))

	// Inputs irrelevant to the current stage must be empty.
	irrelevant := map[string][]struct {
		rel   string
		arity int
	}{
		"1": {{RelMove, 1}, {RelCell, 1}},
		"2": {{RelIndex, 1}, {RelOldindex, 1}, {RelCell, 1}},
		"3": {{RelTape, 5}, {RelIndex, 1}, {RelOldindex, 1}, {RelMove, 1}},
	}
	for _, st := range []string{"1", "2", "3"} {
		for _, ir := range irrelevant[st] {
			args := make([]dlog.Term, ir.arity)
			for i := range args {
				args[i] = v(fmt.Sprintf("W%d", i))
			}
			b.err(stage(st), dlog.Pos(dlog.NewAtom(ir.rel, args...)))
		}
	}

	// --- Stage 1, first step ---------------------------------------------
	first := []dlog.Literal{stage("1"), notPastStage("1")}
	b.err(append(first, dlog.Neg(tape(c("0"), c("0"), c("1"), c(m.Blank), c(m.Start))))...)
	b.err(append(first, dlog.Neg(dlog.NewAtom(RelIndex, c("0"))))...)
	b.err(append(first, dlog.Neg(dlog.NewAtom(RelIndex, c("1"))))...)
	b.err(append(first, dlog.Neg(dlog.NewAtom(RelOldindex, c("0"))))...)
	b.err(append(first, dlog.Pos(dlog.NewAtom(RelIndex, v("X"))), dlog.Neq(v("X"), c("0")), dlog.Neq(v("X"), c("1")))...)
	b.err(append(first, dlog.Pos(dlog.NewAtom(RelOldindex, v("X"))), dlog.Neq(v("X"), c("0")))...)
	fiveVars := []dlog.Term{v("S"), v("X"), v("Y"), v("Z"), v("V")}
	firstTapeWant := []dlog.Term{c("0"), c("0"), c("1"), c(m.Blank), c(m.Start)}
	for i := range fiveVars {
		b.err(append(first, dlog.Pos(tape(fiveVars...)), dlog.Neq(fiveVars[i], firstTapeWant[i]))...)
	}

	// --- Stage 1, later steps ---------------------------------------------
	later := []dlog.Literal{stage("1"), pastStage("1")}
	// One tuple at a time per relation.
	five2 := []dlog.Term{v("S2"), v("X2"), v("Y2"), v("Z2"), v("V2")}
	for i := range fiveVars {
		b.err(append(later, dlog.Pos(tape(fiveVars...)), dlog.Pos(tape(five2...)), dlog.Neq(fiveVars[i], five2[i]))...)
	}
	b.err(append(later, dlog.Pos(dlog.NewAtom(RelIndex, v("X"))), dlog.Pos(dlog.NewAtom(RelIndex, v("Y"))), dlog.Neq(v("X"), v("Y")))...)
	b.err(append(later, dlog.Pos(dlog.NewAtom(RelOldindex, v("X"))), dlog.Pos(dlog.NewAtom(RelOldindex, v("Y"))), dlog.Neq(v("X"), v("Y")))...)
	// Shape of late tape tuples: (0, A, B, blank, HeadFree).
	b.err(append(later, dlog.Pos(tape(fiveVars...)), dlog.Neq(v("S"), c("0")))...)
	b.err(append(later, dlog.Pos(tape(fiveVars...)), dlog.Neq(v("Z"), c(m.Blank)))...)
	b.err(append(later, dlog.Pos(tape(fiveVars...)), dlog.Neq(v("V"), c(HeadFree)))...)
	// The paper's rules (1)–(10).
	lateTape := dlog.Pos(tape(c("0"), v("A"), v("B"), c(m.Blank), c(HeadFree)))
	pIndex := func(t dlog.Term) dlog.Literal { return dlog.Pos(dlog.NewAtom(core.Past(RelIndex), t)) }
	nIndex := func(t dlog.Term) dlog.Literal { return dlog.Neg(dlog.NewAtom(core.Past(RelIndex), t)) }
	pOld := func(t dlog.Term) dlog.Literal { return dlog.Pos(dlog.NewAtom(core.Past(RelOldindex), t)) }
	nOld := func(t dlog.Term) dlog.Literal { return dlog.Neg(dlog.NewAtom(core.Past(RelOldindex), t)) }
	curIndex := func(t dlog.Term) dlog.Literal { return dlog.Pos(dlog.NewAtom(RelIndex, t)) }
	curOld := func(t dlog.Term) dlog.Literal { return dlog.Pos(dlog.NewAtom(RelOldindex, t)) }
	b.err(append(later, lateTape, nIndex(v("A")))...)                                                                                        // (1)
	b.err(append(later, lateTape, pOld(v("A")))...)                                                                                          // (2)
	b.err(append(later, lateTape, pIndex(v("B")))...)                                                                                        // (3)
	b.err(append(later, lateTape, dlog.Neg(dlog.NewAtom(RelOldindex, v("A"))))...)                                                           // (4)
	b.err(append(later, lateTape, dlog.Neg(dlog.NewAtom(RelIndex, v("B"))))...)                                                              // (5)
	b.err(append(later, curOld(v("A")), curIndex(v("B")), dlog.Neg(tape(c("0"), v("A"), v("B"), c(m.Blank), c(HeadFree))))...)               // (6)
	b.err(append(later, curIndex(v("B")), pIndex(v("A")), nOld(v("A")), dlog.Neg(tape(c("0"), v("A"), v("B"), c(m.Blank), c(HeadFree))))...) // (7)
	b.err(append(later, curIndex(v("B")), pIndex(v("A")), nOld(v("A")), dlog.Neg(dlog.NewAtom(RelOldindex, v("A"))))...)                     // (8)
	b.err(append(later, curOld(v("A")), nIndex(v("A")))...)                                                                                  // (9)
	b.err(append(later, curOld(v("A")), pOld(v("A")))...)                                                                                    // (10)

	// --- Stage 2 ------------------------------------------------------------
	s2 := stage("2")
	// (1) one stamp per step.
	b.err(s2, dlog.Pos(tape(fiveVars...)), dlog.Pos(tape(five2...)), dlog.Neq(v("S"), v("S2")))
	// Value sanity: cell and state columns draw from Δ.
	{
		lits := []dlog.Literal{s2, dlog.Pos(tape(fiveVars...))}
		for _, z := range cells {
			lits = append(lits, dlog.Neq(v("Z"), c(z)))
		}
		b.err(lits...)
	}
	{
		lits := []dlog.Literal{s2, dlog.Pos(tape(fiveVars...))}
		for _, s := range states {
			lits = append(lits, dlog.Neq(v("V"), c(s)))
		}
		b.err(lits...)
	}
	// Single row per index pair (functional in cell and state columns).
	b.err(s2, dlog.Pos(tape(v("S"), v("X"), v("Y"), v("Z"), v("V"))), dlog.Pos(tape(v("S"), v("X"), v("Y"), v("Z2"), v("V2"))), dlog.Neq(v("Z"), v("Z2")))
	b.err(s2, dlog.Pos(tape(v("S"), v("X"), v("Y"), v("Z"), v("V"))), dlog.Pos(tape(v("S"), v("X"), v("Y"), v("Z2"), v("V2"))), dlog.Neq(v("V"), v("V2")))
	// Single head.
	b.err(s2, dlog.Pos(tape(v("S"), v("X"), v("Y"), v("Z"), v("V"))), dlog.Pos(tape(v("S"), v("X2"), v("Y2"), v("Z2"), v("V2"))),
		dlog.Neq(v("V"), c(HeadFree)), dlog.Neq(v("V2"), c(HeadFree)), dlog.Neq(v("X"), v("X2")))
	// (2) current index pairs occur in past configurations.
	{
		lits := []dlog.Literal{s2, dlog.Pos(tape(fiveVars...)), dlog.Pos(pastTape(v("A"), v("X2"), v("Y2"), v("Z2"), v("V2")))}
		lits = append(lits, notPastTapeAll(v("A"), v("X"), v("Y"))...)
		b.err(lits...)
	}
	// (3) past index pairs occur in the current configuration.
	{
		lits := []dlog.Literal{s2, dlog.Pos(pastTape(v("A"), v("X"), v("Y"), v("Z"), v("V"))), dlog.Pos(tape(five2...))}
		lits = append(lits, notTapeAll(v("S2"), v("X"), v("Y"))...)
		b.err(lits...)
	}
	// (4) a new configuration must be input while a successor stamp exists.
	{
		lits := []dlog.Literal{s2}
		lits = append(lits, phiNext(v("A"), v("B"))...)
		lits = append(lits, notTapeAll(v("B"), c("0"), c("1"))...)
		b.err(lits...)
	}
	// (5),(6) stamp freshness and provenance.
	b.err(s2, dlog.Pos(tape(fiveVars...)), dlog.Pos(pastTape(v("S"), v("X2"), v("Y2"), v("Z2"), v("V2"))))
	b.err(s2, dlog.Pos(tape(fiveVars...)), nIndex(v("S")))
	// (7),(8) exactly one move per step.
	b.err(s2, dlog.Pos(dlog.NewAtom(RelMove, v("X"))), dlog.Pos(dlog.NewAtom(RelMove, v("Y"))), dlog.Neq(v("X"), v("Y")))
	{
		lits := []dlog.Literal{s2}
		for i := range m.Rules {
			lits = append(lits, dlog.Neg(dlog.NewAtom(RelMove, c(moveConst(i)))))
		}
		b.err(lits...)
	}
	// Per-move rules.
	for i, r := range m.Rules {
		mv := dlog.Pos(dlog.NewAtom(RelMove, c(moveConst(i))))
		base := func() []dlog.Literal {
			lits := []dlog.Literal{s2, mv}
			return append(lits, phiNext(v("A"), v("B"))...)
		}
		// Move/head agreement: the maximal configuration's head must read
		// r.Read in state r.State.
		for _, z := range cells {
			for _, s := range m.States() {
				if s == HeadFree || (s == r.State && z == r.Read) {
					continue
				}
				if s == m.Halt && z != r.Read {
					// Handled the same as any mismatch; fallthrough.
				}
				b.err(append(base(), dlog.Pos(pastTape(v("A"), v("X"), v("Y"), c(z), c(s))))...)
			}
		}
		if r.Move == Right {
			// (9) headless row with headless predecessor copies.
			b.err(append(base(),
				dlog.Pos(pastTape(v("A"), v("X0"), v("X1"), v("Z1"), c(HeadFree))),
				dlog.Pos(pastTape(v("A"), v("X1"), v("X2"), v("Z2"), c(HeadFree))),
				dlog.Neg(tape(v("B"), v("X1"), v("X2"), v("Z2"), c(HeadFree))))...)
			// (10) headless first row copies.
			b.err(append(base(),
				dlog.Pos(pastTape(v("A"), c("0"), c("1"), v("Z"), c(HeadFree))),
				dlog.Neg(tape(v("B"), c("0"), c("1"), v("Z"), c(HeadFree))))...)
			// (11) the head cell is overwritten and releases the head.
			b.err(append(base(),
				dlog.Pos(pastTape(v("A"), v("X1"), v("X2"), c(r.Read), c(r.State))),
				dlog.Neg(tape(v("B"), v("X1"), v("X2"), c(r.Write), c(HeadFree))))...)
			// (12) the successor cell keeps its symbol and takes the head.
			b.err(append(base(),
				dlog.Pos(pastTape(v("A"), v("X1"), v("X2"), c(r.Read), c(r.State))),
				dlog.Pos(pastTape(v("A"), v("X2"), v("X3"), v("Z"), c(HeadFree))),
				dlog.Neg(tape(v("B"), v("X2"), v("X3"), v("Z"), c(r.Next))))...)
		} else {
			// (9L) headless row with headless successor copies.
			b.err(append(base(),
				dlog.Pos(pastTape(v("A"), v("X1"), v("X2"), v("Z1"), c(HeadFree))),
				dlog.Pos(pastTape(v("A"), v("X2"), v("X3"), v("Z2"), c(HeadFree))),
				dlog.Neg(tape(v("B"), v("X1"), v("X2"), v("Z1"), c(HeadFree))))...)
			// (13L) the headless last row copies (its right index is the
			// maximal stage-1 index, the one never retired to oldindex).
			b.err(append(base(),
				dlog.Pos(pastTape(v("A"), v("X"), v("M"), v("Z"), c(HeadFree))),
				pIndex(v("M")), nOld(v("M")),
				dlog.Neg(tape(v("B"), v("X"), v("M"), v("Z"), c(HeadFree))))...)
			// (11L) the head cell is overwritten and releases the head.
			b.err(append(base(),
				dlog.Pos(pastTape(v("A"), v("X1"), v("X2"), c(r.Read), c(r.State))),
				dlog.Neg(tape(v("B"), v("X1"), v("X2"), c(r.Write), c(HeadFree))))...)
			// (12L) the predecessor cell keeps its symbol and takes the head.
			b.err(append(base(),
				dlog.Pos(pastTape(v("A"), v("X0"), v("X1"), v("C"), c(HeadFree))),
				dlog.Pos(pastTape(v("A"), v("X1"), v("X2"), c(r.Read), c(r.State))),
				dlog.Neg(tape(v("B"), v("X0"), v("X1"), v("C"), c(r.Next))))...)
		}
	}

	// --- Stage 3 ------------------------------------------------------------
	s3 := stage("3")
	cell := func(t dlog.Term) dlog.Literal { return dlog.Pos(dlog.NewAtom(RelCell, t)) }
	b.err(s3, cell(v("X")), cell(v("Y")), dlog.Neq(v("X"), v("Y")))
	b.err(s3, dlog.Neg(dlog.NewAtom(RelCell, c("0"))), dlog.Neg(dlog.NewAtom(core.Past(RelCell), c("0"))))
	b.err(s3, cell(v("B")), dlog.Pos(dlog.NewAtom(core.Past(RelCell), v("B"))))
	b.err(s3,
		dlog.Pos(dlog.NewAtom(core.Past(RelCell), v("A"))),
		dlog.Pos(pastTape(v("S"), v("A"), v("B"), v("Z"), v("V"))),
		dlog.Neg(dlog.NewAtom(core.Past(RelCell), v("B"))),
		dlog.Neg(dlog.NewAtom(RelCell, v("B"))))

	// Emission rules (the only non-error outputs).
	for _, z := range m.Symbols {
		if z == m.Blank {
			continue
		}
		b.rule(EmitRel(z),
			cell(c("0")),
			dlog.Pos(pastTape(v("A"), c("0"), c("1"), c(z), c(m.Halt))))
		b.rule(EmitRel(z),
			cell(v("B")), dlog.Neq(v("B"), c("0")),
			dlog.Pos(pastTape(v("A"), c("0"), c("1"), v("Y"), c(m.Halt))),
			dlog.Pos(pastTape(v("A"), v("B"), v("W"), c(z), c(HeadFree))))
	}

	// --- Assemble the Spocus machine ---------------------------------------
	in := relation.Schema{
		{Name: RelStage, Arity: 1},
		{Name: RelTape, Arity: 5},
		{Name: RelIndex, Arity: 1},
		{Name: RelOldindex, Arity: 1},
		{Name: RelMove, Arity: 1},
		{Name: RelCell, Arity: 1},
	}
	out := relation.Schema{{Name: core.ErrorRel, Arity: 0}}
	logNames := []string{core.ErrorRel}
	for _, z := range m.Symbols {
		if z == m.Blank {
			continue
		}
		out = append(out, relation.Decl{Name: EmitRel(z), Arity: 0})
		logNames = append(logNames, EmitRel(z))
	}
	schema := &core.Schema{In: in, Out: out, Log: logNames}
	t, err := core.NewSpocus(schema, b.prog)
	if err != nil {
		return nil, fmt.Errorf("turing: compiled program invalid: %w", err)
	}
	return t.SetName("tm-simulator"), nil
}

// moveConst names the move-rule constant for rule index i (1-based, as in
// the paper's numbering of M's instructions).
func moveConst(i int) string { return fmt.Sprintf("%d", i+1) }

type ruleBuilder struct {
	prog dlog.Program
}

func newRuleBuilder() *ruleBuilder { return &ruleBuilder{} }

func (b *ruleBuilder) err(body ...dlog.Literal) {
	b.prog = append(b.prog, dlog.Rule{Head: dlog.NewAtom(core.ErrorRel), Body: body})
}

func (b *ruleBuilder) rule(head string, body ...dlog.Literal) {
	b.prog = append(b.prog, dlog.Rule{Head: dlog.NewAtom(head), Body: body})
}
