package live

import (
	"expvar"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"
)

// liveMetrics is one service's counters, atomics only — query goroutines
// never take a lock for bookkeeping.
type liveMetrics struct {
	queries   atomic.Int64
	hits      atomic.Int64
	coalesced atomic.Int64
	rejected  atomic.Int64
	timeouts  atomic.Int64
	errors    atomic.Int64
	evicted   atomic.Int64
	latency   latencyHist
}

// Stats is a point-in-time snapshot of a live service's metrics, also
// served at /debug/vars under the key "spocus_live".
type Stats struct {
	Queries   int64 `json:"queries_total"`
	CacheHits int64 `json:"cache_hits_total"`
	// CacheHitRate is CacheHits/Queries (0 before any query).
	CacheHitRate float64 `json:"cache_hit_rate"`
	// Coalesced counts queries that joined an identical in-flight
	// computation: no solver work spent, but the solve's full latency paid —
	// deliberately not counted as cache hits.
	Coalesced int64 `json:"coalesced_total"`
	// Rejected counts queries refused with 429 at saturation.
	Rejected int64 `json:"rejected_total"`
	// Timeouts counts queries that exceeded the per-query deadline.
	Timeouts int64 `json:"timeouts_total"`
	Errors   int64 `json:"errors_total"`
	// Evicted counts answers dropped by the cache's depth-aware eviction.
	Evicted int64 `json:"evictions_total"`
	// InFlight is the current number of admitted computations.
	InFlight int64 `json:"in_flight"`
	// AnswerEntries is the current answer-cache population.
	AnswerEntries int `json:"answer_entries"`
	// SolverHits/SolverMisses aggregate the per-machine verify caches of
	// solved SAT subproblems underneath the answer cache.
	SolverHits   uint64  `json:"solver_cache_hits_total"`
	SolverMisses uint64  `json:"solver_cache_misses_total"`
	P50Micros    float64 `json:"latency_p50_us"`
	P90Micros    float64 `json:"latency_p90_us"`
	P99Micros    float64 `json:"latency_p99_us"`
	MaxMicros    float64 `json:"latency_max_us"`
}

// Stats snapshots the service's metrics.
func (s *Service) Stats() Stats {
	queries := s.m.queries.Load()
	hits := s.m.hits.Load()
	var rate float64
	if queries > 0 {
		rate = float64(hits) / float64(queries)
	}
	st := Stats{
		Queries:      queries,
		CacheHits:    hits,
		CacheHitRate: rate,
		Coalesced:    s.m.coalesced.Load(),
		Rejected:     s.m.rejected.Load(),
		Timeouts:     s.m.timeouts.Load(),
		Errors:       s.m.errors.Load(),
		Evicted:      s.m.evicted.Load(),
		InFlight:     s.inflight.Load(),
		P50Micros:    float64(s.m.latency.quantile(0.50)) / 1e3,
		P90Micros:    float64(s.m.latency.quantile(0.90)) / 1e3,
		P99Micros:    float64(s.m.latency.quantile(0.99)) / 1e3,
		MaxMicros:    float64(s.m.latency.max.Load()) / 1e3,
	}
	s.mu.Lock()
	st.AnswerEntries = len(s.answers)
	for _, vc := range s.vcaches {
		h, m := vc.Stats()
		st.SolverHits += h
		st.SolverMisses += m
	}
	s.mu.Unlock()
	return st
}

// latencyHist mirrors the session engine's lock-free power-of-two
// nanosecond histogram; quantiles read off bucket upper bounds.
type latencyHist struct {
	buckets [48]atomic.Int64
	count   atomic.Int64
	max     atomic.Int64
}

func (h *latencyHist) observe(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	i := bits.Len64(uint64(ns))
	if i >= len(h.buckets) {
		i = len(h.buckets) - 1
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.max.Load()
		if ns <= old || h.max.CompareAndSwap(old, ns) {
			break
		}
	}
}

func (h *latencyHist) quantile(q float64) int64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(q * float64(total))
	var seen int64
	for i := range h.buckets {
		seen += h.buckets[i].Load()
		if seen > rank {
			return 1 << uint(i)
		}
	}
	return h.max.Load()
}

// services tracks live services so the process-wide expvar export can
// aggregate across them (a server normally has exactly one).
var (
	servicesMu sync.Mutex
	services   = make(map[*Service]bool)
	expvarOne  sync.Once
)

func registerService(s *Service) {
	servicesMu.Lock()
	services[s] = true
	servicesMu.Unlock()
	expvarOne.Do(func() {
		expvar.Publish("spocus_live", expvar.Func(func() any {
			servicesMu.Lock()
			defer servicesMu.Unlock()
			agg := make([]Stats, 0, len(services))
			for s := range services {
				agg = append(agg, s.Stats())
			}
			return agg
		}))
	})
}
