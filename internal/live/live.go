// Package live is the online verification plane: a per-process oracle that
// answers the paper's decision questions — goal reachability (Theorem 3.2),
// T_past-input temporal properties (Theorem 3.3), and the §2.1 progress
// service — *from a running session's current state*, rather than offline
// for a whole transducer.
//
// These questions are NEXPTIME-complete in general, so the service treats
// them as an expensive, explicitly-governed resource:
//
//   - Answers are memoized in a shared cache keyed by (machine fingerprint,
//     database, canonicalized prefix, query). Spocus state is exactly the
//     set of cumulated past inputs, so the prefix is canonicalized to that
//     set: two sessions of one model that reached the same state — by any
//     input order, at any step count — share one cache entry.
//   - Cache misses run on a bounded worker pool with a bounded admission
//     queue; beyond that the query is rejected immediately with
//     OverloadedError (HTTP 429 + Retry-After), mirroring the session
//     engine's shard-mailbox backpressure.
//   - Every computation carries a per-query timeout and inherits the
//     caller's context, so an abandoned HTTP request cancels its solver.
//   - Underneath, all queries against one model share a verify.Cache of
//     solved SAT subproblems, scoped by machine fingerprint.
//
// Metrics are exported under the expvar key "spocus_live".
package live

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/models"
	"repro/internal/relation"
	"repro/internal/verify"
)

// Config tunes a Service.
type Config struct {
	// Workers is the number of verification queries solved concurrently
	// (default GOMAXPROCS). Cache hits bypass the pool entirely.
	Workers int
	// Queue is the number of additional queries allowed to wait for a
	// worker (default 2×Workers; negative: no queue). Arrivals beyond
	// Workers+Queue are rejected with OverloadedError — the saturation
	// signal.
	Queue int
	// Timeout bounds one query's wall-clock solving time (default 2s).
	// Expired queries surface context.DeadlineExceeded and are not cached.
	Timeout time.Duration
	// MaxConflicts bounds the SAT search per query (0: unlimited; the
	// timeout is then the only backstop).
	MaxConflicts int64
	// Parallelism is the per-query verify parallelism (default 1: the
	// worker pool, not the individual query, provides concurrency).
	Parallelism int
	// SuggestBudget bounds the transducer executions of one progress query
	// (default verify.DefaultSuggestBudget).
	SuggestBudget int
	// MaxEntries caps the answer cache (default 8192). Overflow evicts the
	// stalest completed entry: the one whose prefix depth lags furthest
	// behind the deepest prefix seen for its machine+database group.
	// Sessions only move forward through prefixes, so short-prefix answers
	// are dead weight once sessions advance — the frontier stays cached.
	MaxEntries int

	// evictRandom restores the pre-depth-aware policy (random replacement
	// via map order). Test-only knob for comparing hit rates.
	evictRandom bool
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Queue == 0 {
		c.Queue = 2 * c.Workers
	} else if c.Queue < 0 {
		c.Queue = 0
	}
	if c.Timeout <= 0 {
		c.Timeout = 2 * time.Second
	}
	if c.Parallelism == 0 {
		c.Parallelism = 1
	}
	if c.SuggestBudget <= 0 {
		c.SuggestBudget = verify.DefaultSuggestBudget
	}
	if c.MaxEntries <= 0 {
		c.MaxEntries = 8192
	}
	return c
}

// Source identifies what a query is asked of: a session's machine (by
// registry model name or inline source), its database, and its cumulated
// past inputs. The instances must be stable snapshots — the service reads
// them concurrently and retains references in cached answers (the session
// engine's Peek provides exactly this).
type Source struct {
	Model string
	Src   string
	// DB is the session's database.
	DB relation.Instance
	// Past is the union of all inputs the session has absorbed — the whole
	// of a Spocus session's verification-relevant state.
	Past relation.Instance
}

// Service is the live verification oracle. It is safe for concurrent use.
type Service struct {
	cfg      Config
	slots    chan struct{}
	inflight atomic.Int64

	mu       sync.Mutex
	machines map[string]*machineEntry
	vcaches  map[string]*verify.Cache
	answers  map[answerKey]*entry
	// maxDepth is the deepest prefix seen per machine+database group — the
	// eviction policy's high-water mark. Monotone; never shrinks on evict.
	maxDepth map[string]int

	m liveMetrics
}

// machineEntry is one resolved machine plus its fingerprint-scoped solver
// cache, shared by every session and query of that machine.
type machineEntry struct {
	mach   *core.Machine
	fp     string
	vcache *verify.Cache
}

type answerKey struct {
	fp     string // machine fingerprint
	db     string // canonical database rendering
	prefix string // canonical cumulated-input rendering
	kind   string // "goal" | "temporal" | "progress"
	query  string // normalized query text
}

// entry is one answer-cache slot with single-flight semantics: the first
// asker computes, concurrent identical queries wait on done and share the
// result instead of occupying workers.
type entry struct {
	done chan struct{}
	val  any
	err  error
	// depth is the prefix's tuple count and group its machine+database
	// coordinate — together they let eviction rank this answer's staleness
	// against the deepest prefix the group has reached.
	depth int
	group string
}

// New creates a Service.
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	s := &Service{
		cfg:      cfg,
		slots:    make(chan struct{}, cfg.Workers),
		machines: make(map[string]*machineEntry),
		vcaches:  make(map[string]*verify.Cache),
		answers:  make(map[answerKey]*entry),
		maxDepth: make(map[string]int),
	}
	registerService(s)
	return s
}

// resolve returns the machine entry for a source, building and caching it
// on first use. Only Spocus machines are admitted — the decision procedures
// are proved for exactly that class.
func (s *Service) resolve(src Source) (*machineEntry, error) {
	var key string
	switch {
	case src.Model != "" && src.Src == "":
		key = "model\x00" + src.Model
	case src.Src != "" && src.Model == "":
		sum := sha256.Sum256([]byte(src.Src))
		key = "src\x00" + hex.EncodeToString(sum[:16])
	default:
		return nil, &BadQueryError{Err: fmt.Errorf("live: source needs exactly one of model or src")}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.machines[key]; ok {
		return e, nil
	}
	var mach *core.Machine
	if src.Model != "" {
		if mach = models.Get(src.Model); mach == nil {
			return nil, &BadQueryError{Err: fmt.Errorf("live: unknown model %q", src.Model)}
		}
	} else {
		var err error
		if mach, err = core.ParseProgram(src.Src); err != nil {
			return nil, &BadQueryError{Err: fmt.Errorf("live: %w", err)}
		}
	}
	if mach.Kind() != core.KindSpocus {
		return nil, &BadQueryError{Err: fmt.Errorf("live: %s machine %q: online verification requires a Spocus transducer", mach.Kind(), mach.Name())}
	}
	fp := mach.Fingerprint()
	vc, ok := s.vcaches[fp]
	if !ok {
		vc = verify.NewCache()
		s.vcaches[fp] = vc
	}
	e := &machineEntry{mach: mach, fp: fp, vcache: vc}
	s.machines[key] = e
	return e, nil
}

// canonicalInstance renders an instance deterministically: relations in
// name order, tuples in key order. Two sessions with equal cumulated inputs
// render identically regardless of input order or step count.
func canonicalInstance(in relation.Instance) string {
	if in == nil {
		return ""
	}
	names := make([]string, 0, len(in))
	for name := range in {
		if in[name].Len() == 0 {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		b.WriteString(name)
		keys := make([]string, 0, in[name].Len())
		for _, t := range in[name].Tuples() {
			keys = append(keys, t.Key())
		}
		// Tuples() is already sorted, but do not depend on it here: the
		// cache key must stay canonical even if that contract shifts.
		sort.Strings(keys)
		for _, k := range keys {
			b.WriteByte('\x01')
			b.WriteString(k)
		}
		b.WriteByte('\x02')
	}
	return b.String()
}

// prefixSeq turns the cumulated past inputs into the canonical one-step
// prefix handed to the decision procedures. For a Spocus machine this is
// behaviorally interchangeable with the session's real input sequence:
// state after the prefix is exactly the cumulated input set.
func prefixSeq(past relation.Instance) relation.Sequence {
	if past == nil || past.Len() == 0 {
		return nil
	}
	return relation.Sequence{past}
}

// prefixDepth measures how far a session has advanced: the total tuple
// count of its cumulated past. Monotone along any Spocus run, so it orders
// a group's cache entries oldest-state-first for eviction.
func prefixDepth(past relation.Instance) int {
	if past == nil {
		return 0
	}
	return past.Len()
}

// acquire admits one computation: it takes a waiting slot if fewer than
// Workers+Queue computations are in flight and then blocks for a worker,
// or rejects immediately with OverloadedError.
func (s *Service) acquire(ctx context.Context) error {
	if n := s.inflight.Add(1); n > int64(s.cfg.Workers+s.cfg.Queue) {
		s.inflight.Add(-1)
		s.m.rejected.Add(1)
		return &OverloadedError{InFlight: int(n - 1)}
	}
	select {
	case s.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		s.inflight.Add(-1)
		return ctx.Err()
	}
}

func (s *Service) release() {
	<-s.slots
	s.inflight.Add(-1)
}

// getOrCompute is the memoized, admission-controlled execution path shared
// by all query kinds. It returns (answer, servedFromCache, error). Errors
// are never cached. An in-flight identical query is joined rather than
// recomputed; such waiters are counted as coalesced, not as cache hits —
// they spend no solver work but still pay the solve's latency, so only
// answers served from a completed entry report Cached (and are the
// demonstrably cheap path).
func (s *Service) getOrCompute(ctx context.Context, key answerKey, depth int, compute func(context.Context) (any, error)) (any, bool, error) {
	group := key.fp + "\x00" + key.db
	s.mu.Lock()
	if depth > s.maxDepth[group] {
		s.maxDepth[group] = depth
	}
	if e, ok := s.answers[key]; ok {
		s.mu.Unlock()
		select {
		case <-e.done:
			return e.val, true, e.err
		default:
		}
		s.m.coalesced.Add(1)
		select {
		case <-e.done:
			return e.val, false, e.err
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
	}
	e := &entry{done: make(chan struct{}), depth: depth, group: group}
	s.answers[key] = e
	s.evictLocked()
	s.mu.Unlock()

	finish := func(v any, err error) {
		e.val, e.err = v, err
		if err != nil {
			// Failed computations (timeout, overload, cancellation) are not
			// cached: the next asker retries.
			s.mu.Lock()
			if s.answers[key] == e {
				delete(s.answers, key)
			}
			s.mu.Unlock()
		}
		close(e.done)
	}

	if err := s.acquire(ctx); err != nil {
		finish(nil, err)
		return nil, false, err
	}
	defer s.release()
	qctx, cancel := context.WithTimeout(ctx, s.cfg.Timeout)
	defer cancel()
	v, err := compute(qctx)
	if err != nil && qctx.Err() == context.DeadlineExceeded {
		s.m.timeouts.Add(1)
		err = context.DeadlineExceeded
	}
	finish(v, err)
	return v, false, err
}

// evictLocked bounds the answer map. The policy exploits the Spocus prefix
// order: a session's cumulated past only grows, so an answer whose prefix
// depth lags far behind the deepest prefix its machine+database group has
// reached belongs to a state no session will revisit. Each pass evicts the
// completed entry with the greatest staleness (maxDepth[group] − depth);
// in-flight entries are never evicted — waiters hold them.
func (s *Service) evictLocked() {
	if s.cfg.evictRandom {
		for key, e := range s.answers {
			if len(s.answers) <= s.cfg.MaxEntries {
				return
			}
			select {
			case <-e.done:
				delete(s.answers, key)
				s.m.evicted.Add(1)
			default:
			}
		}
		return
	}
	for len(s.answers) > s.cfg.MaxEntries {
		var victim answerKey
		stalest, found := -1, false
		for key, e := range s.answers {
			select {
			case <-e.done:
			default:
				continue // in-flight
			}
			if stale := s.maxDepth[e.group] - e.depth; stale > stalest {
				victim, stalest, found = key, stale, true
			}
		}
		if !found {
			return // everything in-flight; cap is soft
		}
		delete(s.answers, victim)
		s.m.evicted.Add(1)
	}
}

func (s *Service) opts(ctx context.Context, me *machineEntry) *verify.Options {
	return &verify.Options{
		Context:      ctx,
		Cache:        me.vcache,
		MaxConflicts: s.cfg.MaxConflicts,
		Parallelism:  s.cfg.Parallelism,
	}
}

// GoalAnswer is the wire answer of a reachability query.
type GoalAnswer struct {
	Goal      string            `json:"goal"`
	Reachable bool              `json:"reachable"`
	// Witness is a continuation input sequence achieving the goal (shared
	// with the cache — treat as read-only).
	Witness relation.Sequence `json:"witness,omitempty"`
	Cached  bool              `json:"cached"`
	// ElapsedMicros is this request's service time, including cache lookup.
	ElapsedMicros float64 `json:"elapsed_us"`
}

// Goal answers "can this session still reach the goal?" — Theorem 3.2's
// reachability from the session's current state.
func (s *Service) Goal(ctx context.Context, src Source, goal string) (*GoalAnswer, error) {
	start := time.Now()
	s.m.queries.Add(1)
	g, err := verify.ParseGoal(goal)
	if err != nil {
		s.m.errors.Add(1)
		return nil, &BadQueryError{Err: err}
	}
	me, err := s.resolve(src)
	if err != nil {
		s.m.errors.Add(1)
		return nil, err
	}
	key := answerKey{fp: me.fp, db: canonicalInstance(src.DB), prefix: canonicalInstance(src.Past), kind: "goal", query: g.String()}
	v, cached, err := s.getOrCompute(ctx, key, prefixDepth(src.Past), func(ctx context.Context) (any, error) {
		res, err := verify.ReachGoalFrom(me.mach, src.DB, prefixSeq(src.Past), g, s.opts(ctx, me))
		if err != nil {
			return nil, err
		}
		return &GoalAnswer{Goal: g.String(), Reachable: res.Reachable, Witness: res.Witness}, nil
	})
	return done(s, v, cached, start, err, func(v any) *GoalAnswer {
		a := *v.(*GoalAnswer)
		a.Cached = cached
		a.ElapsedMicros = micros(start)
		return &a
	})
}

// TemporalAnswer is the wire answer of a temporal query.
type TemporalAnswer struct {
	Conditions []string `json:"conditions"`
	// Holds reports that no continuation of the session can violate any
	// condition at any future step.
	Holds bool `json:"holds"`
	// Violated names the condition a counterexample continuation violates.
	Violated string `json:"violated,omitempty"`
	// Counterexample is the violating continuation (read-only).
	Counterexample relation.Sequence `json:"counterexample,omitempty"`
	Cached         bool              `json:"cached"`
	ElapsedMicros  float64           `json:"elapsed_us"`
}

// Temporal answers "can this session still violate these T_past-input
// conditions?" — Theorem 3.3 from the session's current state.
func (s *Service) Temporal(ctx context.Context, src Source, conds []string) (*TemporalAnswer, error) {
	start := time.Now()
	s.m.queries.Add(1)
	if len(conds) == 0 {
		s.m.errors.Add(1)
		return nil, &BadQueryError{Err: fmt.Errorf("live: temporal query needs at least one condition")}
	}
	parsed := make([]*verify.Condition, len(conds))
	norm := make([]string, len(conds))
	for i, c := range conds {
		p, err := verify.ParseCondition(c)
		if err != nil {
			s.m.errors.Add(1)
			return nil, &BadQueryError{Err: err}
		}
		parsed[i], norm[i] = p, p.String()
	}
	me, err := s.resolve(src)
	if err != nil {
		s.m.errors.Add(1)
		return nil, err
	}
	key := answerKey{fp: me.fp, db: canonicalInstance(src.DB), prefix: canonicalInstance(src.Past), kind: "temporal", query: strings.Join(norm, "\x01")}
	v, cached, err := s.getOrCompute(ctx, key, prefixDepth(src.Past), func(ctx context.Context) (any, error) {
		res, err := verify.CheckTemporalFrom(me.mach, src.DB, prefixSeq(src.Past), parsed, s.opts(ctx, me))
		if err != nil {
			return nil, err
		}
		a := &TemporalAnswer{Conditions: norm, Holds: res.Holds}
		if res.Violated != nil {
			a.Violated = res.Violated.String()
			a.Counterexample = res.Counterexample
		}
		return a, nil
	})
	return done(s, v, cached, start, err, func(v any) *TemporalAnswer {
		a := *v.(*TemporalAnswer)
		a.Cached = cached
		a.ElapsedMicros = micros(start)
		return &a
	})
}

// ProgressSuggestion is one ranked next-input recommendation on the wire.
type ProgressSuggestion struct {
	// Input is the suggested fact, rendered as it would be input:
	// rel(c1,...,cn).
	Input    string `json:"input"`
	Distance int    `json:"distance"`
	// Follow, for distance 2, is one follow-up input completing the goal.
	Follow string `json:"follow,omitempty"`
}

// ProgressAnswer is the wire answer of a progress query.
type ProgressAnswer struct {
	Goal string `json:"goal"`
	// Suggestions is best-first: inputs achieving the goal immediately,
	// then inputs enabling it on the following step.
	Suggestions []ProgressSuggestion `json:"suggestions"`
	// Truncated reports the candidate budget ran out: missing suggestions
	// are unknown, not ruled out.
	Truncated     bool    `json:"truncated,omitempty"`
	Cached        bool    `json:"cached"`
	ElapsedMicros float64 `json:"elapsed_us"`
}

// Progress is the §2.1 progress service: ranked next inputs that advance
// the session toward the goal (Figure 1's order-then-pay shape).
func (s *Service) Progress(ctx context.Context, src Source, goal string) (*ProgressAnswer, error) {
	start := time.Now()
	s.m.queries.Add(1)
	g, err := verify.ParseGoal(goal)
	if err != nil {
		s.m.errors.Add(1)
		return nil, &BadQueryError{Err: err}
	}
	me, err := s.resolve(src)
	if err != nil {
		s.m.errors.Add(1)
		return nil, err
	}
	key := answerKey{fp: me.fp, db: canonicalInstance(src.DB), prefix: canonicalInstance(src.Past), kind: "progress", query: g.String()}
	v, cached, err := s.getOrCompute(ctx, key, prefixDepth(src.Past), func(ctx context.Context) (any, error) {
		res, err := verify.SuggestProgress(ctx, me.mach, src.DB, prefixSeq(src.Past), g, s.pool(me, src), s.cfg.SuggestBudget)
		if err != nil {
			return nil, err
		}
		a := &ProgressAnswer{Goal: g.String(), Truncated: res.Truncated}
		for _, sg := range res.Suggestions {
			w := ProgressSuggestion{Input: sg.Fact.String(), Distance: sg.Distance}
			if sg.Follow != nil {
				w.Follow = sg.Follow.String()
			}
			a.Suggestions = append(a.Suggestions, w)
		}
		return a, nil
	})
	return done(s, v, cached, start, err, func(v any) *ProgressAnswer {
		a := *v.(*ProgressAnswer)
		a.Cached = cached
		a.ElapsedMicros = micros(start)
		return &a
	})
}

// pool assembles the constant pool progress candidates draw from: the
// database's active domain, the session's past inputs, and the machine's
// rule constants.
func (s *Service) pool(me *machineEntry, src Source) []relation.Const {
	seen := map[relation.Const]bool{}
	var out []relation.Const
	add := func(cs []relation.Const) {
		for _, c := range cs {
			if !seen[c] {
				seen[c] = true
				out = append(out, c)
			}
		}
	}
	if src.DB != nil {
		add(src.DB.ActiveDomain())
	}
	if src.Past != nil {
		add(src.Past.ActiveDomain())
	}
	add(me.mach.Constants())
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// done finalizes one query: error/latency accounting plus per-request
// decoration of the (shared, read-only) cached answer.
func done[T any](s *Service, v any, cached bool, start time.Time, err error, wrap func(any) *T) (*T, error) {
	if err != nil {
		s.m.errors.Add(1)
		return nil, err
	}
	if cached {
		s.m.hits.Add(1)
	}
	s.m.latency.observe(time.Since(start))
	return wrap(v), nil
}

func micros(start time.Time) float64 { return float64(time.Since(start)) / 1e3 }

// OverloadedError reports a query rejected because the worker pool and its
// admission queue are saturated. The HTTP layer maps it to 429; clients
// should back off and retry — or rely on a cached answer appearing once a
// duplicate query completes.
type OverloadedError struct{ InFlight int }

func (err *OverloadedError) Error() string {
	return fmt.Sprintf("live verification overloaded: %d queries in flight", err.InFlight)
}

// BadQueryError reports a malformed query or source (unparsable goal or
// condition, unknown model, non-Spocus machine). Mapped to HTTP 400.
type BadQueryError struct{ Err error }

func (err *BadQueryError) Error() string { return err.Err.Error() }
func (err *BadQueryError) Unwrap() error { return err.Err }
