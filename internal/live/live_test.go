package live

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"testing"
	"time"

	"repro/internal/models"
	"repro/internal/relation"
)

// cumulate folds an input sequence into the cumulated past-input instance —
// what a session's state is, per the Spocus definition.
func cumulate(seq relation.Sequence) relation.Instance {
	out := relation.NewInstance()
	for _, in := range seq {
		out.UnionWith(in)
	}
	return out
}

func TestGoalFromPrefixAndAnswerCache(t *testing.T) {
	s := New(Config{Timeout: time.Minute})
	db := models.MagazineDB()
	fig1 := models.Fig1Inputs()

	// After step 1 of Figure 1 (time and newsweek ordered), delivery is
	// still reachable.
	src := Source{Model: "short", DB: db, Past: cumulate(fig1[:1])}
	a, err := s.Goal(context.Background(), src, "deliver(X)")
	if err != nil {
		t.Fatal(err)
	}
	if !a.Reachable || a.Cached {
		t.Fatalf("first query: got reachable=%v cached=%v, want true,false", a.Reachable, a.Cached)
	}

	// The same cumulated state reached by a different session (different
	// input split, different step count) must hit the shared answer cache.
	other := relation.Sequence{
		models.Step(models.F("order", "newsweek")),
		models.Step(models.F("order", "time")),
	}
	src2 := Source{Model: "short", DB: db, Past: cumulate(other)}
	a2, err := s.Goal(context.Background(), src2, "deliver(X)")
	if err != nil {
		t.Fatal(err)
	}
	if !a2.Reachable || !a2.Cached {
		t.Fatalf("second query: got reachable=%v cached=%v, want true,true", a2.Reachable, a2.Cached)
	}
	if st := s.Stats(); st.CacheHits != 1 || st.Queries != 2 {
		t.Fatalf("stats: %+v, want 1 hit of 2 queries", st)
	}

	// After the full Figure 1 run every priced product is paid for, so no
	// continuation can deliver anything again.
	src3 := Source{Model: "short", DB: db, Past: cumulate(fig1)}
	a3, err := s.Goal(context.Background(), src3, "deliver(X)")
	if err != nil {
		t.Fatal(err)
	}
	if a3.Reachable {
		t.Fatalf("deliver(X) should be unreachable after the full Figure 1 run; witness %v", a3.Witness)
	}
}

func TestTemporalFromPrefix(t *testing.T) {
	s := New(Config{Timeout: time.Minute})
	db := models.MagazineDB()

	// "deliveries only to previously ordered products" holds of SHORT from
	// any state, including mid-run.
	src := Source{Model: "short", DB: db, Past: cumulate(models.Fig1Inputs()[:2])}
	a, err := s.Temporal(context.Background(), src, []string{"deliver(X) => past-order(X)"})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Holds {
		t.Fatalf("condition should hold; counterexample %v violating %s", a.Counterexample, a.Violated)
	}

	// "never deliver time" is still violable from a state where time is
	// ordered but unpaid...
	src = Source{Model: "short", DB: db, Past: cumulate(models.Fig1Inputs()[:1])}
	a, err = s.Temporal(context.Background(), src, []string{"deliver(time) =>"})
	if err != nil {
		t.Fatal(err)
	}
	if a.Holds {
		t.Fatal("deliver(time) should be reachable from the step-1 state")
	}
	// ...but unviolable once time has been paid for: past-pay(time, 855)
	// blocks the only delivery rule forever.
	src = Source{Model: "short", DB: db, Past: cumulate(models.Fig1Inputs())}
	a2, err := s.Temporal(context.Background(), src, []string{"deliver(time) =>"})
	if err != nil {
		t.Fatal(err)
	}
	if !a2.Holds {
		t.Fatalf("deliver(time) should be unreachable after full payment; counterexample %v", a2.Counterexample)
	}
}

// d1Set runs a progress query and returns the distance-1 inputs, sorted.
func d1Set(t *testing.T, s *Service, model string, db relation.Instance, past relation.Instance, goal string) []string {
	t.Helper()
	a, err := s.Progress(context.Background(), Source{Model: model, DB: db, Past: past}, goal)
	if err != nil {
		t.Fatal(err)
	}
	if a.Truncated {
		t.Fatalf("progress truncated at budget; raise SuggestBudget for this test")
	}
	var out []string
	for _, sg := range a.Suggestions {
		if sg.Distance == 1 {
			out = append(out, sg.Input)
		}
	}
	sort.Strings(out)
	return out
}

func eq(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestProgressGoldenFig1 replays the Figure 1 run of SHORT prefix by prefix
// and checks the progress service's immediate (distance-1) suggestions at
// each point: exactly the payments that would trigger a delivery right now.
func TestProgressGoldenFig1(t *testing.T) {
	s := New(Config{Timeout: time.Minute})
	db := models.MagazineDB()
	fig1 := models.Fig1Inputs()
	want := [][]string{
		0: {}, // nothing ordered: no single input delivers
		1: {"pay(newsweek, 845)", "pay(time, 855)"},
		2: {"pay(le-monde, 8350)", "pay(newsweek, 845)"},
		3: {}, // everything paid: delivery unreachable
	}
	for k := 0; k <= len(fig1); k++ {
		got := d1Set(t, s, "short", db, cumulate(fig1[:k]), "deliver(X)")
		if !eq(got, want[k]) {
			t.Errorf("prefix %d: distance-1 suggestions %v, want %v", k, got, want[k])
		}
	}
}

// TestProgressGoldenFig2 does the same for the Figure 2 run of FRIENDLY,
// whose trace includes an unavailable product, a misdirected payment, a
// double payment, and a pending-bills reminder.
func TestProgressGoldenFig2(t *testing.T) {
	s := New(Config{Timeout: time.Minute})
	db := models.MagazineDB()
	fig2 := models.Fig2Inputs()
	want := [][]string{
		0: {},
		1: {"pay(time, 855)"}, // la-stampa has no price: only time is billable
		2: {},                // time paid, le-monde payment rejected (never ordered)
		3: {"pay(newsweek, 845)"},
		4: {"pay(newsweek, 845)"}, // pending-bills changes no state
		5: {},                    // newsweek paid too
	}
	for k := 0; k <= len(fig2); k++ {
		got := d1Set(t, s, "friendly", db, cumulate(fig2[:k]), "deliver(X)")
		if !eq(got, want[k]) {
			t.Errorf("prefix %d: distance-1 suggestions %v, want %v", k, got, want[k])
		}
	}
}

// TestProgressFollowUps checks the two-step shape of Figure 1: from the
// empty session, ordering a product is suggested with its exact payment as
// the follow-up.
func TestProgressFollowUps(t *testing.T) {
	s := New(Config{Timeout: time.Minute})
	a, err := s.Progress(context.Background(), Source{Model: "short", DB: models.MagazineDB()}, "deliver(X)")
	if err != nil {
		t.Fatal(err)
	}
	follow := map[string]string{}
	for _, sg := range a.Suggestions {
		if sg.Distance == 2 {
			follow[sg.Input] = sg.Follow
		}
	}
	want := map[string]string{
		"order(le-monde)": "pay(le-monde, 8350)",
		"order(newsweek)": "pay(newsweek, 845)",
		"order(time)":     "pay(time, 855)",
	}
	for in, f := range want {
		if follow[in] != f {
			t.Errorf("suggestion %s: follow-up %q, want %q", in, follow[in], f)
		}
	}
}

// TestAdmissionControl drives getOrCompute directly with a blocking
// computation so saturation is deterministic: with one worker and no queue,
// a second distinct query is rejected with OverloadedError while an
// identical one coalesces onto the in-flight computation.
func TestAdmissionControl(t *testing.T) {
	s := New(Config{Workers: 1, Queue: -1, Timeout: time.Minute})
	keyA := answerKey{fp: "f", kind: "goal", query: "a"}
	keyB := answerKey{fp: "f", kind: "goal", query: "b"}

	block := make(chan struct{})
	started := make(chan struct{})
	type res struct {
		v      any
		cached bool
		err    error
	}
	first := make(chan res, 1)
	go func() {
		v, cached, err := s.getOrCompute(context.Background(), keyA, 0, func(context.Context) (any, error) {
			close(started)
			<-block
			return "answer", nil
		})
		first <- res{v, cached, err}
	}()
	<-started

	// Distinct query at saturation: immediate 429.
	_, _, err := s.getOrCompute(context.Background(), keyB, 0, func(context.Context) (any, error) {
		t.Error("rejected query must not compute")
		return nil, nil
	})
	var over *OverloadedError
	if !errors.As(err, &over) {
		t.Fatalf("got %v, want OverloadedError", err)
	}
	if s.Stats().Rejected != 1 {
		t.Fatalf("rejected counter = %d, want 1", s.Stats().Rejected)
	}

	// Identical query: joins the in-flight computation instead of being
	// rejected or recomputing.
	second := make(chan res, 1)
	go func() {
		v, cached, err := s.getOrCompute(context.Background(), keyA, 0, func(context.Context) (any, error) {
			t.Error("coalesced query must not recompute")
			return nil, nil
		})
		second <- res{v, cached, err}
	}()
	time.Sleep(10 * time.Millisecond) // let the waiter attach
	close(block)

	r1, r2 := <-first, <-second
	if r1.err != nil || r1.v != "answer" || r1.cached {
		t.Fatalf("owner: %+v", r1)
	}
	if r2.err != nil || r2.v != "answer" || r2.cached {
		t.Fatalf("waiter: %+v", r2)
	}
	if st := s.Stats(); st.Coalesced != 1 {
		t.Fatalf("coalesced_total = %d, want 1", st.Coalesced)
	}

	// Now that the entry is complete, the same key is a true cache hit.
	v0, cached, err := s.getOrCompute(context.Background(), keyA, 0, func(context.Context) (any, error) {
		t.Error("cached query must not recompute")
		return nil, nil
	})
	if err != nil || v0 != "answer" || !cached {
		t.Fatalf("completed-entry hit: %v %v %v", v0, cached, err)
	}

	// The pool has drained: the previously rejected query now runs.
	v, _, err := s.getOrCompute(context.Background(), keyB, 0, func(context.Context) (any, error) { return "b", nil })
	if err != nil || v != "b" {
		t.Fatalf("after drain: %v, %v", v, err)
	}
}

// TestQueryTimeout checks the per-query deadline: an expired computation
// surfaces context.DeadlineExceeded, counts as a timeout, and is not
// cached (the next asker recomputes).
func TestQueryTimeout(t *testing.T) {
	s := New(Config{Workers: 1, Timeout: 20 * time.Millisecond})
	key := answerKey{fp: "f", kind: "goal", query: "slow"}
	_, _, err := s.getOrCompute(context.Background(), key, 0, func(ctx context.Context) (any, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want DeadlineExceeded", err)
	}
	if st := s.Stats(); st.Timeouts != 1 || st.AnswerEntries != 0 {
		t.Fatalf("stats after timeout: %+v", st)
	}
	v, cached, err := s.getOrCompute(context.Background(), key, 0, func(context.Context) (any, error) { return "ok", nil })
	if err != nil || cached || v != "ok" {
		t.Fatalf("retry after timeout: %v %v %v", v, cached, err)
	}
}

// TestAnswerEviction checks the cache cap: completed entries are evicted
// once MaxEntries is exceeded.
func TestAnswerEviction(t *testing.T) {
	s := New(Config{Workers: 1, MaxEntries: 8, Timeout: time.Minute})
	for i := 0; i < 50; i++ {
		key := answerKey{fp: "f", kind: "goal", query: fmt.Sprint(i)}
		if _, _, err := s.getOrCompute(context.Background(), key, 0, func(context.Context) (any, error) { return i, nil }); err != nil {
			t.Fatal(err)
		}
	}
	if n := s.Stats().AnswerEntries; n > 9 {
		t.Fatalf("answer cache grew to %d entries, cap 8", n)
	}
	if s.Stats().Evicted == 0 {
		t.Fatal("expected evictions past the cap")
	}
}

// TestDepthAwareEvictionBeatsRandom compares the two eviction policies on
// the workload the cache exists for: a fleet of sessions marching forward
// through prefixes, with clients re-polling each state before stepping on.
// It drives getOrCompute directly with synthetic keys and free computes —
// real solver queries would make the comparison take minutes. Depth-aware
// eviction keeps the frontier resident (every re-poll hits: past prefixes
// are stale by construction, so they are evicted first); random replacement
// evicts frontier entries too and must lose hits.
func TestDepthAwareEvictionBeatsRandom(t *testing.T) {
	const (
		sessions = 16
		depths   = 20
	)
	run := func(random bool) (hits, queries int, st Stats) {
		s := New(Config{Workers: 1, MaxEntries: sessions, Timeout: time.Minute, evictRandom: random})
		ask := func(sess, depth int) {
			key := answerKey{fp: "machine", db: "db", kind: "goal", query: "q",
				prefix: fmt.Sprintf("s%02d-d%02d", sess, depth)}
			_, cached, err := s.getOrCompute(context.Background(), key, depth,
				func(context.Context) (any, error) { return depth, nil })
			if err != nil {
				t.Fatal(err)
			}
			queries++
			if cached {
				hits++
			}
		}
		for d := 0; d < depths; d++ {
			for i := 0; i < sessions; i++ { // every session steps to depth d and asks
				ask(i, d)
			}
			for i := 0; i < sessions; i++ { // clients re-poll before stepping on
				ask(i, d)
			}
		}
		return hits, queries, s.Stats()
	}
	depthHits, n, st := run(false)
	randHits, _, _ := run(true)
	t.Logf("same cap (%d): depth-aware %d/%d hits, random %d/%d hits", sessions, depthHits, n, randHits, n)
	// Depth-aware is deterministic here: a frontier insert always finds a
	// strictly staler past-depth victim, so every re-poll hits.
	if want := sessions * depths; depthHits != want {
		t.Errorf("depth-aware eviction: %d/%d hits, want %d (frontier must stay resident)", depthHits, n, want)
	}
	if randHits >= depthHits {
		t.Errorf("random eviction got %d hits, depth-aware %d; expected strictly fewer", randHits, depthHits)
	}
	if st.Evicted == 0 {
		t.Error("depth-aware run recorded no evictions; cap never bound")
	}
}

func TestBadSources(t *testing.T) {
	s := New(Config{})
	ctx := context.Background()
	var bad *BadQueryError
	if _, err := s.Goal(ctx, Source{Model: "no-such-model"}, "deliver(X)"); !errors.As(err, &bad) {
		t.Fatalf("unknown model: %v", err)
	}
	if _, err := s.Goal(ctx, Source{}, "deliver(X)"); !errors.As(err, &bad) {
		t.Fatalf("empty source: %v", err)
	}
	if _, err := s.Goal(ctx, Source{Model: "short", Src: "x"}, "deliver(X)"); !errors.As(err, &bad) {
		t.Fatalf("ambiguous source: %v", err)
	}
	if _, err := s.Goal(ctx, Source{Model: "short"}, "deliver("); !errors.As(err, &bad) {
		t.Fatalf("bad goal: %v", err)
	}
	if _, err := s.Temporal(ctx, Source{Model: "short"}, nil); !errors.As(err, &bad) {
		t.Fatalf("no conditions: %v", err)
	}
}

// TestSrcSource checks inline-source resolution and that two textually
// identical sources share one machine entry (and so one cache scope).
func TestSrcSource(t *testing.T) {
	s := New(Config{Timeout: time.Minute})
	db := models.MagazineDB()
	a, err := s.Goal(context.Background(), Source{Src: models.ShortSrc, DB: db}, "deliver(X)")
	if err != nil {
		t.Fatal(err)
	}
	if !a.Reachable {
		t.Fatal("deliver(X) should be reachable from scratch")
	}
	a2, err := s.Goal(context.Background(), Source{Src: models.ShortSrc, DB: db}, "deliver(X)")
	if err != nil {
		t.Fatal(err)
	}
	if !a2.Cached {
		t.Fatal("identical inline source must share the answer cache")
	}
}
