// Package codec is the binary wire-and-disk encoding of the serving stack:
// a versioned, length-prefixed format for relational values (constants,
// tuples, relations, instances, sequences) with a per-stream constant
// intern table. Everything durable in this system is relational and highly
// repetitive — the same constants recur across tuples, steps, and log
// deltas (the cumulated-input shape of Spocus state) — so the codec assigns
// each distinct constant a varint ID on first use and references it by ID
// thereafter. The intern table is part of the stream itself: every record
// carries the table entries it introduces, so any prefix of a stream is
// self-describing and a torn tail never strands a reader.
//
// Record envelope (what Encoder.Finish returns and Decoder.Record parses):
//
//	[0]  magic 0xC5            — cannot begin a JSON document, so binary and
//	                             JSON records coexist in one stream and are
//	                             told apart per record (see IsBinary)
//	[1]  version (currently 1)
//	[2]  flags: bit0 = table reset — set on the first record after the
//	     encoder started or Reset; a decoder seeing it clears its table, so
//	     scans that begin at a stream boundary (a fresh WAL segment, a
//	     snapshot file, a re-keyed replication stream) resynchronize without
//	     out-of-band signalling
//	[..] uvarint: number of intern definitions introduced by this record
//	[..] that many length-prefixed strings; IDs are assigned sequentially
//	     in stream order (the stream's first-ever definition is ID 0)
//	[..] body: schema-driven, written by the caller through the primitive
//	     methods; all strings are varint table references
//
// The schemas of the session layer's records (WAL records, snapshot images,
// ship images) are built from these primitives in internal/session, which
// owns those types; this package owns framing, interning, and the
// relational value encodings shared by all of them.
//
// Encoders are strictly stream-scoped: every record started MUST be
// finished and delivered to the stream in order, or the encoder Reset —
// interleaving or dropping records desynchronizes the table. The intended
// owners (a shard's WAL writer, a snapshot writer, a replication stream)
// are all single-writer by construction.
package codec

import (
	"encoding/binary"
	"sort"

	"repro/internal/compose"
	"repro/internal/relation"
)

const (
	// Magic is the first byte of every binary record. JSON payloads begin
	// with '{' (0x7B), so one byte distinguishes the formats.
	Magic = 0xC5
	// Version is the current format version. Decoders reject anything else.
	Version = 1

	flagReset = 0x01
)

// IsBinary reports whether payload is a codec record (as opposed to a
// legacy JSON record). Safe on empty and truncated input.
func IsBinary(payload []byte) bool {
	return len(payload) > 0 && payload[0] == Magic
}

// Encoder builds binary records against one stream's intern table.
// Not safe for concurrent use.
type Encoder struct {
	table map[string]uint64
	next  uint64
	fresh bool     // the next Finish carries the reset flag
	defs  []string // strings first interned by the record under construction
	body  []byte
	tmp   [binary.MaxVarintLen64]byte
}

// NewEncoder returns an encoder with an empty table; its first record will
// carry the reset flag.
func NewEncoder() *Encoder {
	return &Encoder{table: make(map[string]uint64), fresh: true}
}

// Reset clears the intern table, starting a new stream: the next record
// carries the reset flag and redefines every constant it uses.
func (e *Encoder) Reset() {
	clear(e.table)
	e.next = 0
	e.fresh = true
	e.defs = e.defs[:0]
	e.body = e.body[:0]
}

// TableLen returns the number of intern entries assigned so far (entries
// pending in an unfinished record included). Streams use it as a cheap
// consistency fingerprint between an encoder and a remote decoder.
func (e *Encoder) TableLen() int { return int(e.next) }

// Finish seals the record under construction and returns its encoded form
// (envelope + pending definitions + body). The encoder is ready for the
// next record afterwards; the returned slice is freshly allocated.
func (e *Encoder) Finish() []byte {
	size := 3 + binary.MaxVarintLen64 + len(e.body)
	for _, d := range e.defs {
		size += binary.MaxVarintLen64 + len(d)
	}
	out := make([]byte, 0, size)
	flags := byte(0)
	if e.fresh {
		flags |= flagReset
	}
	out = append(out, Magic, Version, flags)
	out = binary.AppendUvarint(out, uint64(len(e.defs)))
	for _, d := range e.defs {
		out = binary.AppendUvarint(out, uint64(len(d)))
		out = append(out, d...)
	}
	out = append(out, e.body...)
	e.fresh = false
	e.defs = e.defs[:0]
	e.body = e.body[:0]
	return out
}

// Uvarint appends an unsigned varint to the record body.
func (e *Encoder) Uvarint(v uint64) {
	n := binary.PutUvarint(e.tmp[:], v)
	e.body = append(e.body, e.tmp[:n]...)
}

// Bool appends a single 0/1 byte.
func (e *Encoder) Bool(b bool) {
	if b {
		e.body = append(e.body, 1)
	} else {
		e.body = append(e.body, 0)
	}
}

// Str appends an interned string reference, defining the string in the
// stream's table if this is its first use.
func (e *Encoder) Str(s string) {
	id, ok := e.table[s]
	if !ok {
		id = e.next
		e.next++
		e.table[s] = id
		e.defs = append(e.defs, s)
	}
	e.Uvarint(id)
}

// Bytes appends a length-prefixed raw byte string (not interned) — used for
// embedded blobs such as JSON-encoded network specs.
func (e *Encoder) Bytes(b []byte) {
	e.Uvarint(uint64(len(b)))
	e.body = append(e.body, b...)
}

// Tuple appends a tuple: its length, then one interned reference per
// constant.
func (e *Encoder) Tuple(t relation.Tuple) {
	e.Uvarint(uint64(len(t)))
	for _, c := range t {
		e.Str(string(c))
	}
}

// Fact appends one (relation name, tuple) fact.
func (e *Encoder) Fact(f relation.Fact) {
	e.Str(f.Rel)
	e.Tuple(f.Args)
}

// Instance appends a relation instance in canonical order: relation names
// sorted, tuples in each relation sorted (relation.Rel.Tuples sorts).
// Empty relations are preserved with their arity.
func (e *Encoder) Instance(in relation.Instance) {
	// Like the JSON wire form, an empty relation encodes as absent: the two
	// wires must agree so digests survive transcoding either way.
	names := make([]string, 0, len(in))
	for _, name := range in.Names() { // sorted
		if in.Rel(name).Len() > 0 {
			names = append(names, name)
		}
	}
	e.Uvarint(uint64(len(names)))
	for _, name := range names {
		r := in.Rel(name)
		e.Str(name)
		e.Uvarint(uint64(r.Arity()))
		tuples := r.Tuples() // sorted
		e.Uvarint(uint64(len(tuples)))
		for _, t := range tuples {
			for _, c := range t {
				e.Str(string(c))
			}
		}
	}
}

// Sequence appends a sequence of instances.
func (e *Encoder) Sequence(seq relation.Sequence) {
	e.Uvarint(uint64(len(seq)))
	for _, in := range seq {
		e.Instance(in)
	}
}

// StepInputs appends a node→instance map in sorted-name order — the
// network layer's per-node input/output/state shape.
func (e *Encoder) StepInputs(m compose.StepInputs) {
	e.InstanceMap(m)
}

// InstanceMap appends a string→instance map in sorted-key order.
func (e *Encoder) InstanceMap(m map[string]relation.Instance) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	e.Uvarint(uint64(len(keys)))
	for _, k := range keys {
		e.Str(k)
		e.Instance(m[k])
	}
}

// Canonical encodes one record with a fresh encoder and returns its bytes.
// Because interning assigns IDs in first-use order and all composite
// encodings iterate in sorted order, the result is a deterministic,
// stream-independent function of the value — the digest form used by
// WAL-shipping handoff.
func Canonical(fn func(*Encoder)) []byte {
	e := NewEncoder()
	fn(e)
	return e.Finish()
}
