package codec

import (
	"bytes"
	"testing"

	"repro/internal/relation"
)

func sampleInstance() relation.Instance {
	in := relation.NewInstance()
	in.Add("order", relation.Tuple{"alice", "book", "3"})
	in.Add("order", relation.Tuple{"bob", "book", "1"})
	in.Add("paid", relation.Tuple{"alice"})
	in.Ensure("empty", 2)
	in.Ensure("flag", 0).Add(relation.Tuple{})
	return in
}

func TestInstanceRoundTrip(t *testing.T) {
	e := NewEncoder()
	want := sampleInstance()
	e.Instance(want)
	rec := e.Finish()

	d := NewDecoder()
	r, err := d.Record(rec)
	if err != nil {
		t.Fatal(err)
	}
	got := r.Instance()
	if err := r.End(); err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) || !want.Equal(got) {
		t.Fatalf("round trip mismatch:\n got %v\nwant %v", got, want)
	}
	// Empty relations encode as absent, matching the JSON wire form — the
	// two wires must agree for digests to survive transcoding.
	if got.Rel("empty") != nil {
		t.Fatalf("empty relation should be absent after a round trip, got %v", got.Rel("empty"))
	}
}

func TestInterningSharesAcrossRecords(t *testing.T) {
	e := NewEncoder()
	in := sampleInstance()
	e.Instance(in)
	first := e.Finish()
	e.Instance(in)
	second := e.Finish()
	if len(second) >= len(first) {
		t.Fatalf("second record (%dB) should be smaller than the first (%dB): constants were re-defined", len(second), len(first))
	}

	d := NewDecoder()
	for i, rec := range [][]byte{first, second} {
		r, err := d.Record(rec)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		got := r.Instance()
		if err := r.End(); err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if !got.Equal(in) {
			t.Fatalf("record %d mismatch", i)
		}
	}
	if d.TableLen() != e.TableLen() {
		t.Fatalf("table drift: decoder %d, encoder %d", d.TableLen(), e.TableLen())
	}
}

func TestResetFlagResynchronizesDecoder(t *testing.T) {
	e := NewEncoder()
	in := sampleInstance()
	e.Instance(in)
	e.Finish() // a record the decoder never sees
	e.Reset()
	e.Instance(in)
	rec := e.Finish()

	d := NewDecoder()
	r, err := d.Record(rec)
	if err != nil {
		t.Fatal(err)
	}
	if !r.DidReset() {
		t.Fatal("first record after Reset should carry the reset flag")
	}
	got := r.Instance()
	if err := r.End(); err != nil {
		t.Fatal(err)
	}
	if !got.Equal(in) {
		t.Fatal("decode after reset mismatch")
	}
}

func TestCanonicalIsStreamIndependent(t *testing.T) {
	in := sampleInstance()
	a := Canonical(func(e *Encoder) { e.Instance(in) })

	// The same value encoded mid-stream differs (references, no defs)...
	e := NewEncoder()
	e.Instance(in)
	e.Finish()
	e.Instance(in)
	mid := e.Finish()
	if bytes.Equal(a, mid) {
		t.Fatal("mid-stream encoding should differ from canonical")
	}
	// ...but Canonical is reproducible.
	b := Canonical(func(e *Encoder) { e.Instance(in.Clone()) })
	if !bytes.Equal(a, b) {
		t.Fatalf("canonical encoding not deterministic:\n%x\n%x", a, b)
	}
}

func TestDecoderRejectsCorruptInput(t *testing.T) {
	e := NewEncoder()
	e.Instance(sampleInstance())
	rec := e.Finish()

	cases := map[string][]byte{
		"empty":        {},
		"not binary":   []byte(`{"t":"step"}`),
		"bad version":  {Magic, 99, 0},
		"truncated":    rec[:len(rec)-3],
		"def overrun":  {Magic, Version, 0, 1, 200},
		"huge defs":    {Magic, Version, 0, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01},
		"trailing":     append(append([]byte{}, rec...), 0xAA),
		"bad ref":      append([]byte{Magic, Version, 0, 0}, 0x30), // reference 0x30 with empty table
	}
	for name, data := range cases {
		d := NewDecoder()
		r, err := d.Record(data)
		if err != nil {
			continue // rejected at the envelope: good
		}
		_ = r.Instance()
		if name == "not binary" {
			t.Fatal("JSON payload parsed as binary")
		}
		if err := r.End(); err == nil {
			t.Fatalf("%s: corrupt input decoded cleanly", name)
		}
	}
}

func TestTruncationAtEveryByte(t *testing.T) {
	e := NewEncoder()
	e.Instance(sampleInstance())
	e.Sequence(relation.Sequence{sampleInstance(), relation.NewInstance()})
	rec := e.Finish()
	for i := 0; i < len(rec); i++ {
		d := NewDecoder()
		r, err := d.Record(rec[:i])
		if err != nil {
			continue
		}
		_ = r.Instance()
		_ = r.Sequence()
		if err := r.End(); err == nil {
			t.Fatalf("truncation to %d/%d bytes decoded cleanly", i, len(rec))
		}
	}
}

func TestScalarsRoundTrip(t *testing.T) {
	e := NewEncoder()
	e.Uvarint(0)
	e.Uvarint(1 << 40)
	e.Bool(true)
	e.Bool(false)
	e.Str("hello")
	e.Str("hello")
	e.Bytes([]byte{1, 2, 3})
	e.Tuple(relation.Tuple{"a", "b"})
	e.Fact(relation.Fact{Rel: "r", Args: relation.Tuple{"a"}})
	rec := e.Finish()

	d := NewDecoder()
	r, err := d.Record(rec)
	if err != nil {
		t.Fatal(err)
	}
	if v := r.Uvarint(); v != 0 {
		t.Fatalf("uvarint: %d", v)
	}
	if v := r.Uvarint(); v != 1<<40 {
		t.Fatalf("uvarint: %d", v)
	}
	if !r.Bool() || r.Bool() {
		t.Fatal("bools")
	}
	if s := r.Str(); s != "hello" {
		t.Fatalf("str: %q", s)
	}
	if s := r.Str(); s != "hello" {
		t.Fatalf("str: %q", s)
	}
	if b := r.Bytes(); !bytes.Equal(b, []byte{1, 2, 3}) {
		t.Fatalf("bytes: %v", b)
	}
	if tp := r.Tuple(); !tp.Equal(relation.Tuple{"a", "b"}) {
		t.Fatalf("tuple: %v", tp)
	}
	if f := r.Fact(); f.Rel != "r" || !f.Args.Equal(relation.Tuple{"a"}) {
		t.Fatalf("fact: %v", f)
	}
	if err := r.End(); err != nil {
		t.Fatal(err)
	}
}
