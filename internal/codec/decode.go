package codec

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/compose"
	"repro/internal/relation"
)

// ErrNotBinary reports a payload that does not start with the codec magic
// byte — the caller should fall back to its legacy (JSON) decoder.
var ErrNotBinary = errors.New("codec: not a binary record")

// Decoder holds one stream's intern table on the reading side. Feed it
// every record of the stream in order (Record); a record carrying the reset
// flag clears the table, so a decoder pointed at any stream boundary
// synchronizes by itself. Not safe for concurrent use.
type Decoder struct {
	table []string
}

// NewDecoder returns a decoder with an empty table.
func NewDecoder() *Decoder { return &Decoder{} }

// Reset clears the intern table.
func (d *Decoder) Reset() { d.table = d.table[:0] }

// TableLen returns the number of intern entries learned so far.
func (d *Decoder) TableLen() int { return len(d.table) }

// Record parses one record's envelope: magic, version, flags (applying a
// table reset), and intern definitions. It returns a Reader positioned at
// the record body. All errors are returned, never panicked — corrupt or
// truncated input is an expected condition for a decoder that fronts disk
// and network bytes.
func (d *Decoder) Record(payload []byte) (*Reader, error) {
	if !IsBinary(payload) {
		return nil, ErrNotBinary
	}
	if len(payload) < 3 {
		return nil, fmt.Errorf("codec: truncated envelope (%d bytes)", len(payload))
	}
	if payload[1] != Version {
		return nil, fmt.Errorf("codec: unsupported version %d (have %d)", payload[1], Version)
	}
	if payload[2]&flagReset != 0 {
		d.Reset()
	}
	r := &Reader{d: d, buf: payload, off: 3, defs: -1, reset: payload[2]&flagReset != 0}
	ndefs := r.Uvarint()
	if ndefs > uint64(len(payload)) {
		return nil, fmt.Errorf("codec: %d intern definitions in a %d-byte record", ndefs, len(payload))
	}
	for i := uint64(0); i < ndefs && r.err == nil; i++ {
		n := r.Uvarint()
		if r.err == nil && n > uint64(len(r.buf)-r.off) {
			r.fail(fmt.Errorf("definition of %d bytes with %d remaining", n, len(r.buf)-r.off))
			break
		}
		if r.err == nil {
			d.table = append(d.table, string(r.buf[r.off:r.off+int(n)]))
			r.off += int(n)
		}
	}
	if r.err != nil {
		return nil, r.err
	}
	r.defs = int(ndefs)
	return r, nil
}

// Reader reads one record's body sequentially. Errors are sticky: after the
// first malformed read every subsequent read returns a zero value and End
// reports the error, so decode functions can read a whole schema and check
// once.
type Reader struct {
	d     *Decoder
	buf   []byte
	off   int
	err   error
	defs  int
	reset bool
}

// Defs returns the number of intern definitions the record introduced.
func (r *Reader) Defs() int { return r.defs }

// DidReset reports whether the record carried the table-reset flag.
func (r *Reader) DidReset() bool { return r.reset }

// Err returns the first error encountered (nil if none).
func (r *Reader) Err() error { return r.err }

func (r *Reader) fail(err error) {
	if r.err == nil {
		r.err = fmt.Errorf("codec: %w (offset %d)", err, r.off)
	}
}

// End checks that the body was fully consumed and returns the sticky error,
// if any. Trailing garbage is an error: every schema reads its record
// exactly.
func (r *Reader) End() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.buf) {
		return fmt.Errorf("codec: %d trailing bytes after record body", len(r.buf)-r.off)
	}
	return nil
}

// Uvarint reads an unsigned varint.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.fail(errors.New("bad uvarint"))
		return 0
	}
	r.off += n
	return v
}

// Int reads a uvarint and checks it fits a non-negative int.
func (r *Reader) Int() int {
	v := r.Uvarint()
	if v > uint64(int(^uint(0)>>1)) {
		r.fail(fmt.Errorf("value %d overflows int", v))
		return 0
	}
	return int(v)
}

// Bool reads a 0/1 byte.
func (r *Reader) Bool() bool {
	if r.err != nil {
		return false
	}
	if r.off >= len(r.buf) {
		r.fail(errors.New("truncated bool"))
		return false
	}
	b := r.buf[r.off]
	r.off++
	if b > 1 {
		r.fail(fmt.Errorf("bad bool byte %#x", b))
		return false
	}
	return b == 1
}

// Str reads an interned string reference.
func (r *Reader) Str() string {
	id := r.Uvarint()
	if r.err != nil {
		return ""
	}
	if id >= uint64(len(r.d.table)) {
		r.fail(fmt.Errorf("intern reference %d beyond table of %d", id, len(r.d.table)))
		return ""
	}
	return r.d.table[id]
}

// Bytes reads a length-prefixed raw byte string. The returned slice aliases
// the record payload.
func (r *Reader) Bytes() []byte {
	n := r.Uvarint()
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.buf)-r.off) {
		r.fail(fmt.Errorf("byte string of %d with %d remaining", n, len(r.buf)-r.off))
		return nil
	}
	b := r.buf[r.off : r.off+int(n)]
	r.off += int(n)
	return b
}

// Tuple reads a tuple written by Encoder.Tuple.
func (r *Reader) Tuple() relation.Tuple {
	n := r.Uvarint()
	if r.err != nil {
		return nil
	}
	// Every constant reference costs at least one byte.
	if n > uint64(len(r.buf)-r.off) {
		r.fail(fmt.Errorf("tuple of %d with %d bytes remaining", n, len(r.buf)-r.off))
		return nil
	}
	t := make(relation.Tuple, 0, n)
	for i := uint64(0); i < n && r.err == nil; i++ {
		t = append(t, relation.Const(r.Str()))
	}
	if r.err != nil {
		return nil
	}
	return t
}

// Fact reads a fact written by Encoder.Fact.
func (r *Reader) Fact() relation.Fact {
	name := r.Str()
	return relation.Fact{Rel: name, Args: r.Tuple()}
}

// Instance reads an instance written by Encoder.Instance.
func (r *Reader) Instance() relation.Instance {
	nNames := r.Uvarint()
	if r.err != nil {
		return nil
	}
	if nNames > uint64(len(r.buf)-r.off) {
		r.fail(fmt.Errorf("instance of %d relations with %d bytes remaining", nNames, len(r.buf)-r.off))
		return nil
	}
	in := relation.NewInstance()
	for i := uint64(0); i < nNames && r.err == nil; i++ {
		name := r.Str()
		arity := r.Int()
		nTuples := r.Uvarint()
		if r.err != nil {
			break
		}
		// A tuple of positive arity consumes >= arity bytes; a 0-ary
		// relation holds at most the single empty tuple. Both bounds stop
		// allocation bombs from claimed-but-absent tuples.
		if arity == 0 && nTuples > 1 {
			r.fail(fmt.Errorf("0-ary relation %q claims %d tuples", name, nTuples))
			break
		}
		if arity > 0 && nTuples > uint64(len(r.buf)-r.off)/uint64(arity) {
			r.fail(fmt.Errorf("relation %q claims %d tuples of arity %d with %d bytes remaining", name, nTuples, arity, len(r.buf)-r.off))
			break
		}
		if r.err == nil && in.Rel(name) != nil {
			// Canonical encoding never repeats a name; a duplicate could
			// also smuggle an arity mismatch past Rel.Add's panic.
			r.fail(fmt.Errorf("duplicate relation %q", name))
			break
		}
		rel := in.Ensure(name, arity)
		for j := uint64(0); j < nTuples && r.err == nil; j++ {
			t := make(relation.Tuple, 0, arity)
			for k := 0; k < arity && r.err == nil; k++ {
				t = append(t, relation.Const(r.Str()))
			}
			if r.err == nil {
				rel.Add(t)
			}
		}
	}
	if r.err != nil {
		return nil
	}
	return in
}

// Sequence reads a sequence written by Encoder.Sequence.
func (r *Reader) Sequence() relation.Sequence {
	n := r.Uvarint()
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.buf)-r.off) {
		r.fail(fmt.Errorf("sequence of %d with %d bytes remaining", n, len(r.buf)-r.off))
		return nil
	}
	seq := make(relation.Sequence, 0, n)
	for i := uint64(0); i < n && r.err == nil; i++ {
		seq = append(seq, r.Instance())
	}
	if r.err != nil {
		return nil
	}
	return seq
}

// StepInputs reads a map written by Encoder.StepInputs.
func (r *Reader) StepInputs() compose.StepInputs {
	m := r.InstanceMap()
	if m == nil {
		return nil
	}
	return compose.StepInputs(m)
}

// InstanceMap reads a map written by Encoder.InstanceMap.
func (r *Reader) InstanceMap() map[string]relation.Instance {
	n := r.Uvarint()
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.buf)-r.off) {
		r.fail(fmt.Errorf("map of %d with %d bytes remaining", n, len(r.buf)-r.off))
		return nil
	}
	m := make(map[string]relation.Instance, n)
	for i := uint64(0); i < n && r.err == nil; i++ {
		k := r.Str()
		m[k] = r.Instance()
	}
	if r.err != nil {
		return nil
	}
	return m
}
