package codec

import (
	"testing"

	"repro/internal/relation"
)

// FuzzDecodeNeverPanics feeds arbitrary bytes through every Reader schema:
// the decoder must reject garbage with errors, never a panic or a hang.
func FuzzDecodeNeverPanics(f *testing.F) {
	e := NewEncoder()
	e.Instance(sampleInstance())
	f.Add(e.Finish())
	e.Sequence(relation.Sequence{sampleInstance()})
	f.Add(e.Finish())
	f.Add([]byte{Magic, Version, 0, 0})
	f.Add([]byte(`{"t":"step","sid":"x"}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		for pass := 0; pass < 3; pass++ {
			d := NewDecoder()
			r, err := d.Record(data)
			if err != nil {
				return
			}
			switch pass {
			case 0:
				_ = r.Instance()
			case 1:
				_ = r.Sequence()
			case 2:
				_ = r.Str()
				_ = r.Uvarint()
				_ = r.Bytes()
				_ = r.InstanceMap()
			}
			_ = r.End()
		}
	})
}

// FuzzValueRoundTrip builds an instance from fuzzer-chosen facts and checks
// decode(encode(x)) ≡ x, both canonically and mid-stream.
func FuzzValueRoundTrip(f *testing.F) {
	f.Add("order", "alice\x00book\x003", "paid", "alice")
	f.Add("", "", "r", "\x00\x00")
	f.Fuzz(func(t *testing.T, n1, t1, n2, t2 string) {
		in := relation.NewInstance()
		add := func(name, packed string) {
			var tup relation.Tuple
			start := 0
			for i := 0; i <= len(packed); i++ {
				if i == len(packed) || packed[i] == 0 {
					tup = append(tup, relation.Const(packed[start:i]))
					start = i + 1
				}
			}
			if r := in.Rel(name); r != nil && r.Arity() != len(tup) {
				return // instances are arity-consistent by construction
			}
			in.Add(name, tup)
		}
		add(n1, t1)
		add(n2, t2)

		d := NewDecoder()
		e := NewEncoder()
		for pass := 0; pass < 2; pass++ { // second pass reuses the table
			e.Instance(in)
			r, err := d.Record(e.Finish())
			if err != nil {
				t.Fatalf("pass %d: %v", pass, err)
			}
			got := r.Instance()
			if err := r.End(); err != nil {
				t.Fatalf("pass %d: %v", pass, err)
			}
			if !got.Equal(in) || !in.Equal(got) {
				t.Fatalf("pass %d: round trip mismatch: got %v want %v", pass, got, in)
			}
		}
	})
}
