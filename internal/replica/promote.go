package replica

import (
	"errors"
	"time"

	"repro/internal/session"
)

// PromoteResult reports what a promotion moved into the serving engine.
type PromoteResult struct {
	Primary  string   `json:"primary"` // the (presumed dead) primary this standby was following
	Sessions []string `json:"sessions"`
	Skipped  []string `json:"skipped,omitempty"` // already live on the serving engine
	TookMs   float64  `json:"took_ms"`
}

// Promote turns the hot standby into the serving copy: tailing stops, and
// every standby session moves into dst (normally the same process's serving
// engine) by state-image install — O(state), not O(steps), which is the
// whole point of keeping a warm follower: no replay of the input history
// stands between a dead primary and its sessions accepting steps again.
//
// Every record the primary ever acknowledged to a client is either applied
// on the standby already or was lost with the primary's disk (only under
// fsync policies weaker than always); nothing in flight can land after the
// cutover because tailing has stopped. Sessions dst already serves are
// skipped — promotion after a partial promotion is idempotent.
func (f *Follower) Promote(dst *session.Engine) (*PromoteResult, error) {
	start := time.Now()
	f.cancel() // stop tailing; applied records are all the standby will ever hold
	f.wg.Wait()
	f.promoted.Store(true)
	infos, err := f.eng.List()
	if err != nil {
		return nil, err
	}
	res := &PromoteResult{Primary: f.cfg.Primary, Sessions: []string{}}
	for _, info := range infos {
		se, err := f.eng.ExportState(info.ID)
		if err != nil {
			return nil, err
		}
		if _, err := dst.Install(se); err != nil {
			var conflict *session.ConflictError
			if errors.As(err, &conflict) {
				// Already serving here (e.g. a re-promotion after a partial
				// failure): leave the live copy alone, retire the standby's.
				f.eng.Forget(info.ID)
				res.Skipped = append(res.Skipped, info.ID)
				continue
			}
			return nil, err
		}
		if err := f.eng.Forget(info.ID); err != nil {
			return nil, err
		}
		res.Sessions = append(res.Sessions, info.ID)
	}
	res.TookMs = float64(time.Since(start).Microseconds()) / 1000
	f.logf("replica: promoted %d sessions from %s in %.1fms", len(res.Sessions), f.cfg.Primary, res.TookMs)
	return res, nil
}
