package replica

import (
	"encoding/json"
	"net/http"
	"strings"

	"repro/internal/live"
	"repro/internal/session"
)

// StateResponse is GET /replica/state: who this backend follows and how far
// behind it is. The router uses Following to discover which backend holds a
// dead primary's standby, and Lag to bound follower-served reads.
type StateResponse struct {
	Following string     `json:"following"`
	Promoted  bool       `json:"promoted,omitempty"`
	Lag       int64      `json:"lag"` // records behind, summed over primary shards
	Shards    []shardPos `json:"shards"`
	Sessions  int        `json:"sessions"` // standby sessions held
}

// Handler wraps a backend's main handler with the replication surface:
//
//	GET  /replica/state            follower position and lag
//	GET  /replica/sessions/...     read-only views served from the standby
//	GET  /replica/networks, ...    (any GET the session API serves)
//	POST /admin/replica/promote    promote the standby into the serving engine
//
// Reads under /replica/ answer from the hot standby — the same handlers as
// the primary API, against the follower's engine, so a router can serve
// /sessions/{id}/log, /verify, or /progress from a follower and offload the
// primary. Anything but GET under /replica/ is rejected: a standby never
// mutates except through the stream.
func Handler(f *Follower, dst *session.Engine, lv *live.Service, next http.Handler) http.Handler {
	standby := session.HandlerWith(f.Engine(), lv)
	mux := http.NewServeMux()
	mux.HandleFunc("GET /replica/state", func(w http.ResponseWriter, r *http.Request) {
		lag, pos := f.Lag()
		n := 0
		if infos, err := f.Engine().List(); err == nil {
			n = len(infos)
		}
		writeJSON(w, http.StatusOK, &StateResponse{
			Following: f.Primary(),
			Promoted:  f.Promoted(),
			Lag:       lag,
			Shards:    pos,
			Sessions:  n,
		})
	})
	mux.HandleFunc("/replica/", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			w.Header().Set("Allow", http.MethodGet)
			writeJSON(w, http.StatusMethodNotAllowed, map[string]string{"error": "replica is read-only"})
			return
		}
		r2 := r.Clone(r.Context())
		r2.URL.Path = strings.TrimPrefix(r.URL.Path, "/replica")
		if r2.URL.Path == "" {
			r2.URL.Path = "/"
		}
		standby.ServeHTTP(w, r2)
	})
	mux.HandleFunc("POST /admin/replica/promote", func(w http.ResponseWriter, r *http.Request) {
		res, err := f.Promote(dst)
		if err != nil {
			writeJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, res)
	})
	mux.Handle("/", next)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
