// Package replica is the replication plane: a Follower continuously tails a
// primary backend's committed WAL stream (session.Engine.StreamWAL over
// HTTP) into a hot standby engine, so the standby holds every acknowledged
// step of every session the primary serves — within a lag of the records
// still in flight. Because stepping is deterministic (§2: state and log are
// a function of the database and the input sequence alone), applying the
// primary's WAL records in order reconstructs its sessions exactly; no
// state diffing or page shipping is needed, the log IS the replica.
//
// The follower is crash-safe on both ends: records are appended to the
// standby's OWN WAL before they apply (so a follower restart replays them
// from local disk), and the stream position is persisted after each batch
// (REPLSTATE.json), so tailing resumes where it stopped. A position the
// primary has compacted away comes back as a Reset batch carrying the
// snapshot images — the follower bootstraps from those and resumes at the
// snapshot's base LSN.
package replica

import (
	"context"
	"encoding/json"
	"fmt"
	"net/url"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/session"
	"repro/internal/wire"
)

// Config configures a Follower.
type Config struct {
	// Primary is the base URL of the backend to follow.
	Primary string
	// Dir is the standby engine's durability directory.
	Dir string
	// Shards is the standby engine's shard count (default GOMAXPROCS;
	// independent of the primary's — records re-hash by session ID).
	Shards int
	// Fsync is the standby WAL's durability policy (default FsyncAlways).
	Fsync session.FsyncPolicy
	// Poll is the long-poll wait per stream request (default 20s).
	Poll time.Duration
	// Client is the wire client for stream requests (default: one with a
	// timeout comfortably above Poll).
	Client *wire.Client
	// Logf receives progress lines (default: drop them).
	Logf func(format string, args ...any)
}

// shardPos is one primary shard's stream position as the follower sees it.
type shardPos struct {
	Applied   int64 `json:"applied"`   // highest LSN applied to the standby
	Committed int64 `json:"committed"` // primary's committed LSN at last contact
}

// replState is the persisted REPLSTATE.json: which primary, its shard
// count, and the applied position per primary shard.
type replState struct {
	Primary string     `json:"primary"`
	Shards  int        `json:"shards"`
	Pos     []shardPos `json:"pos"`
}

// Follower tails one primary into a hot standby engine.
type Follower struct {
	cfg        Config
	eng        *session.Engine // the standby
	client     *wire.Client
	ownsClient bool
	logf       func(string, ...any)
	ctx        context.Context
	cancel     context.CancelFunc
	wg         sync.WaitGroup
	started    atomic.Bool

	mu       sync.Mutex // guards st and the REPLSTATE file
	st       replState
	promoted atomic.Bool
}

// New builds a Follower and its standby engine (recovering any prior
// standby state from cfg.Dir). Call Start to begin tailing.
func New(cfg Config) (*Follower, error) {
	if cfg.Primary == "" {
		return nil, fmt.Errorf("replica: no primary URL")
	}
	if cfg.Dir == "" {
		return nil, fmt.Errorf("replica: follower needs a durability dir")
	}
	if cfg.Poll <= 0 {
		cfg.Poll = 20 * time.Second
	}
	eng, err := session.NewEngine(session.Config{Dir: cfg.Dir, Shards: cfg.Shards, Fsync: cfg.Fsync})
	if err != nil {
		return nil, fmt.Errorf("replica: standby engine: %w", err)
	}
	f := &Follower{cfg: cfg, eng: eng, client: cfg.Client, logf: cfg.Logf}
	if f.client == nil {
		// Long-polls hold one connection per primary shard for up to Poll;
		// the client timeout must sit comfortably above that.
		f.client = wire.New(wire.Config{Name: "follower", Timeout: cfg.Poll + 15*time.Second})
		f.ownsClient = true
	}
	if f.logf == nil {
		f.logf = func(string, ...any) {}
	}
	f.ctx, f.cancel = context.WithCancel(context.Background())
	if err := f.loadState(); err != nil {
		eng.Shutdown()
		return nil, err
	}
	return f, nil
}

// Engine returns the standby engine (read-only traffic and promotion).
func (f *Follower) Engine() *session.Engine { return f.eng }

// Primary returns the URL being followed.
func (f *Follower) Primary() string { return f.cfg.Primary }

func (f *Follower) statePath() string { return filepath.Join(f.cfg.Dir, "REPLSTATE.json") }

func (f *Follower) loadState() error {
	data, err := os.ReadFile(f.statePath())
	if os.IsNotExist(err) {
		f.st = replState{Primary: f.cfg.Primary}
		return nil
	}
	if err != nil {
		return fmt.Errorf("replica: %w", err)
	}
	var st replState
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("replica: %s: %w", f.statePath(), err)
	}
	if st.Primary != f.cfg.Primary {
		// Following someone new: stream positions are meaningless, but the
		// standby sessions stay — the new stream reconciles them (records
		// below a session's step count skip; gaps force a snapshot reset).
		st = replState{Primary: f.cfg.Primary}
	}
	f.st = st
	return nil
}

// saveState persists the stream position atomically. Losing a position is
// harmless (re-applying is idempotent), so fsync of the tiny file is not
// load-bearing — the rename keeps it from ever being half-written.
func (f *Follower) saveState() {
	f.mu.Lock()
	data, _ := json.MarshalIndent(&f.st, "", "  ")
	f.mu.Unlock()
	tmp := f.statePath() + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err == nil {
		os.Rename(tmp, f.statePath())
	}
}

// Start learns the primary's shard count and launches one tail goroutine
// per primary shard. It retries the initial topology fetch until ctx is
// done — a follower may legitimately boot before its primary.
func (f *Follower) Start() {
	if !f.started.CompareAndSwap(false, true) {
		return
	}
	f.wg.Add(1)
	go func() {
		defer f.wg.Done()
		shards, err := f.discoverShards()
		if err != nil {
			return // stopped before the primary ever answered
		}
		f.mu.Lock()
		if f.st.Shards != shards {
			f.st.Shards = shards
			f.st.Pos = make([]shardPos, shards)
		} else if len(f.st.Pos) != shards {
			f.st.Pos = make([]shardPos, shards)
		}
		f.mu.Unlock()
		f.saveState()
		f.logf("replica: following %s (%d shards)", f.cfg.Primary, shards)
		for i := 0; i < shards; i++ {
			f.wg.Add(1)
			go f.tail(i, session.NewReplDecoder())
		}
	}()
}

// discoverShards polls GET /admin/wal/state until the primary answers.
func (f *Follower) discoverShards() (int, error) {
	backoff := 100 * time.Millisecond
	for {
		var out struct {
			Shards []session.ReplShardState `json:"shards"`
		}
		err := f.getJSON(f.cfg.Primary+"/admin/wal/state", &out)
		if err == nil && len(out.Shards) > 0 {
			return len(out.Shards), nil
		}
		if err != nil {
			f.logf("replica: wal/state: %v", err)
		}
		select {
		case <-f.ctx.Done():
			return 0, f.ctx.Err()
		case <-time.After(backoff):
		}
		if backoff < 2*time.Second {
			backoff *= 2
		}
	}
}

// tail is one primary shard's apply loop: long-poll, apply, ack, persist.
// dec is the shard stream's intern-table decoder; its table length rides on
// every poll (the itab handshake), so the primary's stream encoder and this
// decoder re-align automatically after any divergence.
func (f *Follower) tail(shard int, dec *session.ReplDecoder) {
	defer f.wg.Done()
	backoff := 100 * time.Millisecond
	for {
		if f.ctx.Err() != nil {
			return
		}
		f.mu.Lock()
		from := f.st.Pos[shard].Applied + 1
		acked := f.st.Pos[shard].Applied
		f.mu.Unlock()
		batch, err := f.fetch(shard, from, acked, dec.TableLen())
		if err != nil {
			select {
			case <-f.ctx.Done():
				return
			case <-time.After(backoff):
			}
			if backoff < 2*time.Second {
				backoff *= 2
			}
			continue
		}
		backoff = 100 * time.Millisecond
		if err := f.applyBatch(shard, batch, dec); err != nil {
			var gap *session.ReplGapError
			if isGap(err, &gap) {
				// Out-of-order stream (e.g. the primary was rebuilt): restart
				// this shard from LSN 1 — re-served records skip idempotently,
				// and a compacted prefix arrives as a Reset batch.
				f.logf("replica: shard %d: %v — rewinding", shard, gap)
				f.mu.Lock()
				f.st.Pos[shard].Applied = 0
				f.mu.Unlock()
				f.saveState()
				continue
			}
			f.logf("replica: shard %d apply: %v", shard, err)
			select {
			case <-f.ctx.Done():
				return
			case <-time.After(backoff):
			}
			continue
		}
		f.saveState()
	}
}

func (f *Follower) fetch(shard int, from, acked int64, itab int) (*session.WALBatch, error) {
	u := fmt.Sprintf("%s/admin/wal/stream?shard=%d&from=%d&acked=%d&wait=%s&itab=%d",
		f.cfg.Primary, shard, from, acked, url.QueryEscape(f.cfg.Poll.String()), itab)
	var b session.WALBatch
	if err := f.getJSON(u, &b); err != nil {
		return nil, err
	}
	return &b, nil
}

// applyBatch feeds one stream batch through the standby engine. A Reset
// batch first retires standby sessions that hash to this primary shard but
// are absent from the snapshot (they were closed while the follower was
// behind), then installs the snapshot images.
func (f *Follower) applyBatch(shard int, b *session.WALBatch, dec *session.ReplDecoder) error {
	if b.Reset {
		keep := make(map[string]bool, len(b.Snapshot))
		for _, raw := range b.Snapshot {
			var img struct {
				ID string `json:"id"`
			}
			if err := json.Unmarshal(raw, &img); err != nil {
				return fmt.Errorf("snapshot image: %w", err)
			}
			keep[img.ID] = true
		}
		infos, err := f.eng.List()
		if err != nil {
			return err
		}
		for _, info := range infos {
			if session.ShardOf(info.ID, b.Shards) == shard && !keep[info.ID] {
				if err := f.eng.CloseReplicated(info.ID); err != nil {
					return err
				}
			}
		}
		for _, raw := range b.Snapshot {
			if err := f.eng.InstallReplicated(raw); err != nil {
				return err
			}
		}
		f.mu.Lock()
		f.st.Pos[shard].Applied = b.Base
		f.st.Pos[shard].Committed = b.Committed
		f.mu.Unlock()
		// A bootstrap is a stream discontinuity; start the next WAL batch
		// from a clean intern table on both ends.
		dec.Reset()
		f.logf("replica: shard %d reset to base %d (%d sessions)", shard, b.Base, len(b.Snapshot))
		return nil
	}
	if b.Codec == "binary" && b.ITab != dec.TableLen() {
		// The primary's stream encoder and this decoder disagree (competing
		// follower, primary restart). Skip the batch unapplied and re-poll:
		// our reset table length tells the primary to restart its stream,
		// and the next batch arrives decodable from a clean table.
		f.logf("replica: shard %d stream table mismatch (batch %d, have %d) — resetting", shard, b.ITab, dec.TableLen())
		dec.Reset()
		return nil
	}
	for _, rec := range b.Records {
		payload := rec.Payload
		if len(rec.Bin) > 0 {
			payload = rec.Bin
		}
		if err := f.eng.ApplyReplicatedRecord(dec, payload); err != nil {
			return err
		}
		f.mu.Lock()
		f.st.Pos[shard].Applied = rec.LSN
		f.mu.Unlock()
	}
	f.mu.Lock()
	f.st.Pos[shard].Committed = b.Committed
	f.mu.Unlock()
	return nil
}

func isGap(err error, gap **session.ReplGapError) bool {
	for err != nil {
		if g, ok := err.(*session.ReplGapError); ok {
			*gap = g
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// Lag returns the follower's total replication lag in records (committed
// minus applied, summed over primary shards, as of the last stream
// contact), plus the per-shard breakdown.
func (f *Follower) Lag() (int64, []shardPos) {
	f.mu.Lock()
	defer f.mu.Unlock()
	var lag int64
	pos := make([]shardPos, len(f.st.Pos))
	copy(pos, f.st.Pos)
	for _, p := range pos {
		if d := p.Committed - p.Applied; d > 0 {
			lag += d
		}
	}
	return lag, pos
}

// Promoted reports whether Promote has run.
func (f *Follower) Promoted() bool { return f.promoted.Load() }

// Stop halts tailing and shuts the standby engine down (final snapshot).
func (f *Follower) Stop() error {
	f.cancel()
	f.wg.Wait()
	if f.ownsClient {
		f.client.Close()
	}
	return f.eng.Shutdown()
}

func (f *Follower) getJSON(u string, v any) error {
	return f.client.GetJSON(f.ctx, u, v)
}
