package replica

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/models"
	"repro/internal/session"
)

// newPrimary builds a durable primary engine behind an httptest server.
func newPrimary(t *testing.T, shards int) (*session.Engine, *httptest.Server) {
	t.Helper()
	e, err := session.NewEngine(session.Config{Dir: t.TempDir(), Shards: shards, Fsync: session.FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(session.Handler(e))
	t.Cleanup(func() { srv.Close(); e.Shutdown() })
	return e, srv
}

func newFollower(t *testing.T, primary string) *Follower {
	t.Helper()
	f, err := New(Config{
		Primary: primary,
		Dir:     t.TempDir(),
		Shards:  2,
		Fsync:   session.FsyncNever,
		Poll:    200 * time.Millisecond,
		Logf:    t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Stop() })
	return f
}

// waitSteps polls until the standby holds session id at exactly steps.
func waitSteps(t *testing.T, f *Follower, id string, steps int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if info, err := f.Engine().Info(id); err == nil && info.Steps == steps {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	info, err := f.Engine().Info(id)
	t.Fatalf("standby never reached %s@%d (have %+v, err %v)", id, steps, info, err)
}

func TestFollowerStreamsAndPromotes(t *testing.T) {
	prim, srv := newPrimary(t, 2)
	inputs := models.Fig1Inputs()
	// A session opened BEFORE the follower exists: streamed from LSN 1.
	if _, err := prim.Open(&session.OpenRequest{ID: "early", Model: "short"}); err != nil {
		t.Fatal(err)
	}
	if _, err := prim.Input("early", inputs[0]); err != nil {
		t.Fatal(err)
	}

	f := newFollower(t, srv.URL)
	f.Start()
	waitSteps(t, f, "early", 1)

	// Live traffic while following, across several sessions and both kinds
	// of steps (keyed and not).
	for i := 0; i < 4; i++ {
		id := fmt.Sprintf("s%d", i)
		if _, err := prim.Open(&session.OpenRequest{ID: id, Model: "short"}); err != nil {
			t.Fatal(err)
		}
		for j, in := range inputs {
			if _, err := prim.InputKey(id, fmt.Sprintf("%s-k%d", id, j), in); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := prim.Input("early", inputs[1]); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		waitSteps(t, f, fmt.Sprintf("s%d", i), len(inputs))
	}
	waitSteps(t, f, "early", 2)

	// Logs on the standby are byte-identical to the primary's.
	for i := 0; i < 4; i++ {
		id := fmt.Sprintf("s%d", i)
		want, err := prim.Log(id)
		if err != nil {
			t.Fatal(err)
		}
		got, err := f.Engine().Log(id)
		if err != nil {
			t.Fatal(err)
		}
		wantJSON, _ := json.Marshal(want.Log)
		gotJSON, _ := json.Marshal(got.Log)
		if string(wantJSON) != string(gotJSON) {
			t.Fatalf("%s standby log differs:\n got %s\nwant %s", id, gotJSON, wantJSON)
		}
	}

	// Closes replicate too.
	if _, err := prim.Close("early"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := f.Engine().Info("early"); err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("closed session never retired on standby")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Promote into a fresh serving engine: every session lands with its log
	// intact, dedupe keys included.
	dst, err := session.NewEngine(session.Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Shutdown()
	res, err := f.Promote(dst)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sessions) != 4 {
		t.Fatalf("promoted %v, want 4 sessions", res.Sessions)
	}
	for i := 0; i < 4; i++ {
		id := fmt.Sprintf("s%d", i)
		want, _ := prim.Log(id)
		got, err := dst.Log(id)
		if err != nil {
			t.Fatal(err)
		}
		wantJSON, _ := json.Marshal(want.Log)
		gotJSON, _ := json.Marshal(got.Log)
		if string(wantJSON) != string(gotJSON) {
			t.Fatalf("%s promoted log differs", id)
		}
		// A client retry of an acked step answers as duplicate post-promotion.
		dup, err := dst.InputKey(id, id+"-k0", inputs[0])
		if err != nil {
			t.Fatal(err)
		}
		if !dup.Duplicate || dup.Seq != 1 {
			t.Fatalf("%s post-promotion retry: seq %d dup=%v", id, dup.Seq, dup.Duplicate)
		}
	}
	// The standby gave its sessions up.
	infos, err := f.Engine().List()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 0 {
		t.Fatalf("standby still holds %d sessions after promotion", len(infos))
	}
}

func TestFollowerBootstrapsFromSnapshot(t *testing.T) {
	prim, srv := newPrimary(t, 1)
	inputs := models.Fig1Inputs()
	if _, err := prim.Open(&session.OpenRequest{ID: "kept", Model: "short"}); err != nil {
		t.Fatal(err)
	}
	if _, err := prim.Open(&session.OpenRequest{ID: "gone", Model: "short"}); err != nil {
		t.Fatal(err)
	}
	for _, in := range inputs[:2] {
		if _, err := prim.Input("kept", in); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := prim.Close("gone"); err != nil {
		t.Fatal(err)
	}
	// Compact: the WAL prefix (including gone's whole life) is only
	// reachable as a snapshot now.
	if err := prim.Snapshot(); err != nil {
		t.Fatal(err)
	}

	f := newFollower(t, srv.URL)
	f.Start()
	waitSteps(t, f, "kept", 2)
	if _, err := f.Engine().Info("gone"); err == nil {
		t.Fatal("standby resurrected a session closed before the snapshot")
	}

	// Streaming continues past the bootstrap.
	if _, err := prim.Input("kept", inputs[2]); err != nil {
		t.Fatal(err)
	}
	waitSteps(t, f, "kept", 3)

	want, _ := prim.Log("kept")
	got, err := f.Engine().Log("kept")
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, _ := json.Marshal(want.Log)
	gotJSON, _ := json.Marshal(got.Log)
	if string(wantJSON) != string(gotJSON) {
		t.Fatalf("standby log differs after bootstrap:\n got %s\nwant %s", gotJSON, wantJSON)
	}
}

func TestFollowerResumesFromPersistedPosition(t *testing.T) {
	prim, srv := newPrimary(t, 1)
	inputs := models.Fig1Inputs()
	if _, err := prim.Open(&session.OpenRequest{ID: "s", Model: "short"}); err != nil {
		t.Fatal(err)
	}
	if _, err := prim.Input("s", inputs[0]); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	f, err := New(Config{Primary: srv.URL, Dir: dir, Shards: 1, Fsync: session.FsyncNever, Poll: 100 * time.Millisecond, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	f.Start()
	waitSteps(t, f, "s", 1)
	if err := f.Stop(); err != nil {
		t.Fatal(err)
	}

	// More primary traffic while the follower is down.
	if _, err := prim.Input("s", inputs[1]); err != nil {
		t.Fatal(err)
	}

	f2, err := New(Config{Primary: srv.URL, Dir: dir, Shards: 1, Fsync: session.FsyncNever, Poll: 100 * time.Millisecond, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Stop()
	// The restart recovered step 1 from the standby's own WAL (not the
	// stream) and resumes tailing from the persisted position.
	if info, err := f2.Engine().Info("s"); err != nil || info.Steps != 1 {
		t.Fatalf("standby after restart: %+v, %v", info, err)
	}
	f2.Start()
	waitSteps(t, f2, "s", 2)
}

func TestReplicaHandler(t *testing.T) {
	prim, srv := newPrimary(t, 1)
	inputs := models.Fig1Inputs()
	if _, err := prim.Open(&session.OpenRequest{ID: "s", Model: "short"}); err != nil {
		t.Fatal(err)
	}
	if _, err := prim.Input("s", inputs[0]); err != nil {
		t.Fatal(err)
	}
	f := newFollower(t, srv.URL)
	f.Start()
	waitSteps(t, f, "s", 1)

	dst, err := session.NewEngine(session.Config{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Shutdown()
	front := httptest.NewServer(Handler(f, dst, nil, http.NotFoundHandler()))
	defer front.Close()

	var st StateResponse
	getJSON(t, front.URL+"/replica/state", &st)
	if st.Following != srv.URL || st.Sessions != 1 {
		t.Fatalf("state: %+v", st)
	}

	// Read-only views answer from the standby.
	var lr struct {
		Log any `json:"log"`
	}
	getJSON(t, front.URL+"/replica/sessions/s/log", &lr)
	want, _ := prim.Log("s")
	wantJSON, _ := json.Marshal(want.Log)
	gotJSON, _ := json.Marshal(lr.Log)
	if string(gotJSON) != string(wantJSON) {
		t.Fatalf("follower-served log differs:\n got %s\nwant %s", gotJSON, wantJSON)
	}

	// Mutations through the replica surface are refused.
	resp, err := http.Post(front.URL+"/replica/sessions/s/input", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST through replica: %d, want 405", resp.StatusCode)
	}

	// Promote over HTTP.
	resp, err = http.Post(front.URL+"/admin/replica/promote", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var pr PromoteResult
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(pr.Sessions) != 1 || pr.Sessions[0] != "s" {
		t.Fatalf("promote: %d %+v", resp.StatusCode, pr)
	}
	if info, err := dst.Info("s"); err != nil || info.Steps != 1 {
		t.Fatalf("promoted session: %+v, %v", info, err)
	}
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

// TestSemiSyncAckImpliesReplicated pins the property ReplSyncWait exists
// for: once the follower has acked once, every subsequently-acked step is
// ALREADY applied on the standby at the moment the client sees its 2xx —
// which is exactly what lets promotion keep every acked step after the
// primary is lost without replaying anything.
func TestSemiSyncAckImpliesReplicated(t *testing.T) {
	prim, err := session.NewEngine(session.Config{
		Dir: t.TempDir(), Shards: 2, Fsync: session.FsyncNever,
		ReplSyncWait: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(session.Handler(prim))
	t.Cleanup(func() { srv.Close(); prim.Shutdown() })

	if _, err := prim.Open(&session.OpenRequest{ID: "ss", Model: "short"}); err != nil {
		t.Fatal(err)
	}
	f := newFollower(t, srv.URL)
	f.Start()
	waitSteps(t, f, "ss", 0)

	// The hold engages at the first ack; wait for it so every step below is
	// under the semi-sync contract. Only "ss" has records, so a non-zero
	// acked LSN is necessarily its shard's.
	deadline := time.Now().Add(10 * time.Second)
	for prim.Stats().ReplAcked == 0 {
		if time.Now().After(deadline) {
			t.Fatal("follower never acked")
		}
		time.Sleep(5 * time.Millisecond)
	}

	inputs := models.Fig1Inputs()
	for j, in := range inputs {
		if _, err := prim.Input("ss", in); err != nil {
			t.Fatal(err)
		}
		// No waiting: the ack itself is the synchronization point.
		info, err := f.Engine().Info("ss")
		if err != nil || info.Steps < j+1 {
			t.Fatalf("step %d acked but standby has %+v (err %v)", j+1, info, err)
		}
	}
	if n := prim.Stats().ReplSyncTimeouts; n != 0 {
		t.Fatalf("semi-sync degraded %d times against a healthy follower", n)
	}
}
