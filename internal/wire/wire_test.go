package wire

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

func testClient(t *testing.T, cfg Config) *Client {
	t.Helper()
	if cfg.RetryBackoff == 0 {
		cfg.RetryBackoff = time.Millisecond
	}
	c := New(cfg)
	t.Cleanup(c.Close)
	return c
}

// TestConnReuse pins the whole point of the shared client: repeated
// requests to one host ride a pooled connection, so dials stay at 1 while
// reuse climbs.
func TestConnReuse(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"ok":true}`))
	}))
	defer srv.Close()
	c := testClient(t, Config{Name: "reuse-test"})
	for i := 0; i < 10; i++ {
		if err := c.GetJSON(context.Background(), srv.URL, nil); err != nil {
			t.Fatalf("get %d: %v", i, err)
		}
	}
	st := c.Stats()
	if st.Dials != 1 {
		t.Fatalf("dials = %d, want 1 (pooled keep-alive)", st.Dials)
	}
	if st.Reused != 9 {
		t.Fatalf("reused = %d, want 9", st.Reused)
	}
	if st.Requests != 10 {
		t.Fatalf("requests = %d, want 10", st.Requests)
	}
}

// TestRetryOn429 checks the status replay rule: 429/503 mean "not
// applied", so the retry loop runs regardless of idempotency keys, honors
// Retry-After, and counts the cause.
func TestRetryOn429(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(map[string]string{"error": "busy"})
			return
		}
		json.NewEncoder(w).Encode(map[string]string{"ok": "yes"})
	}))
	defer srv.Close()
	c := testClient(t, Config{Name: "retry-test"})
	var out map[string]string
	if err := c.PostJSONRetry(context.Background(), srv.URL, map[string]int{"x": 1}, &out, nil); err != nil {
		t.Fatalf("post: %v", err)
	}
	if out["ok"] != "yes" {
		t.Fatalf("out = %v", out)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("calls = %d, want 3", got)
	}
	if st := c.Stats(); st.Retries["429"] != 2 {
		t.Fatalf("retries = %v, want 429:2", st.Retries)
	}
}

// TestTransportRetryNeedsKey checks the ambiguous-failure rule: a dead
// connection is retried only when the request carries an Idempotency-Key.
func TestTransportRetryNeedsKey(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			// Kill the connection mid-response: a transport error client-side.
			hj, ok := w.(http.Hijacker)
			if !ok {
				t.Fatal("no hijacker")
			}
			conn, _, _ := hj.Hijack()
			conn.Close()
			return
		}
		json.NewEncoder(w).Encode(map[string]string{"ok": "yes"})
	}))
	defer srv.Close()

	unkeyed := testClient(t, Config{Name: "transport-unkeyed"})
	err := unkeyed.PostJSONRetry(context.Background(), srv.URL, nil, nil, nil)
	if err == nil {
		t.Fatal("unkeyed transport failure should not be retried")
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("calls after unkeyed = %d, want 1", got)
	}

	calls.Store(0)
	keyed := testClient(t, Config{Name: "transport-keyed"})
	hdr := http.Header{}
	hdr.Set("Idempotency-Key", "k1")
	var out map[string]string
	if err := keyed.PostJSONRetry(context.Background(), srv.URL, nil, &out, hdr); err != nil {
		t.Fatalf("keyed retry: %v", err)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("calls after keyed = %d, want 2", got)
	}
	if st := keyed.Stats(); st.Retries["transport"] != 1 {
		t.Fatalf("retries = %v, want transport:1", st.Retries)
	}
}

// TestStatusError checks non-2xx decoding into StatusError.
func TestStatusError(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNotFound)
		json.NewEncoder(w).Encode(map[string]string{"error": "no session x"})
	}))
	defer srv.Close()
	c := testClient(t, Config{Name: "status-test"})
	err := c.PostJSON(context.Background(), srv.URL, nil, nil, nil)
	if !IsStatus(err, http.StatusNotFound) {
		t.Fatalf("err = %v, want 404 StatusError", err)
	}
	if Retryable(err) {
		t.Fatalf("404 must not be retryable")
	}
}

// TestBatchHistogram checks the batch-size accounting.
func TestBatchHistogram(t *testing.T) {
	c := testClient(t, Config{Name: "batch-test"})
	for _, n := range []int{1, 4, 4, 64} {
		c.ObserveBatch(n)
	}
	st := c.Stats()
	if st.Batches != 4 || st.BatchItems != 73 {
		t.Fatalf("batches=%d items=%d, want 4/73", st.Batches, st.BatchItems)
	}
	if st.BatchMax != 64 {
		t.Fatalf("max=%d, want 64", st.BatchMax)
	}
	if st.BatchP50 < 4 || st.BatchP50 > 8 {
		t.Fatalf("p50=%d, want bucket around 4", st.BatchP50)
	}
}
