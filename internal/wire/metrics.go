package wire

import (
	"expvar"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// clientMetrics is one client's share of the wire counters. Everything is
// atomic: requests arrive on arbitrary goroutines.
type clientMetrics struct {
	requests   atomic.Int64
	dials      atomic.Int64 // connections established
	reused     atomic.Int64 // requests served off a pooled connection
	batches    atomic.Int64
	batchItems atomic.Int64
	batchSize  sizeHist

	retryMu sync.Mutex
	retries map[string]int64 // cause → count ("429", "503", "transport")
}

func (m *clientMetrics) noteRetry(cause string) {
	m.retryMu.Lock()
	if m.retries == nil {
		m.retries = make(map[string]int64)
	}
	m.retries[cause]++
	m.retryMu.Unlock()
}

func (m *clientMetrics) retrySnapshot() map[string]int64 {
	m.retryMu.Lock()
	defer m.retryMu.Unlock()
	out := make(map[string]int64, len(m.retries))
	for k, v := range m.retries {
		out[k] = v
	}
	return out
}

// Stats is one client's point-in-time snapshot, served under the
// "spocus_wire" expvar (one row per live client).
type Stats struct {
	Name       string           `json:"name"`
	Requests   int64            `json:"requests_total"`
	Dials      int64            `json:"conns_dialed_total"`
	Reused     int64            `json:"conns_reused_total"`
	Retries    map[string]int64 `json:"retries_by_cause,omitempty"`
	Batches    int64            `json:"batches_total"`
	BatchItems int64            `json:"batch_items_total"`
	BatchP50   int64            `json:"batch_size_p50"`
	BatchP90   int64            `json:"batch_size_p90"`
	BatchMax   int64            `json:"batch_size_max"`
}

// Stats snapshots the client's counters.
func (c *Client) Stats() Stats {
	return Stats{
		Name:       c.cfg.Name,
		Requests:   c.m.requests.Load(),
		Dials:      c.m.dials.Load(),
		Reused:     c.m.reused.Load(),
		Retries:    c.m.retrySnapshot(),
		Batches:    c.m.batches.Load(),
		BatchItems: c.m.batchItems.Load(),
		BatchP50:   c.m.batchSize.quantile(0.50),
		BatchP90:   c.m.batchSize.quantile(0.90),
		BatchMax:   c.m.batchSize.max.Load(),
	}
}

// sizeHist is a lock-free histogram with power-of-two buckets over
// positive integers (batch sizes): bucket i counts values v with
// 2^(i-1) ≤ v < 2^i. Quantiles read off bucket upper bounds, same
// discipline as the engine's latency histogram.
type sizeHist struct {
	buckets [32]atomic.Int64
	count   atomic.Int64
	max     atomic.Int64
}

func (h *sizeHist) observe(v int64) {
	if v < 0 {
		v = 0
	}
	i := bits.Len64(uint64(v))
	if i >= len(h.buckets) {
		i = len(h.buckets) - 1
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.max.Load()
		if v <= old || h.max.CompareAndSwap(old, v) {
			break
		}
	}
}

func (h *sizeHist) quantile(q float64) int64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(q * float64(total))
	var seen int64
	for i := range h.buckets {
		seen += h.buckets[i].Load()
		if seen > rank {
			return 1 << uint(i)
		}
	}
	return h.max.Load()
}

// clients tracks live wire clients so the process-wide expvar aggregates
// across them (a router has two: data plane + health; a server has none).
var (
	clientsMu  sync.Mutex
	clients    = make(map[*Client]bool)
	expvarOnce sync.Once
)

func registerClient(c *Client) {
	clientsMu.Lock()
	clients[c] = true
	clientsMu.Unlock()
	expvarOnce.Do(func() {
		expvar.Publish("spocus_wire", expvar.Func(func() any {
			clientsMu.Lock()
			defer clientsMu.Unlock()
			agg := make([]Stats, 0, len(clients))
			for c := range clients {
				agg = append(agg, c.Stats())
			}
			sort.Slice(agg, func(i, j int) bool { return agg[i].Name < agg[j].Name })
			return agg
		}))
	})
}

func unregisterClient(c *Client) {
	clientsMu.Lock()
	delete(clients, c)
	clientsMu.Unlock()
}
