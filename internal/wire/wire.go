// Package wire is the shared HTTP data plane: one client construction
// (pooled keep-alive transport, per-host limits, deadlines) and one
// retry/backoff policy for every component that speaks HTTP — the router's
// upstream fan-out, the health checker, the replication follower, and the
// bench/scenario load generators. Before this package each of them carried
// its own hand-rolled http.Client; now they share the pool discipline and
// the idempotency-key replay rules, and every client feeds the same
// "spocus_wire" expvar (connection reuse vs. dials, retries by cause,
// batch sizes).
//
// Replay rules: a non-2xx *status* (429 backpressure, 503 mid-handoff)
// means the request was NOT applied, so it is always safe to retry after
// backoff. A *transport* error (connection reset, timeout) is ambiguous —
// the peer may have applied the request before the connection died — so
// transport retries are attempted only for requests that are idempotent by
// construction: GETs, and POSTs carrying an Idempotency-Key header (the
// engine's dedupe table answers the replay from the log instead of
// applying it twice).
package wire

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptrace"
	"strconv"
	"strings"
	"time"

	"repro/internal/codec"
)

// Config tunes a Client. The zero value is a sane data-plane default.
type Config struct {
	// Name labels this client's row in the spocus_wire expvar.
	Name string
	// Timeout caps one attempt end to end (default 30s). Per-request
	// contexts can only shorten it.
	Timeout time.Duration
	// MaxIdleConns / MaxIdleConnsPerHost size the keep-alive pool
	// (defaults 1024 / 256). MaxConnsPerHost additionally caps concurrent
	// connections per backend (default 0: unlimited).
	MaxIdleConns        int
	MaxIdleConnsPerHost int
	MaxConnsPerHost     int
	// IdleConnTimeout evicts pooled connections (default 90s).
	IdleConnTimeout time.Duration
	// RetryAttempts bounds total tries for retryable requests (default 5);
	// RetryBackoff is the first sleep, doubling per attempt (default 50ms).
	RetryAttempts int
	RetryBackoff  time.Duration
	// Transport overrides the pooled transport (tests). Pool knobs are
	// ignored when set.
	Transport http.RoundTripper
}

func (c Config) withDefaults() Config {
	if c.Name == "" {
		c.Name = "client"
	}
	if c.Timeout <= 0 {
		c.Timeout = 30 * time.Second
	}
	if c.MaxIdleConns <= 0 {
		c.MaxIdleConns = 1024
	}
	if c.MaxIdleConnsPerHost <= 0 {
		c.MaxIdleConnsPerHost = 256
	}
	if c.IdleConnTimeout <= 0 {
		c.IdleConnTimeout = 90 * time.Second
	}
	if c.RetryAttempts <= 0 {
		c.RetryAttempts = 5
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 50 * time.Millisecond
	}
	return c
}

// Client is one pooled HTTP client plus its share of the wire metrics.
// Safe for concurrent use.
type Client struct {
	cfg Config
	hc  *http.Client
	m   clientMetrics
}

// New builds a client from cfg and registers it with the spocus_wire
// expvar. Call Close when done to drop idle connections and unregister.
func New(cfg Config) *Client {
	cfg = cfg.withDefaults()
	rt := cfg.Transport
	if rt == nil {
		rt = &http.Transport{
			MaxIdleConns:        cfg.MaxIdleConns,
			MaxIdleConnsPerHost: cfg.MaxIdleConnsPerHost,
			MaxConnsPerHost:     cfg.MaxConnsPerHost,
			IdleConnTimeout:     cfg.IdleConnTimeout,
		}
	}
	c := &Client{cfg: cfg, hc: &http.Client{Transport: rt, Timeout: cfg.Timeout}}
	registerClient(c)
	return c
}

// Close releases pooled connections and removes the client from the
// expvar registry. The client stays usable (new connections dial fresh).
func (c *Client) Close() {
	if t, ok := c.hc.Transport.(*http.Transport); ok {
		t.CloseIdleConnections()
	}
	unregisterClient(c)
}

// Do sends one request through the pooled transport, counting connection
// reuse vs. fresh dials. No retries — use the *Retry helpers for policy.
func (c *Client) Do(req *http.Request) (*http.Response, error) {
	trace := &httptrace.ClientTrace{
		GotConn: func(info httptrace.GotConnInfo) {
			if info.Reused {
				c.m.reused.Add(1)
			} else {
				c.m.dials.Add(1)
			}
		},
	}
	req = req.WithContext(httptrace.WithClientTrace(req.Context(), trace))
	c.m.requests.Add(1)
	return c.hc.Do(req)
}

// Get issues a GET through Do.
func (c *Client) Get(ctx context.Context, url string) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	return c.Do(req)
}

// Post issues a POST through Do.
func (c *Client) Post(ctx context.Context, url, contentType string, body []byte) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	return c.Do(req)
}

// StatusError is a non-2xx response surfaced as an error, carrying the
// peer's decoded error message and any Retry-After hint.
type StatusError struct {
	URL        string
	Status     int
	Msg        string
	RetryAfter time.Duration
}

func (e *StatusError) Error() string {
	if e.Msg != "" {
		return fmt.Sprintf("%s: status %d: %s", e.URL, e.Status, e.Msg)
	}
	return fmt.Sprintf("%s: status %d", e.URL, e.Status)
}

// Retryable reports whether err is a status the peer promises was not
// applied (429 backpressure, 503 mid-handoff/unavailable) — always safe
// to retry after backoff.
func Retryable(err error) bool {
	var se *StatusError
	return errors.As(err, &se) &&
		(se.Status == http.StatusTooManyRequests || se.Status == http.StatusServiceUnavailable)
}

// IsStatus reports whether err is a StatusError with the given code.
func IsStatus(err error, status int) bool {
	var se *StatusError
	return errors.As(err, &se) && se.Status == status
}

// statusError builds a StatusError from a drained non-2xx response body.
func statusError(url string, resp *http.Response, body []byte) *StatusError {
	se := &StatusError{URL: url, Status: resp.StatusCode}
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &e) == nil {
		se.Msg = e.Error
	}
	if v := resp.Header.Get("Retry-After"); v != "" {
		if secs, err := strconv.Atoi(v); err == nil && secs >= 0 {
			se.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	return se
}

// GetJSON GETs url and decodes the 2xx JSON response into out (when
// non-nil). Non-2xx → *StatusError.
func (c *Client) GetJSON(ctx context.Context, url string, out any) error {
	resp, err := c.Get(ctx, url)
	if err != nil {
		return err
	}
	return drainJSON(url, resp, out)
}

// PostJSON posts in (nil for an empty body) to url and decodes the 2xx
// JSON response into out (when non-nil). Non-2xx → *StatusError. One
// attempt — see PostJSONRetry for the backoff policy.
func (c *Client) PostJSON(ctx context.Context, url string, in, out any, hdr http.Header) error {
	body, err := marshalBody(in)
	if err != nil {
		return err
	}
	return c.PostBytes(ctx, url, "application/json", body, out, hdr)
}

// PostBytes posts a raw body under contentType and decodes the 2xx JSON
// response into out (when non-nil). Non-2xx → *StatusError. The transport
// for pre-encoded payloads — binary state images, compacted envelopes.
func (c *Client) PostBytes(ctx context.Context, url, contentType string, body []byte, out any, hdr http.Header) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", contentType)
	for k, vs := range hdr {
		for _, v := range vs {
			req.Header.Add(k, v)
		}
	}
	resp, err := c.Do(req)
	if err != nil {
		return err
	}
	return drainJSON(url, resp, out)
}

// PostJSONRetry is PostJSON under the client's retry policy: retryable
// statuses (429/503) back off and retry up to RetryAttempts total tries,
// honoring a Retry-After hint when the peer sent one. Transport errors
// are retried only when the request carries an Idempotency-Key header —
// the replay rule that makes an ambiguous resend safe.
func (c *Client) PostJSONRetry(ctx context.Context, url string, in, out any, hdr http.Header) error {
	keyed := hdr.Get("Idempotency-Key") != ""
	var err error
	for attempt := 0; attempt < c.cfg.RetryAttempts; attempt++ {
		if attempt > 0 {
			if serr := c.sleepBackoff(ctx, attempt-1, err); serr != nil {
				return err
			}
		}
		err = c.PostJSON(ctx, url, in, out, hdr)
		if err == nil {
			return nil
		}
		switch {
		case Retryable(err):
			var se *StatusError
			errors.As(err, &se)
			c.m.noteRetry(strconv.Itoa(se.Status))
		case keyed && !isStatusErr(err) && ctx.Err() == nil:
			c.m.noteRetry("transport")
		default:
			return err
		}
	}
	return err
}

func isStatusErr(err error) bool {
	var se *StatusError
	return errors.As(err, &se)
}

// sleepBackoff waits out the attempt's backoff (or the peer's Retry-After
// hint, when longer but still bounded), aborting early on ctx cancel.
func (c *Client) sleepBackoff(ctx context.Context, attempt int, lastErr error) error {
	d := c.cfg.RetryBackoff << uint(attempt)
	var se *StatusError
	if errors.As(lastErr, &se) && se.RetryAfter > d && se.RetryAfter <= 5*time.Second {
		d = se.RetryAfter
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// NoteRetry ticks the retries-by-cause counter for callers that run their
// own retry loop (the router's keyed replay across backend failover).
func (c *Client) NoteRetry(cause string) { c.m.noteRetry(cause) }

// ObserveBatch records one sent batch of n steps in the wire batch-size
// histogram.
func (c *Client) ObserveBatch(n int) {
	c.m.batches.Add(1)
	c.m.batchItems.Add(int64(n))
	c.m.batchSize.observe(int64(n))
}

// PostBinaryNegotiate posts body to url offering binary transfer
// (Accept: application/octet-stream). It returns the raw response bytes
// plus whether the peer actually answered in the compact codec framing —
// detected from both the Content-Type and the codec magic, so a JSON peer
// behind a sloppy proxy never masquerades as binary. Non-2xx → *StatusError.
func (c *Client) PostBinaryNegotiate(ctx context.Context, url string, body []byte) (raw []byte, binary bool, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, false, err
	}
	req.Header.Set("Accept", "application/octet-stream")
	resp, err := c.Do(req)
	if err != nil {
		return nil, false, err
	}
	defer resp.Body.Close()
	raw, err = io.ReadAll(resp.Body)
	if err != nil {
		return nil, false, err
	}
	if resp.StatusCode/100 != 2 {
		return nil, false, statusError(url, resp, raw)
	}
	binary = strings.Contains(resp.Header.Get("Content-Type"), "application/octet-stream") &&
		codec.IsBinary(raw)
	return raw, binary, nil
}

func marshalBody(in any) ([]byte, error) {
	if in == nil {
		return nil, nil
	}
	return json.Marshal(in)
}

// drainJSON consumes resp: 2xx decodes into out, everything else becomes
// a *StatusError. The body is always fully read so the connection returns
// to the pool.
func drainJSON(url string, resp *http.Response, out any) error {
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		io.Copy(io.Discard, resp.Body)
		return statusError(url, resp, body)
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("%s: decode response: %w", url, err)
	}
	io.Copy(io.Discard, resp.Body)
	return nil
}
