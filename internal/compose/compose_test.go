package compose

import (
	"testing"

	"repro/internal/core"
	"repro/internal/relation"
	"repro/internal/verify"
)

// supplierSrc requires payment before delivery (the supplier's business
// model): pay must match a prior order at the listed price.
const supplierSrc = `
transducer supplier
schema
  database: price/2;
  input: order/1, pay/2;
  state: past-order/1, past-pay/2;
  output: invoice/2, deliver/1, error/0;
  log: invoice, deliver;
state rules
  past-order(X) +:- order(X);
  past-pay(X,Y) +:- pay(X,Y);
output rules
  invoice(X,Y) :- order(X), price(X,Y), NOT past-pay(X,Y);
  deliver(X) :- past-order(X), price(X,Y), pay(X,Y), NOT past-pay(X,Y);
  error :- pay(X,Y), NOT past-order(X);
  error :- pay(X,Y), NOT price(X,Y);
`

func buildMarket(t *testing.T, customerSrc string) *Network {
	t.Helper()
	n := New()
	db := relation.NewInstance()
	db.Add("price", relation.Tuple{"widget", "5"})
	if err := n.AddNode("supplier", core.MustParseProgram(supplierSrc), db); err != nil {
		t.Fatal(err)
	}
	if err := n.AddNode("customer", core.MustParseProgram(customerSrc), nil); err != nil {
		t.Fatal(err)
	}
	for _, w := range []Wire{
		{"customer", "order", "supplier", "order"},
		{"customer", "pay", "supplier", "pay"},
		{"supplier", "invoice", "customer", "invoice"},
		{"supplier", "deliver", "customer", "arrived"},
	} {
		if err := n.Connect(w.From, w.Output, w.To, w.Input); err != nil {
			t.Fatal(err)
		}
	}
	return n
}

func TestConnectValidation(t *testing.T) {
	n := New()
	if err := n.AddNode("s", core.MustParseProgram(supplierSrc), nil); err != nil {
		t.Fatal(err)
	}
	if err := n.Connect("s", "deliver", "ghost", "x"); err == nil {
		t.Error("unknown node accepted")
	}
	if err := n.Connect("s", "nope", "s", "order"); err == nil {
		t.Error("unknown output accepted")
	}
	if err := n.Connect("s", "invoice", "s", "order"); err == nil {
		t.Error("arity mismatch accepted")
	}
	if err := n.AddNode("s", core.MustParseProgram(supplierSrc), nil); err == nil {
		t.Error("duplicate node accepted")
	}
}

func TestExternalInputs(t *testing.T) {
	n := buildMarket(t, promptCustomerFixed)
	ext := n.ExternalInputs()
	if len(ext["supplier"]) != 0 {
		t.Errorf("supplier externals = %v, want none (fully wired)", ext["supplier"])
	}
	if len(ext["customer"]) != 1 || ext["customer"][0].Name != "want" {
		t.Errorf("customer externals = %v, want [want]", ext["customer"])
	}
}

// promptCustomerFixed is promptCustomerSrc with a valid pay rule.
const promptCustomerFixed = `
transducer prompt
schema
  input: want/1, invoice/2, arrived/1;
  state: past-want/1, past-invoice/2, past-arrived/1;
  output: order/1, pay/2, error/0;
  log: order, pay;
state rules
  past-want(X) +:- want(X);
  past-invoice(X,Y) +:- invoice(X,Y);
  past-arrived(X) +:- arrived(X);
output rules
  order(X) :- want(X), NOT past-want(X);
  pay(X,Y) :- invoice(X,Y), NOT past-invoice(X,Y);
`

// TestHappyFlow drives the prompt market by hand: want → order → invoice →
// pay → deliver, each hop one step later (unit delay).
func TestHappyFlow(t *testing.T) {
	n := buildMarket(t, promptCustomerFixed)
	want := relation.NewInstance()
	want.Add("want", relation.Tuple{"widget"})
	ext := []StepInputs{
		{"customer": want},
		{}, {}, {}, {},
	}
	run, err := n.Execute(ext)
	if err != nil {
		t.Fatal(err)
	}
	if !run.ErrorFree() {
		t.Fatal("happy flow raised error")
	}
	// Step 1: customer orders. Step 2: supplier invoices. Step 3: customer
	// pays. Step 4: supplier delivers.
	if run.Outputs[0]["customer"].Rel("order").Len() == 0 {
		t.Errorf("no order at step 1: %s", run.Outputs[0]["customer"])
	}
	if !run.Outputs[1]["supplier"].Has("invoice", relation.Tuple{"widget", "5"}) {
		t.Errorf("no invoice at step 2: %s", run.Outputs[1]["supplier"])
	}
	if !run.Outputs[2]["customer"].Has("pay", relation.Tuple{"widget", "5"}) {
		t.Errorf("no payment at step 3: %s", run.Outputs[2]["customer"])
	}
	if !run.Outputs[3]["supplier"].Has("deliver", relation.Tuple{"widget"}) {
		t.Errorf("no delivery at step 4: %s", run.Outputs[3]["supplier"])
	}
}

// TestCompatibilityPromptCustomer: the compatibility search finds the happy
// flow on its own (experiment E17).
func TestCompatibilityPromptCustomer(t *testing.T) {
	n := buildMarket(t, promptCustomerFixed)
	g, err := verify.ParseGoal("deliver(widget)")
	if err != nil {
		t.Fatal(err)
	}
	res, err := n.Compatible([]Goal{{Node: "supplier", G: g}}, []relation.Const{"widget"}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Compatible {
		t.Fatalf("prompt market incompatible after exploring %d runs", res.Explored)
	}
	// The witness replays.
	run, err := n.Execute(res.Witness)
	if err != nil {
		t.Fatal(err)
	}
	if !run.ErrorFree() || !g.Holds(run.Outputs[run.Len()-1]["supplier"]) {
		t.Error("witness does not achieve the goal")
	}
}

// TestIncompatibilityStubbornCustomer: a customer who pays only after
// delivery cannot trade with a supplier who delivers only after payment —
// within the search bounds no error-free run delivers (the deadlock the
// paper's introduction describes).
func TestIncompatibilityStubbornCustomer(t *testing.T) {
	n := buildMarket(t, stubbornCustomerFixed)
	g, err := verify.ParseGoal("deliver(widget)")
	if err != nil {
		t.Fatal(err)
	}
	res, err := n.Compatible([]Goal{{Node: "supplier", G: g}}, []relation.Const{"widget"}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Compatible {
		t.Fatalf("stubborn market compatible via %v", res.Witness)
	}
	if res.Explored == 0 {
		t.Error("search explored nothing")
	}
}

// TestExecuteResetsState: consecutive executions start from fresh states,
// so the same stimulus yields the same run.
func TestExecuteResetsState(t *testing.T) {
	n := buildMarket(t, promptCustomerFixed)
	want := relation.NewInstance()
	want.Add("want", relation.Tuple{"widget"})
	ext := []StepInputs{{"customer": want}, {}, {}, {}, {}}
	r1, err := n.Execute(ext)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := n.Execute(ext)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.Outputs {
		for _, node := range n.Nodes() {
			if !r1.Outputs[i][node].Equal(r2.Outputs[i][node]) {
				t.Fatalf("step %d node %s differs between executions", i+1, node)
			}
		}
	}
}

// TestRunRecordsConsumedInputs: the run trace shows wired inputs merged
// with external stimulus.
func TestRunRecordsConsumedInputs(t *testing.T) {
	n := buildMarket(t, promptCustomerFixed)
	want := relation.NewInstance()
	want.Add("want", relation.Tuple{"widget"})
	run, err := n.Execute([]StepInputs{{"customer": want}, {}, {}})
	if err != nil {
		t.Fatal(err)
	}
	// Step 2: the supplier consumed the customer's wired order.
	if !run.Inputs[1]["supplier"].Has("order", relation.Tuple{"widget"}) {
		t.Errorf("wired order not recorded: %s", run.Inputs[1]["supplier"])
	}
	// Step 3: the customer consumed the supplier's wired invoice.
	if !run.Inputs[2]["customer"].Has("invoice", relation.Tuple{"widget", "5"}) {
		t.Errorf("wired invoice not recorded: %s", run.Inputs[2]["customer"])
	}
}

// stubbornCustomerFixed pays only once goods arrived (and keeps paying only
// the invoiced amount).
const stubbornCustomerFixed = `
transducer stubborn
schema
  input: want/1, invoice/2, arrived/1;
  state: past-want/1, past-invoice/2, past-arrived/1;
  output: order/1, pay/2, error/0;
  log: order, pay;
state rules
  past-want(X) +:- want(X);
  past-invoice(X,Y) +:- invoice(X,Y);
  past-arrived(X) +:- arrived(X);
output rules
  order(X) :- want(X), NOT past-want(X);
  pay(X,Y) :- past-invoice(X,Y), arrived(X);
`
