// Package compose implements the interaction of relational transducers the
// paper raises as future work (Section 5): networks in which outputs of
// some transducers are fed as inputs to others, possibly with feedback.
//
// Semantics are synchronous with unit delay: at step i a node consumes its
// external inputs for step i together with the wired outputs its peers
// produced at step i-1. Unit delay sidesteps the instantaneous-feedback
// consistency problem the paper points out, while still letting business
// partners converse (customer orders at step i, supplier bills at step i+1,
// and so on).
//
// The package provides joint runs, error-freeness across the network, and
// a bounded compatibility check in the sense of the introduction: a search
// for a joint run that achieves the parties' goals while every transducer
// stays error-free.
package compose

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/relation"
	"repro/internal/verify"
)

// Node is one participant: a named transducer with its own database.
type Node struct {
	Name string
	M    *core.Machine
	DB   relation.Instance

	state relation.Instance
}

// Wire routes one node's output relation into another node's input
// relation (the relations must have equal arity).
type Wire struct {
	From   string // source node
	Output string // source output relation
	To     string // destination node
	Input  string // destination input relation
}

// Network is a set of nodes and wires.
type Network struct {
	nodes map[string]*Node
	order []string
	wires []Wire
}

// New creates an empty network.
func New() *Network {
	return &Network{nodes: make(map[string]*Node)}
}

// AddNode registers a participant.
func (n *Network) AddNode(name string, m *core.Machine, db relation.Instance) error {
	if _, ok := n.nodes[name]; ok {
		return fmt.Errorf("compose: duplicate node %s", name)
	}
	if db == nil {
		db = relation.NewInstance()
	}
	n.nodes[name] = &Node{Name: name, M: m, DB: db}
	n.order = append(n.order, name)
	return nil
}

// Connect wires an output relation of one node to an input relation of
// another.
func (n *Network) Connect(from, output, to, input string) error {
	src, ok := n.nodes[from]
	if !ok {
		return fmt.Errorf("compose: unknown node %s", from)
	}
	dst, ok := n.nodes[to]
	if !ok {
		return fmt.Errorf("compose: unknown node %s", to)
	}
	oa, ok := src.M.Schema().Out.Arity(output)
	if !ok {
		return fmt.Errorf("compose: %s has no output relation %s", from, output)
	}
	ia, ok := dst.M.Schema().In.Arity(input)
	if !ok {
		return fmt.Errorf("compose: %s has no input relation %s", to, input)
	}
	if oa != ia {
		return fmt.Errorf("compose: wire %s.%s/%d -> %s.%s/%d: arity mismatch", from, output, oa, to, input, ia)
	}
	n.wires = append(n.wires, Wire{From: from, Output: output, To: to, Input: input})
	return nil
}

// Nodes returns the node names in insertion order.
func (n *Network) Nodes() []string { return append([]string(nil), n.order...) }

// ExternalInputs returns, for each node, its input relations that no wire
// feeds — the relations the outside world (the search in Compatible) may
// drive.
func (n *Network) ExternalInputs() map[string]relation.Schema {
	wired := map[string]map[string]bool{}
	for _, w := range n.wires {
		if wired[w.To] == nil {
			wired[w.To] = map[string]bool{}
		}
		wired[w.To][w.Input] = true
	}
	out := map[string]relation.Schema{}
	for name, node := range n.nodes {
		var sch relation.Schema
		for _, d := range node.M.Schema().In {
			if !wired[name][d.Name] {
				sch = append(sch, d)
			}
		}
		out[name] = sch
	}
	return out
}

// StepInputs is one step of external stimulus: node name → input instance.
type StepInputs map[string]relation.Instance

// Run is the trace of a joint execution.
type Run struct {
	// Inputs[i][v] is what node v actually consumed at step i (external ∪
	// wired).
	Inputs []StepInputs
	// Outputs[i][v] is node v's output at step i.
	Outputs []StepInputs
}

// Len returns the number of steps.
func (r *Run) Len() int { return len(r.Outputs) }

// ErrorFree reports whether no node ever output an error fact.
func (r *Run) ErrorFree() bool {
	for _, step := range r.Outputs {
		for _, out := range step {
			if out.Rel(core.ErrorRel).Len() > 0 {
				return false
			}
		}
	}
	return true
}

// Execute runs the network for len(external) steps. Each node's state
// starts empty; wired values are delayed one step.
func (n *Network) Execute(external []StepInputs) (*Run, error) {
	for _, node := range n.nodes {
		st := relation.NewInstance()
		for _, d := range node.M.Schema().State {
			st.Ensure(d.Name, d.Arity)
		}
		node.state = st
	}
	run := &Run{}
	prevOut := StepInputs{}
	for i := range external {
		inStep := StepInputs{}
		outStep := StepInputs{}
		for _, name := range n.order {
			node := n.nodes[name]
			in := relation.NewInstance()
			if ext, ok := external[i][name]; ok {
				in.UnionWith(ext)
			}
			for _, w := range n.wires {
				if w.To != name {
					continue
				}
				src, ok := prevOut[w.From]
				if !ok {
					continue
				}
				if rel := src.Rel(w.Output); rel != nil && rel.Len() > 0 {
					in.Ensure(w.Input, rel.Arity()).UnionWith(rel)
				}
			}
			next, out, err := node.M.Step(in, node.state, node.DB)
			if err != nil {
				return nil, fmt.Errorf("compose: node %s step %d: %w", name, i+1, err)
			}
			node.state = next
			inStep[name] = in
			outStep[name] = out
		}
		run.Inputs = append(run.Inputs, inStep)
		run.Outputs = append(run.Outputs, outStep)
		prevOut = outStep
	}
	return run, nil
}

// Goal names a goal to achieve in a given node's output at the last step.
type Goal struct {
	Node string
	G    *verify.Goal
}

// CompatibleResult is the outcome of the bounded compatibility search.
type CompatibleResult struct {
	Compatible bool
	// Witness is the external stimulus of a goal-achieving error-free run.
	Witness []StepInputs
	// Explored counts the candidate runs examined.
	Explored int
}

// Compatible searches for a joint error-free run of length ≤ maxLen that
// satisfies every goal at its final step, driving at most one external fact
// per step drawn from the given constant pool. This realizes (boundedly)
// the compatibility question of the paper's introduction: "there exists a
// run which achieves some desired goals while satisfying both business
// models". The search is exhaustive within its bounds, so a negative
// answer means no such run exists within them.
func (n *Network) Compatible(goals []Goal, pool []relation.Const, maxLen int) (*CompatibleResult, error) {
	for _, g := range goals {
		node, ok := n.nodes[g.Node]
		if !ok {
			return nil, fmt.Errorf("compose: unknown goal node %s", g.Node)
		}
		_ = node
	}
	ext := n.ExternalInputs()
	// Candidate single-fact stimuli (plus the empty stimulus).
	var candidates []StepInputs
	candidates = append(candidates, StepInputs{})
	var nodeNames []string
	for name := range ext {
		nodeNames = append(nodeNames, name)
	}
	sort.Strings(nodeNames)
	for _, name := range nodeNames {
		for _, d := range ext[name] {
			for _, tup := range allTuples(pool, d.Arity) {
				in := relation.NewInstance()
				in.Add(d.Name, tup)
				candidates = append(candidates, StepInputs{name: in})
			}
		}
	}
	res := &CompatibleResult{}
	var rec func(prefix []StepInputs) (bool, error)
	rec = func(prefix []StepInputs) (bool, error) {
		if len(prefix) > 0 {
			res.Explored++
			run, err := n.Execute(prefix)
			if err != nil {
				return false, err
			}
			if !run.ErrorFree() {
				return false, nil // prune: errors never disappear
			}
			achieved := true
			for _, g := range goals {
				out := run.Outputs[run.Len()-1][g.Node]
				if !g.G.Holds(out) {
					achieved = false
					break
				}
			}
			if achieved {
				res.Compatible = true
				res.Witness = prefix
				return true, nil
			}
		}
		if len(prefix) == maxLen {
			return false, nil
		}
		for _, c := range candidates {
			next := append(append([]StepInputs{}, prefix...), c)
			done, err := rec(next)
			if err != nil || done {
				return done, err
			}
		}
		return false, nil
	}
	_, err := rec(nil)
	if err != nil {
		return nil, err
	}
	return res, nil
}

func allTuples(pool []relation.Const, arity int) []relation.Tuple {
	if arity == 0 {
		return []relation.Tuple{{}}
	}
	sub := allTuples(pool, arity-1)
	var out []relation.Tuple
	for _, c := range pool {
		for _, t := range sub {
			nt := make(relation.Tuple, 0, arity)
			nt = append(nt, c)
			nt = append(nt, t...)
			out = append(out, nt)
		}
	}
	return out
}
