// Package compose implements the interaction of relational transducers the
// paper raises as future work (Section 5): networks in which outputs of
// some transducers are fed as inputs to others, possibly with feedback.
//
// Semantics are synchronous with unit delay: at step i a node consumes its
// external inputs for step i together with the wired outputs its peers
// produced at step i-1. Unit delay sidesteps the instantaneous-feedback
// consistency problem the paper points out, while still letting business
// partners converse (customer orders at step i, supplier bills at step i+1,
// and so on).
//
// The package provides joint runs, error-freeness across the network, and
// a bounded compatibility check in the sense of the introduction: a search
// for a joint run that achieves the parties' goals while every transducer
// stays error-free.
package compose

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/relation"
)

// Node is one participant: a named transducer with its own database.
type Node struct {
	Name string
	M    *core.Machine
	DB   relation.Instance

	state relation.Instance
}

// Wire routes one node's output relation into another node's input
// relation (the relations must have equal arity).
type Wire struct {
	From   string // source node
	Output string // source output relation
	To     string // destination node
	Input  string // destination input relation
}

// Network is a set of nodes and wires. After Start it also carries the
// inter-step run state: each node's state instance and the unit-delay
// buffer of last-step outputs. StepOnce advances the whole network one
// synchronous step at a time, which is what lets a serving layer drive a
// network interactively instead of replaying it from scratch per stimulus.
type Network struct {
	nodes map[string]*Node
	order []string
	wires []Wire

	started bool
	steps   int
	prevOut StepInputs
}

// New creates an empty network.
func New() *Network {
	return &Network{nodes: make(map[string]*Node)}
}

// AddNode registers a participant.
func (n *Network) AddNode(name string, m *core.Machine, db relation.Instance) error {
	if _, ok := n.nodes[name]; ok {
		return fmt.Errorf("compose: duplicate node %s", name)
	}
	if db == nil {
		db = relation.NewInstance()
	}
	n.nodes[name] = &Node{Name: name, M: m, DB: db}
	n.order = append(n.order, name)
	return nil
}

// Connect wires an output relation of one node to an input relation of
// another.
func (n *Network) Connect(from, output, to, input string) error {
	src, ok := n.nodes[from]
	if !ok {
		return fmt.Errorf("compose: unknown node %s", from)
	}
	dst, ok := n.nodes[to]
	if !ok {
		return fmt.Errorf("compose: unknown node %s", to)
	}
	oa, ok := src.M.Schema().Out.Arity(output)
	if !ok {
		return fmt.Errorf("compose: %s has no output relation %s", from, output)
	}
	ia, ok := dst.M.Schema().In.Arity(input)
	if !ok {
		return fmt.Errorf("compose: %s has no input relation %s", to, input)
	}
	if oa != ia {
		return fmt.Errorf("compose: wire %s.%s/%d -> %s.%s/%d: arity mismatch", from, output, oa, to, input, ia)
	}
	n.wires = append(n.wires, Wire{From: from, Output: output, To: to, Input: input})
	return nil
}

// Nodes returns the node names in insertion order.
func (n *Network) Nodes() []string { return append([]string(nil), n.order...) }

// ExternalInputs returns, for each node, its input relations that no wire
// feeds — the relations the outside world (the search in Compatible) may
// drive.
func (n *Network) ExternalInputs() map[string]relation.Schema {
	wired := map[string]map[string]bool{}
	for _, w := range n.wires {
		if wired[w.To] == nil {
			wired[w.To] = map[string]bool{}
		}
		wired[w.To][w.Input] = true
	}
	out := map[string]relation.Schema{}
	for name, node := range n.nodes {
		var sch relation.Schema
		for _, d := range node.M.Schema().In {
			if !wired[name][d.Name] {
				sch = append(sch, d)
			}
		}
		out[name] = sch
	}
	return out
}

// StepInputs is one step of external stimulus: node name → input instance.
type StepInputs map[string]relation.Instance

// Run is the trace of a joint execution.
type Run struct {
	// Inputs[i][v] is what node v actually consumed at step i (external ∪
	// wired).
	Inputs []StepInputs
	// Outputs[i][v] is node v's output at step i.
	Outputs []StepInputs
}

// Len returns the number of steps.
func (r *Run) Len() int { return len(r.Outputs) }

// ErrorFree reports whether no node ever output an error fact.
func (r *Run) ErrorFree() bool {
	for _, step := range r.Outputs {
		for _, out := range step {
			if out.Rel(core.ErrorRel).Len() > 0 {
				return false
			}
		}
	}
	return true
}

// Node returns the named participant, or nil if unknown.
func (n *Network) Node(name string) *Node { return n.nodes[name] }

// Steps returns how many joint steps have run since Start.
func (n *Network) Steps() int { return n.steps }

// Start (re)initializes the run: every node's state becomes empty and the
// unit-delay buffer is cleared. StepOnce calls it lazily on first use;
// Execute calls it so consecutive executions are independent.
func (n *Network) Start() {
	for _, node := range n.nodes {
		st := relation.NewInstance()
		for _, d := range node.M.Schema().State {
			st.Ensure(d.Name, d.Arity)
		}
		node.state = st
	}
	n.started = true
	n.steps = 0
	n.prevOut = StepInputs{}
}

// WireDelta is the traffic one wire carried into a step: the facts the
// source produced last step, delivered to the destination's input relation
// this step (unit delay). Facts are in deterministic sorted order.
type WireDelta struct {
	From   string           `json:"from"`
	Output string           `json:"output"`
	To     string           `json:"to"`
	Input  string           `json:"input"`
	Facts  []relation.Tuple `json:"facts"`
}

// JointStep is the full exchange of one synchronous network step: what each
// node consumed (external ∪ wired), what it produced, its log delta, and
// the per-wire traffic delivered this step.
type JointStep struct {
	Seq      int        `json:"seq"`
	Consumed StepInputs `json:"consumed"`
	Outputs  StepInputs `json:"outputs"`
	// Logs[v] is node v's log delta per its own schema's log declaration —
	// the durable per-node object, exactly Definition 2.2 applied nodewise.
	Logs StepInputs  `json:"logs"`
	Wire []WireDelta `json:"wire,omitempty"`
}

// StepOnce advances every node one synchronous step: node v consumes the
// external stimulus ext[v] unioned with the wired outputs its peers
// produced on the previous step. Nodes step in insertion order, but the
// unit delay makes the result order-independent: every node reads only
// last-step outputs. An evaluation error aborts with the network state
// unchanged (states are replaced only after every node stepped).
func (n *Network) StepOnce(ext StepInputs) (*JointStep, error) {
	if !n.started {
		n.Start()
	}
	js := &JointStep{Seq: n.steps + 1, Consumed: StepInputs{}, Outputs: StepInputs{}, Logs: StepInputs{}}
	for _, w := range n.wires {
		src, ok := n.prevOut[w.From]
		if !ok {
			continue
		}
		if rel := src.Rel(w.Output); rel != nil && rel.Len() > 0 {
			js.Wire = append(js.Wire, WireDelta{From: w.From, Output: w.Output, To: w.To, Input: w.Input, Facts: rel.Tuples()})
		}
	}
	nextStates := make(map[string]relation.Instance, len(n.order))
	for _, name := range n.order {
		node := n.nodes[name]
		in := relation.NewInstance()
		if e, ok := ext[name]; ok {
			in.UnionWith(e)
		}
		for _, w := range n.wires {
			if w.To != name {
				continue
			}
			src, ok := n.prevOut[w.From]
			if !ok {
				continue
			}
			if rel := src.Rel(w.Output); rel != nil && rel.Len() > 0 {
				in.Ensure(w.Input, rel.Arity()).UnionWith(rel)
			}
		}
		next, out, err := node.M.Step(in, node.state, node.DB)
		if err != nil {
			return nil, fmt.Errorf("compose: node %s step %d: %w", name, n.steps+1, err)
		}
		nextStates[name] = next
		js.Consumed[name] = in
		js.Outputs[name] = out
		js.Logs[name] = node.M.Schema().LogDelta(in, out)
	}
	for name, st := range nextStates {
		n.nodes[name].state = st
	}
	n.prevOut = js.Outputs
	n.steps++
	return js, nil
}

// Execute runs the network for len(external) steps from a fresh start.
// Each node's state starts empty; wired values are delayed one step.
func (n *Network) Execute(external []StepInputs) (*Run, error) {
	n.Start()
	run := &Run{}
	for i := range external {
		js, err := n.StepOnce(external[i])
		if err != nil {
			return nil, err
		}
		run.Inputs = append(run.Inputs, js.Consumed)
		run.Outputs = append(run.Outputs, js.Outputs)
	}
	return run, nil
}

// NetState is the serializable inter-step state of a network run: per-node
// state instances plus the unit-delay buffer (last step's outputs). It is
// everything a restarted process needs to continue a run without replay —
// the network-session snapshot format.
type NetState struct {
	Steps  int                          `json:"steps"`
	States map[string]relation.Instance `json:"states"`
	// PrevOut is the delay buffer: what each node output on the last step,
	// due to be delivered over the wires on the next one.
	PrevOut map[string]relation.Instance `json:"prevOut,omitempty"`
}

// ExportState captures the run state after the last StepOnce. Instances
// are deep-copied: the export stays stable while the network keeps running.
func (n *Network) ExportState() *NetState {
	if !n.started {
		n.Start()
	}
	st := &NetState{Steps: n.steps, States: make(map[string]relation.Instance, len(n.order))}
	for _, name := range n.order {
		st.States[name] = n.nodes[name].state.Clone()
	}
	if len(n.prevOut) > 0 {
		st.PrevOut = make(map[string]relation.Instance, len(n.prevOut))
		for name, out := range n.prevOut {
			st.PrevOut[name] = out.Clone()
		}
	}
	return st
}

// RestoreState resumes a run from an exported state: the next StepOnce
// continues at st.Steps+1 with st's delay buffer on the wires. Unknown
// node names are rejected; nodes absent from st.States keep empty state.
func (n *Network) RestoreState(st *NetState) error {
	n.Start()
	for name := range st.States {
		if _, ok := n.nodes[name]; !ok {
			return fmt.Errorf("compose: restore: unknown node %s", name)
		}
	}
	for name := range st.PrevOut {
		if _, ok := n.nodes[name]; !ok {
			return fmt.Errorf("compose: restore: unknown node %s", name)
		}
	}
	for name, s := range st.States {
		n.nodes[name].state = s.Clone()
	}
	n.prevOut = StepInputs{}
	for name, out := range st.PrevOut {
		n.prevOut[name] = out.Clone()
	}
	n.steps = st.Steps
	return nil
}

// GoalCondition is a predicate over one step's output instance.
// *verify.Goal satisfies it; the indirection keeps compose free of a
// dependency on the verification layer (whose tests sit above the model
// registry, which in turn builds on compose).
type GoalCondition interface {
	Holds(output relation.Instance) bool
}

// Goal names a goal to achieve in a given node's output at the last step.
type Goal struct {
	Node string
	G    GoalCondition
}

// CompatibleResult is the outcome of the bounded compatibility search.
type CompatibleResult struct {
	Compatible bool
	// Witness is the external stimulus of a goal-achieving error-free run.
	Witness []StepInputs
	// Explored counts the candidate runs examined.
	Explored int
}

// Compatible searches for a joint error-free run of length ≤ maxLen that
// satisfies every goal at its final step, driving at most one external fact
// per step drawn from the given constant pool. This realizes (boundedly)
// the compatibility question of the paper's introduction: "there exists a
// run which achieves some desired goals while satisfying both business
// models". The search is exhaustive within its bounds, so a negative
// answer means no such run exists within them.
func (n *Network) Compatible(goals []Goal, pool []relation.Const, maxLen int) (*CompatibleResult, error) {
	for _, g := range goals {
		node, ok := n.nodes[g.Node]
		if !ok {
			return nil, fmt.Errorf("compose: unknown goal node %s", g.Node)
		}
		_ = node
	}
	ext := n.ExternalInputs()
	// Candidate single-fact stimuli (plus the empty stimulus).
	var candidates []StepInputs
	candidates = append(candidates, StepInputs{})
	var nodeNames []string
	for name := range ext {
		nodeNames = append(nodeNames, name)
	}
	sort.Strings(nodeNames)
	for _, name := range nodeNames {
		for _, d := range ext[name] {
			for _, tup := range allTuples(pool, d.Arity) {
				in := relation.NewInstance()
				in.Add(d.Name, tup)
				candidates = append(candidates, StepInputs{name: in})
			}
		}
	}
	res := &CompatibleResult{}
	var rec func(prefix []StepInputs) (bool, error)
	rec = func(prefix []StepInputs) (bool, error) {
		if len(prefix) > 0 {
			res.Explored++
			run, err := n.Execute(prefix)
			if err != nil {
				return false, err
			}
			if !run.ErrorFree() {
				return false, nil // prune: errors never disappear
			}
			achieved := true
			for _, g := range goals {
				out := run.Outputs[run.Len()-1][g.Node]
				if !g.G.Holds(out) {
					achieved = false
					break
				}
			}
			if achieved {
				res.Compatible = true
				res.Witness = prefix
				return true, nil
			}
		}
		if len(prefix) == maxLen {
			return false, nil
		}
		for _, c := range candidates {
			next := append(append([]StepInputs{}, prefix...), c)
			done, err := rec(next)
			if err != nil || done {
				return done, err
			}
		}
		return false, nil
	}
	_, err := rec(nil)
	if err != nil {
		return nil, err
	}
	return res, nil
}

func allTuples(pool []relation.Const, arity int) []relation.Tuple {
	if arity == 0 {
		return []relation.Tuple{{}}
	}
	sub := allTuples(pool, arity-1)
	var out []relation.Tuple
	for _, c := range pool {
		for _, t := range sub {
			nt := make(relation.Tuple, 0, arity)
			nt = append(nt, c)
			nt = append(nt, t...)
			out = append(out, nt)
		}
	}
	return out
}
