package compose

import (
	"encoding/json"
	"fmt"

	"repro/internal/core"
	"repro/internal/relation"
)

// Spec is the serializable description of a network: the form the open-
// session API, the WAL, snapshots, and scenario files all speak. Each node
// is a named transducer (a registry model name or an inline program) with
// an optional database; each wire routes one node's output relation into
// another node's input relation.
//
// Cycles — including self-wires — are legal: the unit-delay semantics makes
// feedback well-defined (a node never reads its own current-step output).
type Spec struct {
	Nodes []NodeSpec `json:"nodes"`
	Wires []WireSpec `json:"wires"`
}

// NodeSpec names one participant. Exactly one of Model (a registry name,
// resolved by the Resolver at build time) or Src (an inline transducer
// program) must be set. DB overrides the model's default database; for
// inline programs a nil DB means empty.
type NodeSpec struct {
	Name  string            `json:"name"`
	Model string            `json:"model,omitempty"`
	Src   string            `json:"src,omitempty"`
	DB    relation.Instance `json:"db,omitempty"`
}

// WireSpec is the serializable form of a Wire.
type WireSpec struct {
	From   string `json:"from"`
	Output string `json:"output"`
	To     string `json:"to"`
	Input  string `json:"input"`
}

// Resolver maps a registry model name to a fresh machine and its default
// database. internal/models supplies the canonical one; compose stays free
// of the registry dependency so specs can be built against any library.
type Resolver func(name string) (*core.Machine, relation.Instance, error)

// ParseSpec decodes and validates a JSON network spec. It is the parser
// the scenario fuzzer drives: any input either yields a buildable spec or
// a descriptive error, never a panic.
func ParseSpec(data []byte, resolve Resolver) (*Spec, *Network, error) {
	var s Spec
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, nil, fmt.Errorf("compose: spec: %w", err)
	}
	n, err := s.Build(resolve)
	if err != nil {
		return nil, nil, err
	}
	return &s, n, nil
}

// Build validates the spec and constructs its Network: node names must be
// unique and non-empty, each node must carry exactly one of model/src, the
// model must resolve (or the program parse), and every wire must connect
// declared relations of equal arity. The returned network is fresh — nodes
// get cloned databases, so concurrent sessions built from one spec never
// share state.
func (s *Spec) Build(resolve Resolver) (*Network, error) {
	if len(s.Nodes) == 0 {
		return nil, fmt.Errorf("compose: spec has no nodes")
	}
	n := New()
	for i, ns := range s.Nodes {
		if ns.Name == "" {
			return nil, fmt.Errorf("compose: node %d has no name", i)
		}
		if (ns.Model == "") == (ns.Src == "") {
			return nil, fmt.Errorf("compose: node %s: exactly one of model or src is required", ns.Name)
		}
		var m *core.Machine
		var db relation.Instance
		if ns.Model != "" {
			if resolve == nil {
				return nil, fmt.Errorf("compose: node %s names model %q but no resolver is available", ns.Name, ns.Model)
			}
			var err error
			if m, db, err = resolve(ns.Model); err != nil {
				return nil, fmt.Errorf("compose: node %s: %w", ns.Name, err)
			}
		} else {
			var err error
			if m, err = core.ParseProgram(ns.Src); err != nil {
				return nil, fmt.Errorf("compose: node %s: %w", ns.Name, err)
			}
			db = relation.NewInstance()
		}
		if ns.DB != nil {
			db = ns.DB
		}
		if db == nil {
			db = relation.NewInstance()
		}
		if err := n.AddNode(ns.Name, m, db.Clone()); err != nil {
			return nil, err
		}
	}
	for _, ws := range s.Wires {
		if err := n.Connect(ws.From, ws.Output, ws.To, ws.Input); err != nil {
			return nil, err
		}
	}
	return n, nil
}

// Clone deep-copies the spec (databases included), so a stored spec cannot
// alias a caller's instance.
func (s *Spec) Clone() *Spec {
	if s == nil {
		return nil
	}
	c := &Spec{Nodes: make([]NodeSpec, len(s.Nodes)), Wires: append([]WireSpec(nil), s.Wires...)}
	for i, ns := range s.Nodes {
		c.Nodes[i] = ns
		if ns.DB != nil {
			c.Nodes[i].DB = ns.DB.Clone()
		}
	}
	return c
}
