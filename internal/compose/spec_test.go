package compose

import (
	"encoding/json"
	"testing"

	"repro/internal/relation"
)

// marketSpec is buildMarket as a Spec: the supplier/prompt-customer pair
// wired into the Fig.1-style conversation.
func marketSpec() *Spec {
	db := relation.NewInstance()
	db.Add("price", relation.Tuple{"widget", "5"})
	return &Spec{
		Nodes: []NodeSpec{
			{Name: "supplier", Src: supplierSrc, DB: db},
			{Name: "customer", Src: promptCustomerFixed},
		},
		Wires: []WireSpec{
			{From: "customer", Output: "order", To: "supplier", Input: "order"},
			{From: "customer", Output: "pay", To: "supplier", Input: "pay"},
			{From: "supplier", Output: "invoice", To: "customer", Input: "invoice"},
			{From: "supplier", Output: "deliver", To: "customer", Input: "arrived"},
		},
	}
}

func wantWidget() StepInputs {
	in := relation.NewInstance()
	in.Add("want", relation.Tuple{"widget"})
	return StepInputs{"customer": in}
}

func TestSpecBuildAndRoundTrip(t *testing.T) {
	spec := marketSpec()
	data, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	spec2, n, err := ParseSpec(data, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(spec2.Nodes) != 2 || len(spec2.Wires) != 4 {
		t.Fatalf("round-tripped spec: %+v", spec2)
	}
	run, err := n.Execute([]StepInputs{wantWidget(), {}, {}, {}})
	if err != nil {
		t.Fatal(err)
	}
	if !run.Outputs[3]["supplier"].Has("deliver", relation.Tuple{"widget"}) {
		t.Errorf("spec-built network does not deliver: %s", run.Outputs[3]["supplier"])
	}
}

func TestSpecValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Spec)
	}{
		{"no nodes", func(s *Spec) { s.Nodes = nil }},
		{"unnamed node", func(s *Spec) { s.Nodes[0].Name = "" }},
		{"duplicate node", func(s *Spec) { s.Nodes[1].Name = s.Nodes[0].Name }},
		{"model and src", func(s *Spec) { s.Nodes[0].Model = "short" }},
		{"neither model nor src", func(s *Spec) { s.Nodes[0].Src = "" }},
		{"bad program", func(s *Spec) { s.Nodes[0].Src = "transducer broken\nschema" }},
		{"unknown wire node", func(s *Spec) { s.Wires[0].From = "ghost" }},
		{"unknown output", func(s *Spec) { s.Wires[0].Output = "nope" }},
		{"unknown input", func(s *Spec) { s.Wires[0].Input = "nope" }},
		{"arity mismatch", func(s *Spec) { s.Wires[0].Input = "pay" }},
		{"unresolved model", func(s *Spec) { s.Nodes[0].Src = ""; s.Nodes[0].Model = "short" }},
	}
	for _, tc := range cases {
		spec := marketSpec()
		tc.mut(spec)
		if _, err := spec.Build(nil); err == nil {
			t.Errorf("%s: Build accepted invalid spec", tc.name)
		}
	}
}

func TestSpecSelfWireIsLegal(t *testing.T) {
	// A self-loop is well-defined under unit delay: the node reads its own
	// previous-step output.
	spec := marketSpec()
	spec.Wires = append(spec.Wires, WireSpec{From: "customer", Output: "order", To: "customer", Input: "want"})
	n, err := spec.Build(nil)
	if err != nil {
		t.Fatalf("self-wire rejected: %v", err)
	}
	if _, err := n.Execute([]StepInputs{wantWidget(), {}, {}}); err != nil {
		t.Fatal(err)
	}
}

// TestStepOnceMatchesExecute: stepping one at a time is the same run as
// Execute, and the JointStep records consumed/wire traffic consistently.
func TestStepOnceMatchesExecute(t *testing.T) {
	spec := marketSpec()
	n1, err := spec.Build(nil)
	if err != nil {
		t.Fatal(err)
	}
	n2, err := spec.Build(nil)
	if err != nil {
		t.Fatal(err)
	}
	ext := []StepInputs{wantWidget(), {}, {}, {}}
	run, err := n1.Execute(ext)
	if err != nil {
		t.Fatal(err)
	}
	n2.Start()
	for i := range ext {
		js, err := n2.StepOnce(ext[i])
		if err != nil {
			t.Fatal(err)
		}
		if js.Seq != i+1 {
			t.Fatalf("step %d: seq %d", i+1, js.Seq)
		}
		for _, node := range n2.Nodes() {
			if !js.Outputs[node].Equal(run.Outputs[i][node]) {
				t.Errorf("step %d node %s: StepOnce output %s, Execute %s", i+1, node, js.Outputs[node], run.Outputs[i][node])
			}
			if !js.Consumed[node].Equal(run.Inputs[i][node]) {
				t.Errorf("step %d node %s: consumed differs", i+1, node)
			}
		}
		// Every wire delta must be reflected in the destination's consumed
		// input relation.
		for _, wd := range js.Wire {
			for _, tup := range wd.Facts {
				if !js.Consumed[wd.To].Has(wd.Input, tup) {
					t.Errorf("step %d: wire fact %s%s not consumed by %s", i+1, wd.Input, tup, wd.To)
				}
			}
		}
	}
}

// TestExportRestoreState: a run split across an export/restore boundary is
// identical to an uninterrupted one.
func TestExportRestoreState(t *testing.T) {
	spec := marketSpec()
	whole, err := spec.Build(nil)
	if err != nil {
		t.Fatal(err)
	}
	split, err := spec.Build(nil)
	if err != nil {
		t.Fatal(err)
	}
	ext := []StepInputs{wantWidget(), {}, {}, {}}
	ref, err := whole.Execute(ext)
	if err != nil {
		t.Fatal(err)
	}

	split.Start()
	for _, e := range ext[:2] {
		if _, err := split.StepOnce(e); err != nil {
			t.Fatal(err)
		}
	}
	st := split.ExportState()
	if st.Steps != 2 {
		t.Fatalf("exported %d steps, want 2", st.Steps)
	}
	// Round-trip through JSON, the way a snapshot would.
	data, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	var st2 NetState
	if err := json.Unmarshal(data, &st2); err != nil {
		t.Fatal(err)
	}
	resumed, err := spec.Build(nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := resumed.RestoreState(&st2); err != nil {
		t.Fatal(err)
	}
	for i := 2; i < len(ext); i++ {
		js, err := resumed.StepOnce(ext[i])
		if err != nil {
			t.Fatal(err)
		}
		if js.Seq != i+1 {
			t.Fatalf("resumed seq %d, want %d", js.Seq, i+1)
		}
		for _, node := range resumed.Nodes() {
			if !js.Outputs[node].Equal(ref.Outputs[i][node]) {
				t.Errorf("resumed step %d node %s: %s, want %s", i+1, node, js.Outputs[node], ref.Outputs[i][node])
			}
		}
	}

	if err := resumed.RestoreState(&NetState{States: map[string]relation.Instance{"ghost": relation.NewInstance()}}); err == nil {
		t.Error("restore accepted unknown node")
	}
}
