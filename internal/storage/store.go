package storage

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// File layout inside a store directory:
//
//	MANIFEST            JSON {"version":1,"snapshot":"snap-…","segstart":N}
//	seg-0000000000.wal  WAL segments, replayed in sequence order
//	snap-0000000004.snap  the committed snapshot (at most one survives)
//
// The manifest is the commit point: it names the snapshot (if any) and the
// first segment whose records post-date it. A snapshot and the segment
// created alongside it share a sequence number S — the snapshot covers
// exactly the records of segments < S. If the manifest is missing it is
// reconstructed from the directory: the highest completely-renamed
// snapshot wins, because snapshot rename always precedes the manifest
// flip and post-snapshot records only ever land in segments >= its
// sequence number.
const manifestName = "MANIFEST"

type manifest struct {
	Version  int    `json:"version"`
	Snapshot string `json:"snapshot,omitempty"`
	SegStart int    `json:"segstart"`
	// Base is the LSN covered by the snapshot: records 1..Base are folded
	// into it and no longer exist as WAL frames. The first live WAL record
	// has LSN Base+1. Reconstructing a lost manifest resets Base to zero,
	// which breaks LSN continuity for any replication follower — see the
	// warning on Open.
	Base int64 `json:"base,omitempty"`
}

func segName(seq int) string  { return fmt.Sprintf("seg-%010d.wal", seq) }
func snapName(seq int) string { return fmt.Sprintf("snap-%010d.snap", seq) }

func parseSeq(name, prefix, suffix string) (int, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	n, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, prefix), suffix))
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// Store owns one directory of segments, snapshots, and their manifest.
// It is single-owner: after Open and Recover, exactly one goroutine may
// call Append/Commit/Sync/BeginSnapshot/Close.
type Store struct {
	dir  string
	opts Options
	man  manifest

	active     *os.File
	activeSeq  int
	activeSize int64

	dirty    bool
	lastSync time.Time
	appends  int64
	syncs    int64

	// lsn is the log sequence number of the last appended record, counted
	// over the store's whole history (snapshot-covered records included):
	// record k ever appended has LSN k, so lsn = man.Base + live records.
	lsn int64
	// segFirst maps each live segment's sequence number to the LSN its
	// first record has (or will have, for a still-empty segment).
	segFirst map[int]int64

	// repl is the replication view: the only part of a Store that may be
	// read concurrently by goroutines other than the owner (see repl.go).
	repl replView

	// retain is the replication slot: the highest LSN a follower has acked,
	// set from any goroutine via SetRetain. Snapshot compaction keeps WAL
	// segments holding records beyond it (bounded by maxRetainSegments) so
	// a live stream is not forced into a snapshot reset every time the
	// primary compacts. <= 0 means no follower: compact everything.
	retain atomic.Int64
}

// SetRetain records the replication slot position: WAL records with LSN
// > lsn are still needed by a follower and survive snapshot compaction
// while the slot is within maxRetainSegments of the head. Monotonic;
// thread-safe.
func (s *Store) SetRetain(lsn int64) {
	for {
		old := s.retain.Load()
		if lsn <= old || s.retain.CompareAndSwap(old, lsn) {
			return
		}
	}
}

// Open prepares dir (creating it if needed), loads or reconstructs the
// manifest, and removes leftovers from interrupted snapshots: temp files,
// snapshots the manifest does not name, and segments older than the
// manifest's segment start. It does not read any records — call Recover.
func Open(dir string, opts Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	s := &Store{dir: dir, opts: opts.withDefaults(), lastSync: time.Now(), segFirst: make(map[int]int64)}
	s.repl.notify = make(chan struct{})

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".tmp") {
			os.Remove(filepath.Join(dir, e.Name()))
		}
	}

	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	switch {
	case err == nil:
		if err := json.Unmarshal(data, &s.man); err != nil {
			return nil, fmt.Errorf("storage: manifest corrupt in %s: %w", dir, err)
		}
		if s.man.Version != 1 {
			return nil, fmt.Errorf("storage: manifest version %d unsupported in %s", s.man.Version, dir)
		}
	case os.IsNotExist(err):
		// Reconstruct: the newest fully-renamed snapshot is authoritative
		// (see the layout comment above for why this is always safe).
		best := -1
		for _, e := range entries {
			if seq, ok := parseSeq(e.Name(), "snap-", ".snap"); ok && seq > best {
				best = seq
			}
		}
		s.man = manifest{Version: 1}
		if best >= 0 {
			s.man.Snapshot = snapName(best)
			s.man.SegStart = best
		}
		if err := s.commitManifest(s.man); err != nil {
			return nil, err
		}
	default:
		return nil, err
	}

	for _, e := range entries {
		if seq, ok := parseSeq(e.Name(), "snap-", ".snap"); ok && e.Name() != s.man.Snapshot {
			_ = seq
			os.Remove(filepath.Join(dir, e.Name()))
		}
		if seq, ok := parseSeq(e.Name(), "seg-", ".wal"); ok && seq < s.man.SegStart {
			os.Remove(filepath.Join(dir, e.Name()))
		}
	}
	return s, nil
}

// Recover streams the committed snapshot (one onSnap call per record),
// then replays every live segment in sequence order (one onWAL call per
// record), truncating torn tails in place. A segment left empty by
// truncation is deleted unless it is the last one. Recovery finishes by
// opening a fresh active segment after the highest recovered one — sealed
// segments are never appended to again — and returns the number of WAL
// records replayed.
//
// Snapshot corruption is an error (the file was renamed into place only
// after a successful sync, so a short or mis-checksummed snapshot means
// real damage); WAL tails are expected to tear under crashes and are
// silently truncated, exactly like the single-file WAL before it.
func (s *Store) Recover(onSnap, onWAL func(payload []byte) error) (int, error) {
	if s.man.Snapshot != "" {
		data, err := os.ReadFile(filepath.Join(s.dir, s.man.Snapshot))
		if err != nil {
			return 0, fmt.Errorf("storage: read snapshot: %w", err)
		}
		_, off, err := readFrames(data, onSnap)
		if err != nil {
			return 0, err
		}
		if off != len(data) {
			return 0, fmt.Errorf("storage: snapshot %s corrupt at offset %d", s.man.Snapshot, off)
		}
	}

	segs, err := s.listSegments()
	if err != nil {
		return 0, err
	}
	s.lsn = s.man.Base
	replayed := 0
	for i, seq := range segs {
		path := filepath.Join(s.dir, segName(seq))
		data, err := os.ReadFile(path)
		if err != nil {
			return replayed, err
		}
		s.segFirst[seq] = s.lsn + 1
		n, off, err := readFrames(data, onWAL)
		replayed += n
		s.lsn += int64(n)
		if err != nil {
			return replayed, err
		}
		if off < len(data) {
			if err := os.Truncate(path, int64(off)); err != nil {
				return replayed, err
			}
		}
		if off == 0 && i < len(segs)-1 {
			delete(s.segFirst, seq)
			if err := os.Remove(path); err != nil {
				return replayed, err
			}
		}
	}

	next := s.man.SegStart
	if len(segs) > 0 {
		next = segs[len(segs)-1] + 1
	}
	if err := s.openActive(next); err != nil {
		return replayed, err
	}
	s.publish()
	return replayed, nil
}

func (s *Store) listSegments() ([]int, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	var segs []int
	for _, e := range entries {
		if seq, ok := parseSeq(e.Name(), "seg-", ".wal"); ok && seq >= s.man.SegStart {
			segs = append(segs, seq)
		}
	}
	sort.Ints(segs)
	return segs, nil
}

func (s *Store) openActive(seq int) error {
	f, err := os.OpenFile(filepath.Join(s.dir, segName(seq)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return err
	}
	s.active, s.activeSeq, s.activeSize = f, seq, info.Size()
	s.segFirst[seq] = s.lsn + 1
	return syncDir(s.dir)
}

// Append frames payload into the active segment, rotating first if the
// segment is over the size threshold. It never syncs — durability is the
// caller's to request via Commit, which is what lets a shard batch many
// appends into one fsync. Returns the number of bytes written.
func (s *Store) Append(payload []byte) (int, error) {
	if s.active == nil {
		return 0, fmt.Errorf("storage: store is closed")
	}
	if s.activeSize >= s.opts.SegmentBytes {
		if err := s.rotate(); err != nil {
			return 0, err
		}
	}
	buf := frame(payload)
	if _, err := s.active.Write(buf); err != nil {
		return 0, err
	}
	s.activeSize += int64(len(buf))
	s.appends++
	s.lsn++
	s.dirty = true
	return len(buf), nil
}

// AlignAppend surfaces the segment identity of the next Append: it rotates
// first if the active segment is over the size threshold (exactly as Append
// itself would) and returns the sequence number of the segment the next
// record will land in. A caller keeping per-segment encoder state calls
// this before encoding, so a record is never encoded against one segment's
// intern table and framed into another.
func (s *Store) AlignAppend() (int, error) {
	if s.active == nil {
		return 0, fmt.Errorf("storage: store is closed")
	}
	if s.activeSize >= s.opts.SegmentBytes {
		if err := s.rotate(); err != nil {
			return 0, err
		}
	}
	return s.activeSeq, nil
}

// rotate seals the active segment (sync + close, so sealed segments can
// never tear) and opens the next one.
func (s *Store) rotate() error {
	if err := s.active.Sync(); err != nil {
		return err
	}
	s.dirty = false
	if err := s.active.Close(); err != nil {
		return err
	}
	return s.openActive(s.activeSeq + 1)
}

// Commit makes the records appended since the last sync durable according
// to the store's fsync policy, reporting whether an fsync actually ran.
// Under FsyncAlways this is the group-commit point: however many appends
// preceded it share the one sync. Commit is also the ack point, so it
// publishes the appended records to the replication view regardless of
// whether this particular call synced: a record is streamable exactly when
// it is ackable, which makes a follower never more durable-looking than
// the primary's own ack contract.
func (s *Store) Commit() (bool, error) {
	if !s.dirty {
		return false, nil
	}
	defer s.publish()
	switch s.opts.Fsync {
	case FsyncAlways:
		return true, s.Sync()
	case FsyncInterval:
		if time.Since(s.lastSync) >= s.opts.FsyncInterval {
			return true, s.Sync()
		}
	}
	return false, nil
}

// Sync unconditionally flushes the active segment if it has unsynced
// appends, regardless of policy.
func (s *Store) Sync() error {
	if !s.dirty || s.active == nil {
		return nil
	}
	if err := s.active.Sync(); err != nil {
		return err
	}
	s.dirty = false
	s.lastSync = time.Now()
	s.syncs++
	s.publish()
	return nil
}

// Dirty reports whether appends are awaiting a sync.
func (s *Store) Dirty() bool { return s.dirty }

// Appends returns the number of records appended over the store's
// lifetime (not persisted; resets on Open).
func (s *Store) Appends() int64 { return s.appends }

// Syncs returns the number of fsyncs issued on the active segment.
func (s *Store) Syncs() int64 { return s.syncs }

// Segments returns the number of live WAL segments including the active
// one.
func (s *Store) Segments() int {
	if s.active == nil {
		return 0
	}
	return s.activeSeq - s.man.SegStart + 1
}

// Close syncs and closes the active segment. Best-effort durability on
// graceful shutdown regardless of policy.
func (s *Store) Close() error {
	if s.active == nil {
		return nil
	}
	err := s.Sync()
	if cerr := s.active.Close(); err == nil {
		err = cerr
	}
	s.active = nil
	return err
}

func (s *Store) commitManifest(m manifest) error {
	data, err := json.Marshal(m)
	if err != nil {
		return err
	}
	tmp := filepath.Join(s.dir, manifestName+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, manifestName)); err != nil {
		return err
	}
	if err := syncDir(s.dir); err != nil {
		return err
	}
	s.man = m
	return nil
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	// Directory fsync is advisory on some filesystems; a failure there
	// does not invalidate already-synced file contents.
	_ = d.Sync()
	return nil
}
