package storage

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// openStore opens a store with small segments so rotation is easy to hit.
func openStore(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s
}

// recoverAll replays a directory and returns the snapshot records and WAL
// records as strings.
func recoverAll(t *testing.T, dir string, opts Options) (*Store, []string, []string) {
	t.Helper()
	s := openStore(t, dir, opts)
	var snaps, wals []string
	n, err := s.Recover(
		func(p []byte) error { snaps = append(snaps, string(p)); return nil },
		func(p []byte) error { wals = append(wals, string(p)); return nil },
	)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if n != len(wals) {
		t.Fatalf("Recover reported %d records, callback saw %d", n, len(wals))
	}
	return s, snaps, wals
}

func appendAll(t *testing.T, s *Store, recs ...string) {
	t.Helper()
	for _, r := range recs {
		if _, err := s.Append([]byte(r)); err != nil {
			t.Fatalf("Append(%q): %v", r, err)
		}
	}
	if _, err := s.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, Options{Fsync: FsyncAlways})
	if _, _, err := mustRecoverEmpty(s); err != nil {
		t.Fatal(err)
	}
	appendAll(t, s, "r1", "r2", "r3")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	_, snaps, wals := recoverAll(t, dir, Options{})
	if len(snaps) != 0 {
		t.Fatalf("unexpected snapshot records: %v", snaps)
	}
	if got := fmt.Sprint(wals); got != "[r1 r2 r3]" {
		t.Fatalf("replayed %v", wals)
	}
}

func mustRecoverEmpty(s *Store) (int, int, error) {
	n, err := s.Recover(
		func([]byte) error { return fmt.Errorf("unexpected snapshot record") },
		func([]byte) error { return fmt.Errorf("unexpected wal record") },
	)
	return n, 0, err
}

func TestRotationSpansSegments(t *testing.T) {
	dir := t.TempDir()
	// Tiny threshold: every record after the first in a segment triggers
	// rotation, so 10 records spread over several segments.
	s := openStore(t, dir, Options{Fsync: FsyncNever, SegmentBytes: 16})
	if _, _, err := mustRecoverEmpty(s); err != nil {
		t.Fatal(err)
	}
	var want []string
	for i := 0; i < 10; i++ {
		r := fmt.Sprintf("record-%02d", i)
		want = append(want, r)
		appendAll(t, s, r)
	}
	if s.Segments() < 3 {
		t.Fatalf("expected several segments, got %d", s.Segments())
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	_, _, wals := recoverAll(t, dir, Options{})
	if fmt.Sprint(wals) != fmt.Sprint(want) {
		t.Fatalf("replayed %v, want %v", wals, want)
	}
}

func TestTornTailFinalSegment(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, Options{Fsync: FsyncNever})
	if _, _, err := mustRecoverEmpty(s); err != nil {
		t.Fatal(err)
	}
	appendAll(t, s, "keep-1", "keep-2", "torn")
	s.Close()

	chopTail(t, filepath.Join(dir, segName(0)), 3)

	s2, _, wals := recoverAll(t, dir, Options{})
	if fmt.Sprint(wals) != "[keep-1 keep-2]" {
		t.Fatalf("replayed %v", wals)
	}
	// The store must keep accepting appends after truncation, into a
	// fresh segment (sealed segments are never appended to again).
	appendAll(t, s2, "after-crash")
	s2.Close()

	_, _, wals = recoverAll(t, dir, Options{})
	if fmt.Sprint(wals) != "[keep-1 keep-2 after-crash]" {
		t.Fatalf("after re-append, replayed %v", wals)
	}
}

func TestTornTailNonFinalSegment(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, Options{Fsync: FsyncNever, SegmentBytes: 1})
	if _, _, err := mustRecoverEmpty(s); err != nil {
		t.Fatal(err)
	}
	// SegmentBytes=1 rotates before every append after the first, so each
	// record lands in its own segment; then an empty active segment is
	// created by a clean recover, making seg-2 non-final.
	appendAll(t, s, "seg0-rec", "seg1-rec", "seg2-torn")
	s.Close()
	s2, _, _ := recoverAll(t, dir, Options{}) // creates empty active seg-3
	s2.Close()

	chopTail(t, filepath.Join(dir, segName(2)), 2)

	_, _, wals := recoverAll(t, dir, Options{})
	if fmt.Sprint(wals) != "[seg0-rec seg1-rec]" {
		t.Fatalf("replayed %v", wals)
	}
	// The torn segment was truncated to empty and removed; no stale bytes
	// can resurface on later recoveries.
	if _, err := os.Stat(filepath.Join(dir, segName(2))); !os.IsNotExist(err) {
		t.Fatalf("expected emptied non-final segment to be deleted, stat err=%v", err)
	}
}

func TestCorruptPayloadStopsReplay(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, Options{Fsync: FsyncNever})
	if _, _, err := mustRecoverEmpty(s); err != nil {
		t.Fatal(err)
	}
	appendAll(t, s, "good", "flipped", "unreachable")
	s.Close()

	// Flip one payload byte of the middle record: its CRC no longer
	// matches, so replay stops there and truncates — the following record
	// is gone too (framing cannot be trusted past a bad CRC).
	path := filepath.Join(dir, segName(0))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	off := frameHeader + len("good") + frameHeader // first payload byte of "flipped"
	data[off] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	_, _, wals := recoverAll(t, dir, Options{})
	if fmt.Sprint(wals) != "[good]" {
		t.Fatalf("replayed %v", wals)
	}
}

func TestMissingManifestReconstruction(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, Options{Fsync: FsyncNever, SegmentBytes: 1})
	if _, _, err := mustRecoverEmpty(s); err != nil {
		t.Fatal(err)
	}
	appendAll(t, s, "pre-snap-1", "pre-snap-2")
	takeSnapshot(t, s, "snapped-1", "snapped-2")
	appendAll(t, s, "post-snap")
	s.Close()

	if err := os.Remove(filepath.Join(dir, manifestName)); err != nil {
		t.Fatal(err)
	}

	_, snaps, wals := recoverAll(t, dir, Options{})
	if fmt.Sprint(snaps) != "[snapped-1 snapped-2]" {
		t.Fatalf("snapshot records %v", snaps)
	}
	if fmt.Sprint(wals) != "[post-snap]" {
		t.Fatalf("wal records %v", wals)
	}
}

func TestSnapshotBetweenSegments(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, Options{Fsync: FsyncNever, SegmentBytes: 1})
	if _, _, err := mustRecoverEmpty(s); err != nil {
		t.Fatal(err)
	}
	// Records spread over segments 0..2; snapshot commits at seq 3; more
	// records land in segments >= 3.
	appendAll(t, s, "a", "b", "c")
	if s.Segments() != 3 {
		t.Fatalf("precondition: want 3 segments, got %d", s.Segments())
	}
	takeSnapshot(t, s, "state-abc")
	if s.Segments() != 1 {
		t.Fatalf("snapshot should retire old segments, got %d live", s.Segments())
	}
	appendAll(t, s, "d", "e")
	s.Close()

	// Old segments are gone from disk, not just uncounted.
	for seq := 0; seq < 3; seq++ {
		if _, err := os.Stat(filepath.Join(dir, segName(seq))); !os.IsNotExist(err) {
			t.Fatalf("segment %d should be deleted, stat err=%v", seq, err)
		}
	}

	_, snaps, wals := recoverAll(t, dir, Options{})
	if fmt.Sprint(snaps) != "[state-abc]" {
		t.Fatalf("snapshot records %v", snaps)
	}
	if fmt.Sprint(wals) != "[d e]" {
		t.Fatalf("wal records %v", wals)
	}
}

// A crash after the snapshot file renames but before the manifest flips
// must recover from the OLD snapshot and segments: the orphan snapshot is
// swept, and stale pre-snapshot segments replay as before.
func TestCrashBetweenSnapshotRenameAndManifest(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, Options{Fsync: FsyncNever, SegmentBytes: 1})
	if _, _, err := mustRecoverEmpty(s); err != nil {
		t.Fatal(err)
	}
	appendAll(t, s, "a", "b")
	s.Close()

	// Simulate the torn commit: a fully-written snapshot file appears at
	// the next sequence number, but the manifest still points at nothing.
	sw := fakeSnapshotFile(t, dir, 2, "half-committed")
	_ = sw

	_, snaps, wals := recoverAll(t, dir, Options{})
	if len(snaps) != 0 {
		t.Fatalf("orphan snapshot must not be read, got %v", snaps)
	}
	if fmt.Sprint(wals) != "[a b]" {
		t.Fatalf("wal records %v", wals)
	}
	if _, err := os.Stat(filepath.Join(dir, snapName(2))); !os.IsNotExist(err) {
		t.Fatalf("orphan snapshot should be swept, stat err=%v", err)
	}
}

func TestGroupCommitSharesSync(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, Options{Fsync: FsyncAlways})
	if _, _, err := mustRecoverEmpty(s); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if _, err := s.Append([]byte(fmt.Sprintf("r%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	synced, err := s.Commit()
	if err != nil || !synced {
		t.Fatalf("Commit = %v, %v; want synced", synced, err)
	}
	if s.Syncs() != 1 {
		t.Fatalf("8 appends + 1 commit should cost exactly 1 sync, got %d", s.Syncs())
	}
	// A commit with nothing pending is free.
	if synced, err := s.Commit(); err != nil || synced {
		t.Fatalf("idle Commit = %v, %v; want no-op", synced, err)
	}
	s.Close()
}

func TestFsyncPolicies(t *testing.T) {
	for _, tc := range []struct {
		in      string
		want    FsyncPolicy
		wantErr bool
	}{
		{"", FsyncAlways, false},
		{"always", FsyncAlways, false},
		{"interval", FsyncInterval, false},
		{"never", FsyncNever, false},
		{"sometimes", FsyncAlways, true},
	} {
		got, err := ParseFsyncPolicy(tc.in)
		if (err != nil) != tc.wantErr || (err == nil && got != tc.want) {
			t.Errorf("ParseFsyncPolicy(%q) = %v, %v", tc.in, got, err)
		}
	}
	if FsyncInterval.String() != "interval" || FsyncNever.String() != "never" || FsyncAlways.String() != "always" {
		t.Error("String round-trip broken")
	}

	// Never: Commit must not sync. Interval: Commit syncs only once the
	// interval elapses.
	dir := t.TempDir()
	s := openStore(t, dir, Options{Fsync: FsyncNever})
	if _, _, err := mustRecoverEmpty(s); err != nil {
		t.Fatal(err)
	}
	s.Append([]byte("x"))
	if synced, _ := s.Commit(); synced {
		t.Error("FsyncNever Commit synced")
	}
	s.Close()

	s2 := openStore(t, t.TempDir(), Options{Fsync: FsyncInterval, FsyncInterval: 10 * time.Millisecond})
	if _, _, err := mustRecoverEmpty(s2); err != nil {
		t.Fatal(err)
	}
	s2.Append([]byte("x"))
	s2.lastSync = time.Now() // pretend a sync just happened
	if synced, _ := s2.Commit(); synced {
		t.Error("FsyncInterval Commit synced before interval elapsed")
	}
	s2.lastSync = time.Now().Add(-time.Second)
	if synced, _ := s2.Commit(); !synced {
		t.Error("FsyncInterval Commit did not sync after interval elapsed")
	}
	s2.Close()
}

func TestSnapshotAbortLeavesStoreIntact(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, Options{Fsync: FsyncNever})
	if _, _, err := mustRecoverEmpty(s); err != nil {
		t.Fatal(err)
	}
	appendAll(t, s, "a", "b")
	sw, err := s.BeginSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	sw.Append([]byte("half"))
	sw.Abort()
	appendAll(t, s, "c")
	s.Close()

	_, snaps, wals := recoverAll(t, dir, Options{})
	if len(snaps) != 0 || fmt.Sprint(wals) != "[a b c]" {
		t.Fatalf("snaps=%v wals=%v", snaps, wals)
	}
}

// chopTail removes the last n bytes of a file, simulating a torn write.
func chopTail(t *testing.T, path string, n int64) {
	t.Helper()
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, info.Size()-n); err != nil {
		t.Fatal(err)
	}
}

func takeSnapshot(t *testing.T, s *Store, recs ...string) {
	t.Helper()
	sw, err := s.BeginSnapshot()
	if err != nil {
		t.Fatalf("BeginSnapshot: %v", err)
	}
	for _, r := range recs {
		if err := sw.Append([]byte(r)); err != nil {
			t.Fatalf("snapshot Append: %v", err)
		}
	}
	if err := sw.Commit(); err != nil {
		t.Fatalf("snapshot Commit: %v", err)
	}
}

// fakeSnapshotFile writes a complete, well-framed snapshot file directly,
// bypassing the manifest — the on-disk state of a crash between rename
// and manifest flip.
func fakeSnapshotFile(t *testing.T, dir string, seq int, recs ...string) string {
	t.Helper()
	var buf []byte
	for _, r := range recs {
		buf = append(buf, frame([]byte(r))...)
	}
	path := filepath.Join(dir, snapName(seq))
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}
