package storage

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// Replication view: the one corner of a Store that is safe to read from
// goroutines other than the owning shard loop. The owner publishes an
// immutable view (committed LSN, snapshot base, live-segment index) at
// every ack point — Commit, Sync, snapshot commit, recovery — and readers
// work only against that view plus the segment files themselves, which is
// safe because sealed segments are immutable and the active segment's
// bytes up to the committed LSN were fully written before the publish.
// A segment deleted by a concurrent snapshot surfaces as ErrCompacted and
// the reader restarts from the snapshot.

// ErrCompacted reports that the requested LSN range has been folded into
// a snapshot and no longer exists as WAL frames; the caller must restart
// from the snapshot (SnapshotRecords) and resume at base+1.
var ErrCompacted = errors.New("storage: requested LSN compacted into snapshot")

// ReplState is a point-in-time summary of the replication view.
type ReplState struct {
	// Base is the LSN covered by the committed snapshot (0: none).
	Base int64 `json:"base"`
	// Committed is the highest LSN published at an ack point: every record
	// with LSN <= Committed may be streamed to a follower.
	Committed int64 `json:"committed"`
	// Snapshot reports whether a committed snapshot exists.
	Snapshot bool `json:"snapshot"`
}

// ReplRecord is one streamed WAL record: its LSN plus the exact payload
// bytes that were framed into the segment. Rec carries the decoded form
// when the store has a StreamDecoder (see Options.NewStreamDecoder); it is
// process-local and never serialized. Bin is filled by wire layers that
// transcode the record into a stream-scoped binary encoding for the
// follower (segment-scoped payload bytes cannot be shipped raw: their
// intern references are meaningless outside their segment).
type ReplRecord struct {
	LSN     int64           `json:"lsn"`
	Payload json.RawMessage `json:"rec,omitempty"`
	Bin     []byte          `json:"bin,omitempty"`
	Rec     any             `json:"-"`
}

type segRange struct {
	seq   int
	first int64 // LSN of the segment's first record
}

// replCursor remembers where the previous ReadCommitted left off, so a
// follower advancing through the feed costs O(batch) per poll instead of
// re-parsing its segment from the first frame — the stream long-poll wakes
// on every group commit, which makes the naive scan O(segment) per commit.
// The mapping from an LSN to its frame offset never changes once written
// (sealed segments are immutable, the active one is append-only), so a
// cursor can only be stale in the harmless sense of not matching the
// requested position, in which case the read falls back to a full scan.
type replCursor struct {
	from   int64 // LSN the next sequential read will ask for
	seq    int   // segment holding that LSN
	offset int   // byte offset of that LSN's frame within the segment
	// dec is the stream decoder positioned exactly at (seq, offset). Reads
	// steal it under the view lock (leaving nil) and write it back with the
	// new cursor, so two concurrent reads can never share one decoder — the
	// loser simply rescans its segment with a fresh one.
	dec StreamDecoder
}

type replView struct {
	mu        sync.Mutex
	committed int64
	base      int64
	snapshot  string
	segs      []segRange // sorted by first
	cursor    replCursor
	notify    chan struct{}
}

// publish snapshots the owner's LSN state into the replication view and
// wakes every WaitCommitted blocked on it. Owner-only.
func (s *Store) publish() {
	v := &s.repl
	segs := make([]segRange, 0, len(s.segFirst))
	for seq, first := range s.segFirst {
		segs = append(segs, segRange{seq: seq, first: first})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].first < segs[j].first })
	v.mu.Lock()
	v.committed = s.lsn
	v.base = s.man.Base
	v.snapshot = s.man.Snapshot
	v.segs = segs
	close(v.notify)
	v.notify = make(chan struct{})
	v.mu.Unlock()
}

// ReplState returns the current replication view summary. Thread-safe.
func (s *Store) ReplState() ReplState {
	v := &s.repl
	v.mu.Lock()
	defer v.mu.Unlock()
	return ReplState{Base: v.base, Committed: v.committed, Snapshot: v.snapshot != ""}
}

// WaitCommitted blocks until the committed LSN exceeds after or the
// context is done, returning the committed LSN it observed last.
// Thread-safe; the long-poll primitive behind the stream feed.
func (s *Store) WaitCommitted(ctx context.Context, after int64) int64 {
	v := &s.repl
	for {
		v.mu.Lock()
		c, ch := v.committed, v.notify
		v.mu.Unlock()
		if c > after {
			return c
		}
		select {
		case <-ch:
		case <-ctx.Done():
			return c
		}
	}
}

// ReadCommitted returns committed records with LSN >= from, bounded by
// maxRecords and (softly — at least one record is always returned when
// available) maxBytes, along with the base and committed LSNs of the view
// it read. from <= base means the range was compacted: the caller must
// bootstrap from the snapshot instead. Thread-safe.
func (s *Store) ReadCommitted(from int64, maxRecords, maxBytes int) ([]ReplRecord, ReplState, error) {
	v := &s.repl
	v.mu.Lock()
	st := ReplState{Base: v.base, Committed: v.committed, Snapshot: v.snapshot != ""}
	segs := v.segs
	cur := v.cursor
	v.cursor.dec = nil // steal the decoder; see replCursor
	v.mu.Unlock()

	if from > st.Committed {
		return nil, st, nil
	}
	// Start at the last segment whose first LSN is <= from. A from below
	// every live segment's range — even one below Base — is compacted only
	// when its frames are actually gone: the replication slot retains
	// pre-snapshot segments a follower still needs, and those serve reads
	// below the snapshot base.
	i := sort.Search(len(segs), func(k int) bool { return segs[k].first > from }) - 1
	if i < 0 {
		return nil, st, ErrCompacted
	}
	resume := cur.from == from && cur.seq == segs[i].seq
	dec := cur.dec
	if s.opts.NewStreamDecoder != nil {
		// A decoder is positional: resuming mid-segment is only sound with
		// the decoder that scanned the prefix. If another read stole it,
		// rescan the segment so a fresh decoder learns the intern table from
		// the segment boundary (where the table always restarts).
		if resume && dec == nil {
			resume = false
		}
		if !resume {
			dec = s.opts.NewStreamDecoder()
		}
	} else {
		dec = nil
	}
	lsn, startOff := segs[i].first-1, 0
	if resume {
		// Sequential poll: resume at the cached frame offset instead of
		// parsing the segment's whole prefix again.
		lsn, startOff = from-1, cur.offset
	}
	var out []ReplRecord
	bytes := 0
	endSeq, endOff := -1, 0
	for ; i < len(segs); i++ {
		data, err := os.ReadFile(filepath.Join(s.dir, segName(segs[i].seq)))
		if err != nil {
			if os.IsNotExist(err) {
				// Deleted by a concurrent snapshot commit after the view was
				// copied; the records live in the new snapshot now.
				return nil, st, ErrCompacted
			}
			return nil, st, err
		}
		off := startOff
		startOff = 0
		full := false // batch bounds hit: this segment may hold more
		for off+frameHeader <= len(data) {
			if lsn+1 > st.Committed || len(out) >= maxRecords {
				full = true
				break
			}
			length := int(binary.BigEndian.Uint32(data[off : off+4]))
			if off+frameHeader+length > len(data) {
				break // torn tail past the commit point
			}
			p := data[off+frameHeader : off+frameHeader+length]
			if crc32.ChecksumIEEE(p) != binary.BigEndian.Uint32(data[off+4:off+8]) {
				break
			}
			if lsn+1 >= from && bytes > 0 && bytes+len(p) > maxBytes {
				full = true
				break
			}
			lsn++
			var rec any
			if dec != nil {
				// Decode every scanned frame, pre-from ones included: their
				// intern definitions are what make later frames decodable.
				var derr error
				if rec, derr = dec.Decode(p); derr != nil {
					return nil, st, fmt.Errorf("storage: decode record at lsn %d: %w", lsn, derr)
				}
			}
			if lsn >= from {
				out = append(out, ReplRecord{LSN: lsn, Payload: append([]byte(nil), p...), Rec: rec})
				bytes += len(p)
			}
			off += frameHeader + length
		}
		endSeq, endOff = segs[i].seq, off
		if full {
			break
		}
		if i+1 < len(segs) {
			lsn = segs[i+1].first - 1
		}
	}
	if len(out) > 0 && endSeq >= 0 {
		next := out[len(out)-1].LSN + 1
		v.mu.Lock()
		v.cursor = replCursor{from: next, seq: endSeq, offset: endOff, dec: dec}
		v.mu.Unlock()
	}
	return out, st, nil
}

// SnapshotRecords streams the committed snapshot's records through fn and
// returns the base LSN the snapshot covers: a follower that applies these
// records holds the store's state as of LSN base and resumes the WAL feed
// at base+1. When no snapshot exists it returns base 0 without calling fn.
// Thread-safe; retries once if a newer snapshot replaces the file mid-read.
func (s *Store) SnapshotRecords(fn func(payload []byte) error) (int64, error) {
	v := &s.repl
	for attempt := 0; ; attempt++ {
		v.mu.Lock()
		name, base := v.snapshot, v.base
		v.mu.Unlock()
		if name == "" {
			return base, nil
		}
		data, err := os.ReadFile(filepath.Join(s.dir, name))
		if err != nil {
			if os.IsNotExist(err) && attempt < 3 {
				continue // replaced by a newer snapshot; re-read the view
			}
			return base, err
		}
		if _, _, err := readFrames(data, fn); err != nil {
			return base, err
		}
		return base, nil
	}
}
