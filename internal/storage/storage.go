// Package storage is the durability plane of the serving engine: it owns
// everything that touches disk so the session layer can stay a pure state
// machine. One Store owns one directory and provides
//
//   - a segmented write-ahead log: append-only segment files rotated at a
//     size threshold, CRC-framed length-prefixed records, and a manifest
//     naming the committed snapshot and the first live segment;
//   - group-commit-friendly sync control: Append never syncs by itself —
//     the owner appends a batch and calls Commit once, so adjacent records
//     share a single fsync under FsyncAlways without weakening the ack
//     contract (the caller releases acks only after Commit returns);
//   - streaming snapshots: records are written one at a time to a temp
//     file and made live by an atomic rename + manifest flip, after which
//     pre-snapshot segments are deleted. A crash at any point leaves
//     either the old snapshot+segments or the new ones, never a mix.
//
// A Store is single-owner: exactly one goroutine (the engine's shard loop)
// may use it after Recover. Nothing here locks.
package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"time"
)

// FsyncPolicy controls when appended records are flushed to stable storage.
type FsyncPolicy int

const (
	// FsyncAlways syncs on every Commit: a record acknowledged after
	// Commit is durable even across power loss.
	FsyncAlways FsyncPolicy = iota
	// FsyncInterval syncs at most once per configured interval: a crash
	// may lose the last interval's worth of acknowledged records, but
	// never corrupts the log (replay stops at the first torn record).
	FsyncInterval
	// FsyncNever leaves syncing to the operating system. Process crashes
	// (kill -9) lose nothing that reached the kernel via write; only power
	// loss can drop acknowledged records.
	FsyncNever
)

func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncInterval:
		return "interval"
	case FsyncNever:
		return "never"
	}
	return "unknown"
}

// ParseFsyncPolicy parses a policy name as produced by String. The empty
// string parses as FsyncAlways, the safe default.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "", "always":
		return FsyncAlways, nil
	case "interval":
		return FsyncInterval, nil
	case "never":
		return FsyncNever, nil
	}
	return FsyncAlways, fmt.Errorf("unknown fsync policy %q", s)
}

// Options tunes a Store.
type Options struct {
	// Fsync selects when Commit flushes (default FsyncAlways).
	Fsync FsyncPolicy
	// FsyncInterval is the flush period under FsyncInterval (default 100ms).
	FsyncInterval time.Duration
	// SegmentBytes rotates the active WAL segment once it exceeds this
	// size (default 64 MiB). Rotation seals (syncs and closes) the old
	// segment before the next record lands in a fresh one.
	SegmentBytes int64
	// NewStreamDecoder, when set, equips replication reads with a
	// per-stream decoder for formats whose records are not standalone
	// (interned binary records reference constants defined by earlier
	// records of their segment). ReadCommitted feeds every frame it scans
	// through the decoder in segment order — frames before the requested
	// LSN included, since their definitions matter — and attaches each
	// result to the ReplRecord it returns. nil leaves records undecoded.
	NewStreamDecoder func() StreamDecoder
}

// StreamDecoder decodes one stream's records in order. Implementations
// carry state between calls (an intern table); a fresh decoder must be able
// to start at any segment boundary.
type StreamDecoder interface {
	Decode(payload []byte) (any, error)
}

func (o Options) withDefaults() Options {
	if o.FsyncInterval <= 0 {
		o.FsyncInterval = 100 * time.Millisecond
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 64 << 20
	}
	return o
}

// Record framing, shared by WAL segments and snapshot files:
//
//	[payload length: 4 bytes big-endian] [CRC-32 (IEEE) of payload: 4 bytes] [payload]
//
// The CRC guards against torn or bit-rotted tails; segment replay stops
// (and the file is truncated) at the first record that fails to frame or
// checksum.
const frameHeader = 8

// frame renders one record ready for appending.
func frame(payload []byte) []byte {
	buf := make([]byte, frameHeader+len(payload))
	binary.BigEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload))
	copy(buf[frameHeader:], payload)
	return buf
}

// readFrames iterates the well-framed records of data, calling apply for
// each payload in order. It returns the number of records applied and the
// offset of the first byte that does not begin a complete, checksummed
// record (len(data) when the whole buffer frames cleanly). An error from
// apply aborts the scan.
func readFrames(data []byte, apply func([]byte) error) (int, int, error) {
	off, n := 0, 0
	for {
		if off+frameHeader > len(data) {
			return n, off, nil
		}
		length := int(binary.BigEndian.Uint32(data[off : off+4]))
		sum := binary.BigEndian.Uint32(data[off+4 : off+8])
		if off+frameHeader+length > len(data) {
			return n, off, nil
		}
		payload := data[off+frameHeader : off+frameHeader+length]
		if crc32.ChecksumIEEE(payload) != sum {
			return n, off, nil
		}
		if err := apply(payload); err != nil {
			return n, off, err
		}
		off += frameHeader + length
		n++
	}
}
