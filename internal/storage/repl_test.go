package storage

import (
	"context"
	"fmt"
	"testing"
	"time"
)

// tailAll reads every committed record from from on, following ErrCompacted
// resets through the snapshot, and returns the WAL payloads it saw plus the
// final resume LSN — a miniature of the follower's fetch loop.
func tailAll(t *testing.T, s *Store, from int64) ([]string, int64) {
	t.Helper()
	var out []string
	for {
		recs, st, err := s.ReadCommitted(from, 1<<20, 1<<30)
		if err == ErrCompacted {
			base, err := s.SnapshotRecords(func(p []byte) error { return nil })
			if err != nil {
				t.Fatalf("SnapshotRecords: %v", err)
			}
			out = nil
			from = base + 1
			continue
		}
		if err != nil {
			t.Fatalf("ReadCommitted(%d): %v", from, err)
		}
		for _, r := range recs {
			if r.LSN != from {
				t.Fatalf("LSN gap: got %d want %d", r.LSN, from)
			}
			out = append(out, string(r.Payload))
			from++
		}
		if from > st.Committed {
			return out, from
		}
	}
}

func TestReplTailAcrossRotation(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, Options{Fsync: FsyncAlways, SegmentBytes: 32})
	if _, _, err := mustRecoverEmpty(s); err != nil {
		t.Fatal(err)
	}
	var want []string
	for i := 0; i < 20; i++ {
		r := fmt.Sprintf("record-%02d", i)
		want = append(want, r)
		appendAll(t, s, r)
	}
	if s.Segments() < 2 {
		t.Fatalf("expected rotation, have %d segments", s.Segments())
	}
	got, next := tailAll(t, s, 1)
	if len(got) != len(want) {
		t.Fatalf("tailed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d: got %q want %q", i, got[i], want[i])
		}
	}
	if st := s.ReplState(); st.Committed != 20 || next != 21 {
		t.Fatalf("committed=%d next=%d, want 20/21", st.Committed, next)
	}

	// Mid-stream resume: from=7 must yield exactly records 7..20.
	mid, _ := tailAll(t, s, 7)
	if len(mid) != 14 || mid[0] != "record-06" {
		t.Fatalf("resume at 7: got %d records first=%q", len(mid), mid[0])
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestReplLSNSurvivesRecovery(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, Options{Fsync: FsyncAlways, SegmentBytes: 48})
	if _, _, err := mustRecoverEmpty(s); err != nil {
		t.Fatal(err)
	}
	appendAll(t, s, "a", "b", "c", "d", "e")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, _, wals := recoverAll(t, dir, Options{Fsync: FsyncAlways, SegmentBytes: 48})
	if len(wals) != 5 {
		t.Fatalf("recovered %d records, want 5", len(wals))
	}
	if st := s2.ReplState(); st.Committed != 5 {
		t.Fatalf("committed after recovery = %d, want 5", st.Committed)
	}
	appendAll(t, s2, "f")
	recs, st, err := s2.ReadCommitted(6, 10, 1<<20)
	if err != nil || len(recs) != 1 || string(recs[0].Payload) != "f" || st.Committed != 6 {
		t.Fatalf("post-recovery append: recs=%v st=%+v err=%v", recs, st, err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestReplSnapshotCompaction(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, Options{Fsync: FsyncAlways})
	if _, _, err := mustRecoverEmpty(s); err != nil {
		t.Fatal(err)
	}
	appendAll(t, s, "w1", "w2", "w3")

	sw, err := s.BeginSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.Append([]byte("state-after-3")); err != nil {
		t.Fatal(err)
	}
	if err := sw.Commit(); err != nil {
		t.Fatal(err)
	}
	appendAll(t, s, "w4", "w5")

	// Old LSNs are compacted; the reader must be pointed at the snapshot.
	if _, st, err := s.ReadCommitted(1, 10, 1<<20); err != ErrCompacted || st.Base != 3 {
		t.Fatalf("ReadCommitted(1) = st %+v err %v, want ErrCompacted base 3", st, err)
	}
	var snaps []string
	base, err := s.SnapshotRecords(func(p []byte) error { snaps = append(snaps, string(p)); return nil })
	if err != nil || base != 3 || len(snaps) != 1 || snaps[0] != "state-after-3" {
		t.Fatalf("SnapshotRecords: base=%d snaps=%v err=%v", base, snaps, err)
	}
	recs, st, err := s.ReadCommitted(base+1, 10, 1<<20)
	if err != nil || len(recs) != 2 || string(recs[0].Payload) != "w4" || st.Committed != 5 {
		t.Fatalf("post-snapshot tail: recs=%d st=%+v err=%v", len(recs), st, err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestReplWaitCommitted(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, Options{Fsync: FsyncAlways})
	if _, _, err := mustRecoverEmpty(s); err != nil {
		t.Fatal(err)
	}
	appendAll(t, s, "x")

	// Already satisfied: returns immediately.
	if c := s.WaitCommitted(context.Background(), 0); c != 1 {
		t.Fatalf("WaitCommitted(0) = %d, want 1", c)
	}
	// Timeout path: nothing new arrives.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if c := s.WaitCommitted(ctx, 1); c != 1 {
		t.Fatalf("WaitCommitted(1) timed-out = %d, want 1", c)
	}
	// Wakeup path: a committed append releases the waiter. The waiter runs
	// in this goroutine after scheduling the append from another, so use a
	// small delay to make the blocking order overwhelmingly likely.
	done := make(chan struct{})
	go func() {
		defer close(done)
		time.Sleep(30 * time.Millisecond)
		s.Append([]byte("y"))
		s.Commit()
	}()
	ctx2, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if c := s.WaitCommitted(ctx2, 1); c != 2 {
		t.Fatalf("WaitCommitted(1) woke with %d, want 2", c)
	}
	<-done
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestReplCursorSequentialReads pins the resume-cursor fast path: a
// follower polling in small sequential batches must see exactly the same
// records as one big read, across segment rotations, with appends landing
// between polls, and after an out-of-order read invalidates the cursor.
func TestReplCursorSequentialReads(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, Options{Fsync: FsyncAlways, SegmentBytes: 48})
	if _, _, err := mustRecoverEmpty(s); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rec := func(i int) string { return fmt.Sprintf("cursor-record-%03d", i) }
	total := 0
	grow := func(n int) {
		for i := 0; i < n; i++ {
			appendAll(t, s, rec(total))
			total++
		}
	}
	grow(30)
	if s.Segments() < 2 {
		t.Fatalf("expected rotation, have %d segments", s.Segments())
	}

	// Sequential 3-record polls: every poll after the first hits the cursor.
	next := int64(1)
	read := func(maxRecords int) []ReplRecord {
		recs, _, err := s.ReadCommitted(next, maxRecords, 1<<30)
		if err != nil {
			t.Fatalf("ReadCommitted(%d): %v", next, err)
		}
		for _, r := range recs {
			if r.LSN != next {
				t.Fatalf("LSN gap at %d: got %d", next, r.LSN)
			}
			if want := rec(int(r.LSN - 1)); string(r.Payload) != want {
				t.Fatalf("LSN %d: got %s want %s", r.LSN, r.Payload, want)
			}
			next++
		}
		return recs
	}
	for next <= 18 {
		read(3)
	}
	grow(7) // appends between polls extend the active segment under the cursor
	for int(next) <= total {
		read(5)
	}

	// Rewind: a non-sequential from must ignore the cursor and rescan.
	mid, _, err := s.ReadCommitted(5, 4, 1<<30)
	if err != nil || len(mid) != 4 || mid[0].LSN != 5 {
		t.Fatalf("rewind read: %v %+v", err, mid)
	}
	// And sequential polling still resumes correctly after the rewind.
	next = 9
	read(1000)
	if int(next) != total+1 {
		t.Fatalf("resumed tail ended at %d, want %d", next, total+1)
	}
}

// TestReplSlotRetainsWAL pins the replication-slot rule: snapshot
// compaction keeps segments a follower has not acked, so a live stream
// reads straight through a snapshot without a reset; records below the
// slot still compact away.
func TestReplSlotRetainsWAL(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, Options{Fsync: FsyncAlways, SegmentBytes: 16})
	if _, _, err := mustRecoverEmpty(s); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 1; i <= 12; i++ {
		appendAll(t, s, fmt.Sprintf("slot-%02d", i))
	}
	s.SetRetain(8) // follower acked LSN 8: records 9..12 still needed

	sw, err := s.BeginSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.Append([]byte("state-after-12")); err != nil {
		t.Fatal(err)
	}
	if err := sw.Commit(); err != nil {
		t.Fatal(err)
	}
	appendAll(t, s, "slot-13")

	// The un-acked tail survives the snapshot: the follower resumes at 9
	// and reads through to the head with no ErrCompacted reset.
	recs, st, err := s.ReadCommitted(9, 100, 1<<20)
	if err != nil || st.Base != 12 {
		t.Fatalf("ReadCommitted(9): err=%v st=%+v", err, st)
	}
	got := make([]string, len(recs))
	for i, r := range recs {
		got[i] = string(r.Payload)
	}
	want := []string{"slot-09", "slot-10", "slot-11", "slot-12", "slot-13"}
	if len(got) != len(want) {
		t.Fatalf("retained tail: got %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("retained tail[%d]: got %q want %q", i, got[i], want[i])
		}
	}

	// Acked records ahead of the slot are gone: from=1 is a real reset.
	if _, _, err := s.ReadCommitted(1, 10, 1<<20); err != ErrCompacted {
		t.Fatalf("ReadCommitted(1) err=%v, want ErrCompacted", err)
	}

	// Once the follower acks the head, the next snapshot compacts fully.
	s.SetRetain(13)
	sw, err = s.BeginSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.Append([]byte("state-after-13")); err != nil {
		t.Fatal(err)
	}
	if err := sw.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.ReadCommitted(9, 10, 1<<20); err != ErrCompacted {
		t.Fatalf("after full ack, ReadCommitted(9) err=%v, want ErrCompacted", err)
	}
	if recs, _, err := s.ReadCommitted(14, 10, 1<<20); err != nil || len(recs) != 0 {
		t.Fatalf("head read: recs=%d err=%v", len(recs), err)
	}
}
