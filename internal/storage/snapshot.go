package storage

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// SnapshotWriter streams one snapshot: records are appended one at a time
// (each CRC-framed, same framing as the WAL) into a temp file, and nothing
// is visible to recovery until Commit renames it into place and flips the
// manifest. The write path never holds more than one record in memory, so
// snapshotting a shard with months of log does not balloon the heap the
// way a single json.Marshal of every session did.
type SnapshotWriter struct {
	s    *Store
	seq  int
	tmp  string
	f    *os.File
	w    *bufio.Writer
	done bool
}

// BeginSnapshot starts a snapshot covering every record appended so far.
// The snapshot takes the sequence number one past the active segment;
// committing it makes that the first live segment. Between BeginSnapshot
// and Commit the owner must not Append (single-owner discipline — the
// engine snapshots from inside the shard loop, where this holds by
// construction).
func (s *Store) BeginSnapshot() (*SnapshotWriter, error) {
	if s.active == nil {
		return nil, fmt.Errorf("storage: store is closed")
	}
	seq := s.activeSeq + 1
	tmp := filepath.Join(s.dir, snapName(seq)+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	return &SnapshotWriter{s: s, seq: seq, tmp: tmp, f: f, w: bufio.NewWriterSize(f, 1<<16)}, nil
}

// Append frames one record into the pending snapshot.
func (sw *SnapshotWriter) Append(payload []byte) error {
	if sw.done {
		return fmt.Errorf("storage: snapshot writer already finished")
	}
	_, err := sw.w.Write(frame(payload))
	return err
}

// Commit publishes the snapshot. Ordering is what makes every crash point
// recoverable:
//
//  1. flush + fsync + rename the temp file to its final snapshot name
//     (an incomplete snapshot can never carry the final name);
//  2. seal the active segment and open the next one at the snapshot's
//     sequence number (post-snapshot records land only in segments >= it);
//  3. flip the manifest — the commit point;
//  4. only then delete the superseded segments and old snapshot.
//
// A crash before 3 recovers from the old snapshot + old segments (Open
// deletes the orphan new snapshot); a crash after 3 recovers from the new
// snapshot, with Open sweeping whatever step 4 did not get to.
func (sw *SnapshotWriter) Commit() error {
	if sw.done {
		return fmt.Errorf("storage: snapshot writer already finished")
	}
	sw.done = true
	s := sw.s

	if err := sw.w.Flush(); err != nil {
		sw.discard()
		return err
	}
	if err := sw.f.Sync(); err != nil {
		sw.discard()
		return err
	}
	if err := sw.f.Close(); err != nil {
		os.Remove(sw.tmp)
		return err
	}
	final := snapName(sw.seq)
	if err := os.Rename(sw.tmp, filepath.Join(s.dir, final)); err != nil {
		os.Remove(sw.tmp)
		return err
	}
	if err := syncDir(s.dir); err != nil {
		return err
	}

	oldSnap := s.man.Snapshot
	if err := s.rotateTo(sw.seq); err != nil {
		return err
	}
	// Between BeginSnapshot and here the owner appended nothing, so s.lsn
	// is exactly the LSN the snapshot covers: it becomes the new base.
	if err := s.commitManifest(manifest{Version: 1, Snapshot: final, SegStart: sw.seq, Base: s.lsn}); err != nil {
		return err
	}
	// Replication slot: segments holding records a follower has not acked
	// yet survive compaction (they keep serving the stream, so a live
	// follower never resets just because the primary snapshotted), bounded
	// by maxRetainSegments so a dead follower cannot pin disk forever — one
	// that far behind bootstraps from the snapshot instead. Retained
	// segments are a live-process courtesy only: the manifest's SegStart
	// does not cover them, so a restart sweeps them and followers reset.
	type oldSeg struct {
		seq   int
		first int64
	}
	var olds []oldSeg
	for seq, first := range s.segFirst {
		if seq < sw.seq {
			olds = append(olds, oldSeg{seq, first})
		}
	}
	sort.Slice(olds, func(i, j int) bool { return olds[i].seq < olds[j].seq })
	cut := len(olds)
	if retain := s.retain.Load(); retain > 0 {
		for k := range olds {
			last := s.lsn
			if k+1 < len(olds) {
				last = olds[k+1].first - 1
			}
			if last > retain {
				cut = k
				break
			}
		}
		if len(olds)-cut > maxRetainSegments {
			cut = len(olds) - maxRetainSegments
		}
	}
	for k := 0; k < cut; k++ {
		delete(s.segFirst, olds[k].seq)
	}
	s.publish()

	for k := 0; k < cut; k++ {
		os.Remove(filepath.Join(s.dir, segName(olds[k].seq)))
	}
	if oldSnap != "" && oldSnap != final {
		os.Remove(filepath.Join(s.dir, oldSnap))
	}
	return nil
}

// maxRetainSegments bounds how many pre-snapshot segments the replication
// slot may keep alive. Beyond this the follower is better served by a
// snapshot bootstrap than by replaying a long WAL tail.
const maxRetainSegments = 4

// Abort discards the pending snapshot, leaving the store exactly as it
// was.
func (sw *SnapshotWriter) Abort() {
	if sw.done {
		return
	}
	sw.done = true
	sw.discard()
}

func (sw *SnapshotWriter) discard() {
	sw.f.Close()
	os.Remove(sw.tmp)
}

// rotateTo seals the active segment and opens a fresh one at exactly seq.
func (s *Store) rotateTo(seq int) error {
	if err := s.active.Sync(); err != nil {
		return err
	}
	s.dirty = false
	if err := s.active.Close(); err != nil {
		return err
	}
	return s.openActive(seq)
}
