package storage

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Read-only inspection of a shard directory, for offline tooling (waldump)
// and test seeding. Nothing here opens an active segment, truncates, or
// rewrites anything: torn tails are reported, not repaired, so a scan is
// safe on a live or damaged directory.

// DumpRecord is one framed record as ScanDir found it on disk.
type DumpRecord struct {
	File     string // base name of the containing file
	Seq      int    // file sequence number
	Snapshot bool   // snapshot record vs WAL record
	Index    int    // record index within the file, from 0
	Offset   int    // byte offset of the frame within the file
	Size     int    // payload size in bytes (the frame adds 8)
	Payload  []byte
}

// DumpTail reports a file whose tail does not frame cleanly — what Recover
// would truncate (a WAL segment) or refuse (a snapshot).
type DumpTail struct {
	File   string
	Offset int // first byte that does not begin a complete checksummed record
	Len    int // file length
}

// ScanDir walks a shard directory in replay order — the manifest's current
// snapshot first (when present), then WAL segments in ascending sequence —
// calling fn for every record. It returns the torn tails it found; an fn
// error aborts the scan.
func ScanDir(dir string, fn func(r *DumpRecord) error) ([]DumpTail, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}

	// The manifest names the authoritative snapshot; without one, mirror
	// Open's reconstruction (newest fully-renamed snapshot) but commit
	// nothing.
	var man manifest
	if data, err := os.ReadFile(filepath.Join(dir, manifestName)); err == nil {
		if err := json.Unmarshal(data, &man); err != nil {
			return nil, fmt.Errorf("storage: manifest corrupt in %s: %w", dir, err)
		}
	} else if os.IsNotExist(err) {
		best := -1
		for _, e := range entries {
			if seq, ok := parseSeq(e.Name(), "snap-", ".snap"); ok && seq > best {
				best = seq
			}
		}
		if best >= 0 {
			man.Snapshot = snapName(best)
			man.SegStart = best
		}
	} else {
		return nil, err
	}

	var tails []DumpTail
	scan := func(name string, seq int, snapshot bool) error {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		idx, off := 0, 0
		_, end, err := readFrames(data, func(payload []byte) error {
			err := fn(&DumpRecord{
				File:     name,
				Seq:      seq,
				Snapshot: snapshot,
				Index:    idx,
				Offset:   off,
				Size:     len(payload),
				Payload:  payload,
			})
			idx++
			off += frameHeader + len(payload)
			return err
		})
		if err != nil {
			return err
		}
		if end != len(data) {
			tails = append(tails, DumpTail{File: name, Offset: end, Len: len(data)})
		}
		return nil
	}

	if man.Snapshot != "" {
		seq, _ := parseSeq(man.Snapshot, "snap-", ".snap")
		if err := scan(man.Snapshot, seq, true); err != nil {
			return tails, err
		}
	}
	var segs []int
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".tmp") {
			continue
		}
		if seq, ok := parseSeq(e.Name(), "seg-", ".wal"); ok && seq >= man.SegStart {
			segs = append(segs, seq)
		}
	}
	sort.Ints(segs)
	for _, seq := range segs {
		if err := scan(segName(seq), seq, false); err != nil {
			return tails, err
		}
	}
	return tails, nil
}
