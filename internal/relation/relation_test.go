package relation

import (
	"encoding/json"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func tup(cs ...string) Tuple {
	t := make(Tuple, len(cs))
	for i, c := range cs {
		t[i] = Const(c)
	}
	return t
}

func TestTupleKeyInjective(t *testing.T) {
	a := tup("ab", "c")
	b := tup("a", "bc")
	if a.Key() == b.Key() {
		t.Fatalf("keys collide: %q vs %q", a, b)
	}
}

func TestTupleEqualAndLess(t *testing.T) {
	if !tup("a", "b").Equal(tup("a", "b")) {
		t.Error("equal tuples reported unequal")
	}
	if tup("a").Equal(tup("a", "b")) {
		t.Error("tuples of different arity reported equal")
	}
	if !tup("a").Less(tup("a", "b")) {
		t.Error("shorter tuple should sort first")
	}
	if !tup("a", "a").Less(tup("a", "b")) {
		t.Error("lexicographic order violated")
	}
	if tup("a", "b").Less(tup("a", "b")) {
		t.Error("Less must be irreflexive")
	}
}

func TestRelAddHas(t *testing.T) {
	r := NewRel(2)
	if !r.Add(tup("x", "y")) {
		t.Error("first Add should report new")
	}
	if r.Add(tup("x", "y")) {
		t.Error("second Add should report duplicate")
	}
	if !r.Has(tup("x", "y")) {
		t.Error("Has misses inserted tuple")
	}
	if r.Has(tup("x", "z")) {
		t.Error("Has reports absent tuple")
	}
	if r.Has(tup("x")) {
		t.Error("Has must reject wrong arity")
	}
	if r.Len() != 1 {
		t.Errorf("Len = %d, want 1", r.Len())
	}
}

func TestRelAddArityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Add with wrong arity must panic")
		}
	}()
	NewRel(2).Add(tup("only-one"))
}

func TestRelZeroArity(t *testing.T) {
	r := NewRel(0)
	if !r.Add(Tuple{}) {
		t.Error("empty tuple should insert")
	}
	if r.Add(Tuple{}) {
		t.Error("empty tuple inserted twice")
	}
	if !r.Has(Tuple{}) {
		t.Error("Has misses empty tuple")
	}
	if r.Len() != 1 {
		t.Errorf("Len = %d, want 1", r.Len())
	}
}

func TestRelTuplesSorted(t *testing.T) {
	r := NewRel(1)
	for _, c := range []string{"c", "a", "b"} {
		r.Add(tup(c))
	}
	got := r.Tuples()
	want := []Tuple{tup("a"), tup("b"), tup("c")}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Tuples() = %v, want %v", got, want)
	}
}

func TestRelCloneIndependent(t *testing.T) {
	r := NewRel(1)
	r.Add(tup("a"))
	c := r.Clone()
	c.Add(tup("b"))
	if r.Has(tup("b")) {
		t.Error("Clone shares storage with original")
	}
}

func TestRelSetOps(t *testing.T) {
	a := NewRel(1)
	a.Add(tup("x"))
	b := NewRel(1)
	b.Add(tup("x"))
	b.Add(tup("y"))
	if !a.SubsetOf(b) {
		t.Error("a should be subset of b")
	}
	if b.SubsetOf(a) {
		t.Error("b should not be subset of a")
	}
	a.UnionWith(b)
	if !a.Equal(b) {
		t.Error("after union, a should equal b")
	}
	a.UnionWith(nil) // must not panic
}

func TestInstanceBasics(t *testing.T) {
	in := NewInstance()
	if !in.Empty() {
		t.Error("fresh instance not empty")
	}
	in.Add("order", tup("time"))
	in.Add("pay", tup("time", "855"))
	if in.Len() != 2 {
		t.Errorf("Len = %d, want 2", in.Len())
	}
	if !in.Has("order", tup("time")) {
		t.Error("Has misses fact")
	}
	if in.Has("deliver", tup("time")) {
		t.Error("Has invents relation")
	}
	got := in.String()
	want := "{order(time), pay(time, 855)}"
	if got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestInstanceRestrict(t *testing.T) {
	in := NewInstance()
	in.Add("a", tup("1"))
	in.Add("b", tup("2"))
	r := in.Restrict([]string{"a"})
	if r.Has("b", tup("2")) {
		t.Error("Restrict kept excluded relation")
	}
	if !r.Has("a", tup("1")) {
		t.Error("Restrict dropped included relation")
	}
}

func TestInstanceEqualEmptyVsAbsent(t *testing.T) {
	a := NewInstance()
	a.Ensure("r", 1) // empty relation present
	b := NewInstance()
	if !a.Equal(b) || !b.Equal(a) {
		t.Error("empty relation must equal absent relation")
	}
	b.Add("r", tup("x"))
	if a.Equal(b) || b.Equal(a) {
		t.Error("distinct instances reported equal")
	}
}

func TestInstanceUnionSubset(t *testing.T) {
	a := NewInstance()
	a.Add("r", tup("1"))
	b := NewInstance()
	b.Add("r", tup("2"))
	b.Add("s", tup("3"))
	a.UnionWith(b)
	if !b.SubsetOf(a) {
		t.Error("b should be subset after union")
	}
	if a.SubsetOf(b) {
		t.Error("a has extra fact; not subset")
	}
}

func TestInstanceActiveDomain(t *testing.T) {
	in := NewInstance()
	in.Add("r", tup("b", "a"))
	in.Add("s", tup("c"))
	got := in.ActiveDomain()
	want := []Const{"a", "b", "c"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("ActiveDomain = %v, want %v", got, want)
	}
}

func TestInstanceFactsDeterministic(t *testing.T) {
	in := NewInstance()
	in.Add("b", tup("2"))
	in.Add("a", tup("1"))
	in.Add("a", tup("0"))
	facts := in.Facts()
	if len(facts) != 3 {
		t.Fatalf("Facts len = %d, want 3", len(facts))
	}
	if facts[0].String() != "a(0)" || facts[1].String() != "a(1)" || facts[2].String() != "b(2)" {
		t.Errorf("Facts order wrong: %v", facts)
	}
}

func TestSchemaOps(t *testing.T) {
	s := Schema{{"price", 2}, {"available", 1}}
	if a, ok := s.Arity("price"); !ok || a != 2 {
		t.Errorf("Arity(price) = %d,%v", a, ok)
	}
	if s.Has("order") {
		t.Error("Has invents relation")
	}
	u, err := s.Union(Schema{{"order", 1}, {"price", 2}})
	if err != nil {
		t.Fatalf("Union: %v", err)
	}
	if len(u) != 3 {
		t.Errorf("Union len = %d, want 3", len(u))
	}
	if _, err := s.Union(Schema{{"price", 3}}); err == nil {
		t.Error("Union must reject conflicting arity")
	}
	if !s.Disjoint(Schema{{"order", 1}}) {
		t.Error("Disjoint false negative")
	}
	if s.Disjoint(Schema{{"price", 2}}) {
		t.Error("Disjoint false positive")
	}
	r := s.Restrict([]string{"available"})
	if len(r) != 1 || r[0].Name != "available" {
		t.Errorf("Restrict = %v", r)
	}
}

func TestSequenceOps(t *testing.T) {
	i1 := NewInstance()
	i1.Add("order", tup("time"))
	i2 := NewInstance()
	i2.Add("pay", tup("time", "855"))
	s := Sequence{i1, i2}
	c := s.Clone()
	c[0].Add("order", tup("newsweek"))
	if s[0].Has("order", tup("newsweek")) {
		t.Error("Sequence.Clone shares storage")
	}
	if !s.Equal(s.Clone()) {
		t.Error("sequence should equal its clone")
	}
	if s.Equal(Sequence{i1}) {
		t.Error("sequences of different length equal")
	}
	r := s.Restrict([]string{"pay"})
	if !r[0].Empty() || !r[1].Has("pay", tup("time", "855")) {
		t.Error("Sequence.Restrict wrong")
	}
	dom := s.ActiveDomain()
	want := []Const{"855", "time"}
	if !reflect.DeepEqual(dom, want) {
		t.Errorf("ActiveDomain = %v, want %v", dom, want)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	in := NewInstance()
	in.Add("pay", tup("time", "855"))
	in.Add("order", tup("le-monde"))
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Instance
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !in.Equal(back) {
		t.Errorf("round trip changed instance: %s vs %s", in, back)
	}
}

func TestJSONRejectsMixedArity(t *testing.T) {
	var in Instance
	err := json.Unmarshal([]byte(`{"r": [["a"], ["a","b"]]}`), &in)
	if err == nil {
		t.Error("mixed-arity relation must be rejected")
	}
}

// randomInstance builds a small random instance for property tests.
func randomInstance(r *rand.Rand) Instance {
	in := NewInstance()
	rels := []string{"p", "q", "r"}
	consts := []string{"a", "b", "c", "d"}
	n := r.Intn(8)
	for i := 0; i < n; i++ {
		name := rels[r.Intn(len(rels))]
		arity := 1 + int(name[0]-'p')%2 // p:1 q:2 r:1
		if name == "q" {
			arity = 2
		} else {
			arity = 1
		}
		t := make(Tuple, arity)
		for j := range t {
			t[j] = Const(consts[r.Intn(len(consts))])
		}
		in.Add(name, t)
	}
	return in
}

func TestPropUnionCommutesOnEquality(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomInstance(r), randomInstance(r)
		ab := a.Clone()
		ab.UnionWith(b)
		ba := b.Clone()
		ba.UnionWith(a)
		return ab.Equal(ba)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropUnionIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomInstance(r)
		aa := a.Clone()
		aa.UnionWith(a)
		return aa.Equal(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropSubsetAntisymmetric(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomInstance(r), randomInstance(r)
		if a.SubsetOf(b) && b.SubsetOf(a) {
			return a.Equal(b)
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropJSONRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomInstance(r)
		data, err := json.Marshal(a)
		if err != nil {
			return false
		}
		var back Instance
		if err := json.Unmarshal(data, &back); err != nil {
			return false
		}
		return a.Equal(back)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropActiveDomainSorted(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomInstance(r)
		dom := a.ActiveDomain()
		return sort.SliceIsSorted(dom, func(i, j int) bool { return dom[i] < dom[j] })
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
