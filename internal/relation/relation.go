// Package relation implements the set-based relational substrate used by the
// transducer engine: constants, tuples, relation schemas, and finite
// instances with deterministic iteration order.
//
// The paper models all data as finite relations over an uninterpreted domain
// of constants. We represent constants as strings (numeric literals keep
// their textual form), tuples as constant slices, and instances as sets of
// tuples keyed by relation name. All operations are pure set algebra; no
// interpretation is attached to constant values beyond equality.
package relation

import (
	"fmt"
	"sort"
	"strings"
)

// Const is a constant symbol of the (uninterpreted) domain. Numeric values
// such as prices are represented by their literal spelling ("855").
type Const string

// Tuple is an ordered list of constants. Tuples are immutable by convention:
// callers must not modify a Tuple after handing it to an Instance.
type Tuple []Const

// Key returns a canonical string encoding of the tuple usable as a map key.
// The encoding separates components with a byte that cannot occur in
// constants produced by the parsers in this module ('\x00').
func (t Tuple) Key() string {
	var b strings.Builder
	for i, c := range t {
		if i > 0 {
			b.WriteByte(0)
		}
		b.WriteString(string(c))
	}
	return b.String()
}

// Equal reports whether two tuples have the same length and components.
func (t Tuple) Equal(u Tuple) bool {
	if len(t) != len(u) {
		return false
	}
	for i := range t {
		if t[i] != u[i] {
			return false
		}
	}
	return true
}

// Less orders tuples first by length and then lexicographically; it induces
// the deterministic iteration order used throughout the module.
func (t Tuple) Less(u Tuple) bool {
	if len(t) != len(u) {
		return len(t) < len(u)
	}
	for i := range t {
		if t[i] != u[i] {
			return t[i] < u[i]
		}
	}
	return false
}

// Clone returns an independent copy of the tuple.
func (t Tuple) Clone() Tuple {
	u := make(Tuple, len(t))
	copy(u, t)
	return u
}

// String renders the tuple as "(a, b, c)".
func (t Tuple) String() string {
	parts := make([]string, len(t))
	for i, c := range t {
		parts[i] = string(c)
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Decl declares one relation: a name and an arity. Arity 0 (propositional)
// relations are permitted and hold at most the empty tuple.
type Decl struct {
	Name  string
	Arity int
}

func (d Decl) String() string { return fmt.Sprintf("%s/%d", d.Name, d.Arity) }

// Schema is an ordered list of relation declarations. Order is preserved for
// deterministic printing; lookups go through Arity/Has.
type Schema []Decl

// Has reports whether the schema declares a relation with the given name.
func (s Schema) Has(name string) bool {
	for _, d := range s {
		if d.Name == name {
			return true
		}
	}
	return false
}

// Arity returns the arity of the named relation and whether it is declared.
func (s Schema) Arity(name string) (int, bool) {
	for _, d := range s {
		if d.Name == name {
			return d.Arity, true
		}
	}
	return 0, false
}

// Names returns the declared relation names in schema order.
func (s Schema) Names() []string {
	out := make([]string, len(s))
	for i, d := range s {
		out[i] = d.Name
	}
	return out
}

// Union concatenates two schemas, returning an error on conflicting
// redeclaration. A duplicate declaration with identical arity is dropped.
func (s Schema) Union(t Schema) (Schema, error) {
	out := make(Schema, 0, len(s)+len(t))
	out = append(out, s...)
	for _, d := range t {
		if a, ok := out.Arity(d.Name); ok {
			if a != d.Arity {
				return nil, fmt.Errorf("relation %s declared with arities %d and %d", d.Name, a, d.Arity)
			}
			continue
		}
		out = append(out, d)
	}
	return out, nil
}

// Disjoint reports whether the two schemas declare no common relation name.
func (s Schema) Disjoint(t Schema) bool {
	for _, d := range t {
		if s.Has(d.Name) {
			return false
		}
	}
	return true
}

// Restrict returns the sub-schema containing only the named relations, in
// the receiver's order.
func (s Schema) Restrict(names []string) Schema {
	keep := make(map[string]bool, len(names))
	for _, n := range names {
		keep[n] = true
	}
	var out Schema
	for _, d := range s {
		if keep[d.Name] {
			out = append(out, d)
		}
	}
	return out
}

func (s Schema) String() string {
	parts := make([]string, len(s))
	for i, d := range s {
		parts[i] = d.String()
	}
	return strings.Join(parts, ", ")
}

// Rel is a finite set of tuples of a fixed arity. Small relations (the
// overwhelmingly common case on the step path: inputs, outputs, and state
// deltas hold a handful of tuples) store their tuples in a plain slice with
// linear-scan membership — no hash maps, no key strings. Past smallRelMax
// tuples the relation spills into a tuple map plus a hash index on the
// first column, which the datalog evaluator uses for joins.
type Rel struct {
	arity   int
	small   []Tuple           // linear storage; nil once spilled
	tuples  map[string]Tuple  // non-nil exactly when spilled
	byFirst map[Const][]Tuple // spilled relations of positive arity only
}

// smallRelMax is the linear-storage capacity: relations spill to hashed
// storage on the insert that would exceed it. Linear dup-checks are at most
// smallRelMax tuple comparisons, cheaper than one key-string allocation.
const smallRelMax = 8

// NewRel creates an empty relation of the given arity.
func NewRel(arity int) *Rel {
	return &Rel{arity: arity}
}

// Arity returns the relation's arity.
func (r *Rel) Arity() int { return r.arity }

// tupleEq compares two same-arity tuples componentwise.
func tupleEq(a, b Tuple) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// spill moves linear storage into the hashed representation.
func (r *Rel) spill() {
	r.tuples = make(map[string]Tuple, len(r.small)+1)
	if r.arity > 0 {
		r.byFirst = make(map[Const][]Tuple, len(r.small)+1)
	}
	for _, t := range r.small {
		r.tuples[t.Key()] = t
		if r.arity > 0 {
			r.byFirst[t[0]] = append(r.byFirst[t[0]], t)
		}
	}
	r.small = nil
}

// Add inserts a tuple, returning true if it was not already present.
// It panics if the tuple's length differs from the relation's arity; this is
// a programming error, not a data error.
func (r *Rel) Add(t Tuple) bool {
	if len(t) != r.arity {
		panic(fmt.Sprintf("relation: tuple %v has arity %d, want %d", t, len(t), r.arity))
	}
	if r.tuples == nil {
		for _, u := range r.small {
			if tupleEq(u, t) {
				return false
			}
		}
		if len(r.small) < smallRelMax {
			r.small = append(r.small, t)
			return true
		}
		r.spill()
	}
	k := t.Key()
	if _, ok := r.tuples[k]; ok {
		return false
	}
	r.tuples[k] = t
	if r.byFirst != nil {
		r.byFirst[t[0]] = append(r.byFirst[t[0]], t)
	}
	return true
}

// Range calls f for every tuple in unspecified order, stopping early if f
// returns false. Use Tuples for the deterministic sorted order.
func (r *Rel) Range(f func(Tuple) bool) {
	if r == nil {
		return
	}
	for _, t := range r.small {
		if !f(t) {
			return
		}
	}
	for _, t := range r.tuples {
		if !f(t) {
			return
		}
	}
}

// RangeFirst calls f for every tuple whose first component equals c (in
// unspecified order), stopping early if f returns false. It is a no-op on
// nil or zero-arity relations.
func (r *Rel) RangeFirst(c Const, f func(Tuple) bool) {
	if r == nil || r.arity == 0 {
		return
	}
	for _, t := range r.small {
		if t[0] == c && !f(t) {
			return
		}
	}
	for _, t := range r.byFirst[c] {
		if !f(t) {
			return
		}
	}
}

// Has reports whether the tuple is present.
func (r *Rel) Has(t Tuple) bool {
	if r == nil || len(t) != r.arity {
		return false
	}
	if r.tuples == nil {
		for _, u := range r.small {
			if tupleEq(u, t) {
				return true
			}
		}
		return false
	}
	_, ok := r.tuples[t.Key()]
	return ok
}

// Len returns the number of tuples.
func (r *Rel) Len() int {
	if r == nil {
		return 0
	}
	return len(r.small) + len(r.tuples)
}

// Empty reports whether the relation holds no tuples.
func (r *Rel) Empty() bool { return r.Len() == 0 }

// Tuples returns the tuples in deterministic (sorted) order.
func (r *Rel) Tuples() []Tuple {
	if r == nil {
		return nil
	}
	out := make([]Tuple, 0, r.Len())
	out = append(out, r.small...)
	for _, t := range r.tuples {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// Clone returns an independent deep copy. Tuples are immutable and shared;
// spilled maps are copied directly so keys are not recomputed.
func (r *Rel) Clone() *Rel {
	c := &Rel{arity: r.arity}
	if len(r.small) > 0 {
		c.small = append(make([]Tuple, 0, len(r.small)), r.small...)
	}
	if r.tuples != nil {
		c.tuples = make(map[string]Tuple, len(r.tuples))
		for k, t := range r.tuples {
			c.tuples[k] = t
		}
		if r.byFirst != nil {
			c.byFirst = make(map[Const][]Tuple, len(r.byFirst))
			for f, ts := range r.byFirst {
				c.byFirst[f] = append([]Tuple(nil), ts...)
			}
		}
	}
	return c
}

// UnionWith adds every tuple of s into r (s may be nil).
func (r *Rel) UnionWith(s *Rel) {
	s.Range(func(t Tuple) bool {
		r.Add(t)
		return true
	})
}

// Equal reports whether two relations hold exactly the same tuples.
func (r *Rel) Equal(s *Rel) bool {
	if r.Len() != s.Len() {
		return false
	}
	eq := true
	r.Range(func(t Tuple) bool {
		if !s.Has(t) {
			eq = false
		}
		return eq
	})
	return eq
}

// SubsetOf reports whether every tuple of r is in s.
func (r *Rel) SubsetOf(s *Rel) bool {
	sub := true
	r.Range(func(t Tuple) bool {
		if !s.Has(t) {
			sub = false
		}
		return sub
	})
	return sub
}

func (r *Rel) String() string {
	ts := r.Tuples()
	parts := make([]string, len(ts))
	for i, t := range ts {
		parts[i] = t.String()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// Instance maps relation names to finite relations. A missing entry denotes
// the empty relation; the zero-value distinction never matters semantically.
type Instance map[string]*Rel

// NewInstance returns an empty instance.
func NewInstance() Instance { return make(Instance) }

// Rel returns the relation stored under name, or nil if absent/empty.
func (in Instance) Rel(name string) *Rel { return in[name] }

// Ensure returns the relation stored under name, creating an empty relation
// of the given arity if absent.
func (in Instance) Ensure(name string, arity int) *Rel {
	r, ok := in[name]
	if !ok {
		r = NewRel(arity)
		in[name] = r
	}
	return r
}

// Add inserts a fact, creating the relation (with the fact's arity) on first
// use. It returns true if the fact was new.
func (in Instance) Add(name string, t Tuple) bool {
	return in.Ensure(name, len(t)).Add(t)
}

// Has reports whether the fact is present.
func (in Instance) Has(name string, t Tuple) bool {
	r, ok := in[name]
	return ok && r.Has(t)
}

// Len returns the total number of facts across all relations.
func (in Instance) Len() int {
	n := 0
	for _, r := range in {
		n += r.Len()
	}
	return n
}

// Empty reports whether the instance holds no facts at all.
func (in Instance) Empty() bool { return in.Len() == 0 }

// Clone returns an independent deep copy.
func (in Instance) Clone() Instance {
	c := make(Instance, len(in))
	for name, r := range in {
		c[name] = r.Clone()
	}
	return c
}

// UnionWith merges every fact of other into in.
func (in Instance) UnionWith(other Instance) {
	for name, r := range other {
		if r.Len() == 0 {
			continue
		}
		in.Ensure(name, r.Arity()).UnionWith(r)
	}
}

// Restrict returns a copy containing only the named relations (empty ones
// included if present in the receiver).
func (in Instance) Restrict(names []string) Instance {
	keep := make(map[string]bool, len(names))
	for _, n := range names {
		keep[n] = true
	}
	out := NewInstance()
	for name, r := range in {
		if keep[name] {
			out[name] = r.Clone()
		}
	}
	return out
}

// Equal reports whether two instances hold exactly the same facts. Empty
// relations are identified with absent ones.
func (in Instance) Equal(other Instance) bool {
	for name, r := range in {
		if !r.Equal(other.ensureView(name)) {
			return false
		}
	}
	for name, r := range other {
		if _, ok := in[name]; !ok && r.Len() > 0 {
			return false
		}
	}
	return true
}

func (in Instance) ensureView(name string) *Rel {
	if r, ok := in[name]; ok {
		return r
	}
	return &Rel{}
}

// SubsetOf reports whether every fact of in appears in other.
func (in Instance) SubsetOf(other Instance) bool {
	for name, r := range in {
		if r.Len() == 0 {
			continue
		}
		o, ok := other[name]
		if !ok || !r.SubsetOf(o) {
			return false
		}
	}
	return true
}

// Names returns the relation names present in the instance, sorted.
func (in Instance) Names() []string {
	out := make([]string, 0, len(in))
	for name := range in {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// ActiveDomain returns the sorted set of constants occurring in any fact.
func (in Instance) ActiveDomain() []Const {
	seen := make(map[Const]bool)
	for _, r := range in {
		r.Range(func(t Tuple) bool {
			for _, c := range t {
				seen[c] = true
			}
			return true
		})
	}
	out := make([]Const, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// String renders the instance deterministically as "name{(..), ..}; ...".
func (in Instance) String() string {
	names := in.Names()
	var parts []string
	for _, name := range names {
		r := in[name]
		if r.Len() == 0 {
			continue
		}
		if r.Arity() == 0 {
			parts = append(parts, name)
			continue
		}
		ts := r.Tuples()
		for _, t := range ts {
			parts = append(parts, name+t.String())
		}
	}
	if len(parts) == 0 {
		return "{}"
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// Facts returns all facts as (name, tuple) pairs in deterministic order.
func (in Instance) Facts() []Fact {
	var out []Fact
	for _, name := range in.Names() {
		for _, t := range in[name].Tuples() {
			out = append(out, Fact{Rel: name, Args: t})
		}
	}
	return out
}

// Fact is a single ground atom: a relation name applied to a tuple.
type Fact struct {
	Rel  string
	Args Tuple
}

func (f Fact) String() string {
	if len(f.Args) == 0 {
		return f.Rel
	}
	return f.Rel + f.Args.String()
}

// Sequence is a finite sequence of instances over a common schema — the
// paper's basic notion of input, output, state, and log sequences.
type Sequence []Instance

// Clone returns a deep copy of the sequence.
func (s Sequence) Clone() Sequence {
	out := make(Sequence, len(s))
	for i, in := range s {
		out[i] = in.Clone()
	}
	return out
}

// Equal reports element-wise equality of two sequences.
func (s Sequence) Equal(t Sequence) bool {
	if len(s) != len(t) {
		return false
	}
	for i := range s {
		if !s[i].Equal(t[i]) {
			return false
		}
	}
	return true
}

// Restrict restricts every instance of the sequence to the named relations.
func (s Sequence) Restrict(names []string) Sequence {
	out := make(Sequence, len(s))
	for i, in := range s {
		out[i] = in.Restrict(names)
	}
	return out
}

// ActiveDomain returns the sorted constants occurring anywhere in the
// sequence.
func (s Sequence) ActiveDomain() []Const {
	seen := make(map[Const]bool)
	for _, in := range s {
		for _, c := range in.ActiveDomain() {
			seen[c] = true
		}
	}
	out := make([]Const, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (s Sequence) String() string {
	parts := make([]string, len(s))
	for i, in := range s {
		parts[i] = fmt.Sprintf("%d: %s", i+1, in)
	}
	return strings.Join(parts, "\n")
}
