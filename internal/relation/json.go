package relation

import (
	"encoding/json"
	"fmt"
	"sort"
)

// instanceJSON is the wire form of an Instance: relation name to list of
// tuples (each a list of constant strings). Propositional relations that
// hold the empty tuple serialize as a single empty tuple.
type instanceJSON map[string][][]string

// MarshalJSON encodes the instance deterministically.
func (in Instance) MarshalJSON() ([]byte, error) {
	m := make(instanceJSON)
	for _, name := range in.Names() {
		r := in[name]
		if r.Len() == 0 {
			continue
		}
		rows := make([][]string, 0, r.Len())
		for _, t := range r.Tuples() {
			row := make([]string, len(t))
			for i, c := range t {
				row[i] = string(c)
			}
			rows = append(rows, row)
		}
		m[name] = rows
	}
	return json.Marshal(m)
}

// UnmarshalJSON decodes the wire form produced by MarshalJSON.
func (in *Instance) UnmarshalJSON(data []byte) error {
	var m instanceJSON
	if err := json.Unmarshal(data, &m); err != nil {
		return err
	}
	out := NewInstance()
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		rows := m[name]
		arity := -1
		for _, row := range rows {
			if arity == -1 {
				arity = len(row)
			} else if len(row) != arity {
				return fmt.Errorf("relation %s: mixed arities %d and %d", name, arity, len(row))
			}
			t := make(Tuple, len(row))
			for i, c := range row {
				t[i] = Const(c)
			}
			out.Ensure(name, arity).Add(t)
		}
		if len(rows) == 0 {
			// Preserve an explicitly-listed empty relation with unknown
			// arity as arity 0; this only affects printing.
			out.Ensure(name, 0)
		}
	}
	*in = out
	return nil
}
