package relation

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestRangeVisitsAll(t *testing.T) {
	r := NewRel(2)
	r.Add(tup("a", "1"))
	r.Add(tup("b", "2"))
	r.Add(tup("a", "3"))
	var seen []string
	r.Range(func(u Tuple) bool {
		seen = append(seen, u.Key())
		return true
	})
	if len(seen) != 3 {
		t.Errorf("Range visited %d tuples, want 3", len(seen))
	}
	// Early stop.
	count := 0
	r.Range(func(Tuple) bool {
		count++
		return false
	})
	if count != 1 {
		t.Errorf("Range ignored early stop: %d visits", count)
	}
	var nilRel *Rel
	nilRel.Range(func(Tuple) bool { t.Fatal("nil Range visited"); return true })
}

func TestRangeFirstSelective(t *testing.T) {
	r := NewRel(2)
	r.Add(tup("a", "1"))
	r.Add(tup("b", "2"))
	r.Add(tup("a", "3"))
	var seen []string
	r.RangeFirst("a", func(u Tuple) bool {
		seen = append(seen, string(u[1]))
		return true
	})
	sort.Strings(seen)
	if len(seen) != 2 || seen[0] != "1" || seen[1] != "3" {
		t.Errorf("RangeFirst(a) = %v", seen)
	}
	none := 0
	r.RangeFirst("z", func(Tuple) bool { none++; return true })
	if none != 0 {
		t.Error("RangeFirst visited absent key")
	}
	// Zero-arity relations have no index and must not panic.
	z := NewRel(0)
	z.Add(Tuple{})
	z.RangeFirst("x", func(Tuple) bool { t.Fatal("zero-arity RangeFirst visited"); return true })
}

// TestPropIndexConsistentAfterCloneUnion: the first-column index stays
// consistent with the tuple set through Add/Clone/UnionWith.
func TestPropIndexConsistentAfterCloneUnion(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		consts := []Const{"a", "b", "c"}
		a := NewRel(2)
		b := NewRel(2)
		for i := 0; i < r.Intn(8); i++ {
			a.Add(Tuple{consts[r.Intn(3)], consts[r.Intn(3)]})
		}
		for i := 0; i < r.Intn(8); i++ {
			b.Add(Tuple{consts[r.Intn(3)], consts[r.Intn(3)]})
		}
		u := a.Clone()
		u.UnionWith(b)
		// For every first-column value, RangeFirst must agree with a filter
		// over Tuples.
		for _, c := range consts {
			viaIndex := map[string]bool{}
			u.RangeFirst(c, func(t Tuple) bool {
				viaIndex[t.Key()] = true
				return true
			})
			viaScan := map[string]bool{}
			for _, t := range u.Tuples() {
				if t[0] == c {
					viaScan[t.Key()] = true
				}
			}
			if len(viaIndex) != len(viaScan) {
				return false
			}
			for k := range viaScan {
				if !viaIndex[k] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
