package fol

import (
	"testing"

	"repro/internal/relation"
	"repro/internal/sat"
)

// TestFiniteDomainForallExists: ∀x ∃y r(x,y) with r free is satisfiable
// over the finite domain (choose r total) — rejected by the BS checker but
// decidable with FiniteDomain.
func TestFiniteDomainForallExists(t *testing.T) {
	f := ForallF([]string{"X"}, ExistsF([]string{"Y"}, AtomF("r", x("X"), x("Y"))))
	if _, err := Solve(&Problem{Formula: f, Free: map[string]int{"r": 2}}); err == nil {
		t.Fatal("∀∃ accepted without FiniteDomain")
	}
	res, err := Solve(&Problem{
		Formula:      f,
		Free:         map[string]int{"r": 2},
		ExtraConsts:  []relation.Const{"a", "b"},
		FiniteDomain: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != sat.Sat {
		t.Fatalf("status = %v", res.Status)
	}
	// The model must indeed make r total on the domain.
	for _, d := range res.Domain {
		found := false
		for _, e := range res.Domain {
			if res.Model["r"].Has(relation.Tuple{d, e}) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("model r not total at %s: %s", d, res.Model["r"])
		}
	}
}

// TestFiniteDomainForallExistsUnsat: ∀x ∃y (r(x,y) ∧ ¬r(x,y)) is
// unsatisfiable.
func TestFiniteDomainForallExistsUnsat(t *testing.T) {
	f := ForallF([]string{"X"}, ExistsF([]string{"Y"},
		AndF(AtomF("r", x("X"), x("Y")), NotF(AtomF("r", x("X"), x("Y"))))))
	res, err := Solve(&Problem{
		Formula:      f,
		Free:         map[string]int{"r": 2},
		ExtraConsts:  []relation.Const{"a"},
		FiniteDomain: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != sat.Unsat {
		t.Fatalf("status = %v", res.Status)
	}
}

// TestFiniteDomainFunctionalForcing: ∀x,y,y' (r(x,y) ∧ r(x,y') → y=y') ∧
// ∀x ∃y r(x,y) over a 2-element domain forces r to be a function; adding
// ∃u,v,w (r(u,w) ∧ r(v,w) ∧ u≠v) stays satisfiable (non-injective
// function), while forcing injectivity plus non-injectivity is not.
func TestFiniteDomainFunctionalForcing(t *testing.T) {
	functional := ForallF([]string{"X", "Y", "Z"},
		Implies(AndF(AtomF("r", x("X"), x("Y")), AtomF("r", x("X"), x("Z"))), Eq(x("Y"), x("Z"))))
	total := ForallF([]string{"X"}, ExistsF([]string{"Y"}, AtomF("r", x("X"), x("Y"))))
	collide := ExistsF([]string{"U", "V", "W"}, AndF(
		AtomF("r", x("U"), x("W")), AtomF("r", x("V"), x("W")), Neq(x("U"), x("V"))))
	res, err := Solve(&Problem{
		Formula:      AndF(functional, total, collide),
		Free:         map[string]int{"r": 2},
		ExtraConsts:  []relation.Const{"a", "b"},
		FiniteDomain: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != sat.Sat {
		t.Fatalf("constant function should satisfy: %v", res.Status)
	}
	injective := ForallF([]string{"U", "V", "W"},
		Implies(AndF(AtomF("r", x("U"), x("W")), AtomF("r", x("V"), x("W"))), Eq(x("U"), x("V"))))
	res2, err := Solve(&Problem{
		Formula:      AndF(functional, total, collide, injective),
		Free:         map[string]int{"r": 2},
		ExtraConsts:  []relation.Const{"a", "b"},
		Witnesses:    1,
		FiniteDomain: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Status != sat.Unsat {
		t.Fatalf("injective + colliding should be unsat: %v", res2.Status)
	}
}
