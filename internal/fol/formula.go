// Package fol implements the fragment of first-order logic the paper's
// decision procedures rest on: formulas over relational vocabulary with
// constants and equality, negation normal form, and a finite-model
// satisfiability checker for the Bernays–Schönfinkel prefix class ∃*∀*FO
// (decidable by Ramsey's small-model property, NEXPTIME-complete in general
// and Σ₂ᵖ-complete for bounded arity [Lew80]).
//
// Semantics are database-style: constants obey the unique-name assumption,
// and satisfiability is over finite structures whose domain is the constant
// symbols plus max(1, k) fresh witness elements, where k is the number of
// existential variables — exactly the bound used in the paper's proofs.
// Predicates are either fixed (closed-world finite relations, e.g. the
// product database) or free (unknown relations, e.g. the input sequence the
// decision procedure searches for).
//
// The checker grounds the sentence to CNF — universal variables by expansion
// over the domain, existential variables by "selector" booleans with
// exactly-one constraints — and decides it with the CDCL solver of package
// sat, reading witness assignments and free-predicate extensions back out of
// the model.
package fol

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/dlog"
	"repro/internal/relation"
)

// Formula is a first-order formula over relational atoms and equality.
// Build formulas with the constructor helpers; the zero values of the node
// types are not meaningful.
type Formula interface {
	fmt.Stringer
	isFormula()
}

// Atom is a relational atom R(t̄). Terms reuse the dlog representation.
type Atom struct {
	Pred string
	Args []dlog.Term
}

// Equal is the equality atom t = u.
type Equal struct {
	L, R dlog.Term
}

// Not is negation.
type Not struct {
	F Formula
}

// And is finite conjunction; And() is truth.
type And struct {
	Fs []Formula
}

// Or is finite disjunction; Or() is falsity.
type Or struct {
	Fs []Formula
}

// Exists is existential quantification over the listed variables.
type Exists struct {
	Vars []string
	F    Formula
}

// Forall is universal quantification over the listed variables.
type Forall struct {
	Vars []string
	F    Formula
}

func (Atom) isFormula()   {}
func (Equal) isFormula()  {}
func (Not) isFormula()    {}
func (And) isFormula()    {}
func (Or) isFormula()     {}
func (Exists) isFormula() {}
func (Forall) isFormula() {}

// AtomF builds an atom formula.
func AtomF(pred string, args ...dlog.Term) Atom { return Atom{Pred: pred, Args: args} }

// Eq builds t = u.
func Eq(l, r dlog.Term) Equal { return Equal{L: l, R: r} }

// Neq builds t ≠ u.
func Neq(l, r dlog.Term) Formula { return Not{Equal{L: l, R: r}} }

// NotF negates a formula, collapsing double negation.
func NotF(f Formula) Formula {
	if n, ok := f.(Not); ok {
		return n.F
	}
	return Not{F: f}
}

// AndF builds a conjunction, flattening nested conjunctions.
func AndF(fs ...Formula) Formula {
	var out []Formula
	for _, f := range fs {
		if a, ok := f.(And); ok {
			out = append(out, a.Fs...)
		} else if f != nil {
			out = append(out, f)
		}
	}
	if len(out) == 1 {
		return out[0]
	}
	return And{Fs: out}
}

// OrF builds a disjunction, flattening nested disjunctions.
func OrF(fs ...Formula) Formula {
	var out []Formula
	for _, f := range fs {
		if o, ok := f.(Or); ok {
			out = append(out, o.Fs...)
		} else if f != nil {
			out = append(out, f)
		}
	}
	if len(out) == 1 {
		return out[0]
	}
	return Or{Fs: out}
}

// Implies builds f → g.
func Implies(f, g Formula) Formula { return OrF(NotF(f), g) }

// True is the empty conjunction.
func True() Formula { return And{} }

// False is the empty disjunction.
func False() Formula { return Or{} }

// ExistsF quantifies vars existentially (no-op for empty vars).
func ExistsF(vars []string, f Formula) Formula {
	if len(vars) == 0 {
		return f
	}
	return Exists{Vars: vars, F: f}
}

// ForallF quantifies vars universally (no-op for empty vars).
func ForallF(vars []string, f Formula) Formula {
	if len(vars) == 0 {
		return f
	}
	return Forall{Vars: vars, F: f}
}

func (a Atom) String() string {
	if len(a.Args) == 0 {
		return a.Pred
	}
	parts := make([]string, len(a.Args))
	for i, t := range a.Args {
		parts[i] = t.String()
	}
	return a.Pred + "(" + strings.Join(parts, ",") + ")"
}

func (e Equal) String() string { return e.L.String() + "=" + e.R.String() }

func (n Not) String() string { return "¬" + paren(n.F) }

func (a And) String() string {
	if len(a.Fs) == 0 {
		return "⊤"
	}
	parts := make([]string, len(a.Fs))
	for i, f := range a.Fs {
		parts[i] = paren(f)
	}
	return strings.Join(parts, " ∧ ")
}

func (o Or) String() string {
	if len(o.Fs) == 0 {
		return "⊥"
	}
	parts := make([]string, len(o.Fs))
	for i, f := range o.Fs {
		parts[i] = paren(f)
	}
	return strings.Join(parts, " ∨ ")
}

func (e Exists) String() string {
	return "∃" + strings.Join(e.Vars, ",") + " " + paren(e.F)
}

func (f Forall) String() string {
	return "∀" + strings.Join(f.Vars, ",") + " " + paren(f.F)
}

func paren(f Formula) string {
	switch f.(type) {
	case Atom, Equal, Not:
		return f.String()
	default:
		return "(" + f.String() + ")"
	}
}

// NNF converts the formula to negation normal form: negations apply only to
// atoms and equalities.
func NNF(f Formula) Formula {
	switch t := f.(type) {
	case Atom, Equal:
		return t
	case And:
		out := make([]Formula, len(t.Fs))
		for i, g := range t.Fs {
			out[i] = NNF(g)
		}
		return And{Fs: out}
	case Or:
		out := make([]Formula, len(t.Fs))
		for i, g := range t.Fs {
			out[i] = NNF(g)
		}
		return Or{Fs: out}
	case Exists:
		return Exists{Vars: t.Vars, F: NNF(t.F)}
	case Forall:
		return Forall{Vars: t.Vars, F: NNF(t.F)}
	case Not:
		switch u := t.F.(type) {
		case Atom, Equal:
			return t
		case Not:
			return NNF(u.F)
		case And:
			out := make([]Formula, len(u.Fs))
			for i, g := range u.Fs {
				out[i] = NNF(Not{g})
			}
			return Or{Fs: out}
		case Or:
			out := make([]Formula, len(u.Fs))
			for i, g := range u.Fs {
				out[i] = NNF(Not{g})
			}
			return And{Fs: out}
		case Exists:
			return Forall{Vars: u.Vars, F: NNF(Not{u.F})}
		case Forall:
			return Exists{Vars: u.Vars, F: NNF(Not{u.F})}
		}
	}
	panic(fmt.Sprintf("fol: unknown formula node %T", f))
}

// Constants returns the sorted constant symbols occurring in the formula.
func Constants(f Formula) []relation.Const {
	seen := make(map[relation.Const]bool)
	walkTerms(f, func(t dlog.Term) {
		if !t.Var {
			seen[relation.Const(t.Name)] = true
		}
	})
	out := make([]relation.Const, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// FreeVars returns the sorted free variable names of the formula.
func FreeVars(f Formula) []string {
	seen := make(map[string]bool)
	var walk func(g Formula, bound map[string]bool)
	walk = func(g Formula, bound map[string]bool) {
		switch t := g.(type) {
		case Atom:
			for _, a := range t.Args {
				if a.Var && !bound[a.Name] {
					seen[a.Name] = true
				}
			}
		case Equal:
			for _, a := range []dlog.Term{t.L, t.R} {
				if a.Var && !bound[a.Name] {
					seen[a.Name] = true
				}
			}
		case Not:
			walk(t.F, bound)
		case And:
			for _, h := range t.Fs {
				walk(h, bound)
			}
		case Or:
			for _, h := range t.Fs {
				walk(h, bound)
			}
		case Exists:
			walk(t.F, extendBound(bound, t.Vars))
		case Forall:
			walk(t.F, extendBound(bound, t.Vars))
		}
	}
	walk(f, map[string]bool{})
	out := make([]string, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

func extendBound(bound map[string]bool, vars []string) map[string]bool {
	next := make(map[string]bool, len(bound)+len(vars))
	for k := range bound {
		next[k] = true
	}
	for _, v := range vars {
		next[v] = true
	}
	return next
}

// Preds returns the predicate names and arities used in the formula.
func Preds(f Formula) map[string]int {
	out := make(map[string]int)
	var walk func(g Formula)
	walk = func(g Formula) {
		switch t := g.(type) {
		case Atom:
			out[t.Pred] = len(t.Args)
		case Equal:
		case Not:
			walk(t.F)
		case And:
			for _, h := range t.Fs {
				walk(h)
			}
		case Or:
			for _, h := range t.Fs {
				walk(h)
			}
		case Exists:
			walk(t.F)
		case Forall:
			walk(t.F)
		}
	}
	walk(f)
	return out
}

func walkTerms(f Formula, visit func(dlog.Term)) {
	switch t := f.(type) {
	case Atom:
		for _, a := range t.Args {
			visit(a)
		}
	case Equal:
		visit(t.L)
		visit(t.R)
	case Not:
		walkTerms(t.F, visit)
	case And:
		for _, g := range t.Fs {
			walkTerms(g, visit)
		}
	case Or:
		for _, g := range t.Fs {
			walkTerms(g, visit)
		}
	case Exists:
		walkTerms(t.F, visit)
	case Forall:
		walkTerms(t.F, visit)
	}
}

// RenameBound returns an alpha-renamed copy of the formula in which every
// bound variable is unique (freshened with a numeric suffix). The grounder
// requires this so that selector tables never collide.
func RenameBound(f Formula) Formula {
	counter := 0
	var walk func(g Formula, env map[string]string) Formula
	sub := func(t dlog.Term, env map[string]string) dlog.Term {
		if t.Var {
			if n, ok := env[t.Name]; ok {
				return dlog.V(n)
			}
		}
		return t
	}
	walk = func(g Formula, env map[string]string) Formula {
		switch t := g.(type) {
		case Atom:
			args := make([]dlog.Term, len(t.Args))
			for i, a := range t.Args {
				args[i] = sub(a, env)
			}
			return Atom{Pred: t.Pred, Args: args}
		case Equal:
			return Equal{L: sub(t.L, env), R: sub(t.R, env)}
		case Not:
			return Not{F: walk(t.F, env)}
		case And:
			out := make([]Formula, len(t.Fs))
			for i, h := range t.Fs {
				out[i] = walk(h, env)
			}
			return And{Fs: out}
		case Or:
			out := make([]Formula, len(t.Fs))
			for i, h := range t.Fs {
				out[i] = walk(h, env)
			}
			return Or{Fs: out}
		case Exists:
			nenv, nvars := freshen(env, t.Vars, &counter)
			return Exists{Vars: nvars, F: walk(t.F, nenv)}
		case Forall:
			nenv, nvars := freshen(env, t.Vars, &counter)
			return Forall{Vars: nvars, F: walk(t.F, nenv)}
		}
		panic(fmt.Sprintf("fol: unknown formula node %T", g))
	}
	return walk(f, map[string]string{})
}

func freshen(env map[string]string, vars []string, counter *int) (map[string]string, []string) {
	nenv := make(map[string]string, len(env)+len(vars))
	for k, v := range env {
		nenv[k] = v
	}
	nvars := make([]string, len(vars))
	for i, v := range vars {
		*counter++
		nv := fmt.Sprintf("%s#%d", v, *counter)
		nenv[v] = nv
		nvars[i] = nv
	}
	return nenv, nvars
}

// Substitute replaces free variables according to env (variable → constant).
func Substitute(f Formula, env map[string]relation.Const) Formula {
	sub := func(t dlog.Term) dlog.Term {
		if t.Var {
			if c, ok := env[t.Name]; ok {
				return dlog.C(string(c))
			}
		}
		return t
	}
	var walk func(g Formula) Formula
	walk = func(g Formula) Formula {
		switch t := g.(type) {
		case Atom:
			args := make([]dlog.Term, len(t.Args))
			for i, a := range t.Args {
				args[i] = sub(a)
			}
			return Atom{Pred: t.Pred, Args: args}
		case Equal:
			return Equal{L: sub(t.L), R: sub(t.R)}
		case Not:
			return Not{F: walk(t.F)}
		case And:
			out := make([]Formula, len(t.Fs))
			for i, h := range t.Fs {
				out[i] = walk(h)
			}
			return And{Fs: out}
		case Or:
			out := make([]Formula, len(t.Fs))
			for i, h := range t.Fs {
				out[i] = walk(h)
			}
			return Or{Fs: out}
		case Exists:
			return Exists{Vars: t.Vars, F: walk(t.F)}
		case Forall:
			return Forall{Vars: t.Vars, F: walk(t.F)}
		}
		panic(fmt.Sprintf("fol: unknown formula node %T", g))
	}
	return walk(f)
}

// CheckBS verifies the formula (assumed NNF, bound-renamed) lies in the
// Bernays–Schönfinkel class: no existential quantifier occurs in the scope
// of a universal quantifier. It returns the number of existential variables.
func CheckBS(f Formula) (int, error) {
	count := 0
	var walk func(g Formula, underForall bool) error
	walk = func(g Formula, underForall bool) error {
		switch t := g.(type) {
		case Atom, Equal:
			return nil
		case Not:
			return walk(t.F, underForall)
		case And:
			for _, h := range t.Fs {
				if err := walk(h, underForall); err != nil {
					return err
				}
			}
			return nil
		case Or:
			for _, h := range t.Fs {
				if err := walk(h, underForall); err != nil {
					return err
				}
			}
			return nil
		case Exists:
			if underForall {
				return fmt.Errorf("fol: ∃%v under a universal quantifier: not in ∃*∀*FO", t.Vars)
			}
			count += len(t.Vars)
			return walk(t.F, underForall)
		case Forall:
			return walk(t.F, true)
		}
		return fmt.Errorf("fol: unknown formula node %T", g)
	}
	if err := walk(f, false); err != nil {
		return 0, err
	}
	return count, nil
}

// countOuterExistentials counts existential variables not in the scope of a
// universal quantifier (assumes NNF).
func countOuterExistentials(f Formula) int {
	var walk func(g Formula, underForall bool) int
	walk = func(g Formula, underForall bool) int {
		switch t := g.(type) {
		case Not:
			return walk(t.F, underForall)
		case And:
			n := 0
			for _, h := range t.Fs {
				n += walk(h, underForall)
			}
			return n
		case Or:
			n := 0
			for _, h := range t.Fs {
				n += walk(h, underForall)
			}
			return n
		case Exists:
			n := 0
			if !underForall {
				n = len(t.Vars)
			}
			return n + walk(t.F, underForall)
		case Forall:
			return walk(t.F, true)
		}
		return 0
	}
	return walk(f, false)
}

// Eval evaluates a closed formula (no free variables after env) over finite
// structure: fixed predicate extensions plus an explicit finite domain.
// Quantifiers range over the domain. It is the reference semantics used by
// the property tests.
func Eval(f Formula, rels map[string]*relation.Rel, domain []relation.Const, env map[string]relation.Const) bool {
	switch t := f.(type) {
	case Atom:
		tup := make(relation.Tuple, len(t.Args))
		for i, a := range t.Args {
			if a.Var {
				tup[i] = env[a.Name]
			} else {
				tup[i] = relation.Const(a.Name)
			}
		}
		return rels[t.Pred].Has(tup)
	case Equal:
		l, r := termVal(t.L, env), termVal(t.R, env)
		return l == r
	case Not:
		return !Eval(t.F, rels, domain, env)
	case And:
		for _, g := range t.Fs {
			if !Eval(g, rels, domain, env) {
				return false
			}
		}
		return true
	case Or:
		for _, g := range t.Fs {
			if Eval(g, rels, domain, env) {
				return true
			}
		}
		return false
	case Exists:
		return evalQuant(t.Vars, t.F, rels, domain, env, false)
	case Forall:
		return evalQuant(t.Vars, t.F, rels, domain, env, true)
	}
	panic(fmt.Sprintf("fol: unknown formula node %T", f))
}

func evalQuant(vars []string, body Formula, rels map[string]*relation.Rel, domain []relation.Const, env map[string]relation.Const, forall bool) bool {
	if len(vars) == 0 {
		return Eval(body, rels, domain, env)
	}
	v, rest := vars[0], vars[1:]
	old, had := env[v]
	defer func() {
		if had {
			env[v] = old
		} else {
			delete(env, v)
		}
	}()
	for _, d := range domain {
		env[v] = d
		r := evalQuant(rest, body, rels, domain, env, forall)
		if forall && !r {
			return false
		}
		if !forall && r {
			return true
		}
	}
	return forall
}

func termVal(t dlog.Term, env map[string]relation.Const) relation.Const {
	if t.Var {
		return env[t.Name]
	}
	return relation.Const(t.Name)
}
