package fol

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/dlog"
	"repro/internal/relation"
	"repro/internal/sat"
)

// WitnessPrefix begins the names of the fresh witness elements added to the
// domain by the small-model construction. The '?' keeps them disjoint from
// every parseable constant.
const WitnessPrefix = "?w"

// Problem is a finite-satisfiability question for a closed ∃*∀*FO sentence.
type Problem struct {
	// Formula is the closed sentence to test. It may use arbitrary
	// ∧/∨/¬/→ structure as long as, after NNF, no existential quantifier
	// falls under a universal one.
	Formula Formula
	// Fixed maps predicate names to closed-world finite extensions (e.g.
	// the product database): an atom over Fixed is true iff the tuple is
	// present.
	Fixed map[string]*relation.Rel
	// Free maps predicate names to arities; their extensions over the
	// finite domain are chosen by the solver (e.g. the unknown inputs).
	Free map[string]int
	// ExtraConsts adds constants to the domain beyond those in the formula
	// and the fixed relations.
	ExtraConsts []relation.Const
	// Witnesses overrides the number of fresh witness elements; 0 means
	// max(1, number of existential variables), the paper's bound.
	Witnesses int
	// FiniteDomain admits sentences outside the Bernays–Schönfinkel class
	// (existential quantifiers under universal ones) by expanding the inner
	// existentials disjunctively over the finite domain. The answer is then
	// satisfiability over that explicit domain — sound and complete for BS
	// sentences, but only a bounded check for ∀∃ sentences, whose
	// small-model property does not hold in general. Witness elements are
	// allocated for the outer existentials only.
	FiniteDomain bool
	// MaxConflicts bounds the SAT search (0 = unlimited); exceeding it
	// yields Status Unknown.
	MaxConflicts int64
	// Context, when non-nil, cancels in-flight work: grounding polls it
	// periodically (returning the context's error), and the SAT search is
	// interrupted (returning Status Unknown). Callers distinguish budget
	// exhaustion from cancellation by checking Context.Err after an Unknown
	// result.
	Context context.Context
	// Tag is an opaque scope label ignored by the solver but included in
	// memoization keys built over the problem. Callers that share one cache
	// across different problem generators (e.g. verify's per-machine
	// translations, which erase the machine into formula structure) set it
	// to the generators' identity so structurally identical problems from
	// different sources never alias.
	Tag string
}

// Result reports the outcome of Solve.
type Result struct {
	// Status is Sat, Unsat, or Unknown (budget exhausted).
	Status sat.Status
	// Domain is the finite universe used (constants plus witnesses).
	Domain []relation.Const
	// Model holds chosen extensions for the free predicates (Sat only).
	Model map[string]*relation.Rel
	// Witness maps each (alpha-renamed) existential variable to its chosen
	// domain element (Sat only).
	Witness map[string]relation.Const
	// Vars and Clauses are grounding statistics.
	Vars, Clauses int
}

// Solve decides finite satisfiability of the problem by grounding to CNF
// and running the CDCL solver. See the package comment for semantics.
func Solve(p *Problem) (*Result, error) {
	if p.Context != nil {
		if err := p.Context.Err(); err != nil {
			return nil, err
		}
	}
	f := RenameBound(NNF(p.Formula))
	if fv := FreeVars(f); len(fv) > 0 {
		return nil, fmt.Errorf("fol: sentence has free variables %v", fv)
	}
	var nExists int
	if p.FiniteDomain {
		nExists = countOuterExistentials(f)
	} else {
		var err error
		nExists, err = CheckBS(f)
		if err != nil {
			return nil, err
		}
	}
	// Check predicate usage against Fixed/Free declarations.
	for pred, arity := range Preds(f) {
		if r, ok := p.Fixed[pred]; ok {
			if r != nil && r.Len() > 0 && r.Arity() != arity {
				return nil, fmt.Errorf("fol: %s used with arity %d, fixed relation has arity %d", pred, arity, r.Arity())
			}
			continue
		}
		if a, ok := p.Free[pred]; ok {
			if a != arity {
				return nil, fmt.Errorf("fol: %s used with arity %d, declared free with arity %d", pred, arity, a)
			}
			continue
		}
		return nil, fmt.Errorf("fol: predicate %s is neither fixed nor free", pred)
	}

	// Assemble the domain: formula constants, fixed-relation active domain,
	// extra constants, then witnesses.
	domSet := make(map[relation.Const]bool)
	for _, c := range Constants(f) {
		domSet[c] = true
	}
	for _, r := range p.Fixed {
		if r == nil {
			continue
		}
		for _, t := range r.Tuples() {
			for _, c := range t {
				domSet[c] = true
			}
		}
	}
	for _, c := range p.ExtraConsts {
		domSet[c] = true
	}
	var domain []relation.Const
	for c := range domSet {
		domain = append(domain, c)
	}
	sort.Slice(domain, func(i, j int) bool { return domain[i] < domain[j] })
	w := p.Witnesses
	if w == 0 {
		w = nExists
		if w == 0 {
			w = 1
		}
	}
	for i := 1; i <= w; i++ {
		domain = append(domain, relation.Const(fmt.Sprintf("%s%d", WitnessPrefix, i)))
	}

	g := &grounder{
		solver: sat.New(),
		fixed:  p.Fixed,
		free:   p.Free,
		domain: domain,
		domIdx: make(map[relation.Const]int, len(domain)),
		atoms:  make(map[string]int),
		sels:   make(map[string][]int),
		ctx:    p.Context,
	}
	for i, d := range domain {
		g.domIdx[d] = i
	}
	g.trueVar = g.solver.NewVar()
	if err := g.solver.AddClause(g.trueVar); err != nil {
		return nil, err
	}
	root, err := g.lit(f, map[string]gterm{}, false)
	if err != nil {
		return nil, err
	}
	if err := g.solver.AddClause(root); err != nil {
		return nil, err
	}
	res := &Result{Domain: domain, Vars: g.solver.NumVars(), Clauses: g.solver.NumClauses()}
	if ctx := p.Context; ctx != nil {
		g.solver.SetInterrupt(func() bool { return ctx.Err() != nil })
	}
	if p.MaxConflicts > 0 {
		res.Status = g.solver.SolveBudget(p.MaxConflicts)
	} else {
		res.Status = g.solver.Solve()
	}
	if res.Status != sat.Sat {
		return res, nil
	}
	// Extract the model of the free predicates.
	res.Model = make(map[string]*relation.Rel, len(p.Free))
	for pred, arity := range p.Free {
		res.Model[pred] = relation.NewRel(arity)
	}
	for key, v := range g.atoms {
		if !g.solver.Value(v) {
			continue
		}
		pred, tuple := decodeAtomKey(key)
		res.Model[pred].Add(tuple)
	}
	// Extract existential witnesses.
	res.Witness = make(map[string]relation.Const)
	for x, vars := range g.sels {
		for i, v := range vars {
			if g.solver.Value(v) {
				res.Witness[x] = domain[i]
				break
			}
		}
	}
	return res, nil
}

// gterm is a grounded term during encoding: either a concrete constant or a
// selector-encoded existential variable.
type gterm struct {
	c   relation.Const
	sel string // non-empty: name of an existential variable
}

type grounder struct {
	solver  *sat.Solver
	fixed   map[string]*relation.Rel
	free    map[string]int
	domain  []relation.Const
	domIdx  map[relation.Const]int
	trueVar int
	// atoms caches SAT variables for ground atoms of free predicates,
	// keyed by pred + tuple.
	atoms map[string]int
	// sels maps each existential variable to its selector variables, one
	// per domain element, under an exactly-one constraint.
	sels map[string][]int
	// ctx, when non-nil, is polled every groundPollEvery encoding steps so
	// that a cancelled caller does not wait out an exponential grounding.
	ctx context.Context
	ops uint
}

// groundPollEvery is the number of encoding steps between context polls
// during grounding.
const groundPollEvery = 1024

// poll checks the grounding context every groundPollEvery calls.
func (g *grounder) poll() error {
	if g.ctx == nil {
		return nil
	}
	g.ops++
	if g.ops%groundPollEvery == 0 {
		return g.ctx.Err()
	}
	return nil
}

func atomKey(pred string, t relation.Tuple) string {
	var b strings.Builder
	b.WriteString(pred)
	for _, c := range t {
		b.WriteByte(1)
		b.WriteString(string(c))
	}
	return b.String()
}

func decodeAtomKey(key string) (string, relation.Tuple) {
	parts := strings.Split(key, "\x01")
	t := make(relation.Tuple, len(parts)-1)
	for i, p := range parts[1:] {
		t[i] = relation.Const(p)
	}
	return parts[0], t
}

// groundAtomLit returns the literal for a fully ground atom: a truth
// constant for fixed predicates, a cached SAT variable for free ones.
func (g *grounder) groundAtomLit(pred string, t relation.Tuple) (int, error) {
	if r, ok := g.fixed[pred]; ok {
		if r.Has(t) {
			return g.trueVar, nil
		}
		return -g.trueVar, nil
	}
	if _, ok := g.free[pred]; !ok {
		return 0, fmt.Errorf("fol: undeclared predicate %s", pred)
	}
	key := atomKey(pred, t)
	if v, ok := g.atoms[key]; ok {
		return v, nil
	}
	v := g.solver.NewVar()
	g.atoms[key] = v
	return v, nil
}

// selectors allocates (once) the selector variables for existential
// variable x with the exactly-one constraint.
func (g *grounder) selectors(x string) []int {
	if vs, ok := g.sels[x]; ok {
		return vs
	}
	vs := make([]int, len(g.domain))
	for i := range vs {
		vs[i] = g.solver.NewVar()
	}
	// At least one.
	g.solver.AddClause(vs...)
	// At most one (pairwise).
	for i := 0; i < len(vs); i++ {
		for j := i + 1; j < len(vs); j++ {
			g.solver.AddClause(-vs[i], -vs[j])
		}
	}
	g.sels[x] = vs
	return vs
}

func (g *grounder) domainIndex(c relation.Const) int {
	if i, ok := g.domIdx[c]; ok {
		return i
	}
	return -1
}

// lit encodes the formula under the environment and returns a literal that
// is (for the positive-polarity occurrences NNF guarantees for ∃, and full
// equivalence elsewhere) equivalent to the formula's truth. underForall
// tracks quantifier nesting: existentials inside a universal scope are
// expanded disjunctively over the domain (finite-domain semantics) rather
// than selector-encoded, since their witness may depend on the universal
// instantiation.
func (g *grounder) lit(f Formula, env map[string]gterm, underForall bool) (int, error) {
	if err := g.poll(); err != nil {
		return 0, err
	}
	switch t := f.(type) {
	case Atom:
		return g.atomLit(t, env)
	case Equal:
		return g.eqLit(t, env)
	case Not:
		l, err := g.lit(t.F, env, underForall)
		if err != nil {
			return 0, err
		}
		return -l, nil
	case And:
		var lits []int
		for _, h := range t.Fs {
			l, err := g.lit(h, env, underForall)
			if err != nil {
				return 0, err
			}
			if l == g.trueVar {
				continue
			}
			if l == -g.trueVar {
				return -g.trueVar, nil
			}
			lits = append(lits, l)
		}
		return g.andLit(lits), nil
	case Or:
		var lits []int
		for _, h := range t.Fs {
			l, err := g.lit(h, env, underForall)
			if err != nil {
				return 0, err
			}
			if l == -g.trueVar {
				continue
			}
			if l == g.trueVar {
				return g.trueVar, nil
			}
			lits = append(lits, l)
		}
		return g.orLit(lits), nil
	case Forall:
		return g.forallLit(t.Vars, t.F, env)
	case Exists:
		if underForall {
			return g.expandExists(t.Vars, t.F, env)
		}
		nenv := cloneEnv(env)
		for _, x := range t.Vars {
			g.selectors(x)
			nenv[x] = gterm{sel: x}
		}
		return g.lit(t.F, nenv, underForall)
	}
	return 0, fmt.Errorf("fol: unknown formula node %T", f)
}

// expandExists grounds ∃x̄ φ as the disjunction over all domain assignments
// of x̄ (used under universal scope, where selector encoding is unsound).
func (g *grounder) expandExists(vars []string, body Formula, env map[string]gterm) (int, error) {
	var lits []int
	var rec func(i int, env map[string]gterm) error
	rec = func(i int, env map[string]gterm) error {
		if i == len(vars) {
			l, err := g.lit(body, env, true)
			if err != nil {
				return err
			}
			lits = append(lits, l)
			return nil
		}
		for _, d := range g.domain {
			nenv := cloneEnv(env)
			nenv[vars[i]] = gterm{c: d}
			if err := rec(i+1, nenv); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(0, env); err != nil {
		return 0, err
	}
	var kept []int
	for _, l := range lits {
		if l == -g.trueVar {
			continue
		}
		if l == g.trueVar {
			return g.trueVar, nil
		}
		kept = append(kept, l)
	}
	return g.orLit(kept), nil
}

func cloneEnv(env map[string]gterm) map[string]gterm {
	n := make(map[string]gterm, len(env)+2)
	for k, v := range env {
		n[k] = v
	}
	return n
}

func (g *grounder) forallLit(vars []string, body Formula, env map[string]gterm) (int, error) {
	var lits []int
	var rec func(i int, env map[string]gterm) error
	rec = func(i int, env map[string]gterm) error {
		if i == len(vars) {
			l, err := g.lit(body, env, true)
			if err != nil {
				return err
			}
			lits = append(lits, l)
			return nil
		}
		for _, d := range g.domain {
			nenv := cloneEnv(env)
			nenv[vars[i]] = gterm{c: d}
			if err := rec(i+1, nenv); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(0, env); err != nil {
		return 0, err
	}
	// Simplify constants.
	var kept []int
	for _, l := range lits {
		if l == g.trueVar {
			continue
		}
		if l == -g.trueVar {
			return -g.trueVar, nil
		}
		kept = append(kept, l)
	}
	return g.andLit(kept), nil
}

// andLit Tseitin-defines a literal equivalent to the conjunction of lits.
func (g *grounder) andLit(lits []int) int {
	switch len(lits) {
	case 0:
		return g.trueVar
	case 1:
		return lits[0]
	}
	a := g.solver.NewVar()
	long := make([]int, 0, len(lits)+1)
	for _, l := range lits {
		g.solver.AddClause(-a, l)
		long = append(long, -l)
	}
	long = append(long, a)
	g.solver.AddClause(long...)
	return a
}

// orLit Tseitin-defines a literal equivalent to the disjunction of lits.
func (g *grounder) orLit(lits []int) int {
	switch len(lits) {
	case 0:
		return -g.trueVar
	case 1:
		return lits[0]
	}
	a := g.solver.NewVar()
	long := make([]int, 0, len(lits)+1)
	for _, l := range lits {
		g.solver.AddClause(a, -l)
		long = append(long, l)
	}
	long = append(long, -a)
	g.solver.AddClause(long...)
	return a
}

// resolveArgs splits the atom's arguments into concrete constants and
// selector variables under env.
func resolveArgs(args []dlog.Term, env map[string]gterm) ([]gterm, error) {
	out := make([]gterm, len(args))
	for i, a := range args {
		if !a.Var {
			out[i] = gterm{c: relation.Const(a.Name)}
			continue
		}
		gt, ok := env[a.Name]
		if !ok {
			return nil, fmt.Errorf("fol: unbound variable %s", a.Name)
		}
		out[i] = gt
	}
	return out, nil
}

// atomLit encodes R(t̄) where t̄ may mix constants and selector variables.
// With s distinct selector variables the encoding enumerates the |D|^s
// assignments; each contributes two clauses defining the aux literal.
func (g *grounder) atomLit(a Atom, env map[string]gterm) (int, error) {
	gts, err := resolveArgs(a.Args, env)
	if err != nil {
		return 0, err
	}
	// Distinct selector variables, in order of first occurrence.
	var sels []string
	seen := map[string]bool{}
	for _, gt := range gts {
		if gt.sel != "" && !seen[gt.sel] {
			seen[gt.sel] = true
			sels = append(sels, gt.sel)
		}
	}
	if len(sels) == 0 {
		t := make(relation.Tuple, len(gts))
		for i, gt := range gts {
			t[i] = gt.c
		}
		return g.groundAtomLit(a.Pred, t)
	}
	aux := g.solver.NewVar()
	assign := make(map[string]relation.Const, len(sels))
	var rec func(i int) error
	rec = func(i int) error {
		if i == len(sels) {
			if err := g.poll(); err != nil {
				return err
			}
			t := make(relation.Tuple, len(gts))
			for j, gt := range gts {
				if gt.sel != "" {
					t[j] = assign[gt.sel]
				} else {
					t[j] = gt.c
				}
			}
			ground, err := g.groundAtomLit(a.Pred, t)
			if err != nil {
				return err
			}
			// combo ∧ ground → aux ; combo ∧ ¬ground → ¬aux
			combo := make([]int, 0, len(sels)+2)
			for _, x := range sels {
				combo = append(combo, -g.sels[x][g.domainIndex(assign[x])])
			}
			if ground == g.trueVar {
				g.solver.AddClause(append(append([]int{}, combo...), aux)...)
			} else if ground == -g.trueVar {
				g.solver.AddClause(append(append([]int{}, combo...), -aux)...)
			} else {
				g.solver.AddClause(append(append([]int{}, combo...), -ground, aux)...)
				g.solver.AddClause(append(append([]int{}, combo...), ground, -aux)...)
			}
			return nil
		}
		for _, d := range g.domain {
			assign[sels[i]] = d
			if err := rec(i + 1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(0); err != nil {
		return 0, err
	}
	return aux, nil
}

// eqLit encodes t = u under env.
func (g *grounder) eqLit(e Equal, env map[string]gterm) (int, error) {
	gts, err := resolveArgs([]dlog.Term{e.L, e.R}, env)
	if err != nil {
		return 0, err
	}
	l, r := gts[0], gts[1]
	switch {
	case l.sel == "" && r.sel == "":
		if l.c == r.c {
			return g.trueVar, nil
		}
		return -g.trueVar, nil
	case l.sel != "" && r.sel == "":
		i := g.domainIndex(r.c)
		if i < 0 {
			return -g.trueVar, nil
		}
		return g.sels[l.sel][i], nil
	case l.sel == "" && r.sel != "":
		i := g.domainIndex(l.c)
		if i < 0 {
			return -g.trueVar, nil
		}
		return g.sels[r.sel][i], nil
	default:
		if l.sel == r.sel {
			return g.trueVar, nil
		}
		aux := g.solver.NewVar()
		sx, sy := g.sels[l.sel], g.sels[r.sel]
		for i := range g.domain {
			// sx_i ∧ sy_i → aux
			g.solver.AddClause(-sx[i], -sy[i], aux)
			for j := range g.domain {
				if i != j {
					// sx_i ∧ sy_j → ¬aux
					g.solver.AddClause(-sx[i], -sy[j], -aux)
				}
			}
		}
		return aux, nil
	}
}
