package fol

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dlog"
	"repro/internal/relation"
	"repro/internal/sat"
)

func x(name string) dlog.Term  { return dlog.V(name) }
func cs(name string) dlog.Term { return dlog.C(name) }

func rel(arity int, tuples ...relation.Tuple) *relation.Rel {
	r := relation.NewRel(arity)
	for _, t := range tuples {
		r.Add(t)
	}
	return r
}

func TestNNFDeMorgan(t *testing.T) {
	f := NotF(AndF(AtomF("p", x("X")), NotF(AtomF("q", x("X")))))
	g := NNF(Forall{Vars: []string{"X"}, F: f})
	// Evaluate both on a small structure to confirm equivalence.
	rels := map[string]*relation.Rel{
		"p": rel(1, relation.Tuple{"a"}),
		"q": rel(1, relation.Tuple{"a"}, relation.Tuple{"b"}),
	}
	dom := []relation.Const{"a", "b"}
	orig := Eval(Forall{Vars: []string{"X"}, F: f}, rels, dom, map[string]relation.Const{})
	conv := Eval(g, rels, dom, map[string]relation.Const{})
	if orig != conv {
		t.Errorf("NNF changed semantics: %v vs %v", orig, conv)
	}
	// The NNF result must not contain Not over composite formulas.
	var check func(h Formula) bool
	check = func(h Formula) bool {
		switch u := h.(type) {
		case Not:
			switch u.F.(type) {
			case Atom, Equal:
				return true
			default:
				return false
			}
		case And:
			for _, v := range u.Fs {
				if !check(v) {
					return false
				}
			}
		case Or:
			for _, v := range u.Fs {
				if !check(v) {
					return false
				}
			}
		case Exists:
			return check(u.F)
		case Forall:
			return check(u.F)
		}
		return true
	}
	if !check(g) {
		t.Errorf("not in NNF: %s", g)
	}
}

func TestCheckBS(t *testing.T) {
	ok := ExistsF([]string{"X"}, ForallF([]string{"Y"}, OrF(AtomF("p", x("X")), NotF(AtomF("p", x("Y"))))))
	if n, err := CheckBS(ok); err != nil || n != 1 {
		t.Errorf("CheckBS = %d, %v", n, err)
	}
	bad := ForallF([]string{"Y"}, ExistsF([]string{"X"}, AtomF("r", x("X"), x("Y"))))
	if _, err := CheckBS(bad); err == nil {
		t.Error("∀∃ accepted as BS")
	}
}

func TestSolveSimpleSat(t *testing.T) {
	// ∃x p(x) with p free: satisfiable, witness in model.
	res, err := Solve(&Problem{
		Formula: ExistsF([]string{"X"}, AtomF("p", x("X"))),
		Free:    map[string]int{"p": 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != sat.Sat {
		t.Fatalf("status = %v", res.Status)
	}
	if res.Model["p"].Len() == 0 {
		t.Error("model has empty p despite ∃x p(x)")
	}
}

func TestSolveSimpleUnsat(t *testing.T) {
	// ∃x p(x) ∧ ∀y ¬p(y): unsatisfiable.
	f := AndF(
		ExistsF([]string{"X"}, AtomF("p", x("X"))),
		ForallF([]string{"Y"}, NotF(AtomF("p", x("Y")))),
	)
	res, err := Solve(&Problem{Formula: f, Free: map[string]int{"p": 1}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != sat.Unsat {
		t.Fatalf("status = %v, want Unsat", res.Status)
	}
}

func TestSolveFixedPredicates(t *testing.T) {
	price := rel(2,
		relation.Tuple{"time", "855"},
		relation.Tuple{"newsweek", "845"},
	)
	// ∃x,y price(x,y) ∧ y = 845 — satisfiable with x=newsweek.
	f := ExistsF([]string{"X", "Y"}, AndF(
		AtomF("price", x("X"), x("Y")),
		Eq(x("Y"), cs("845")),
	))
	res, err := Solve(&Problem{Formula: f, Fixed: map[string]*relation.Rel{"price": price}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != sat.Sat {
		t.Fatalf("status = %v", res.Status)
	}
	// ∃x price(x, 999) — unsatisfiable (closed world).
	g := ExistsF([]string{"X"}, AtomF("price", x("X"), cs("999")))
	res2, err := Solve(&Problem{Formula: g, Fixed: map[string]*relation.Rel{"price": price}})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Status != sat.Unsat {
		t.Fatalf("closed world violated: %v", res2.Status)
	}
}

func TestSolveWitnessDistinctFromConstants(t *testing.T) {
	// ∃x (x ≠ a ∧ x ≠ b ∧ p(x)): needs a fresh witness element.
	f := ExistsF([]string{"X"}, AndF(
		Neq(x("X"), cs("a")),
		Neq(x("X"), cs("b")),
		AtomF("p", x("X")),
	))
	res, err := Solve(&Problem{
		Formula:     f,
		Free:        map[string]int{"p": 1},
		ExtraConsts: []relation.Const{"a", "b"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != sat.Sat {
		t.Fatalf("status = %v; small-model witnesses missing", res.Status)
	}
}

func TestSolveUniversalInclusion(t *testing.T) {
	// ∀x,y (r(x,y) → (x=a ∧ y=b)) ∧ ∃x,y r(x,y):
	// forces r = {(a,b)}.
	f := AndF(
		ForallF([]string{"X", "Y"}, Implies(
			AtomF("r", x("X"), x("Y")),
			AndF(Eq(x("X"), cs("a")), Eq(x("Y"), cs("b"))),
		)),
		ExistsF([]string{"U", "V"}, AtomF("r", x("U"), x("V"))),
	)
	res, err := Solve(&Problem{Formula: f, Free: map[string]int{"r": 2}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != sat.Sat {
		t.Fatalf("status = %v", res.Status)
	}
	r := res.Model["r"]
	if r.Len() != 1 || !r.Has(relation.Tuple{"a", "b"}) {
		t.Errorf("model r = %s, want {(a,b)}", r)
	}
}

func TestSolveEqualityBetweenExistentials(t *testing.T) {
	// ∃x ∃y (x = y ∧ p(x) ∧ ¬q(y)) with p,q free — satisfiable.
	f := ExistsF([]string{"X", "Y"}, AndF(
		Eq(x("X"), x("Y")),
		AtomF("p", x("X")),
		NotF(AtomF("q", x("Y"))),
	))
	res, err := Solve(&Problem{Formula: f, Free: map[string]int{"p": 1, "q": 1}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != sat.Sat {
		t.Fatalf("status = %v", res.Status)
	}
	// ∃x,y (x=y ∧ x≠y) — unsatisfiable.
	g := ExistsF([]string{"X", "Y"}, AndF(Eq(x("X"), x("Y")), Neq(x("X"), x("Y"))))
	res2, err := Solve(&Problem{Formula: g})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Status != sat.Unsat {
		t.Fatalf("x=y ∧ x≠y = %v", res2.Status)
	}
}

func TestSolveErrors(t *testing.T) {
	// Free variable.
	if _, err := Solve(&Problem{Formula: AtomF("p", x("X")), Free: map[string]int{"p": 1}}); err == nil {
		t.Error("free variable accepted")
	}
	// Undeclared predicate.
	if _, err := Solve(&Problem{Formula: ExistsF([]string{"X"}, AtomF("p", x("X")))}); err == nil {
		t.Error("undeclared predicate accepted")
	}
	// Arity mismatch with declaration.
	if _, err := Solve(&Problem{
		Formula: ExistsF([]string{"X"}, AtomF("p", x("X"))),
		Free:    map[string]int{"p": 2},
	}); err == nil {
		t.Error("arity mismatch accepted")
	}
	// Not BS.
	bad := ForallF([]string{"Y"}, ExistsF([]string{"X"}, AtomF("r", x("X"), x("Y"))))
	if _, err := Solve(&Problem{Formula: bad, Free: map[string]int{"r": 2}}); err == nil {
		t.Error("∀∃ sentence accepted")
	}
}

func TestRenameBoundUnique(t *testing.T) {
	f := AndF(
		ExistsF([]string{"X"}, AtomF("p", x("X"))),
		ExistsF([]string{"X"}, AtomF("q", x("X"))),
	)
	g := RenameBound(f)
	names := map[string]bool{}
	var walk func(h Formula)
	walk = func(h Formula) {
		switch u := h.(type) {
		case Exists:
			for _, v := range u.Vars {
				if names[v] {
					t.Errorf("duplicate bound variable %s after RenameBound", v)
				}
				names[v] = true
			}
			walk(u.F)
		case Forall:
			walk(u.F)
		case And:
			for _, w := range u.Fs {
				walk(w)
			}
		case Or:
			for _, w := range u.Fs {
				walk(w)
			}
		case Not:
			walk(u.F)
		}
	}
	walk(g)
	if len(names) != 2 {
		t.Errorf("expected 2 bound vars, got %d", len(names))
	}
}

// randomBSFormula builds a random closed BS sentence over unary/binary free
// predicates p/1, r/2 and constants {a,b}.
func randomBSFormula(rnd *rand.Rand, depth int, scope []string) Formula {
	mkTerm := func() dlog.Term {
		if len(scope) > 0 && rnd.Intn(2) == 0 {
			return x(scope[rnd.Intn(len(scope))])
		}
		return cs([]string{"a", "b"}[rnd.Intn(2)])
	}
	atom := func() Formula {
		var f Formula
		if rnd.Intn(3) == 0 {
			f = Eq(mkTerm(), mkTerm())
		} else if rnd.Intn(2) == 0 {
			f = AtomF("p", mkTerm())
		} else {
			f = AtomF("r", mkTerm(), mkTerm())
		}
		if rnd.Intn(2) == 0 {
			f = NotF(f)
		}
		return f
	}
	if depth == 0 {
		return atom()
	}
	switch rnd.Intn(3) {
	case 0:
		return AndF(randomBSFormula(rnd, depth-1, scope), randomBSFormula(rnd, depth-1, scope))
	case 1:
		return OrF(randomBSFormula(rnd, depth-1, scope), randomBSFormula(rnd, depth-1, scope))
	default:
		return atom()
	}
}

// TestPropSolveMatchesBruteForce cross-checks the grounder against explicit
// enumeration of all free-predicate extensions over the same finite domain.
func TestPropSolveMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		// Random prefix: k existentials then m universals over the matrix.
		k, m := rnd.Intn(2), rnd.Intn(2)
		var evs, uvs []string
		for i := 0; i < k; i++ {
			evs = append(evs, []string{"X", "Y"}[i])
		}
		for i := 0; i < m; i++ {
			uvs = append(uvs, []string{"U", "V"}[i])
		}
		matrix := randomBSFormula(rnd, 2, append(append([]string{}, evs...), uvs...))
		sentence := ExistsF(evs, ForallF(uvs, matrix))
		res, err := Solve(&Problem{
			Formula: sentence,
			Free:    map[string]int{"p": 1, "r": 2},
		})
		if err != nil {
			t.Logf("solve error: %v", err)
			return false
		}
		got := res.Status == sat.Sat
		want := bruteForceSatisfiable(sentence, res.Domain)
		if got != want {
			t.Logf("mismatch on %s over %v: solver=%v brute=%v", sentence, res.Domain, got, want)
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// bruteForceSatisfiable enumerates all extensions of p/1 and r/2 over the
// domain and evaluates the sentence directly.
func bruteForceSatisfiable(f Formula, domain []relation.Const) bool {
	n := len(domain)
	nP := n
	nR := n * n
	if nP+nR > 20 {
		panic("domain too large for brute force")
	}
	for mask := 0; mask < 1<<(nP+nR); mask++ {
		p := relation.NewRel(1)
		r := relation.NewRel(2)
		for i := 0; i < nP; i++ {
			if mask&(1<<i) != 0 {
				p.Add(relation.Tuple{domain[i]})
			}
		}
		for i := 0; i < nR; i++ {
			if mask&(1<<(nP+i)) != 0 {
				r.Add(relation.Tuple{domain[i/n], domain[i%n]})
			}
		}
		rels := map[string]*relation.Rel{"p": p, "r": r}
		if Eval(f, rels, domain, map[string]relation.Const{}) {
			return true
		}
	}
	return false
}

// TestPropModelSatisfiesFormula: whenever the solver reports Sat, evaluating
// the formula over the extracted model must yield true.
func TestPropModelSatisfiesFormula(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		evs := []string{"X"}
		uvs := []string{"U"}
		matrix := randomBSFormula(rnd, 2, []string{"X", "U"})
		sentence := ExistsF(evs, ForallF(uvs, matrix))
		res, err := Solve(&Problem{
			Formula: sentence,
			Free:    map[string]int{"p": 1, "r": 2},
		})
		if err != nil || res.Status != sat.Sat {
			return true // nothing to check
		}
		rels := map[string]*relation.Rel{"p": res.Model["p"], "r": res.Model["r"]}
		return Eval(sentence, rels, res.Domain, map[string]relation.Const{})
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestSolveStatsPopulated(t *testing.T) {
	res, err := Solve(&Problem{
		Formula: ExistsF([]string{"X"}, AtomF("p", x("X"))),
		Free:    map[string]int{"p": 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Vars == 0 || res.Clauses == 0 {
		t.Errorf("stats empty: vars=%d clauses=%d", res.Vars, res.Clauses)
	}
}
