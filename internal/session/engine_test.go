package session

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/models"
	"repro/internal/relation"
)

// memEngine returns an in-memory engine, shut down at test end.
func memEngine(t *testing.T, shards int) *Engine {
	t.Helper()
	e, err := NewEngine(Config{Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Shutdown() })
	return e
}

// fig1Reference computes the Figure 1 run of SHORT with the offline
// executor; the serving engine must reproduce its outputs and logs exactly.
func fig1Reference(t *testing.T) ([]relation.Instance, relation.Sequence) {
	t.Helper()
	run, err := models.Short().Execute(models.MagazineDB(), models.Fig1Inputs())
	if err != nil {
		t.Fatal(err)
	}
	return run.Outputs, run.Logs
}

func TestSessionFig1(t *testing.T) {
	e := memEngine(t, 4)
	wantOut, wantLogs := fig1Reference(t)

	info, err := e.Open(&OpenRequest{Model: "short"})
	if err != nil {
		t.Fatal(err)
	}
	if info.Steps != 0 || info.Model != "short" {
		t.Fatalf("bad open info: %+v", info)
	}
	for i, in := range models.Fig1Inputs() {
		res, err := e.Input(info.ID, in)
		if err != nil {
			t.Fatalf("step %d: %v", i+1, err)
		}
		if res.Seq != i+1 {
			t.Errorf("step %d: seq %d", i+1, res.Seq)
		}
		if !res.Output.Equal(wantOut[i]) {
			t.Errorf("step %d output:\n got %s\nwant %s", i+1, res.Output, wantOut[i])
		}
		if !res.Log.Equal(wantLogs[i]) {
			t.Errorf("step %d log delta:\n got %s\nwant %s", i+1, res.Log, wantLogs[i])
		}
	}
	lr, err := e.Log(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !lr.Log.Equal(wantLogs) {
		t.Errorf("full log:\n got %s\nwant %s", lr.Log, wantLogs)
	}
	cr, err := e.Close(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if cr.Steps != 3 || !cr.Valid {
		t.Errorf("close: %+v", cr)
	}
	if _, err := e.Log(info.ID); !errors.As(err, new(*NotFoundError)) {
		t.Errorf("log after close: %v, want NotFoundError", err)
	}
}

func TestOpenValidation(t *testing.T) {
	e := memEngine(t, 2)
	cases := []*OpenRequest{
		{},                                  // neither model nor src
		{Model: "no-such-model"},            // unknown name
		{Model: "short", Src: "transducer"}, // both
		{Model: "short", Mode: "bogus"},     // bad mode
		{Src: "transducer broken\nschema\n  output: o/0;\noutput rules\n  o :- missing;\n"}, // bad inline program
	}
	for i, req := range cases {
		if _, err := e.Open(req); !errors.As(err, new(*BadInputError)) {
			t.Errorf("case %d: err = %v, want BadInputError", i, err)
		}
	}
	// Duplicate explicit ID conflicts.
	if _, err := e.Open(&OpenRequest{ID: "dup", Model: "short"}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Open(&OpenRequest{ID: "dup", Model: "short"}); !errors.As(err, new(*ConflictError)) {
		t.Errorf("duplicate open: %v, want ConflictError", err)
	}
}

func TestInputValidation(t *testing.T) {
	e := memEngine(t, 1)
	info, err := e.Open(&OpenRequest{Model: "short"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Input(info.ID, step(t, fact("nonsense", "x"))); !errors.As(err, new(*BadInputError)) {
		t.Errorf("unknown relation: %v, want BadInputError", err)
	}
	if _, err := e.Input(info.ID, step(t, fact("order", "a", "b"))); !errors.As(err, new(*BadInputError)) {
		t.Errorf("wrong arity: %v, want BadInputError", err)
	}
	if _, err := e.Input("missing", step(t)); !errors.As(err, new(*NotFoundError)) {
		t.Errorf("missing session: %v, want NotFoundError", err)
	}
	// A rejected input must not have advanced the session.
	info2, _ := e.Info(info.ID)
	if info2.Steps != 0 {
		t.Errorf("rejected inputs advanced the session to step %d", info2.Steps)
	}
}

// TestInlineProgram opens a session from inline source rather than the
// registry.
func TestInlineProgram(t *testing.T) {
	e := memEngine(t, 2)
	info, err := e.Open(&OpenRequest{Src: models.ShortSrc, DB: models.MagazineDB()})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Input(info.ID, step(t, fact("order", "time")))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Output.Has("sendbill", relation.Tuple{"time", "855"}) {
		t.Errorf("inline program output: %s", res.Output)
	}
}

// TestAcceptanceModes exercises the error-free discipline end to end: a
// guarded session flags an out-of-protocol payment.
func TestAcceptanceModes(t *testing.T) {
	e := memEngine(t, 2)
	info, err := e.Open(&OpenRequest{Model: "guarded", Mode: "error-free"})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Input(info.ID, step(t, fact("order", "time")))
	if err != nil || !res.Valid {
		t.Fatalf("clean step: valid=%v err=%v", res.Valid, err)
	}
	// Paying for an un-ordered product is an error under GUARDED.
	res, err = e.Input(info.ID, step(t, fact("pay", "newsweek", "845")))
	if err != nil {
		t.Fatal(err)
	}
	if res.Valid {
		t.Error("error step still reported valid")
	}
	cr, _ := e.Close(info.ID)
	if cr.Valid {
		t.Error("run with an error closed as valid")
	}
}

// TestConcurrentSessions drives many sessions from many goroutines and
// checks every one ends with exactly the per-session expected log. Run
// under -race this is also the data-race proof for the sharded engine.
func TestConcurrentSessions(t *testing.T) {
	e := memEngine(t, 4)
	const n = 64
	var wg sync.WaitGroup
	errs := make(chan error, n)
	_, wantLogs := fig1Reference(t)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id := fmt.Sprintf("sess-%03d", i)
			if _, err := e.Open(&OpenRequest{ID: id, Model: "short"}); err != nil {
				errs <- err
				return
			}
			for _, in := range models.Fig1Inputs() {
				if _, err := e.Input(id, in); err != nil {
					errs <- err
					return
				}
			}
			lr, err := e.Log(id)
			if err != nil {
				errs <- err
				return
			}
			if !lr.Log.Equal(wantLogs) {
				errs <- fmt.Errorf("%s: wrong log", id)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	st := e.Stats()
	if st.StepsTotal != n*3 || st.SessionsOpen != n {
		t.Errorf("stats: %+v", st)
	}
	infos, err := e.List()
	if err != nil || len(infos) != n {
		t.Errorf("List: %d sessions, err=%v", len(infos), err)
	}
}

// TestRecovery is the in-process crash test: an engine with a durable dir
// is abandoned without Shutdown (its WAL is fsynced per policy), and a
// fresh engine over the same dir must serve identical logs and accept
// further steps.
func TestRecovery(t *testing.T) {
	dir := t.TempDir()
	wantOut, wantLogs := fig1Reference(t)

	e1, err := NewEngine(Config{Dir: dir, Shards: 2, Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e1.Open(&OpenRequest{ID: "crashy", Model: "short"}); err != nil {
		t.Fatal(err)
	}
	inputs := models.Fig1Inputs()
	for _, in := range inputs[:2] {
		if _, err := e1.Input("crashy", in); err != nil {
			t.Fatal(err)
		}
	}
	// Crash: no Shutdown, no snapshot — recovery must come from the WAL
	// alone. (The file handles leak until test exit; that is the point.)

	e2, err := NewEngine(Config{Dir: dir, Shards: 2, Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Shutdown()
	lr, err := e2.Log("crashy")
	if err != nil {
		t.Fatal(err)
	}
	if !lr.Log.Equal(wantLogs[:2]) {
		t.Fatalf("recovered log:\n got %s\nwant %s", lr.Log, wantLogs[:2])
	}
	st := e2.Stats()
	if st.ReplayRecords == 0 {
		t.Error("no WAL records replayed")
	}
	// The revived session continues exactly where the crashed one stopped.
	res, err := e2.Input("crashy", inputs[2])
	if err != nil {
		t.Fatal(err)
	}
	if res.Seq != 3 || !res.Output.Equal(wantOut[2]) {
		t.Errorf("step after recovery: seq=%d output=%s", res.Seq, res.Output)
	}
	lr, _ = e2.Log("crashy")
	if !lr.Log.Equal(wantLogs) {
		t.Errorf("final log differs from uncrashed run:\n got %s\nwant %s", lr.Log, wantLogs)
	}
}

// TestSnapshotCompaction forces snapshots (tiny SnapshotEvery) and checks
// recovery from snapshot + rotated WAL, including a closed session staying
// closed.
func TestSnapshotCompaction(t *testing.T) {
	dir := t.TempDir()
	e1, err := NewEngine(Config{Dir: dir, Shards: 2, Fsync: FsyncAlways, SnapshotEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	_, wantLogs := fig1Reference(t)
	for _, id := range []string{"a", "b"} {
		if _, err := e1.Open(&OpenRequest{ID: id, Model: "short"}); err != nil {
			t.Fatal(err)
		}
		for _, in := range models.Fig1Inputs() {
			if _, err := e1.Input(id, in); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := e1.Close("b"); err != nil {
		t.Fatal(err)
	}
	if e1.Stats().Snapshots == 0 {
		t.Fatal("no snapshot was taken despite SnapshotEvery=2")
	}
	// Abandon without Shutdown; recover.
	e2, err := NewEngine(Config{Dir: dir, Shards: 2, Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Shutdown()
	lr, err := e2.Log("a")
	if err != nil {
		t.Fatal(err)
	}
	if !lr.Log.Equal(wantLogs) {
		t.Errorf("snapshot-recovered log differs:\n got %s\nwant %s", lr.Log, wantLogs)
	}
	if _, err := e2.Log("b"); !errors.As(err, new(*NotFoundError)) {
		t.Errorf("closed session resurrected: %v", err)
	}
}

// TestShutdownThenReopen checks the clean path: Shutdown snapshots, and a
// new engine starts from the snapshot with an empty WAL.
func TestShutdownThenReopen(t *testing.T) {
	dir := t.TempDir()
	e1, err := NewEngine(Config{Dir: dir, Shards: 3, Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e1.Open(&OpenRequest{ID: "s", Model: "subscription"}); err != nil {
		t.Fatal(err)
	}
	if _, err := e1.Input("s", step(t, fact("subscribe", "economist"))); err != nil {
		t.Fatal(err)
	}
	if err := e1.Shutdown(); err != nil {
		t.Fatal(err)
	}
	if _, err := e1.Open(&OpenRequest{Model: "short"}); err == nil {
		t.Error("open after Shutdown should fail")
	}
	e2, err := NewEngine(Config{Dir: dir, Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Shutdown()
	info, err := e2.Info("s")
	if err != nil || info.Steps != 1 {
		t.Fatalf("recovered info: %+v err=%v", info, err)
	}
	if e2.Stats().ReplayRecords != 0 {
		t.Errorf("clean shutdown left %d WAL records", e2.Stats().ReplayRecords)
	}
}

func TestShardRouting(t *testing.T) {
	e := memEngine(t, 8)
	// All shards reachable: with enough random IDs each shard should own at
	// least one session. (256 IDs across 8 shards: the chance a shard stays
	// empty is negligible, and the test is deterministic given NewID.)
	for i := 0; i < 256; i++ {
		if _, err := e.Open(&OpenRequest{Model: "short"}); err != nil {
			t.Fatal(err)
		}
	}
	counts := make(map[int]int)
	for _, sh := range e.shards {
		v, _ := e.send(sh, func(sh *shard) (any, error) { return len(sh.sessions), nil })
		counts[sh.idx] = v.(int)
	}
	for idx, c := range counts {
		if c == 0 {
			t.Errorf("shard %d owns no sessions", idx)
		}
	}
}
