package session

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"time"

	"repro/internal/codec"
	"repro/internal/compose"
	"repro/internal/core"
	"repro/internal/models"
	"repro/internal/relation"
)

// Network sessions: one session owning a whole compose.Network. Every
// POST /input advances all members one synchronous step under unit-delay
// wiring and appends ONE WAL record carrying the step's external inputs —
// the joint step is atomic by construction: either the whole network
// advances (all nodes, all wires) and the record is durable before the ack,
// or nothing happened. Replay re-steps the network deterministically, so a
// network session gets exactly the durability, crash-recovery, and handoff
// guarantees of a single-machine session, with the joint log (per-node log
// deltas plus wire traffic) as the semantically significant object.

// netResolver resolves registry model names inside network specs.
var netResolver compose.Resolver = models.Resolve

// netRun is the network counterpart of a Session's machine/state/log
// fields. The owning Session keeps its id, mode, step counter, acceptance
// flags, freeze mark, and rate bucket; this struct owns everything that is
// network-shaped.
type netRun struct {
	spec *compose.Spec
	nw   *compose.Network
	// joint is the per-step joint log: each entry holds every node's log
	// delta plus the wire traffic the step consumed. The durable object.
	joint []JointLogEntry
	// inputs is the sequence of external (client-supplied) inputs, the
	// session's replayable identity — wired inputs are recomputed.
	inputs []compose.StepInputs
	// past cumulates each node's consumed inputs (external ∪ wired), the
	// per-node verification-relevant state (see Peek).
	past map[string]relation.Instance
}

// JointLogEntry is one step of a network session's durable log: the
// restriction of every node's exchange to its log relations, plus the
// unit-delay wire traffic consumed this step.
type JointLogEntry struct {
	Logs compose.StepInputs  `json:"logs"`
	Wire []compose.WireDelta `json:"wire,omitempty"`
}

// newNetSession builds a network session from its spec: the spec is cloned
// and validated by building the network, so a bad spec is rejected before
// anything is logged.
func newNetSession(id string, req *OpenRequest, mode core.AcceptMode) (*Session, error) {
	if req.Model != "" || req.Src != "" {
		return nil, fmt.Errorf("open: network is mutually exclusive with model and src")
	}
	if req.DB != nil {
		return nil, fmt.Errorf("open: network nodes carry their own databases")
	}
	spec := req.Network.Clone()
	nw, err := spec.Build(netResolver)
	if err != nil {
		return nil, fmt.Errorf("open: %w", err)
	}
	nw.Start()
	return &Session{
		id:        id,
		mode:      mode,
		errorFree: true,
		okEvery:   true,
		net: &netRun{
			spec: spec,
			nw:   nw,
			past: make(map[string]relation.Instance),
		},
	}, nil
}

// validateNetInput rejects unknown nodes and unknown or wrongly-typed input
// relations before anything is logged, mirroring validateInput.
func (s *Session) validateNetInput(ext compose.StepInputs) error {
	for name, in := range ext {
		node := s.net.nw.Node(name)
		if node == nil {
			return fmt.Errorf("step %d: no node %s in network", s.steps+1, name)
		}
		for rel, r := range in {
			a, ok := node.M.Schema().In.Arity(rel)
			if !ok {
				return fmt.Errorf("step %d: %s is not an input relation of node %s", s.steps+1, rel, name)
			}
			if r.Len() > 0 && r.Arity() != a {
				return fmt.Errorf("step %d: node %s input %s has arity %d, schema says %d", s.steps+1, name, rel, r.Arity(), a)
			}
		}
	}
	return nil
}

// applyNet performs one validated joint transition: every node steps on its
// external inputs unioned with last step's wired outputs, the joint log
// entry is appended, and acceptance flags aggregate across nodes (any error
// fact breaks error-freeness; ok-every-step and accept-at-end require every
// node to emit ok / accept).
func (s *Session) applyNet(ext compose.StepInputs) (*StepResult, error) {
	if ext == nil {
		ext = compose.StepInputs{}
	}
	js, err := s.net.nw.StepOnce(ext)
	if err != nil {
		return nil, err
	}
	s.net.joint = append(s.net.joint, JointLogEntry{Logs: js.Logs, Wire: js.Wire})
	s.net.inputs = append(s.net.inputs, cloneStepInputs(ext))
	for name, in := range js.Consumed {
		p := s.net.past[name]
		if p == nil {
			p = relation.NewInstance()
			s.net.past[name] = p
		}
		p.UnionWith(in)
	}
	s.steps++
	allOK, allAccept := true, true
	for _, name := range s.net.nw.Nodes() {
		out := js.Outputs[name]
		if out.Rel(core.ErrorRel).Len() > 0 {
			s.errorFree = false
		}
		if out.Rel(core.OKRel).Len() == 0 {
			allOK = false
		}
		if out.Rel(core.AcceptRel).Len() == 0 {
			allAccept = false
		}
	}
	if !allOK {
		s.okEvery = false
	}
	s.lastAccept = allAccept
	// Clone what escapes the shard: js.Outputs doubles as the network's
	// unit-delay buffer and js.Logs/js.Wire as the durable joint log, so a
	// caller mutating the result must not reach them.
	wire := make([]compose.WireDelta, len(js.Wire))
	copy(wire, js.Wire)
	return &StepResult{
		ID:      s.id,
		Seq:     s.steps,
		Outputs: cloneStepInputs(js.Outputs),
		Logs:    cloneStepInputs(js.Logs),
		Wire:    wire,
		Valid:   s.valid(),
	}, nil
}

// NetInput feeds one joint step to a network session: external inputs
// addressed per node (absent nodes receive nothing; wired inputs arrive
// regardless). The whole joint step is durable (per the fsync policy)
// before it is acknowledged — one WAL record per network step.
func (e *Engine) NetInput(id string, ext compose.StepInputs) (*StepResult, error) {
	return e.NetInputKey(id, "", ext)
}

// NetInputKey is NetInput with a client idempotency key, with exactly the
// dedupe contract of InputKey: a key the session has already applied a
// joint step under answers that step back (Duplicate set) instead of
// advancing the network again.
func (e *Engine) NetInputKey(id, key string, ext compose.StepInputs) (*StepResult, error) {
	start := time.Now()
	v, err := e.trySend(e.shardFor(id), func(sh *shard) (any, error) {
		s, ok := sh.sessions[id]
		if !ok {
			return nil, &NotFoundError{ID: id}
		}
		if s.net == nil {
			return nil, &BadInputError{Err: fmt.Errorf("session %s is not a network session", id)}
		}
		if key != "" {
			if seq, ok := s.keys[key]; ok {
				sh.m.dedupedSteps.Add(1)
				return s.dupResult(seq), nil
			}
		}
		if s.frozen {
			return nil, &FrozenError{ID: id}
		}
		if sh.cfg.SessionRate > 0 {
			if ok, wait := s.rate.take(sh.cfg.SessionRate, float64(sh.cfg.SessionBurst), time.Now()); !ok {
				sh.m.rateLimited.Add(1)
				return nil, &RateLimitedError{ID: id, RetryAfter: wait}
			}
		}
		if err := s.validateNetInput(ext); err != nil {
			return nil, &BadInputError{Err: err}
		}
		if err := sh.appendWAL(&walRecord{T: recStep, SID: id, Seq: s.steps + 1, NetIn: ext, Key: key}); err != nil {
			return nil, err
		}
		res, err := s.applyNet(ext)
		if err != nil {
			// Deterministic evaluation failure: replay fails identically, so
			// memory and log stay consistent. Surface it as a client error.
			return nil, &BadInputError{Err: err}
		}
		s.noteKey(key, res.Seq)
		sh.m.stepsTotal.Add(1)
		sh.sinceSnap++
		if err := sh.maybeSnapshot(false); err != nil {
			return nil, err
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	e.m.stepLatency.observe(time.Since(start))
	return v.(*StepResult), nil
}

// JointLogDigest is the canonical digest of a network session's joint log:
// sha-256 over its canonical binary encoding, which is deterministic
// (fresh intern table, sorted keys, sorted names and tuples). The network
// counterpart of LogDigest, used by WAL-shipping handoff.
func JointLogDigest(joint []JointLogEntry) string {
	sum := sha256.Sum256(codec.Canonical(func(enc *codec.Encoder) { encodeJoint(enc, joint) }))
	return hex.EncodeToString(sum[:])
}

// logDigest is the session's digest under either kind.
func (s *Session) logDigest() string {
	if s.net != nil {
		return JointLogDigest(s.net.joint)
	}
	return LogDigest(s.logs)
}

func cloneStepInputs(ext compose.StepInputs) compose.StepInputs {
	c := make(compose.StepInputs, len(ext))
	for name, in := range ext {
		c[name] = in.Clone()
	}
	return c
}

func cloneStepInputsSeq(seq []compose.StepInputs) []compose.StepInputs {
	c := make([]compose.StepInputs, len(seq))
	for i, ext := range seq {
		c[i] = cloneStepInputs(ext)
	}
	return c
}

func cloneJoint(joint []JointLogEntry) []JointLogEntry {
	c := make([]JointLogEntry, len(joint))
	for i, je := range joint {
		c[i] = JointLogEntry{Logs: cloneStepInputs(je.Logs), Wire: make([]compose.WireDelta, len(je.Wire))}
		copy(c[i].Wire, je.Wire)
	}
	return c
}

// NetImage is the network part of a snapshot Image: the spec (identity),
// the run state (per-node states + unit-delay buffer), the joint log, the
// external input history, and the per-node cumulated pasts.
type NetImage struct {
	Spec   *compose.Spec                `json:"spec"`
	State  *compose.NetState            `json:"state"`
	Joint  []JointLogEntry              `json:"joint,omitempty"`
	Inputs []compose.StepInputs         `json:"inputs,omitempty"`
	Past   map[string]relation.Instance `json:"past,omitempty"`
}
