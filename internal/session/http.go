package session

import (
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"time"

	"repro/internal/compose"
	"repro/internal/live"
	"repro/internal/models"
	"repro/internal/relation"
)

// Handler serves the engine over HTTP/JSON:
//
//	GET    /models                 list servable model names
//	GET    /networks               list generated network names
//	GET    /sessions               list open sessions
//	POST   /sessions               open a session        {"model":"short","mode":"error-free","db":{...},"id":"..."}
//	                               or a network session  {"network":{"nodes":[...],"wires":[...]}}
//	GET    /sessions/{id}          session info
//	POST   /sessions/{id}/input    apply one step        {"input":{"order":[["time"]]}}
//	                               network joint step    {"node":"customer","facts":{"want":[["widget"]]}}
//	                               or multi-node         {"inputs":{"customer":{...},"supplier":{...}}}
//	                               or a step ARRAY       [{"input":{...},"key":"..."}, ...] → per-item statuses
//	POST   /batch                  multi-session batch   {"steps":[{"session":"...","input":{...},"key":"..."}]}
//	GET    /sessions/{id}/log      the session's durable log
//	GET    /sessions/{id}/verify   live verification     ?goal=deliver(X) | ?temporal=cond (repeatable)
//	GET    /sessions/{id}/progress ranked next inputs    ?goal=deliver(X)&limit=5
//	DELETE /sessions/{id}          close the session, returning the final log
//	GET    /healthz                liveness
//	GET    /debug/plan             compiled RA plan of a model   ?model=short
//	GET    /debug/vars             expvar ("spocus" engine metrics, "spocus_live" verification metrics, "spocus_ra" plan-engine metrics)
//	GET    /debug/pprof/...        pprof profiles
//
// Cluster-internal admin surface (used by spocus-router for handoff):
//
//	POST   /admin/sessions/{id}/export        freeze the session, return its replayable input history
//	POST   /admin/sessions/{id}/export-state  freeze the session, return its state image + log digest
//	POST   /admin/sessions/{id}/unfreeze      abort a handoff, thaw the session
//	POST   /admin/sessions/{id}/forget        retire a handed-off (frozen) session
//	POST   /admin/install                     install a shipped state image (body: StateExport)
//
// Instances use the repo-wide JSON wire form: relation name → list of
// tuples of constant strings.
func Handler(e *Engine) http.Handler { return HandlerWith(e, nil) }

// HandlerWith is Handler with an explicit live verification service, so a
// server can size the verification worker pool, timeout, and caches (see
// live.Config). A nil service gets defaults.
func HandlerWith(e *Engine, lv *live.Service) http.Handler {
	if lv == nil {
		lv = live.New(live.Config{})
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /models", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"models": models.Names()})
	})
	mux.HandleFunc("GET /networks", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"networks": models.NetworkNames()})
	})
	mux.HandleFunc("POST /sessions", func(w http.ResponseWriter, r *http.Request) {
		var req OpenRequest
		if !readJSON(w, r, &req) {
			return
		}
		info, err := e.Open(&req)
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusCreated, info)
	})
	mux.HandleFunc("GET /sessions", func(w http.ResponseWriter, r *http.Request) {
		infos, err := e.List()
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"sessions": infos})
	})
	mux.HandleFunc("GET /sessions/{id}", func(w http.ResponseWriter, r *http.Request) {
		info, err := e.Info(r.PathValue("id"))
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, info)
	})
	mux.HandleFunc("POST /sessions/{id}/input", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, batchBodyCap))
		if err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad request body: " + err.Error()})
			return
		}
		// An array body is the batched form: many steps of this session,
		// answered with per-item statuses (see http_batch.go).
		if isJSONArray(body) {
			handleInputArray(e, w, r, id, body)
			return
		}
		var req struct {
			Input relation.Instance `json:"input"`
			// Network joint-step forms: either one node's facts
			// ({"node":"customer","facts":{...}}) or several at once
			// ({"inputs":{"customer":{...}}}). An empty joint step is
			// {"inputs":{}}.
			Node   string             `json:"node"`
			Facts  relation.Instance  `json:"facts"`
			Inputs compose.StepInputs `json:"inputs"`
			// Key is the client idempotency key (the Idempotency-Key header
			// wins when both are present): a step already applied under it is
			// answered from the log with "duplicate":true instead of being
			// applied again.
			Key string `json:"key"`
		}
		if err := json.Unmarshal(body, &req); err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad request body: " + err.Error()})
			return
		}
		key := r.Header.Get("Idempotency-Key")
		if key == "" {
			key = req.Key
		}
		if req.Node != "" || req.Inputs != nil {
			ext := compose.StepInputs{}
			for name, in := range req.Inputs {
				ext[name] = in
			}
			if req.Node != "" {
				facts := req.Facts
				if facts == nil {
					facts = req.Input
				}
				if facts == nil {
					facts = relation.NewInstance()
				}
				if prev, ok := ext[req.Node]; ok {
					prev.UnionWith(facts)
				} else {
					ext[req.Node] = facts
				}
			}
			res, err := e.NetInputKey(id, key, ext)
			if err != nil {
				writeErr(w, err)
				return
			}
			writeJSON(w, http.StatusOK, res)
			return
		}
		if req.Input == nil {
			req.Input = relation.NewInstance()
		}
		res, err := e.InputKey(id, key, req.Input)
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, res)
	})
	mux.HandleFunc("POST /batch", handleBatch(e))
	mux.HandleFunc("GET /sessions/{id}/verify", handleVerify(e, lv))
	mux.HandleFunc("GET /sessions/{id}/progress", handleProgress(e, lv))
	mux.HandleFunc("GET /sessions/{id}/log", func(w http.ResponseWriter, r *http.Request) {
		lr, err := e.Log(r.PathValue("id"))
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, lr)
	})
	mux.HandleFunc("DELETE /sessions/{id}", func(w http.ResponseWriter, r *http.Request) {
		res, err := e.Close(r.PathValue("id"))
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, res)
	})
	mux.HandleFunc("POST /admin/sessions/{id}/export", func(w http.ResponseWriter, r *http.Request) {
		exp, err := e.Export(r.PathValue("id"))
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, exp)
	})
	mux.HandleFunc("POST /admin/sessions/{id}/export-state", func(w http.ResponseWriter, r *http.Request) {
		// A client that accepts application/octet-stream gets the canonical
		// binary ship image; everyone else gets the JSON StateExport.
		if strings.Contains(r.Header.Get("Accept"), "application/octet-stream") {
			data, err := e.ExportStateBinary(r.PathValue("id"))
			if err != nil {
				writeErr(w, err)
				return
			}
			w.Header().Set("Content-Type", "application/octet-stream")
			w.WriteHeader(http.StatusOK)
			w.Write(data)
			return
		}
		se, err := e.ExportState(r.PathValue("id"))
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, se)
	})
	mux.HandleFunc("POST /admin/install", func(w http.ResponseWriter, r *http.Request) {
		// State images scale with session history; allow far more than the
		// 1 MiB data-plane cap (this is a cluster-internal endpoint).
		body := http.MaxBytesReader(w, r.Body, 256<<20)
		if strings.Contains(r.Header.Get("Content-Type"), "application/octet-stream") {
			data, err := io.ReadAll(body)
			if err != nil {
				writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad request body: " + err.Error()})
				return
			}
			info, err := e.InstallBinary(data)
			if err != nil {
				writeErr(w, err)
				return
			}
			writeJSON(w, http.StatusCreated, info)
			return
		}
		var se StateExport
		dec := json.NewDecoder(body)
		if err := dec.Decode(&se); err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad request body: " + err.Error()})
			return
		}
		info, err := e.Install(&se)
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusCreated, info)
	})
	mux.HandleFunc("POST /admin/sessions/{id}/unfreeze", func(w http.ResponseWriter, r *http.Request) {
		if err := e.Unfreeze(r.PathValue("id")); err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"ok": true})
	})
	mux.HandleFunc("POST /admin/sessions/{id}/forget", func(w http.ResponseWriter, r *http.Request) {
		if err := e.Forget(r.PathValue("id")); err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"ok": true})
	})
	mux.HandleFunc("GET /admin/wal/state", func(w http.ResponseWriter, r *http.Request) {
		st, err := e.WALState()
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"shards": st})
	})
	mux.HandleFunc("GET /admin/wal/stream", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		shard, err := strconv.Atoi(q.Get("shard"))
		if err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad shard: " + err.Error()})
			return
		}
		from := int64(1)
		if v := q.Get("from"); v != "" {
			if from, err = strconv.ParseInt(v, 10, 64); err != nil {
				writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad from: " + err.Error()})
				return
			}
		}
		// acked piggybacks the follower's applied LSN on the poll, so lag is
		// observable on the primary without a separate ack endpoint.
		if v := q.Get("acked"); v != "" {
			if lsn, err := strconv.ParseInt(v, 10, 64); err == nil {
				e.AckWAL(shard, lsn)
			}
		}
		wait := 25 * time.Second
		if v := q.Get("wait"); v != "" {
			d, err := time.ParseDuration(v)
			if err != nil {
				writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad wait: " + err.Error()})
				return
			}
			wait = d
		}
		// itab opts into the binary wire (the follower's stream-decoder
		// table length). Absent: legacy standalone-JSON records.
		itab := -1
		if v := q.Get("itab"); v != "" {
			if itab, err = strconv.Atoi(v); err != nil || itab < 0 {
				writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad itab"})
				return
			}
		}
		b, err := e.StreamWAL(r.Context(), shard, from, wait, itab)
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, b)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"ok": true})
	})
	mux.HandleFunc("GET /debug/plan", func(w http.ResponseWriter, r *http.Request) {
		name := r.URL.Query().Get("model")
		m := models.Get(name)
		if m == nil {
			writeJSON(w, http.StatusNotFound, map[string]any{"error": fmt.Sprintf("unknown model %q (have %v)", name, models.Names())})
			return
		}
		plan, err := m.ExplainPlan()
		if err != nil {
			writeJSON(w, http.StatusUnprocessableEntity, map[string]any{"error": err.Error()})
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, plan)
	})
	mux.Handle("GET /debug/vars", expvar.Handler())
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	return mux
}

func readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	if err := dec.Decode(v); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad request body: " + err.Error()})
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// writeErr maps engine errors onto HTTP statuses: unknown session → 404,
// client input problems → 400, duplicate open → 409, full mailbox or
// per-session rate limit → 429 (with Retry-After), frozen for handoff →
// 503 (retryable: the ring is about to flip), everything else → 500.
func writeErr(w http.ResponseWriter, err error) {
	status, retryAfter := errStatus(err)
	if retryAfter != "" {
		w.Header().Set("Retry-After", retryAfter)
	}
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// errStatus maps an engine error onto its HTTP status plus an optional
// Retry-After value in seconds ("" = none). Shared by the single-step
// response path and the per-item statuses of batch responses, so an item
// fails with exactly the code its unbatched twin would have.
func errStatus(err error) (status int, retryAfter string) {
	status = http.StatusInternalServerError
	var nf *NotFoundError
	var bad *BadInputError
	var conflict *ConflictError
	var over *OverloadedError
	var limited *RateLimitedError
	var frozen *FrozenError
	switch {
	case errors.As(err, &nf):
		status = http.StatusNotFound
	case errors.As(err, &bad):
		status = http.StatusBadRequest
	case errors.As(err, &conflict):
		status = http.StatusConflict
	case errors.As(err, &over):
		status = http.StatusTooManyRequests
		retryAfter = "1"
	case errors.As(err, &limited):
		status = http.StatusTooManyRequests
		retryAfter = retryAfterSeconds(limited.RetryAfter)
	case errors.As(err, &frozen):
		status = http.StatusServiceUnavailable
		retryAfter = "1"
	case errors.Is(err, ErrNotDurable):
		status = http.StatusPreconditionFailed
	}
	return status, retryAfter
}
