package session

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/compose"
	"repro/internal/models"
	"repro/internal/relation"
)

// goldenMarketSpec is the Fig.1-style customer↔supplier conversation as a
// network spec, with a one-product catalog so every step is fully
// predictable.
func goldenMarketSpec() *compose.Spec {
	db := relation.NewInstance()
	db.Add("price", relation.Tuple{"widget", "5"})
	return &compose.Spec{
		Nodes: []compose.NodeSpec{
			{Name: "customer", Src: models.NetCustomerSrc},
			{Name: "supplier", Src: models.NetSupplierSrc, DB: db},
		},
		Wires: []compose.WireSpec{
			{From: "customer", Output: "order", To: "supplier", Input: "order"},
			{From: "customer", Output: "pay", To: "supplier", Input: "pay"},
			{From: "supplier", Output: "invoice", To: "customer", Input: "invoice"},
			{From: "supplier", Output: "deliver", To: "customer", Input: "arrived"},
		},
	}
}

// goldFact is one expected log fact; goldStep is the golden joint exchange
// of one step: the external stimulus, the exact wire traffic, and the exact
// per-node log deltas (every listed fact present, nothing else).
type goldFact struct {
	rel string
	tup relation.Tuple
}

type goldStep struct {
	ext  compose.StepInputs
	wire []compose.WireDelta
	logs map[string][]goldFact
}

// goldenMarketTrace is the complete expected joint run: want → order →
// invoice → pay → deliver → arrived, one wire hop per step (unit delay).
func goldenMarketTrace() []goldStep {
	want := relation.NewInstance()
	want.Add("want", relation.Tuple{"widget"})
	return []goldStep{
		{
			ext:  compose.StepInputs{"customer": want},
			wire: nil,
			logs: map[string][]goldFact{
				"customer": {{"order", relation.Tuple{"widget"}}},
				"supplier": {},
			},
		},
		{
			ext: compose.StepInputs{},
			wire: []compose.WireDelta{
				{From: "customer", Output: "order", To: "supplier", Input: "order", Facts: []relation.Tuple{{"widget"}}},
			},
			logs: map[string][]goldFact{
				"customer": {},
				"supplier": {{"invoice", relation.Tuple{"widget", "5"}}},
			},
		},
		{
			ext: compose.StepInputs{},
			wire: []compose.WireDelta{
				{From: "supplier", Output: "invoice", To: "customer", Input: "invoice", Facts: []relation.Tuple{{"widget", "5"}}},
			},
			logs: map[string][]goldFact{
				"customer": {{"pay", relation.Tuple{"widget", "5"}}},
				"supplier": {},
			},
		},
		{
			ext: compose.StepInputs{},
			wire: []compose.WireDelta{
				{From: "customer", Output: "pay", To: "supplier", Input: "pay", Facts: []relation.Tuple{{"widget", "5"}}},
			},
			logs: map[string][]goldFact{
				"customer": {},
				"supplier": {{"deliver", relation.Tuple{"widget"}}},
			},
		},
		{
			ext: compose.StepInputs{},
			wire: []compose.WireDelta{
				{From: "supplier", Output: "deliver", To: "customer", Input: "arrived", Facts: []relation.Tuple{{"widget"}}},
			},
			logs: map[string][]goldFact{
				"customer": {},
				"supplier": {},
			},
		},
	}
}

func factCount(in relation.Instance) int {
	n := 0
	for _, r := range in {
		n += r.Len()
	}
	return n
}

// checkGoldStep asserts one step's wire traffic and per-node logs match the
// golden table exactly.
func checkGoldStep(t *testing.T, label string, seq int, g goldStep, wire []compose.WireDelta, logs compose.StepInputs) {
	t.Helper()
	if len(wire) != len(g.wire) {
		t.Fatalf("%s step %d: wire %v, want %v", label, seq, wire, g.wire)
	}
	for i := range g.wire {
		if !reflect.DeepEqual(wire[i], g.wire[i]) {
			t.Errorf("%s step %d wire %d: %+v, want %+v", label, seq, i, wire[i], g.wire[i])
		}
	}
	for node, facts := range g.logs {
		delta := logs[node]
		if got := factCount(delta); got != len(facts) {
			t.Errorf("%s step %d node %s: log has %d facts, want %d: %s", label, seq, node, got, len(facts), delta)
			continue
		}
		for _, f := range facts {
			if !delta.Has(f.rel, f.tup) {
				t.Errorf("%s step %d node %s: log missing %s%v: %s", label, seq, node, f.rel, f.tup, delta)
			}
		}
	}
}

// TestNetworkGoldenCompose drives the golden trace prefix-by-prefix through
// the compose oracle directly.
func TestNetworkGoldenCompose(t *testing.T) {
	trace := goldenMarketTrace()
	// Prefix-by-prefix: re-run the first k steps from scratch for every k,
	// so a divergence at step i cannot hide behind state from a longer run.
	for k := 1; k <= len(trace); k++ {
		nw, err := goldenMarketSpec().Build(models.Resolve)
		if err != nil {
			t.Fatal(err)
		}
		nw.Start()
		for i := 0; i < k; i++ {
			js, err := nw.StepOnce(trace[i].ext)
			if err != nil {
				t.Fatal(err)
			}
			checkGoldStep(t, fmt.Sprintf("compose[k=%d]", k), i+1, trace[i], js.Wire, js.Logs)
		}
	}
}

// TestNetworkGoldenEngine drives the same golden trace through the network
// session API and through HTTP, asserting the identical joint exchange.
func TestNetworkGoldenEngine(t *testing.T) {
	e, srv := httpServer(t)
	trace := goldenMarketTrace()

	// Engine API.
	info, err := e.Open(&OpenRequest{Network: goldenMarketSpec()})
	if err != nil {
		t.Fatal(err)
	}
	if !info.Network || len(info.Nodes) != 2 {
		t.Fatalf("info = %+v, want network with 2 nodes", info)
	}
	for i, g := range trace {
		res, err := e.NetInput(info.ID, g.ext)
		if err != nil {
			t.Fatal(err)
		}
		if res.Seq != i+1 {
			t.Fatalf("seq %d, want %d", res.Seq, i+1)
		}
		checkGoldStep(t, "engine", i+1, g, res.Wire, res.Logs)
	}
	lr, err := e.Log(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(lr.Joint) != len(trace) {
		t.Fatalf("joint log has %d entries, want %d", len(lr.Joint), len(trace))
	}
	for i, g := range trace {
		checkGoldStep(t, "engine log", i+1, g, lr.Joint[i].Wire, lr.Joint[i].Logs)
	}

	// HTTP API: open with the spec, step 1 node-addressed, the rest as
	// empty joint steps.
	var hinfo Info
	if code := call(t, "POST", srv.URL+"/sessions", map[string]any{"network": goldenMarketSpec()}, &hinfo); code != http.StatusCreated {
		t.Fatalf("open network over http: %d", code)
	}
	want := relation.NewInstance()
	want.Add("want", relation.Tuple{"widget"})
	for i, g := range trace {
		var body map[string]any
		if i == 0 {
			body = map[string]any{"node": "customer", "facts": want}
		} else {
			body = map[string]any{"inputs": map[string]any{}}
		}
		var res StepResult
		if code := call(t, "POST", srv.URL+"/sessions/"+hinfo.ID+"/input", body, &res); code != http.StatusOK {
			t.Fatalf("http step %d: %d", i+1, code)
		}
		checkGoldStep(t, "http", i+1, g, res.Wire, res.Logs)
	}
	var hlr LogResult
	if code := call(t, "GET", srv.URL+"/sessions/"+hinfo.ID+"/log", nil, &hlr); code != http.StatusOK {
		t.Fatal("http log fetch failed")
	}
	if len(hlr.Joint) != len(trace) {
		t.Fatalf("http joint log has %d entries, want %d", len(hlr.Joint), len(trace))
	}
}

// genNetCase is a randomly generated network + stimulus for the
// determinism property: a small random topology (1-2 customers, a
// supplier, optionally a fraud monitor) and a random external script.
type genNetCase struct {
	spec   *compose.Spec
	script []compose.StepInputs
}

func (genNetCase) Generate(r *rand.Rand, _ int) reflect.Value {
	products := models.NetProducts()
	nCust := 1 + r.Intn(2)
	db := relation.NewInstance()
	for i, p := range products {
		db.Add("price", relation.Tuple{relation.Const(p), relation.Const(fmt.Sprint(3 + i))})
	}
	spec := &compose.Spec{Nodes: []compose.NodeSpec{{Name: "supplier", Src: models.NetSupplierSrc, DB: db}}}
	var custs []string
	for i := 0; i < nCust; i++ {
		name := fmt.Sprintf("customer%d", i)
		custs = append(custs, name)
		spec.Nodes = append(spec.Nodes, compose.NodeSpec{Name: name, Src: models.NetCustomerSrc})
		spec.Wires = append(spec.Wires,
			compose.WireSpec{From: name, Output: "order", To: "supplier", Input: "order"},
			compose.WireSpec{From: name, Output: "pay", To: "supplier", Input: "pay"},
			compose.WireSpec{From: "supplier", Output: "invoice", To: name, Input: "invoice"},
			compose.WireSpec{From: "supplier", Output: "deliver", To: name, Input: "arrived"},
		)
	}
	if r.Intn(2) == 0 {
		spec.Nodes = append(spec.Nodes, compose.NodeSpec{Name: "monitor", Src: models.NetMonitorSrc})
		for _, name := range custs {
			spec.Wires = append(spec.Wires, compose.WireSpec{From: name, Output: "pay", To: "monitor", Input: "payment"})
		}
		spec.Wires = append(spec.Wires, compose.WireSpec{From: "supplier", Output: "invoice", To: "monitor", Input: "billed"})
	}
	steps := 2 + r.Intn(4)
	script := make([]compose.StepInputs, steps)
	for i := range script {
		script[i] = compose.StepInputs{}
		for _, name := range custs {
			if r.Intn(2) == 0 {
				in := relation.NewInstance()
				in.Add("want", relation.Tuple{relation.Const(products[r.Intn(len(products))])})
				script[i][name] = in
			}
		}
	}
	return reflect.ValueOf(genNetCase{spec: spec, script: script})
}

// jointJSON renders a joint log sequence to canonical JSON for
// byte-identity comparison.
func jointJSON(t *testing.T, joint []JointLogEntry) string {
	t.Helper()
	data, err := json.Marshal(joint)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestNetworkDeterminismQuick is the three-way determinism property: for
// random small networks and random stimulus, the serve path, the compose
// oracle, and WAL replay after an un-clean restart all produce
// byte-identical joint logs.
func TestNetworkDeterminismQuick(t *testing.T) {
	check := func(c genNetCase) bool {
		// Oracle: raw compose stepping.
		nw, err := c.spec.Build(models.Resolve)
		if err != nil {
			t.Fatalf("build: %v", err)
		}
		nw.Start()
		var oracle []JointLogEntry
		for _, ext := range c.script {
			js, err := nw.StepOnce(ext)
			if err != nil {
				t.Fatalf("oracle step: %v", err)
			}
			oracle = append(oracle, JointLogEntry{Logs: js.Logs, Wire: js.Wire})
		}

		// Serve path, durable under fsync-always.
		dir := t.TempDir()
		e, err := NewEngine(Config{Dir: dir, Shards: 2, Fsync: FsyncAlways})
		if err != nil {
			t.Fatal(err)
		}
		info, err := e.Open(&OpenRequest{Network: c.spec})
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		for _, ext := range c.script {
			if _, err := e.NetInput(info.ID, ext); err != nil {
				t.Fatalf("serve step: %v", err)
			}
		}
		served, err := e.Log(info.ID)
		if err != nil {
			t.Fatal(err)
		}

		// Replay path: abandon the engine WITHOUT Shutdown (no final
		// snapshot — recovery must come from the WAL alone; the file handles
		// leak until test exit, which is the point) and recover.
		e2, err := NewEngine(Config{Dir: dir, Shards: 2, Fsync: FsyncAlways})
		if err != nil {
			t.Fatalf("recover: %v", err)
		}
		defer e2.Shutdown()
		replayed, err := e2.Log(info.ID)
		if err != nil {
			t.Fatal(err)
		}

		want := jointJSON(t, oracle)
		if got := jointJSON(t, served.Joint); got != want {
			t.Errorf("serve path diverged from oracle:\n  serve:  %s\n  oracle: %s", got, want)
			return false
		}
		if got := jointJSON(t, replayed.Joint); got != want {
			t.Errorf("WAL replay diverged from oracle:\n  replay: %s\n  oracle: %s", got, want)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// TestNetworkRecoverySnapshot: a network session survives snapshot
// compaction + restart and continues stepping from where it left off.
func TestNetworkRecoverySnapshot(t *testing.T) {
	dir := t.TempDir()
	script := models.NetworkScript("marketplace", "widget")
	e, err := NewEngine(Config{Dir: dir, Shards: 2, Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	info, err := e.Open(&OpenRequest{ID: "net-1", Network: models.Network("marketplace")})
	if err != nil {
		t.Fatal(err)
	}
	for _, ext := range script[:3] {
		if _, err := e.NetInput(info.ID, ext); err != nil {
			t.Fatal(err)
		}
	}
	// Force compaction so recovery crosses a snapshot boundary, then step
	// more so the WAL also has post-snapshot joint records.
	if err := e.Snapshot(); err != nil {
		t.Fatal(err)
	}
	for _, ext := range script[3:] {
		if _, err := e.NetInput(info.ID, ext); err != nil {
			t.Fatal(err)
		}
	}
	before, err := e.Log(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	// Abandon without Shutdown: recovery must merge snapshot + WAL tail.
	e2, err := NewEngine(Config{Dir: dir, Shards: 2, Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Shutdown()
	after, err := e2.Log(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if jointJSON(t, before.Joint) != jointJSON(t, after.Joint) {
		t.Fatal("joint log changed across recovery")
	}
	if JointLogDigest(before.Joint) != JointLogDigest(after.Joint) {
		t.Fatal("joint digest changed across recovery")
	}
	// The recovered network keeps stepping: its delay buffer and node
	// states survived, so another empty step must not error.
	res, err := e2.NetInput(info.ID, compose.StepInputs{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Seq != len(script)+1 {
		t.Fatalf("resumed at seq %d, want %d", res.Seq, len(script)+1)
	}
}

// TestNetworkExportReplay: replay-mode handoff — the export carries the
// spec and external inputs, and replaying them on a second engine
// reconstructs the joint log bit-for-bit.
func TestNetworkExportReplay(t *testing.T) {
	e1, err := NewEngine(Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer e1.Shutdown()
	e2, err := NewEngine(Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Shutdown()

	info, err := e1.Open(&OpenRequest{Network: models.Network("fraud")})
	if err != nil {
		t.Fatal(err)
	}
	for _, ext := range models.NetworkScript("fraud", "gadget") {
		if _, err := e1.NetInput(info.ID, ext); err != nil {
			t.Fatal(err)
		}
	}
	exp, err := e1.Export(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if exp.Network == nil || len(exp.NetInputs) != exp.Steps {
		t.Fatalf("export = %+v, want network spec and %d inputs", exp, exp.Steps)
	}
	// Frozen: further joint steps must fail.
	if _, err := e1.NetInput(info.ID, compose.StepInputs{}); err == nil {
		t.Fatal("frozen network session accepted a step")
	}

	if _, err := e2.Open(&OpenRequest{ID: exp.ID, Mode: exp.Mode, Network: exp.Network}); err != nil {
		t.Fatal(err)
	}
	for _, ext := range exp.NetInputs {
		if _, err := e2.NetInput(exp.ID, ext); err != nil {
			t.Fatal(err)
		}
	}
	src, err := e1.Log(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	dst, err := e2.Log(exp.ID)
	if err != nil {
		t.Fatal(err)
	}
	if jointJSON(t, src.Joint) != jointJSON(t, dst.Joint) {
		t.Fatal("replayed joint log differs from source")
	}
}

// TestNetworkShipInstall: ship-mode handoff — the state image moves whole,
// the joint-log digest is verified on install, and the installed session
// keeps stepping identically.
func TestNetworkShipInstall(t *testing.T) {
	e1, err := NewEngine(Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer e1.Shutdown()
	e2, err := NewEngine(Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Shutdown()

	script := models.NetworkScript("customization", "gizmo")
	info, err := e1.Open(&OpenRequest{Network: models.Network("customization")})
	if err != nil {
		t.Fatal(err)
	}
	for _, ext := range script[:4] {
		if _, err := e1.NetInput(info.ID, ext); err != nil {
			t.Fatal(err)
		}
	}
	se, err := e1.ExportState(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if se.Image.Net == nil {
		t.Fatal("state export of a network session has no net image")
	}
	if _, err := e2.Install(se); err != nil {
		t.Fatal(err)
	}
	// A corrupted digest must be rejected.
	bad := *se
	bad.Digest = "0000"
	if _, err := e2.Install(&bad); err == nil {
		t.Fatal("install accepted a corrupted digest")
	}

	// Both copies step the remaining script identically. (The source is
	// frozen; thaw it to compare.)
	if err := e1.Unfreeze(info.ID); err != nil {
		t.Fatal(err)
	}
	for _, ext := range script[4:] {
		r1, err := e1.NetInput(info.ID, ext)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := e2.NetInput(info.ID, ext)
		if err != nil {
			t.Fatal(err)
		}
		d1, _ := json.Marshal(r1)
		d2, _ := json.Marshal(r2)
		if string(d1) != string(d2) {
			t.Fatalf("installed copy diverged:\n  src: %s\n  dst: %s", d1, d2)
		}
	}
}

// TestNetworkHTTPErrors: the HTTP surface rejects shape mismatches — plain
// inputs on network sessions, node-addressed inputs on plain sessions,
// unknown nodes, unknown relations, and verification without ?node=.
func TestNetworkHTTPErrors(t *testing.T) {
	_, srv := httpServer(t)

	var netInfo Info
	if code := call(t, "POST", srv.URL+"/sessions", map[string]any{"network": goldenMarketSpec()}, &netInfo); code != http.StatusCreated {
		t.Fatalf("open network: %d", code)
	}
	var plainInfo Info
	if code := call(t, "POST", srv.URL+"/sessions", map[string]any{"model": "short"}, &plainInfo); code != http.StatusCreated {
		t.Fatalf("open plain: %d", code)
	}

	cases := []struct {
		name string
		id   string
		body map[string]any
		want int
	}{
		{"plain input on network session", netInfo.ID, map[string]any{"input": map[string]any{}}, http.StatusBadRequest},
		{"node input on plain session", plainInfo.ID, map[string]any{"node": "customer", "facts": map[string]any{}}, http.StatusBadRequest},
		{"unknown node", netInfo.ID, map[string]any{"node": "ghost", "facts": map[string]any{}}, http.StatusBadRequest},
		{"unknown relation", netInfo.ID, map[string]any{"node": "customer", "facts": map[string]any{"nope": []any{[]any{"x"}}}}, http.StatusBadRequest},
		{"arity mismatch", netInfo.ID, map[string]any{"node": "customer", "facts": map[string]any{"want": []any{[]any{"a", "b"}}}}, http.StatusBadRequest},
		{"empty joint step ok", netInfo.ID, map[string]any{"inputs": map[string]any{}}, http.StatusOK},
	}
	for _, tc := range cases {
		if code := call(t, "POST", srv.URL+"/sessions/"+tc.id+"/input", tc.body, nil); code != tc.want {
			t.Errorf("%s: got %d, want %d", tc.name, code, tc.want)
		}
	}

	// Verification requires node addressing on network sessions...
	if code := call(t, "GET", srv.URL+"/sessions/"+netInfo.ID+"/verify?goal=deliver(widget)", nil, nil); code != http.StatusBadRequest {
		t.Errorf("verify without node: got %d, want 400", code)
	}
	if code := call(t, "GET", srv.URL+"/sessions/"+netInfo.ID+"/verify?goal=deliver(widget)&node=ghost", nil, nil); code != http.StatusBadRequest {
		t.Errorf("verify unknown node: got %d, want 400", code)
	}
	if code := call(t, "GET", srv.URL+"/sessions/"+netInfo.ID+"/verify?goal=deliver(widget)&node=supplier", nil, nil); code != http.StatusOK {
		t.Errorf("verify supplier node: got %d, want 200", code)
	}
	// ...and rejects it on plain sessions.
	if code := call(t, "GET", srv.URL+"/sessions/"+plainInfo.ID+"/verify?goal=deliver(time)&node=x", nil, nil); code != http.StatusBadRequest {
		t.Errorf("verify plain session with node: got %d, want 400", code)
	}

	// /networks lists the generated networks.
	var nets struct {
		Networks []string `json:"networks"`
	}
	if code := call(t, "GET", srv.URL+"/networks", nil, &nets); code != http.StatusOK || len(nets.Networks) < 3 {
		t.Errorf("GET /networks: code %d, %v", code, nets.Networks)
	}

	// Open validation: network+model, and a broken spec.
	if code := call(t, "POST", srv.URL+"/sessions", map[string]any{"model": "short", "network": goldenMarketSpec()}, nil); code != http.StatusBadRequest {
		t.Errorf("network+model open: got %d, want 400", code)
	}
	badSpec := goldenMarketSpec()
	badSpec.Wires[0].Input = "pay" // arity mismatch
	if code := call(t, "POST", srv.URL+"/sessions", map[string]any{"network": badSpec}, nil); code != http.StatusBadRequest {
		t.Errorf("bad wire open: got %d, want 400", code)
	}
}
