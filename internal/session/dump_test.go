package session

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/models"
)

// TestDumpWAL runs engines under both codecs over one directory and dumps
// the shard: the dump must show the snapshot, records of both encodings,
// and the intern-table summary — and must decode every record.
func TestDumpWAL(t *testing.T) {
	dir := t.TempDir()
	inputs := models.Fig1Inputs()
	for _, cdc := range []Codec{CodecJSON, CodecBinary} {
		// The JSON run snapshots mid-way (a JSON snapshot lands on disk);
		// the binary run must not, or it would fold the JSON records away.
		snapEvery := 2
		if cdc == CodecBinary {
			snapEvery = -1
		}
		e, err := NewEngine(Config{Dir: dir, Shards: 1, Fsync: FsyncAlways, Codec: cdc, SnapshotEvery: snapEvery})
		if err != nil {
			t.Fatal(err)
		}
		id := "dump-" + cdc.String()
		if _, err := e.Open(&OpenRequest{ID: id, Model: "short"}); err != nil {
			t.Fatal(err)
		}
		for _, in := range inputs {
			if _, err := e.Input(id, in); err != nil {
				t.Fatal(err)
			}
		}
		// Abandon without Shutdown so WAL records survive alongside the
		// mid-run snapshot.
	}

	var buf bytes.Buffer
	if err := DumpWAL(&buf, filepath.Join(dir, "shard-000")); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"snapshot", "segment", " binary ", " json ", "step", "intern tables:"} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "UNDECODABLE") {
		t.Errorf("dump failed to decode a record:\n%s", out)
	}
}
