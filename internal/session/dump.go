package session

import (
	"fmt"
	"io"

	"repro/internal/codec"
	"repro/internal/storage"
)

// DumpWAL pretty-prints the durable files of one shard directory — the
// manifest's snapshot, then each WAL segment — one line per record, in
// either encoding (JSON records print alongside binary ones, exactly as
// recovery replays them). Read-only: torn tails are reported, never
// truncated, so dumping a live or damaged directory is safe.
func DumpWAL(w io.Writer, dir string) error {
	snapDec := codec.NewDecoder()
	walDec := codec.NewDecoder()
	var (
		lsn      int64
		curFile  string
		fileRecs int
		fileByte int
		firstRec bool
	)
	flush := func() {
		if curFile != "" {
			fmt.Fprintf(w, "  %d records, %d payload bytes\n", fileRecs, fileByte)
		}
	}
	tails, err := storage.ScanDir(dir, func(r *storage.DumpRecord) error {
		if r.File != curFile {
			flush()
			curFile, fileRecs, fileByte = r.File, 0, 0
			kind := "segment"
			if r.Snapshot {
				kind = "snapshot"
			}
			fmt.Fprintf(w, "%s (%s)\n", r.File, kind)
			firstRec = true
		}
		fileRecs++
		fileByte += r.Size
		format := "json"
		if codec.IsBinary(r.Payload) {
			format = "binary"
		}
		if r.Snapshot {
			before := snapDec.TableLen()
			h, img, err := decodeSnapPayload(snapDec, r.Payload, firstRec)
			firstRec = false
			if err != nil {
				fmt.Fprintf(w, "  [%d] %s %4dB UNDECODABLE: %v\n", r.Index, format, r.Size, err)
				return nil
			}
			grew := snapDec.TableLen() - before
			switch {
			case h != nil:
				fmt.Fprintf(w, "  [%d] %s %4dB header version=%d shard=%d itab+%d\n",
					r.Index, format, r.Size, h.Version, h.Shard, grew)
			case img != nil:
				fmt.Fprintf(w, "  [%d] %s %4dB image sid=%s steps=%d itab+%d\n",
					r.Index, format, r.Size, img.ID, img.Steps, grew)
			}
			return nil
		}
		lsn++
		before := walDec.TableLen()
		rec, err := decodeWALPayload(walDec, r.Payload)
		if err != nil {
			fmt.Fprintf(w, "  lsn=%d %s %4dB UNDECODABLE: %v\n", lsn, format, r.Size, err)
			return nil
		}
		grew := walDec.TableLen() - before
		detail := ""
		if rec.Seq > 0 {
			detail = fmt.Sprintf(" seq=%d", rec.Seq)
		}
		if len(rec.Inputs) > 0 {
			detail += fmt.Sprintf(" steps=%d", len(rec.Inputs))
		}
		if rec.Model != "" {
			detail += " model=" + rec.Model
		}
		fmt.Fprintf(w, "  lsn=%d %s %4dB %s sid=%s%s itab+%d\n",
			lsn, format, r.Size, rec.T, rec.SID, detail, grew)
		return nil
	})
	flush()
	if err != nil {
		return err
	}
	for _, tail := range tails {
		fmt.Fprintf(w, "%s: torn tail at offset %d of %d bytes (recovery truncates here)\n",
			tail.File, tail.Offset, tail.Len)
	}
	fmt.Fprintf(w, "intern tables: snapshot=%d entries, wal=%d entries\n",
		snapDec.TableLen(), walDec.TableLen())
	return nil
}
