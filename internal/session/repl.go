package session

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"repro/internal/codec"
	"repro/internal/storage"
)

// The engine's two replication faces.
//
// Primary side: StreamWAL serves committed WAL records (and, after
// compaction, snapshot images) for one shard as long-pollable batches, and
// AckWAL books the follower's applied LSN so Stats can report lag. Both are
// safe from any goroutine: they touch only the store's mutex-guarded
// replication view and an atomic, never the shard's owned state.
//
// Follower side: ApplyReplicated feeds a streamed record through the shard
// goroutine into a standby engine — the same idempotent logic WAL replay
// uses, plus an append to the standby's OWN WAL, so a record acknowledged
// to the stream is durable on the follower under its fsync policy. A
// record that cannot apply (unknown session, step gap) returns
// ReplGapError: the follower's cue to restart from the primary's snapshot.

// Batch size bounds for one stream response; both soft in the sense that a
// single over-sized record still goes through alone.
const (
	streamMaxRecords = 4096
	streamMaxBytes   = 4 << 20
)

// ErrNotDurable reports a replication operation against a memory-only
// engine: with no WAL there is nothing to stream.
var ErrNotDurable = errors.New("session: engine has no durable store to stream")

// WALBatch is one stream response for one primary shard.
type WALBatch struct {
	Shard  int `json:"shard"`
	Shards int `json:"shards"` // the primary's shard count (stream topology)
	// Codec names the encoding of Records ("binary": each record's Bin
	// holds an interned codec record; empty: each record's Payload holds
	// standalone JSON). Snapshot images are always JSON.
	Codec string `json:"codec,omitempty"`
	// ITab is the intern-table length the follower's stream decoder must
	// hold BEFORE applying this batch's records. The follower sends its
	// table length with each poll; a mismatch on either side resets that
	// side's half of the stream, so the table resynchronizes within one
	// round trip after any divergence (lost response, follower restart).
	ITab int `json:"itab,omitempty"`
	// Reset tells the follower its requested LSN was compacted: discard its
	// notion of this shard, install the Snapshot images, resume at Base+1.
	Reset bool `json:"reset,omitempty"`
	// Base is the LSN covered by the primary's snapshot; Committed is the
	// highest LSN this batch could have served (records beyond the batch's
	// size bounds arrive on the next poll).
	Base      int64 `json:"base"`
	Committed int64 `json:"committed"`
	// Snapshot carries the primary shard's snapshot images on Reset.
	Snapshot []json.RawMessage `json:"snapshot,omitempty"`
	// Records are consecutive committed WAL records starting at the
	// requested LSN.
	Records []storage.ReplRecord `json:"records,omitempty"`
}

// ReplShardState summarizes one shard's stream position.
type ReplShardState struct {
	Shard     int   `json:"shard"`
	Base      int64 `json:"base"`
	Committed int64 `json:"committed"`
	Acked     int64 `json:"acked"`
}

// ReplGapError reports a replicated record the standby cannot apply in
// order — the follower must bootstrap from the primary's snapshot.
type ReplGapError struct {
	SID  string
	Seq  int // the record's step number (0 for a missing session)
	Have int // the standby's step count
}

func (err *ReplGapError) Error() string {
	if err.Seq == 0 {
		return fmt.Sprintf("replica gap: no session %s on standby", err.SID)
	}
	return fmt.Sprintf("replica gap: session %s step %d after %d", err.SID, err.Seq, err.Have)
}

// WALState reports every shard's stream position. ErrNotDurable for
// memory-only engines.
func (e *Engine) WALState() ([]ReplShardState, error) {
	out := make([]ReplShardState, 0, len(e.shards))
	for i, sh := range e.shards {
		if sh.store == nil {
			return nil, ErrNotDurable
		}
		rs := sh.store.ReplState()
		out = append(out, ReplShardState{Shard: i, Base: rs.Base, Committed: rs.Committed, Acked: sh.acked.Load()})
	}
	return out, nil
}

// AckWAL records the follower's applied LSN for one shard (monotonic: a
// stale ack never regresses the gauge) and wakes the shard if it is holding
// a semi-sync commit for this LSN. Safe from any goroutine.
func (e *Engine) AckWAL(shard int, lsn int64) {
	if shard < 0 || shard >= len(e.shards) {
		return
	}
	sh := e.shards[shard]
	for {
		old := sh.acked.Load()
		if lsn <= old {
			return
		}
		if sh.acked.CompareAndSwap(old, lsn) {
			if sh.store != nil {
				// Replication slot: snapshot compaction keeps WAL the
				// follower has not acked yet, so the stream survives
				// snapshots without a reset.
				sh.store.SetRetain(lsn)
			}
			select {
			case sh.ackWake <- struct{}{}:
			default:
			}
			return
		}
	}
}

// StreamWAL returns the next batch of committed WAL records for one shard,
// starting at LSN from (1-based). With wait > 0 and nothing new to serve,
// it long-polls until a commit arrives, the wait elapses, or ctx is done —
// gating on group-commit completion by construction, because the store
// publishes an LSN only at its ack points. A from that has been compacted
// into a snapshot comes back as a Reset batch carrying the snapshot
// images.
//
// itab selects the wire encoding: -1 requests standalone JSON records (the
// legacy wire, always available regardless of the engine's own codec);
// >= 0 requests binary records and states the length of the follower's
// stream decoder table, which the shard's stream encoder must match — on
// mismatch the encoder resets and the batch redefines its constants (see
// WALBatch.ITab).
func (e *Engine) StreamWAL(ctx context.Context, shard int, from int64, wait time.Duration, itab int) (*WALBatch, error) {
	if shard < 0 || shard >= len(e.shards) {
		return nil, &BadInputError{Err: fmt.Errorf("no shard %d (engine has %d)", shard, len(e.shards))}
	}
	sh := e.shards[shard]
	if sh.store == nil {
		return nil, ErrNotDurable
	}
	if from < 1 {
		from = 1
	}
	if wait > 0 {
		if st := sh.store.ReplState(); from > st.Committed && from > st.Base {
			wctx, cancel := context.WithTimeout(ctx, wait)
			sh.store.WaitCommitted(wctx, from-1)
			cancel()
		}
	}
	recs, st, err := sh.store.ReadCommitted(from, streamMaxRecords, streamMaxBytes)
	b := &WALBatch{Shard: shard, Shards: len(e.shards), Base: st.Base, Committed: st.Committed}
	if err == storage.ErrCompacted {
		// Bootstrap batches re-encode snapshot images as standalone JSON on
		// every wire: the follower installs them without stream context, and
		// they mark a stream discontinuity anyway.
		first := true
		sdec := codec.NewDecoder()
		base, serr := sh.store.SnapshotRecords(func(p []byte) error {
			wasFirst := first
			first = false
			h, img, derr := decodeSnapPayload(sdec, p, wasFirst)
			if derr != nil {
				return derr
			}
			if h != nil {
				return nil // the snapHeader record is shard-local, not streamed
			}
			raw, derr := json.Marshal(img)
			if derr != nil {
				return derr
			}
			b.Snapshot = append(b.Snapshot, raw)
			return nil
		})
		if serr != nil {
			return nil, serr
		}
		b.Reset, b.Base = true, base
		if b.Committed < base {
			b.Committed = base
		}
		e.m.replBatches.Add(1)
		return b, nil
	}
	if err != nil {
		return nil, err
	}
	if err := sh.encodeStream(b, recs, itab); err != nil {
		return nil, err
	}
	e.m.replBatches.Add(1)
	return b, nil
}

// encodeStream renders one batch's records for the wire. Segment payloads
// cannot ship raw when binary: their intern references are segment-scoped,
// so the shard transcodes each record into the follower's stream — a
// per-shard encoder whose table the itab handshake keeps aligned with the
// follower's decoder. JSON-wire followers (itab < 0) get standalone JSON
// regardless of how the record was stored.
func (sh *shard) encodeStream(b *WALBatch, recs []storage.ReplRecord, itab int) error {
	if itab < 0 {
		for i := range recs {
			if codec.IsBinary(recs[i].Payload) {
				rec, ok := recs[i].Rec.(*walRecord)
				if !ok {
					return fmt.Errorf("shard %d: record at lsn %d was not decoded for the stream", sh.idx, recs[i].LSN)
				}
				raw, err := json.Marshal(rec)
				if err != nil {
					return err
				}
				recs[i].Payload = raw
			}
			recs[i].Rec = nil
		}
		b.Records = recs
		return nil
	}
	sh.streamMu.Lock()
	defer sh.streamMu.Unlock()
	if sh.streamEnc == nil {
		sh.streamEnc = codec.NewEncoder()
	}
	if itab != sh.streamEnc.TableLen() {
		// The follower's decoder does not match this encoder (fresh follower,
		// lost response, competing follower): restart the stream's table.
		sh.streamEnc.Reset()
	}
	b.ITab = sh.streamEnc.TableLen()
	b.Codec = "binary"
	for i := range recs {
		rec, ok := recs[i].Rec.(*walRecord)
		if !ok {
			return fmt.Errorf("shard %d: record at lsn %d was not decoded for the stream", sh.idx, recs[i].LSN)
		}
		bin, err := encodeWALRecord(sh.streamEnc, rec)
		if err != nil {
			sh.streamEnc.Reset()
			return err
		}
		recs[i].Bin, recs[i].Payload, recs[i].Rec = bin, nil, nil
	}
	b.Records = recs
	return nil
}

// ReplDecoder is the follower's half of one primary shard's binary stream:
// it holds the intern table the primary's stream encoder builds record by
// record. One decoder per primary shard, fed every record of that stream in
// order; TableLen travels back to the primary with each poll (the itab
// handshake). Not safe for concurrent use — each tail goroutine owns one.
type ReplDecoder struct {
	dec *codec.Decoder
}

// NewReplDecoder returns an empty-table stream decoder.
func NewReplDecoder() *ReplDecoder { return &ReplDecoder{dec: codec.NewDecoder()} }

// TableLen reports the intern entries learned so far.
func (d *ReplDecoder) TableLen() int { return d.dec.TableLen() }

// Reset clears the table (after an itab mismatch).
func (d *ReplDecoder) Reset() { d.dec.Reset() }

// ApplyReplicated applies one streamed WAL record (the raw payload from a
// WALBatch) to this engine as a standby: idempotent like WAL replay, and
// appended to this engine's own WAL before the session mutates, so a nil
// return means the record is as durable here as a locally-acked step.
func (e *Engine) ApplyReplicated(payload []byte) error {
	var rec walRecord
	if err := json.Unmarshal(payload, &rec); err != nil {
		return &BadInputError{Err: fmt.Errorf("replicated record: %w", err)}
	}
	return e.applyReplicatedRecord(&rec)
}

// ApplyReplicatedRecord is ApplyReplicated for a binary-wire stream: the
// payload is decoded against d (auto-detecting per record, so JSON records
// in a binary stream still apply). The caller must feed records in stream
// order — the decoder learns each record's intern definitions as a side
// effect.
func (e *Engine) ApplyReplicatedRecord(d *ReplDecoder, payload []byte) error {
	rec, err := decodeWALPayload(d.dec, payload)
	if err != nil {
		return &BadInputError{Err: fmt.Errorf("replicated record: %w", err)}
	}
	return e.applyReplicatedRecord(rec)
}

func (e *Engine) applyReplicatedRecord(rec *walRecord) error {
	if rec.SID == "" {
		return &BadInputError{Err: fmt.Errorf("replicated record has no session id")}
	}
	if _, err := e.send(e.shardFor(rec.SID), func(sh *shard) (any, error) {
		return nil, sh.applyReplicated(rec)
	}); err != nil {
		return err
	}
	e.m.replApplied.Add(1)
	return nil
}

// InstallReplicated applies one bootstrap snapshot image (from a Reset
// batch) to the standby, replacing any older copy of the session.
func (e *Engine) InstallReplicated(payload []byte) error {
	var img Image
	if err := json.Unmarshal(payload, &img); err != nil {
		return &BadInputError{Err: fmt.Errorf("replicated image: %w", err)}
	}
	if img.ID == "" {
		return &BadInputError{Err: fmt.Errorf("replicated image has no session id")}
	}
	rec := walRecord{T: recInstall, SID: img.ID, Image: &img}
	if _, err := e.send(e.shardFor(img.ID), func(sh *shard) (any, error) {
		return nil, sh.applyReplicated(&rec)
	}); err != nil {
		return err
	}
	e.m.replApplied.Add(1)
	return nil
}

// CloseReplicated retires a standby session that a bootstrap reset proved
// no longer exists on the primary (closed while the follower was behind).
// A close record lands in the standby WAL so replay does not resurrect it.
func (e *Engine) CloseReplicated(id string) error {
	rec := walRecord{T: recClose, SID: id}
	_, err := e.send(e.shardFor(id), func(sh *shard) (any, error) {
		return nil, sh.applyReplicated(&rec)
	})
	return err
}

// applyReplicated is applyRecord's standby twin: the same idempotence
// rules, but mutating records are first appended to this shard's own WAL
// (the group commit acks them durably), install records replace older
// copies, and out-of-order steps surface as ReplGapError instead of
// corrupting recovery.
func (sh *shard) applyReplicated(rec *walRecord) error {
	switch rec.T {
	case recOpen:
		if _, ok := sh.sessions[rec.SID]; ok {
			return nil
		}
		s, err := newSession(rec.SID, &OpenRequest{Model: rec.Model, Src: rec.Src, Mode: rec.Mode, DB: rec.DB, Network: rec.Network})
		if err != nil {
			return err
		}
		if err := sh.appendWAL(rec); err != nil {
			return err
		}
		sh.sessions[rec.SID] = s
		sh.m.sessionsOpen.Add(1)
		sh.m.sessionsOpened.Add(1)
	case recStep:
		s, ok := sh.sessions[rec.SID]
		if !ok {
			return &ReplGapError{SID: rec.SID}
		}
		if rec.Seq <= s.steps {
			return nil // already applied (stream overlap after reconnect)
		}
		if rec.Seq != s.steps+1 {
			return &ReplGapError{SID: rec.SID, Seq: rec.Seq, Have: s.steps}
		}
		if err := sh.appendWAL(rec); err != nil {
			return err
		}
		if s.net != nil {
			if _, err := s.applyNet(rec.NetIn); err != nil {
				return err
			}
		} else if _, err := s.apply(rec.Input); err != nil {
			return err
		}
		s.noteKey(rec.Key, rec.Seq)
		sh.m.stepsTotal.Add(1)
		sh.sinceSnap++
		return sh.maybeSnapshot(false)
	case recBatch:
		s, ok := sh.sessions[rec.SID]
		if !ok {
			return &ReplGapError{SID: rec.SID}
		}
		last := rec.Seq + len(rec.Inputs) - 1
		if last <= s.steps {
			return nil // already applied (stream overlap after reconnect)
		}
		if rec.Seq > s.steps+1 {
			return &ReplGapError{SID: rec.SID, Seq: rec.Seq, Have: s.steps}
		}
		if err := sh.appendWAL(rec); err != nil {
			return err
		}
		// Primaries write batch records atomically, but a reconnect overlap
		// can cover a prefix; apply only the standby's missing suffix.
		for i := s.steps + 1 - rec.Seq; i < len(rec.Inputs); i++ {
			if _, err := s.apply(rec.Inputs[i]); err != nil {
				return err
			}
			if i < len(rec.Keys) {
				s.noteKey(rec.Keys[i], rec.Seq+i)
			}
			sh.m.stepsTotal.Add(1)
			sh.sinceSnap++
		}
		return sh.maybeSnapshot(false)
	case recClose:
		if _, ok := sh.sessions[rec.SID]; !ok {
			return nil
		}
		if err := sh.appendWAL(rec); err != nil {
			return err
		}
		delete(sh.sessions, rec.SID)
		sh.m.sessionsOpen.Add(-1)
		sh.m.sessionsClosed.Add(1)
	case recInstall:
		if rec.Image == nil {
			return fmt.Errorf("replicated install for %s has no image", rec.SID)
		}
		prev, existed := sh.sessions[rec.SID]
		if existed && prev.steps >= rec.Image.Steps {
			return nil // standby already at or past the image
		}
		s, err := rec.Image.restore()
		if err != nil {
			return err
		}
		if err := sh.appendWAL(rec); err != nil {
			return err
		}
		sh.sessions[rec.SID] = s
		if !existed {
			sh.m.sessionsOpen.Add(1)
			sh.m.sessionsOpened.Add(1)
		}
		sh.m.installs.Add(1)
	default:
		return fmt.Errorf("unknown replicated record type %q", rec.T)
	}
	return nil
}
