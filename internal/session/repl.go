package session

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"repro/internal/storage"
)

// The engine's two replication faces.
//
// Primary side: StreamWAL serves committed WAL records (and, after
// compaction, snapshot images) for one shard as long-pollable batches, and
// AckWAL books the follower's applied LSN so Stats can report lag. Both are
// safe from any goroutine: they touch only the store's mutex-guarded
// replication view and an atomic, never the shard's owned state.
//
// Follower side: ApplyReplicated feeds a streamed record through the shard
// goroutine into a standby engine — the same idempotent logic WAL replay
// uses, plus an append to the standby's OWN WAL, so a record acknowledged
// to the stream is durable on the follower under its fsync policy. A
// record that cannot apply (unknown session, step gap) returns
// ReplGapError: the follower's cue to restart from the primary's snapshot.

// Batch size bounds for one stream response; both soft in the sense that a
// single over-sized record still goes through alone.
const (
	streamMaxRecords = 4096
	streamMaxBytes   = 4 << 20
)

// ErrNotDurable reports a replication operation against a memory-only
// engine: with no WAL there is nothing to stream.
var ErrNotDurable = errors.New("session: engine has no durable store to stream")

// WALBatch is one stream response for one primary shard.
type WALBatch struct {
	Shard  int `json:"shard"`
	Shards int `json:"shards"` // the primary's shard count (stream topology)
	// Reset tells the follower its requested LSN was compacted: discard its
	// notion of this shard, install the Snapshot images, resume at Base+1.
	Reset bool `json:"reset,omitempty"`
	// Base is the LSN covered by the primary's snapshot; Committed is the
	// highest LSN this batch could have served (records beyond the batch's
	// size bounds arrive on the next poll).
	Base      int64 `json:"base"`
	Committed int64 `json:"committed"`
	// Snapshot carries the primary shard's snapshot images on Reset.
	Snapshot []json.RawMessage `json:"snapshot,omitempty"`
	// Records are consecutive committed WAL records starting at the
	// requested LSN.
	Records []storage.ReplRecord `json:"records,omitempty"`
}

// ReplShardState summarizes one shard's stream position.
type ReplShardState struct {
	Shard     int   `json:"shard"`
	Base      int64 `json:"base"`
	Committed int64 `json:"committed"`
	Acked     int64 `json:"acked"`
}

// ReplGapError reports a replicated record the standby cannot apply in
// order — the follower must bootstrap from the primary's snapshot.
type ReplGapError struct {
	SID  string
	Seq  int // the record's step number (0 for a missing session)
	Have int // the standby's step count
}

func (err *ReplGapError) Error() string {
	if err.Seq == 0 {
		return fmt.Sprintf("replica gap: no session %s on standby", err.SID)
	}
	return fmt.Sprintf("replica gap: session %s step %d after %d", err.SID, err.Seq, err.Have)
}

// WALState reports every shard's stream position. ErrNotDurable for
// memory-only engines.
func (e *Engine) WALState() ([]ReplShardState, error) {
	out := make([]ReplShardState, 0, len(e.shards))
	for i, sh := range e.shards {
		if sh.store == nil {
			return nil, ErrNotDurable
		}
		rs := sh.store.ReplState()
		out = append(out, ReplShardState{Shard: i, Base: rs.Base, Committed: rs.Committed, Acked: sh.acked.Load()})
	}
	return out, nil
}

// AckWAL records the follower's applied LSN for one shard (monotonic: a
// stale ack never regresses the gauge) and wakes the shard if it is holding
// a semi-sync commit for this LSN. Safe from any goroutine.
func (e *Engine) AckWAL(shard int, lsn int64) {
	if shard < 0 || shard >= len(e.shards) {
		return
	}
	sh := e.shards[shard]
	for {
		old := sh.acked.Load()
		if lsn <= old {
			return
		}
		if sh.acked.CompareAndSwap(old, lsn) {
			if sh.store != nil {
				// Replication slot: snapshot compaction keeps WAL the
				// follower has not acked yet, so the stream survives
				// snapshots without a reset.
				sh.store.SetRetain(lsn)
			}
			select {
			case sh.ackWake <- struct{}{}:
			default:
			}
			return
		}
	}
}

// StreamWAL returns the next batch of committed WAL records for one shard,
// starting at LSN from (1-based). With wait > 0 and nothing new to serve,
// it long-polls until a commit arrives, the wait elapses, or ctx is done —
// gating on group-commit completion by construction, because the store
// publishes an LSN only at its ack points. A from that has been compacted
// into a snapshot comes back as a Reset batch carrying the snapshot
// images.
func (e *Engine) StreamWAL(ctx context.Context, shard int, from int64, wait time.Duration) (*WALBatch, error) {
	if shard < 0 || shard >= len(e.shards) {
		return nil, &BadInputError{Err: fmt.Errorf("no shard %d (engine has %d)", shard, len(e.shards))}
	}
	sh := e.shards[shard]
	if sh.store == nil {
		return nil, ErrNotDurable
	}
	if from < 1 {
		from = 1
	}
	if wait > 0 {
		if st := sh.store.ReplState(); from > st.Committed && from > st.Base {
			wctx, cancel := context.WithTimeout(ctx, wait)
			sh.store.WaitCommitted(wctx, from-1)
			cancel()
		}
	}
	recs, st, err := sh.store.ReadCommitted(from, streamMaxRecords, streamMaxBytes)
	b := &WALBatch{Shard: shard, Shards: len(e.shards), Base: st.Base, Committed: st.Committed}
	if err == storage.ErrCompacted {
		first := true
		base, serr := sh.store.SnapshotRecords(func(p []byte) error {
			if first {
				first = false // the snapHeader record is shard-local, not streamed
				return nil
			}
			b.Snapshot = append(b.Snapshot, append(json.RawMessage(nil), p...))
			return nil
		})
		if serr != nil {
			return nil, serr
		}
		b.Reset, b.Base = true, base
		if b.Committed < base {
			b.Committed = base
		}
		e.m.replBatches.Add(1)
		return b, nil
	}
	if err != nil {
		return nil, err
	}
	b.Records = recs
	e.m.replBatches.Add(1)
	return b, nil
}

// ApplyReplicated applies one streamed WAL record (the raw payload from a
// WALBatch) to this engine as a standby: idempotent like WAL replay, and
// appended to this engine's own WAL before the session mutates, so a nil
// return means the record is as durable here as a locally-acked step.
func (e *Engine) ApplyReplicated(payload []byte) error {
	var rec walRecord
	if err := json.Unmarshal(payload, &rec); err != nil {
		return &BadInputError{Err: fmt.Errorf("replicated record: %w", err)}
	}
	if rec.SID == "" {
		return &BadInputError{Err: fmt.Errorf("replicated record has no session id")}
	}
	if _, err := e.send(e.shardFor(rec.SID), func(sh *shard) (any, error) {
		return nil, sh.applyReplicated(&rec)
	}); err != nil {
		return err
	}
	e.m.replApplied.Add(1)
	return nil
}

// InstallReplicated applies one bootstrap snapshot image (from a Reset
// batch) to the standby, replacing any older copy of the session.
func (e *Engine) InstallReplicated(payload []byte) error {
	var img Image
	if err := json.Unmarshal(payload, &img); err != nil {
		return &BadInputError{Err: fmt.Errorf("replicated image: %w", err)}
	}
	if img.ID == "" {
		return &BadInputError{Err: fmt.Errorf("replicated image has no session id")}
	}
	rec := walRecord{T: recInstall, SID: img.ID, Image: &img}
	if _, err := e.send(e.shardFor(img.ID), func(sh *shard) (any, error) {
		return nil, sh.applyReplicated(&rec)
	}); err != nil {
		return err
	}
	e.m.replApplied.Add(1)
	return nil
}

// CloseReplicated retires a standby session that a bootstrap reset proved
// no longer exists on the primary (closed while the follower was behind).
// A close record lands in the standby WAL so replay does not resurrect it.
func (e *Engine) CloseReplicated(id string) error {
	rec := walRecord{T: recClose, SID: id}
	_, err := e.send(e.shardFor(id), func(sh *shard) (any, error) {
		return nil, sh.applyReplicated(&rec)
	})
	return err
}

// applyReplicated is applyRecord's standby twin: the same idempotence
// rules, but mutating records are first appended to this shard's own WAL
// (the group commit acks them durably), install records replace older
// copies, and out-of-order steps surface as ReplGapError instead of
// corrupting recovery.
func (sh *shard) applyReplicated(rec *walRecord) error {
	switch rec.T {
	case recOpen:
		if _, ok := sh.sessions[rec.SID]; ok {
			return nil
		}
		s, err := newSession(rec.SID, &OpenRequest{Model: rec.Model, Src: rec.Src, Mode: rec.Mode, DB: rec.DB, Network: rec.Network})
		if err != nil {
			return err
		}
		if err := sh.appendWAL(rec); err != nil {
			return err
		}
		sh.sessions[rec.SID] = s
		sh.m.sessionsOpen.Add(1)
		sh.m.sessionsOpened.Add(1)
	case recStep:
		s, ok := sh.sessions[rec.SID]
		if !ok {
			return &ReplGapError{SID: rec.SID}
		}
		if rec.Seq <= s.steps {
			return nil // already applied (stream overlap after reconnect)
		}
		if rec.Seq != s.steps+1 {
			return &ReplGapError{SID: rec.SID, Seq: rec.Seq, Have: s.steps}
		}
		if err := sh.appendWAL(rec); err != nil {
			return err
		}
		if s.net != nil {
			if _, err := s.applyNet(rec.NetIn); err != nil {
				return err
			}
		} else if _, err := s.apply(rec.Input); err != nil {
			return err
		}
		s.noteKey(rec.Key, rec.Seq)
		sh.m.stepsTotal.Add(1)
		sh.sinceSnap++
		return sh.maybeSnapshot(false)
	case recClose:
		if _, ok := sh.sessions[rec.SID]; !ok {
			return nil
		}
		if err := sh.appendWAL(rec); err != nil {
			return err
		}
		delete(sh.sessions, rec.SID)
		sh.m.sessionsOpen.Add(-1)
		sh.m.sessionsClosed.Add(1)
	case recInstall:
		if rec.Image == nil {
			return fmt.Errorf("replicated install for %s has no image", rec.SID)
		}
		prev, existed := sh.sessions[rec.SID]
		if existed && prev.steps >= rec.Image.Steps {
			return nil // standby already at or past the image
		}
		s, err := rec.Image.restore()
		if err != nil {
			return err
		}
		if err := sh.appendWAL(rec); err != nil {
			return err
		}
		sh.sessions[rec.SID] = s
		if !existed {
			sh.m.sessionsOpen.Add(1)
			sh.m.sessionsOpened.Add(1)
		}
		sh.m.installs.Add(1)
	default:
		return fmt.Errorf("unknown replicated record type %q", rec.T)
	}
	return nil
}
