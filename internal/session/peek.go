package session

import "repro/internal/relation"

// View is a stable, immutable snapshot of a session for the live
// verification plane: the machine identity, database, and cumulated past
// inputs, cloned inside the owning shard's goroutine. Because the clone is
// taken between steps (shard FIFO), a View can never observe a torn
// mid-step state, and because it shares nothing with the live session,
// verification reads it freely while the session keeps stepping.
type View struct {
	ID    string
	Model string
	Src   string
	Steps int
	// DB is the session's database (cloned).
	DB relation.Instance
	// Past is the union of all inputs the session has absorbed (cloned) —
	// for a Spocus machine, the whole of its verification-relevant state.
	Past relation.Instance
}

// Peek returns a View of the session. Unlike Export it does not freeze the
// session: it is the read primitive of the verification plane and has no
// effect on the data plane beyond occupying one mailbox slot. Peek works on
// frozen (mid-handoff) sessions too — verifying a session that is being
// moved is legitimate.
func (e *Engine) Peek(id string) (*View, error) {
	v, err := e.send(e.shardFor(id), func(sh *shard) (any, error) {
		s, ok := sh.sessions[id]
		if !ok {
			return nil, &NotFoundError{ID: id}
		}
		return &View{
			ID:    s.id,
			Model: s.model,
			Src:   s.src,
			Steps: s.steps,
			DB:    s.db.Clone(),
			Past:  s.past.Clone(),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*View), nil
}
