package session

import "repro/internal/relation"

// View is a stable, immutable snapshot of a session for the live
// verification plane: the machine identity, database, and cumulated past
// inputs, cloned inside the owning shard's goroutine. Because the clone is
// taken between steps (shard FIFO), a View can never observe a torn
// mid-step state, and because it shares nothing with the live session,
// verification reads it freely while the session keeps stepping.
//
// For a network session Nodes is set instead of the machine-shaped fields:
// one NodeView per member, each a verifiable machine in its own right
// (verification queries address a node with ?node=).
type View struct {
	ID    string
	Model string
	Src   string
	Steps int
	// DB is the session's database (cloned).
	DB relation.Instance
	// Past is the union of all inputs the session has absorbed (cloned) —
	// for a Spocus machine, the whole of its verification-relevant state.
	Past relation.Instance
	// Nodes holds one view per network member (network sessions only).
	Nodes map[string]*NodeView
}

// NodeView is one network member's verifiable identity: its machine (a
// registry model name or inline source), database, and cumulated consumed
// inputs — external stimulus and wired traffic alike, since both drive the
// node's state.
type NodeView struct {
	Model string
	Src   string
	DB    relation.Instance
	Past  relation.Instance
}

// Peek returns a View of the session. Unlike Export it does not freeze the
// session: it is the read primitive of the verification plane and has no
// effect on the data plane beyond occupying one mailbox slot. Peek works on
// frozen (mid-handoff) sessions too — verifying a session that is being
// moved is legitimate.
func (e *Engine) Peek(id string) (*View, error) {
	v, err := e.send(e.shardFor(id), func(sh *shard) (any, error) {
		s, ok := sh.sessions[id]
		if !ok {
			return nil, &NotFoundError{ID: id}
		}
		if s.net != nil {
			nodes := make(map[string]*NodeView, len(s.net.spec.Nodes))
			for _, ns := range s.net.spec.Nodes {
				past := s.net.past[ns.Name]
				if past == nil {
					past = relation.NewInstance()
				} else {
					past = past.Clone()
				}
				nodes[ns.Name] = &NodeView{
					Model: ns.Model,
					Src:   ns.Src,
					DB:    s.net.nw.Node(ns.Name).DB.Clone(),
					Past:  past,
				}
			}
			return &View{ID: s.id, Steps: s.steps, Nodes: nodes}, nil
		}
		return &View{
			ID:    s.id,
			Model: s.model,
			Src:   s.src,
			Steps: s.steps,
			DB:    s.db.Clone(),
			Past:  s.past.Clone(),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*View), nil
}
