package session

import (
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/codec"
	"repro/internal/compose"
	"repro/internal/storage"
)

// Binary record schemas for everything the session layer makes durable:
// WAL records, snapshot streams (header + images), and ship images. The
// framing, interning, and relational value encodings live in internal/codec;
// this file maps the session types onto them. Every record body starts with
// a kind byte, so a record is identifiable wherever it is met (recovery,
// the replication stream, waldump, a fuzzer).
//
// JSON remains a first-class read format forever: every decode path
// auto-detects per record (codec.IsBinary), so WAL segments and snapshots
// written by older JSON-only servers — and segments holding a mix of both —
// replay unchanged under the binary-default engine.

// Codec selects the encoding for records this engine writes.
type Codec int

const (
	// CodecBinary is the compact interned encoding (the default).
	CodecBinary Codec = iota
	// CodecJSON is the legacy textual encoding.
	CodecJSON
)

func (c Codec) String() string {
	switch c {
	case CodecBinary:
		return "binary"
	case CodecJSON:
		return "json"
	}
	return "unknown"
}

// ParseCodec parses a codec name as produced by String. The empty string
// parses as CodecBinary, the default.
func ParseCodec(s string) (Codec, error) {
	switch s {
	case "", "binary":
		return CodecBinary, nil
	case "json":
		return CodecJSON, nil
	}
	return CodecBinary, fmt.Errorf("unknown wal codec %q", s)
}

// Record kinds (the first body byte of every binary record).
const (
	kindWAL         = 1 // a walRecord
	kindSnapHeader  = 2 // a snapshot stream's header
	kindImage       = 3 // one session image in a snapshot stream
	kindStateExport = 4 // a ship image (StateExport), canonical encoding
)

// walRecord presence bits.
const (
	walHasDB = 1 << iota
	walHasNetwork
	walHasInput
	walHasNetIn
	walHasImage
	walHasBatch // Inputs + Keys (batch records)
)

func encodeWALRecord(e *codec.Encoder, rec *walRecord) ([]byte, error) {
	e.Uvarint(kindWAL)
	e.Str(rec.T)
	e.Str(rec.SID)
	e.Str(rec.Model)
	e.Str(rec.Src)
	e.Str(rec.Mode)
	e.Str(rec.Key)
	e.Uvarint(uint64(rec.Seq))
	var flags uint64
	if rec.DB != nil {
		flags |= walHasDB
	}
	if rec.Network != nil {
		flags |= walHasNetwork
	}
	if rec.Input != nil {
		flags |= walHasInput
	}
	if rec.NetIn != nil {
		flags |= walHasNetIn
	}
	if rec.Image != nil {
		flags |= walHasImage
	}
	if rec.Inputs != nil {
		flags |= walHasBatch
	}
	e.Uvarint(flags)
	if rec.DB != nil {
		e.Instance(rec.DB)
	}
	if rec.Network != nil {
		spec, err := json.Marshal(rec.Network)
		if err != nil {
			return nil, fmt.Errorf("wal record: network spec: %w", err)
		}
		e.Bytes(spec)
	}
	if rec.Input != nil {
		e.Instance(rec.Input)
	}
	if rec.NetIn != nil {
		e.StepInputs(rec.NetIn)
	}
	if rec.Image != nil {
		if err := encodeImageBody(e, rec.Image); err != nil {
			return nil, err
		}
	}
	if rec.Inputs != nil {
		e.Sequence(rec.Inputs)
		e.Uvarint(uint64(len(rec.Keys)))
		for _, k := range rec.Keys {
			e.Str(k)
		}
	}
	return e.Finish(), nil
}

func decodeWALBody(r *codec.Reader) (*walRecord, error) {
	rec := &walRecord{}
	rec.T = r.Str()
	rec.SID = r.Str()
	rec.Model = r.Str()
	rec.Src = r.Str()
	rec.Mode = r.Str()
	rec.Key = r.Str()
	rec.Seq = r.Int()
	flags := r.Uvarint()
	if flags&walHasDB != 0 {
		rec.DB = r.Instance()
	}
	if flags&walHasNetwork != 0 {
		spec := &compose.Spec{}
		if data := r.Bytes(); r.Err() == nil {
			if err := json.Unmarshal(data, spec); err != nil {
				return nil, fmt.Errorf("wal record: network spec: %w", err)
			}
			rec.Network = spec
		}
	}
	if flags&walHasInput != 0 {
		rec.Input = r.Instance()
	}
	if flags&walHasNetIn != 0 {
		rec.NetIn = r.StepInputs()
	}
	if flags&walHasImage != 0 {
		img, err := decodeImageBody(r)
		if err != nil {
			return nil, err
		}
		rec.Image = img
	}
	if flags&walHasBatch != 0 {
		rec.Inputs = r.Sequence()
		n := r.Int()
		rec.Keys = make([]string, 0, n)
		for i := 0; i < n && r.Err() == nil; i++ {
			rec.Keys = append(rec.Keys, r.Str())
		}
	}
	if err := r.End(); err != nil {
		return nil, err
	}
	return rec, nil
}

// decodeWALPayload turns one durable payload into a record, auto-detecting
// the format: binary records go through the stream decoder (which learns
// their intern definitions), JSON records parse standalone.
func decodeWALPayload(dec *codec.Decoder, payload []byte) (*walRecord, error) {
	if !codec.IsBinary(payload) {
		rec := &walRecord{}
		if err := json.Unmarshal(payload, rec); err != nil {
			return nil, fmt.Errorf("wal record: %w", err)
		}
		return rec, nil
	}
	r, err := dec.Record(payload)
	if err != nil {
		return nil, err
	}
	if kind := r.Uvarint(); kind != kindWAL {
		return nil, fmt.Errorf("wal record: unexpected kind %d", kind)
	}
	return decodeWALBody(r)
}

// Image presence bits.
const (
	imgHasDB = 1 << iota
	imgHasState
	imgHasLogs
	imgHasInputs
	imgHasKeys
	imgHasNet
)

// NetImage presence bits.
const (
	netHasSpec = 1 << iota
	netHasState
	netHasJoint
	netHasInputs
	netHasPast
)

func encodeImageBody(e *codec.Encoder, img *Image) error {
	e.Str(img.ID)
	e.Str(img.Model)
	e.Str(img.Src)
	e.Str(img.Mode)
	e.Uvarint(uint64(img.Steps))
	e.Bool(img.ErrorFree)
	e.Bool(img.OkEvery)
	e.Bool(img.LastAccept)
	var flags uint64
	if img.DB != nil {
		flags |= imgHasDB
	}
	if img.State != nil {
		flags |= imgHasState
	}
	if img.Logs != nil {
		flags |= imgHasLogs
	}
	if img.Inputs != nil {
		flags |= imgHasInputs
	}
	if img.Keys != nil {
		flags |= imgHasKeys
	}
	if img.Net != nil {
		flags |= imgHasNet
	}
	e.Uvarint(flags)
	if img.DB != nil {
		e.Instance(img.DB)
	}
	if img.State != nil {
		e.Instance(img.State)
	}
	if img.Logs != nil {
		e.Sequence(img.Logs)
	}
	if img.Inputs != nil {
		e.Sequence(img.Inputs)
	}
	if img.Keys != nil {
		encodeKeyTable(e, img.Keys)
	}
	if img.Net != nil {
		return encodeNetImage(e, img.Net)
	}
	return nil
}

func decodeImageBody(r *codec.Reader) (*Image, error) {
	img := &Image{}
	img.ID = r.Str()
	img.Model = r.Str()
	img.Src = r.Str()
	img.Mode = r.Str()
	img.Steps = r.Int()
	img.ErrorFree = r.Bool()
	img.OkEvery = r.Bool()
	img.LastAccept = r.Bool()
	flags := r.Uvarint()
	if flags&imgHasDB != 0 {
		img.DB = r.Instance()
	}
	if flags&imgHasState != 0 {
		img.State = r.Instance()
	}
	if flags&imgHasLogs != 0 {
		img.Logs = r.Sequence()
	}
	if flags&imgHasInputs != 0 {
		img.Inputs = r.Sequence()
	}
	if flags&imgHasKeys != 0 {
		img.Keys = decodeKeyTable(r)
	}
	if flags&imgHasNet != 0 {
		net, err := decodeNetImage(r)
		if err != nil {
			return nil, err
		}
		img.Net = net
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	return img, nil
}

func encodeKeyTable(e *codec.Encoder, keys map[string]int) {
	names := make([]string, 0, len(keys))
	for k := range keys {
		names = append(names, k)
	}
	sort.Strings(names)
	e.Uvarint(uint64(len(names)))
	for _, k := range names {
		e.Str(k)
		e.Uvarint(uint64(keys[k]))
	}
}

func decodeKeyTable(r *codec.Reader) map[string]int {
	n := r.Int()
	keys := make(map[string]int, n)
	for i := 0; i < n && r.Err() == nil; i++ {
		k := r.Str()
		keys[k] = r.Int()
	}
	return keys
}

func encodeNetImage(e *codec.Encoder, net *NetImage) error {
	var flags uint64
	if net.Spec != nil {
		flags |= netHasSpec
	}
	if net.State != nil {
		flags |= netHasState
	}
	if net.Joint != nil {
		flags |= netHasJoint
	}
	if net.Inputs != nil {
		flags |= netHasInputs
	}
	if net.Past != nil {
		flags |= netHasPast
	}
	e.Uvarint(flags)
	if net.Spec != nil {
		// Specs are small, rare (once per network session), and carry no
		// repeated constants worth interning — an embedded JSON blob keeps
		// the schema out of the hot format.
		data, err := json.Marshal(net.Spec)
		if err != nil {
			return fmt.Errorf("net image: spec: %w", err)
		}
		e.Bytes(data)
	}
	if net.State != nil {
		e.Uvarint(uint64(net.State.Steps))
		var stFlags uint64
		if net.State.States != nil {
			stFlags |= 1
		}
		if net.State.PrevOut != nil {
			stFlags |= 2
		}
		e.Uvarint(stFlags)
		if net.State.States != nil {
			e.InstanceMap(net.State.States)
		}
		if net.State.PrevOut != nil {
			e.InstanceMap(net.State.PrevOut)
		}
	}
	if net.Joint != nil {
		encodeJoint(e, net.Joint)
	}
	if net.Inputs != nil {
		e.Uvarint(uint64(len(net.Inputs)))
		for _, in := range net.Inputs {
			e.StepInputs(in)
		}
	}
	if net.Past != nil {
		e.InstanceMap(net.Past)
	}
	return nil
}

func decodeNetImage(r *codec.Reader) (*NetImage, error) {
	net := &NetImage{}
	flags := r.Uvarint()
	if flags&netHasSpec != 0 {
		spec := &compose.Spec{}
		if data := r.Bytes(); r.Err() == nil {
			if err := json.Unmarshal(data, spec); err != nil {
				return nil, fmt.Errorf("net image: spec: %w", err)
			}
			net.Spec = spec
		}
	}
	if flags&netHasState != 0 {
		st := &compose.NetState{Steps: r.Int()}
		stFlags := r.Uvarint()
		if stFlags&1 != 0 {
			st.States = r.InstanceMap()
		}
		if stFlags&2 != 0 {
			st.PrevOut = r.InstanceMap()
		}
		net.State = st
	}
	if flags&netHasJoint != 0 {
		net.Joint = decodeJoint(r)
	}
	if flags&netHasInputs != 0 {
		n := r.Int()
		net.Inputs = make([]compose.StepInputs, 0, n)
		for i := 0; i < n && r.Err() == nil; i++ {
			net.Inputs = append(net.Inputs, r.StepInputs())
		}
	}
	if flags&netHasPast != 0 {
		net.Past = r.InstanceMap()
	}
	return net, r.Err()
}

// encodeJoint appends a network session's joint log — the canonical form
// JointLogDigest hashes, so its encoding must stay deterministic.
func encodeJoint(e *codec.Encoder, joint []JointLogEntry) {
	e.Uvarint(uint64(len(joint)))
	for _, je := range joint {
		e.StepInputs(je.Logs)
		e.Uvarint(uint64(len(je.Wire)))
		for _, wd := range je.Wire {
			e.Str(wd.From)
			e.Str(wd.Output)
			e.Str(wd.To)
			e.Str(wd.Input)
			e.Uvarint(uint64(len(wd.Facts)))
			for _, t := range wd.Facts {
				e.Tuple(t)
			}
		}
	}
}

func decodeJoint(r *codec.Reader) []JointLogEntry {
	n := r.Int()
	joint := make([]JointLogEntry, 0, n)
	for i := 0; i < n && r.Err() == nil; i++ {
		je := JointLogEntry{Logs: r.StepInputs()}
		nw := r.Int()
		for j := 0; j < nw && r.Err() == nil; j++ {
			wd := compose.WireDelta{From: r.Str(), Output: r.Str(), To: r.Str(), Input: r.Str()}
			nf := r.Int()
			for k := 0; k < nf && r.Err() == nil; k++ {
				wd.Facts = append(wd.Facts, r.Tuple())
			}
			je.Wire = append(je.Wire, wd)
		}
		joint = append(joint, je)
	}
	return joint
}

func encodeImageRecord(e *codec.Encoder, img *Image) ([]byte, error) {
	e.Uvarint(kindImage)
	if err := encodeImageBody(e, img); err != nil {
		return nil, err
	}
	return e.Finish(), nil
}

func encodeSnapHeaderRecord(e *codec.Encoder, h snapHeader) []byte {
	e.Uvarint(kindSnapHeader)
	e.Uvarint(uint64(h.Version))
	e.Uvarint(uint64(h.Shard))
	return e.Finish()
}

// decodeSnapPayload parses one snapshot stream record in either format.
// first distinguishes the JSON header from JSON images (JSON records are
// positional); binary records carry their kind.
func decodeSnapPayload(dec *codec.Decoder, payload []byte, first bool) (*snapHeader, *Image, error) {
	if !codec.IsBinary(payload) {
		if first {
			h := &snapHeader{}
			if err := json.Unmarshal(payload, h); err != nil {
				return nil, nil, fmt.Errorf("snapshot header: %w", err)
			}
			return h, nil, nil
		}
		img := &Image{}
		if err := json.Unmarshal(payload, img); err != nil {
			return nil, nil, fmt.Errorf("snapshot session: %w", err)
		}
		return nil, img, nil
	}
	r, err := dec.Record(payload)
	if err != nil {
		return nil, nil, err
	}
	switch kind := r.Uvarint(); kind {
	case kindSnapHeader:
		h := &snapHeader{Version: r.Int(), Shard: r.Int()}
		if err := r.End(); err != nil {
			return nil, nil, err
		}
		return h, nil, nil
	case kindImage:
		img, err := decodeImageBody(r)
		if err != nil {
			return nil, nil, err
		}
		if err := r.Err(); err != nil {
			return nil, nil, err
		}
		return nil, img, nil
	default:
		return nil, nil, fmt.Errorf("snapshot record: unexpected kind %d", kind)
	}
}

// EncodeStateExport renders a ship image in its canonical binary form: a
// fresh intern table, so the bytes are a deterministic function of the
// value and safe to move between engines on their own.
func EncodeStateExport(se *StateExport) ([]byte, error) {
	e := codec.NewEncoder()
	e.Uvarint(kindStateExport)
	e.Bytes([]byte(se.Digest))
	if err := encodeImageBody(e, se.Image); err != nil {
		return nil, err
	}
	return e.Finish(), nil
}

// DecodeStateExport parses a canonical binary ship image.
func DecodeStateExport(data []byte) (*StateExport, error) {
	dec := codec.NewDecoder()
	r, err := dec.Record(data)
	if err != nil {
		return nil, err
	}
	if kind := r.Uvarint(); kind != kindStateExport {
		return nil, fmt.Errorf("state export: unexpected kind %d", kind)
	}
	digest := string(r.Bytes())
	img, err := decodeImageBody(r)
	if err != nil {
		return nil, err
	}
	if err := r.End(); err != nil {
		return nil, err
	}
	return &StateExport{Image: img, Digest: digest}, nil
}

// walStreamDecoder adapts the session decode to storage's replication-scan
// hook: ReadCommitted feeds it every scanned payload in segment order, so
// binary records resolve their intern references even when the scan serves
// only a suffix of the segment.
type walStreamDecoder struct{ dec *codec.Decoder }

func newWALStreamDecoder() storage.StreamDecoder {
	return &walStreamDecoder{dec: codec.NewDecoder()}
}

func (d *walStreamDecoder) Decode(payload []byte) (any, error) {
	return decodeWALPayload(d.dec, payload)
}
