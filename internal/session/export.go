package session

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"repro/internal/codec"
	"repro/internal/compose"
	"repro/internal/relation"
)

// Session handoff, the cluster layer's rebalancing primitive.
//
// Because stepping is deterministic (§2 Spocus semantics: state and log are
// a function of the database and the input sequence alone), a session's
// portable identity is exactly its open parameters plus the sequence of
// input instances it has absorbed — the same records the WAL stores. Export
// freezes a session and returns that history; replaying it through the
// ordinary Open/Input path on another engine reconstructs state and log
// bit-for-bit. Forget then retires the source copy, and Unfreeze aborts a
// handoff that could not complete.
//
// The freeze mark is deliberately not persisted: a crash mid-handoff
// restarts the source with the session live and unfrozen, which is safe
// because the router only retires the source copy (Forget) after the
// target has acknowledged the full replay.

// Export is a session's replayable history: everything needed to
// reconstruct it on another engine by deterministic replay. Network
// sessions carry their spec and per-step external inputs instead of the
// machine-shaped fields.
type Export struct {
	ID    string `json:"id"`
	Model string `json:"model,omitempty"`
	Src   string `json:"src,omitempty"`
	Mode  string `json:"mode"`
	// DB is always present (never omitted), so an explicitly empty database
	// survives the trip and is not mistaken for "use the model default".
	DB     relation.Instance `json:"db"`
	Steps  int               `json:"steps"`
	Inputs relation.Sequence `json:"inputs"`
	// Network session fields: the spec (identity) and the external inputs
	// of every joint step (wired inputs are recomputed on replay).
	Network   *compose.Spec        `json:"network,omitempty"`
	NetInputs []compose.StepInputs `json:"netInputs,omitempty"`
}

// Export freezes the session against further mutation and returns its
// replayable history. Export is idempotent: re-exporting a frozen session
// returns the same history again. Reads (Info, Log) keep working on a
// frozen session; Input and Close fail with FrozenError until Unfreeze or
// Forget.
func (e *Engine) Export(id string) (*Export, error) {
	v, err := e.send(e.shardFor(id), func(sh *shard) (any, error) {
		s, ok := sh.sessions[id]
		if !ok {
			return nil, &NotFoundError{ID: id}
		}
		s.frozen = true
		sh.m.exports.Add(1)
		if s.net != nil {
			return &Export{
				ID:        s.id,
				Mode:      s.mode.String(),
				DB:        relation.NewInstance(),
				Steps:     s.steps,
				Network:   s.net.spec.Clone(),
				NetInputs: cloneStepInputsSeq(s.net.inputs),
			}, nil
		}
		return &Export{
			ID:     s.id,
			Model:  s.model,
			Src:    s.src,
			Mode:   s.mode.String(),
			DB:     s.db.Clone(),
			Steps:  s.steps,
			Inputs: s.inputs.Clone(),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*Export), nil
}

// StateExport is a session's full materialized state plus a digest of its
// log — the WAL-shipping alternative to Export. Shipping the image costs
// O(state), not O(steps): the target installs it directly instead of
// re-stepping the whole input history. The digest lets the target prove
// the installed log is the log the source acknowledged.
type StateExport struct {
	Image  *Image `json:"image"`
	Digest string `json:"digest"` // LogDigest of the session's log sequence
}

// LogDigest is the canonical digest of a session log: sha-256 over the
// log sequence's canonical binary encoding, which is deterministic (fresh
// intern table, sorted names and tuples). Two engines hold identical logs
// iff their digests match; both ship ends compute it over the same
// canonical bytes regardless of which wire carried the image.
func LogDigest(logs relation.Sequence) string {
	sum := sha256.Sum256(codec.Canonical(func(enc *codec.Encoder) { enc.Sequence(logs) }))
	return hex.EncodeToString(sum[:])
}

// ExportState freezes the session (exactly like Export) and returns a
// deep-copied state image plus its log digest. Idempotent, like Export —
// the two may be mixed: a router can try ExportState and fall back to
// Export-and-replay on the same frozen session.
func (e *Engine) ExportState(id string) (*StateExport, error) {
	v, err := e.send(e.shardFor(id), func(sh *shard) (any, error) {
		s, ok := sh.sessions[id]
		if !ok {
			return nil, &NotFoundError{ID: id}
		}
		s.frozen = true
		sh.m.exports.Add(1)
		// Deep-copy through JSON inside the shard: the caller may hold the
		// image across an Unfreeze, after which the live session mutates.
		img := snapOf(s)
		data, err := json.Marshal(&img)
		if err != nil {
			return nil, err
		}
		var copyImg Image
		if err := json.Unmarshal(data, &copyImg); err != nil {
			return nil, err
		}
		return &StateExport{Image: &copyImg, Digest: s.logDigest()}, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*StateExport), nil
}

// ExportStateBinary is ExportState rendered as one canonical binary codec
// record: digest plus image, self-contained (fresh intern table), ready to
// POST as an octet-stream body. The interning pays off hardest here —
// a ship image is one record full of repeated constants.
func (e *Engine) ExportStateBinary(id string) ([]byte, error) {
	se, err := e.ExportState(id)
	if err != nil {
		return nil, err
	}
	data, err := EncodeStateExport(se)
	if err != nil {
		return nil, err
	}
	e.shardFor(id).shipBytesTotal.Add(int64(len(data)))
	return data, nil
}

// InstallBinary is Install for a canonical binary ship image (the bytes
// ExportStateBinary produced on the source).
func (e *Engine) InstallBinary(data []byte) (*Info, error) {
	se, err := DecodeStateExport(data)
	if err != nil {
		return nil, &BadInputError{Err: fmt.Errorf("install: %w", err)}
	}
	info, err := e.Install(se)
	if err == nil {
		e.shardFor(se.Image.ID).shipBytesTotal.Add(int64(len(data)))
	}
	return info, err
}

// Install materializes a shipped session on this engine: the image is
// restored, its log digest is verified against the source's, and an
// install record (carrying the full image — its inputs were logged
// elsewhere) is written to the WAL before the session goes live. A digest
// mismatch rejects the install with BadInputError, signalling the caller
// to fall back to deterministic replay.
func (e *Engine) Install(se *StateExport) (*Info, error) {
	if se == nil || se.Image == nil {
		return nil, &BadInputError{Err: fmt.Errorf("install: missing state image")}
	}
	id := se.Image.ID
	if id == "" {
		return nil, &BadInputError{Err: fmt.Errorf("install: image has no session id")}
	}
	s, err := se.Image.restore()
	if err != nil {
		return nil, &BadInputError{Err: fmt.Errorf("install: %w", err)}
	}
	if got := s.logDigest(); got != se.Digest {
		return nil, &BadInputError{Err: fmt.Errorf("install: log digest mismatch for %s: source %s, restored %s", id, se.Digest, got)}
	}
	v, err := e.trySend(e.shardFor(id), func(sh *shard) (any, error) {
		if _, ok := sh.sessions[id]; ok {
			return nil, &ConflictError{ID: id}
		}
		if err := sh.appendWAL(&walRecord{T: recInstall, SID: id, Image: se.Image}); err != nil {
			return nil, err
		}
		sh.sessions[id] = s
		sh.m.sessionsOpen.Add(1)
		sh.m.sessionsOpened.Add(1)
		sh.m.installs.Add(1)
		return s.info(), nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*Info), nil
}

// Unfreeze lifts a freeze set by Export, aborting a handoff. It is a no-op
// on a session that is not frozen.
func (e *Engine) Unfreeze(id string) error {
	_, err := e.send(e.shardFor(id), func(sh *shard) (any, error) {
		s, ok := sh.sessions[id]
		if !ok {
			return nil, &NotFoundError{ID: id}
		}
		s.frozen = false
		return nil, nil
	})
	return err
}

// Forget retires a handed-off session: it is removed from the engine and a
// close record is logged so replay does not resurrect it, but no final-log
// semantics apply — the session lives on wherever its export was replayed.
// Forget refuses sessions that were never frozen, so a stray call cannot
// drop live state.
func (e *Engine) Forget(id string) error {
	_, err := e.send(e.shardFor(id), func(sh *shard) (any, error) {
		s, ok := sh.sessions[id]
		if !ok {
			return nil, &NotFoundError{ID: id}
		}
		if !s.frozen {
			return nil, &BadInputError{Err: fmt.Errorf("session %s: forget requires a prior export", id)}
		}
		if err := sh.appendWAL(&walRecord{T: recClose, SID: id}); err != nil {
			return nil, err
		}
		delete(sh.sessions, id)
		sh.m.sessionsOpen.Add(-1)
		sh.m.handoffs.Add(1)
		return nil, nil
	})
	return err
}

// FrozenError reports a mutation attempted on a session frozen for handoff.
// The HTTP layer maps it to 503 with Retry-After: the session is about to
// be served elsewhere, and the router will route there once the ring flips.
type FrozenError struct{ ID string }

func (err *FrozenError) Error() string {
	return fmt.Sprintf("session %s is frozen for handoff", err.ID)
}
