package session

import (
	"fmt"

	"repro/internal/relation"
)

// Session handoff, the cluster layer's rebalancing primitive.
//
// Because stepping is deterministic (§2 Spocus semantics: state and log are
// a function of the database and the input sequence alone), a session's
// portable identity is exactly its open parameters plus the sequence of
// input instances it has absorbed — the same records the WAL stores. Export
// freezes a session and returns that history; replaying it through the
// ordinary Open/Input path on another engine reconstructs state and log
// bit-for-bit. Forget then retires the source copy, and Unfreeze aborts a
// handoff that could not complete.
//
// The freeze mark is deliberately not persisted: a crash mid-handoff
// restarts the source with the session live and unfrozen, which is safe
// because the router only retires the source copy (Forget) after the
// target has acknowledged the full replay.

// Export is a session's replayable history: everything needed to
// reconstruct it on another engine by deterministic replay.
type Export struct {
	ID    string `json:"id"`
	Model string `json:"model,omitempty"`
	Src   string `json:"src,omitempty"`
	Mode  string `json:"mode"`
	// DB is always present (never omitted), so an explicitly empty database
	// survives the trip and is not mistaken for "use the model default".
	DB     relation.Instance `json:"db"`
	Steps  int               `json:"steps"`
	Inputs relation.Sequence `json:"inputs"`
}

// Export freezes the session against further mutation and returns its
// replayable history. Export is idempotent: re-exporting a frozen session
// returns the same history again. Reads (Info, Log) keep working on a
// frozen session; Input and Close fail with FrozenError until Unfreeze or
// Forget.
func (e *Engine) Export(id string) (*Export, error) {
	v, err := e.send(e.shardFor(id), func(sh *shard) (any, error) {
		s, ok := sh.sessions[id]
		if !ok {
			return nil, &NotFoundError{ID: id}
		}
		s.frozen = true
		sh.m.exports.Add(1)
		return &Export{
			ID:     s.id,
			Model:  s.model,
			Src:    s.src,
			Mode:   s.mode.String(),
			DB:     s.db.Clone(),
			Steps:  s.steps,
			Inputs: s.inputs.Clone(),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*Export), nil
}

// Unfreeze lifts a freeze set by Export, aborting a handoff. It is a no-op
// on a session that is not frozen.
func (e *Engine) Unfreeze(id string) error {
	_, err := e.send(e.shardFor(id), func(sh *shard) (any, error) {
		s, ok := sh.sessions[id]
		if !ok {
			return nil, &NotFoundError{ID: id}
		}
		s.frozen = false
		return nil, nil
	})
	return err
}

// Forget retires a handed-off session: it is removed from the engine and a
// close record is logged so replay does not resurrect it, but no final-log
// semantics apply — the session lives on wherever its export was replayed.
// Forget refuses sessions that were never frozen, so a stray call cannot
// drop live state.
func (e *Engine) Forget(id string) error {
	_, err := e.send(e.shardFor(id), func(sh *shard) (any, error) {
		s, ok := sh.sessions[id]
		if !ok {
			return nil, &NotFoundError{ID: id}
		}
		if !s.frozen {
			return nil, &BadInputError{Err: fmt.Errorf("session %s: forget requires a prior export", id)}
		}
		if err := sh.appendWAL(&walRecord{T: recClose, SID: id}); err != nil {
			return nil, err
		}
		delete(sh.sessions, id)
		sh.m.sessionsOpen.Add(-1)
		sh.m.handoffs.Add(1)
		return nil, nil
	})
	return err
}

// FrozenError reports a mutation attempted on a session frozen for handoff.
// The HTTP layer maps it to 503 with Retry-After: the session is about to
// be served elsewhere, and the router will route there once the ring flips.
type FrozenError struct{ ID string }

func (err *FrozenError) Error() string {
	return fmt.Sprintf("session %s is frozen for handoff", err.ID)
}
