package session

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/relation"
)

// The batched input path. A client hands the engine a group of
// (session, input, key) steps spanning any number of sessions; the engine
// splits the group by owning shard and injects each shard's share in ONE
// mailbox send, so the whole share executes inside one group-commit batch —
// one shared fsync acknowledges every step in it. Per item the semantics
// are exactly InputKey's: the same admission checks in the same order, the
// same idempotency-key dedupe (including keys repeated WITHIN the group),
// per-item errors that never fail their neighbors, and a WAL that is never
// torn mid-group (a session's applied steps land in one CRC-framed record).

// BatchItem is one step of a batched input request.
type BatchItem struct {
	Session string            `json:"session"`
	Key     string            `json:"key,omitempty"`
	Input   relation.Instance `json:"input"`
}

// BatchResult is the outcome of one batch item: exactly one of Result and
// Err is set. Errors are the same typed errors the single-step path
// returns (NotFoundError, BadInputError, RateLimitedError, ...), so the
// HTTP layer maps them to the same per-item status codes.
type BatchResult struct {
	Result *StepResult
	Err    error
}

// InputBatch applies a group of steps across any number of sessions and
// returns one result per item, positionally. Items of one session apply
// in the order given; items of different sessions owned by one shard share
// a single WAL commit; shards proceed concurrently. A shard-level failure
// (overloaded mailbox, engine shutdown, WAL write error) fails every item
// routed to that shard — partial failure is otherwise strictly per-item.
func (e *Engine) InputBatch(items []BatchItem) []BatchResult {
	out := make([]BatchResult, len(items))
	if len(items) == 0 {
		return out
	}
	start := time.Now()
	// Group item indexes by owning shard, preserving arrival order.
	byShard := make(map[*shard][]int)
	var order []*shard
	for i := range items {
		sh := e.shardFor(items[i].Session)
		if _, ok := byShard[sh]; !ok {
			order = append(order, sh)
		}
		byShard[sh] = append(byShard[sh], i)
	}
	run := func(sh *shard, idxs []int) {
		// One send per shard: the whole share executes under one exec() and
		// its appends commit under one shared fsync before this reply.
		_, err := e.trySend(sh, func(sh *shard) (any, error) {
			return nil, sh.inputBatch(idxs, items, out)
		})
		if err != nil {
			for _, i := range idxs {
				out[i] = BatchResult{Err: err}
			}
		}
	}
	if len(order) == 1 {
		run(order[0], byShard[order[0]])
	} else {
		var wg sync.WaitGroup
		for _, sh := range order {
			wg.Add(1)
			go func(sh *shard, idxs []int) {
				defer wg.Done()
				run(sh, idxs)
			}(sh, byShard[sh])
		}
		wg.Wait()
	}
	e.m.stepLatency.observe(time.Since(start))
	return out
}

// inputBatch runs inside the shard goroutine: it partitions the shard's
// share of the batch by session (preserving item order) and applies each
// session group under one WAL record. The returned error is shard-fatal
// (snapshot failure under the fail-stop discipline); per-item outcomes
// land in out.
func (sh *shard) inputBatch(idxs []int, items []BatchItem, out []BatchResult) error {
	groups := make(map[string][]int)
	var order []string
	for _, i := range idxs {
		id := items[i].Session
		if _, ok := groups[id]; !ok {
			order = append(order, id)
		}
		groups[id] = append(groups[id], i)
	}
	applied := 0
	for _, id := range order {
		applied += sh.applyGroup(id, groups[id], items, out)
	}
	if applied > 0 {
		sh.sinceSnap += applied
		if err := sh.maybeSnapshot(false); err != nil {
			return err
		}
	}
	return nil
}

// applyGroup admits, logs, and applies one session's items. Admission
// mirrors InputKey check for check: dedupe (against the persisted table
// AND keys earlier in this group), frozen, rate limit, input validation.
// The admitted steps form one record — recStep for a single step (so a
// batch of one is byte-identical to the unbatched path), recBatch
// otherwise — appended before application, exactly like the single-step
// path. Returns the number of steps applied.
func (sh *shard) applyGroup(id string, idxs []int, items []BatchItem, out []BatchResult) int {
	s, ok := sh.sessions[id]
	if !ok {
		err := &NotFoundError{ID: id}
		for _, i := range idxs {
			out[i] = BatchResult{Err: err}
		}
		return 0
	}
	if s.net != nil {
		err := &BadInputError{Err: fmt.Errorf("session %s is a network session; address inputs per node", id)}
		for _, i := range idxs {
			out[i] = BatchResult{Err: err}
		}
		return 0
	}
	// pendingDup marks an item whose key repeats an EARLIER item of this
	// group: its duplicate answer can only be built after that step applies.
	type pendingDup struct{ idx, seq int }
	var admitted []int
	var dups []pendingDup
	var groupKeys map[string]int // key → seq assigned earlier in this group
	nextSeq := s.steps + 1
	for _, i := range idxs {
		it := &items[i]
		if it.Key != "" {
			if seq, ok := s.keys[it.Key]; ok {
				sh.m.dedupedSteps.Add(1)
				out[i] = BatchResult{Result: s.dupResult(seq)}
				continue
			}
			if seq, ok := groupKeys[it.Key]; ok {
				sh.m.dedupedSteps.Add(1)
				dups = append(dups, pendingDup{idx: i, seq: seq})
				continue
			}
		}
		if s.frozen {
			out[i] = BatchResult{Err: &FrozenError{ID: id}}
			continue
		}
		if sh.cfg.SessionRate > 0 {
			if ok, wait := s.rate.take(sh.cfg.SessionRate, float64(sh.cfg.SessionBurst), time.Now()); !ok {
				sh.m.rateLimited.Add(1)
				out[i] = BatchResult{Err: &RateLimitedError{ID: id, RetryAfter: wait}}
				continue
			}
		}
		if err := s.validateInput(it.Input); err != nil {
			out[i] = BatchResult{Err: &BadInputError{Err: err}}
			continue
		}
		if it.Key != "" {
			if groupKeys == nil {
				groupKeys = make(map[string]int)
			}
			groupKeys[it.Key] = nextSeq
		}
		admitted = append(admitted, i)
		nextSeq++
	}
	if len(admitted) == 0 {
		return 0
	}
	var rec *walRecord
	if len(admitted) == 1 {
		i := admitted[0]
		rec = &walRecord{T: recStep, SID: id, Seq: s.steps + 1, Input: items[i].Input, Key: items[i].Key}
	} else {
		inputs := make(relation.Sequence, 0, len(admitted))
		keys := make([]string, 0, len(admitted))
		for _, i := range admitted {
			inputs = append(inputs, items[i].Input)
			keys = append(keys, items[i].Key)
		}
		rec = &walRecord{T: recBatch, SID: id, Seq: s.steps + 1, Inputs: inputs, Keys: keys}
	}
	if err := sh.appendWAL(rec); err != nil {
		for _, i := range admitted {
			out[i] = BatchResult{Err: err}
		}
		for _, d := range dups {
			out[d.idx] = BatchResult{Err: err}
		}
		return 0
	}
	applied := 0
	for n, i := range admitted {
		res, err := s.apply(items[i].Input)
		if err != nil {
			// Deterministic evaluation failure (unreachable past validation,
			// same as the single-step path): the rest of the group cannot
			// apply without diverging from the record, so fail it wholesale.
			werr := &BadInputError{Err: err}
			for _, j := range admitted[n:] {
				out[j] = BatchResult{Err: werr}
			}
			for _, d := range dups {
				out[d.idx] = BatchResult{Err: werr}
			}
			return applied
		}
		s.noteKey(items[i].Key, res.Seq)
		sh.m.stepsTotal.Add(1)
		out[i] = BatchResult{Result: res}
		applied++
	}
	for _, d := range dups {
		out[d.idx] = BatchResult{Result: s.dupResult(d.seq)}
	}
	return applied
}
