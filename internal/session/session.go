// Package session is the serving runtime of this reproduction: an engine
// hosting many concurrent live runs of Spocus transducers — one session per
// customer, exactly the paper's picture of a business model as a machine
// mapping a customer's input-relation sequence to outputs and a durable log
// (Section 2.1, Figures 1–2).
//
// Sessions are sharded across goroutine-owned shards by session ID, so
// steps on different sessions never contend while steps on one session are
// applied in FIFO order. Every applied event is appended to a per-shard
// write-ahead log of length-prefixed JSON records and periodically compacted
// into snapshots; on startup the engine replays snapshot + WAL, so the log —
// the paper's semantically significant object — survives crashes. Package
// core does the actual stepping; this package adds lifecycle, durability,
// concurrency, metrics, and the HTTP surface (see Handler).
package session

import (
	"fmt"

	"repro/internal/compose"
	"repro/internal/core"
	"repro/internal/models"
	"repro/internal/relation"
)

// Session is one live run of a transducer: the paper's (database, input
// sequence) run unrolled over time, holding only the cumulative state and
// the log — outputs are returned to the client at each step and not
// retained.
type Session struct {
	id    string
	model string // registry name, "" when built from inline source
	src   string // inline program source, "" when built from the registry
	mode  core.AcceptMode
	mach  *core.Machine
	db    relation.Instance
	state relation.Instance
	logs  relation.Sequence // per-step log deltas, the durable object
	// inputs is the session's absorbed input sequence — its replayable
	// identity under determinism. The WAL holds the same records, but WAL
	// compaction folds them into snapshots, so the session keeps its own
	// copy to stay exportable (see Export) at any moment.
	inputs relation.Sequence
	// past is the cumulated union of all absorbed inputs — for a Spocus
	// machine, the whole of the session's verification-relevant state. The
	// live verification plane reads a clone of it (see Peek); keeping the
	// union incrementally makes that read O(state), not O(history).
	past  relation.Instance
	steps int
	// frozen marks a session mid-handoff: reads proceed, mutations fail
	// with FrozenError. Not persisted (see export.go).
	frozen bool
	// rate is the session's step-rate token bucket (see ratelimit.go).
	// In-memory policy only, never persisted.
	rate bucket
	// keys maps client idempotency keys to the 1-based step each first
	// produced. The table is persisted (keys travel in step WAL records and
	// in snapshot images), so dedupe survives recovery, handoff, and
	// promotion: a retried step is answered from the log instead of being
	// applied twice. Unbounded by design — sessions are short-lived and a
	// key costs a few dozen bytes.
	keys map[string]int

	// Acceptance bookkeeping under the three disciplines of Section 4.
	// For network sessions the flags aggregate across nodes: any node's
	// error fact breaks error-freeness, ok/accept require every node.
	errorFree  bool // no output so far contained an error fact
	okEvery    bool // every output so far contained ok
	lastAccept bool // the most recent output contained accept

	// net is set iff this is a network session (see network.go); then mach,
	// db, state, logs, inputs, and past above are unused (nil).
	net *netRun
}

// OpenRequest describes a session to open. Exactly one of Model (a name
// from internal/models' registry), Src (an inline transducer program), or
// Network (a whole transducer network, stepped jointly — see network.go)
// must be set. DB defaults to the model's demo database (registry models)
// or empty (inline programs); network nodes carry their own databases.
// Mode defaults to AcceptAll.
type OpenRequest struct {
	ID      string            `json:"id,omitempty"`
	Model   string            `json:"model,omitempty"`
	Src     string            `json:"src,omitempty"`
	Mode    string            `json:"mode,omitempty"`
	DB      relation.Instance `json:"db,omitempty"`
	Network *compose.Spec     `json:"network,omitempty"`
}

// getModel resolves a registry name to a fresh machine (nil if unknown);
// shared by open and snapshot restore.
func getModel(name string) *core.Machine { return models.Get(name) }

// newSession validates req and builds the session in its initial state
// (empty state instance, empty log). It is pure: no I/O, no registration.
func newSession(id string, req *OpenRequest) (*Session, error) {
	mode, err := core.ParseAcceptMode(req.Mode)
	if err != nil {
		return nil, fmt.Errorf("open: %w", err)
	}
	if req.Network != nil {
		return newNetSession(id, req, mode)
	}
	if req.Model == "" && req.Src == "" {
		return nil, fmt.Errorf("open: one of model, src, or network is required")
	}
	if req.Model != "" && req.Src != "" {
		return nil, fmt.Errorf("open: model and src are mutually exclusive")
	}
	var mach *core.Machine
	if req.Model != "" {
		if mach = getModel(req.Model); mach == nil {
			return nil, fmt.Errorf("open: unknown model %q", req.Model)
		}
	} else {
		if mach, err = core.ParseProgram(req.Src); err != nil {
			return nil, fmt.Errorf("open: %w", err)
		}
	}
	db := req.DB
	if db == nil {
		if req.Model != "" {
			db = models.DefaultDB(req.Model)
		} else {
			db = relation.NewInstance()
		}
	} else {
		db = db.Clone() // decouple from the caller (and from other sessions)
	}
	s := &Session{
		id:        id,
		model:     req.Model,
		src:       req.Src,
		mode:      mode,
		mach:      mach,
		db:        db,
		state:     relation.NewInstance(),
		past:      relation.NewInstance(),
		errorFree: true,
		okEvery:   true,
	}
	for _, d := range mach.Schema().State {
		s.state.Ensure(d.Name, d.Arity)
	}
	return s, nil
}

// StepResult is what one transition returns to the client: the step's
// outputs and log delta exactly as in Figure 1, plus acceptance flags.
// Single-machine steps fill Output and Log; network joint steps fill the
// per-node Outputs and Logs maps plus the consumed Wire traffic.
type StepResult struct {
	ID     string            `json:"id"`
	Seq    int               `json:"seq"` // 1-based step number
	Output relation.Instance `json:"output"`
	Log    relation.Instance `json:"log"`
	// Network joint-step fields: every node's outputs and log delta, and
	// the unit-delay wire traffic this step consumed.
	Outputs compose.StepInputs  `json:"outputs,omitempty"`
	Logs    compose.StepInputs  `json:"logs,omitempty"`
	Wire    []compose.WireDelta `json:"wire,omitempty"`
	// Valid reports whether the run so far is valid under the session's
	// acceptance mode (for accept-at-end: whether it would be valid if it
	// ended now).
	Valid bool `json:"valid"`
	// Duplicate marks a step answered from the idempotency-key table: the
	// input was NOT applied again; Seq and the log fields describe the step
	// the key first produced. Outputs are not retained, so Output stays
	// empty on a duplicate.
	Duplicate bool `json:"duplicate,omitempty"`
}

// noteKey records that key produced step seq, lazily allocating the table.
func (s *Session) noteKey(key string, seq int) {
	if key == "" {
		return
	}
	if s.keys == nil {
		s.keys = make(map[string]int)
	}
	s.keys[key] = seq
}

// dupResult answers a deduped step from the durable log: the seq the key
// first produced, the step's log delta, and current validity. Outputs are
// not retained, so they are absent — callers retrying after an ambiguous
// failure care that the step landed, not what it printed.
func (s *Session) dupResult(seq int) *StepResult {
	res := &StepResult{ID: s.id, Seq: seq, Valid: s.valid(), Duplicate: true}
	if s.net != nil {
		if seq >= 1 && seq <= len(s.net.joint) {
			je := s.net.joint[seq-1]
			res.Logs = cloneStepInputs(je.Logs)
			res.Wire = append([]compose.WireDelta(nil), je.Wire...)
		}
	} else if seq >= 1 && seq <= len(s.logs) {
		res.Log = s.logs[seq-1].Clone()
	}
	return res
}

// validateInput rejects unknown or wrongly-typed input relations before
// anything is logged, mirroring core.Execute's checks.
func (s *Session) validateInput(in relation.Instance) error {
	for name, rel := range in {
		a, ok := s.mach.Schema().In.Arity(name)
		if !ok {
			return fmt.Errorf("step %d: %s is not an input relation", s.steps+1, name)
		}
		if rel.Len() > 0 && rel.Arity() != a {
			return fmt.Errorf("step %d: input %s has arity %d, schema says %d", s.steps+1, name, rel.Arity(), a)
		}
	}
	return nil
}

// apply performs one validated transition: Sᵢ = σ(Iᵢ, Sᵢ₋₁, D),
// Oᵢ = ω(Iᵢ, Sᵢ₋₁, D), appends the log delta, and updates acceptance
// flags. Stepping is deterministic, which is what lets the WAL store only
// inputs.
func (s *Session) apply(in relation.Instance) (*StepResult, error) {
	next, out, err := s.mach.Step(in, s.state, s.db)
	if err != nil {
		return nil, err
	}
	s.state = next
	delta := s.mach.Schema().LogDelta(in, out)
	s.logs = append(s.logs, delta)
	s.inputs = append(s.inputs, in.Clone())
	s.past.UnionWith(in)
	s.steps++
	if out.Rel(core.ErrorRel).Len() > 0 {
		s.errorFree = false
	}
	if out.Rel(core.OKRel).Len() == 0 {
		s.okEvery = false
	}
	s.lastAccept = out.Rel(core.AcceptRel).Len() > 0
	return &StepResult{
		ID:     s.id,
		Seq:    s.steps,
		Output: out,
		Log:    delta,
		Valid:  s.valid(),
	}, nil
}

// valid reports validity of the run so far under the session's mode.
func (s *Session) valid() bool {
	switch s.mode {
	case core.ErrorFree:
		return s.errorFree
	case core.OKEveryStep:
		return s.okEvery
	case core.AcceptAtEnd:
		return s.steps > 0 && s.lastAccept
	}
	return true
}

// Info is the client-visible description of a session.
type Info struct {
	ID    string `json:"id"`
	Model string `json:"model,omitempty"`
	Name  string `json:"transducer"`
	Mode  string `json:"mode"`
	Steps int    `json:"steps"`
	Valid bool   `json:"valid"`
	// Network session fields: Network marks the kind, Nodes lists the
	// member names in wiring order.
	Network bool     `json:"network,omitempty"`
	Nodes   []string `json:"nodes,omitempty"`
}

func (s *Session) info() *Info {
	if s.net != nil {
		return &Info{
			ID:      s.id,
			Name:    "network",
			Mode:    s.mode.String(),
			Steps:   s.steps,
			Valid:   s.valid(),
			Network: true,
			Nodes:   s.net.nw.Nodes(),
		}
	}
	return &Info{
		ID:    s.id,
		Model: s.model,
		Name:  s.mach.Name(),
		Mode:  s.mode.String(),
		Steps: s.steps,
		Valid: s.valid(),
	}
}

// LogResult is the full durable log of a session: the sequence of per-step
// log deltas of Definition 2.2 for a single machine, or the joint log
// (per-node deltas + wire traffic per step) for a network session.
type LogResult struct {
	ID    string            `json:"id"`
	Model string            `json:"model,omitempty"`
	Steps int               `json:"steps"`
	Log   relation.Sequence `json:"log"`
	Joint []JointLogEntry   `json:"joint,omitempty"`
}

func (s *Session) logResult() *LogResult {
	if s.net != nil {
		return &LogResult{ID: s.id, Steps: s.steps, Joint: cloneJoint(s.net.joint)}
	}
	return &LogResult{ID: s.id, Model: s.model, Steps: s.steps, Log: s.logs.Clone()}
}

// openRecord renders the session's creation as a WAL record.
func (s *Session) openRecord() *walRecord {
	if s.net != nil {
		return &walRecord{T: recOpen, SID: s.id, Mode: s.mode.String(), Network: s.net.spec}
	}
	return &walRecord{T: recOpen, SID: s.id, Model: s.model, Src: s.src, Mode: s.mode.String(), DB: s.db}
}
