package session

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"repro/internal/live"
)

// The verification endpoints of the live plane:
//
//	GET /sessions/{id}/verify?goal=deliver(X)           goal reachability from the session's current state
//	GET /sessions/{id}/verify?temporal=deliver(X)%20=>%20past-order(X)   temporal check (repeatable parameter)
//	GET /sessions/{id}/progress?goal=deliver(X)&limit=5 ranked next-input suggestions toward the goal
//
// Each request snapshots the session between steps (Peek) and hands the
// snapshot to the live.Service, which memoizes answers and applies
// admission control; saturation surfaces as 429 + Retry-After, a per-query
// deadline as 504. Network sessions are verified one member at a time:
// ?node=<name> selects the member, and is required (400 otherwise).

// liveSourceFor selects the verifiable machine inside a view: the session
// itself, or — for a network session — the member named by ?node=.
func liveSourceFor(view *View, node string) (live.Source, error) {
	if view.Nodes == nil {
		if node != "" {
			return live.Source{}, errors.New("?node= applies only to network sessions")
		}
		return live.Source{Model: view.Model, Src: view.Src, DB: view.DB, Past: view.Past}, nil
	}
	if node == "" {
		return live.Source{}, errors.New("network session: ?node= is required")
	}
	nv, ok := view.Nodes[node]
	if !ok {
		return live.Source{}, fmt.Errorf("network session has no node %q", node)
	}
	return live.Source{Model: nv.Model, Src: nv.Src, DB: nv.DB, Past: nv.Past}, nil
}

func handleVerify(e *Engine, lv *live.Service) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		view, err := e.Peek(r.PathValue("id"))
		if err != nil {
			writeErr(w, err)
			return
		}
		src, err := liveSourceFor(view, r.URL.Query().Get("node"))
		if err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
			return
		}
		goal := r.URL.Query().Get("goal")
		conds := r.URL.Query()["temporal"]
		switch {
		case goal != "" && len(conds) == 0:
			a, err := lv.Goal(r.Context(), src, goal)
			if err != nil {
				writeVerifyErr(w, err)
				return
			}
			writeJSON(w, http.StatusOK, a)
		case goal == "" && len(conds) > 0:
			a, err := lv.Temporal(r.Context(), src, conds)
			if err != nil {
				writeVerifyErr(w, err)
				return
			}
			writeJSON(w, http.StatusOK, a)
		default:
			writeJSON(w, http.StatusBadRequest, map[string]string{
				"error": "exactly one of ?goal= or ?temporal= (repeatable) is required",
			})
		}
	}
}

func handleProgress(e *Engine, lv *live.Service) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		view, err := e.Peek(r.PathValue("id"))
		if err != nil {
			writeErr(w, err)
			return
		}
		goal := r.URL.Query().Get("goal")
		if goal == "" {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "?goal= is required"})
			return
		}
		src, err := liveSourceFor(view, r.URL.Query().Get("node"))
		if err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
			return
		}
		a, err := lv.Progress(r.Context(), src, goal)
		if err != nil {
			writeVerifyErr(w, err)
			return
		}
		if limit := r.URL.Query().Get("limit"); limit != "" {
			n, err := strconv.Atoi(limit)
			if err != nil || n < 0 {
				writeJSON(w, http.StatusBadRequest, map[string]string{"error": "?limit= must be a non-negative integer"})
				return
			}
			if n < len(a.Suggestions) {
				// The answer is shared with the cache: truncate a copy.
				trimmed := *a
				trimmed.Suggestions = a.Suggestions[:n]
				trimmed.Truncated = true
				a = &trimmed
			}
		}
		writeJSON(w, http.StatusOK, a)
	}
}

// writeVerifyErr maps live-plane errors onto HTTP statuses — malformed
// query → 400, saturated verification pool → 429 (Retry-After), per-query
// deadline exceeded → 504 — and defers anything else to the engine mapping.
func writeVerifyErr(w http.ResponseWriter, err error) {
	var bad *live.BadQueryError
	var over *live.OverloadedError
	switch {
	case errors.As(err, &bad):
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
	case errors.As(err, &over):
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, map[string]string{"error": err.Error()})
	case errors.Is(err, context.DeadlineExceeded):
		writeJSON(w, http.StatusGatewayTimeout, map[string]string{"error": "verification query deadline exceeded"})
	default:
		writeErr(w, err)
	}
}
