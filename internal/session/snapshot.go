package session

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/relation"
)

// Snapshots exist to bound WAL replay time. Because Spocus state is
// cumulative (a set of past-R relations) and the log is an append-only
// sequence of deltas, a session's entire identity is a handful of relation
// instances — a snapshot is a plain JSON dump, with no tree walking or
// copy-on-write machinery.

// snapVersion guards the on-disk snapshot format.
const snapVersion = 1

// snapSession is one session's full durable state.
type snapSession struct {
	ID         string            `json:"id"`
	Model      string            `json:"model,omitempty"`
	Src        string            `json:"src,omitempty"`
	Mode       string            `json:"mode"`
	DB         relation.Instance `json:"db"`
	State      relation.Instance `json:"state"`
	Logs       relation.Sequence `json:"logs"`
	Inputs     relation.Sequence `json:"inputs,omitempty"`
	Steps      int               `json:"steps"`
	ErrorFree  bool              `json:"errorFree"`
	OkEvery    bool              `json:"okEvery"`
	LastAccept bool              `json:"lastAccept"`
}

// snapshot is the whole of one shard's state at a point in time.
type snapshot struct {
	Version  int           `json:"version"`
	Shard    int           `json:"shard"`
	Sessions []snapSession `json:"sessions"`
}

func snapOf(s *Session) snapSession {
	return snapSession{
		ID:         s.id,
		Model:      s.model,
		Src:        s.src,
		Mode:       s.mode.String(),
		DB:         s.db,
		State:      s.state,
		Logs:       s.logs,
		Inputs:     s.inputs,
		Steps:      s.steps,
		ErrorFree:  s.errorFree,
		OkEvery:    s.okEvery,
		LastAccept: s.lastAccept,
	}
}

// restore rebuilds a live session from its snapshot image.
func (ss *snapSession) restore() (*Session, error) {
	mode, err := core.ParseAcceptMode(ss.Mode)
	if err != nil {
		return nil, err
	}
	var mach *core.Machine
	if ss.Model != "" {
		if mach = getModel(ss.Model); mach == nil {
			return nil, fmt.Errorf("snapshot: unknown model %q", ss.Model)
		}
	} else {
		if mach, err = core.ParseProgram(ss.Src); err != nil {
			return nil, fmt.Errorf("snapshot: %w", err)
		}
	}
	db := ss.DB
	if db == nil {
		db = relation.NewInstance()
	}
	state := ss.State
	if state == nil {
		state = relation.NewInstance()
	}
	// past is derived state: recumulate it from the persisted inputs rather
	// than widening the snapshot format.
	past := relation.NewInstance()
	for _, in := range ss.Inputs {
		past.UnionWith(in)
	}
	return &Session{
		id:         ss.ID,
		model:      ss.Model,
		src:        ss.Src,
		mode:       mode,
		mach:       mach,
		db:         db,
		state:      state,
		logs:       ss.Logs,
		inputs:     ss.Inputs,
		past:       past,
		steps:      ss.Steps,
		errorFree:  ss.ErrorFree,
		okEvery:    ss.OkEvery,
		lastAccept: ss.LastAccept,
	}, nil
}

// writeSnapshot durably writes snap to path: write a temporary file, fsync
// it, rename over the target, fsync the directory. A crash at any point
// leaves either the old snapshot or the new one, never a mix.
func writeSnapshot(path string, snap *snapshot) error {
	data, err := json.Marshal(snap)
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	return syncDir(filepath.Dir(path))
}

// readSnapshot loads a snapshot; a missing file yields an empty snapshot.
func readSnapshot(path string) (*snapshot, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &snapshot{Version: snapVersion}, nil
	}
	if err != nil {
		return nil, err
	}
	var snap snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("snapshot %s: %w", path, err)
	}
	if snap.Version != snapVersion {
		return nil, fmt.Errorf("snapshot %s: version %d, want %d", path, snap.Version, snapVersion)
	}
	return &snap, nil
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
