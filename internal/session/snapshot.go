package session

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/relation"
)

// Snapshots exist to bound WAL replay time. Because Spocus state is
// cumulative (a set of past-R relations) and the log is an append-only
// sequence of deltas, a session's entire identity is a handful of relation
// instances — an Image is a plain JSON document, with no tree walking or
// copy-on-write machinery.
//
// On disk a snapshot is a stream of framed records written through
// storage.SnapshotWriter: first a snapHeader, then one Image per session.
// Streaming keeps snapshot memory proportional to the largest session, not
// the shard — the previous format marshaled every session into one JSON
// document.

// snapVersion guards the on-disk snapshot format. Version 2 is the framed
// stream; version 1 (single JSON document) is no longer read.
const snapVersion = 2

// snapHeader is the first record of a snapshot stream.
type snapHeader struct {
	Version int `json:"version"`
	Shard   int `json:"shard"`
}

// Image is one session's full durable state: what snapshots persist and
// what WAL-shipping handoff moves between nodes. Network sessions fill Net
// instead of the machine-shaped fields (DB, State, Logs, Inputs).
type Image struct {
	ID         string            `json:"id"`
	Model      string            `json:"model,omitempty"`
	Src        string            `json:"src,omitempty"`
	Mode       string            `json:"mode"`
	DB         relation.Instance `json:"db,omitempty"`
	State      relation.Instance `json:"state,omitempty"`
	Logs       relation.Sequence `json:"logs,omitempty"`
	Inputs     relation.Sequence `json:"inputs,omitempty"`
	Steps      int               `json:"steps"`
	ErrorFree  bool              `json:"errorFree"`
	OkEvery    bool              `json:"okEvery"`
	LastAccept bool              `json:"lastAccept"`
	// Keys is the idempotency-key dedupe table (key → step seq); persisting
	// it is what makes dedupe survive compaction, handoff, and promotion.
	Keys map[string]int `json:"keys,omitempty"`
	Net  *NetImage      `json:"net,omitempty"`
}

func snapOf(s *Session) Image {
	if s.net != nil {
		return Image{
			ID:         s.id,
			Mode:       s.mode.String(),
			Steps:      s.steps,
			ErrorFree:  s.errorFree,
			OkEvery:    s.okEvery,
			LastAccept: s.lastAccept,
			Keys:       s.keys,
			Net: &NetImage{
				Spec:   s.net.spec,
				State:  s.net.nw.ExportState(),
				Joint:  s.net.joint,
				Inputs: s.net.inputs,
				Past:   s.net.past,
			},
		}
	}
	return Image{
		ID:         s.id,
		Model:      s.model,
		Src:        s.src,
		Mode:       s.mode.String(),
		DB:         s.db,
		State:      s.state,
		Logs:       s.logs,
		Inputs:     s.inputs,
		Steps:      s.steps,
		ErrorFree:  s.errorFree,
		OkEvery:    s.okEvery,
		LastAccept: s.lastAccept,
		Keys:       s.keys,
	}
}

// restore rebuilds a live session from its image.
func (ss *Image) restore() (*Session, error) {
	mode, err := core.ParseAcceptMode(ss.Mode)
	if err != nil {
		return nil, err
	}
	if ss.Net != nil {
		return ss.restoreNet(mode)
	}
	var mach *core.Machine
	if ss.Model != "" {
		if mach = getModel(ss.Model); mach == nil {
			return nil, fmt.Errorf("snapshot: unknown model %q", ss.Model)
		}
	} else {
		if mach, err = core.ParseProgram(ss.Src); err != nil {
			return nil, fmt.Errorf("snapshot: %w", err)
		}
	}
	db := ss.DB
	if db == nil {
		db = relation.NewInstance()
	}
	state := ss.State
	if state == nil {
		state = relation.NewInstance()
	}
	// past is derived state: recumulate it from the persisted inputs rather
	// than widening the snapshot format.
	past := relation.NewInstance()
	for _, in := range ss.Inputs {
		past.UnionWith(in)
	}
	return &Session{
		id:         ss.ID,
		model:      ss.Model,
		src:        ss.Src,
		mode:       mode,
		mach:       mach,
		db:         db,
		state:      state,
		logs:       ss.Logs,
		inputs:     ss.Inputs,
		past:       past,
		steps:      ss.Steps,
		errorFree:  ss.ErrorFree,
		okEvery:    ss.OkEvery,
		lastAccept: ss.LastAccept,
		keys:       ss.Keys,
	}, nil
}

// restoreNet rebuilds a network session: the network is rebuilt from its
// spec and its run state (per-node states + unit-delay buffer) restored, so
// the next joint step continues exactly where the image left off.
func (ss *Image) restoreNet(mode core.AcceptMode) (*Session, error) {
	if ss.Net.Spec == nil {
		return nil, fmt.Errorf("snapshot: network session %s has no spec", ss.ID)
	}
	nw, err := ss.Net.Spec.Build(netResolver)
	if err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	nw.Start()
	if ss.Net.State != nil {
		if err := nw.RestoreState(ss.Net.State); err != nil {
			return nil, fmt.Errorf("snapshot: %w", err)
		}
	}
	past := ss.Net.Past
	if past == nil {
		past = make(map[string]relation.Instance)
	}
	return &Session{
		id:         ss.ID,
		mode:       mode,
		steps:      ss.Steps,
		errorFree:  ss.ErrorFree,
		okEvery:    ss.OkEvery,
		lastAccept: ss.LastAccept,
		keys:       ss.Keys,
		net: &netRun{
			spec:   ss.Net.Spec,
			nw:     nw,
			joint:  ss.Net.Joint,
			inputs: ss.Net.Inputs,
			past:   past,
		},
	}, nil
}
