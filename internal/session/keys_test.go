package session

import (
	"testing"

	"repro/internal/compose"
	"repro/internal/models"
	"repro/internal/relation"
)

// Idempotency keys: a step already applied under (session, key) is answered
// from the log with Duplicate set, not applied again — and the key table
// rides the WAL and snapshot images, so dedupe survives recovery, handoff,
// and promotion.

func TestIdempotencyKeyDedupes(t *testing.T) {
	e := memEngine(t, 2)
	info, err := e.Open(&OpenRequest{Model: "short"})
	if err != nil {
		t.Fatal(err)
	}
	ins := models.Fig1Inputs()
	res1, err := e.InputKey(info.ID, "k1", ins[0])
	if err != nil {
		t.Fatal(err)
	}
	if res1.Duplicate {
		t.Fatal("first use of a key marked duplicate")
	}
	// Same key again: answered from the log, session does not advance.
	res2, err := e.InputKey(info.ID, "k1", ins[1])
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Duplicate || res2.Seq != res1.Seq {
		t.Fatalf("retry under k1: got seq %d dup=%v, want seq %d dup=true", res2.Seq, res2.Duplicate, res1.Seq)
	}
	if !res2.Log.Equal(res1.Log) {
		t.Fatalf("retry log delta differs:\n got %s\nwant %s", res2.Log, res1.Log)
	}
	in2, err := e.Info(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if in2.Steps != 1 {
		t.Fatalf("session advanced to %d steps on a duplicate", in2.Steps)
	}
	// A fresh key applies normally.
	res3, err := e.InputKey(info.ID, "k2", ins[1])
	if err != nil {
		t.Fatal(err)
	}
	if res3.Duplicate || res3.Seq != 2 {
		t.Fatalf("fresh key: seq %d dup=%v", res3.Seq, res3.Duplicate)
	}
	// Unkeyed steps never dedupe.
	if res, err := e.Input(info.ID, ins[2]); err != nil || res.Seq != 3 {
		t.Fatalf("unkeyed step: %v %+v", err, res)
	}
	if st := e.Stats(); st.DedupedSteps != 1 {
		t.Fatalf("deduped_steps_total = %d, want 1", st.DedupedSteps)
	}
}

func TestIdempotencyKeySurvivesRecovery(t *testing.T) {
	dir := t.TempDir()
	e, err := NewEngine(Config{Dir: dir, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	info, err := e.Open(&OpenRequest{Model: "short"})
	if err != nil {
		t.Fatal(err)
	}
	ins := models.Fig1Inputs()
	if _, err := e.InputKey(info.ID, "boot-key", ins[0]); err != nil {
		t.Fatal(err)
	}
	// Crash (no Shutdown, no snapshot): the key must come back from the WAL.
	e2, err := NewEngine(Config{Dir: dir, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e2.InputKey(info.ID, "boot-key", ins[1])
	if err != nil {
		t.Fatal(err)
	}
	if !res.Duplicate || res.Seq != 1 {
		t.Fatalf("after recovery: seq %d dup=%v, want seq 1 dup=true", res.Seq, res.Duplicate)
	}
	// And through a snapshot: force compaction, crash again, still deduped.
	if err := e2.Snapshot(); err != nil {
		t.Fatal(err)
	}
	e3, err := NewEngine(Config{Dir: dir, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer e3.Shutdown()
	res, err = e3.InputKey(info.ID, "boot-key", ins[1])
	if err != nil {
		t.Fatal(err)
	}
	if !res.Duplicate || res.Seq != 1 {
		t.Fatalf("after snapshot recovery: seq %d dup=%v", res.Seq, res.Duplicate)
	}
}

func TestIdempotencyKeyNetworkAndHandoff(t *testing.T) {
	e := memEngine(t, 2)
	spec := models.Network("marketplace")
	if spec == nil {
		t.Skip("no marketplace network in registry")
	}
	info, err := e.Open(&OpenRequest{Network: spec})
	if err != nil {
		t.Fatal(err)
	}
	res1, err := e.NetInputKey(info.ID, "nk1", compose.StepInputs{})
	if err != nil {
		t.Fatal(err)
	}
	res2, err := e.NetInputKey(info.ID, "nk1", compose.StepInputs{})
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Duplicate || res2.Seq != res1.Seq {
		t.Fatalf("network retry: seq %d dup=%v", res2.Seq, res2.Duplicate)
	}
	// The key table ships with the state image: install on a second engine
	// and the duplicate is still recognized there.
	se, err := e.ExportState(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	e2 := memEngine(t, 2)
	if _, err := e2.Install(se); err != nil {
		t.Fatal(err)
	}
	res3, err := e2.NetInputKey(info.ID, "nk1", compose.StepInputs{})
	if err != nil {
		t.Fatal(err)
	}
	if !res3.Duplicate || res3.Seq != res1.Seq {
		t.Fatalf("post-install retry: seq %d dup=%v", res3.Seq, res3.Duplicate)
	}
}

func TestIdempotencyKeyBeatsFrozen(t *testing.T) {
	// A duplicate of an already-acked step answers even while the session is
	// frozen for handoff — the client's retry must not 503 when the answer
	// is already durable.
	e := memEngine(t, 1)
	info, err := e.Open(&OpenRequest{Model: "short"})
	if err != nil {
		t.Fatal(err)
	}
	ins := models.Fig1Inputs()
	if _, err := e.InputKey(info.ID, "k", ins[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Export(info.ID); err != nil { // freezes
		t.Fatal(err)
	}
	res, err := e.InputKey(info.ID, "k", ins[0])
	if err != nil {
		t.Fatalf("keyed retry on frozen session: %v", err)
	}
	if !res.Duplicate {
		t.Fatal("retry not marked duplicate")
	}
	// A fresh keyed step is still refused while frozen.
	if _, err := e.InputKey(info.ID, "k-new", relation.NewInstance()); err == nil {
		t.Fatal("fresh step on frozen session succeeded")
	}
}
