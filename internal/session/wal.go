package session

import (
	"repro/internal/compose"
	"repro/internal/relation"
	"repro/internal/storage"
)

// The WAL machinery (framing, segments, rotation, fsync policy) lives in
// internal/storage; this file defines what the session layer puts IN the
// log. FsyncPolicy is re-exported so existing callers (flags, config,
// benches) keep compiling against the session package.

// FsyncPolicy controls when the write-ahead log is flushed to stable
// storage. See storage.FsyncPolicy for the contract of each level.
type FsyncPolicy = storage.FsyncPolicy

const (
	FsyncAlways   = storage.FsyncAlways
	FsyncInterval = storage.FsyncInterval
	FsyncNever    = storage.FsyncNever
)

// ParseFsyncPolicy parses a policy name as produced by String. The empty
// string parses as FsyncAlways, the safe default.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) { return storage.ParseFsyncPolicy(s) }

// Record kinds appearing in the WAL.
const (
	recOpen    = "open"
	recStep    = "step"
	recBatch   = "batch" // several consecutive steps of one session, one record
	recClose   = "close"
	recInstall = "install" // a session installed whole by WAL-shipping handoff
)

// walRecord is one durable event. Steps store only the input instance:
// transducer stepping is deterministic, so outputs, state, and log deltas
// are recomputed on replay rather than persisted. Install records are the
// one exception — they carry a full state image, because the inputs that
// produced it were logged on a different node.
//
// A network session's joint step is ONE record: NetIn holds the external
// inputs of every node (wired inputs are recomputed on replay), so a joint
// step is atomic in the log — it is either wholly durable or absent.
// Whether a step record is single or joint is decided by the session it
// replays into, not by the record shape (an empty joint step marshals with
// no netin field at all).
//
// A batch record (recBatch) is the same idea applied to the batched input
// API: Inputs holds the inputs of steps Seq..Seq+len(Inputs)-1 of one
// session, Keys their per-step idempotency keys ("" where absent). The
// storage layer's CRC framing makes the record all-or-nothing, so a batch
// is never torn in the log: either every step in the group is durable or
// none is. A group of exactly one step is written as an ordinary recStep —
// batch-of-1 and single-step are byte-identical on disk.
type walRecord struct {
	T       string             `json:"t"`
	SID     string             `json:"sid"`
	Model   string             `json:"model,omitempty"`   // open: registry name ("" if Src given)
	Src     string             `json:"src,omitempty"`     // open: inline transducer program
	Mode    string             `json:"mode,omitempty"`    // open: acceptance mode
	DB      relation.Instance  `json:"db,omitempty"`      // open: database instance
	Network *compose.Spec      `json:"network,omitempty"` // open: network spec (network sessions)
	Seq     int                `json:"seq,omitempty"`     // step/batch: 1-based (first) step number
	Input   relation.Instance  `json:"input,omitempty"`   // step: the input relation set
	NetIn   compose.StepInputs `json:"netin,omitempty"`   // step: per-node external inputs (network sessions)
	Key     string             `json:"key,omitempty"`     // step: client idempotency key, replayed into the dedupe table
	Inputs  relation.Sequence  `json:"inputs,omitempty"`  // batch: inputs of steps Seq..Seq+len-1
	Keys    []string           `json:"keys,omitempty"`    // batch: per-step idempotency keys ("" = none)
	Image   *Image             `json:"image,omitempty"`   // install: full session state
}
