package session

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"time"

	"repro/internal/relation"
)

// FsyncPolicy controls when the write-ahead log is flushed to stable
// storage.
type FsyncPolicy int

const (
	// FsyncAlways syncs after every appended record: a step acknowledged to
	// the client is durable even across power loss.
	FsyncAlways FsyncPolicy = iota
	// FsyncInterval syncs at most once per configured interval: a crash may
	// lose the last interval's worth of acknowledged steps, but never
	// corrupts the log (replay stops at the first torn record).
	FsyncInterval
	// FsyncNever leaves syncing to the operating system. Process crashes
	// (kill -9) lose nothing that reached the kernel via write; only power
	// loss can drop acknowledged steps.
	FsyncNever
)

func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncInterval:
		return "interval"
	case FsyncNever:
		return "never"
	}
	return "unknown"
}

// ParseFsyncPolicy parses a policy name as produced by String. The empty
// string parses as FsyncAlways, the safe default.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "", "always":
		return FsyncAlways, nil
	case "interval":
		return FsyncInterval, nil
	case "never":
		return FsyncNever, nil
	}
	return FsyncAlways, fmt.Errorf("unknown fsync policy %q", s)
}

// Record kinds appearing in the WAL.
const (
	recOpen  = "open"
	recStep  = "step"
	recClose = "close"
)

// walRecord is one durable event. Steps store only the input instance:
// transducer stepping is deterministic, so outputs, state, and log deltas
// are recomputed on replay rather than persisted.
type walRecord struct {
	T     string            `json:"t"`
	SID   string            `json:"sid"`
	Model string            `json:"model,omitempty"`   // open: registry name ("" if Src given)
	Src   string            `json:"src,omitempty"`     // open: inline transducer program
	Mode  string            `json:"mode,omitempty"`    // open: acceptance mode
	DB    relation.Instance `json:"db,omitempty"`      // open: database instance
	Seq   int               `json:"seq,omitempty"`     // step: 1-based step number
	Input relation.Instance `json:"input,omitempty"`   // step: the input relation set
}

// wal is an append-only log of length-prefixed JSON records:
//
//	[payload length: 4 bytes big-endian] [CRC-32 (IEEE) of payload: 4 bytes] [payload: JSON]
//
// The CRC guards against torn or bit-rotted tails; replay stops (and the
// file is truncated) at the first record that fails to frame or checksum.
// A wal is owned by exactly one shard goroutine and is not safe for
// concurrent use.
type wal struct {
	f        *os.File
	path     string
	size     int64
	policy   FsyncPolicy
	interval time.Duration
	lastSync time.Time
	dirty    bool
}

// openWAL opens (creating if needed) the WAL at path for appending.
func openWAL(path string, policy FsyncPolicy, interval time.Duration) (*wal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	return &wal{f: f, path: path, size: st.Size(), policy: policy, interval: interval, lastSync: time.Now()}, nil
}

// append frames, writes, and (per policy) syncs one record, returning the
// number of bytes appended.
func (w *wal) append(rec *walRecord) (int, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return 0, err
	}
	buf := make([]byte, 8+len(payload))
	binary.BigEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload))
	copy(buf[8:], payload)
	if _, err := w.f.Write(buf); err != nil {
		return 0, err
	}
	w.size += int64(len(buf))
	w.dirty = true
	switch w.policy {
	case FsyncAlways:
		err = w.sync()
	case FsyncInterval:
		if time.Since(w.lastSync) >= w.interval {
			err = w.sync()
		}
	}
	return len(buf), err
}

func (w *wal) sync() error {
	if !w.dirty {
		return nil
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.lastSync = time.Now()
	w.dirty = false
	return nil
}

// rotate truncates the WAL to empty. It is called immediately after a
// snapshot has been made durable: every logged event is then covered by the
// snapshot, and replay of pre-snapshot records is idempotent anyway.
func (w *wal) rotate() error {
	if err := w.f.Truncate(0); err != nil {
		return err
	}
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	w.size = 0
	w.dirty = true
	return w.sync()
}

func (w *wal) close() error {
	if err := w.sync(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// replayWAL reads records from path, calling apply for each well-framed
// record in order. On the first torn or corrupt record it truncates the file
// at the last good offset and stops without error (that is the expected
// crash signature, not a failure). A missing file is an empty log.
// It returns the number of records applied.
func replayWAL(path string, apply func(*walRecord) error) (int, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	off, n := 0, 0
	for {
		good := off
		if off+8 > len(data) {
			return n, truncateAt(path, good, off < len(data))
		}
		length := int(binary.BigEndian.Uint32(data[off : off+4]))
		sum := binary.BigEndian.Uint32(data[off+4 : off+8])
		if off+8+length > len(data) {
			return n, truncateAt(path, good, true)
		}
		payload := data[off+8 : off+8+length]
		if crc32.ChecksumIEEE(payload) != sum {
			return n, truncateAt(path, good, true)
		}
		var rec walRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			return n, truncateAt(path, good, true)
		}
		if err := apply(&rec); err != nil {
			return n, fmt.Errorf("wal %s: record %d: %w", path, n+1, err)
		}
		off += 8 + length
		n++
	}
}

// truncateAt cuts the file at off when a torn tail was detected.
func truncateAt(path string, off int, torn bool) error {
	if !torn {
		return nil
	}
	return os.Truncate(path, int64(off))
}
