package session

import (
	"encoding/json"
	"testing"

	"repro/internal/relation"
)

// Framing, torn-tail, and rotation tests live with the mechanism in
// internal/storage; this file covers what the session layer owns — the
// record vocabulary and the policy aliases.

func step(t *testing.T, facts ...relation.Fact) relation.Instance {
	t.Helper()
	in := relation.NewInstance()
	for _, f := range facts {
		in.Add(f.Rel, f.Args)
	}
	return in
}

func fact(rel string, args ...string) relation.Fact {
	tu := make(relation.Tuple, len(args))
	for i, a := range args {
		tu[i] = relation.Const(a)
	}
	return relation.Fact{Rel: rel, Args: tu}
}

func TestWALRecordRoundTrip(t *testing.T) {
	in := step(t, fact("order", "time"))
	recs := []*walRecord{
		{T: recOpen, SID: "s1", Model: "short", Mode: "all"},
		{T: recStep, SID: "s1", Seq: 1, Input: in},
		{T: recClose, SID: "s1"},
	}
	var got []*walRecord
	for _, r := range recs {
		data, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		var back walRecord
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatal(err)
		}
		got = append(got, &back)
	}
	if got[0].T != recOpen || got[0].Model != "short" {
		t.Errorf("open record mangled: %+v", got[0])
	}
	if got[1].Seq != 1 || !got[1].Input.Has("order", relation.Tuple{"time"}) {
		t.Errorf("step record mangled: %+v", got[1])
	}
	if got[2].T != recClose {
		t.Errorf("close record mangled: %+v", got[2])
	}
}

// Install records carry a full image; the image must survive the WAL trip
// with its log and inputs intact, because replay restores from it alone.
func TestWALInstallRecordRoundTrip(t *testing.T) {
	in := step(t, fact("order", "time"))
	img := &Image{
		ID:     "shipped",
		Model:  "short",
		Mode:   "all",
		DB:     relation.NewInstance(),
		State:  relation.NewInstance(),
		Logs:   relation.Sequence{in},
		Inputs: relation.Sequence{in},
		Steps:  1,
	}
	data, err := json.Marshal(&walRecord{T: recInstall, SID: "shipped", Image: img})
	if err != nil {
		t.Fatal(err)
	}
	var back walRecord
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.T != recInstall || back.Image == nil {
		t.Fatalf("install record mangled: %+v", back)
	}
	if back.Image.Steps != 1 || len(back.Image.Logs) != 1 || !back.Image.Logs[0].Has("order", relation.Tuple{"time"}) {
		t.Errorf("image mangled: %+v", back.Image)
	}
	s, err := back.Image.restore()
	if err != nil {
		t.Fatal(err)
	}
	if s.id != "shipped" || s.steps != 1 {
		t.Errorf("restored session mangled: id=%s steps=%d", s.id, s.steps)
	}
}

func TestParseFsyncPolicy(t *testing.T) {
	for _, p := range []FsyncPolicy{FsyncAlways, FsyncInterval, FsyncNever} {
		got, err := ParseFsyncPolicy(p.String())
		if err != nil || got != p {
			t.Errorf("round-trip %v: got %v, %v", p, got, err)
		}
	}
	if _, err := ParseFsyncPolicy("bogus"); err == nil {
		t.Error("want error for bogus policy")
	}
	if p, err := ParseFsyncPolicy(""); err != nil || p != FsyncAlways {
		t.Errorf("empty policy: got %v, %v; want always", p, err)
	}
}
