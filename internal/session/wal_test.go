package session

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/relation"
)

func step(t *testing.T, facts ...relation.Fact) relation.Instance {
	t.Helper()
	in := relation.NewInstance()
	for _, f := range facts {
		in.Add(f.Rel, f.Args)
	}
	return in
}

func fact(rel string, args ...string) relation.Fact {
	tu := make(relation.Tuple, len(args))
	for i, a := range args {
		tu[i] = relation.Const(a)
	}
	return relation.Fact{Rel: rel, Args: tu}
}

func TestWALRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shard.wal")
	w, err := openWAL(path, FsyncAlways, 0)
	if err != nil {
		t.Fatal(err)
	}
	in := step(t, fact("order", "time"))
	recs := []*walRecord{
		{T: recOpen, SID: "s1", Model: "short", Mode: "all"},
		{T: recStep, SID: "s1", Seq: 1, Input: in},
		{T: recClose, SID: "s1"},
	}
	for _, r := range recs {
		if _, err := w.append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}
	var got []*walRecord
	n, err := replayWAL(path, func(r *walRecord) error {
		cp := *r
		got = append(got, &cp)
		return nil
	})
	if err != nil || n != 3 {
		t.Fatalf("replay: n=%d err=%v", n, err)
	}
	if got[0].T != recOpen || got[0].Model != "short" {
		t.Errorf("open record mangled: %+v", got[0])
	}
	if got[1].Seq != 1 || !got[1].Input.Has("order", relation.Tuple{"time"}) {
		t.Errorf("step record mangled: %+v", got[1])
	}
	if got[2].T != recClose {
		t.Errorf("close record mangled: %+v", got[2])
	}
}

// TestWALTornTail simulates a crash mid-write: the file ends with a partial
// record, which replay must drop (with truncation) while keeping everything
// before it.
func TestWALTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shard.wal")
	w, err := openWAL(path, FsyncNever, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if _, err := w.append(&walRecord{T: recStep, SID: "s", Seq: i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(path)
	for cut := 1; cut < 12; cut += 5 { // tear the last record at several offsets
		if err := os.WriteFile(path, data[:len(data)-cut], 0o644); err != nil {
			t.Fatal(err)
		}
		n, err := replayWAL(path, func(*walRecord) error { return nil })
		if err != nil || n != 2 {
			t.Fatalf("cut=%d: n=%d err=%v, want 2 records", cut, n, err)
		}
		st, _ := os.Stat(path)
		if st.Size() >= int64(len(data)-cut) && cut > 0 {
			t.Errorf("cut=%d: torn tail not truncated (size %d)", cut, st.Size())
		}
		// Replaying the truncated file again is clean and stable.
		if n, err := replayWAL(path, func(*walRecord) error { return nil }); err != nil || n != 2 {
			t.Fatalf("cut=%d second replay: n=%d err=%v", cut, n, err)
		}
	}
}

// TestWALCorruptPayload flips a payload byte; the CRC must catch it and
// replay must stop at the previous record.
func TestWALCorruptPayload(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shard.wal")
	w, err := openWAL(path, FsyncNever, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.append(&walRecord{T: recOpen, SID: "a", Model: "short"}); err != nil {
		t.Fatal(err)
	}
	if _, err := w.append(&walRecord{T: recStep, SID: "a", Seq: 1}); err != nil {
		t.Fatal(err)
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(path)
	data[len(data)-2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	n, err := replayWAL(path, func(*walRecord) error { return nil })
	if err != nil || n != 1 {
		t.Fatalf("n=%d err=%v, want the corrupt record dropped", n, err)
	}
}

func TestWALAppendAfterReplayTruncation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shard.wal")
	w, _ := openWAL(path, FsyncNever, 0)
	w.append(&walRecord{T: recOpen, SID: "a", Model: "short"})
	w.append(&walRecord{T: recStep, SID: "a", Seq: 1})
	w.close()
	data, _ := os.ReadFile(path)
	os.WriteFile(path, data[:len(data)-3], 0o644) // torn second record
	if n, err := replayWAL(path, func(*walRecord) error { return nil }); err != nil || n != 1 {
		t.Fatalf("n=%d err=%v", n, err)
	}
	// A fresh appender continues from the truncated tail; the log stays
	// well-formed end to end.
	w2, err := openWAL(path, FsyncAlways, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w2.append(&walRecord{T: recStep, SID: "a", Seq: 1}); err != nil {
		t.Fatal(err)
	}
	w2.close()
	if n, err := replayWAL(path, func(*walRecord) error { return nil }); err != nil || n != 2 {
		t.Fatalf("after re-append: n=%d err=%v", n, err)
	}
}

func TestParseFsyncPolicy(t *testing.T) {
	for _, p := range []FsyncPolicy{FsyncAlways, FsyncInterval, FsyncNever} {
		got, err := ParseFsyncPolicy(p.String())
		if err != nil || got != p {
			t.Errorf("round-trip %v: got %v, %v", p, got, err)
		}
	}
	if _, err := ParseFsyncPolicy("bogus"); err == nil {
		t.Error("want error for bogus policy")
	}
	if p, err := ParseFsyncPolicy(""); err != nil || p != FsyncAlways {
		t.Errorf("empty policy: got %v, %v; want always", p, err)
	}
}

func TestWALFsyncInterval(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shard.wal")
	w, err := openWAL(path, FsyncInterval, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.append(&walRecord{T: recOpen, SID: "a", Model: "short"}); err != nil {
		t.Fatal(err)
	}
	if !w.dirty {
		t.Error("append within interval should leave the wal dirty")
	}
	if err := w.sync(); err != nil {
		t.Fatal(err)
	}
	if w.dirty {
		t.Error("sync should clear dirty")
	}
	w.close()
}
