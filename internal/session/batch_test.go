package session

import (
	"bytes"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/models"
)

// Tests for the batched input path: the differential guarantee that a
// batch of one is byte-identical to the single-step path (results, logs,
// and the raw WAL bytes on disk), strictly per-item partial failure,
// idempotency-key dedupe both against the persisted table and within a
// group, and recovery of multi-step recBatch records.

// walBytes concatenates every WAL segment of a single-shard engine dir in
// segment order, so two engines driven identically can be compared
// byte-for-byte.
func walBytes(t *testing.T, dir string) []byte {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(dir, "shard-000", "seg-*.wal"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments in %s: %v", dir, err)
	}
	sort.Strings(segs)
	var buf bytes.Buffer
	for _, seg := range segs {
		b, err := os.ReadFile(seg)
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(b)
	}
	return buf.Bytes()
}

// TestBatchOfOneByteIdentical drives the same session twice — once through
// Input/InputKey, once through InputBatch with one-item groups — and
// requires identical step results, identical logs, and identical WAL bytes
// on disk. This is the contract that lets every client batch
// unconditionally: a batch of one costs nothing and changes nothing.
func TestBatchOfOneByteIdentical(t *testing.T) {
	wantOut, wantLogs := fig1Reference(t)
	inputs := models.Fig1Inputs()
	keys := []string{"", "k2", ""} // mix keyed and unkeyed steps

	dirA, dirB := t.TempDir(), t.TempDir()
	ea, err := NewEngine(Config{Dir: dirA, Shards: 1, Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ea.Shutdown() })
	eb, err := NewEngine(Config{Dir: dirB, Shards: 1, Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eb.Shutdown() })

	for _, e := range []*Engine{ea, eb} {
		if _, err := e.Open(&OpenRequest{ID: "twin", Model: "short"}); err != nil {
			t.Fatal(err)
		}
	}
	for i, in := range inputs {
		ra, err := ea.InputKey("twin", keys[i], in)
		if err != nil {
			t.Fatalf("single step %d: %v", i+1, err)
		}
		res := eb.InputBatch([]BatchItem{{Session: "twin", Key: keys[i], Input: in}})
		if len(res) != 1 || res[0].Err != nil {
			t.Fatalf("batch step %d: %+v", i+1, res)
		}
		rb := res[0].Result
		if ra.Seq != rb.Seq || !ra.Output.Equal(rb.Output) || !ra.Log.Equal(rb.Log) || ra.Valid != rb.Valid {
			t.Errorf("step %d diverged:\n single %+v\n batch  %+v", i+1, ra, rb)
		}
		if !rb.Output.Equal(wantOut[i]) || !rb.Log.Equal(wantLogs[i]) {
			t.Errorf("step %d batch result differs from oracle", i+1)
		}
	}
	la, _ := ea.Log("twin")
	lb, _ := eb.Log("twin")
	if !la.Log.Equal(lb.Log) || la.Steps != lb.Steps {
		t.Fatalf("logs diverged:\n single %v\n batch  %v", la, lb)
	}
	// The WAL must agree byte for byte: a one-item group lowers to an
	// ordinary recStep record, and records carry no timestamps.
	ba, bb := walBytes(t, dirA), walBytes(t, dirB)
	if !bytes.Equal(ba, bb) {
		t.Fatalf("WAL bytes diverged: single-step %d bytes, batch-of-1 %d bytes", len(ba), len(bb))
	}
}

// TestBatchPartialFailure mixes healthy items with a missing session and an
// invalid input in one group and requires strictly per-item outcomes: the
// bad items fail with their own typed errors, the good items apply, and
// ordering within the surviving session is untouched.
func TestBatchPartialFailure(t *testing.T) {
	e := memEngine(t, 2)
	inputs := models.Fig1Inputs()
	if _, err := e.Open(&OpenRequest{ID: "good", Model: "short"}); err != nil {
		t.Fatal(err)
	}
	res := e.InputBatch([]BatchItem{
		{Session: "good", Input: inputs[0]},
		{Session: "ghost", Input: inputs[0]},                     // no such session
		{Session: "good", Input: step(t, fact("nonsense", "x"))}, // unknown relation
		{Session: "good", Input: inputs[1]},
	})
	if res[0].Err != nil || res[0].Result.Seq != 1 {
		t.Errorf("item 0: %+v", res[0])
	}
	if !errors.As(res[1].Err, new(*NotFoundError)) {
		t.Errorf("item 1: %v, want NotFoundError", res[1].Err)
	}
	if !errors.As(res[2].Err, new(*BadInputError)) {
		t.Errorf("item 2: %v, want BadInputError", res[2].Err)
	}
	if res[3].Err != nil || res[3].Result.Seq != 2 {
		t.Errorf("item 3: %+v — a rejected neighbor must not disturb later items", res[3])
	}
	lr, err := e.Log("good")
	if err != nil || lr.Steps != 2 {
		t.Fatalf("after partial failure: steps=%d err=%v", lr.Steps, err)
	}
}

// TestBatchKeyDedupe exercises idempotency keys inside a group: a key
// repeated WITHIN one batch answers the earlier item's step without
// reapplying, and a key already in the persisted table dedupes exactly as
// the single-step path would.
func TestBatchKeyDedupe(t *testing.T) {
	e := memEngine(t, 2)
	inputs := models.Fig1Inputs()
	if _, err := e.Open(&OpenRequest{ID: "s", Model: "short"}); err != nil {
		t.Fatal(err)
	}
	// Persist a keyed step first, then batch: a replay of that key, a fresh
	// key, and an in-batch repeat of the fresh key.
	if _, err := e.InputKey("s", "old", inputs[0]); err != nil {
		t.Fatal(err)
	}
	res := e.InputBatch([]BatchItem{
		{Session: "s", Key: "old", Input: inputs[0]}, // persisted-table dup
		{Session: "s", Key: "new", Input: inputs[1]}, // applies as seq 2
		{Session: "s", Key: "new", Input: inputs[2]}, // in-batch dup of seq 2
	})
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("item %d: %v", i, r.Err)
		}
	}
	if !res[0].Result.Duplicate || res[0].Result.Seq != 1 {
		t.Errorf("persisted dup: %+v", res[0].Result)
	}
	if res[1].Result.Duplicate || res[1].Result.Seq != 2 {
		t.Errorf("fresh key: %+v", res[1].Result)
	}
	if !res[2].Result.Duplicate || res[2].Result.Seq != 2 {
		t.Errorf("in-batch dup: %+v", res[2].Result)
	}
	if lr, _ := e.Log("s"); lr.Steps != 2 {
		t.Errorf("steps=%d, want 2 — duplicates must not reapply", lr.Steps)
	}
	if n := e.Stats().DedupedSteps; n != 2 {
		t.Errorf("deduped_steps=%d, want 2", n)
	}
}

// TestBatchRecovery writes a multi-step group (a recBatch record), crashes
// without shutdown, and recovers: the whole group survives as one unit and
// its idempotency keys are back in the table.
func TestBatchRecovery(t *testing.T) {
	dir := t.TempDir()
	_, wantLogs := fig1Reference(t)
	inputs := models.Fig1Inputs()

	e1, err := NewEngine(Config{Dir: dir, Shards: 1, Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e1.Open(&OpenRequest{ID: "s", Model: "short"}); err != nil {
		t.Fatal(err)
	}
	res := e1.InputBatch([]BatchItem{
		{Session: "s", Key: "a", Input: inputs[0]},
		{Session: "s", Input: inputs[1]},
		{Session: "s", Key: "c", Input: inputs[2]},
	})
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("item %d: %v", i, r.Err)
		}
	}
	// Crash: no Shutdown. Reopen and replay.
	e2, err := NewEngine(Config{Dir: dir, Shards: 1, Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e2.Shutdown() })
	lr, err := e2.Log("s")
	if err != nil {
		t.Fatal(err)
	}
	if lr.Steps != 3 || !lr.Log.Equal(wantLogs) {
		t.Fatalf("recovered log:\n got steps=%d %s\nwant %s", lr.Steps, lr.Log, wantLogs)
	}
	rk, err := e2.InputKey("s", "c", inputs[2])
	if err != nil || !rk.Duplicate || rk.Seq != 3 {
		t.Fatalf("key replay after recovery: %+v err=%v", rk, err)
	}
}

// TestHTTPBatch drives both wire shapes — the array form of
// /sessions/{id}/input and the multi-session /batch — and checks the
// positional per-item statuses, the 200 envelope around item failures, and
// the Idempotency-Key header rejection on arrays.
func TestHTTPBatch(t *testing.T) {
	_, srv := httpServer(t)
	wantOut, _ := fig1Reference(t)
	inputs := models.Fig1Inputs()

	var a, b Info
	if st := call(t, "POST", srv.URL+"/sessions", map[string]string{"model": "short"}, &a); st != http.StatusCreated {
		t.Fatalf("open a: %d", st)
	}
	if st := call(t, "POST", srv.URL+"/sessions", map[string]string{"model": "short"}, &b); st != http.StatusCreated {
		t.Fatalf("open b: %d", st)
	}

	// Array form: two steps of one session in one request.
	var br BatchResponse
	st := call(t, "POST", fmt.Sprintf("%s/sessions/%s/input", srv.URL, a.ID), []map[string]any{
		{"input": inputs[0], "key": "k1"},
		{"input": inputs[1]},
	}, &br)
	if st != http.StatusOK || len(br.Results) != 2 || !br.OK() {
		t.Fatalf("array form: status %d results %+v", st, br.Results)
	}
	if br.Results[0].Result.Seq != 1 || !br.Results[0].Result.Output.Equal(wantOut[0]) {
		t.Errorf("array item 0: %+v", br.Results[0])
	}
	if br.Results[1].Result.Seq != 2 {
		t.Errorf("array item 1: %+v", br.Results[1])
	}

	// The Idempotency-Key header names ONE step; arrays must refuse it.
	req, _ := http.NewRequest("POST", fmt.Sprintf("%s/sessions/%s/input", srv.URL, a.ID),
		bytes.NewReader([]byte(`[{"input":{}}]`)))
	req.Header.Set("Idempotency-Key", "whole-batch")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("array with Idempotency-Key header: %d, want 400", resp.StatusCode)
	}

	// /batch: two sessions plus one failing item; the envelope stays 200 and
	// statuses are positional.
	br = BatchResponse{}
	st = call(t, "POST", srv.URL+"/batch", BatchRequest{Steps: []BatchItem{
		{Session: a.ID, Input: inputs[2]},
		{Session: "ghost", Input: inputs[0]},
		{Session: b.ID, Key: "bk", Input: inputs[0]},
		{Session: b.ID, Key: "bk", Input: inputs[1]}, // in-batch dup over HTTP
	}}, &br)
	if st != http.StatusOK || len(br.Results) != 4 {
		t.Fatalf("/batch: status %d results %d", st, len(br.Results))
	}
	if br.Results[0].Status != http.StatusOK || br.Results[0].Result.Seq != 3 {
		t.Errorf("/batch item 0: %+v", br.Results[0])
	}
	if br.Results[1].Status != http.StatusNotFound || br.Results[1].Error == "" {
		t.Errorf("/batch item 1: %+v, want per-item 404", br.Results[1])
	}
	if br.OK() {
		t.Error("OK() must be false when an item failed")
	}
	if br.Results[2].Status != http.StatusOK || br.Results[2].Result.Seq != 1 {
		t.Errorf("/batch item 2: %+v", br.Results[2])
	}
	if br.Results[3].Status != http.StatusOK || !br.Results[3].Result.Duplicate || br.Results[3].Result.Seq != 1 {
		t.Errorf("/batch item 3: %+v, want duplicate of seq 1", br.Results[3])
	}

	// Empty batches are an envelope error, not an empty success.
	var em map[string]string
	if st := call(t, "POST", srv.URL+"/batch", BatchRequest{}, &em); st != http.StatusBadRequest {
		t.Errorf("empty /batch: %d, want 400", st)
	}

	// One-session batches spanning shards with the multi-session shape keep
	// positional order even when fan-in reorders completion.
	var ids []string
	for i := 0; i < 4; i++ {
		var in Info
		if st := call(t, "POST", srv.URL+"/sessions", map[string]string{"model": "short"}, &in); st != http.StatusCreated {
			t.Fatalf("open %d: %d", i, st)
		}
		ids = append(ids, in.ID)
	}
	var steps []BatchItem
	for _, id := range ids {
		steps = append(steps, BatchItem{Session: id, Input: inputs[0]})
	}
	br = BatchResponse{}
	if st := call(t, "POST", srv.URL+"/batch", BatchRequest{Steps: steps}, &br); st != http.StatusOK || !br.OK() {
		t.Fatalf("cross-shard batch: status %d %+v", st, br.Results)
	}
	for i, r := range br.Results {
		if r.Result == nil || r.Result.ID != ids[i] {
			t.Errorf("cross-shard item %d answered for %v, want %s — positional order broken", i, r.Result, ids[i])
		}
	}

	// results=errors: the sparse ack shape. An all-OK envelope answers with
	// just the count; failures come back as (pos, status) pairs.
	br = BatchResponse{}
	st = call(t, "POST", srv.URL+"/batch", BatchRequest{Results: "errors", Steps: []BatchItem{
		{Session: a.ID, Input: inputs[0]},
		{Session: "ghost", Input: inputs[0]},
		{Session: b.ID, Input: inputs[2]},
	}}, &br)
	if st != http.StatusOK || br.Results != nil || br.N != 3 {
		t.Fatalf("errors mode: status %d n %d results %+v", st, br.N, br.Results)
	}
	if len(br.Failed) != 1 || br.Failed[0].Pos != 1 || br.Failed[0].Status != http.StatusNotFound || br.OK() {
		t.Errorf("errors mode failed list: %+v", br.Failed)
	}
	br = BatchResponse{}
	st = call(t, "POST", srv.URL+"/batch", BatchRequest{Results: "errors", Steps: []BatchItem{
		{Session: a.ID, Input: inputs[1]},
	}}, &br)
	if st != http.StatusOK || br.N != 1 || len(br.Failed) != 0 || !br.OK() {
		t.Errorf("errors mode all-OK: status %d %+v", st, br)
	}

	// An unknown results selector is an envelope error.
	em = map[string]string{}
	if st := call(t, "POST", srv.URL+"/batch", BatchRequest{Results: "verbose", Steps: []BatchItem{
		{Session: a.ID, Input: inputs[0]},
	}}, &em); st != http.StatusBadRequest {
		t.Errorf("results=verbose: %d, want 400", st)
	}
}
