package session

import (
	"encoding/json"
	"net/http"

	"repro/internal/relation"
)

// The batched HTTP surface. Two request shapes feed Engine.InputBatch:
//
//	POST /sessions/{id}/input  with a JSON ARRAY body — one session, many
//	                           steps: [{"input":{...},"key":"..."}, ...]
//	POST /batch                many sessions at once:
//	                           {"steps":[{"session":"s1","input":{...},"key":"..."}]}
//
// Both answer 200 with positional per-item statuses; an item's failure
// never fails its neighbors (the response status is 200 even when every
// item failed — the envelope, not the item, succeeded). Atomicity is the
// group-commit boundary: all 200 items of one response were durable
// before the response was sent, and one session's items occupy one
// all-or-nothing WAL record.

// batchBodyCap bounds batched request bodies. Far above the single-step
// 1 MiB cap — a batch is many steps — but still bounded.
const batchBodyCap = 16 << 20

// BatchRequest is the wire envelope of POST /batch. Results selects how
// much of each item's outcome travels back: "full" (default) carries the
// whole StepResult; "status" strips outputs and log deltas down to
// {id, seq, valid, duplicate}; "errors" inverts the shape — the response
// counts the envelope and lists ONLY the items that failed, so an all-OK
// batch acks with a constant-size body. Each step leftward is a cheaper
// wire for a driver that needs acks, not outputs.
type BatchRequest struct {
	Steps   []BatchItem `json:"steps"`
	Results string      `json:"results,omitempty"`
}

// BatchItemStatus is one item's outcome on the wire: the HTTP status the
// single-step path would have answered, plus the step result (2xx) or the
// error message (4xx/5xx).
type BatchItemStatus struct {
	Status int         `json:"status"`
	Error  string      `json:"error,omitempty"`
	Result *StepResult `json:"result,omitempty"`
}

// BatchFailure is one failed item in results=errors mode: its position in
// the request envelope plus the status the positional response would have
// carried at that slot.
type BatchFailure struct {
	Pos    int    `json:"pos"`
	Status int    `json:"status"`
	Error  string `json:"error,omitempty"`
}

// BatchResponse is the wire envelope of a batch response. In the
// positional modes ("", "full", "status") Results lines up with the
// request's items. In errors mode Results is absent: N acknowledges how
// many items the envelope carried and Failed lists only the ones that did
// not apply.
type BatchResponse struct {
	Results []BatchItemStatus `json:"results,omitempty"`
	N       int               `json:"n,omitempty"`
	Failed  []BatchFailure    `json:"failed,omitempty"`
}

// OK reports whether every item succeeded, in either response shape.
func (r *BatchResponse) OK() bool {
	if r.Results == nil {
		return len(r.Failed) == 0
	}
	for i := range r.Results {
		if r.Results[i].Status/100 != 2 {
			return false
		}
	}
	return true
}

func batchStatusOf(res BatchResult) BatchItemStatus {
	if res.Err != nil {
		status, _ := errStatus(res.Err)
		return BatchItemStatus{Status: status, Error: res.Err.Error()}
	}
	return BatchItemStatus{Status: http.StatusOK, Result: res.Result}
}

func runBatch(e *Engine, w http.ResponseWriter, items []BatchItem, mode string) {
	results := e.InputBatch(items)
	// Compact encoding: batch responses are the data plane's hot path, and
	// indentation costs real encode/decode CPU at thousands of items/s.
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	if mode == "errors" {
		resp := BatchResponse{N: len(results)}
		for i, res := range results {
			if res.Err != nil {
				status, _ := errStatus(res.Err)
				resp.Failed = append(resp.Failed, BatchFailure{Pos: i, Status: status, Error: res.Err.Error()})
			}
		}
		json.NewEncoder(w).Encode(resp)
		return
	}
	out := make([]BatchItemStatus, len(results))
	for i, res := range results {
		out[i] = batchStatusOf(res)
		if mode == "status" && out[i].Result != nil {
			r := out[i].Result
			out[i].Result = &StepResult{ID: r.ID, Seq: r.Seq, Valid: r.Valid, Duplicate: r.Duplicate}
		}
	}
	json.NewEncoder(w).Encode(BatchResponse{Results: out})
}

// handleBatch serves POST /batch: multi-session (session, input, key)
// groups in one request.
func handleBatch(e *Engine) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var req BatchRequest
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, batchBodyCap))
		if err := dec.Decode(&req); err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad request body: " + err.Error()})
			return
		}
		if len(req.Steps) == 0 {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "batch needs at least one step"})
			return
		}
		switch req.Results {
		case "", "full", "status", "errors":
		default:
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "results must be \"full\", \"status\" or \"errors\""})
			return
		}
		for i := range req.Steps {
			if req.Steps[i].Input == nil {
				req.Steps[i].Input = relation.NewInstance()
			}
		}
		runBatch(e, w, req.Steps, req.Results)
	}
}

// handleInputArray serves the array form of POST /sessions/{id}/input:
// many steps of ONE session. The Idempotency-Key header is rejected here —
// it names one step, and an array is many; keys travel per item.
func handleInputArray(e *Engine, w http.ResponseWriter, r *http.Request, id string, body []byte) {
	if r.Header.Get("Idempotency-Key") != "" {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "Idempotency-Key header names one step; batched arrays carry per-item keys"})
		return
	}
	var steps []struct {
		Input relation.Instance `json:"input"`
		Key   string            `json:"key"`
	}
	if err := json.Unmarshal(body, &steps); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad request body: " + err.Error()})
		return
	}
	if len(steps) == 0 {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "batch needs at least one step"})
		return
	}
	items := make([]BatchItem, len(steps))
	for i, st := range steps {
		in := st.Input
		if in == nil {
			in = relation.NewInstance()
		}
		items[i] = BatchItem{Session: id, Key: st.Key, Input: in}
	}
	runBatch(e, w, items, "")
}

// isJSONArray reports whether the body's first significant byte opens an
// array — the shape switch of POST /sessions/{id}/input.
func isJSONArray(body []byte) bool {
	for _, b := range body {
		switch b {
		case ' ', '\t', '\n', '\r':
			continue
		case '[':
			return true
		default:
			return false
		}
	}
	return false
}
