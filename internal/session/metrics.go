package session

import (
	"expvar"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"
)

// metricsSet is one engine's counters. All fields are updated with atomics
// so shard goroutines never contend on a lock for bookkeeping.
type metricsSet struct {
	start            time.Time
	sessionsOpen     atomic.Int64
	sessionsOpened   atomic.Int64
	sessionsClosed   atomic.Int64
	stepsTotal       atomic.Int64
	walBytes         atomic.Int64
	walAppends       atomic.Int64
	walSyncs         atomic.Int64
	walSegments      atomic.Int64
	installs         atomic.Int64
	snapshots        atomic.Int64
	replayNanos      atomic.Int64
	replayRecords    atomic.Int64
	rejected         atomic.Int64
	rateLimited      atomic.Int64
	exports          atomic.Int64
	handoffs         atomic.Int64
	dedupedSteps     atomic.Int64
	replBatches      atomic.Int64
	replApplied      atomic.Int64
	replSyncTimeouts atomic.Int64
	stepLatency      latencyHist
}

// Stats is a point-in-time snapshot of an engine's metrics, also served at
// /debug/vars under the key "spocus".
type Stats struct {
	SessionsOpen     int64   `json:"sessions_open"`
	SessionsOpened   int64   `json:"sessions_opened_total"`
	SessionsClosed   int64   `json:"sessions_closed_total"`
	StepsTotal       int64   `json:"steps_total"`
	StepsPerSec      float64 `json:"steps_per_sec"` // over the engine's lifetime
	WALBytes         int64   `json:"wal_bytes"`
	WALAppends       int64   `json:"wal_appends_total"` // records appended
	WALSyncs         int64   `json:"wal_syncs_total"`   // batch fsyncs issued (group commit shares them)
	WALSegments      int64   `json:"wal_segments"`      // live segment files across shards
	InstallsTotal    int64   `json:"installs_total"`    // sessions installed by WAL-shipping handoff
	Snapshots        int64   `json:"snapshots_total"`
	ReplayMillis     float64 `json:"replay_ms"`
	ReplayRecords    int64   `json:"replay_records"`
	RejectedTotal    int64   `json:"rejected_total"`           // mailbox-full 429s
	RateLimited      int64   `json:"rate_limited_total"`       // per-session rate-limit 429s
	ExportsTotal     int64   `json:"exports_total"`            // handoff exports served
	HandoffsTotal    int64   `json:"handoffs_total"`           // sessions handed off (forgotten)
	DedupedSteps     int64   `json:"deduped_steps_total"`      // steps answered from the idempotency-key table
	ReplBatches      int64   `json:"repl_batches_total"`       // WAL stream batches served to followers
	ReplApplied      int64   `json:"repl_applied_total"`       // replicated records applied (follower side)
	ReplSyncTimeouts int64   `json:"repl_sync_timeouts_total"` // semi-sync holds that degraded to async
	// Replication lag, summed across shards that have an acking follower:
	// committed LSNs, acked LSNs, and their difference. Zero when no
	// follower has ever acked.
	ReplCommitted int64   `json:"repl_committed_lsn"`
	ReplAcked     int64   `json:"repl_acked_lsn"`
	ReplLag       int64   `json:"repl_lag_records"`
	// Durability-surface byte meters, summed across shards and monotonic
	// over the engine's life (wal_bytes resets at each snapshot; these
	// never do). Per-shard breakdowns live under the spocus_storage expvar.
	WALBytesTotal      int64   `json:"wal_bytes_total"`
	SnapshotBytesTotal int64   `json:"snapshot_bytes_total"`
	ShipBytesTotal     int64   `json:"ship_bytes_total"`
	CodecInternEntries int64   `json:"codec_intern_entries"`
	StepP50Micros float64 `json:"step_latency_p50_us"`
	StepP90Micros float64 `json:"step_latency_p90_us"`
	StepP99Micros float64 `json:"step_latency_p99_us"`
	StepMaxMicros float64 `json:"step_latency_max_us"`
}

func (m *metricsSet) stats() Stats {
	elapsed := time.Since(m.start).Seconds()
	steps := m.stepsTotal.Load()
	var rate float64
	if elapsed > 0 {
		rate = float64(steps) / elapsed
	}
	return Stats{
		SessionsOpen:     m.sessionsOpen.Load(),
		SessionsOpened:   m.sessionsOpened.Load(),
		SessionsClosed:   m.sessionsClosed.Load(),
		StepsTotal:       steps,
		StepsPerSec:      rate,
		WALBytes:         m.walBytes.Load(),
		WALAppends:       m.walAppends.Load(),
		WALSyncs:         m.walSyncs.Load(),
		WALSegments:      m.walSegments.Load(),
		InstallsTotal:    m.installs.Load(),
		Snapshots:        m.snapshots.Load(),
		ReplayMillis:     float64(m.replayNanos.Load()) / 1e6,
		ReplayRecords:    m.replayRecords.Load(),
		RejectedTotal:    m.rejected.Load(),
		RateLimited:      m.rateLimited.Load(),
		ExportsTotal:     m.exports.Load(),
		HandoffsTotal:    m.handoffs.Load(),
		DedupedSteps:     m.dedupedSteps.Load(),
		ReplBatches:      m.replBatches.Load(),
		ReplApplied:      m.replApplied.Load(),
		ReplSyncTimeouts: m.replSyncTimeouts.Load(),
		StepP50Micros:    float64(m.stepLatency.quantile(0.50)) / 1e3,
		StepP90Micros:    float64(m.stepLatency.quantile(0.90)) / 1e3,
		StepP99Micros:    float64(m.stepLatency.quantile(0.99)) / 1e3,
		StepMaxMicros:    float64(m.stepLatency.max.Load()) / 1e3,
	}
}

// latencyHist is a lock-free histogram with power-of-two nanosecond
// buckets: bucket i counts durations d with 2^(i-1) ≤ d < 2^i ns. Quantiles
// are read off the bucket boundaries, which is plenty for serving metrics.
type latencyHist struct {
	buckets [48]atomic.Int64
	count   atomic.Int64
	max     atomic.Int64
}

func (h *latencyHist) observe(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	i := bits.Len64(uint64(ns))
	if i >= len(h.buckets) {
		i = len(h.buckets) - 1
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.max.Load()
		if ns <= old || h.max.CompareAndSwap(old, ns) {
			break
		}
	}
}

// quantile returns an upper bound on the q-quantile observation in
// nanoseconds (0 when nothing has been observed).
func (h *latencyHist) quantile(q float64) int64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(q * float64(total))
	var seen int64
	for i := range h.buckets {
		seen += h.buckets[i].Load()
		if seen > rank {
			return 1 << uint(i) // upper bound of bucket i
		}
	}
	return h.max.Load()
}

// engines tracks live engines so the process-wide expvar export can
// aggregate across them (a server normally has exactly one).
var (
	enginesMu sync.Mutex
	engines   = make(map[*Engine]bool)
	expvarOne sync.Once
)

func registerEngine(e *Engine) {
	enginesMu.Lock()
	engines[e] = true
	enginesMu.Unlock()
	expvarOne.Do(func() {
		expvar.Publish("spocus", expvar.Func(func() any {
			enginesMu.Lock()
			defer enginesMu.Unlock()
			agg := make([]Stats, 0, len(engines))
			for e := range engines {
				agg = append(agg, e.Stats())
			}
			return agg
		}))
		expvar.Publish("spocus_storage", expvar.Func(func() any {
			enginesMu.Lock()
			defer enginesMu.Unlock()
			type shardStorage struct {
				Shard              int    `json:"shard"`
				Codec              string `json:"codec"`
				WALBytesTotal      int64  `json:"wal_bytes_total"`
				SnapshotBytesTotal int64  `json:"snapshot_bytes_total"`
				ShipBytesTotal     int64  `json:"ship_bytes_total"`
				CodecInternEntries int64  `json:"codec_intern_entries"`
			}
			var agg []shardStorage
			for e := range engines {
				for _, sh := range e.shards {
					agg = append(agg, shardStorage{
						Shard:              sh.idx,
						Codec:              e.cfg.Codec.String(),
						WALBytesTotal:      sh.walBytesTotal.Load(),
						SnapshotBytesTotal: sh.snapBytesTotal.Load(),
						ShipBytesTotal:     sh.shipBytesTotal.Load(),
						CodecInternEntries: sh.internEntries.Load(),
					})
				}
			}
			return agg
		}))
	})
}

func unregisterEngine(e *Engine) {
	enginesMu.Lock()
	delete(engines, e)
	enginesMu.Unlock()
}
