package session

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/codec"
	"repro/internal/relation"
	"repro/internal/storage"
)

// Config tunes an Engine.
type Config struct {
	// Dir is the durability directory holding per-shard WAL and snapshot
	// files. Empty means in-memory only: nothing survives the process.
	Dir string
	// Shards is the number of goroutine-owned shards sessions are hashed
	// across. Defaults to GOMAXPROCS. Changing the shard count of an
	// existing Dir is safe only through a clean Shutdown (which snapshots):
	// replay routes each persisted session by its own ID hash.
	Shards int
	// Fsync selects the WAL durability policy (default FsyncAlways).
	Fsync FsyncPolicy
	// FsyncInterval is the flush period under FsyncInterval (default 100ms).
	FsyncInterval time.Duration
	// SegmentBytes rotates a shard's active WAL segment once it exceeds
	// this size (default 64 MiB). Sealed segments are never written again.
	SegmentBytes int64
	// GroupCommitBatch caps how many requests a shard executes before it
	// commits (one shared fsync under FsyncAlways) and releases their
	// acknowledgements (default 256). 1 disables batching: every request
	// pays its own fsync, the pre-group-commit behavior.
	GroupCommitBatch int
	// GroupCommitWindow, when positive under FsyncAlways, lets a shard
	// with a dirty WAL wait up to this long for follower requests to join
	// the pending fsync (default 0: commit as soon as the mailbox is
	// drained). The window only ever delays acknowledgements, never
	// weakens them — acks are still released only after the shared fsync
	// returns.
	GroupCommitWindow time.Duration
	// SnapshotEvery compacts a shard's WAL into a snapshot after this many
	// applied steps (default 4096; negative disables snapshots).
	SnapshotEvery int
	// MailboxDepth bounds each shard's request mailbox (default 1024).
	// Open and Input requests arriving while the mailbox is full are
	// rejected with OverloadedError instead of queueing without bound —
	// the engine's backpressure signal, surfaced as HTTP 429.
	MailboxDepth int
	// SessionRate caps each session's step rate in steps per second via a
	// per-session token bucket (0: no limit, the default). Steps beyond the
	// budget are rejected with RateLimitedError (HTTP 429 + Retry-After)
	// before anything is logged.
	SessionRate float64
	// SessionBurst is the bucket capacity: how many steps a fresh or idle
	// session may issue back-to-back (default max(1, ⌈SessionRate⌉)).
	SessionBurst int
	// Codec selects the encoding of the WAL and snapshot records this
	// engine writes (default CodecBinary, the compact interned format).
	// Reads always auto-detect the format per record, so switching codecs
	// over an existing Dir is safe in both directions: old records replay
	// unchanged, new records land in the configured encoding.
	Codec Codec
	// ReplSyncWait, when positive, upgrades replication to semi-synchronous:
	// each group commit's acknowledgements are additionally held until the
	// shard's follower has acked the batch's last LSN, or the wait elapses
	// (then the shard degrades to async — repl_sync_timeouts ticks and the
	// hold stays off until the follower acks again). The hold engages only
	// once a follower has acked at least one LSN, so an engine nobody
	// follows never waits. Under
	// semi-sync an acked step is durable on BOTH the primary and its
	// follower — which is what makes promotion lose nothing the client was
	// told succeeded.
	ReplSyncWait time.Duration
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = runtime.GOMAXPROCS(0)
	}
	if c.FsyncInterval <= 0 {
		c.FsyncInterval = 100 * time.Millisecond
	}
	if c.SegmentBytes <= 0 {
		c.SegmentBytes = 64 << 20
	}
	if c.GroupCommitBatch <= 0 {
		c.GroupCommitBatch = 256
	}
	if c.SnapshotEvery == 0 {
		c.SnapshotEvery = 4096
	} else if c.SnapshotEvery < 0 {
		c.SnapshotEvery = 0
	}
	if c.MailboxDepth <= 0 {
		c.MailboxDepth = 1024
	}
	if c.SessionBurst <= 0 {
		c.SessionBurst = int(math.Ceil(c.SessionRate))
		if c.SessionBurst < 1 {
			c.SessionBurst = 1
		}
	}
	return c
}

// Engine hosts many concurrent sessions, sharded by session ID. All methods
// are safe for concurrent use by any number of goroutines; operations on
// the same session are applied in the order they arrive at its shard (FIFO
// per session), and operations on different shards never contend.
type Engine struct {
	cfg    Config
	shards []*shard
	m      *metricsSet

	mu     sync.RWMutex // guards closed against in-flight senders
	closed bool
	wg     sync.WaitGroup
}

// request is one unit of work executed inside a shard's goroutine.
type request struct {
	do    func(*shard) (any, error)
	reply chan reply
}

type reply struct {
	v   any
	err error
}

// shard owns a disjoint set of sessions and their store. Only its
// goroutine touches these fields after startup, so no locks appear
// anywhere below.
type shard struct {
	idx       int
	cfg       *Config
	m         *metricsSet
	ch        chan request
	sessions  map[string]*Session
	store     *storage.Store // nil in memory-only mode
	sinceSnap int
	broken    error // set on a WAL write failure; fail-stop for mutations

	// pending holds requests executed but not yet acknowledged: their
	// replies are released together, after the batch's shared Commit.
	pending  []pendingReply
	segGauge int // last value pushed to the walSegments metric

	// enc is the WAL record encoder under CodecBinary. Its intern table is
	// scoped to one segment (encSeg): AlignAppend surfaces rotations before
	// each encode, and a segment change resets the table, so every segment
	// is self-describing from its first record — which is what lets
	// recovery and replication scans start at any segment boundary with a
	// fresh decoder.
	enc    *codec.Encoder
	encSeg int

	// streamEnc is the replication wire's encoder: StreamWAL transcodes
	// segment-scoped records into this stream for binary-wire followers.
	// Guarded by streamMu — stream requests arrive on HTTP goroutines, not
	// the shard loop.
	streamMu  sync.Mutex
	streamEnc *codec.Encoder

	// Byte meters for the durability surfaces, monotonic over the process
	// (walBytes in metricsSet resets on snapshot; these never do). Written
	// by the shard goroutine, read by Stats and the spocus_storage expvar.
	walBytesTotal  atomic.Int64
	snapBytesTotal atomic.Int64
	shipBytesTotal atomic.Int64
	internEntries  atomic.Int64

	// acked is the highest LSN a replication follower has confirmed
	// applying for this shard's WAL stream. Written by HTTP goroutines
	// (AckWAL), read by Stats — atomic, not shard-owned.
	acked atomic.Int64
	// ackWake carries a token whenever acked advances, waking a shard
	// blocked in holdForReplica (semi-sync). Buffered at 1: a stale token
	// costs one spurious re-check of acked, never a missed wake.
	ackWake chan struct{}
}

// pendingReply is one executed request awaiting the group commit.
type pendingReply struct {
	ch  chan reply
	v   any
	err error
}

// NewEngine creates an engine, replaying any existing snapshot and WAL
// under cfg.Dir so previously-acknowledged sessions and logs are live
// again before the first request is accepted.
func NewEngine(cfg Config) (*Engine, error) {
	cfg = cfg.withDefaults()
	e := &Engine{cfg: cfg, m: &metricsSet{start: time.Now()}}
	if cfg.Dir != "" {
		if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
			return nil, err
		}
	}
	start := time.Now()
	for i := 0; i < cfg.Shards; i++ {
		sh := &shard{
			idx:      i,
			cfg:      &e.cfg,
			m:        e.m,
			ch:       make(chan request, cfg.MailboxDepth),
			sessions: make(map[string]*Session),
			ackWake:  make(chan struct{}, 1),
			enc:      codec.NewEncoder(),
			encSeg:   -1,
		}
		if cfg.Dir != "" {
			if err := sh.recover(filepath.Join(cfg.Dir, fmt.Sprintf("shard-%03d", i))); err != nil {
				return nil, fmt.Errorf("shard %d: %w", i, err)
			}
		}
		e.shards = append(e.shards, sh)
	}
	e.m.replayNanos.Store(int64(time.Since(start)))
	for _, sh := range e.shards {
		e.m.sessionsOpen.Add(int64(len(sh.sessions)))
		e.wg.Add(1)
		go func(sh *shard) {
			defer e.wg.Done()
			sh.loop()
		}(sh)
	}
	registerEngine(e)
	return e, nil
}

// recover opens the shard's store under dir, streams its snapshot, and
// replays its WAL segments on top. Replay is idempotent: records already
// covered by the snapshot are skipped, so a crash between "snapshot
// durable" and "segments retired" is harmless.
func (sh *shard) recover(dir string) error {
	st, err := storage.Open(dir, storage.Options{
		Fsync:            sh.cfg.Fsync,
		FsyncInterval:    sh.cfg.FsyncInterval,
		SegmentBytes:     sh.cfg.SegmentBytes,
		NewStreamDecoder: newWALStreamDecoder,
	})
	if err != nil {
		return err
	}
	// Both decode paths auto-detect the format per record, so recovery reads
	// JSON-era files, binary files, and segments holding a mix (a server
	// restarted under a different -wal-codec keeps appending to fresh
	// segments, but replication can interleave formats) identically.
	snapDec, walDec := codec.NewDecoder(), codec.NewDecoder()
	first := true
	n, err := st.Recover(
		func(payload []byte) error {
			h, img, err := decodeSnapPayload(snapDec, payload, first)
			if err != nil {
				return err
			}
			if first {
				first = false
				if h == nil {
					return fmt.Errorf("snapshot stream does not start with a header")
				}
				if h.Version != snapVersion {
					return fmt.Errorf("snapshot version %d, want %d", h.Version, snapVersion)
				}
				return nil
			}
			if img == nil {
				return fmt.Errorf("snapshot stream holds a second header")
			}
			s, err := img.restore()
			if err != nil {
				return err
			}
			sh.sessions[s.id] = s
			return nil
		},
		func(payload []byte) error {
			rec, err := decodeWALPayload(walDec, payload)
			if err != nil {
				return err
			}
			return sh.applyRecord(rec)
		})
	if err != nil {
		return err
	}
	sh.m.replayRecords.Add(int64(n))
	sh.store = st
	sh.segGauge = st.Segments()
	sh.m.walSegments.Add(int64(sh.segGauge))
	return nil
}

// applyRecord replays one WAL record into the shard's session map.
func (sh *shard) applyRecord(rec *walRecord) error {
	switch rec.T {
	case recOpen:
		if _, ok := sh.sessions[rec.SID]; ok {
			return nil // covered by snapshot
		}
		s, err := newSession(rec.SID, &OpenRequest{Model: rec.Model, Src: rec.Src, Mode: rec.Mode, DB: rec.DB, Network: rec.Network})
		if err != nil {
			return err
		}
		sh.sessions[rec.SID] = s
		return nil
	case recStep:
		s, ok := sh.sessions[rec.SID]
		if !ok {
			return fmt.Errorf("step for unknown session %s", rec.SID)
		}
		if rec.Seq <= s.steps {
			return nil // covered by snapshot
		}
		if rec.Seq != s.steps+1 {
			return fmt.Errorf("session %s: step %d after %d", rec.SID, rec.Seq, s.steps)
		}
		// The session's own kind decides how to replay the record: an empty
		// joint step carries no netin field, so the shape alone cannot.
		if s.net != nil {
			if _, err := s.applyNet(rec.NetIn); err != nil {
				return err
			}
		} else if _, err := s.apply(rec.Input); err != nil {
			return err
		}
		s.noteKey(rec.Key, rec.Seq)
		return nil
	case recBatch:
		s, ok := sh.sessions[rec.SID]
		if !ok {
			return fmt.Errorf("batch for unknown session %s", rec.SID)
		}
		last := rec.Seq + len(rec.Inputs) - 1
		if last <= s.steps {
			return nil // covered by snapshot
		}
		if rec.Seq > s.steps+1 {
			return fmt.Errorf("session %s: batch %d..%d after %d", rec.SID, rec.Seq, last, s.steps)
		}
		// A snapshot can cover a prefix of the batch; replay only the rest.
		for i := s.steps + 1 - rec.Seq; i < len(rec.Inputs); i++ {
			if _, err := s.apply(rec.Inputs[i]); err != nil {
				return err
			}
			if i < len(rec.Keys) {
				s.noteKey(rec.Keys[i], rec.Seq+i)
			}
		}
		return nil
	case recInstall:
		if rec.Image == nil {
			return fmt.Errorf("install record for %s has no image", rec.SID)
		}
		// A session can be installed more than once over its life (handoff
		// there and back, follower promotion), so the WAL may hold several
		// install records for one ID. The furthest-along image wins: an
		// existing session at >= the image's step count is either the
		// snapshot covering this record or a later install.
		if prev, ok := sh.sessions[rec.SID]; ok && prev.steps >= rec.Image.Steps {
			return nil
		}
		s, err := rec.Image.restore()
		if err != nil {
			return err
		}
		sh.sessions[rec.SID] = s
		return nil
	case recClose:
		delete(sh.sessions, rec.SID)
		return nil
	}
	return fmt.Errorf("unknown record type %q", rec.T)
}

// loop is the shard's actor loop: it owns the sessions map and store until
// the channel closes, then flushes and closes the store. Each received
// request seeds a batch — see batch for the group-commit protocol.
func (sh *shard) loop() {
	var flush <-chan time.Time
	if sh.store != nil && sh.cfg.Fsync == FsyncInterval {
		t := time.NewTicker(sh.cfg.FsyncInterval)
		defer t.Stop()
		flush = t.C
	}
	for {
		select {
		case req, ok := <-sh.ch:
			if !ok {
				sh.closeStore()
				return
			}
			if !sh.batch(req) {
				sh.closeStore()
				return
			}
		case <-flush:
			if sh.broken == nil {
				if err := sh.store.Sync(); err != nil {
					sh.broken = err
				}
			}
		}
	}
}

func (sh *shard) closeStore() {
	if sh.store != nil {
		sh.store.Close()
	}
}

// batch is the group-commit heart of the shard: it executes first, then
// keeps executing whatever is already queued in the mailbox (up to
// GroupCommitBatch requests), and only then commits — so every WAL append
// in the batch shares one fsync under FsyncAlways. Requests that did not
// append (reads, rejections) are acknowledged immediately; requests that
// did are acknowledged only after the shared fsync returns, preserving
// the crash contract exactly: an acked step is a durable step.
//
// With GroupCommitWindow > 0 a dirty shard waits up to the window for
// followers before syncing, trading bounded latency for fewer fsyncs.
// Returns false when the mailbox closed mid-drain (engine shutdown).
func (sh *shard) batch(first request) (open bool) {
	open = true
	var timer *time.Timer
	var deadline <-chan time.Time
	defer func() {
		if timer != nil {
			timer.Stop()
		}
		sh.commitPending()
	}()
	sh.exec(first)
	for len(sh.pending) < sh.cfg.GroupCommitBatch {
		select {
		case req, ok := <-sh.ch:
			if !ok {
				return false
			}
			sh.exec(req)
			continue
		default:
		}
		// Mailbox momentarily empty. Arm the window once per batch, and
		// only when there is something worth waiting to amortize.
		if deadline == nil && sh.cfg.GroupCommitWindow > 0 && sh.cfg.Fsync == FsyncAlways &&
			sh.store != nil && sh.store.Dirty() && sh.broken == nil {
			timer = time.NewTimer(sh.cfg.GroupCommitWindow)
			deadline = timer.C
		}
		if deadline == nil {
			return true
		}
		select {
		case req, ok := <-sh.ch:
			if !ok {
				return false
			}
			sh.exec(req)
		case <-deadline:
			return true
		}
	}
	return true
}

// exec runs one request in the shard. If it appended to the WAL its reply
// is deferred to the batch commit; otherwise it is released immediately.
func (sh *shard) exec(req request) {
	var before int64
	if sh.store != nil {
		before = sh.store.Appends()
	}
	v, err := req.do(sh)
	if sh.store != nil && sh.store.Appends() > before {
		sh.pending = append(sh.pending, pendingReply{req.reply, v, err})
		return
	}
	req.reply <- reply{v, err}
}

// commitPending syncs the batch's appends per policy and releases the
// deferred acknowledgements. A failed sync follows the fail-stop
// discipline: every pending request learns of the failure (its records
// may not be durable) and the shard refuses further mutations.
func (sh *shard) commitPending() {
	if len(sh.pending) == 0 {
		return
	}
	if sh.store != nil && sh.broken == nil {
		synced, err := sh.store.Commit()
		if err != nil {
			sh.broken = err
			werr := fmt.Errorf("shard %d wal sync failed: %w", sh.idx, err)
			for i := range sh.pending {
				sh.pending[i].v, sh.pending[i].err = nil, werr
			}
		} else if synced {
			sh.m.walSyncs.Add(1)
		}
		sh.refreshSegGauge()
		if sh.cfg.ReplSyncWait > 0 && sh.broken == nil {
			sh.holdForReplica()
		}
	}
	for i := range sh.pending {
		sh.pending[i].ch <- reply{sh.pending[i].v, sh.pending[i].err}
	}
	sh.pending = sh.pending[:0]
}

// holdForReplica is the semi-sync gate: it blocks the batch's
// acknowledgements until the follower has acked every LSN this commit
// published, or ReplSyncWait elapses (then the batch degrades to async and
// repl_sync_timeouts ticks). It engages only once a follower has acked at
// least one LSN, so a primary nobody follows pays nothing. Deadlock-free by
// construction: the ack path (StreamWAL long-poll → follower apply → next
// fetch's acked= → AckWAL) touches only the store's replication view and
// the shard's atomic, never the shard goroutine blocked here.
func (sh *shard) holdForReplica() {
	if sh.acked.Load() == 0 {
		return
	}
	target := sh.store.ReplState().Committed
	if sh.acked.Load() >= target {
		return
	}
	timer := time.NewTimer(sh.cfg.ReplSyncWait)
	defer timer.Stop()
	for sh.acked.Load() < target {
		select {
		case <-sh.ackWake:
		case <-timer.C:
			// Degrade: the follower stopped acking (dead or partitioned).
			// Resetting the gauge disengages the hold — only this one batch
			// pays the full wait — until the follower acks again, which
			// re-engages semi-sync automatically.
			sh.acked.Store(0)
			sh.m.replSyncTimeouts.Add(1)
			return
		}
	}
}

func (sh *shard) refreshSegGauge() {
	if n := sh.store.Segments(); n != sh.segGauge {
		sh.m.walSegments.Add(int64(n - sh.segGauge))
		sh.segGauge = n
	}
}

// appendWAL writes one record under the fail-stop discipline: after a write
// error the shard refuses further mutations rather than diverging from its
// log. The record is NOT synced here — the enclosing batch commits it; the
// requester's ack is held until then.
func (sh *shard) appendWAL(rec *walRecord) error {
	if sh.store == nil {
		return nil
	}
	if sh.broken != nil {
		return fmt.Errorf("shard %d wal failed: %w", sh.idx, sh.broken)
	}
	payload, err := sh.encodeWAL(rec)
	if err != nil {
		return err
	}
	n, err := sh.store.Append(payload)
	if err != nil {
		sh.broken = err
		return fmt.Errorf("shard %d wal failed: %w", sh.idx, err)
	}
	sh.m.walBytes.Add(int64(n))
	sh.walBytesTotal.Add(int64(n))
	sh.m.walAppends.Add(1)
	return nil
}

// encodeWAL renders one record in the shard's configured codec, keeping the
// binary encoder's intern table aligned with the segment the record will
// land in (see the enc field).
func (sh *shard) encodeWAL(rec *walRecord) ([]byte, error) {
	if sh.cfg.Codec == CodecJSON {
		return json.Marshal(rec)
	}
	seg, err := sh.store.AlignAppend()
	if err != nil {
		sh.broken = err
		return nil, fmt.Errorf("shard %d wal failed: %w", sh.idx, err)
	}
	if seg != sh.encSeg {
		sh.enc.Reset()
		sh.encSeg = seg
	}
	payload, err := encodeWALRecord(sh.enc, rec)
	if err != nil {
		// The encoder holds the failed record's pending definitions; reset
		// so the table stays honest, at the cost of re-defining constants
		// in the next record.
		sh.enc.Reset()
		sh.encSeg = -1
		return nil, err
	}
	sh.internEntries.Store(int64(sh.enc.TableLen()))
	return payload, nil
}

// maybeSnapshot compacts the WAL into a snapshot once enough steps
// accumulated, streaming one session image at a time through the store's
// snapshot writer. Committing the snapshot also seals the active segment,
// so any unsynced appends become durable as a side effect.
func (sh *shard) maybeSnapshot(force bool) error {
	if sh.store == nil || sh.broken != nil {
		return nil
	}
	if !force && (sh.cfg.SnapshotEvery == 0 || sh.sinceSnap < sh.cfg.SnapshotEvery) {
		return nil
	}
	sw, err := sh.store.BeginSnapshot()
	if err != nil {
		return err
	}
	var wrote int64
	put := func(payload []byte, err error) error {
		if err == nil {
			err = sw.Append(payload)
		}
		if err != nil {
			sw.Abort()
			return err
		}
		wrote += int64(len(payload))
		return nil
	}
	// A snapshot is its own stream: the fresh encoder's first record carries
	// the reset flag, so a decoder pointed at the file needs no context.
	senc := codec.NewEncoder()
	if sh.cfg.Codec == CodecJSON {
		hdr, err := json.Marshal(snapHeader{Version: snapVersion, Shard: sh.idx})
		if err = put(hdr, err); err != nil {
			return err
		}
	} else if err := put(encodeSnapHeaderRecord(senc, snapHeader{Version: snapVersion, Shard: sh.idx}), nil); err != nil {
		return err
	}
	ids := make([]string, 0, len(sh.sessions))
	for id := range sh.sessions {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		img := snapOf(sh.sessions[id])
		var payload []byte
		var err error
		if sh.cfg.Codec == CodecJSON {
			payload, err = json.Marshal(&img)
		} else {
			payload, err = encodeImageRecord(senc, &img)
		}
		if err = put(payload, err); err != nil {
			return err
		}
	}
	if err := sw.Commit(); err != nil {
		sh.broken = err
		return err
	}
	sh.snapBytesTotal.Add(wrote)
	sh.m.walBytes.Store(0)
	sh.m.snapshots.Add(1)
	sh.sinceSnap = 0
	sh.refreshSegGauge()
	return nil
}

// ShardOf computes the shard index a session ID hashes to in an engine
// with the given shard count. Exported because a replication follower
// needs to reproduce the PRIMARY's placement: the primary shard of a
// session decides which WAL stream its records arrive on.
func ShardOf(id string, shards int) int {
	h := fnv.New32a()
	h.Write([]byte(id))
	return int(h.Sum32() % uint32(shards))
}

// shardFor routes a session ID to its owning shard.
func (e *Engine) shardFor(id string) *shard {
	return e.shards[ShardOf(id, len(e.shards))]
}

// send runs do inside the shard goroutine owning id and waits for the
// result, blocking while the shard's mailbox is full. Control-plane
// operations (Log, Close, List, Snapshot, Export) use it: they are rare
// enough that queueing is preferable to spurious rejection.
func (e *Engine) send(sh *shard, do func(*shard) (any, error)) (any, error) {
	e.mu.RLock()
	if e.closed {
		e.mu.RUnlock()
		return nil, fmt.Errorf("engine is shut down")
	}
	req := request{do: do, reply: make(chan reply, 1)}
	sh.ch <- req
	e.mu.RUnlock()
	r := <-req.reply
	return r.v, r.err
}

// trySend is send for the high-rate data plane (Open, Input): when the
// shard's mailbox is full the request is rejected immediately with
// OverloadedError rather than queued, bounding both memory and latency
// under overload.
func (e *Engine) trySend(sh *shard, do func(*shard) (any, error)) (any, error) {
	e.mu.RLock()
	if e.closed {
		e.mu.RUnlock()
		return nil, fmt.Errorf("engine is shut down")
	}
	req := request{do: do, reply: make(chan reply, 1)}
	select {
	case sh.ch <- req:
		e.mu.RUnlock()
	default:
		e.mu.RUnlock()
		e.m.rejected.Add(1)
		return nil, &OverloadedError{Shard: sh.idx}
	}
	r := <-req.reply
	return r.v, r.err
}

// NewID returns a fresh 128-bit random session ID.
func NewID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("session: id entropy unavailable: " + err.Error())
	}
	return hex.EncodeToString(b[:])
}

// Open creates a session and durably records its creation. If req.ID is
// empty a random ID is assigned.
func (e *Engine) Open(req *OpenRequest) (*Info, error) {
	id := req.ID
	if id == "" {
		id = NewID()
	}
	s, err := newSession(id, req)
	if err != nil {
		return nil, &BadInputError{Err: err}
	}
	v, err := e.trySend(e.shardFor(id), func(sh *shard) (any, error) {
		if _, ok := sh.sessions[id]; ok {
			return nil, &ConflictError{ID: id}
		}
		if err := sh.appendWAL(s.openRecord()); err != nil {
			return nil, err
		}
		sh.sessions[id] = s
		sh.m.sessionsOpen.Add(1)
		sh.m.sessionsOpened.Add(1)
		return s.info(), nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*Info), nil
}

// Input feeds one input-relation set to the session and returns the step's
// outputs and log delta, exactly the exchange of Figure 1. The step is
// durable (per the fsync policy) before it is acknowledged.
func (e *Engine) Input(id string, in relation.Instance) (*StepResult, error) {
	return e.InputKey(id, "", in)
}

// InputKey is Input with a client idempotency key: when key is non-empty
// and the session has already applied a step under it, the input is NOT
// applied again — the recorded step is answered back with Duplicate set.
// The (key → seq) table travels in the step's WAL record and in snapshot
// images, so dedupe holds across crash recovery, handoff, and follower
// promotion; that is what lets the router retry an ambiguous 502 without
// risking a double step.
func (e *Engine) InputKey(id, key string, in relation.Instance) (*StepResult, error) {
	start := time.Now()
	v, err := e.trySend(e.shardFor(id), func(sh *shard) (any, error) {
		s, ok := sh.sessions[id]
		if !ok {
			return nil, &NotFoundError{ID: id}
		}
		if s.net != nil {
			return nil, &BadInputError{Err: fmt.Errorf("session %s is a network session; address inputs per node", id)}
		}
		if key != "" {
			if seq, ok := s.keys[key]; ok {
				sh.m.dedupedSteps.Add(1)
				return s.dupResult(seq), nil
			}
		}
		if s.frozen {
			return nil, &FrozenError{ID: id}
		}
		if sh.cfg.SessionRate > 0 {
			if ok, wait := s.rate.take(sh.cfg.SessionRate, float64(sh.cfg.SessionBurst), time.Now()); !ok {
				sh.m.rateLimited.Add(1)
				return nil, &RateLimitedError{ID: id, RetryAfter: wait}
			}
		}
		if err := s.validateInput(in); err != nil {
			return nil, &BadInputError{Err: err}
		}
		if err := sh.appendWAL(&walRecord{T: recStep, SID: id, Seq: s.steps + 1, Input: in, Key: key}); err != nil {
			return nil, err
		}
		res, err := s.apply(in)
		if err != nil {
			// Deterministic evaluation failure: replay fails identically, so
			// memory and log stay consistent. Surface it as a client error.
			return nil, &BadInputError{Err: err}
		}
		s.noteKey(key, res.Seq)
		sh.m.stepsTotal.Add(1)
		sh.sinceSnap++
		if err := sh.maybeSnapshot(false); err != nil {
			return nil, err
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	e.m.stepLatency.observe(time.Since(start))
	return v.(*StepResult), nil
}

// Log returns the session's full durable log.
func (e *Engine) Log(id string) (*LogResult, error) {
	v, err := e.send(e.shardFor(id), func(sh *shard) (any, error) {
		s, ok := sh.sessions[id]
		if !ok {
			return nil, &NotFoundError{ID: id}
		}
		return s.logResult(), nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*LogResult), nil
}

// Info returns the session's description.
func (e *Engine) Info(id string) (*Info, error) {
	v, err := e.send(e.shardFor(id), func(sh *shard) (any, error) {
		s, ok := sh.sessions[id]
		if !ok {
			return nil, &NotFoundError{ID: id}
		}
		return s.info(), nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*Info), nil
}

// CloseResult reports the final disposition of a closed session.
type CloseResult struct {
	ID    string `json:"id"`
	Steps int    `json:"steps"`
	// Valid is the run's final validity under the session's acceptance
	// mode; for accept-at-end this is the definitive answer.
	Valid bool              `json:"valid"`
	Log   relation.Sequence `json:"log"`
	Joint []JointLogEntry   `json:"joint,omitempty"` // network sessions
}

// Close ends the session, durably records the close, and returns the final
// log (the complete business exchange, per Figure 1).
func (e *Engine) Close(id string) (*CloseResult, error) {
	v, err := e.send(e.shardFor(id), func(sh *shard) (any, error) {
		s, ok := sh.sessions[id]
		if !ok {
			return nil, &NotFoundError{ID: id}
		}
		if s.frozen {
			return nil, &FrozenError{ID: id}
		}
		if err := sh.appendWAL(&walRecord{T: recClose, SID: id}); err != nil {
			return nil, err
		}
		delete(sh.sessions, id)
		sh.m.sessionsOpen.Add(-1)
		sh.m.sessionsClosed.Add(1)
		res := &CloseResult{ID: id, Steps: s.steps, Valid: s.valid(), Log: s.logs}
		if s.net != nil {
			res.Joint = s.net.joint
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*CloseResult), nil
}

// List returns Info for every open session, sorted by ID.
func (e *Engine) List() ([]*Info, error) {
	var all []*Info
	for _, sh := range e.shards {
		v, err := e.send(sh, func(sh *shard) (any, error) {
			infos := make([]*Info, 0, len(sh.sessions))
			for _, s := range sh.sessions {
				infos = append(infos, s.info())
			}
			return infos, nil
		})
		if err != nil {
			return nil, err
		}
		all = append(all, v.([]*Info)...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].ID < all[j].ID })
	return all, nil
}

// Snapshot forces every shard to compact its WAL into a snapshot now.
func (e *Engine) Snapshot() error {
	for _, sh := range e.shards {
		if _, err := e.send(sh, func(sh *shard) (any, error) {
			return nil, sh.maybeSnapshot(true)
		}); err != nil {
			return err
		}
	}
	return nil
}

// Stats returns the engine's metrics snapshot, including replication lag
// computed from each shard's committed LSN against its follower's last
// ack. Shards never acked (no follower attached) contribute nothing, so
// an unreplicated engine reports zero lag rather than infinity.
func (e *Engine) Stats() Stats {
	st := e.m.stats()
	for _, sh := range e.shards {
		st.WALBytesTotal += sh.walBytesTotal.Load()
		st.SnapshotBytesTotal += sh.snapBytesTotal.Load()
		st.ShipBytesTotal += sh.shipBytesTotal.Load()
		st.CodecInternEntries += sh.internEntries.Load()
		if sh.store == nil {
			continue
		}
		acked := sh.acked.Load()
		if acked == 0 {
			continue
		}
		rs := sh.store.ReplState()
		st.ReplCommitted += rs.Committed
		st.ReplAcked += acked
		if lag := rs.Committed - acked; lag > 0 {
			st.ReplLag += lag
		}
	}
	return st
}

// Shards returns the number of shards (for reporting).
func (e *Engine) Shards() int { return len(e.shards) }

// Shutdown stops the engine cleanly: in-flight requests drain, each shard
// takes a final snapshot (when durable), and WAL files are flushed and
// closed. The engine rejects requests afterwards.
func (e *Engine) Shutdown() error {
	if e.cfg.Dir != "" {
		if err := e.Snapshot(); err != nil {
			return err
		}
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	for _, sh := range e.shards {
		close(sh.ch)
	}
	e.mu.Unlock()
	e.wg.Wait()
	unregisterEngine(e)
	return nil
}

// NotFoundError reports an operation on a session that does not exist.
type NotFoundError struct{ ID string }

func (err *NotFoundError) Error() string { return fmt.Sprintf("no session %s", err.ID) }

// ConflictError reports an attempt to open a session under an ID that is
// already in use.
type ConflictError struct{ ID string }

func (err *ConflictError) Error() string { return fmt.Sprintf("session %s already exists", err.ID) }

// BadInputError reports a client-side input problem (unknown relation,
// wrong arity).
type BadInputError struct{ Err error }

func (err *BadInputError) Error() string { return err.Err.Error() }
func (err *BadInputError) Unwrap() error { return err.Err }

// OverloadedError reports a request rejected because its shard's mailbox
// was full. The HTTP layer maps it to 429 Too Many Requests; clients
// should back off and retry.
type OverloadedError struct{ Shard int }

func (err *OverloadedError) Error() string {
	return fmt.Sprintf("overloaded: shard %d mailbox full", err.Shard)
}
