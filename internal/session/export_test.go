package session

import (
	"errors"
	"runtime"
	"testing"

	"repro/internal/relation"
)

// step feeds one order/pay input to the session, failing the test on error.
func stepInput(t *testing.T, e *Engine, id string, rel string, args ...string) *StepResult {
	t.Helper()
	in := relation.NewInstance()
	tup := make(relation.Tuple, len(args))
	for i, a := range args {
		tup[i] = relation.Const(a)
	}
	in.Add(rel, tup)
	res, err := e.Input(id, in)
	if err != nil {
		t.Fatalf("input %s%v: %v", rel, args, err)
	}
	return res
}

// TestExportReplayRoundtrip hands a session from one engine to another by
// deterministic replay and checks the reconstructed log is identical.
func TestExportReplayRoundtrip(t *testing.T) {
	src, err := NewEngine(Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Shutdown()
	if _, err := src.Open(&OpenRequest{ID: "h1", Model: "short"}); err != nil {
		t.Fatal(err)
	}
	stepInput(t, src, "h1", "order", "newsweek")
	stepInput(t, src, "h1", "pay", "newsweek", "20")
	want, err := src.Log("h1")
	if err != nil {
		t.Fatal(err)
	}

	exp, err := src.Export("h1")
	if err != nil {
		t.Fatal(err)
	}
	if exp.Steps != 2 || len(exp.Inputs) != 2 {
		t.Fatalf("export: steps=%d inputs=%d, want 2/2", exp.Steps, len(exp.Inputs))
	}

	// Frozen: mutations fail, reads keep working, export is idempotent.
	in := relation.NewInstance()
	in.Add("order", relation.Tuple{"time"})
	var frozen *FrozenError
	if _, err := src.Input("h1", in); !errors.As(err, &frozen) {
		t.Fatalf("input on frozen session: %v, want FrozenError", err)
	}
	if _, err := src.Close("h1"); !errors.As(err, &frozen) {
		t.Fatalf("close on frozen session: %v, want FrozenError", err)
	}
	if _, err := src.Log("h1"); err != nil {
		t.Fatalf("log on frozen session: %v", err)
	}
	if _, err := src.Export("h1"); err != nil {
		t.Fatalf("re-export: %v", err)
	}

	// Replay on the target through the ordinary open/input path.
	dst, err := NewEngine(Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Shutdown()
	if _, err := dst.Open(&OpenRequest{ID: exp.ID, Model: exp.Model, Src: exp.Src, Mode: exp.Mode, DB: exp.DB}); err != nil {
		t.Fatal(err)
	}
	for i, in := range exp.Inputs {
		if _, err := dst.Input(exp.ID, in); err != nil {
			t.Fatalf("replay step %d: %v", i+1, err)
		}
	}
	got, err := dst.Log("h1")
	if err != nil {
		t.Fatal(err)
	}
	if got.Steps != want.Steps || !got.Log.Equal(want.Log) {
		t.Fatalf("replayed log differs:\n got %s\nwant %s", got.Log, want.Log)
	}

	// Retire the source copy; it is gone there, alive on the target.
	if err := src.Forget("h1"); err != nil {
		t.Fatal(err)
	}
	var nf *NotFoundError
	if _, err := src.Log("h1"); !errors.As(err, &nf) {
		t.Fatalf("log after forget: %v, want NotFoundError", err)
	}
	stepInput(t, dst, "h1", "order", "time") // the moved session keeps serving
}

// TestForgetRequiresFreeze checks a stray forget cannot drop a live session.
func TestForgetRequiresFreeze(t *testing.T) {
	e, err := NewEngine(Config{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Shutdown()
	if _, err := e.Open(&OpenRequest{ID: "s", Model: "short"}); err != nil {
		t.Fatal(err)
	}
	var bad *BadInputError
	if err := e.Forget("s"); !errors.As(err, &bad) {
		t.Fatalf("forget without export: %v, want BadInputError", err)
	}
	if err := e.Unfreeze("s"); err != nil { // no-op on an unfrozen session
		t.Fatal(err)
	}
}

// TestUnfreezeAbortsHandoff checks an aborted handoff resumes cleanly.
func TestUnfreezeAbortsHandoff(t *testing.T) {
	e, err := NewEngine(Config{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Shutdown()
	if _, err := e.Open(&OpenRequest{ID: "s", Model: "short"}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Export("s"); err != nil {
		t.Fatal(err)
	}
	if err := e.Unfreeze("s"); err != nil {
		t.Fatal(err)
	}
	stepInput(t, e, "s", "order", "time")
}

// TestExportSurvivesSnapshotRecovery checks the input history — not just
// state and log — survives WAL compaction and restart, so a recovered
// session is still exportable.
func TestExportSurvivesSnapshotRecovery(t *testing.T) {
	dir := t.TempDir()
	e, err := NewEngine(Config{Dir: dir, Shards: 1, Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Open(&OpenRequest{ID: "s", Model: "short"}); err != nil {
		t.Fatal(err)
	}
	stepInput(t, e, "s", "order", "newsweek")
	stepInput(t, e, "s", "pay", "newsweek", "20")
	if err := e.Shutdown(); err != nil { // snapshots, truncating the WAL
		t.Fatal(err)
	}

	e2, err := NewEngine(Config{Dir: dir, Shards: 1, Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Shutdown()
	exp, err := e2.Export("s")
	if err != nil {
		t.Fatal(err)
	}
	if len(exp.Inputs) != 2 {
		t.Fatalf("recovered export has %d inputs, want 2", len(exp.Inputs))
	}
	if !exp.Inputs[0].Has("order", relation.Tuple{"newsweek"}) {
		t.Fatalf("recovered input 1: %s", exp.Inputs[0])
	}
}

// TestMailboxOverload fills a depth-1 mailbox while the shard goroutine is
// parked and checks the next Input is rejected with OverloadedError and
// counted.
func TestMailboxOverload(t *testing.T) {
	e, err := NewEngine(Config{Shards: 1, MailboxDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Shutdown()
	if _, err := e.Open(&OpenRequest{ID: "s", Model: "short"}); err != nil {
		t.Fatal(err)
	}

	// Park the shard goroutine on a request that blocks until released,
	// then fill the single mailbox slot with a second request.
	release := make(chan struct{})
	parked := make(chan struct{})
	done := make(chan struct{})
	go func() {
		e.send(e.shards[0], func(*shard) (any, error) {
			close(parked)
			<-release
			return nil, nil
		})
		close(done)
	}()
	<-parked
	queued := make(chan struct{})
	go func() {
		e.send(e.shards[0], func(*shard) (any, error) { return nil, nil })
		close(queued)
	}()
	// Wait for the queued request to occupy the mailbox slot.
	for len(e.shards[0].ch) == 0 {
		runtime.Gosched()
	}

	in := relation.NewInstance()
	in.Add("order", relation.Tuple{"time"})
	_, err = e.Input("s", in)
	var over *OverloadedError
	if !errors.As(err, &over) {
		t.Fatalf("input with full mailbox: %v, want OverloadedError", err)
	}
	if got := e.Stats().RejectedTotal; got != 1 {
		t.Fatalf("RejectedTotal = %d, want 1", got)
	}
	close(release)
	<-done
	<-queued
	stepInput(t, e, "s", "order", "time") // drained: accepted again
}
