package session

import (
	"fmt"
	"math"
	"time"
)

// Per-session rate limiting: a token bucket per session, refilled at
// Config.SessionRate steps per second up to Config.SessionBurst tokens.
// One step costs one token; an empty bucket rejects the step with
// RateLimitedError (HTTP 429 + Retry-After) before anything is logged.
// The bucket lives only in memory — it is policy, not session identity —
// so restarts and handoffs start a fresh bucket, which errs on the side of
// admitting work.

// bucket is a session's token bucket. It is touched only inside the owning
// shard's goroutine, like every other per-session field.
type bucket struct {
	tokens float64
	last   time.Time
}

// take refills by elapsed time and spends one token. On failure it returns
// how long until a token is available.
func (b *bucket) take(rate, burst float64, now time.Time) (bool, time.Duration) {
	if b.last.IsZero() {
		b.tokens = burst
	} else if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens = math.Min(burst, b.tokens+rate*dt)
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	wait := time.Duration((1 - b.tokens) / rate * float64(time.Second))
	return false, wait
}

// RateLimitedError reports a step rejected by the per-session rate limit.
// The HTTP layer maps it to 429 with Retry-After set from RetryAfter.
type RateLimitedError struct {
	ID         string
	RetryAfter time.Duration
}

func (err *RateLimitedError) Error() string {
	return fmt.Sprintf("session %s: rate limit exceeded, retry in %s", err.ID, err.RetryAfter.Round(time.Millisecond))
}

// retryAfterSeconds renders the wait as a Retry-After header value,
// rounding up so the client never retries early.
func retryAfterSeconds(d time.Duration) string {
	s := int(math.Ceil(d.Seconds()))
	if s < 1 {
		s = 1
	}
	return fmt.Sprint(s)
}
