package session

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/codec"
	"repro/internal/models"
	"repro/internal/storage"
)

// Durability tests for the binary WAL codec: recovery across JSON and
// binary segments, mixed-format segments, torn binary tails, and a fuzz
// seeded from payloads a real engine wrote.

func lastSegment(t *testing.T, shardDir string) string {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(shardDir, "seg-*.wal"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments in %s: %v", shardDir, err)
	}
	sort.Strings(segs)
	return segs[len(segs)-1]
}

// frameFor renders a payload in the storage frame format (4-byte BE length,
// 4-byte CRC-32, payload) so tests can hand-append records to a segment.
func frameFor(payload []byte) []byte {
	buf := make([]byte, 8+len(payload))
	binary.BigEndian.PutUint32(buf[:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload))
	copy(buf[8:], payload)
	return buf
}

// TestMixedCodecRecovery runs the same session through a JSON-codec engine,
// a crash, a binary-codec engine, and another crash. Recovery replays
// segments of both formats into one history — the per-record auto-detection
// that makes codec switching safe in either direction.
func TestMixedCodecRecovery(t *testing.T) {
	dir := t.TempDir()
	_, wantLogs := fig1Reference(t)
	inputs := models.Fig1Inputs()

	e1, err := NewEngine(Config{Dir: dir, Shards: 1, Fsync: FsyncAlways, Codec: CodecJSON})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e1.Open(&OpenRequest{ID: "crashy", Model: "short"}); err != nil {
		t.Fatal(err)
	}
	if _, err := e1.Input("crashy", inputs[0]); err != nil {
		t.Fatal(err)
	}
	// Crash; reopen under the binary default and keep stepping.
	e2, err := NewEngine(Config{Dir: dir, Shards: 1, Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if lr, err := e2.Log("crashy"); err != nil || !lr.Log.Equal(wantLogs[:1]) {
		t.Fatalf("after JSON replay: log=%v err=%v", lr, err)
	}
	if _, err := e2.Input("crashy", inputs[1]); err != nil {
		t.Fatal(err)
	}
	// Crash again; the WAL now holds JSON and binary segments.
	e3, err := NewEngine(Config{Dir: dir, Shards: 1, Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer e3.Shutdown()
	lr, err := e3.Log("crashy")
	if err != nil {
		t.Fatal(err)
	}
	if !lr.Log.Equal(wantLogs[:2]) {
		t.Fatalf("mixed replay log:\n got %s\nwant %s", lr.Log, wantLogs[:2])
	}
	res, err := e3.Input("crashy", inputs[2])
	if err != nil {
		t.Fatal(err)
	}
	if res.Seq != 3 {
		t.Fatalf("step after mixed recovery: seq=%d", res.Seq)
	}
	lr, _ = e3.Log("crashy")
	if !lr.Log.Equal(wantLogs[:3]) {
		t.Errorf("final log differs:\n got %s\nwant %s", lr.Log, wantLogs[:3])
	}
}

// TestMixedSegmentTornTailRecovery builds a single segment holding JSON
// records followed by binary records followed by a torn frame — the layout
// a mid-run codec upgrade plus a crash would leave — and recovers through
// it. The binary records carry the reset flag (fresh encoder), which is
// exactly how a decoder resynchronizes mid-segment.
func TestMixedSegmentTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	_, wantLogs := fig1Reference(t)
	inputs := models.Fig1Inputs()

	e1, err := NewEngine(Config{Dir: dir, Shards: 1, Fsync: FsyncAlways, Codec: CodecJSON})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e1.Open(&OpenRequest{ID: "crashy", Model: "short"}); err != nil {
		t.Fatal(err)
	}
	for _, in := range inputs[:2] {
		if _, err := e1.Input("crashy", in); err != nil {
			t.Fatal(err)
		}
	}
	// Crash. Hand-append a binary step record to the same segment the JSON
	// engine was writing, then a torn half-frame after it.
	enc := codec.NewEncoder()
	payload, err := encodeWALRecord(enc, &walRecord{T: recStep, SID: "crashy", Seq: 3, Input: inputs[2]})
	if err != nil {
		t.Fatal(err)
	}
	torn, err := encodeWALRecord(enc, &walRecord{T: recStep, SID: "crashy", Seq: 4, Input: inputs[0]})
	if err != nil {
		t.Fatal(err)
	}
	seg := lastSegment(t, filepath.Join(dir, "shard-000"))
	fh, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	fh.Write(frameFor(payload))
	fh.Write(frameFor(torn)[:8+len(torn)/2]) // torn mid-payload
	fh.Close()

	e2, err := NewEngine(Config{Dir: dir, Shards: 1, Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Shutdown()
	lr, err := e2.Log("crashy")
	if err != nil {
		t.Fatal(err)
	}
	if !lr.Log.Equal(wantLogs[:3]) {
		t.Fatalf("mixed-segment replay log:\n got %s\nwant %s", lr.Log, wantLogs[:3])
	}
}

// TestTornBinaryTailRecovery chops bytes off a binary segment's tail and
// recovers: the torn record is truncated away (exactly the JSON-era
// behavior) and the session continues from the last whole record.
func TestTornBinaryTailRecovery(t *testing.T) {
	dir := t.TempDir()
	_, wantLogs := fig1Reference(t)
	inputs := models.Fig1Inputs()

	e1, err := NewEngine(Config{Dir: dir, Shards: 1, Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e1.Open(&OpenRequest{ID: "crashy", Model: "short"}); err != nil {
		t.Fatal(err)
	}
	for _, in := range inputs[:3] {
		if _, err := e1.Input("crashy", in); err != nil {
			t.Fatal(err)
		}
	}
	// Crash, then tear the last record.
	seg := lastSegment(t, filepath.Join(dir, "shard-000"))
	fi, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, fi.Size()-5); err != nil {
		t.Fatal(err)
	}

	e2, err := NewEngine(Config{Dir: dir, Shards: 1, Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Shutdown()
	lr, err := e2.Log("crashy")
	if err != nil {
		t.Fatal(err)
	}
	if !lr.Log.Equal(wantLogs[:2]) {
		t.Fatalf("torn-tail replay log:\n got %s\nwant %s", lr.Log, wantLogs[:2])
	}
	// Re-apply the lost step; the session continues cleanly.
	res, err := e2.Input("crashy", inputs[2])
	if err != nil {
		t.Fatal(err)
	}
	if res.Seq != 3 {
		t.Fatalf("step after torn-tail recovery: seq=%d", res.Seq)
	}
	lr, _ = e2.Log("crashy")
	if !lr.Log.Equal(wantLogs[:3]) {
		t.Errorf("final log differs:\n got %s\nwant %s", lr.Log, wantLogs[:3])
	}
}

// FuzzCodecRoundTrip fuzzes the WAL payload decoder over real payloads: a
// throwaway engine writes WAL segments and a snapshot, and every framed
// payload on disk becomes a seed. The properties: decoding never panics,
// and any payload that decodes re-encodes canonically to an equivalent
// record.
func FuzzCodecRoundTrip(f *testing.F) {
	dir := f.TempDir()
	e, err := NewEngine(Config{Dir: dir, Shards: 1, Fsync: FsyncAlways, SnapshotEvery: 2})
	if err != nil {
		f.Fatal(err)
	}
	inputs := models.Fig1Inputs()
	if _, err := e.Open(&OpenRequest{ID: "fz", Model: "short"}); err != nil {
		f.Fatal(err)
	}
	for _, in := range inputs {
		if _, err := e.Input("fz", in); err != nil {
			f.Fatal(err)
		}
	}
	if _, err := e.Open(&OpenRequest{ID: "fz2", Model: "subscription"}); err != nil {
		f.Fatal(err)
	}
	if _, err := e.Close("fz2"); err != nil {
		f.Fatal(err)
	}
	// Abandon without Shutdown so both WAL records and the mid-run snapshot
	// stay on disk, then seed from every framed payload.
	seeds := 0
	if _, err := storage.ScanDir(filepath.Join(dir, "shard-000"), func(r *storage.DumpRecord) error {
		f.Add(append([]byte(nil), r.Payload...))
		seeds++
		return nil
	}); err != nil {
		f.Fatal(err)
	}
	if seeds == 0 {
		f.Fatal("no seed payloads found on disk")
	}
	f.Add([]byte{0xC5})             // bare magic byte
	f.Add([]byte{0xC5, 0x01, 0x01}) // empty reset record
	f.Add([]byte(`{"t":"step","sid":"x","seq":1}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := decodeWALPayload(codec.NewDecoder(), data)
		if err == nil && rec != nil {
			enc := codec.NewEncoder()
			bin, err := encodeWALRecord(enc, rec)
			if err != nil {
				t.Fatalf("re-encode of decoded record failed: %v", err)
			}
			rec2, err := decodeWALPayload(codec.NewDecoder(), bin)
			if err != nil {
				t.Fatalf("re-decode failed: %v", err)
			}
			j1, _ := json.Marshal(rec)
			j2, _ := json.Marshal(rec2)
			if !bytes.Equal(j1, j2) {
				t.Fatalf("round trip drift:\n got %s\nwant %s", j2, j1)
			}
		}
		// Snapshot-stream decoding must be panic-free on the same corpus,
		// in both header and image positions.
		sdec := codec.NewDecoder()
		_, _, _ = decodeSnapPayload(sdec, data, true)
		_, _, _ = decodeSnapPayload(sdec, data, false)
	})
}
