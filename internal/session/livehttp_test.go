package session

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sync"
	"testing"
	"time"

	"repro/internal/models"
	"repro/internal/relation"
)

// newTestServer serves an engine the test configured itself (httpServer
// always uses defaults) and owns its shutdown.
func newTestServer(t *testing.T, e *Engine) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(Handler(e))
	t.Cleanup(func() {
		srv.Close()
		e.Shutdown()
	})
	return srv
}

func jsonBody(t *testing.T, v any) *bytes.Reader {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return bytes.NewReader(data)
}

func mustStep(t *testing.T, e *Engine, id string, facts ...relation.Fact) {
	t.Helper()
	if _, err := e.Input(id, models.Step(facts...)); err != nil {
		t.Fatal(err)
	}
}

// TestPeekSnapshot checks the verification plane's read primitive: the View
// is a point-in-time clone — later steps do not leak into it — and Peek
// works on frozen sessions.
func TestPeekSnapshot(t *testing.T) {
	e, err := NewEngine(Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Shutdown()
	if _, err := e.Open(&OpenRequest{ID: "s1", Model: "short"}); err != nil {
		t.Fatal(err)
	}
	mustStep(t, e, "s1", models.F("order", "time"))
	view, err := e.Peek("s1")
	if err != nil {
		t.Fatal(err)
	}
	if view.Steps != 1 || view.Model != "short" {
		t.Fatalf("view: %+v", view)
	}
	if !view.Past.Rel("order").Has(relation.Tuple{"time"}) {
		t.Fatalf("past misses order(time): %v", view.Past)
	}

	// A step after the Peek must not appear in the already-taken View.
	mustStep(t, e, "s1", models.F("pay", "time", "855"))
	if view.Past.Rel("pay") != nil && view.Past.Rel("pay").Len() > 0 {
		t.Fatalf("view mutated by a later step: %v", view.Past)
	}

	// Peek still serves a frozen (mid-handoff) session.
	if _, err := e.Export("s1"); err != nil {
		t.Fatal(err)
	}
	view2, err := e.Peek("s1")
	if err != nil {
		t.Fatalf("peek on frozen session: %v", err)
	}
	if view2.Steps != 2 {
		t.Fatalf("frozen view steps = %d, want 2", view2.Steps)
	}
	if _, err := e.Peek("nope"); err == nil {
		t.Fatal("peek of unknown session should fail")
	}
}

// TestSessionRateLimit checks the per-session token bucket: a burst is
// admitted, the next step inside the same instant is rejected with
// RateLimitedError and a positive Retry-After, other sessions are
// unaffected, and tokens refill with time.
func TestSessionRateLimit(t *testing.T) {
	e, err := NewEngine(Config{Shards: 1, SessionRate: 20, SessionBurst: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Shutdown()
	for _, id := range []string{"a", "b"} {
		if _, err := e.Open(&OpenRequest{ID: id, Model: "short"}); err != nil {
			t.Fatal(err)
		}
	}
	mustStep(t, e, "a", models.F("order", "time"))
	mustStep(t, e, "a", models.F("order", "newsweek"))
	_, err = e.Input("a", models.Step(models.F("order", "le-monde")))
	limited, ok := err.(*RateLimitedError)
	if !ok {
		t.Fatalf("third immediate step: got %v, want RateLimitedError", err)
	}
	if limited.RetryAfter <= 0 {
		t.Fatalf("retry-after = %v, want > 0", limited.RetryAfter)
	}
	if got := e.Stats().RateLimited; got != 1 {
		t.Fatalf("rate_limited_total = %d, want 1", got)
	}
	// An unrelated session has its own bucket.
	mustStep(t, e, "b", models.F("order", "time"))
	// Tokens refill: at 20/s one token takes 50ms.
	time.Sleep(80 * time.Millisecond)
	mustStep(t, e, "a", models.F("order", "le-monde"))
}

// TestHTTPRateLimit429 checks the wire mapping: 429 plus a Retry-After
// header on a rate-limited step.
func TestHTTPRateLimit429(t *testing.T) {
	e, err := NewEngine(Config{Shards: 1, SessionRate: 0.5, SessionBurst: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv := newTestServer(t, e)
	var info Info
	if code := call(t, "POST", srv.URL+"/sessions", &OpenRequest{ID: "r", Model: "short"}, &info); code != http.StatusCreated {
		t.Fatalf("open: %d", code)
	}
	in := map[string]any{"input": map[string][][]string{"order": {{"time"}}}}
	if code := call(t, "POST", srv.URL+"/sessions/r/input", in, nil); code != http.StatusOK {
		t.Fatalf("first step: %d", code)
	}
	resp, err := http.Post(srv.URL+"/sessions/r/input", "application/json", jsonBody(t, in))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second step: %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
}

// TestHTTPVerifyAndProgress exercises the verification endpoints end to
// end: reachability flips as the session advances, temporal checks answer
// from the current prefix, progress ranks the exact next payments, and the
// second identical query reports cached=true.
func TestHTTPVerifyAndProgress(t *testing.T) {
	e, err := NewEngine(Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv := newTestServer(t, e)
	if code := call(t, "POST", srv.URL+"/sessions", &OpenRequest{ID: "v", Model: "short"}, nil); code != http.StatusCreated {
		t.Fatalf("open: %d", code)
	}
	mustStep(t, e, "v", models.F("order", "time"), models.F("order", "newsweek"))

	verifyURL := srv.URL + "/sessions/v/verify?goal=" + url.QueryEscape("deliver(X)")
	var goal struct {
		Reachable bool `json:"reachable"`
		Cached    bool `json:"cached"`
	}
	if code := call(t, "GET", verifyURL, nil, &goal); code != http.StatusOK {
		t.Fatalf("verify: %d", code)
	}
	if !goal.Reachable || goal.Cached {
		t.Fatalf("verify after step 1: %+v, want reachable, uncached", goal)
	}
	if code := call(t, "GET", verifyURL, nil, &goal); code != http.StatusOK || !goal.Cached {
		t.Fatalf("second verify: code %d, %+v, want cached", code, goal)
	}

	temporalURL := srv.URL + "/sessions/v/verify?temporal=" + url.QueryEscape("deliver(X) => past-order(X)")
	var temp struct {
		Holds bool `json:"holds"`
	}
	if code := call(t, "GET", temporalURL, nil, &temp); code != http.StatusOK {
		t.Fatalf("temporal: %d", code)
	}
	if !temp.Holds {
		t.Fatal("deliver ⊆ past-order should hold of SHORT")
	}

	progURL := srv.URL + "/sessions/v/progress?goal=" + url.QueryEscape("deliver(X)")
	var prog struct {
		Suggestions []struct {
			Input    string `json:"input"`
			Distance int    `json:"distance"`
		} `json:"suggestions"`
		Truncated bool `json:"truncated"`
	}
	if code := call(t, "GET", progURL, nil, &prog); code != http.StatusOK {
		t.Fatalf("progress: %d", code)
	}
	var d1 []string
	for _, s := range prog.Suggestions {
		if s.Distance == 1 {
			d1 = append(d1, s.Input)
		}
	}
	if len(d1) != 2 || d1[0] != "pay(newsweek, 845)" || d1[1] != "pay(time, 855)" {
		t.Fatalf("distance-1 suggestions: %v", d1)
	}

	// limit= truncates and flags it.
	if code := call(t, "GET", progURL+"&limit=1", nil, &prog); code != http.StatusOK {
		t.Fatalf("progress limit: %d", code)
	}
	if len(prog.Suggestions) != 1 || !prog.Truncated {
		t.Fatalf("limited progress: %d suggestions, truncated=%v", len(prog.Suggestions), prog.Truncated)
	}

	// Bad queries are 400s, unknown sessions 404s.
	for _, u := range []string{
		srv.URL + "/sessions/v/verify",
		srv.URL + "/sessions/v/verify?goal=deliver(X&temporal=x",
		srv.URL + "/sessions/v/verify?goal=" + url.QueryEscape("deliver("),
		srv.URL + "/sessions/v/progress",
		srv.URL + "/sessions/v/progress?goal=" + url.QueryEscape("deliver(X)") + "&limit=-1",
	} {
		if code := call(t, "GET", u, nil, nil); code != http.StatusBadRequest {
			t.Errorf("GET %s: %d, want 400", u, code)
		}
	}
	if code := call(t, "GET", srv.URL+"/sessions/nope/verify?goal="+url.QueryEscape("deliver(X)"), nil, nil); code != http.StatusNotFound {
		t.Fatalf("verify of unknown session: want 404")
	}
}

// TestLiveVerifyInputRace is the race-tier check of the live plane: many
// goroutines hammer one session with steps while others verify and ask for
// progress on it concurrently. Run under -race this proves the Peek
// snapshot discipline — no torn reads between the data plane and the
// verification plane. Only expected statuses may appear.
func TestLiveVerifyInputRace(t *testing.T) {
	e, err := NewEngine(Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv := newTestServer(t, e)
	if code := call(t, "POST", srv.URL+"/sessions", &OpenRequest{ID: "race", Model: "short"}, nil); code != http.StatusCreated {
		t.Fatalf("open: %d", code)
	}

	products := []string{"time", "newsweek", "le-monde"}
	var wg sync.WaitGroup
	errs := make(chan string, 256)
	post := func(k int) {
		defer wg.Done()
		for i := 0; i < 25; i++ {
			in := map[string]any{"input": map[string][][]string{"order": {{products[(k+i)%3]}}}}
			code := call(t, "POST", srv.URL+"/sessions/race/input", in, nil)
			if code != http.StatusOK && code != http.StatusTooManyRequests {
				errs <- fmt.Sprintf("input: status %d", code)
			}
		}
	}
	get := func(u string) {
		defer wg.Done()
		for i := 0; i < 25; i++ {
			code := call(t, "GET", u, nil, nil)
			if code != http.StatusOK && code != http.StatusTooManyRequests && code != http.StatusGatewayTimeout {
				errs <- fmt.Sprintf("GET %s: status %d", u, code)
			}
		}
	}
	for k := 0; k < 3; k++ {
		wg.Add(3)
		go post(k)
		go get(srv.URL + "/sessions/race/verify?goal=" + url.QueryEscape("deliver(X)"))
		go get(srv.URL + "/sessions/race/progress?goal=" + url.QueryEscape("deliver(X)"))
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Error(msg)
	}
}
