package session

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/models"
)

func httpServer(t *testing.T) (*Engine, *httptest.Server) {
	t.Helper()
	e, err := NewEngine(Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(Handler(e))
	t.Cleanup(func() {
		srv.Close()
		e.Shutdown()
	})
	return e, srv
}

// call makes a JSON request and decodes the response into out.
func call(t *testing.T, method, url string, body, out any) int {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, url, &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decode: %v", method, url, err)
		}
	}
	return resp.StatusCode
}

// TestHTTPFig1 replays the Figure 1 shopping session of SHORT entirely over
// HTTP and checks outputs, per-step log deltas, and the final durable log
// against the offline executor.
func TestHTTPFig1(t *testing.T) {
	_, srv := httpServer(t)
	wantOut, wantLogs := fig1Reference(t)

	var info Info
	if st := call(t, "POST", srv.URL+"/sessions", map[string]string{"model": "short"}, &info); st != http.StatusCreated {
		t.Fatalf("open: status %d", st)
	}
	for i, in := range models.Fig1Inputs() {
		var res StepResult
		st := call(t, "POST", fmt.Sprintf("%s/sessions/%s/input", srv.URL, info.ID), map[string]any{"input": in}, &res)
		if st != http.StatusOK {
			t.Fatalf("step %d: status %d", i+1, st)
		}
		if res.Seq != i+1 || !res.Output.Equal(wantOut[i]) || !res.Log.Equal(wantLogs[i]) {
			t.Errorf("step %d over HTTP diverged: %+v", i+1, res)
		}
	}
	var lr LogResult
	if st := call(t, "GET", fmt.Sprintf("%s/sessions/%s/log", srv.URL, info.ID), nil, &lr); st != http.StatusOK {
		t.Fatalf("log: status %d", st)
	}
	if !lr.Log.Equal(wantLogs) {
		t.Errorf("log over HTTP:\n got %s\nwant %s", lr.Log, wantLogs)
	}
	var cr CloseResult
	if st := call(t, "DELETE", srv.URL+"/sessions/"+info.ID, nil, &cr); st != http.StatusOK {
		t.Fatalf("close: status %d", st)
	}
	if cr.Steps != 3 || !cr.Valid || !cr.Log.Equal(wantLogs) {
		t.Errorf("close result: %+v", cr)
	}
}

func TestHTTPStatusCodes(t *testing.T) {
	_, srv := httpServer(t)
	if st := call(t, "POST", srv.URL+"/sessions", map[string]string{"model": "nope"}, nil); st != http.StatusBadRequest {
		t.Errorf("unknown model: status %d", st)
	}
	if st := call(t, "GET", srv.URL+"/sessions/zzz/log", nil, nil); st != http.StatusNotFound {
		t.Errorf("missing session: status %d", st)
	}
	var info Info
	call(t, "POST", srv.URL+"/sessions", map[string]string{"model": "short", "id": "dup"}, &info)
	if st := call(t, "POST", srv.URL+"/sessions", map[string]string{"model": "short", "id": "dup"}, nil); st != http.StatusConflict {
		t.Errorf("duplicate id: status %d", st)
	}
	if st := call(t, "POST", srv.URL+"/sessions/dup/input", map[string]any{"input": map[string][][]string{"bogus": {{"x"}}}}, nil); st != http.StatusBadRequest {
		t.Errorf("bad input relation: status %d", st)
	}
	if st := call(t, "GET", srv.URL+"/healthz", nil, nil); st != http.StatusOK {
		t.Errorf("healthz: status %d", st)
	}
}

func TestHTTPModelsAndSessions(t *testing.T) {
	_, srv := httpServer(t)
	var ms struct {
		Models []string `json:"models"`
	}
	if st := call(t, "GET", srv.URL+"/models", nil, &ms); st != http.StatusOK {
		t.Fatalf("models: status %d", st)
	}
	if len(ms.Models) != len(models.Names()) {
		t.Errorf("models list: %v", ms.Models)
	}
	call(t, "POST", srv.URL+"/sessions", map[string]string{"model": "auction"}, nil)
	call(t, "POST", srv.URL+"/sessions", map[string]string{"model": "short"}, nil)
	var ls struct {
		Sessions []*Info `json:"sessions"`
	}
	if st := call(t, "GET", srv.URL+"/sessions", nil, &ls); st != http.StatusOK || len(ls.Sessions) != 2 {
		t.Errorf("sessions list: status %d, %d sessions", st, len(ls.Sessions))
	}
}

func TestHTTPDebugSurfaces(t *testing.T) {
	_, srv := httpServer(t)
	for _, path := range []string{"/debug/vars", "/debug/pprof/"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s: status %d", path, resp.StatusCode)
		}
	}
}
