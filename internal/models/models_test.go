package models

import (
	"testing"

	"repro/internal/core"
	"repro/internal/relation"
)

func TestAllModelsParseAsSpocus(t *testing.T) {
	for _, m := range []*core.Machine{
		Short(), Friendly(), Restricted(), ABC(), Guarded(), PayFirst(), Auction(), Subscription(),
	} {
		if m.Kind() != core.KindSpocus {
			t.Errorf("%s: kind = %v, want spocus", m.Name(), m.Kind())
		}
	}
}

// TestFig1Run regenerates the Figure 1 run of SHORT and checks each step's
// outputs (experiment E1).
func TestFig1Run(t *testing.T) {
	run, err := Short().Execute(MagazineDB(), Fig1Inputs())
	if err != nil {
		t.Fatalf("execute: %v", err)
	}
	// Step 1: order(time), order(newsweek) → bills for both.
	want1 := Step(F("sendbill", "time", "855"), F("sendbill", "newsweek", "845"))
	if !run.Outputs[0].Restrict([]string{"sendbill", "deliver"}).Equal(want1.Restrict([]string{"sendbill", "deliver"})) {
		t.Errorf("step1 output = %s, want %s", run.Outputs[0], want1)
	}
	// Step 2: pay(time), order(le-monde) → bill for le-monde, deliver time.
	o2 := run.Outputs[1]
	if !o2.Has("sendbill", relation.Tuple{"le-monde", "8350"}) || !o2.Has("deliver", relation.Tuple{"time"}) {
		t.Errorf("step2 output wrong: %s", o2)
	}
	if o2.Rel("sendbill").Len() != 1 || o2.Rel("deliver").Len() != 1 {
		t.Errorf("step2 extra outputs: %s", o2)
	}
	// Step 3: pay both → deliver both.
	o3 := run.Outputs[2]
	if !o3.Has("deliver", relation.Tuple{"newsweek"}) || !o3.Has("deliver", relation.Tuple{"le-monde"}) {
		t.Errorf("step3 output wrong: %s", o3)
	}
	if o3.Rel("sendbill").Len() != 0 {
		t.Errorf("step3 spurious bills: %s", o3)
	}
}

// TestFig2Run regenerates the Figure 2 run of FRIENDLY, exercising every
// warning output (experiment E2).
func TestFig2Run(t *testing.T) {
	run, err := Friendly().Execute(MagazineDB(), Fig2Inputs())
	if err != nil {
		t.Fatalf("execute: %v", err)
	}
	// Step 1: la-stampa is unavailable.
	if !run.Outputs[0].Has("unavailable", relation.Tuple{"la-stampa"}) {
		t.Errorf("step1 missing unavailable: %s", run.Outputs[0])
	}
	if !run.Outputs[0].Has("sendbill", relation.Tuple{"time", "855"}) {
		t.Errorf("step1 missing bill: %s", run.Outputs[0])
	}
	// Step 2: paying for unordered le-monde is rejected; time delivers.
	o2 := run.Outputs[1]
	if !o2.Has("rejectpay", relation.Tuple{"le-monde"}) {
		t.Errorf("step2 missing rejectpay: %s", o2)
	}
	if !o2.Has("deliver", relation.Tuple{"time"}) {
		t.Errorf("step2 missing deliver: %s", o2)
	}
	// Step 3: double payment for time.
	if !run.Outputs[2].Has("alreadypaid", relation.Tuple{"time"}) {
		t.Errorf("step3 missing alreadypaid: %s", run.Outputs[2])
	}
	// Step 4: pending-bills reminds about the unpaid newsweek order.
	o4 := run.Outputs[3]
	if !o4.Has("rebill", relation.Tuple{"newsweek", "845"}) {
		t.Errorf("step4 missing rebill: %s", o4)
	}
	if o4.Rel("rebill").Len() != 1 {
		t.Errorf("step4 extra rebills: %s", o4)
	}
	// Step 5: newsweek delivered.
	if !run.Outputs[4].Has("deliver", relation.Tuple{"newsweek"}) {
		t.Errorf("step5 missing deliver: %s", run.Outputs[4])
	}
}

// TestShortFriendlySameLogOnSharedInputs spot-checks the paper's claim that
// FRIENDLY only adds unlogged niceties: on inputs over SHORT's schema the
// two produce identical logs.
func TestShortFriendlySameLogOnSharedInputs(t *testing.T) {
	db := MagazineDB()
	inputs := Fig1Inputs()
	rs, err := Short().Execute(db, inputs)
	if err != nil {
		t.Fatal(err)
	}
	rf, err := Friendly().Execute(db, inputs)
	if err != nil {
		t.Fatal(err)
	}
	if !rs.Logs.Equal(rf.Logs) {
		t.Errorf("logs differ:\nshort:    %v\nfriendly: %v", rs.Logs, rf.Logs)
	}
}

func TestABCGeneratesPrefixesOfAbStarC(t *testing.T) {
	m := ABC()
	// Drive a, b, b, c and collect the emitted word.
	seq := relation.Sequence{
		Step(F("ia")), Step(F("ib")), Step(F("ib")), Step(F("ic")),
	}
	run, err := m.Execute(relation.NewInstance(), seq)
	if err != nil {
		t.Fatal(err)
	}
	var word string
	for _, out := range run.Outputs {
		for _, p := range []string{"a", "b", "c"} {
			if out.Rel(p).Len() > 0 {
				word += p
			}
		}
	}
	if word != "abbc" {
		t.Errorf("word = %q, want abbc", word)
	}
	// Repeating ia emits nothing; b after c emits nothing.
	seq2 := relation.Sequence{
		Step(F("ia")), Step(F("ia")), Step(F("ic")), Step(F("ib")),
	}
	run2, err := m.Execute(relation.NewInstance(), seq2)
	if err != nil {
		t.Fatal(err)
	}
	var word2 string
	for _, out := range run2.Outputs {
		for _, p := range []string{"a", "b", "c"} {
			if out.Rel(p).Len() > 0 {
				word2 += p
			}
		}
	}
	if word2 != "ac" {
		t.Errorf("word = %q, want ac", word2)
	}
}

func TestGuardedErrorFreeDiscipline(t *testing.T) {
	m := Guarded()
	db := MagazineDB()
	good, err := m.Execute(db, relation.Sequence{
		Step(F("order", "time")),
		Step(F("pay", "time", "855")),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !good.Valid(core.ErrorFree) {
		t.Error("well-behaved session raised error")
	}
	// Paying before ordering is an error.
	bad, err := m.Execute(db, relation.Sequence{
		Step(F("pay", "time", "855")),
	})
	if err != nil {
		t.Fatal(err)
	}
	if bad.Valid(core.ErrorFree) {
		t.Error("pay-before-order accepted")
	}
	// Cancelling an order prevents delivery but is not an error.
	cancelled, err := m.Execute(db, relation.Sequence{
		Step(F("order", "time")),
		Step(F("cancel", "time")),
		Step(F("pay", "time", "855")),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !cancelled.Valid(core.ErrorFree) {
		t.Error("cancel raised error")
	}
	if cancelled.Outputs[2].Rel("deliver").Len() != 0 {
		t.Errorf("delivered after cancel: %s", cancelled.Outputs[2])
	}
}

func TestPayFirstStricter(t *testing.T) {
	db := MagazineDB()
	// Double ordering is fine for guarded, an error for payfirst.
	seq := relation.Sequence{
		Step(F("order", "time")),
		Step(F("order", "time")),
	}
	rg, err := Guarded().Execute(db, seq)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := PayFirst().Execute(db, seq)
	if err != nil {
		t.Fatal(err)
	}
	if !rg.Valid(core.ErrorFree) {
		t.Error("guarded rejects double order")
	}
	if rp.Valid(core.ErrorFree) {
		t.Error("payfirst accepts double order")
	}
}

func TestAuctionProtocol(t *testing.T) {
	db := relation.NewInstance()
	db.Add("registered", relation.Tuple{"alice"})
	db.Add("registered", relation.Tuple{"bob"})
	run, err := Auction().Execute(db, relation.Sequence{
		Step(F("list", "vase")),
		Step(F("bid", "vase", "alice")),
		Step(F("bid", "vase", "bob")),
		Step(F("accept", "vase", "bob")),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !run.Valid(core.ErrorFree) {
		t.Error("legal auction raised error")
	}
	if !run.Outputs[3].Has("award", relation.Tuple{"vase", "bob"}) {
		t.Errorf("award missing: %s", run.Outputs[3])
	}
	// Bidding before listing is an error.
	bad, err := Auction().Execute(db, relation.Sequence{Step(F("bid", "vase", "alice"))})
	if err != nil {
		t.Fatal(err)
	}
	if bad.Valid(core.ErrorFree) {
		t.Error("bid before list accepted")
	}
	// Unregistered bidder is an error.
	bad2, err := Auction().Execute(db, relation.Sequence{
		Step(F("list", "vase")),
		Step(F("bid", "vase", "mallory")),
	})
	if err != nil {
		t.Fatal(err)
	}
	if bad2.Valid(core.ErrorFree) {
		t.Error("unregistered bidder accepted")
	}
}

func TestSubscriptionLifecycle(t *testing.T) {
	db := relation.NewInstance()
	db.Add("rate", relation.Tuple{"news", "10"})
	db.Add("rate", relation.Tuple{"sports", "15"})
	run, err := Subscription().Execute(db, relation.Sequence{
		Step(F("subscribe", "news")),
		Step(F("remind")),
		Step(F("remit", "news", "10")),
		Step(F("cancel", "news")),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !run.Outputs[0].Has("invoice", relation.Tuple{"news", "10"}) {
		t.Errorf("invoice missing: %s", run.Outputs[0])
	}
	if !run.Outputs[1].Has("reminder", relation.Tuple{"news", "10"}) {
		t.Errorf("reminder missing: %s", run.Outputs[1])
	}
	if !run.Outputs[2].Has("activate", relation.Tuple{"news"}) {
		t.Errorf("activate missing: %s", run.Outputs[2])
	}
	if !run.Outputs[3].Has("stop", relation.Tuple{"news"}) {
		t.Errorf("stop missing: %s", run.Outputs[3])
	}
	// Wrong amount is flagged.
	run2, err := Subscription().Execute(db, relation.Sequence{
		Step(F("subscribe", "news")),
		Step(F("remit", "news", "99")),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !run2.Outputs[1].Has("badremit", relation.Tuple{"news"}) {
		t.Errorf("badremit missing: %s", run2.Outputs[1])
	}
	if run2.Outputs[1].Rel("activate").Len() != 0 {
		t.Errorf("activated on wrong amount: %s", run2.Outputs[1])
	}
}
