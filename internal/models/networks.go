package models

import (
	"fmt"
	"sort"

	"repro/internal/compose"
	"repro/internal/core"
	"repro/internal/relation"
)

// This file holds the network scenario generators: serializable
// compose.Spec descriptions of multi-transducer conversations (the paper's
// §5 interaction direction), plus canonical driving scripts for each. The
// session engine opens these as network sessions; the scenario fleet mixes
// them with the single-machine registry models.

// Resolve is the canonical compose.Resolver over this registry: a node spec
// naming a registry model gets a fresh machine plus its demo database.
func Resolve(name string) (*core.Machine, relation.Instance, error) {
	m := Get(name)
	if m == nil {
		return nil, nil, fmt.Errorf("models: unknown model %q", name)
	}
	return m, DefaultDB(name), nil
}

// NetSupplierSrc is the paper's Figure-1-style supplier adapted for network
// wiring: it invoices orders at the listed price, delivers once paid, and
// raises error on payments that match no prior order or listed price.
const NetSupplierSrc = `
transducer netsupplier
schema
  database: price/2;
  input: order/1, pay/2;
  state: past-order/1, past-pay/2;
  output: invoice/2, deliver/1, error/0;
  log: invoice, deliver;
state rules
  past-order(X) +:- order(X);
  past-pay(X,Y) +:- pay(X,Y);
output rules
  invoice(X,Y) :- order(X), price(X,Y), NOT past-pay(X,Y);
  deliver(X) :- past-order(X), price(X,Y), pay(X,Y), NOT past-pay(X,Y);
  error :- pay(X,Y), NOT past-order(X);
  error :- pay(X,Y), NOT price(X,Y);
`

// NetCustomerSrc is the prompt customer: orders what it newly wants, pays
// every fresh invoice. The slip input models an out-of-band payment (no
// matching invoice) — the stimulus the fraud monitor watches for.
const NetCustomerSrc = `
transducer netcustomer
schema
  input: want/1, invoice/2, arrived/1, slip/2;
  state: past-want/1, past-invoice/2, past-arrived/1;
  output: order/1, pay/2, error/0;
  log: order, pay;
state rules
  past-want(X) +:- want(X);
  past-invoice(X,Y) +:- invoice(X,Y);
  past-arrived(X) +:- arrived(X);
output rules
  order(X) :- want(X), NOT past-want(X);
  pay(X,Y) :- invoice(X,Y), NOT past-invoice(X,Y);
  pay(X,Y) :- slip(X,Y);
`

// NetShipperSrc forwards delivery requests one step later — the third hop
// of the marketplace pipeline.
const NetShipperSrc = `
transducer netshipper
schema
  input: request/1;
  state: past-request/1;
  output: shipped/1;
  log: shipped;
state rules
  past-request(X) +:- request(X);
output rules
  shipped(X) :- request(X);
`

// NetMonitorSrc is the fraud monitor: it taps the customer→supplier payment
// wire and the supplier→customer invoice wire, and raises alert on any
// payment not covered by a current or prior invoice.
const NetMonitorSrc = `
transducer netmonitor
schema
  input: payment/2, billed/2;
  state: past-billed/2;
  output: alert/2;
  log: alert;
state rules
  past-billed(X,Y) +:- billed(X,Y);
output rules
  alert(X,Y) :- payment(X,Y), NOT past-billed(X,Y), NOT billed(X,Y);
`

// NetClientSrc is the customization client: it requests a product with an
// option, accepts quotes, and waits for the configured item to be ready.
const NetClientSrc = `
transducer netclient
schema
  input: desire/2, quote/2, ready/1;
  state: past-desire/2, past-quote/2;
  output: request/2, accept/2;
  log: request, accept;
state rules
  past-desire(X,O) +:- desire(X,O);
  past-quote(X,Y) +:- quote(X,Y);
output rules
  request(X,O) :- desire(X,O), NOT past-desire(X,O);
  accept(X,Y) :- quote(X,Y), NOT past-quote(X,Y);
`

// NetConfiguratorSrc sits between client and vendor: it maps (product,
// option) requests to variant SKUs via its variant database, relays vendor
// invoices back as quotes, pays the vendor on accepted quotes, and reports
// delivered variants as ready products.
const NetConfiguratorSrc = `
transducer netconfigurator
schema
  database: variant/3;
  input: request/2, accept/2, invoice/2, delivered/1;
  state: past-invoice/2;
  output: order/1, pay/2, quote/2, ready/1;
  log: order, pay, quote;
state rules
  past-invoice(X,Y) +:- invoice(X,Y);
output rules
  order(V) :- request(X,O), variant(X,O,V);
  quote(X,Y) :- invoice(V,Y), variant(X,O,V);
  pay(V,Y) :- accept(X,Y), variant(X,O,V), past-invoice(V,Y);
  ready(X) :- delivered(V), variant(X,O,V);
`

// netProducts is the shared demo catalog the generated networks trade in.
var netProducts = []struct{ name, base, deluxe relation.Const }{
	{"widget", "5", "7"},
	{"gadget", "8", "10"},
	{"gizmo", "13", "15"},
}

// NetProducts lists the product names the generated networks' demo
// databases carry, in catalog order.
func NetProducts() []string {
	names := make([]string, len(netProducts))
	for i, p := range netProducts {
		names[i] = string(p.name)
	}
	return names
}

func netPriceDB() relation.Instance {
	db := relation.NewInstance()
	for _, p := range netProducts {
		db.Add("price", relation.Tuple{p.name, p.base})
	}
	return db
}

// MarketplaceNetwork generates the three-hop marketplace: customer ↔
// supplier for the order/invoice/pay conversation, with deliveries routed
// through a shipper back to the customer.
func MarketplaceNetwork() *compose.Spec {
	return &compose.Spec{
		Nodes: []compose.NodeSpec{
			{Name: "customer", Src: NetCustomerSrc},
			{Name: "supplier", Src: NetSupplierSrc, DB: netPriceDB()},
			{Name: "shipper", Src: NetShipperSrc},
		},
		Wires: []compose.WireSpec{
			{From: "customer", Output: "order", To: "supplier", Input: "order"},
			{From: "customer", Output: "pay", To: "supplier", Input: "pay"},
			{From: "supplier", Output: "invoice", To: "customer", Input: "invoice"},
			{From: "supplier", Output: "deliver", To: "shipper", Input: "request"},
			{From: "shipper", Output: "shipped", To: "customer", Input: "arrived"},
		},
	}
}

// FraudNetwork generates the monitored marketplace: the customer↔supplier
// pair with a monitor tapping both the payment and invoice wires. An
// out-of-band payment (the customer's slip input) raises an alert.
func FraudNetwork() *compose.Spec {
	return &compose.Spec{
		Nodes: []compose.NodeSpec{
			{Name: "customer", Src: NetCustomerSrc},
			{Name: "supplier", Src: NetSupplierSrc, DB: netPriceDB()},
			{Name: "monitor", Src: NetMonitorSrc},
		},
		Wires: []compose.WireSpec{
			{From: "customer", Output: "order", To: "supplier", Input: "order"},
			{From: "customer", Output: "pay", To: "supplier", Input: "pay"},
			{From: "customer", Output: "pay", To: "monitor", Input: "payment"},
			{From: "supplier", Output: "invoice", To: "customer", Input: "invoice"},
			{From: "supplier", Output: "invoice", To: "monitor", Input: "billed"},
			{From: "supplier", Output: "deliver", To: "customer", Input: "arrived"},
		},
	}
}

// CustomizationNetwork generates the brokered chain: a client requests a
// (product, option) pair, the configurator resolves it to a variant SKU and
// runs the order/invoice/pay conversation with the vendor on the client's
// behalf, and the configured product comes back as ready.
func CustomizationNetwork() *compose.Spec {
	variants := relation.NewInstance()
	prices := relation.NewInstance()
	for _, p := range netProducts {
		variants.Add("variant", relation.Tuple{p.name, "plain", p.name + "-basic"})
		variants.Add("variant", relation.Tuple{p.name, "gift", p.name + "-deluxe"})
		prices.Add("price", relation.Tuple{p.name + "-basic", p.base})
		prices.Add("price", relation.Tuple{p.name + "-deluxe", p.deluxe})
	}
	return &compose.Spec{
		Nodes: []compose.NodeSpec{
			{Name: "client", Src: NetClientSrc},
			{Name: "configurator", Src: NetConfiguratorSrc, DB: variants},
			{Name: "vendor", Src: NetSupplierSrc, DB: prices},
		},
		Wires: []compose.WireSpec{
			{From: "client", Output: "request", To: "configurator", Input: "request"},
			{From: "client", Output: "accept", To: "configurator", Input: "accept"},
			{From: "configurator", Output: "quote", To: "client", Input: "quote"},
			{From: "configurator", Output: "ready", To: "client", Input: "ready"},
			{From: "configurator", Output: "order", To: "vendor", Input: "order"},
			{From: "configurator", Output: "pay", To: "vendor", Input: "pay"},
			{From: "vendor", Output: "invoice", To: "configurator", Input: "invoice"},
			{From: "vendor", Output: "deliver", To: "configurator", Input: "delivered"},
		},
	}
}

// networks is the registry of generated network specs, mirroring the model
// registry: every generator appears here under a stable name.
var networks = map[string]func() *compose.Spec{
	"marketplace":   MarketplaceNetwork,
	"fraud":         FraudNetwork,
	"customization": CustomizationNetwork,
}

// NetworkNames returns the sorted names of the generated networks.
func NetworkNames() []string {
	names := make([]string, 0, len(networks))
	for n := range networks {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Network returns a fresh spec for the named generated network, or nil if
// the name is not registered. Each call generates anew, so the returned
// spec (databases included) is not shared with any other caller.
func Network(name string) *compose.Spec {
	gen, ok := networks[name]
	if !ok {
		return nil
	}
	return gen()
}

// NetworkScript returns the canonical error-free driving script for the
// named network trading the given product: the external stimulus at step 1
// followed by enough empty steps for the conversation to run to completion
// under unit delay. Unknown networks return nil.
func NetworkScript(name, product string) []compose.StepInputs {
	stim := func(node, rel string, tup relation.Tuple) []compose.StepInputs {
		in := relation.NewInstance()
		in.Add(rel, tup)
		return []compose.StepInputs{{node: in}}
	}
	empty := func(n int) []compose.StepInputs {
		steps := make([]compose.StepInputs, n)
		for i := range steps {
			steps[i] = compose.StepInputs{}
		}
		return steps
	}
	item := relation.Const(product)
	switch name {
	case "marketplace":
		// want → order → invoice → pay → deliver → shipped → arrived.
		return append(stim("customer", "want", relation.Tuple{item}), empty(6)...)
	case "fraud":
		// Honest flow: the monitor sees billed before payment, no alert.
		return append(stim("customer", "want", relation.Tuple{item}), empty(5)...)
	case "customization":
		// desire → request → order → invoice → quote → accept → pay →
		// deliver → ready → client sees it.
		return append(stim("client", "desire", relation.Tuple{item, "gift"}), empty(8)...)
	}
	return nil
}
