package models

import (
	"testing"

	"repro/internal/core"
)

// TestAllModelsPrintParseRoundTrip: every model's printed program reparses
// to a machine of the same kind with a stable printed form — the property
// that makes the CLI's program files and the library's programs
// interchangeable.
func TestAllModelsPrintParseRoundTrip(t *testing.T) {
	machines := map[string]*core.Machine{
		"short":        Short(),
		"friendly":     Friendly(),
		"restricted":   Restricted(),
		"abc":          ABC(),
		"guarded":      Guarded(),
		"payfirst":     PayFirst(),
		"strict":       Strict(),
		"stricter":     Stricter(),
		"auction":      Auction(),
		"subscription": Subscription(),
	}
	for name, m := range machines {
		printed := m.String()
		back, err := core.ParseProgram(printed)
		if err != nil {
			t.Errorf("%s: reparse failed: %v\n%s", name, err, printed)
			continue
		}
		if back.Kind() != m.Kind() {
			t.Errorf("%s: kind changed %v -> %v", name, m.Kind(), back.Kind())
		}
		if back.String() != printed {
			t.Errorf("%s: printed form not stable", name)
		}
		if len(back.OutputRules()) != len(m.OutputRules()) {
			t.Errorf("%s: rule count changed", name)
		}
	}
}

// TestModelsBehaveIdenticallyAfterRoundTrip: the reparsed machine computes
// the same run on the Figure 1 session.
func TestModelsBehaveIdenticallyAfterRoundTrip(t *testing.T) {
	db := MagazineDB()
	inputs := Fig1Inputs()
	orig := Short()
	back := core.MustParseProgram(orig.String())
	r1, err := orig.Execute(db, inputs)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := back.Execute(db, inputs)
	if err != nil {
		t.Fatal(err)
	}
	if !r1.Outputs.Equal(r2.Outputs) || !r1.Logs.Equal(r2.Logs) {
		t.Error("round-tripped machine behaves differently")
	}
}
