package models

import (
	"testing"

	"repro/internal/compose"
	"repro/internal/relation"
)

func runNetwork(t *testing.T, name, product string) *compose.Run {
	t.Helper()
	spec := Network(name)
	if spec == nil {
		t.Fatalf("Network(%q) = nil", name)
	}
	n, err := spec.Build(Resolve)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	script := NetworkScript(name, product)
	if script == nil {
		t.Fatalf("NetworkScript(%q) = nil", name)
	}
	run, err := n.Execute(script)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return run
}

func TestMarketplaceNetworkDelivers(t *testing.T) {
	for _, product := range NetProducts() {
		run := runNetwork(t, "marketplace", product)
		if !run.ErrorFree() {
			t.Fatalf("%s: marketplace flow raised error", product)
		}
		item := relation.Const(product)
		// deliver (step 4) routes through the shipper (step 5) to the
		// customer (step 6).
		if !run.Outputs[4]["shipper"].Has("shipped", relation.Tuple{item}) {
			t.Errorf("%s: no shipment at step 5: %s", product, run.Outputs[4]["shipper"])
		}
		if !run.Inputs[5]["customer"].Has("arrived", relation.Tuple{item}) {
			t.Errorf("%s: customer never saw arrival: %s", product, run.Inputs[5]["customer"])
		}
	}
}

func TestFraudNetworkHonestFlowQuiet(t *testing.T) {
	run := runNetwork(t, "fraud", "widget")
	if !run.ErrorFree() {
		t.Fatal("honest fraud-net flow raised error")
	}
	if !run.Outputs[3]["supplier"].Has("deliver", relation.Tuple{"widget"}) {
		t.Errorf("no delivery at step 4: %s", run.Outputs[3]["supplier"])
	}
	for i, out := range run.Outputs {
		if out["monitor"].Rel("alert").Len() != 0 {
			t.Errorf("step %d: spurious alert: %s", i+1, out["monitor"])
		}
	}
}

func TestFraudNetworkSlipAlerts(t *testing.T) {
	spec := Network("fraud")
	n, err := spec.Build(Resolve)
	if err != nil {
		t.Fatal(err)
	}
	slip := relation.NewInstance()
	slip.Add("slip", relation.Tuple{"widget", "5"})
	run, err := n.Execute([]compose.StepInputs{
		{"customer": slip}, {}, {},
	})
	if err != nil {
		t.Fatal(err)
	}
	// The out-of-band payment reaches the monitor one step later with no
	// covering invoice: alert. The supplier independently raises error
	// (payment with no prior order).
	if !run.Outputs[1]["monitor"].Has("alert", relation.Tuple{"widget", "5"}) {
		t.Errorf("no alert at step 2: %s", run.Outputs[1]["monitor"])
	}
	if run.ErrorFree() {
		t.Error("slip payment did not raise supplier error")
	}
}

func TestCustomizationNetworkReadies(t *testing.T) {
	run := runNetwork(t, "customization", "widget")
	if !run.ErrorFree() {
		t.Fatal("customization flow raised error")
	}
	if !run.Outputs[5]["configurator"].Has("pay", relation.Tuple{"widget-deluxe", "7"}) {
		t.Errorf("configurator never paid the vendor: %s", run.Outputs[5]["configurator"])
	}
	if !run.Outputs[7]["configurator"].Has("ready", relation.Tuple{"widget"}) {
		t.Errorf("no ready at step 8: %s", run.Outputs[7]["configurator"])
	}
}

func TestNetworkRegistry(t *testing.T) {
	names := NetworkNames()
	want := []string{"customization", "fraud", "marketplace"}
	if len(names) != len(want) {
		t.Fatalf("NetworkNames() = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("NetworkNames() = %v, want %v", names, want)
		}
	}
	if Network("ghost") != nil {
		t.Error("unknown network resolved")
	}
	if NetworkScript("ghost", "widget") != nil {
		t.Error("unknown network has a script")
	}
	// Fresh specs do not alias: mutating one build's DB must not leak.
	a, b := Network("marketplace"), Network("marketplace")
	a.Nodes[1].DB.Add("price", relation.Tuple{"poison", "1"})
	if b.Nodes[1].DB.Has("price", relation.Tuple{"poison", "1"}) {
		t.Error("network specs share databases")
	}
}

func TestResolveRegistryModels(t *testing.T) {
	for _, name := range Names() {
		m, db, err := Resolve(name)
		if err != nil || m == nil {
			t.Errorf("Resolve(%q): %v", name, err)
		}
		if db == nil {
			t.Errorf("Resolve(%q): nil db", name)
		}
	}
	if _, _, err := Resolve("ghost"); err == nil {
		t.Error("Resolve accepted unknown model")
	}
	// A spec can name registry models directly.
	spec := &compose.Spec{Nodes: []compose.NodeSpec{{Name: "shop", Model: "short"}}}
	if _, err := spec.Build(Resolve); err != nil {
		t.Errorf("model-node spec failed to build: %v", err)
	}
}
