package models

import (
	"sort"

	"repro/internal/core"
	"repro/internal/relation"
)

// entry pairs a model constructor with a demo database matching its schema,
// so callers (the session engine, the server) can open a named model without
// knowing its database schema.
type entry struct {
	build func() *core.Machine
	db    func() relation.Instance
}

// registry is the library of named business models servable by name. Every
// constructor in this package appears here under the transducer's own name.
var registry = map[string]entry{
	"short":        {Short, MagazineDB},
	"friendly":     {Friendly, MagazineDB},
	"restricted":   {Restricted, MagazineDB},
	"abstar":       {ABC, emptyDB},
	"guarded":      {Guarded, MagazineDB},
	"payfirst":     {PayFirst, MagazineDB},
	"strict":       {Strict, MagazineDB},
	"stricter":     {Stricter, MagazineDB},
	"auction":      {Auction, AuctionDB},
	"subscription": {Subscription, SubscriptionDB},
}

func emptyDB() relation.Instance { return relation.NewInstance() }

// Names returns the sorted names of the registered models.
func Names() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Get returns a fresh instance of the named model, or nil if the name is
// not registered. Each call parses the source anew, so the returned machine
// is not shared with any other caller.
func Get(name string) *core.Machine {
	e, ok := registry[name]
	if !ok {
		return nil
	}
	return e.build()
}

// DefaultDB returns a fresh demo database suited to the named model (the
// Figure 1 magazine database for the SHORT family), or nil if the name is
// not registered.
func DefaultDB(name string) relation.Instance {
	e, ok := registry[name]
	if !ok {
		return nil
	}
	return e.db()
}

// AuctionDB returns a demo database for the auction model: two registered
// bidders.
func AuctionDB() relation.Instance {
	db := relation.NewInstance()
	db.Add("registered", relation.Tuple{"alice"})
	db.Add("registered", relation.Tuple{"bob"})
	return db
}

// SubscriptionDB returns a demo database for the subscription model: rates
// for two periodicals.
func SubscriptionDB() relation.Instance {
	db := relation.NewInstance()
	db.Add("rate", relation.Tuple{"economist", "120"})
	db.Add("rate", relation.Tuple{"nature", "199"})
	return db
}
