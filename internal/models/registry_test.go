package models

import (
	"testing"

	"repro/internal/relation"
)

// TestRegistryComplete checks every named model builds and runs on its
// default database.
func TestRegistryComplete(t *testing.T) {
	names := Names()
	if len(names) != len(registry) {
		t.Fatalf("Names returned %d names, registry has %d", len(names), len(registry))
	}
	for _, name := range names {
		m := Get(name)
		if m == nil {
			t.Fatalf("Get(%q) = nil for registered name", name)
		}
		if m.Name() != name {
			t.Errorf("Get(%q) built transducer named %q", name, m.Name())
		}
		db := DefaultDB(name)
		if db == nil {
			t.Fatalf("DefaultDB(%q) = nil for registered name", name)
		}
		// The empty run must execute cleanly, and one empty input step too.
		if _, err := m.Execute(db, relation.Sequence{relation.NewInstance()}); err != nil {
			t.Errorf("%s: empty-input step failed: %v", name, err)
		}
	}
}

func TestRegistryUnknown(t *testing.T) {
	if Get("no-such-model") != nil {
		t.Error("Get of unknown name should be nil")
	}
	if DefaultDB("no-such-model") != nil {
		t.Error("DefaultDB of unknown name should be nil")
	}
}

// TestRegistryIsolation checks that Get returns independent machines and
// DefaultDB independent instances (mutating one caller's copy must not leak
// into another session).
func TestRegistryIsolation(t *testing.T) {
	db1 := DefaultDB("short")
	db2 := DefaultDB("short")
	db1.Add("price", relation.Tuple{"extra", "1"})
	if db2.Has("price", relation.Tuple{"extra", "1"}) {
		t.Error("DefaultDB instances are shared")
	}
	if Get("short") == Get("short") {
		t.Error("Get returned a shared *Machine")
	}
}
