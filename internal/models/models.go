// Package models is the library of business models used throughout the
// paper and this reproduction: the short and friendly transducers of
// Section 2.1 (verbatim), the ab*c propositional transducer of Section 3.1,
// customized and input-controlled variants used by the containment and
// error-free experiments, and two further e-commerce models (auction and
// subscription) demonstrating the modeling range the paper claims.
package models

import (
	"repro/internal/core"
	"repro/internal/relation"
)

// ShortSrc is the paper's first example (transducer SHORT, Section 2.1): a
// customer orders a product, is billed, pays, and takes delivery.
const ShortSrc = `
transducer short
schema
  database: price/2, available/1;
  input: order/1, pay/2;
  state: past-order/1, past-pay/2;
  output: sendbill/2, deliver/1;
  log: sendbill, pay, deliver;
state rules
  past-order(X) +:- order(X);
  past-pay(X,Y) +:- pay(X,Y);
output rules
  sendbill(X,Y) :- order(X), price(X,Y), NOT past-pay(X,Y);
  deliver(X) :- past-order(X), price(X,Y), pay(X,Y), NOT past-pay(X,Y);
`

// FriendlySrc is the paper's customized variant (transducer FRIENDLY,
// Section 2.1): the same business semantics as SHORT plus warning messages
// and pending-bill reminders. The paper observes that SHORT and FRIENDLY
// have exactly the same valid logs.
const FriendlySrc = `
transducer friendly
relations
  database: price/2, available/1;
  input: order/1, pay/2, pending-bills/0;
  state: past-order/1, past-pay/2;
  output: sendbill/2, deliver/1, unavailable/1,
          rejectpay/1, alreadypaid/1, rebill/2;
  log: sendbill, pay, deliver;
state rules
  past-order(X) +:- order(X);
  past-pay(X,Y) +:- pay(X,Y);
output rules
  sendbill(X,Y) :- order(X), price(X,Y), NOT past-pay(X,Y);
  deliver(X) :- past-order(X), price(X,Y), pay(X,Y), NOT past-pay(X,Y);
  unavailable(X) :- order(X), NOT available(X);
  rejectpay(X) :- pay(X,Y), NOT past-order(X);
  rejectpay(X) :- pay(X,Y), past-order(X), NOT price(X,Y);
  alreadypaid(X) :- pay(X,Y), past-pay(X,Y);
  rebill(X,Y) :- pending-bills, past-order(X), price(X,Y), NOT past-pay(X,Y);
`

// RestrictedSrc customizes SHORT with a customer-side purchasing policy in
// the style of Section 2.1's discussion: orders for blocked products are
// never billed or delivered (the customer's internal regulations disallow
// buying them from this supplier). Its valid logs are strictly contained in
// SHORT's.
const RestrictedSrc = `
transducer restricted
schema
  database: price/2, available/1, blocked/1;
  input: order/1, pay/2;
  state: past-order/1, past-pay/2;
  output: sendbill/2, deliver/1;
  log: sendbill, pay, deliver;
state rules
  past-order(X) +:- order(X);
  past-pay(X,Y) +:- pay(X,Y);
output rules
  sendbill(X,Y) :- order(X), price(X,Y), NOT past-pay(X,Y), NOT blocked(X);
  deliver(X) :- past-order(X), price(X,Y), pay(X,Y), NOT past-pay(X,Y), NOT blocked(X);
`

// ABCSrc is the propositional Spocus transducer of Section 3.1, generating
// exactly the prefixes of the language ab*c. The paper writes the input
// propositions as upper-case A, B, C; this syntax reserves upper-case
// initials for variables, so they are spelled ia, ib, ic here.
const ABCSrc = `
transducer abstar
schema
  input: ia/0, ib/0, ic/0;
  state: past-ia/0, past-ib/0, past-ic/0;
  output: a/0, b/0, c/0;
  log: a, b, c;
state rules
  past-ia +:- ia;
  past-ib +:- ib;
  past-ic +:- ic;
output rules
  a :- ia, NOT past-ia;
  b :- ib, past-ia, NOT past-ic, NOT ic;
  c :- ic, past-ia, NOT past-ic;
`

// GuardedSrc is SHORT extended with the error rules compiled from the three
// T_sdi examples of Section 4.1 plus cancellation: payment must match a
// prior order at the correct price, and cancellation requires a prior
// order. Its error-free runs are exactly the well-behaved shopping
// sessions.
const GuardedSrc = `
transducer guarded
schema
  database: price/2, available/1;
  input: order/1, pay/2, cancel/1;
  state: past-order/1, past-pay/2, past-cancel/1;
  output: sendbill/2, deliver/1, error/0;
  log: sendbill, pay, deliver;
state rules
  past-order(X) +:- order(X);
  past-pay(X,Y) +:- pay(X,Y);
  past-cancel(X) +:- cancel(X);
output rules
  sendbill(X,Y) :- order(X), price(X,Y), NOT past-pay(X,Y);
  deliver(X) :- past-order(X), price(X,Y), pay(X,Y), NOT past-pay(X,Y), NOT past-cancel(X);
  error :- pay(X,Y), NOT past-order(X);
  error :- pay(X,Y), NOT price(X,Y);
  error :- cancel(X), NOT past-order(X);
`

// PayFirstSrc is a supplier policy: any delivery-relevant payment must
// precede cancellation, and ordering an item twice is an error. It shares
// GuardedSrc's schema so the two can be compared as acceptors
// (Theorem 4.6).
const PayFirstSrc = `
transducer payfirst
schema
  database: price/2, available/1;
  input: order/1, pay/2, cancel/1;
  state: past-order/1, past-pay/2, past-cancel/1;
  output: sendbill/2, deliver/1, error/0;
  log: sendbill, pay, deliver;
state rules
  past-order(X) +:- order(X);
  past-pay(X,Y) +:- pay(X,Y);
  past-cancel(X) +:- cancel(X);
output rules
  sendbill(X,Y) :- order(X), price(X,Y), NOT past-pay(X,Y);
  deliver(X) :- past-order(X), price(X,Y), pay(X,Y), NOT past-pay(X,Y), NOT past-cancel(X);
  error :- pay(X,Y), NOT past-order(X);
  error :- pay(X,Y), NOT price(X,Y);
  error :- cancel(X), NOT past-order(X);
  error :- order(X), past-order(X);
`

// StrictSrc is SHORT with input-control error rules drawn from the
// decidable fragment of Theorems 4.4/4.6: no negative state literal occurs
// in an error rule. It forbids double orders, double payments, and payments
// at unlisted prices.
const StrictSrc = `
transducer strict
schema
  database: price/2, available/1;
  input: order/1, pay/2;
  state: past-order/1, past-pay/2;
  output: sendbill/2, deliver/1, error/0;
  log: sendbill, pay, deliver;
state rules
  past-order(X) +:- order(X);
  past-pay(X,Y) +:- pay(X,Y);
output rules
  sendbill(X,Y) :- order(X), price(X,Y), NOT past-pay(X,Y);
  deliver(X) :- past-order(X), price(X,Y), pay(X,Y), NOT past-pay(X,Y);
  error :- order(X), past-order(X);
  error :- pay(X,Y), past-pay(X,Y);
  error :- pay(X,Y), NOT price(X,Y);
`

// StricterSrc adds to STRICT the rule that ordering an unavailable product
// is an error; its error-free runs are strictly contained in STRICT's.
const StricterSrc = `
transducer stricter
schema
  database: price/2, available/1;
  input: order/1, pay/2;
  state: past-order/1, past-pay/2;
  output: sendbill/2, deliver/1, error/0;
  log: sendbill, pay, deliver;
state rules
  past-order(X) +:- order(X);
  past-pay(X,Y) +:- pay(X,Y);
output rules
  sendbill(X,Y) :- order(X), price(X,Y), NOT past-pay(X,Y);
  deliver(X) :- past-order(X), price(X,Y), pay(X,Y), NOT past-pay(X,Y);
  error :- order(X), past-order(X);
  error :- pay(X,Y), past-pay(X,Y);
  error :- pay(X,Y), NOT price(X,Y);
  error :- order(X), NOT available(X);
`

// AuctionSrc models a sealed-bid auction: sellers list items, bidders bid
// while the auction is open, and the seller closes the auction by accepting
// a bid; the accepted bidder's item is awarded. Error rules enforce the
// protocol (no bidding on unlisted items, no double listing, awards only on
// actual bids).
const AuctionSrc = `
transducer auction
schema
  database: registered/1;
  input: list/1, bid/2, accept/2;
  state: past-list/1, past-bid/2, past-accept/2;
  output: ack/1, award/2, error/0;
  log: list, bid, award;
state rules
  past-list(I) +:- list(I);
  past-bid(I,B) +:- bid(I,B);
  past-accept(I,B) +:- accept(I,B);
output rules
  ack(I) :- list(I), NOT past-list(I);
  award(I,B) :- accept(I,B), past-bid(I,B), NOT past-accept(I,B);
  error :- list(I), past-list(I);
  error :- bid(I,B), NOT past-list(I);
  error :- bid(I,B), NOT registered(B);
  error :- accept(I,B), NOT past-bid(I,B);
`

// SubscriptionSrc models periodic subscriptions: a customer subscribes to a
// service at a database-listed rate, is invoiced, pays, and may cancel;
// reminders can be requested. Payment before subscription and wrong
// amounts are rejected with warnings rather than errors (FRIENDLY style).
const SubscriptionSrc = `
transducer subscription
schema
  database: rate/2;
  input: subscribe/1, remit/2, cancel/1, remind/0;
  state: past-subscribe/1, past-remit/2, past-cancel/1, past-remind/0;
  output: invoice/2, activate/1, stop/1, badremit/1, reminder/2;
  log: subscribe, remit, activate, stop;
state rules
  past-subscribe(S) +:- subscribe(S);
  past-remit(S,R) +:- remit(S,R);
  past-cancel(S) +:- cancel(S);
  past-remind +:- remind;
output rules
  invoice(S,R) :- subscribe(S), rate(S,R), NOT past-remit(S,R);
  activate(S) :- past-subscribe(S), rate(S,R), remit(S,R), NOT past-remit(S,R), NOT past-cancel(S);
  stop(S) :- cancel(S), past-subscribe(S);
  badremit(S) :- remit(S,R), NOT rate(S,R);
  badremit(S) :- remit(S,R), NOT past-subscribe(S);
  reminder(S,R) :- remind, past-subscribe(S), rate(S,R), NOT past-remit(S,R);
`

// Short returns the SHORT transducer.
func Short() *core.Machine { return core.MustParseProgram(ShortSrc) }

// Friendly returns the FRIENDLY transducer.
func Friendly() *core.Machine { return core.MustParseProgram(FriendlySrc) }

// Restricted returns the customer-restricted customization of SHORT.
func Restricted() *core.Machine { return core.MustParseProgram(RestrictedSrc) }

// ABC returns the ab*c propositional transducer of Section 3.1.
func ABC() *core.Machine { return core.MustParseProgram(ABCSrc) }

// Guarded returns SHORT with the Section 4.1 input-control error rules.
func Guarded() *core.Machine { return core.MustParseProgram(GuardedSrc) }

// PayFirst returns the stricter supplier policy sharing Guarded's schema.
func PayFirst() *core.Machine { return core.MustParseProgram(PayFirstSrc) }

// Strict returns SHORT with decidable-fragment error rules.
func Strict() *core.Machine { return core.MustParseProgram(StrictSrc) }

// Stricter returns Strict plus the availability error rule.
func Stricter() *core.Machine { return core.MustParseProgram(StricterSrc) }

// WithLog rebuilds a Spocus machine with a different log declaration (used
// to construct the full-log variants Theorem 3.5 requires).
func WithLog(m *core.Machine, logNames ...string) *core.Machine {
	s := m.Schema().Clone()
	s.Log = logNames
	s.State = nil
	nm, err := core.NewSpocus(s, m.OutputRules())
	if err != nil {
		panic("models: WithLog: " + err.Error())
	}
	return nm.SetName(m.Name() + "-log")
}

// Auction returns the sealed-bid auction model.
func Auction() *core.Machine { return core.MustParseProgram(AuctionSrc) }

// Subscription returns the subscription model.
func Subscription() *core.Machine { return core.MustParseProgram(SubscriptionSrc) }

// MagazineDB returns the database of Figure 1: prices of Time, Newsweek,
// and Le Monde (855, 845, 8350) with all three available.
func MagazineDB() relation.Instance {
	db := relation.NewInstance()
	db.Add("price", relation.Tuple{"time", "855"})
	db.Add("price", relation.Tuple{"newsweek", "845"})
	db.Add("price", relation.Tuple{"le-monde", "8350"})
	db.Add("available", relation.Tuple{"time"})
	db.Add("available", relation.Tuple{"newsweek"})
	db.Add("available", relation.Tuple{"le-monde"})
	return db
}

// Step builds a single input instance from (relation, tuple) facts; a
// convenience for examples and tests.
func Step(facts ...relation.Fact) relation.Instance {
	in := relation.NewInstance()
	for _, f := range facts {
		in.Add(f.Rel, f.Args)
	}
	return in
}

// F builds a fact.
func F(rel string, args ...string) relation.Fact {
	t := make(relation.Tuple, len(args))
	for i, a := range args {
		t[i] = relation.Const(a)
	}
	return relation.Fact{Rel: rel, Args: t}
}

// Fig1Inputs is the input sequence of the Figure 1 run of SHORT: the
// customer orders Time and Newsweek, pays for Time, orders Le Monde, then
// pays for the remaining two.
func Fig1Inputs() relation.Sequence {
	return relation.Sequence{
		Step(F("order", "time"), F("order", "newsweek")),
		Step(F("pay", "time", "855"), F("order", "le-monde")),
		Step(F("pay", "newsweek", "845"), F("pay", "le-monde", "8350")),
	}
}

// Fig2Inputs is the input sequence of the Figure 2 run of FRIENDLY:
// it exercises the warning outputs (unavailable product, bad payment,
// double payment) and the pending-bills reminder.
func Fig2Inputs() relation.Sequence {
	return relation.Sequence{
		Step(F("order", "time"), F("order", "la-stampa")),
		Step(F("pay", "time", "855"), F("pay", "le-monde", "8350")),
		Step(F("order", "newsweek"), F("pay", "time", "855")),
		Step(F("pending-bills")),
		Step(F("pay", "newsweek", "845")),
	}
}
