package sat

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// FuzzDIMACS checks that the DIMACS reader never panics, that accepted
// formulas survive a write/re-parse round trip, and that any model found
// under a small conflict budget actually satisfies every problem clause.
func FuzzDIMACS(f *testing.F) {
	f.Add("p cnf 3 2\n1 -2 0\n2 3 0\n")
	f.Add("1 2 0\n-1 0\n-2 0\n")
	f.Add("c pigeonhole\np cnf 2 4\n1 2 0\n-1 2 0\n1 -2 0\n-1 -2 0\n")
	f.Add("p cnf 2 1\n1 1 -1 0")
	f.Add("")
	f.Add("p cnf 0 0\n")
	f.Add("c comment only\n")
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<12 {
			t.Skip("oversized input")
		}
		// A header like "p cnf 2000000000 0" is well-formed DIMACS but
		// would allocate that many variables; cap the variable space so
		// the harness exercises the parser and solver, not the allocator.
		for _, fld := range strings.Fields(src) {
			if n, err := strconv.Atoi(fld); err == nil && (n > 9999 || n < -9999) {
				t.Skip("huge literal")
			}
		}
		s, err := ParseDIMACS(strings.NewReader(src))
		if err != nil {
			return
		}

		var first bytes.Buffer
		if err := s.WriteDIMACS(&first); err != nil {
			t.Fatalf("WriteDIMACS: %v", err)
		}
		s2, err := ParseDIMACS(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("accepted formula does not re-parse:\n input: %q\n wrote: %q\n error: %v", src, first.String(), err)
		}
		var second bytes.Buffer
		if err := s2.WriteDIMACS(&second); err != nil {
			t.Fatalf("WriteDIMACS (round 2): %v", err)
		}
		if first.String() != second.String() {
			t.Fatalf("write/parse/write is not a fixed point:\n first:  %q\n second: %q", first.String(), second.String())
		}
		if s2.NumVars() != s.NumVars() || s2.NumClauses() != s.NumClauses() {
			t.Fatalf("re-parse changed shape: %d/%d vars, %d/%d clauses",
				s.NumVars(), s2.NumVars(), s.NumClauses(), s2.NumClauses())
		}

		if st := s.SolveBudget(5000); st == Sat {
			for _, c := range s.clauses {
				ok := false
				for _, l := range c.lits {
					v := l
					if v < 0 {
						v = -v
					}
					if s.Value(v) == (l > 0) {
						ok = true
						break
					}
				}
				if !ok {
					t.Fatalf("model does not satisfy clause %v of %q", c.lits, src)
				}
			}
		}
	})
}
