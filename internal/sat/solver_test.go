package sat

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestTrivial(t *testing.T) {
	s := New()
	a := s.NewVar()
	if err := s.AddClause(a); err != nil {
		t.Fatal(err)
	}
	if got := s.Solve(); got != Sat {
		t.Fatalf("Solve = %v, want Sat", got)
	}
	if !s.Value(a) {
		t.Error("unit clause not satisfied")
	}
}

func TestContradiction(t *testing.T) {
	s := New()
	a := s.NewVar()
	s.AddClause(a)
	s.AddClause(-a)
	if got := s.Solve(); got != Unsat {
		t.Fatalf("Solve = %v, want Unsat", got)
	}
}

func TestEmptyClause(t *testing.T) {
	s := New()
	s.NewVar()
	s.AddClause()
	if got := s.Solve(); got != Unsat {
		t.Fatalf("Solve = %v, want Unsat", got)
	}
}

func TestEmptyFormulaSat(t *testing.T) {
	s := New()
	s.NewVar()
	if got := s.Solve(); got != Sat {
		t.Fatalf("Solve = %v, want Sat", got)
	}
}

func TestTautologyDropped(t *testing.T) {
	s := New()
	a := s.NewVar()
	if err := s.AddClause(a, -a); err != nil {
		t.Fatal(err)
	}
	if s.NumClauses() != 0 {
		t.Error("tautology stored")
	}
}

func TestBadLiteral(t *testing.T) {
	s := New()
	s.NewVar()
	if err := s.AddClause(0); err == nil {
		t.Error("literal 0 accepted")
	}
	if err := s.AddClause(5); err == nil {
		t.Error("undeclared variable accepted")
	}
}

func TestImplicationChain(t *testing.T) {
	// x1 ∧ (x1→x2) ∧ ... ∧ (x99→x100): forced model, all true.
	s := New()
	n := 100
	vars := make([]int, n+1)
	for i := 1; i <= n; i++ {
		vars[i] = s.NewVar()
	}
	s.AddClause(vars[1])
	for i := 1; i < n; i++ {
		s.AddClause(-vars[i], vars[i+1])
	}
	if s.Solve() != Sat {
		t.Fatal("chain unsat")
	}
	for i := 1; i <= n; i++ {
		if !s.Value(vars[i]) {
			t.Fatalf("x%d should be true", i)
		}
	}
}

// pigeonhole builds PHP(n+1, n): n+1 pigeons into n holes — classically
// unsatisfiable and requires real conflict analysis.
func pigeonhole(n int) *Solver {
	s := New()
	// p[i][j]: pigeon i in hole j.
	p := make([][]int, n+1)
	for i := 0; i <= n; i++ {
		p[i] = make([]int, n)
		for j := 0; j < n; j++ {
			p[i][j] = s.NewVar()
		}
	}
	for i := 0; i <= n; i++ {
		s.AddClause(p[i]...)
	}
	for j := 0; j < n; j++ {
		for i := 0; i <= n; i++ {
			for k := i + 1; k <= n; k++ {
				s.AddClause(-p[i][j], -p[k][j])
			}
		}
	}
	return s
}

func TestPigeonholeUnsat(t *testing.T) {
	for n := 2; n <= 6; n++ {
		if got := pigeonhole(n).Solve(); got != Unsat {
			t.Errorf("PHP(%d+1,%d) = %v, want Unsat", n, n, got)
		}
	}
}

func TestPigeonholeExactFitSat(t *testing.T) {
	// n pigeons into n holes is satisfiable.
	s := New()
	n := 5
	p := make([][]int, n)
	for i := 0; i < n; i++ {
		p[i] = make([]int, n)
		for j := 0; j < n; j++ {
			p[i][j] = s.NewVar()
		}
	}
	for i := 0; i < n; i++ {
		s.AddClause(p[i]...)
	}
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			for k := i + 1; k < n; k++ {
				s.AddClause(-p[i][j], -p[k][j])
			}
		}
	}
	if got := s.Solve(); got != Sat {
		t.Fatalf("PHP(%d,%d) = %v, want Sat", n, n, got)
	}
}

func TestAssumptions(t *testing.T) {
	s := New()
	a, b := s.NewVar(), s.NewVar()
	s.AddClause(-a, b) // a → b
	if got := s.Solve(a, -b); got != Unsat {
		t.Errorf("Solve(a, ¬b) = %v, want Unsat", got)
	}
	if got := s.Solve(a, b); got != Sat {
		t.Errorf("Solve(a, b) = %v, want Sat", got)
	}
	if got := s.Solve(-a, -b); got != Sat {
		t.Errorf("Solve(¬a, ¬b) = %v, want Sat", got)
	}
	// Solver remains usable without assumptions.
	if got := s.Solve(); got != Sat {
		t.Errorf("Solve() = %v, want Sat", got)
	}
}

func TestModelSatisfiesClauses(t *testing.T) {
	s := New()
	n := 20
	vars := make([]int, n+1)
	for i := 1; i <= n; i++ {
		vars[i] = s.NewVar()
	}
	r := rand.New(rand.NewSource(7))
	var cls [][]int
	for c := 0; c < 60; c++ {
		var cl []int
		for k := 0; k < 3; k++ {
			l := vars[1+r.Intn(n)]
			if r.Intn(2) == 0 {
				l = -l
			}
			cl = append(cl, l)
		}
		cls = append(cls, cl)
		s.AddClause(cl...)
	}
	if s.Solve() != Sat {
		t.Skip("random instance unsat; soundness checked elsewhere")
	}
	for _, cl := range cls {
		ok := false
		for _, l := range cl {
			v := l
			if v < 0 {
				v = -v
			}
			if (l > 0) == s.Value(v) {
				ok = true
				break
			}
		}
		if !ok {
			t.Fatalf("model violates clause %v", cl)
		}
	}
}

// bruteForceSat enumerates all assignments of n variables.
func bruteForceSat(n int, clauses [][]int) bool {
	for mask := 0; mask < 1<<n; mask++ {
		ok := true
		for _, cl := range clauses {
			sat := false
			for _, l := range cl {
				v := l
				if v < 0 {
					v = -v
				}
				val := mask&(1<<(v-1)) != 0
				if (l > 0) == val {
					sat = true
					break
				}
			}
			if !sat {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

func TestPropMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(6) // 3..8 vars
		m := r.Intn(25)    // up to 24 clauses
		s := New()
		for i := 0; i < n; i++ {
			s.NewVar()
		}
		var clauses [][]int
		for c := 0; c < m; c++ {
			width := 1 + r.Intn(3)
			var cl []int
			for k := 0; k < width; k++ {
				l := 1 + r.Intn(n)
				if r.Intn(2) == 0 {
					l = -l
				}
				cl = append(cl, l)
			}
			clauses = append(clauses, cl)
			s.AddClause(cl...)
		}
		got := s.Solve() == Sat
		want := bruteForceSat(n, clauses)
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestDIMACSRoundTrip(t *testing.T) {
	src := `c example
p cnf 3 4
1 -2 0
2 3 0
-1 0
-3 2 0
`
	s, err := ParseDIMACS(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if s.NumVars() != 3 || s.NumClauses() != 4 {
		t.Fatalf("vars=%d clauses=%d", s.NumVars(), s.NumClauses())
	}
	var buf bytes.Buffer
	if err := s.WriteDIMACS(&buf); err != nil {
		t.Fatal(err)
	}
	s2, err := ParseDIMACS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if s2.NumClauses() != s.NumClauses() {
		t.Errorf("round trip clause count %d vs %d", s2.NumClauses(), s.NumClauses())
	}
}

func TestDIMACSUnsatInstance(t *testing.T) {
	src := "p cnf 3 4\n1 -2 0\n2 3 0\n-1 0\n-3 2 0\n"
	s, err := ParseDIMACS(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Solve(); got != Unsat {
		t.Fatalf("Solve = %v, want Unsat", got)
	}
}

func TestDIMACSErrors(t *testing.T) {
	for _, src := range []string{"p dnf 1 1\n1 0\n", "p cnf x 1\n", "1 x 0\n"} {
		if _, err := ParseDIMACS(strings.NewReader(src)); err == nil {
			t.Errorf("ParseDIMACS(%q) succeeded", src)
		}
	}
}

func TestSolveBudget(t *testing.T) {
	s := pigeonhole(9)
	if got := s.SolveBudget(5); got != Unknown {
		// A tiny budget should not complete PHP(10,9); if it somehow does,
		// the answer must still be Unsat.
		if got != Unsat {
			t.Errorf("SolveBudget = %v", got)
		}
	}
}

func TestLuby(t *testing.T) {
	want := []int{1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8}
	for i, w := range want {
		if got := luby(i + 1); got != w {
			t.Errorf("luby(%d) = %d, want %d", i+1, got, w)
		}
	}
}

func BenchmarkPigeonhole7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if pigeonhole(7).Solve() != Unsat {
			b.Fatal("wrong answer")
		}
	}
}

func BenchmarkRandom3SAT(b *testing.B) {
	r := rand.New(rand.NewSource(42))
	for i := 0; i < b.N; i++ {
		n := 60
		s := New()
		for v := 0; v < n; v++ {
			s.NewVar()
		}
		for c := 0; c < int(4.2*float64(n)); c++ {
			var cl []int
			for k := 0; k < 3; k++ {
				l := 1 + r.Intn(n)
				if r.Intn(2) == 0 {
					l = -l
				}
				cl = append(cl, l)
			}
			s.AddClause(cl...)
		}
		s.Solve()
	}
}
